(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see EXPERIMENTS.md for the paper-vs-measured record), then
   runs Bechamel micro-benchmarks of the core operations.

     dune exec bench/main.exe

   The scalability sweeps (Tables VII-IX) default to reduced ranges so the
   whole run finishes in a few minutes; set NETDIV_BENCH_FULL=1 for the
   paper's full ranges (up to 6,000 hosts and 240,000 links).
   NETDIV_BENCH_RUNS overrides the 1,000 simulation runs per MTTC cell.
   NETDIV_BENCH_SMOKE=1 runs only the fast parallel-speedup,
   potential-interning and message-kernel sections (the CI smoke used by
   tools/check.sh).

   Every run also writes BENCH.json (override the path with
   NETDIV_BENCH_JSON): per-section wall time, peak heap words and named
   metrics, machine-readable for regression tracking.  The parallel
   sections double as determinism checks — any jobs-dependent result
   turns into a nonzero exit status. *)

module Corpus = Netdiv_vuln.Corpus
module Similarity = Netdiv_vuln.Similarity
module Graph = Netdiv_graph.Graph
module Network = Netdiv_core.Network
module Assignment = Netdiv_core.Assignment
module Optimize = Netdiv_core.Optimize
module Encode = Netdiv_core.Encode
module Attack_bn = Netdiv_bayes.Attack_bn
module Engine = Netdiv_sim.Engine
module Workload = Netdiv_workload.Workload
module Obs = Netdiv_obs.Obs
module Topology = Netdiv_casestudy.Topology
module Products = Netdiv_casestudy.Products
module Experiments = Netdiv_casestudy.Experiments

(* tier selection: the env vars are the historical CI interface, the
   --full / --smoke flags the human one (dune exec bench/main.exe --
   --full); either spelling wins *)
let argv_flag name = Array.exists (String.equal name) Sys.argv

let full_sweep =
  argv_flag "--full"
  ||
  match Sys.getenv_opt "NETDIV_BENCH_FULL" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let mttc_runs =
  match Sys.getenv_opt "NETDIV_BENCH_RUNS" with
  | Some s -> (try int_of_string s with Failure _ -> 1000)
  | None -> 1000

let smoke =
  argv_flag "--smoke"
  ||
  match Sys.getenv_opt "NETDIV_BENCH_SMOKE" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

(* Min-of-N-cycles timing (the ci_bench discipline): report the fastest
   of [rounds] timed cycles, a major collection before each.  The
   minimum is the repetition least disturbed by the scheduler and the
   collector — single-shot timings of ~50 ms solves wobble by more than
   the speedups being measured. *)
let bench_rounds = if full_sweep then 5 else 3

let cycles_of ?(rounds = bench_rounds) f =
  let ts = Array.make (max 1 rounds) 0.0 in
  for i = 0 to Array.length ts - 1 do
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    ts.(i) <- Unix.gettimeofday () -. t0
  done;
  ts

let best_of ?rounds f = Array.fold_left Float.min infinity (cycles_of ?rounds f)

(* Min/median/max of a cycle array: the statistical trajectory behind a
   best-of headline number.  [spread "solve_1j" ts] emits
   solve_1j_min_s / solve_1j_med_s / solve_1j_max_s — tools/bench_page
   renders the band around the headline sparkline and tools/bench_diff
   prefers the median (scheduler-noise-resistant) when both runs carry
   it. *)
let sorted_copy ts =
  let s = Array.copy ts in
  Array.sort Float.compare s;
  s

let section title =
  Format.printf "@.======================================================@.";
  Format.printf "%s@." title;
  Format.printf "======================================================@."

(* ---------------------------------------- machine-readable report *)

(* Accumulates per-section wall time, peak heap words and named float
   metrics, then writes them as BENCH.json (hand-rolled — no JSON
   dependency).  Section and metric names are code-controlled
   identifiers, so the writer does not need string escaping.  The
   determinism checks below bump [failures]; a nonzero count becomes a
   nonzero exit status so CI catches jobs-dependent results. *)
module Report = struct
  type entry = {
    name : string;
    wall_s : float;
    top_heap_words : int;
    metrics : (string * float) list;
  }

  let entries : entry list ref = ref []
  let current : (string * float) list ref = ref []
  let failures = ref 0
  let metric name value = current := (name, value) :: !current

  let fail msg =
    incr failures;
    Format.printf "FAIL: %s@." msg

  let timed name f =
    current := [];
    let t0 = Unix.gettimeofday () in
    f ();
    let wall_s = Unix.gettimeofday () -. t0 in
    let gc = Gc.quick_stat () in
    entries :=
      { name; wall_s; top_heap_words = gc.Gc.top_heap_words;
        metrics = List.rev !current }
      :: !entries

  let json_float v =
    if Float.is_finite v then Printf.sprintf "%.17g" v else "null"

  (* Run provenance: lets a BENCH.json (and the bench_history snapshots
     built from it) answer "which commit, machine and job ladder
     produced these numbers" without external bookkeeping.  The
     tools/bench_json scanner ignores string values outside "name", so
     the extra header fields are schema-compatible with older tools. *)
  let sanitize s =
    String.map
      (fun c ->
        if c = '"' || c = '\\' || Char.code c < 0x20 then '_' else c)
      s

  let commit_id () =
    let line =
      try
        let ic =
          Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null"
        in
        let l = try Some (input_line ic) with End_of_file -> None in
        ignore (Unix.close_process_in ic);
        l
      with Unix.Unix_error _ | Sys_error _ -> None
    in
    match line with
    | Some c when String.trim c <> "" -> String.trim c
    | _ -> "unknown"

  let hostname () = try Unix.gethostname () with Unix.Unix_error _ -> "unknown"

  (* The report lands via the shared atomic writer (temp + fsync +
     rename): a benchmark killed mid-write must not leave a truncated
     BENCH.json for tools/bench_diff to choke on. *)
  let write path =
    let b = Buffer.create 4096 in
    Printf.bprintf b
      "{\n  \"full_sweep\": %b,\n  \"smoke\": %b,\n  \"mttc_runs\": %d,\n\
      \  \"commit\": \"%s\",\n  \"hostname\": \"%s\",\n  \"jobs\": \"%s\",\n\
      \  \"sections\": [\n"
      full_sweep smoke mttc_runs
      (sanitize (commit_id ()))
      (sanitize (hostname ()))
      (if full_sweep then "1,2,4,8" else "1,2,4");
    let all = List.rev !entries in
    let last = List.length all - 1 in
    List.iteri
      (fun i e ->
        Printf.bprintf b
          "    {\"name\": \"%s\", \"wall_s\": %s, \"top_heap_words\": %d"
          e.name (json_float e.wall_s) e.top_heap_words;
        List.iter
          (fun (k, v) -> Printf.bprintf b ", \"%s\": %s" k (json_float v))
          e.metrics;
        Printf.bprintf b "}%s\n" (if i = last then "" else ","))
      all;
    Printf.bprintf b "  ],\n  \"failures\": %d\n}\n" !failures;
    match Netdiv_fault.Io.write_atomic ~path (Buffer.contents b) with
    | Ok () -> ()
    | Error msg -> fail (Printf.sprintf "cannot write %s: %s" path msg)
end

(* emit the min/median/max variance band of a cycle array next to a
   best-of headline metric (see [sorted_copy] above for the contract) *)
let spread base ts =
  let s = sorted_copy ts in
  let n = Array.length s in
  if n > 0 then begin
    Report.metric (base ^ "_min_s") s.(0);
    Report.metric (base ^ "_med_s") s.(n / 2);
    Report.metric (base ^ "_max_s") s.(n - 1)
  end

(* ------------------------------------------------- Tables II and III *)

let similarity_tables () =
  section "[Table II] OS vulnerability similarity (CVE/NVD 1999-2016)";
  Format.printf "%a@." Similarity.pp (Corpus.table Corpus.os_spec);
  section "[Table III] Web browser vulnerability similarity";
  Format.printf "%a@." Similarity.pp (Corpus.table Corpus.browser_spec);
  section "[Table III+] Database vulnerability similarity (curated)";
  Format.printf "%a@." Similarity.pp (Corpus.table Corpus.database_spec);
  (* verify the synthetic-NVD round trip on the fly *)
  let spec = Corpus.os_spec in
  let round =
    Similarity.of_nvd ~since:1999 ~until:2016 (Corpus.synthesize spec)
      (Array.to_list spec.Corpus.products)
  in
  let ok = ref true in
  let n = Similarity.size round in
  let reference = Corpus.table spec in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if
        Similarity.shared_count round i j
        <> Similarity.shared_count reference i j
      then ok := false
    done
  done;
  Format.printf "synthetic NVD round-trip reproduces Table II exactly: %b@."
    !ok

(* -------------------------------------------------------- Figure 1 *)

let figure1 () =
  section "[Figure 1] Motivational example: breach probability of the target";
  let module Gen = Netdiv_graph.Gen in
  let breach a =
    Attack_bn.p_compromise ~base_rate:1.0 ~sim_floor:0.0 a ~entry:0 ~target:3
      ~model:Attack_bn.Best_choice
  in
  let single sim =
    let services =
      [| { Network.sv_name = "app"; sv_products = [| "circle"; "triangle" |];
           sv_similarity = [| 1.0; sim; sim; 1.0 |] } |]
    in
    Network.create ~graph:(Gen.line 4) ~services
      ~hosts:
        (Array.init 4 (fun h ->
             { Network.h_name = Printf.sprintf "h%d" h;
               h_services = [ (0, [||]) ] }))
  in
  let alternate net = Assignment.make net (fun ~host ~service:_ -> host mod 2) in
  Format.printf "(a) single-label, similarity 0.0: %.3f   (paper: 0)@."
    (breach (alternate (single 0.0)));
  Format.printf "(b) single-label, similarity 0.5: %.3f   (paper: ~0.125)@."
    (breach (alternate (single 0.5)));
  let services =
    [|
      { Network.sv_name = "app"; sv_products = [| "circle"; "triangle" |];
        sv_similarity = [| 1.0; 0.5; 0.5; 1.0 |] };
      { Network.sv_name = "square"; sv_products = [| "square" |];
        sv_similarity = [| 1.0 |] };
    |]
  in
  let net =
    Network.create ~graph:(Gen.line 4) ~services
      ~hosts:
        (Array.init 4 (fun h ->
             { Network.h_name = Printf.sprintf "h%d" h;
               h_services =
                 (if h = 0 then [ (0, [||]) ] else [ (0, [||]); (1, [||]) ]) }))
  in
  let c =
    Assignment.make net (fun ~host ~service ->
        if service = 0 then host mod 2 else 0)
  in
  Format.printf "(c) multi-label, two exploits:    %.3f   (paper: ~0.5)@."
    (breach c)

(* -------------------------------------------------------- Figure 2 *)

let figure2 () =
  section "[Figure 2] Example network: optimal vs homogeneous assignment";
  let graph =
    Graph.of_edges ~n:6
      [ (0, 1); (0, 2); (1, 2); (1, 3); (2, 4); (3, 4); (3, 5); (4, 5) ]
  in
  let services =
    [|
      { Network.sv_name = "browser"; sv_products = [| "wb1"; "wb2"; "wb3" |];
        sv_similarity = [| 1.0; 0.3; 0.0; 0.3; 1.0; 0.1; 0.0; 0.1; 1.0 |] };
      { Network.sv_name = "database"; sv_products = [| "db1"; "db2"; "db3" |];
        sv_similarity = [| 1.0; 0.2; 0.05; 0.2; 1.0; 0.0; 0.05; 0.0; 1.0 |] };
    |]
  in
  let hosts =
    Array.init 6 (fun h ->
        { Network.h_name = Printf.sprintf "h%d" h;
          h_services = [ (0, [||]); (1, [||]) ] })
  in
  let net = Network.create ~graph ~services ~hosts in
  let r = Optimize.run net [] in
  let e = Encode.encode net [] in
  Format.printf "optimal energy    %.4f (bound %.4f)@." r.Optimize.energy
    r.Optimize.lower_bound;
  Format.printf "homogeneous       %.4f@."
    (Encode.assignment_energy e (Assignment.mono net));
  Format.printf "random (seed 1)   %.4f@."
    (Encode.assignment_energy e
       (Assignment.random ~rng:(Random.State.make [| 1 |]) net))

(* ---------------------------------------------- case study artifacts *)

let case_assignments = lazy (
  let net = Products.network () in
  (net, Experiments.compute_assignments net))

let figure4 () =
  section "[Figure 4] Case-study optimal assignments";
  let net, a = Lazy.force case_assignments in
  let print_products label assignment h =
    Format.printf "%-10s" label;
    Array.iter
      (fun s ->
        Format.printf " %-9s"
          (Network.product_name net ~service:s
             (Assignment.get assignment ~host:h ~service:s)))
      (Network.host_services net h);
    Format.printf "@."
  in
  for h = 0 to Network.n_hosts net - 1 do
    if Array.length (Network.host_services net h) > 0 then begin
      Format.printf "%s:@." (Network.host_name net h);
      print_products "  (a)" a.Experiments.optimal h;
      print_products "  (b)" a.Experiments.host_constrained h;
      print_products "  (c)" a.Experiments.product_constrained h
    end
  done

let table5 () =
  section "[Table V] Network diversity metric d_bn (entry c4, target t5)";
  let _, a = Lazy.force case_assignments in
  let paper =
    [ ("optimal", 0.81457); ("host-constr", 0.48590);
      ("product-constr", 0.48119); ("random", 0.26622); ("mono", 0.06709) ]
  in
  Format.printf "%-16s %10s %10s %10s %12s@." "assignment" "log10 P'"
    "log10 P" "d_bn" "paper d_bn";
  List.iter
    (fun (r : Experiments.diversity_row) ->
      Format.printf "%-16s %10.3f %10.3f %10.5f %12.5f@." r.label
        r.log_p_ref r.log_p_sim r.d_bn
        (List.assoc r.label paper))
    (Experiments.diversity_table a)

let table6 () =
  section
    (Printf.sprintf "[Table VI] MTTC in ticks (%d runs per cell)" mttc_runs);
  let _, a = Lazy.force case_assignments in
  let paper =
    [ ("optimal", [ 45.313; 37.561; 52.663; 52.491; 24.053 ]);
      ("host-constr", [ 28.041; 16.812; 44.359; 48.472; 15.243 ]);
      ("product-constr", [ 14.549; 15.817; 45.118; 46.257; 14.749 ]);
      ("mono", [ 14.345; 12.654; 19.338; 18.865; 15.916 ]) ]
  in
  Format.printf "%-16s" "assignment";
  List.iter (Format.printf "%9s") Topology.entry_points;
  Format.printf "@.";
  List.iter
    (fun (r : Experiments.mttc_row) ->
      Format.printf "%-16s" r.label;
      List.iter
        (fun (_, (s : Engine.mttc_stats)) -> Format.printf "%9.2f" s.mean_ticks)
        r.per_entry;
      Format.printf "@.";
      Format.printf "%-16s" "  (paper)";
      List.iter (Format.printf "%9.2f") (List.assoc r.label paper);
      Format.printf "@.")
    (Experiments.mttc_table ~runs:mttc_runs a)

(* --------------------------------------------- scalability sweeps *)

let time_instance ~hosts ~degree ~services =
  let net =
    Workload.instance
      { hosts; degree; services; products_per_service = 4; seed = 1 }
  in
  let t0 = Unix.gettimeofday () in
  let report = Optimize.run net [] in
  ignore report.Optimize.energy;
  Unix.gettimeofday () -. t0

let table7 () =
  section "[Table VII] Optimization time (s) vs number of hosts";
  let sizes =
    if full_sweep then [ 100; 200; 400; 600; 800; 1000; 2000; 4000; 6000 ]
    else [ 100; 200; 400; 600; 800; 1000; 2000 ]
  in
  Format.printf "%-30s" "# hosts";
  List.iter (Format.printf "%9d") sizes;
  Format.printf "@.";
  let row label degree services =
    Format.printf "%-30s" label;
    List.iter
      (fun hosts ->
        Format.printf "%9.3f%!" (time_instance ~hosts ~degree ~services))
      sizes;
    Format.printf "@."
  in
  row "mid-density (deg 20, 15 svc)" 20 15;
  let high_sizes = if full_sweep then sizes else [ 100; 200; 400; 600 ] in
  Format.printf "%-30s" "# hosts";
  List.iter (Format.printf "%9d") high_sizes;
  Format.printf "@.";
  Format.printf "%-30s" "high-density (deg 40, 25 svc)";
  List.iter
    (fun hosts ->
      Format.printf "%9.3f%!" (time_instance ~hosts ~degree:40 ~services:25))
    high_sizes;
  Format.printf "@."

let table8 () =
  section "[Table VIII] Optimization time (s) vs average degree";
  let degrees =
    if full_sweep then [ 5; 10; 15; 20; 25; 30; 35; 40; 45; 50 ]
    else [ 5; 10; 20; 30; 40; 50 ]
  in
  Format.printf "%-30s" "# degree";
  List.iter (Format.printf "%9d") degrees;
  Format.printf "@.";
  Format.printf "%-30s" "mid-scale (1000 hosts, 15 svc)";
  List.iter
    (fun degree ->
      Format.printf "%9.3f%!" (time_instance ~hosts:1000 ~degree ~services:15))
    degrees;
  Format.printf "@.";
  if full_sweep then begin
    Format.printf "%-30s" "large (6000 hosts, 25 svc)";
    List.iter
      (fun degree ->
        Format.printf "%9.3f%!"
          (time_instance ~hosts:6000 ~degree ~services:25))
      degrees;
    Format.printf "@."
  end

let table9 () =
  section "[Table IX] Optimization time (s) vs number of services";
  let services = [ 5; 10; 15; 20; 25; 30 ] in
  Format.printf "%-30s" "# services";
  List.iter (Format.printf "%9d") services;
  Format.printf "@.";
  Format.printf "%-30s" "mid-scale (1000 hosts, deg 20)";
  List.iter
    (fun s ->
      Format.printf "%9.3f%!" (time_instance ~hosts:1000 ~degree:20 ~services:s))
    services;
  Format.printf "@.";
  if full_sweep then begin
    Format.printf "%-30s" "large (6000 hosts, deg 40)";
    List.iter
      (fun s ->
        Format.printf "%9.3f%!"
          (time_instance ~hosts:6000 ~degree:40 ~services:s))
      services;
    Format.printf "@."
  end

(* ---------------------------------------------- diversity metrics *)

let metrics_table () =
  section "[Metrics] d1 / least-effort / d2 / d3 per assignment (entry c4, target t5)";
  let net, a = Lazy.force case_assignments in
  let entry = Topology.host "c4" and target = Topology.host "t5" in
  let module M = Netdiv_metrics.Metrics in
  Format.printf "%-16s %8s %6s %8s %10s@." "assignment" "d1" "k" "d2" "d3";
  List.iter
    (fun (label, assignment) ->
      let k =
        match M.least_effort ~limit:5 assignment ~entry ~target with
        | Ok e -> string_of_int (List.length e)
        | Error `Above_limit -> ">5"
        | Error `Unreachable -> "inf"
      in
      Format.printf "%-16s %8.4f %6s %8.4f %10.5f@." label (M.d1 assignment)
        k
        (M.d2 assignment ~entry ~target)
        (M.d3 assignment ~entry ~target))
    (Experiments.labelled a);
  ignore net

(* --------------------------------------------------- ablation benches *)

let ablation_solvers () =
  section "[Ablation] solvers on a 400-host random network (deg 10, 5 svc)";
  let net =
    Workload.instance
      { hosts = 400; degree = 10; services = 5; products_per_service = 4;
        seed = 3 }
  in
  let e = Encode.encode net [] in
  let mono = Encode.assignment_energy e (Assignment.mono net) in
  Format.printf "%-10s %12s %12s %10s %8s@." "solver" "energy" "bound"
    "time (s)" "vs mono";
  List.iter
    (fun solver ->
      let r = Optimize.run ~solver net [] in
      Format.printf "%-10s %12.2f %12.2f %10.3f %7.1f%%@."
        (Optimize.solver_name solver)
        r.Optimize.energy r.Optimize.lower_bound r.Optimize.runtime_s
        (100.0 *. r.Optimize.energy /. mono))
    [ Optimize.Trws_icm; Optimize.Trws; Optimize.Icm; Optimize.Bp;
      Optimize.Sa ];
  Format.printf "%-10s %12.2f@." "mono" mono

let ablation_topologies () =
  section "[Ablation] topology families at ~400 hosts, average degree ~6";
  let module T = Netdiv_graph.Topologies in
  let module St = Netdiv_graph.Stats in
  let rng () = Random.State.make [| 11 |] in
  let zoned =
    (T.zoned ~rng:(rng ()) ~zone_sizes:(Array.make 20 20) ~intra_degree:5
       ~gateway_links:2 ())
      .T.graph
  in
  let graphs =
    [
      ("uniform", Netdiv_graph.Gen.avg_degree ~rng:(rng ()) ~n:400 ~degree:6);
      ("scale-free", T.barabasi_albert ~rng:(rng ()) ~n:400 ~m:3);
      ("small-world", T.watts_strogatz ~rng:(rng ()) ~n:400 ~k:6 ~beta:0.2);
      ("zoned-ics", zoned);
    ]
  in
  Format.printf "%-12s %7s %7s %9s %12s %12s %9s@." "topology" "edges"
    "maxdeg" "cluster" "opt energy" "mono" "time (s)";
  List.iter
    (fun (label, graph) ->
      let services =
        Array.init 5 (fun sv ->
            { Netdiv_core.Network.sv_name = Printf.sprintf "svc%d" sv;
              sv_products = Array.init 4 (fun k -> Printf.sprintf "p%d" k);
              sv_similarity =
                Workload.synthetic_similarity
                  ~rng:(Random.State.make [| 5; sv |])
                  ~products:4 })
      in
      let hosts =
        Array.init (Netdiv_graph.Graph.n_nodes graph) (fun h ->
            { Netdiv_core.Network.h_name = Printf.sprintf "h%d" h;
              h_services = List.init 5 (fun sv -> (sv, [||])) })
      in
      let net = Network.create ~graph ~services ~hosts in
      let r = Optimize.run net [] in
      let e = Encode.encode net [] in
      let mono = Encode.assignment_energy e (Assignment.mono net) in
      Format.printf "%-12s %7d %7d %9.3f %12.2f %12.2f %9.3f@." label
        (Netdiv_graph.Graph.n_edges graph)
        (Netdiv_graph.Graph.max_degree graph)
        (St.average_clustering graph) r.Optimize.energy mono
        r.Optimize.runtime_s)
    graphs

let ablation_weighted () =
  section "[Ablation] severity-weighted similarity on the case study";
  let plain = Products.network () in
  let weighted = Products.network_weighted () in
  let entry = Topology.host "c4" and target = Topology.host "t5" in
  List.iter
    (fun (label, net) ->
      let r = Optimize.run net [] in
      let dbn =
        Netdiv_bayes.Attack_bn.diversity r.Optimize.assignment ~entry ~target
      in
      Format.printf "%-10s optimal energy %10.4f  d_bn %8.5f@." label
        r.Optimize.energy dbn)
    [ ("plain", plain); ("weighted", weighted) ];
  (* do the two objectives agree on the deployment? *)
  let a_plain = (Optimize.run plain []).Optimize.assignment in
  let a_weighted = (Optimize.run weighted []).Optimize.assignment in
  let differing = ref 0 in
  for h = 0 to Network.n_hosts plain - 1 do
    Array.iter
      (fun s ->
        if
          Assignment.get a_plain ~host:h ~service:s
          <> Assignment.get a_weighted ~host:h ~service:s
        then incr differing)
      (Network.host_services plain h)
  done;
  Format.printf "slots assigned differently under the weighted metric: %d@."
    !differing

let ablation_constraints () =
  section "[Ablation] optimization cost & diversity vs number of Fix constraints";
  let net = Products.network () in
  let all = Products.host_constraints net in
  Format.printf "%-14s %10s %12s %10s@." "# constraints" "energy" "bound"
    "time (s)";
  List.iter
    (fun k ->
      let cs = List.filteri (fun i _ -> i < k) all in
      let r = Optimize.run net cs in
      Format.printf "%-14d %10.4f %12.4f %10.3f@." k r.Optimize.energy
        r.Optimize.lower_bound r.Optimize.runtime_s)
    [ 0; 3; 6; 9; 11 ]

(* ---------------------------------------------- scaled realistic ICS *)

let scaled_ics () =
  section "[Scaled] realistic zoned ICS (case-study roles at N x scale)";
  let module Scaled = Netdiv_casestudy.Scaled in
  let scales = if full_sweep then [ 1; 5; 20; 50; 100; 200 ] else [ 1; 5; 20; 50 ] in
  Format.printf "%6s %7s %8s %10s %12s %12s %7s@." "scale" "hosts" "links"
    "opt (s)" "energy" "bound" "gap";
  List.iter
    (fun scale ->
      let s = Scaled.generate ~scale () in
      let r = Optimize.run s.Scaled.network [] in
      let gap =
        100.0
        *. (r.Optimize.energy -. r.Optimize.lower_bound)
        /. Float.max r.Optimize.energy 1e-9
      in
      Format.printf "%6d %7d %8d %10.3f %12.2f %12.2f %6.1f%%@." scale
        (Network.n_hosts s.Scaled.network)
        (Graph.n_edges (Network.graph s.Scaled.network))
        r.Optimize.runtime_s r.Optimize.energy r.Optimize.lower_bound gap;
      if scale <= 5 then begin
        let mono = Assignment.mono s.Scaled.network in
        let entry = List.hd s.Scaled.entries in
        let opt_stats =
          Engine.mttc_parallel ~seed:5 ~runs:300 r.Optimize.assignment
            ~entry ~target:s.Scaled.target ()
        in
        let mono_stats =
          Engine.mttc_parallel ~seed:5 ~runs:300 mono ~entry
            ~target:s.Scaled.target ()
        in
        Format.printf
          "       MTTC from corporate: optimal %.1f vs mono %.1f ticks@."
          opt_stats.Engine.mean_ticks mono_stats.Engine.mean_ticks
      end)
    scales

(* ------------------------------------------- attacker capability *)

let ablation_attacker () =
  section "[Ablation] attacker capability levels (case study, entry c4, MTTC)";
  let _, a = Lazy.force case_assignments in
  let entry = Topology.host "c4" and target = Topology.host "t5" in
  Format.printf "%-16s %14s %14s %14s@." "assignment" "reconnaissance"
    "uniform" "static arsenal";
  List.iter
    (fun (label, assignment) ->
      let mean strategy seed =
        let stats, _ =
          Engine.mttc_summary
            ~rng:(Random.State.make [| seed |])
            ~strategy ~runs:mttc_runs assignment ~entry ~target
        in
        if stats.Engine.successes = 0 then nan else stats.Engine.mean_ticks
      in
      Format.printf "%-16s %14.2f %14.2f %14.2f@." label
        (mean Engine.Best_exploit 41)
        (mean Engine.Uniform_exploit 42)
        (mean Engine.Arsenal_exploit 43))
    (List.filter
       (fun (l, _) -> l = "optimal" || l = "mono")
       (Experiments.labelled a))

(* ------------------------------------------- defense in depth *)

let ablation_defense_in_depth () =
  section "[Ablation] asset-weighted optimization (protecting t5)";
  let net, _ = Lazy.force case_assignments in
  let target = Topology.host "t5" in
  let dist = Netdiv_graph.Traversal.bfs (Network.graph net) target in
  let weight u v =
    if min dist.(u) dist.(v) <= 1 && dist.(u) >= 0 && dist.(v) >= 0 then 5.0
    else 1.0
  in
  let plain = Optimize.run net [] in
  let weighted = Optimize.run ~edge_weight:weight net [] in
  Format.printf "%-22s %12s %12s@." "" "plain opt" "weighted opt";
  let unweighted_energy a =
    Encode.assignment_energy (Encode.encode net []) a
  in
  Format.printf "%-22s %12.4f %12.4f@." "unweighted energy"
    (unweighted_energy plain.Optimize.assignment)
    (unweighted_energy weighted.Optimize.assignment);
  List.iter
    (fun entry_name ->
      let entry = Topology.host entry_name in
      let mttc a seed =
        (Engine.mttc_parallel ~seed ~runs:mttc_runs a ~entry ~target ())
          .Engine.mean_ticks
      in
      Format.printf "%-22s %12.2f %12.2f@."
        (Printf.sprintf "MTTC from %s" entry_name)
        (mttc plain.Optimize.assignment 51)
        (mttc weighted.Optimize.assignment 52))
    Topology.entry_points

(* ------------------------------------------- certified optimality *)

let extension_certified () =
  section "[Exact] branch-and-bound certificates";
  (* the Fig. 2 example certifies instantly *)
  let graph =
    Graph.of_edges ~n:6
      [ (0, 1); (0, 2); (1, 2); (1, 3); (2, 4); (3, 4); (3, 5); (4, 5) ]
  in
  let services =
    [|
      { Network.sv_name = "browser"; sv_products = [| "wb1"; "wb2"; "wb3" |];
        sv_similarity = [| 1.0; 0.3; 0.0; 0.3; 1.0; 0.1; 0.0; 0.1; 1.0 |] };
      { Network.sv_name = "database"; sv_products = [| "db1"; "db2"; "db3" |];
        sv_similarity = [| 1.0; 0.2; 0.05; 0.2; 1.0; 0.0; 0.05; 0.0; 1.0 |] };
    |]
  in
  let hosts =
    Array.init 6 (fun h ->
        { Network.h_name = Printf.sprintf "h%d" h;
          h_services = [ (0, [||]); (1, [||]) ] })
  in
  let net = Network.create ~graph ~services ~hosts in
  let exact = Optimize.run ~solver:Optimize.Exact net [] in
  let approx = Optimize.run net [] in
  Format.printf
    "Fig. 2 network: certified optimum %.4f in %.3fs; trws+icm %.4f      (%s)@."
    exact.Optimize.energy exact.Optimize.runtime_s approx.Optimize.energy
    (if abs_float (exact.Optimize.energy -. approx.Optimize.energy) < 1e-9
     then "matches the certificate"
     else
       Printf.sprintf "approximation gap %.4f caught by certification"
         (approx.Optimize.energy -. exact.Optimize.energy));
  if full_sweep then begin
    (* the full case study: expensive, only in the full sweep *)
    let net, _ = Lazy.force case_assignments in
    let e = Encode.encode net [] in
    let bb = Netdiv_mrf.Bnb.solve (Encode.mrf e) in
    Format.printf
      "case study: incumbent %.4f, certified %b (%d search nodes, %.1fs)@."
      bb.Netdiv_mrf.Solver.energy bb.Netdiv_mrf.Solver.converged
      bb.Netdiv_mrf.Solver.iterations bb.Netdiv_mrf.Solver.runtime_s
  end

(* ------------------------------------------- detection & response *)

let extension_defense () =
  section "[Extension] detection & response: P(t5 compromised) vs detection rate";
  let _, a = Lazy.force case_assignments in
  let entry = Topology.host "c4" and target = Topology.host "t5" in
  let rates = [ 0.0; 0.01; 0.03; 0.1 ] in
  Format.printf "%-16s" "assignment";
  List.iter (fun r -> Format.printf "  det=%-6.2f" r) rates;
  Format.printf "@.";
  List.iter
    (fun (label, assignment) ->
      Format.printf "%-16s" label;
      List.iter
        (fun rate ->
          let stats =
            Engine.mttc_defended
              ~rng:(Random.State.make [| 71 |])
              ~defense:{ Engine.detect_rate = rate; immunize = true }
              ~max_ticks:2000 ~runs:(max 200 (mttc_runs / 2))
              assignment ~entry ~target
          in
          Format.printf "  %10.3f"
            (float_of_int stats.Engine.successes
            /. float_of_int stats.Engine.runs))
        rates;
      Format.printf "@.")
    (List.filter
       (fun (l, _) -> l = "optimal" || l = "mono")
       (Experiments.labelled a))

(* ------------------------------------------- incremental refinement *)

let extension_refine () =
  section "[Extension] incremental re-optimization after a policy change";
  let s = Netdiv_casestudy.Scaled.generate ~scale:50 () in
  let net = s.Netdiv_casestudy.Scaled.network in
  let base = Optimize.run net [] in
  (* the new policy: pin host 0's first service to its first candidate *)
  let service = (Network.host_services net 0).(0) in
  let fresh =
    [ Netdiv_core.Constr.Fix
        { host = 0; service;
          product = (Network.candidates net ~host:0 ~service).(0) } ]
  in
  let full = Optimize.run net fresh in
  let refined = Optimize.refine ~previous:base.Optimize.assignment net fresh in
  Format.printf "%-22s %12s %10s@." "" "energy" "time (s)";
  Format.printf "%-22s %12.2f %10.3f@." "full re-solve" full.Optimize.energy
    full.Optimize.runtime_s;
  Format.printf "%-22s %12.2f %10.3f@." "warm-started refine"
    refined.Optimize.energy refined.Optimize.runtime_s;
  Format.printf "constraints satisfied: full %b, refine %b@."
    full.Optimize.constraints_ok refined.Optimize.constraints_ok

(* ------------------------------------------- host risk ranking *)

let extension_ranking () =
  section "[Extension] riskiest hosts under the optimal deployment (entry c4)";
  let net, a = Lazy.force case_assignments in
  let marginals =
    Attack_bn.host_marginals ~samples:50_000
      ~rng:(Random.State.make [| 81 |])
      a.Experiments.optimal ~entry:(Topology.host "c4")
      ~model:Attack_bn.Uniform_choice
  in
  let sorted =
    List.sort (fun (_, p) (_, q) -> compare q p) (Array.to_list marginals)
  in
  List.iteri
    (fun i (h, p) ->
      if i < 8 then
        Format.printf "%2d. %-6s %8.5f@." (i + 1) (Network.host_name net h) p)
    sorted

(* ------------------------------------------- cost-aware diversification *)

let extension_cost () =
  section "[Extension] cost-constrained diversification (Pareto front)";
  let net, _ = Lazy.force case_assignments in
  (* commercial products carry license costs; open source is free *)
  let license ~host:_ ~service ~product =
    match (service, product) with
    | 0, (0 | 1) -> 2.0   (* Windows *)
    | 1, (0 | 1) -> 0.5   (* Internet Explorer (support contract) *)
    | 2, (0 | 1) -> 4.0   (* MS SQL Server *)
    | _ -> 0.0
  in
  let points =
    Netdiv_core.Cost.pareto ~cost:license
      ~lambdas:[ 0.0; 0.005; 0.01; 0.02; 0.05; 0.1; 0.5; 2.0 ]
      net []
  in
  Format.printf "%10s %12s %12s@." "lambda" "cost" "energy";
  List.iter
    (fun (p : Netdiv_core.Cost.point) ->
      Format.printf "%10.3f %12.2f %12.4f@." p.Netdiv_core.Cost.lambda
        p.Netdiv_core.Cost.cost p.Netdiv_core.Cost.energy)
    points;
  match
    Netdiv_core.Cost.cheapest_under ~cost:license ~budget:40.0 net []
  with
  | Some p ->
      Format.printf
        "most diverse deployment under a 40-unit budget: cost %.2f,          energy %.4f@."
        p.Netdiv_core.Cost.cost p.Netdiv_core.Cost.energy
  | None -> Format.printf "no deployment fits a 40-unit budget@."

(* ------------------------------------------- segmentation analysis *)

let extension_segmentation () =
  section "[Extension] segmentation: minimum cuts isolating t5";
  let net, _ = Lazy.force case_assignments in
  let g = Network.graph net in
  let target = Topology.host "t5" in
  List.iter
    (fun entry_name ->
      let entry = Topology.host entry_name in
      let cut = Netdiv_graph.Cut.min_edge_cut g ~source:entry ~sink:target in
      Format.printf "%-4s -> t5: %d edge-disjoint paths; cut {%s}@."
        entry_name (List.length cut)
        (String.concat ", "
           (List.map
              (fun (u, v) ->
                Printf.sprintf "%s-%s" (Network.host_name net u)
                  (Network.host_name net v))
              cut)))
    Topology.entry_points

(* ------------------------------------------- anytime quality *)

let extension_anytime () =
  section
    "[Anytime] outcome & gap-at-deadline on a 1000-host instance (deg 20, \
     15 svc)";
  let module Runner = Netdiv_mrf.Runner in
  let net =
    Workload.instance
      { hosts = 1000; degree = 20; services = 15; products_per_service = 4;
        seed = 1 }
  in
  let encoded = Encode.encode net [] in
  let budgets =
    [ Some 0.02; Some 0.1; Some 0.5; Some 2.0; None ]
  in
  Format.printf "%-10s %-28s %12s %12s %8s %10s@." "budget" "outcome"
    "energy" "bound" "gap" "time (s)";
  List.iter
    (fun seconds ->
      let budget = Option.map Runner.Budget.seconds seconds in
      let result, outcome, _, _ =
        Optimize.solve_encoded_outcome ?budget encoded
      in
      let gap =
        let g = Netdiv_mrf.Solver.optimality_gap result in
        if Float.is_finite g then
          Printf.sprintf "%.1f%%"
            (100.0 *. g
            /. Float.max result.Netdiv_mrf.Solver.energy 1e-9)
        else "n/a"
      in
      Format.printf "%-10s %-28s %12.2f %12s %8s %10.3f@."
        (match seconds with
        | Some s -> Printf.sprintf "%gs" s
        | None -> "unlimited")
        (Format.asprintf "%a" Runner.pp_outcome outcome)
        result.Netdiv_mrf.Solver.energy
        (Format.asprintf "%a" Netdiv_mrf.Solver.pp_float
           result.Netdiv_mrf.Solver.lower_bound)
        gap result.Netdiv_mrf.Solver.runtime_s)
    budgets

(* ---------------------------- parallel speedup & determinism checks *)

(* The 4-zone segmented instance shared by the speedup and the
   observability-overhead sections: four mutually isolated zones
   (air-gapped ICS cells).  The component decomposition is this
   section's unit of parallelism — one domain per air-gapped zone; the
   single-component regime has its own section
   ([intra_component_speedup]) exercising the partitioned schedules.
   Both sections here must build the exact same instance so their
   solver_energy fingerprints stay comparable. *)
let segmented_instance () =
  let zones = 4 and zone_hosts = 200 in
  let n_hosts = zones * zone_hosts in
  let edges = ref [] in
  for z = 0 to zones - 1 do
    let g =
      Netdiv_graph.Gen.avg_degree
        ~rng:(Random.State.make [| 1; z |])
        ~n:zone_hosts ~degree:8
    in
    Graph.iter_edges
      (fun u v ->
        edges := ((z * zone_hosts) + u, (z * zone_hosts) + v) :: !edges)
      g
  done;
  let graph = Graph.of_edges ~n:n_hosts !edges in
  let services =
    Array.init 5 (fun sv ->
        { Network.sv_name = Printf.sprintf "svc%d" sv;
          sv_products = Array.init 4 (fun k -> Printf.sprintf "p%d" k);
          sv_similarity =
            Workload.synthetic_similarity
              ~rng:(Random.State.make [| 5; sv |])
              ~products:4 })
  in
  let hosts =
    Array.init n_hosts (fun h ->
        { Network.h_name = Printf.sprintf "h%d" h;
          h_services = List.init 5 (fun sv -> (sv, [||])) })
  in
  let net = Network.create ~graph ~services ~hosts in
  (net, zone_hosts)

(* jobs=1 best and median times from scalability_speedup, reused by
   observability_overhead and fault_overhead as their tracing-off
   reference.  The cross-section comparison uses the medians: the two
   sections measure the identical code path minutes apart, so their
   best-of figures differ by scheduler and frequency drift that the
   median resists (the hard 3% overhead contracts are the
   contemporaneous on-vs-off comparisons inside each section). *)
let segmented_solve_1j_s = ref nan
let segmented_solve_1j_med_s = ref nan

let scalability_speedup () =
  section
    "[Parallel] serial-vs-parallel speedup (4-zone segmented instance)";
  let net, zone_hosts = segmented_instance () in
  let job_counts = if full_sweep then [ 1; 2; 4; 8 ] else [ 1; 2; 4 ] in
  (* One untimed warmup per job count (captures the deterministic
     result and faults code + instance into cache), then best-of-5
     timed runs taken round-robin across job counts with a major
     collection before each: measuring all repetitions of one job
     count back to back biases later rows, which pay the heap growth
     and GC debt accumulated by earlier ones. *)
  let reports =
    List.map (fun jobs -> (jobs, Optimize.run ~jobs net [])) job_counts
  in
  let times : (int, float list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter (fun jobs -> Hashtbl.replace times jobs (ref [])) job_counts;
  for _round = 1 to 5 do
    List.iter
      (fun jobs ->
        Gc.full_major ();
        let t0 = Unix.gettimeofday () in
        ignore (Optimize.run ~jobs net []);
        let t = Unix.gettimeofday () -. t0 in
        let cell = Hashtbl.find times jobs in
        cell := t :: !cell)
      job_counts
  done;
  let cycles jobs = Array.of_list !(Hashtbl.find times jobs) in
  let best jobs = Array.fold_left Float.min infinity (cycles jobs) in
  let results =
    List.map (fun (jobs, r) -> (jobs, (best jobs, r))) reports
  in
  let _, (t_serial, reference) = List.hd results in
  segmented_solve_1j_s := t_serial;
  (let s = sorted_copy (cycles 1) in
   segmented_solve_1j_med_s := s.(Array.length s / 2));
  Format.printf "%-6s %10s %9s %14s@." "jobs" "time (s)" "speedup" "energy";
  List.iter
    (fun (jobs, (t, report)) ->
      Format.printf "%-6d %10.3f %8.2fx %14.2f@." jobs t (t_serial /. t)
        report.Optimize.energy;
      Report.metric (Printf.sprintf "solve_%dj_s" jobs) t;
      spread (Printf.sprintf "solve_%dj" jobs) (cycles jobs);
      Report.metric (Printf.sprintf "speedup_%dj" jobs) (t_serial /. t);
      if
        not
          (report.Optimize.energy = reference.Optimize.energy
          && Assignment.equal report.Optimize.assignment
               reference.Optimize.assignment)
      then
        Report.fail
          (Printf.sprintf "solver result at --jobs %d differs from --jobs 1"
             jobs))
    results;
  Report.metric "solver_energy" reference.Optimize.energy;
  Report.metric "solver_gap"
    (Netdiv_mrf.Solver.optimality_gap reference.Optimize.solver_result);
  (* the simulation fan-out must give identical statistics for the same
     seed at any domain count *)
  let a = reference.Optimize.assignment in
  (* entry and target must share a zone: nothing crosses an air gap *)
  let entry = 0 and target = zone_hosts - 1 in
  (* one untimed run captures the (domain-count-invariant) statistics;
     the timing is min-of-N — at smoke scale both domain counts run the
     batch inline, so a single-shot ratio was pure timer noise and the
     mttc_speedup_4d metric wobbled below 1.0 *)
  let mttc domains =
    let stats =
      Engine.mttc_parallel ~domains ~seed:11 ~runs:mttc_runs a ~entry ~target
        ()
    in
    let t =
      best_of (fun () ->
          Engine.mttc_parallel ~domains ~seed:11 ~runs:mttc_runs a ~entry
            ~target ())
    in
    (t, stats)
  in
  let t1, s1 = mttc 1 in
  let t4, s4 = mttc 4 in
  Format.printf
    "mttc %d runs: 1 domain %.3fs, 4 domains %.3fs (%.2fx); stats equal: \
     %b@."
    mttc_runs t1 t4 (t1 /. t4) (s1 = s4);
  Report.metric "mttc_1d_s" t1;
  Report.metric "mttc_4d_s" t4;
  Report.metric "mttc_speedup_4d" (t1 /. t4);
  if s1 <> s4 then
    Report.fail "mttc_parallel statistics depend on the domain count"

(* --------------------- intra-component parallel inference speedup *)

(* Single-component zoned instance: unlike [segmented_instance] the
   zones are joined by gateway links, so the whole model is ONE
   connected MRF component — the paper's hard case, where
   across-component parallelism has nothing to split and the
   partitioned TRW-S / chromatic BP schedules must carry the load.  At
   the --full tier the instance holds 10,000 hosts (50,000 MRF nodes);
   the smoke tier shrinks it to 1,500 hosts while keeping the node
   count above the partitioning threshold so the parallel code paths
   still execute. *)
let intra_instance () =
  let zones, zone_hosts, n_services, n_products =
    if full_sweep then (10, 1000, 5, 4) else (5, 300, 3, 4)
  in
  let n_hosts = zones * zone_hosts in
  let z =
    Netdiv_graph.Topologies.zoned
      ~rng:(Random.State.make [| 23 |])
      ~zone_sizes:(Array.make zones zone_hosts)
      ()
  in
  let services =
    Array.init n_services (fun sv ->
        { Network.sv_name = Printf.sprintf "svc%d" sv;
          sv_products =
            Array.init n_products (fun k -> Printf.sprintf "p%d" k);
          sv_similarity =
            Workload.synthetic_similarity
              ~rng:(Random.State.make [| 7; sv |])
              ~products:n_products })
  in
  let hosts =
    Array.init n_hosts (fun h ->
        { Network.h_name = Printf.sprintf "h%d" h;
          h_services = List.init n_services (fun sv -> (sv, [||])) })
  in
  Network.create ~graph:z.Netdiv_graph.Topologies.graph ~services ~hosts

let intra_component_speedup () =
  section
    (Printf.sprintf
       "[Parallel] intra-component speedup (single-component zoned \
        instance, %s tier)"
       (if full_sweep then "full" else "smoke"));
  let net = intra_instance () in
  let job_counts = [ 1; 2; 4 ] in
  (* warmups capture the deterministic per-jobs results; the timings are
     min-of-N taken round-robin across job counts (see best_of) so no
     row pays the heap debt of earlier ones *)
  let reports =
    List.map (fun jobs -> (jobs, Optimize.run ~jobs net [])) job_counts
  in
  let times : (int, float list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter (fun jobs -> Hashtbl.replace times jobs (ref [])) job_counts;
  for _round = 1 to bench_rounds do
    List.iter
      (fun jobs ->
        Gc.full_major ();
        let t0 = Unix.gettimeofday () in
        ignore (Optimize.run ~jobs net []);
        let t = Unix.gettimeofday () -. t0 in
        let cell = Hashtbl.find times jobs in
        cell := t :: !cell)
      job_counts
  done;
  let cycles jobs = Array.of_list !(Hashtbl.find times jobs) in
  let best jobs = Array.fold_left Float.min infinity (cycles jobs) in
  let _, reference = List.hd reports in
  let t_serial = best 1 in
  Format.printf "%-6s %10s %9s %14s@." "jobs" "time (s)" "speedup" "energy";
  List.iter
    (fun (jobs, report) ->
      let t = best jobs in
      Format.printf "%-6d %10.3f %8.2fx %14.2f@." jobs t (t_serial /. t)
        report.Optimize.energy;
      Report.metric (Printf.sprintf "solve_%dj_s" jobs) t;
      spread (Printf.sprintf "solve_%dj" jobs) (cycles jobs);
      Report.metric (Printf.sprintf "speedup_%dj" jobs) (t_serial /. t);
      (* the hard gate of the whole exercise: the partitioned schedules
         must be bitwise job-count-invariant, not merely close *)
      if
        not
          (report.Optimize.energy = reference.Optimize.energy
          && Assignment.equal report.Optimize.assignment
               reference.Optimize.assignment)
      then
        Report.fail
          (Printf.sprintf
             "intra-component result at --jobs %d differs from --jobs 1"
             jobs))
    reports;
  Report.metric "solver_energy" reference.Optimize.energy;
  (* the >= 2x target is only measurable where 4 cores exist; the
     determinism checks above run unconditionally *)
  let cores = Domain.recommended_domain_count () in
  Report.metric "cores" (float_of_int cores);
  let s4 = t_serial /. best 4 in
  if full_sweep && cores >= 4 && s4 < 2.0 then
    Report.fail
      (Printf.sprintf
         "intra-component speedup at 4 jobs is %.2fx (< 2.0x target)" s4)

(* ------------------------------- observability overhead (tracing off) *)

let observability_overhead () =
  section "[Obs] tracing overhead on the 4-zone segmented instance";
  (* disabled-path microbenchmark: a span is one atomic load and a
     branch on each side; two million pairs give a stable per-pair
     figure even under timer jitter *)
  let pairs = 2_000_000 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to pairs do
    Obs.begin_span "off";
    Obs.end_span "off"
  done;
  let pair_ns = (Unix.gettimeofday () -. t0) /. float_of_int pairs *. 1e9 in
  Format.printf "disabled begin/end pair: %.1f ns@." pair_ns;
  Report.metric "span_disabled_ns" pair_ns;
  if pair_ns > 200.0 then
    Report.fail
      (Printf.sprintf "disabled span pair costs %.0f ns (> 200 ns budget)"
         pair_ns);
  let net, _ = segmented_instance () in
  (* untimed warmups capture the deterministic result under each mode *)
  let ref_off = Optimize.run ~jobs:1 net [] in
  Obs.set_enabled true;
  Obs.reset ();
  let ref_on = Optimize.run ~jobs:1 net [] in
  Obs.set_enabled false;
  (* best-of-5, alternating off/on with a major collection before each
     timed run — same protocol as scalability_speedup, so the two
     sections' times stay comparable *)
  let offs = Array.make 5 0.0 and ons = Array.make 5 0.0 in
  for round = 0 to 4 do
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    ignore (Optimize.run ~jobs:1 net []);
    offs.(round) <- Unix.gettimeofday () -. t0;
    Obs.set_enabled true;
    Obs.reset ();
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    ignore (Optimize.run ~jobs:1 net []);
    ons.(round) <- Unix.gettimeofday () -. t0;
    Obs.set_enabled false
  done;
  Obs.reset ();
  let best_off = ref (Array.fold_left Float.min infinity offs)
  and best_on = ref (Array.fold_left Float.min infinity ons) in
  Format.printf "solve tracing off: %.3fs, tracing on: %.3fs (+%.1f%%)@."
    !best_off !best_on
    (((!best_on /. !best_off) -. 1.0) *. 100.0);
  Report.metric "solve_off_s" !best_off;
  spread "solve_off" offs;
  Report.metric "solve_on_s" !best_on;
  spread "solve_on" ons;
  Report.metric "overhead_on_pct" (((!best_on /. !best_off) -. 1.0) *. 100.0);
  Report.metric "solver_energy" ref_off.Optimize.energy;
  if
    not
      (ref_on.Optimize.energy = ref_off.Optimize.energy
      && Assignment.equal ref_on.Optimize.assignment
           ref_off.Optimize.assignment)
  then Report.fail "solver result differs with tracing enabled";
  (* cross-section tripwire: scalability_speedup's jobs=1 solve runs
     the identical code path (tracing is off in both), so any real gap
     here would mean the disabled instrumentation grew a per-call cost.
     Medians are compared because the sections run minutes apart and
     their best-of figures carry scheduler/frequency drift; the budget
     matches bench_diff's 25% noise tolerance.  The hard 3% contract
     is the contemporaneous tracing-on-vs-off gate above, plus
     bench_diff's cross-commit gate on solve_off_s. *)
  let base = !segmented_solve_1j_med_s in
  if Float.is_nan base then
    Report.fail "scalability_speedup did not run before observability_overhead"
  else begin
    let med_off =
      let s = sorted_copy offs in
      s.(Array.length s / 2)
    in
    let drift_pct = ((med_off /. base) -. 1.0) *. 100.0 in
    Format.printf
      "tracing-off vs scalability jobs=1 (medians): %+.1f%% (gate: +25%%)@."
      drift_pct;
    Report.metric "off_vs_baseline_pct" drift_pct;
    if drift_pct > 25.0 then
      Report.fail
        (Printf.sprintf
           "tracing-off solve is %.1f%% slower than the jobs=1 baseline (> \
            25%% drift budget)"
           drift_pct)
  end

(* ------------------------------ flight-recorder overhead (installed) *)

(* The black-box counterpart of observability_overhead: the recorder is
   meant to stay installed on production solves, so both its paths are
   gated — the uninstalled record (one domain-local read and a branch)
   against the 200 ns microbench budget, and the installed whole-solve
   overhead against the same 3% envelope as tracing.  The solver result
   must be bitwise identical with the recorder on and off. *)
let recorder_overhead () =
  section "[Obs] flight-recorder overhead on the 4-zone segmented instance";
  let module Recorder = Netdiv_obs.Recorder in
  let records = 2_000_000 in
  let record () =
    Recorder.sweep ~iter:0 ~energy:0.0 ~bound:0.0 ~residual:0.0 ~msg_potts:0
      ~msg_sparse:0 ~msg_generic:0
  in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to records do
    record ()
  done;
  let off_ns = (Unix.gettimeofday () -. t0) /. float_of_int records *. 1e9 in
  let on_ns =
    Recorder.with_recorder
      (Recorder.create "bench-micro")
      (fun () ->
        let t0 = Unix.gettimeofday () in
        for _ = 1 to records do
          record ()
        done;
        (Unix.gettimeofday () -. t0) /. float_of_int records *. 1e9)
  in
  Format.printf "record: uninstalled %.1f ns, installed %.1f ns@." off_ns
    on_ns;
  Report.metric "record_uninstalled_ns" off_ns;
  Report.metric "record_installed_ns" on_ns;
  if off_ns > 200.0 then
    Report.fail
      (Printf.sprintf "uninstalled frame record costs %.0f ns (> 200 ns \
                       budget)" off_ns);
  let net, _ = segmented_instance () in
  (* untimed warmups capture the deterministic result under each mode;
     the bench recorder has no dump_path, so nothing touches the disk *)
  let ref_off = Optimize.run ~jobs:1 net [] in
  let r = Recorder.create "bench" in
  let ref_on =
    Recorder.with_recorder r (fun () -> Optimize.run ~jobs:1 net [])
  in
  let offs = Array.make 5 0.0 and ons = Array.make 5 0.0 in
  for round = 0 to 4 do
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    ignore (Optimize.run ~jobs:1 net []);
    offs.(round) <- Unix.gettimeofday () -. t0;
    Gc.full_major ();
    let t0 = Unix.gettimeofday () in
    ignore (Recorder.with_recorder r (fun () -> Optimize.run ~jobs:1 net []));
    ons.(round) <- Unix.gettimeofday () -. t0
  done;
  let best_off = Array.fold_left Float.min infinity offs
  and best_on = Array.fold_left Float.min infinity ons in
  let overhead_pct = ((best_on /. best_off) -. 1.0) *. 100.0 in
  Format.printf
    "solve recorder off: %.3fs, recorder on: %.3fs (+%.1f%%), %d frames@."
    best_off best_on overhead_pct (Recorder.recorded r);
  Report.metric "solve_off_s" best_off;
  spread "solve_off" offs;
  Report.metric "solve_on_s" best_on;
  spread "solve_on" ons;
  Report.metric "overhead_on_pct" overhead_pct;
  Report.metric "recorder_frames" (float_of_int (Recorder.recorded r));
  Report.metric "solver_energy" ref_off.Optimize.energy;
  if
    not
      (ref_on.Optimize.energy = ref_off.Optimize.energy
      && Assignment.equal ref_on.Optimize.assignment
           ref_off.Optimize.assignment)
  then Report.fail "solver result differs with the flight recorder installed";
  (* the acceptance gate: a solve with the black box installed stays
     within 3% of the recorder-free time.  tools/bench_diff additionally
     gates overhead_on_pct across commits. *)
  if overhead_pct > 3.0 then
    Report.fail
      (Printf.sprintf
         "recorder-on solve is %.1f%% slower than recorder-off (> 3%% \
          budget)"
         overhead_pct)

(* --------------------------------- fault injection overhead (disabled) *)

(* The robustness counterpart of observability_overhead: injection
   points are compiled into the pool, the runner and the I/O layer, so
   the disabled path must be free — one atomic load and a branch — and
   a chaos run (faults actually firing) must still land on the exact
   fault-free assignment after recovery. *)
let fault_overhead () =
  section "[Fault] injection overhead on the 4-zone segmented instance";
  let module Fault = Netdiv_fault.Fault in
  (* disabled-path microbenchmark, same budget as a disabled span *)
  let p = Fault.point "bench.disabled" in
  let checks = 2_000_000 in
  let t0 = Unix.gettimeofday () in
  for k = 1 to checks do
    if Fault.should_fail ~key:k p then ignore (Sys.opaque_identity k)
  done;
  let check_ns = (Unix.gettimeofday () -. t0) /. float_of_int checks *. 1e9 in
  Format.printf "disabled injection check: %.1f ns@." check_ns;
  Report.metric "check_disabled_ns" check_ns;
  if check_ns > 200.0 then
    Report.fail
      (Printf.sprintf "disabled fault check costs %.0f ns (> 200 ns budget)"
         check_ns);
  let net, _ = segmented_instance () in
  (* untimed warmup captures the deterministic fault-free result *)
  let ref_off = Optimize.run ~jobs:1 net [] in
  let offs = cycles_of ~rounds:5 (fun () -> Optimize.run ~jobs:1 net []) in
  let best_off = ref (Array.fold_left Float.min infinity offs) in
  Format.printf "solve, injection compiled in but disabled: %.3fs@." !best_off;
  Report.metric "solve_off_s" !best_off;
  spread "solve_off" offs;
  Report.metric "solver_energy" ref_off.Optimize.energy;
  (* chaos determinism: crash every parallel chunk; sequential recovery
     must reproduce the fault-free assignment bit for bit *)
  Fault.set_spec (Some "rate=1.0,only=pool.chunk");
  Fault.reset ();
  let chaos =
    Fun.protect
      ~finally:(fun () ->
        Fault.set_spec None;
        Fault.reset ())
      (fun () ->
        let r = Optimize.run ~jobs:4 net [] in
        Report.metric "chaos_faults_fired" (float_of_int (Fault.fired_count ()));
        r)
  in
  if
    not
      (chaos.Optimize.energy = ref_off.Optimize.energy
      && Assignment.equal chaos.Optimize.assignment ref_off.Optimize.assignment)
  then Report.fail "solver result differs under injected chunk crashes";
  (* cross-section tripwire, same shape as observability_overhead's:
     the compiled-in fault checks must not show up against the jobs=1
     baseline.  Medians, 25% drift budget — the sections run minutes
     apart; tools/bench_diff gates solve_off_s across commits. *)
  let base = !segmented_solve_1j_med_s in
  if Float.is_nan base then
    Report.fail "scalability_speedup did not run before fault_overhead"
  else begin
    let med_off =
      let s = sorted_copy offs in
      s.(Array.length s / 2)
    in
    let drift_pct = ((med_off /. base) -. 1.0) *. 100.0 in
    Format.printf
      "injection-off vs scalability jobs=1 (medians): %+.1f%% (gate: +25%%)@."
      drift_pct;
    Report.metric "off_vs_baseline_pct" drift_pct;
    if drift_pct > 25.0 then
      Report.fail
        (Printf.sprintf
           "injection-off solve is %.1f%% slower than the jobs=1 baseline \
            (> 25%% drift budget)"
           drift_pct)
  end

let interning_memory () =
  section "[Parallel] interned edge potentials on a 1,000-host MRF";
  let net =
    Workload.instance
      { hosts = 1000; degree = 10; services = 5; products_per_service = 4;
        seed = 1 }
  in
  let encoded = Encode.encode net [] in
  let model = Encode.mrf encoded in
  let module Mrf = Netdiv_mrf.Mrf in
  let edges = Mrf.n_edges model in
  let tables = Mrf.n_tables model in
  let interned = Mrf.pot_words model in
  let unshared = Mrf.pot_words_unshared model in
  (* materialize the per-edge copies the uninterned layout would pin and
     measure the live-heap delta directly *)
  Gc.full_major ();
  let live_interned = (Gc.stat ()).Gc.live_words in
  let copies =
    Array.init edges (fun e -> Array.copy (Mrf.edge_cost model e))
  in
  Gc.full_major ();
  let live_unshared = (Gc.stat ()).Gc.live_words in
  ignore (Sys.opaque_identity copies);
  let saved = live_unshared - live_interned in
  Format.printf
    "edges %d; distinct tables %d; potential words %d interned vs %d \
     unshared@."
    edges tables interned unshared;
  Format.printf
    "live heap: %d words with interning, +%d words for per-edge copies \
     (%.0fx potential storage)@."
    live_interned saved
    (float_of_int unshared /. float_of_int (max 1 interned));
  Report.metric "edges" (float_of_int edges);
  Report.metric "distinct_tables" (float_of_int tables);
  Report.metric "pot_words_interned" (float_of_int interned);
  Report.metric "pot_words_unshared" (float_of_int unshared);
  Report.metric "live_words_interned" (float_of_int live_interned);
  Report.metric "live_words_saved" (float_of_int saved);
  let fp = Mrf.footprint model in
  Format.printf "%a@." Mrf.pp_footprint fp;
  Report.metric "words_per_host" (float_of_int fp.Mrf.f_words /. 1000.0);
  Report.metric "words_per_edge" fp.Mrf.f_words_per_edge

(* ------------------------------------------ hierarchical 100k scale *)

(* The 100k-host tentpole: a zoned instance streamed zone-by-zone into
   the compact CSR encoder and solved by block-coordinate zone
   decomposition.  The full tier runs the paper-scale 100,000-host
   instance; smoke a 4,000-host miniature of the same shape.  Gates:
   compact words/host at scale must be at most half of what the flat
   boxed-record layout uses at 1/10 scale; the zoned dual bound must
   stay a valid lower bound (checked against the flat solver on a small
   instance); multi-zone results must not depend on the job count; and
   the pre-allocation estimate must not under-predict the real model. *)
let hierarchical_scale () =
  section "[Hierarchical] zoned instance at scale (CSR model + solve_zoned)";
  let module Mrf = Netdiv_mrf.Mrf in
  let module Trws = Netdiv_mrf.Trws in
  let module Solver = Netdiv_mrf.Solver in
  let hosts = if full_sweep then 100_000 else 4_000 in
  let zones = if full_sweep then 100 else 8 in
  let p = { Workload.default_zoned with z_hosts = hosts; z_zones = zones } in
  Format.printf "%a@." Workload.pp_zoned_params p;
  let est = Workload.estimate_zoned_words p in
  let t0 = Unix.gettimeofday () in
  let model, zone_of = Workload.stream_zoned p in
  let gen_s = Unix.gettimeofday () -. t0 in
  let fp = Mrf.footprint model in
  Format.printf "%a@." Mrf.pp_footprint fp;
  let words_per_host = float_of_int fp.Mrf.f_words /. float_of_int hosts in
  (* flat baseline at 1/10 scale: the boxed layout this model replaced *)
  let tenth =
    { p with Workload.z_hosts = hosts / 10; z_zones = max 1 (zones / 10) }
  in
  let small_model, _ = Workload.stream_zoned tenth in
  let small_fp = Mrf.footprint small_model in
  let flat_per_host_tenth =
    float_of_int small_fp.Mrf.f_flat_words
    /. float_of_int tenth.Workload.z_hosts
  in
  let t1 = Unix.gettimeofday () in
  let result = Trws.solve_zoned ~zone_of ~jobs:4 model in
  let solve_s = Unix.gettimeofday () -. t1 in
  let gap =
    (result.Solver.energy -. result.Solver.lower_bound)
    /. Float.max 1.0 (Float.abs result.Solver.energy)
  in
  Format.printf
    "generate %.3fs  solve %.3fs  energy %a  bound %a  gap %.2e  rounds \
     %d@.words/host %.1f compact vs %.1f flat at 1/10 scale@."
    gen_s solve_s Solver.pp_float result.Solver.energy Solver.pp_float
    result.Solver.lower_bound gap result.Solver.iterations words_per_host
    flat_per_host_tenth;
  (* validity and determinism gates on a small instance *)
  let sp = { Workload.default_zoned with z_hosts = 1000; z_zones = 4 } in
  let sm, szone = Workload.stream_zoned sp in
  let flat = Trws.solve sm in
  let zoned1 = Trws.solve_zoned ~zone_of:szone ~jobs:1 sm in
  let zoned4 = Trws.solve_zoned ~zone_of:szone ~jobs:4 sm in
  if
    not
      (zoned1.Solver.energy = zoned4.Solver.energy
      && zoned1.Solver.lower_bound = zoned4.Solver.lower_bound
      && zoned1.Solver.labeling = zoned4.Solver.labeling)
  then Report.fail "solve_zoned result depends on the job count";
  if zoned1.Solver.lower_bound > flat.Solver.energy +. 1e-9 then
    Report.fail "zoned dual bound exceeds the flat solver's energy";
  if words_per_host > 0.5 *. flat_per_host_tenth then
    Report.fail "compact words/host exceed half the flat layout at 1/10 scale";
  if est < fp.Mrf.f_words then
    Report.fail "estimate_zoned_words under-predicts the real footprint";
  Report.metric "hosts" (float_of_int hosts);
  Report.metric "zones" (float_of_int zones);
  Report.metric "gen_s" gen_s;
  Report.metric "solve_s" solve_s;
  Report.metric "words_per_host" words_per_host;
  Report.metric "words_per_edge" fp.Mrf.f_words_per_edge;
  Report.metric "flat_words_per_host_tenth" flat_per_host_tenth;
  Report.metric "dual_gap" gap;
  Report.metric "solver_energy" result.Solver.energy;
  Report.metric "zoned_small_energy" zoned1.Solver.energy;
  Report.metric "flat_small_energy" flat.Solver.energy

(* ------------------------------------- message-kernel specialization *)

(* Same model built twice — once with the structure classifier on, once
   forced all-generic — and solved with identical configs.  Messages are
   bitwise identical either way (see test/test_mrf.ml "kernels"), so the
   wall-clock ratio isolates the kernel specialization itself. *)
let kernel_specialization () =
  section "[Kernels] structure-specialized message updates vs generic";
  let module Mrf = Netdiv_mrf.Mrf in
  let module Trws = Netdiv_mrf.Trws in
  let l = 32 and n = 200 in
  let unary rng k = Array.init k (fun _ -> Random.State.float rng 1.0) in
  (* ring + chords: connected, loopy, every edge shares one table *)
  let build_with table specialize =
    let rng = Random.State.make [| 17 |] in
    let b = Mrf.Builder.create ~label_counts:(Array.make n l) in
    for i = 0 to n - 1 do
      Mrf.Builder.set_unary b ~node:i (unary rng l)
    done;
    for i = 0 to n - 1 do
      Mrf.Builder.add_edge b i ((i + 1) mod n) table;
      if i + 7 < n then Mrf.Builder.add_edge b i (i + 7) table
    done;
    Mrf.Builder.build ~specialize b
  in
  let potts_table =
    Array.init (l * l) (fun idx ->
        if idx / l = idx mod l then 0.02 *. float_of_int (idx mod l)
        else 1.0)
  in
  let sparse_table =
    let t = Array.make (l * l) 0.5 in
    t.(3) <- 2.0;
    t.((5 * l) + 9) <- 0.1;
    t.((17 * l) + 2) <- 1.4;
    t
  in
  (* bound/decode are O(L^2) per edge whatever the kernel; computing
     them only at the end leaves the message updates as the measured
     work *)
  let config =
    { Trws.default_config with
      max_iters = 30;
      patience = 30;
      bound_every = 30;
    }
  in
  let best_of k f =
    let best = ref infinity in
    let result = ref None in
    for _ = 1 to k do
      let t0 = Unix.gettimeofday () in
      let r = f () in
      best := Float.min !best (Unix.gettimeofday () -. t0);
      result := Some r
    done;
    (Option.get !result, !best)
  in
  let run label table expected_kind =
    let ms = build_with table true and mg = build_with table false in
    (match Mrf.table_class ms (Mrf.edge_table_id ms 0) with
    | c when Netdiv_mrf.Kernel.kind_name c = expected_kind -> ()
    | c ->
        Report.fail
          (Printf.sprintf "kernel bench: %s table classified %s" label
             (Netdiv_mrf.Kernel.kind_name c)));
    let rs, ts = best_of 5 (fun () -> Trws.solve ~config ms) in
    let rg, tg = best_of 5 (fun () -> Trws.solve ~config mg) in
    if
      not
        (rs.Netdiv_mrf.Solver.energy = rg.Netdiv_mrf.Solver.energy
        && rs.Netdiv_mrf.Solver.labeling = rg.Netdiv_mrf.Solver.labeling)
    then
      Report.fail
        (Printf.sprintf "kernel bench: %s result differs from generic" label);
    let speedup = tg /. ts in
    Format.printf
      "%-12s L=%d  generic %8.4fs  specialized %8.4fs  speedup %6.2fx@."
      label l tg ts speedup;
    Report.metric (Printf.sprintf "generic_%s_s" label) tg;
    Report.metric (Printf.sprintf "specialized_%s_s" label) ts;
    Report.metric (Printf.sprintf "%s_speedup" label) speedup
  in
  Report.metric "labels" (float_of_int l);
  run "potts" potts_table "potts";
  run "sparse" sparse_table "const-sparse"

(* ------------------------------------------------- lint analysis *)

(* Whole-repo static analysis cost: lexing, symbol tables, the call
   graph and the effect fixpoint over lib/ and bin/ with the usual
   reference roots.  The wall budget is deliberately generous — the
   analysis runs in well under a second today — so the gate only trips
   on a super-linear regression in the resolver or the fixpoint, not on
   machine noise. *)
let lint_analysis () =
  section "[Lint] whole-repo interprocedural effect analysis";
  if Sys.file_exists "lib" && Sys.file_exists "bin" then begin
    let module Lint = Netdiv_lint.Lint in
    let paths = [ "lib"; "bin" ] in
    let ref_paths = Lint.default_ref_paths paths in
    let report = ref None in
    let t =
      best_of (fun () ->
          report := Some (Lint.analyze_paths ~ref_paths paths))
    in
    (match !report with
    | Some r ->
        Format.printf
          "analyzed %d files, %d bindings, %d raw findings: best of %d runs \
           %.4fs@."
          r.Lint.r_files r.Lint.r_bindings
          (List.length r.Lint.r_findings)
          bench_rounds t;
        Report.metric "lint_files" (float_of_int r.Lint.r_files);
        Report.metric "lint_bindings" (float_of_int r.Lint.r_bindings)
    | None -> ());
    Report.metric "lint_full_s" t;
    let budget_s = 5.0 in
    if t > budget_s then
      Report.fail
        (Printf.sprintf "lint analysis took %.2fs (budget %.1fs)" t budget_s)
  end
  else
    (* dune exec may copy the bench into a sandbox without the sources;
       report the skip rather than measuring nothing silently *)
    Format.printf "skipped: lib/ and bin/ are not visible from the cwd@."

(* ------------------------------------------- Bechamel micro-benches *)

let micro_benchmarks () =
  section "[Micro] Bechamel micro-benchmarks (ns per run)";
  let open Bechamel in
  let net, a = Lazy.force case_assignments in
  let small = Workload.instance
      { hosts = 100; degree = 10; services = 5; products_per_service = 4;
        seed = 1 } in
  let small_encoded = Encode.encode small [] in
  let entry = Topology.host "c4" and target = Topology.host "t5" in
  let tests =
    [
      Test.make ~name:"table2.similarity-table"
        (Staged.stage (fun () -> Corpus.table Corpus.os_spec));
      Test.make ~name:"table2.synthesize-nvd"
        (Staged.stage (fun () -> Corpus.synthesize Corpus.database_spec));
      Test.make ~name:"fig4.encode-casestudy"
        (Staged.stage (fun () -> Encode.encode net []));
      Test.make ~name:"fig4.optimize-casestudy"
        (Staged.stage (fun () -> Optimize.run net []));
      Test.make ~name:"table5.dbn-metric"
        (Staged.stage (fun () ->
             Attack_bn.diversity a.Experiments.optimal ~entry ~target));
      Test.make ~name:"table6.one-simulation"
        (let rng = Random.State.make [| 3 |] in
         Staged.stage (fun () ->
             Engine.run ~rng a.Experiments.optimal ~entry ~target));
      Test.make ~name:"table7.trws-100-hosts"
        (Staged.stage (fun () -> Optimize.solve_encoded small_encoded));
    ]
  in
  let grouped = Test.make_grouped ~name:"netdiv" ~fmt:"%s/%s" tests in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold (fun name est acc -> (name, est) :: acc) results []
    |> List.sort compare
  in
  List.iter
    (fun (name, est) ->
      match Analyze.OLS.estimates est with
      | Some [ t ] -> Format.printf "%-36s %14.0f ns/run@." name t
      | _ -> Format.printf "%-36s %14s@." name "n/a")
    rows

let () =
  Format.printf "netdiv benchmark harness (full sweep: %b, smoke: %b)@."
    full_sweep smoke;
  if not smoke then begin
    Report.timed "similarity_tables" similarity_tables;
    Report.timed "figure1" figure1;
    Report.timed "figure2" figure2;
    Report.timed "figure4" figure4;
    Report.timed "table5" table5;
    Report.timed "table6" table6;
    Report.timed "table7" table7;
    Report.timed "table8" table8;
    Report.timed "table9" table9;
    Report.timed "metrics_table" metrics_table;
    Report.timed "scaled_ics" scaled_ics;
    Report.timed "ablation_attacker" ablation_attacker;
    Report.timed "ablation_defense_in_depth" ablation_defense_in_depth;
    Report.timed "ablation_solvers" ablation_solvers;
    Report.timed "ablation_topologies" ablation_topologies;
    Report.timed "ablation_weighted" ablation_weighted;
    Report.timed "ablation_constraints" ablation_constraints;
    Report.timed "extension_certified" extension_certified;
    Report.timed "extension_defense" extension_defense;
    Report.timed "extension_refine" extension_refine;
    Report.timed "extension_ranking" extension_ranking;
    Report.timed "extension_cost" extension_cost;
    Report.timed "extension_segmentation" extension_segmentation;
    Report.timed "extension_anytime" extension_anytime
  end;
  (* intra_component_speedup runs after the overhead sections: the
     obs/fault 3%-drift gates compare against scalability's jobs=1 time
     and assume an undisturbed heap between the paired measurements *)
  Report.timed "scalability_speedup" scalability_speedup;
  Report.timed "observability_overhead" observability_overhead;
  Report.timed "recorder_overhead" recorder_overhead;
  Report.timed "fault_overhead" fault_overhead;
  Report.timed "intra_component_speedup" intra_component_speedup;
  Report.timed "interning_memory" interning_memory;
  Report.timed "hierarchical_scale" hierarchical_scale;
  Report.timed "kernel_specialization" kernel_specialization;
  Report.timed "lint_analysis" lint_analysis;
  if not smoke then Report.timed "micro_benchmarks" micro_benchmarks;
  let json_path =
    Option.value (Sys.getenv_opt "NETDIV_BENCH_JSON") ~default:"BENCH.json"
  in
  Report.write json_path;
  Format.printf "@.report written to %s@." json_path;
  if !Report.failures > 0 then begin
    Format.printf "%d determinism check(s) FAILED.@." !Report.failures;
    exit 1
  end;
  Format.printf "@.done.@."
