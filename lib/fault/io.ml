let p_read_truncate = Fault.point "io.read.truncate"
let p_read_corrupt = Fault.point "io.read.corrupt"
let p_write_truncate = Fault.point "io.write.truncate"
let p_fsync = Fault.point "io.fsync"

(* Reads and writes each consume one slot of a process-wide sequence
   counter per operation family, giving the io.* points stable keys:
   "the Nth checkpoint write" is the same write on every run with the
   same command line. *)
let read_seq = Atomic.make 0
let write_seq = Atomic.make 0

let temp_path path = path ^ ".tmp"

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | contents ->
      if not (Fault.enabled ()) then Ok contents
      else begin
        let key = Atomic.fetch_and_add read_seq 1 in
        let contents =
          if Fault.should_fail ~key p_read_truncate then
            String.sub contents 0 (String.length contents / 2)
          else contents
        in
        let contents =
          if
            Fault.should_fail ~key p_read_corrupt
            && String.length contents > 0
          then begin
            let b = Bytes.of_string contents in
            let i = String.length contents / 2 in
            Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x20));
            Bytes.to_string b
          end
          else contents
        in
        Ok contents
      end

let write_atomic ~path contents =
  let tmp = temp_path path in
  let key =
    if Fault.enabled () then Atomic.fetch_and_add write_seq 1 else 0
  in
  match
    let oc = open_out_bin tmp in
    let ok =
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          if Fault.should_fail ~key p_write_truncate then begin
            (* simulated crash mid-write: a partial temp file stays
               behind, exactly the wreckage a real crash leaves *)
            output_substring oc contents 0 (String.length contents / 2);
            false
          end
          else begin
            output_string oc contents;
            flush oc;
            Unix.fsync (Unix.descr_of_out_channel oc);
            true
          end)
    in
    if not ok then Error (Printf.sprintf "injected: truncated write to %s" tmp)
    else if Fault.should_fail ~key p_fsync then begin
      (try Sys.remove tmp with Sys_error _ -> ());
      Error (Printf.sprintf "injected: fsync failure on %s" tmp)
    end
    else begin
      Sys.rename tmp path;
      Ok ()
    end
  with
  | result -> result
  | exception Sys_error msg -> Error msg
  | exception Unix.Unix_error (err, fn, _) ->
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message err))
