(** Fault-aware file I/O: the one place the repository reads and
    writes artifacts (traces, checkpoints, bench reports).

    Writes are atomic — contents go to [path ^ ".tmp"], are flushed and
    fsync'd, then renamed over [path] — so a crash (or an injected
    fault) at any moment leaves either the previous artifact or the new
    one, never a half-written file.  Reads and writes double as the
    natural hosts for the [io.*] injection points (see {!Fault}):
    truncated reads, bit corruption, torn writes, fsync failure. *)

val read_file : string -> (string, string) result
(** Read a whole file.  [Error] carries a human-readable reason; no
    exception escapes.  Injection points: [io.read.truncate] (the tail
    half of the content is dropped, as after a torn write by another
    process) and [io.read.corrupt] (one byte is flipped).  Both leave
    the file on disk untouched — they corrupt only what the caller
    sees, which is exactly what downstream parsers must survive. *)

val write_atomic : path:string -> string -> (unit, string) result
(** Write contents to [path] atomically (temp file + rename).  On
    [Error] the destination is untouched.  Injection points:
    [io.write.truncate] (simulated crash mid-write: half the bytes land
    in the temp file, which is left behind like a real crash would) and
    [io.fsync] (durability failure after a complete write: the temp
    file is removed and the destination keeps its old content). *)

val temp_path : string -> string
(** The temp-file name [write_atomic] uses for a destination — exposed
    so tests and cleanup can find stragglers. *)
