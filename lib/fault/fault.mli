(** Deterministic, seed-driven fault injection.

    The repository's robustness story needs failures it can summon on
    demand: a crashed pool chunk, a stage that dies mid-solve, a
    truncated checkpoint write, a stalled clock.  This module is the
    single switchboard for those failures, gated by the [NETDIV_FAULT]
    environment variable exactly the way [NETDIV_SANITIZE=1] gates the
    pool race sanitizer: with the variable unset every check below is
    one atomic load and a branch, so injection points can live on
    production paths.

    {2 Spec grammar}

    [NETDIV_FAULT] (or {!set_spec} in tests) holds a comma/semicolon
    separated list of items:

    - [seed=N] — master seed for probabilistic decisions (default 0);
    - [rate=F] — each (point, key) pair fails independently with
      probability [F], decided by a splitmix64 hash of (seed, point
      name, key) — never by a stateful RNG, so the decision for a given
      pair is a pure function of the spec;
    - [only=PREFIX] — restrict rate-based failures to points whose name
      starts with [PREFIX] (e.g. [only=pool.]);
    - [stall=S] — seconds the clock jumps forward when [clock.stall]
      fires (default 60);
    - [NAME@KEY] — explicit schedule entry: point [NAME] fails at key
      [KEY] (repeatable).  This is the replay form: {!fired_spec}
      renders any observed failure set back into these entries.

    {2 Determinism and replay}

    Every firing is recorded.  A (point, key) pair fires {e at most
    once} per process (until {!reset}): recovery layers re-execute the
    failed work, and the re-execution must not trip over the same
    injected fault — one spec entry models one transient failure.
    Points whose keys are stable program quantities (chunk index within
    a region, write sequence number, stage attempt index) replay
    bitwise: feeding {!fired_spec} of one run back through
    [NETDIV_FAULT] reproduces exactly the same failures.  The
    [clock.stall] point keys on the clock-read count, which is
    scheduling-dependent across domains; its replays are best-effort,
    like every wall-clock-coupled behavior (budgets, patience).

    {2 Registered points}

    [pool.chunk] (key: region-sequence shifted left 12 bits, or'd with
    the chunk index), [pool.alloc] (key: region sequence),
    [runner.stage] (key: stage attempt index), [io.read.truncate] /
    [io.read.corrupt] (key: read sequence), [io.write.truncate] /
    [io.fsync] (key: write sequence), [clock.stall] (key: enabled
    clock-read count).  Consumers may register more with {!point}. *)

exception Injected of string * int
(** [Injected (point, key)] — the failure an armed injection point
    raises.  Recovery layers treat it as a transient fault: the pool
    re-executes the chunk, the runner retries the stage. *)

type point
(** A named injection site (get-or-create, like observability
    metrics). *)

val point : string -> point
(** Get or create the point registered under this name. *)

val point_name : point -> string

val set_spec : string option -> unit
(** [set_spec (Some s)] overrides the environment with spec [s] for
    subsequent checks (the test hook; [""] forces injection off);
    [set_spec None] restores the [NETDIV_FAULT] default.  Raises
    [Invalid_argument] on a malformed spec — tests should fail loudly
    on a typo, while a malformed environment variable merely warns on
    stderr once and disables injection. *)

val enabled : unit -> bool
(** Whether the active spec can fire at all (a rate or at least one
    explicit entry). *)

val should_fail : ?key:int -> point -> bool
(** Decide whether this point fails now, and record the firing if so.
    With [key] the decision is a pure function of (spec, point name,
    key); without it the point's own hit counter supplies the key
    (atomically incremented per call).  Returns [false] immediately
    when injection is disabled, and for any (point, key) pair that
    already fired. *)

val check : ?key:int -> point -> unit
(** [check ?key p] raises {!Injected} when {!should_fail} says so;
    otherwise a no-op. *)

val is_injected : exn -> bool
(** Whether an exception is an injected fault (the class recovery
    layers may retry). *)

val fired : unit -> (string * int) list
(** Chronological record of every firing since the last {!reset}. *)

val fired_count : unit -> int

val fired_spec : unit -> string
(** The record rendered as explicit schedule entries
    (["pool.chunk@4097,io.fsync@0"]) — paste into [NETDIV_FAULT] to
    replay exactly the failures this process saw. *)

val clock_offset : unit -> float
(** Accumulated clock skew injected by the [clock.stall] point; the
    observability clock shim adds it to every read.  Checking costs one
    atomic load while injection is disabled.  Cleared by {!reset}. *)

val reset : unit -> unit
(** Clear the firing record, per-point hit counters and clock skew
    (the spec itself is kept).  Call between runs, never concurrently
    with checks from live domains. *)

val parse_spec_errors : string -> string option
(** [parse_spec_errors s] is [Some msg] when [s] is malformed, [None]
    when it parses — exposed so tests can pin the grammar. *)
