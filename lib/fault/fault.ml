(* Deterministic fault injection, gated by NETDIV_FAULT the way
   NETDIV_SANITIZE gates the pool race sanitizer.  See fault.mli for
   the spec grammar and the determinism rules.

   Decisions are stateless: a (point, key) pair fails iff the spec
   names it explicitly (NAME@KEY) or a splitmix64 finalizer of
   (seed, hash of name, key) falls under the configured rate.  The only
   mutable pieces are the per-point hit counters (which supply keys for
   call sites that have no natural stable key), the fired record, and
   the injected clock skew — all cleared by [reset]. *)

exception Injected of string * int

type point = { p_name : string; p_hash : int64; p_hits : int Atomic.t }

type spec = {
  seed : int64;
  rate : float;
  only : string option;
  stall_s : float;
  entries : (string * int) list;
}

let empty_spec =
  { seed = 0L; rate = 0.0; only = None; stall_s = 60.0; entries = [] }

let spec_active s = s.rate > 0.0 || s.entries <> []

(* --- spec parsing ------------------------------------------------- *)

let parse_spec str : (spec, string) result =
  let items =
    String.split_on_char ',' str
    |> List.concat_map (String.split_on_char ';')
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let rec go acc = function
    | [] -> Ok acc
    | item :: rest -> (
        match String.index_opt item '=' with
        | Some eq -> (
            let k = String.sub item 0 eq in
            let v = String.sub item (eq + 1) (String.length item - eq - 1) in
            match k with
            | "seed" -> (
                match Int64.of_string_opt v with
                | Some n -> go { acc with seed = n } rest
                | None -> Error (Printf.sprintf "bad seed %S" v))
            | "rate" -> (
                match float_of_string_opt v with
                | Some r when r >= 0.0 && r <= 1.0 ->
                    go { acc with rate = r } rest
                | _ -> Error (Printf.sprintf "bad rate %S (want 0..1)" v))
            | "only" -> go { acc with only = Some v } rest
            | "stall" -> (
                match float_of_string_opt v with
                | Some s when s >= 0.0 && Float.is_finite s ->
                    go { acc with stall_s = s } rest
                | _ -> Error (Printf.sprintf "bad stall %S" v))
            | _ -> Error (Printf.sprintf "unknown item %S" item))
        | None -> (
            match String.index_opt item '@' with
            | Some at -> (
                let name = String.sub item 0 at in
                let key =
                  String.sub item (at + 1) (String.length item - at - 1)
                in
                match int_of_string_opt key with
                | Some k when name <> "" ->
                    go { acc with entries = (name, k) :: acc.entries } rest
                | _ -> Error (Printf.sprintf "bad entry %S (want NAME@KEY)" item))
            | None ->
                Error
                  (Printf.sprintf
                     "unknown item %S (want key=value or NAME@KEY)" item)))
  in
  Result.map
    (fun s -> { s with entries = List.rev s.entries })
    (go empty_spec items)

let parse_spec_errors str =
  match parse_spec str with Ok _ -> None | Error e -> Some e

(* --- active spec -------------------------------------------------- *)

let warned_env = Atomic.make false

let env_spec =
  lazy
    (match Sys.getenv_opt "NETDIV_FAULT" with
    | None -> empty_spec
    | Some s -> (
        match parse_spec s with
        | Ok spec -> spec
        | Error msg ->
            if not (Atomic.exchange warned_env true) then
              Printf.eprintf
                "netdiv: ignoring malformed NETDIV_FAULT (%s)\n%!" msg;
            empty_spec))

(* Tests override the environment through [set_spec], mirroring
   Pool.set_sanitize.  [active] additionally caches whether the spec
   can fire at all, so disabled-path checks are one atomic load. *)
let override : spec option Atomic.t = Atomic.make None
let active = Atomic.make false

let current_spec () =
  match Atomic.get override with
  | Some s -> s
  | None -> Lazy.force env_spec

let refresh_active () = Atomic.set active (spec_active (current_spec ()))

let set_spec = function
  | None ->
      Atomic.set override None;
      refresh_active ()
  | Some s -> (
      match parse_spec s with
      | Ok spec ->
          Atomic.set override (Some spec);
          refresh_active ()
      | Error msg -> invalid_arg (Printf.sprintf "Fault.set_spec: %s" msg))

(* The environment is consulted lazily on first use; arrange for the
   cached [active] flag to pick it up without requiring every caller to
   poke it first. *)
let enabled () =
  if Atomic.get active then true
  else begin
    (* cheap re-check covering the first call before any set_spec *)
    let a = spec_active (current_spec ()) in
    if a then Atomic.set active true;
    a
  end

(* --- point registry ----------------------------------------------- *)

(* splitmix64 finalizer — same mixing discipline Pool.split_seed uses
   for deterministic per-chunk RNG streams. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33))
      0xff51afd7ed558ccdL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33))
      0xc4ceb9fe1a85ec53L in
  Int64.logxor z (Int64.shift_right_logical z 33)

let hash_name name =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    name;
  !h

let registry : (string, point) Hashtbl.t = Hashtbl.create 16
let registry_mu = Mutex.create ()

let point name =
  Mutex.lock registry_mu;
  let p =
    match Hashtbl.find_opt registry name with
    | Some p -> p
    | None ->
        let p =
          { p_name = name; p_hash = hash_name name; p_hits = Atomic.make 0 }
        in
        Hashtbl.add registry name p;
        p
  in
  Mutex.unlock registry_mu;
  p

let point_name p = p.p_name

(* --- firing record ------------------------------------------------ *)

let record_mu = Mutex.create ()
let record : (string * int) list ref = ref []
let fired_set : (string * int, unit) Hashtbl.t = Hashtbl.create 16
let skew = Atomic.make 0.0

(* Record the firing unless this (point, key) already fired: one spec
   entry models one transient fault, so recovery re-executions do not
   trip over the same injection again.  Returns whether to fire. *)
let claim name key =
  Mutex.lock record_mu;
  let fresh = not (Hashtbl.mem fired_set (name, key)) in
  if fresh then begin
    Hashtbl.replace fired_set (name, key) ();
    record := (name, key) :: !record
  end;
  Mutex.unlock record_mu;
  fresh

let fired () = List.rev !record
let fired_count () = List.length !record

let fired_spec () =
  fired ()
  |> List.map (fun (name, key) -> Printf.sprintf "%s@%d" name key)
  |> String.concat ","

let reset () =
  Mutex.lock record_mu;
  record := [];
  Hashtbl.reset fired_set;
  Mutex.unlock record_mu;
  Atomic.set skew 0.0;
  Mutex.lock registry_mu;
  Hashtbl.iter (fun _ p -> Atomic.set p.p_hits 0) registry;
  Mutex.unlock registry_mu

(* --- decisions ---------------------------------------------------- *)

let prefixed prefix s =
  let lp = String.length prefix in
  String.length s >= lp && String.sub s 0 lp = prefix

let rate_hit spec p key =
  spec.rate > 0.0
  && (match spec.only with
     | None -> true
     | Some prefix -> prefixed prefix p.p_name)
  &&
  let h = mix64 (Int64.logxor spec.seed
                   (mix64 (Int64.logxor p.p_hash (Int64.of_int key)))) in
  (* top 53 bits -> uniform float in [0, 1) *)
  let u = Int64.to_float (Int64.shift_right_logical h 11) *. 0x1p-53 in
  u < spec.rate

(* Auto-keys only advance while injection is armed: the disabled path
   must cost one atomic load and a branch, nothing else. *)
let decide ?key p =
  if not (enabled ()) then None
  else begin
    let key =
      match key with
      | Some k -> k
      | None -> Atomic.fetch_and_add p.p_hits 1
    in
    let spec = current_spec () in
    let hit =
      List.exists (fun (n, k) -> n = p.p_name && k = key) spec.entries
      || rate_hit spec p key
    in
    if hit && claim p.p_name key then Some key else None
  end

let should_fail ?key p = Option.is_some (decide ?key p)

let check ?key p =
  match decide ?key p with
  | Some k -> raise (Injected (p.p_name, k))
  | None -> ()

let is_injected = function Injected _ -> true | _ -> false

(* --- clock stall -------------------------------------------------- *)

(* The observability clock shim adds [clock_offset ()] to every read
   (after its monotone clamp, so resetting the spec restores real
   time).  Each firing of [clock.stall] advances the skew by the
   spec's [stall=] seconds. *)
let clock_point = lazy (point "clock.stall")

let rec add_skew d =
  let cur = Atomic.get skew in
  if not (Atomic.compare_and_set skew cur (cur +. d)) then add_skew d

let clock_offset () =
  if not (enabled ()) then 0.0
  else begin
    if should_fail (Lazy.force clock_point) then
      add_skew (current_spec ()).stall_s;
    Atomic.get skew
  end
