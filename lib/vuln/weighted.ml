module Ss = Nvd.String_set

let default_weight (cve : Cve.t) =
  match cve.cvss with Some s -> s /. 10.0 | None -> 0.5

let weighted_jaccard ~weight a b =
  let sum set = Ss.fold (fun id acc -> acc +. weight id) set 0.0 in
  let inter = sum (Ss.inter a b) in
  let union = sum (Ss.union a b) in
  if union <= 0.0 then 0.0 else inter /. union

let of_nvd ?since ?until ?(weight = default_weight) db products =
  let weight_of_id =
    (* Domain-safety audit (netdiv-lint): this memo table is allocated per
       [of_nvd] call and never escapes it, so it is never shared across
       domains — unlike a module-toplevel cache, which the
       toplevel-mutable-state rule would reject. *)
    let cache = Hashtbl.create 256 in
    fun id ->
      match Hashtbl.find_opt cache id with
      | Some w -> w
      | None ->
          let w =
            match Nvd.find db id with Some cve -> weight cve | None -> 0.5
          in
          if w < 0.0 then
            invalid_arg
              (Printf.sprintf "Weighted.of_nvd: negative weight for %s" id);
          Hashtbl.add cache id w;
          w
  in
  let names = Array.of_list (List.map fst products) in
  let sets =
    Array.of_list
      (List.map (fun (_, cpe) -> Nvd.vulns_of ?since ?until db cpe) products)
  in
  let n = Array.length names in
  let totals = Array.map Ss.cardinal sets in
  let shared = ref [] in
  let sims = Array.make (n * n) 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to i - 1 do
      let count = Ss.cardinal (Ss.inter sets.(i) sets.(j)) in
      if count > 0 then shared := (i, j, count) :: !shared;
      let s = weighted_jaccard ~weight:weight_of_id sets.(i) sets.(j) in
      sims.((i * n) + j) <- s;
      sims.((j * n) + i) <- s
    done
  done;
  (* build via of_counts for the counts, then overwrite the similarity
     values through the weighted variant *)
  let table =
    Similarity.of_counts ~products:names ~totals ~shared:!shared
  in
  Similarity.with_values table sims
