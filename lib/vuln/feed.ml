let cpe23_of_string s =
  (* cpe:2.3:part:vendor:product:version:update:... (unescaped split;
     the similarity analysis only needs part/vendor/product/version) *)
  match String.split_on_char ':' s with
  | "cpe" :: "2.3" :: part :: vendor :: product :: rest
    when String.length part = 1 ->
      let part =
        match part.[0] with
        | 'a' -> Some Cpe.Application
        | 'o' -> Some Cpe.Operating_system
        | 'h' -> Some Cpe.Hardware
        | _ -> None
      in
      (match part with
      | None -> Error (Printf.sprintf "bad CPE 2.3 part in %S" s)
      | Some part ->
          if vendor = "" || product = "" then
            Error (Printf.sprintf "empty vendor/product in %S" s)
          else
            let version =
              match rest with
              | ("*" | "-" | "") :: _ | [] -> None
              | v :: _ -> Some v
            in
            Ok (Cpe.make ?version ~part ~vendor product))
  | _ -> Error (Printf.sprintf "not a CPE 2.3 formatted string: %S" s)

let any_cpe_of_string s =
  if String.length s >= 8 && String.sub s 0 8 = "cpe:2.3:" then
    cpe23_of_string s
  else Cpe.of_string s

(* collect CPE uris from a configurations node tree *)
let rec cpes_of_node node acc =
  let matches =
    match Json.member "cpe_match" node with
    | Some (Json.List items) -> items
    | _ -> []
  in
  let acc =
    List.fold_left
      (fun acc m ->
        let uri =
          match Json.member "cpe23Uri" m with
          | Some (Json.String s) -> Some s
          | _ -> (
              match Json.member "cpe22Uri" m with
              | Some (Json.String s) -> Some s
              | _ -> None)
        in
        match uri with
        | Some s -> (
            match any_cpe_of_string s with
            | Ok cpe -> cpe :: acc
            | Error _ -> acc)
        | None -> acc)
      acc matches
  in
  match Json.member "children" node with
  | Some (Json.List children) ->
      List.fold_left (fun acc child -> cpes_of_node child acc) acc children
  | _ -> acc

let decode_item item =
  match Json.path [ "cve"; "CVE_data_meta"; "ID" ] item with
  | Some (Json.String id) -> (
      let summary =
        match Json.path [ "cve"; "description"; "description_data" ] item with
        | Some (Json.List (first :: _)) -> (
            match Json.member "value" first with
            | Some (Json.String s) -> s
            | _ -> "")
        | _ -> ""
      in
      let affected =
        match Json.path [ "configurations"; "nodes" ] item with
        | Some (Json.List nodes) ->
            List.fold_left (fun acc node -> cpes_of_node node acc) [] nodes
            |> List.sort_uniq Cpe.compare
        | _ -> []
      in
      let cvss, cvss_path =
        match
          Json.path [ "impact"; "baseMetricV3"; "cvssV3"; "baseScore" ] item
        with
        | Some (Json.Number f) ->
            (Some f, "impact.baseMetricV3.cvssV3.baseScore")
        | _ -> (
            match
              Json.path
                [ "impact"; "baseMetricV2"; "cvssV2"; "baseScore" ]
                item
            with
            | Some (Json.Number f) ->
                (Some f, "impact.baseMetricV2.cvssV2.baseScore")
            | _ -> (None, ""))
      in
      match cvss with
      | Some f when Float.is_nan f || f < 0.0 || f > 10.0 ->
          Error
            (Printf.sprintf "%s: %s = %g is out of range [0,10]" id
               cvss_path f)
      | _ -> (
          match Cve.make ?cvss ~summary ~id affected with
          | Ok cve -> Ok cve
          | Error msg -> Error msg))
  | _ -> Error "item without cve.CVE_data_meta.ID"

let decode json =
  match Json.member "CVE_Items" json with
  | Some (Json.List items) ->
      let entries, warnings =
        List.fold_left
          (fun (entries, warnings) item ->
            match decode_item item with
            | Ok cve -> (cve :: entries, warnings)
            | Error msg -> (entries, msg :: warnings))
          ([], []) items
      in
      Ok (List.rev entries, List.rev warnings)
  | Some _ -> Error "CVE_Items is not an array"
  | None -> Error "document has no CVE_Items"

let of_string contents =
  match Json.parse contents with
  | Error msg -> Error msg
  | Ok json -> decode json

let load_into db contents =
  match of_string contents with
  | Error msg -> Error msg
  | Ok (entries, warnings) ->
      List.iter (Nvd.add db) entries;
      Ok (List.length entries, warnings)

let encode_entry (cve : Cve.t) =
  let open Json in
  let description =
    Object
      [
        ( "description_data",
          List
            [ Object [ ("lang", String "en"); ("value", String cve.summary) ]
            ] );
      ]
  in
  let cpe_match =
    List
      (List.map
         (fun cpe ->
           Object
             [
               ("vulnerable", Bool true);
               ("cpe22Uri", String (Cpe.to_string cpe));
             ])
         cve.affected)
  in
  let impact =
    match cve.cvss with
    | None -> Object []
    | Some score ->
        Object
          [
            ( "baseMetricV2",
              Object [ ("cvssV2", Object [ ("baseScore", Number score) ]) ]
            );
          ]
  in
  Object
    [
      ( "cve",
        Object
          [
            ("CVE_data_meta", Object [ ("ID", String cve.id) ]);
            ("description", description);
          ] );
      ( "configurations",
        Object [ ("nodes", List [ Object [ ("cpe_match", cpe_match) ] ]) ] );
      ("impact", impact);
      ( "publishedDate",
        String (Printf.sprintf "%04d-01-01T00:00Z" cve.year) );
    ]

let encode db =
  let entries = List.sort Cve.compare (Nvd.entries db) in
  Json.Object
    [
      ("CVE_data_type", Json.String "CVE");
      ("CVE_data_format", Json.String "MITRE");
      ("CVE_data_version", Json.String "4.0");
      ( "CVE_data_numberOfCVEs",
        Json.String (string_of_int (List.length entries)) );
      ("CVE_Items", Json.List (List.map encode_entry entries));
    ]

let to_string ?pretty db = Json.to_string ?pretty (encode db)
