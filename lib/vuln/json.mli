(** Minimal JSON (RFC 8259) parser and printer.

    The NVD distributes its data as JSON feeds; the paper's pipeline
    (CVE-SEARCH) ingests them.  This sealed environment has no JSON
    library, so the {!Feed} reader is built on this small, dependency-free
    implementation: full escape handling (including [\uXXXX] with
    surrogate pairs encoded to UTF-8), numbers as floats, and precise
    error positions. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | List of t list
  | Object of (string * t) list

val parse : ?depth_limit:int -> string -> (t, string) result
(** Parses a complete JSON document (trailing whitespace allowed,
    trailing garbage rejected).  Errors carry a byte offset.
    [depth_limit] (default 512) bounds container nesting so adversarial
    or degenerate feeds fail with an error instead of overflowing the
    stack of the recursive-descent parser. *)

val parse_exn : ?depth_limit:int -> string -> t
(** @raise Invalid_argument on parse errors. *)

val to_string : ?pretty:bool -> t -> string
(** Serializes; [pretty] adds two-space indentation.  Strings are escaped
    minimally (quotes, backslashes, control characters). *)

(** {1 Accessors} — all return [None] on shape mismatch. *)

val member : string -> t -> t option
(** Object field lookup. *)

val path : string list -> t -> t option
(** Nested {!member}. *)

val to_list : t -> t list option
val to_float : t -> float option
val to_str : t -> string option
val to_bool : t -> bool option

val equal : t -> t -> bool
(** Structural equality with unordered object fields. *)
