module Graph = Netdiv_graph.Graph
module Network = Netdiv_core.Network
module Assignment = Netdiv_core.Assignment
module Obs = Netdiv_obs.Obs

(* Worm telemetry: per-simulation tallies are local ints flushed with
   one atomic add each when the run ends, so batched/parallel MTTC runs
   never contend inside the tick loop. *)
let c_ticks = Obs.Counter.make "engine.ticks"
let c_attempts = Obs.Counter.make "engine.exploit_attempts"
let c_infections = Obs.Counter.make "engine.infections"

type strategy = Best_exploit | Uniform_exploit | Arsenal_exploit

let default_attempt_scale = 0.15
let default_sim_floor = 0.05

type mttc_stats = {
  runs : int;
  successes : int;
  mean_ticks : float;
  max_ticks : int;
}

let shared_similarities a u v =
  let net = Assignment.network a in
  let su = Network.host_services net u in
  let sv = Network.host_services net v in
  let acc = ref [] in
  let i = ref 0 and j = ref 0 in
  while !i < Array.length su && !j < Array.length sv do
    if su.(!i) = sv.(!j) then begin
      let s = su.(!i) in
      acc :=
        Network.similarity net ~service:s
          (Assignment.get a ~host:u ~service:s)
          (Assignment.get a ~host:v ~service:s)
        :: !acc;
      incr i;
      incr j
    end
    else if su.(!i) < sv.(!j) then incr i
    else incr j
  done;
  !acc

let shared_service_ids a u v =
  let net = Assignment.network a in
  let su = Network.host_services net u in
  let sv = Network.host_services net v in
  let acc = ref [] in
  let i = ref 0 and j = ref 0 in
  while !i < Array.length su && !j < Array.length sv do
    if su.(!i) = sv.(!j) then begin
      acc := su.(!i) :: !acc;
      incr i;
      incr j
    end
    else if su.(!i) < sv.(!j) then incr i
    else incr j
  done;
  !acc

(* Attack rates per directed edge, precomputed once per simulation
   batch.  [Fixed] covers the strategies whose per-attempt rate is
   rng-independent.  [Pooled] covers [Uniform_exploit], where every
   attempt samples one of the edge's shared-service rates uniformly:
   the scaled rates are tabulated per edge so the pick inside the
   attack loop is a single O(1) array index instead of an
   O(shared services) similarity walk and [List.nth]. *)
type rates =
  | Fixed of (int * float) array array
      (* per host: (nbr, rate) *)
  | Pooled of (int * float * float array) array array
      (* per host: (nbr, best-case rate, scaled per-service rates) *)

let prepare ~attempt_scale ~sim_floor ~entry a strategy =
  let net = Assignment.network a in
  let g = Network.graph net in
  let tabulate rate_of =
    Fixed
      (Array.init (Graph.n_nodes g) (fun u ->
           Array.map (fun v -> (v, rate_of u v)) (Graph.neighbors g u)))
  in
  match strategy with
  | Uniform_exploit ->
      Pooled
        (Array.init (Graph.n_nodes g) (fun u ->
             Array.map
               (fun v ->
                 let sims = shared_similarities a u v in
                 let potential =
                   match sims with
                   | [] -> 0.0
                   | sims ->
                       attempt_scale
                       *. List.fold_left
                            (fun acc s -> max acc (max sim_floor s))
                            0.0 sims
                 in
                 let pool =
                   Array.of_list
                     (List.map
                        (fun s -> attempt_scale *. max sim_floor s)
                        sims)
                 in
                 (v, potential, pool))
               (Graph.neighbors g u)))
  | Best_exploit ->
      tabulate (fun u v ->
          match shared_similarities a u v with
          | [] -> 0.0
          | sims ->
              attempt_scale
              *. List.fold_left
                   (fun acc s -> max acc (max sim_floor s))
                   0.0 sims)
  | Arsenal_exploit ->
      (* the worm carries one zero-day per service, forged for the entry
         host's products (the paper's "three unique zero-day exploits"),
         and cannot adapt: a hop succeeds with the similarity between the
         arsenal's product and the victim's *)
      let arsenal_services = Network.host_services net entry in
      let arsenal s = Assignment.get a ~host:entry ~service:s in
      tabulate (fun u v ->
          let rate = ref 0.0 in
          List.iter
            (fun s ->
              if Array.exists (fun x -> x = s) arsenal_services then begin
                let victim = Assignment.get a ~host:v ~service:s in
                let sim =
                  max sim_floor
                    (Network.similarity net ~service:s (arsenal s) victim)
                in
                if attempt_scale *. sim > !rate then
                  rate := attempt_scale *. sim
              end)
            (shared_service_ids a u v);
          !rate)

let simulate ~rng ~max_ticks ~rates a ~entry ~on_tick ~stop =
  let net = Assignment.network a in
  let g = Network.graph net in
  let n = Graph.n_nodes g in
  if entry < 0 || entry >= n then invalid_arg "Engine: entry out of range";
  let infected = Array.make n false in
  infected.(entry) <- true;
  if stop entry then Some 0
  else begin
    let infected_list = ref [ entry ] in
    let result = ref None in
    let alive = ref true in
    let tick = ref 0 in
    let attempts = ref 0 in
    let infections = ref 0 in
    while !result = None && !alive && !tick < max_ticks do
      incr tick;
      let newly = ref [] in
      let progress_possible = ref false in
      (* [potential] is the edge's best-case rate: it decides worm
         liveness.  [rate] is this tick's sampled attempt. *)
      let attack v ~potential rate =
        if not infected.(v) then begin
          if potential > 0.0 then progress_possible := true;
          if rate > 0.0 then begin
            incr attempts;
            if Random.State.float rng 1.0 < rate then newly := v :: !newly
          end
        end
      in
      List.iter
        (fun u ->
          match rates with
          | Fixed nr ->
              Array.iter
                (fun (v, rate) -> attack v ~potential:rate rate)
                nr.(u)
          | Pooled nr ->
              Array.iter
                (fun (v, potential, pool) ->
                  if not infected.(v) then begin
                    let rate =
                      if Array.length pool = 0 then 0.0
                      else pool.(Random.State.int rng (Array.length pool))
                    in
                    attack v ~potential rate
                  end)
                nr.(u))
        !infected_list;
      List.iter
        (fun v ->
          if not infected.(v) then begin
            infected.(v) <- true;
            incr infections;
            infected_list := v :: !infected_list;
            if !result = None && stop v then result := Some !tick
          end)
        !newly;
      on_tick !tick infected;
      (* the worm is dead when every remaining attack edge has rate zero *)
      if not !progress_possible then alive := false
    done;
    Obs.Counter.add c_ticks !tick;
    Obs.Counter.add c_attempts !attempts;
    Obs.Counter.add c_infections !infections;
    !result
  end

let run ~rng ?(strategy = Best_exploit)
    ?(attempt_scale = default_attempt_scale)
    ?(sim_floor = default_sim_floor) ?(max_ticks = 10_000) a ~entry ~target =
  let net = Assignment.network a in
  if target < 0 || target >= Network.n_hosts net then
    invalid_arg "Engine.run: target out of range";
  let rates = prepare ~attempt_scale ~sim_floor ~entry a strategy in
  simulate ~rng ~max_ticks ~rates a ~entry
    ~on_tick:(fun _ _ -> ())
    ~stop:(fun h -> h = target)

let mttc_samples ~rng ?(strategy = Best_exploit)
    ?(attempt_scale = default_attempt_scale)
    ?(sim_floor = default_sim_floor) ?(max_ticks = 10_000) ~runs a ~entry
    ~target =
  let rates = prepare ~attempt_scale ~sim_floor ~entry a strategy in
  let samples = ref [] in
  for _ = 1 to runs do
    match
      simulate ~rng ~max_ticks ~rates a ~entry
        ~on_tick:(fun _ _ -> ())
        ~stop:(fun h -> h = target)
    with
    | Some t -> samples := t :: !samples
    | None -> ()
  done;
  Array.of_list (List.rev !samples)

let stats_of_samples ~runs ~max_ticks samples =
  let successes = Array.length samples in
  {
    runs;
    successes;
    mean_ticks =
      (if successes = 0 then nan
       else
         float_of_int (Array.fold_left ( + ) 0 samples)
         /. float_of_int successes);
    max_ticks;
  }

let mttc ~rng ?strategy ?attempt_scale ?sim_floor ?(max_ticks = 10_000) ~runs
    a ~entry ~target =
  let samples =
    mttc_samples ~rng ?strategy ?attempt_scale ?sim_floor ~max_ticks ~runs a
      ~entry ~target
  in
  stats_of_samples ~runs ~max_ticks samples

let mttc_summary ~rng ?strategy ?attempt_scale ?sim_floor
    ?(max_ticks = 10_000) ~runs a ~entry ~target =
  let samples =
    mttc_samples ~rng ?strategy ?attempt_scale ?sim_floor ~max_ticks ~runs a
      ~entry ~target
  in
  let stats = stats_of_samples ~runs ~max_ticks samples in
  let summary =
    if Array.length samples = 0 then None
    else Some (Stat.summarize (Stat.of_ints samples))
  in
  (stats, summary)

(* Parallel MTTC: run indices are split over domains; every run draws its
   own rng from (seed, index), so results are identical for any domain
   count. *)
let mttc_parallel ?(domains = 4) ~seed ?(strategy = Best_exploit)
    ?(attempt_scale = default_attempt_scale)
    ?(sim_floor = default_sim_floor) ?(max_ticks = 10_000) ~runs a ~entry
    ~target () =
  if domains < 1 then invalid_arg "Engine.mttc_parallel: domains < 1";
  let rates = prepare ~attempt_scale ~sim_floor ~entry a strategy in
  let one_run idx =
    let rng = Random.State.make [| seed; idx |] in
    simulate ~rng ~max_ticks ~rates a ~entry
      ~on_tick:(fun _ _ -> ())
      ~stop:(fun h -> h = target)
  in
  (* every run owns an rng keyed by its index and the pool returns
     results in index order, so the stats are domain-count-invariant.
     500/host per run, not 200: a run's epidemic phase revisits each
     infected host's incident edges every tick, so 200 underestimated
     the work enough that borderline batches were split into chunks too
     fine to amortize dispatch.  The raised hint keeps smoke-sized
     batches (hundreds of hosts, tens of runs) under the pool's
     sequential cutoff — inline, paying zero domain overhead — and
     makes production batches chunk coarser. *)
  let n_hosts = Graph.n_nodes (Network.graph (Assignment.network a)) in
  let results =
    Netdiv_par.Pool.map_range ~jobs:domains ~cost:(500 * n_hosts) ~lo:0
      ~hi:runs one_run
  in
  let samples =
    Array.of_list (List.filter_map Fun.id (Array.to_list results))
  in
  stats_of_samples ~runs ~max_ticks samples

let epidemic_curve ~rng ?(strategy = Best_exploit)
    ?(attempt_scale = default_attempt_scale)
    ?(sim_floor = default_sim_floor) ?(max_ticks = 10_000) a ~entry =
  let counts = ref [] in
  let rates = prepare ~attempt_scale ~sim_floor ~entry a strategy in
  ignore
    (simulate ~rng ~max_ticks ~rates a ~entry
       ~on_tick:(fun _ infected ->
         let c =
           Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0
             infected
         in
         counts := c :: !counts)
       ~stop:(fun _ -> false));
  (* trim the trailing plateau the cap produced *)
  let arr = Array.of_list (List.rev !counts) in
  let n = Array.length arr in
  let last_growth = ref 0 in
  for i = 1 to n - 1 do
    if arr.(i) > arr.(i - 1) then last_growth := i
  done;
  Array.sub arr 0 (min n (!last_growth + 2))

(* ----------------------------------------------------- defended runs *)

type defense = { detect_rate : float; immunize : bool }

type host_status = Susceptible | Infected | Immune

(* Like [simulate], but a defender detects and reimages infected hosts;
   the worm loses when no infected host remains. *)
let simulate_defended ~rng ~max_ticks ~defense ~rates a ~entry ~target =
  if not (defense.detect_rate >= 0.0 && defense.detect_rate <= 1.0) then
    invalid_arg "Engine: detect_rate outside [0,1]";
  let net = Assignment.network a in
  let g = Network.graph net in
  let n = Graph.n_nodes g in
  if entry < 0 || entry >= n then invalid_arg "Engine: entry out of range";
  if target < 0 || target >= n then invalid_arg "Engine: target out of range";
  let status = Array.make n Susceptible in
  status.(entry) <- Infected;
  if entry = target then Some 0
  else begin
    let result = ref None in
    let extinct = ref false in
    let tick = ref 0 in
    let attempts = ref 0 in
    let infections = ref 0 in
    while !result = None && (not !extinct) && !tick < max_ticks do
      incr tick;
      let newly = ref [] in
      let any_infected = ref false in
      for u = 0 to n - 1 do
        if status.(u) = Infected then begin
          any_infected := true;
          let attack v rate =
            if status.(v) = Susceptible && rate > 0.0 then begin
              incr attempts;
              if Random.State.float rng 1.0 < rate then newly := v :: !newly
            end
          in
          match rates with
          | Fixed nr ->
              Array.iter (fun (v, rate) -> attack v rate) nr.(u)
          | Pooled nr ->
              Array.iter
                (fun (v, _potential, pool) ->
                  if status.(v) = Susceptible then begin
                    let rate =
                      if Array.length pool = 0 then 0.0
                      else pool.(Random.State.int rng (Array.length pool))
                    in
                    attack v rate
                  end)
                nr.(u)
        end
      done;
      if not !any_infected then extinct := true;
      List.iter
        (fun v ->
          if status.(v) = Susceptible then begin
            status.(v) <- Infected;
            incr infections;
            if !result = None && v = target then result := Some !tick
          end)
        !newly;
      (* detection & response *)
      if !result = None && defense.detect_rate > 0.0 then
        for h = 0 to n - 1 do
          if
            status.(h) = Infected
            && Random.State.float rng 1.0 < defense.detect_rate
          then status.(h) <- (if defense.immunize then Immune else Susceptible)
        done
    done;
    Obs.Counter.add c_ticks !tick;
    Obs.Counter.add c_attempts !attempts;
    Obs.Counter.add c_infections !infections;
    !result
  end

(* [prepare] reads the entry host's services (Arsenal), so validate the
   endpoints first to keep the historical error messages. *)
let check_endpoints a ~entry ~target =
  let n = Network.n_hosts (Assignment.network a) in
  if entry < 0 || entry >= n then invalid_arg "Engine: entry out of range";
  if target < 0 || target >= n then invalid_arg "Engine: target out of range"

let run_defended ~rng ?(strategy = Best_exploit)
    ?(attempt_scale = default_attempt_scale)
    ?(sim_floor = default_sim_floor) ?(max_ticks = 10_000) ~defense a ~entry
    ~target =
  check_endpoints a ~entry ~target;
  let rates = prepare ~attempt_scale ~sim_floor ~entry a strategy in
  simulate_defended ~rng ~max_ticks ~defense ~rates a ~entry ~target

let mttc_defended ~rng ?(strategy = Best_exploit)
    ?(attempt_scale = default_attempt_scale)
    ?(sim_floor = default_sim_floor) ?(max_ticks = 10_000) ~defense ~runs a
    ~entry ~target =
  check_endpoints a ~entry ~target;
  let rates = prepare ~attempt_scale ~sim_floor ~entry a strategy in
  let samples = ref [] in
  for _ = 1 to runs do
    match
      simulate_defended ~rng ~max_ticks ~defense ~rates a ~entry ~target
    with
    | Some t -> samples := t :: !samples
    | None -> ()
  done;
  stats_of_samples ~runs ~max_ticks (Array.of_list (List.rev !samples))

let pp_mttc ppf s =
  Format.fprintf ppf "MTTC %.3f ticks (%d/%d runs reached the target)"
    s.mean_ticks s.successes s.runs
