module Gen = Netdiv_graph.Gen
module Network = Netdiv_core.Network
module Mrf = Netdiv_mrf.Mrf

type params = {
  hosts : int;
  degree : int;
  services : int;
  products_per_service : int;
  seed : int;
}

let default =
  { hosts = 1000; degree = 20; services = 15; products_per_service = 4;
    seed = 1 }

let synthetic_similarity ~rng ~products =
  if products < 1 then invalid_arg "Workload.synthetic_similarity";
  let split = max 1 (products / 2) in
  let m = Array.make (products * products) 0.0 in
  for i = 0 to products - 1 do
    m.((i * products) + i) <- 1.0;
    for j = i + 1 to products - 1 do
      let same_family = (i < split) = (j < split) in
      let v =
        if same_family then 0.05 +. Random.State.float rng 0.65 else 0.0
      in
      m.((i * products) + j) <- v;
      m.((j * products) + i) <- v
    done
  done;
  m

let instance p =
  if p.hosts < 1 || p.degree < 0 || p.services < 1
     || p.products_per_service < 1
  then invalid_arg "Workload.instance: non-positive parameter";
  let rng = Random.State.make [| p.seed; p.hosts; p.degree; p.services |] in
  let graph =
    if p.degree >= 2 && p.hosts > 2 then
      Gen.connected_avg_degree ~rng ~n:p.hosts ~degree:p.degree
    else Gen.avg_degree ~rng ~n:p.hosts ~degree:p.degree
  in
  let services =
    Array.init p.services (fun s ->
        {
          Network.sv_name = Printf.sprintf "svc%d" s;
          sv_products =
            Array.init p.products_per_service (fun k ->
                Printf.sprintf "s%d_p%d" s k);
          sv_similarity =
            synthetic_similarity ~rng ~products:p.products_per_service;
        })
  in
  let all_services = List.init p.services (fun s -> (s, [||])) in
  let hosts =
    Array.init p.hosts (fun h ->
        { Network.h_name = Printf.sprintf "h%d" h;
          h_services = all_services })
  in
  Network.create ~graph ~services ~hosts

let pp_params ppf p =
  Format.fprintf ppf
    "%d hosts, degree %d, %d services x %d products (seed %d)" p.hosts
    p.degree p.services p.products_per_service p.seed

type zoned_params = {
  z_hosts : int;
  z_zones : int;
  z_degree : int;
  z_gateway_links : int;
  z_services : int;
  z_products : int;
  z_seed : int;
}

let default_zoned =
  { z_hosts = 10_000; z_zones = 10; z_degree = 8; z_gateway_links = 4;
    z_services = 5; z_products = 4; z_seed = 1 }

let check_zoned p =
  if p.z_hosts < 1 || p.z_zones < 1 || p.z_zones > p.z_hosts
     || p.z_degree < 0 || p.z_gateway_links < 0 || p.z_services < 1
     || p.z_products < 1
  then invalid_arg "Workload: bad zoned parameter"

(* Exact link count the generator will emit: per zone the connected-
   average-degree target [size * degree / 2] (zero for degree < 2 or a
   one-host zone), plus [z_gateway_links] between consecutive zones
   (capped by the zone-pair product). *)
let zoned_links p =
  let base = p.z_hosts / p.z_zones and extra = p.z_hosts mod p.z_zones in
  let size z = base + if z < extra then 1 else 0 in
  let links = ref 0 in
  for z = 0 to p.z_zones - 1 do
    let sz = size z in
    if sz > 1 && p.z_degree >= 2 then links := !links + (sz * p.z_degree / 2);
    if z + 1 < p.z_zones then
      links := !links + min p.z_gateway_links (sz * size (z + 1))
  done;
  !links

let estimate_zoned_words p =
  check_zoned p;
  Mrf.estimate_words
    ~nodes:(p.z_hosts * p.z_services)
    ~edges:(zoned_links p * p.z_services)
    ~max_labels:p.z_products ~tables:p.z_services

let stream_zoned ?(prconst = 0.01) p =
  check_zoned p;
  let rng =
    Random.State.make [| p.z_seed; p.z_hosts; p.z_zones; p.z_degree |]
  in
  let n_vars = p.z_hosts * p.z_services in
  let builder =
    Mrf.Builder.create ~label_counts:(Array.make n_vars p.z_products)
  in
  Mrf.Builder.reserve_edges builder (zoned_links p * p.z_services);
  let unary = Array.make p.z_products prconst in
  for v = 0 to n_vars - 1 do
    Mrf.Builder.set_unary builder ~node:v unary
  done;
  (* one physically shared similarity matrix per service, so every edge
     of a service hash-conses to the same interned table id *)
  let sims =
    Array.init p.z_services (fun _ ->
        synthetic_similarity ~rng ~products:p.z_products)
  in
  let zone_of = Array.make n_vars 0 in
  let base = p.z_hosts / p.z_zones and extra = p.z_hosts mod p.z_zones in
  let start = Array.make (p.z_zones + 1) 0 in
  for z = 0 to p.z_zones - 1 do
    start.(z + 1) <- start.(z) + base + if z < extra then 1 else 0
  done;
  let add_link u v =
    for s = 0 to p.z_services - 1 do
      Mrf.Builder.add_edge builder
        ((u * p.z_services) + s)
        ((v * p.z_services) + s)
        sims.(s)
    done
  in
  for z = 0 to p.z_zones - 1 do
    let lo = start.(z) and hi = start.(z + 1) in
    for h = lo to hi - 1 do
      for s = 0 to p.z_services - 1 do
        zone_of.((h * p.z_services) + s) <- z
      done
    done;
    let size = hi - lo in
    if size > 1 && p.z_degree >= 2 then
      Gen.iter_connected_avg_degree ~rng ~n:size ~degree:p.z_degree
        (fun a b -> add_link (lo + a) (lo + b));
    if z + 1 < p.z_zones && p.z_gateway_links > 0 then begin
      let nlo = start.(z + 1) and nhi = start.(z + 2) in
      let cap = min p.z_gateway_links (size * (nhi - nlo)) in
      let seen = Hashtbl.create (2 * cap) in
      let made = ref 0 in
      while !made < cap do
        let u = lo + Random.State.int rng size in
        let v = nlo + Random.State.int rng (nhi - nlo) in
        if not (Hashtbl.mem seen (u, v)) then begin
          Hashtbl.add seen (u, v) ();
          add_link u v;
          incr made
        end
      done
    end
  done;
  (Mrf.Builder.build builder, zone_of)

let pp_zoned_params ppf p =
  Format.fprintf ppf
    "%d hosts in %d zones, degree %d + %d gateway links, %d services x %d \
     products (seed %d)"
    p.z_hosts p.z_zones p.z_degree p.z_gateway_links p.z_services
    p.z_products p.z_seed
