(** Random diversification instances for the scalability study (Section
    VIII).

    The paper times its optimizer on randomly generated networks
    parameterized by host count, average degree and services per host.
    Instances here follow that recipe: a uniform random connected host
    graph; a catalog of [services] services, each offered by
    [products_per_service] products with a synthetic similarity matrix
    (zero across "vendor families", Jaccard-like within — mimicking the
    block structure of the real CVE tables); every host runs every
    service.  Everything is deterministic in [seed]. *)

type params = {
  hosts : int;
  degree : int;              (** average degree; paper sweeps 5-50 *)
  services : int;            (** services per host; paper sweeps 5-30 *)
  products_per_service : int;  (** paper's case study uses 3-4 *)
  seed : int;
}

val default : params
(** 1000 hosts, degree 20, 15 services, 4 products — the paper's
    mid-density configuration. *)

val instance : params -> Netdiv_core.Network.t
(** Builds the network for [params].
    @raise Invalid_argument for non-positive sizes. *)

val synthetic_similarity :
  rng:Random.State.t -> products:int -> float array
(** One synthetic similarity matrix: products are split into two vendor
    families; cross-family similarity is 0, within-family pairs get a
    Jaccard-like draw in (0, 0.7]. *)

val pp_params : Format.formatter -> params -> unit

(** {1 Zoned streaming instances}

    100k-host instances never exist as one resident object graph:
    {!stream_zoned} emits each zone's topology straight into the compact
    MRF encoder ({!Netdiv_mrf.Mrf.Builder}) via
    {!Netdiv_graph.Gen.iter_connected_avg_degree}, so peak memory is the
    growing compact model plus one zone's generator state.  The zone
    structure mirrors segmented ICS networks: dense connected zones
    joined by a few gateway links between consecutive zones. *)

type zoned_params = {
  z_hosts : int;           (** total hosts, split across zones ±1 *)
  z_zones : int;           (** zone count; hosts are zone-contiguous *)
  z_degree : int;          (** average degree inside a zone; < 2 means
                               edgeless zones *)
  z_gateway_links : int;   (** distinct host links between consecutive
                               zones *)
  z_services : int;        (** services per host (all hosts run all) *)
  z_products : int;        (** products per service *)
  z_seed : int;
}

val default_zoned : zoned_params
(** 10k hosts, 10 zones, degree 8, 4 gateway links, 5 services x 4
    products. *)

val stream_zoned : ?prconst:float -> zoned_params -> Netdiv_mrf.Mrf.t * int array
(** [stream_zoned p] builds the diversification MRF of a zoned instance
    directly — one variable per (host, service) slot at
    [host * z_services + service], every unary the constant preference
    cost [prconst] (default 0.01), one pairwise similarity edge per
    (link, service) — and returns it with the per-variable zone map
    (ready for {!Netdiv_mrf.Trws.solve_zoned}).  Each service shares one
    similarity matrix across all its edges, so the model interns exactly
    [z_services] tables.  Deterministic in [z_seed].
    @raise Invalid_argument for non-positive sizes or
    [z_zones > z_hosts]. *)

val estimate_zoned_words : zoned_params -> int
(** Predicted peak words ({!Netdiv_mrf.Mrf.estimate_words}) for building
    and solving [stream_zoned p] — what [--mem-budget] checks before any
    allocation happens. *)

val pp_zoned_params : Format.formatter -> zoned_params -> unit
