module Network = Netdiv_core.Network
module Assignment = Netdiv_core.Assignment
module Constr = Netdiv_core.Constr
module Optimize = Netdiv_core.Optimize
module Attack_bn = Netdiv_bayes.Attack_bn
module Engine = Netdiv_sim.Engine

type assignments = {
  optimal : Assignment.t;
  host_constrained : Assignment.t;
  product_constrained : Assignment.t;
  random : Assignment.t;
  mono : Assignment.t;
}

let optimal_or_fail ?budget ?jobs net constraints =
  let report = Optimize.run ?budget ?jobs net constraints in
  if not report.Optimize.constraints_ok then
    failwith "Experiments: optimizer violated the constraint set";
  report.Optimize.assignment

let compute_assignments ?(seed = 2020) ?budget ?jobs net =
  let c1 = Products.host_constraints net in
  let c2 = Products.product_constraints net in
  let rng = Random.State.make [| seed |] in
  {
    optimal = optimal_or_fail ?budget ?jobs net [];
    host_constrained = optimal_or_fail ?budget ?jobs net c1;
    product_constrained = optimal_or_fail ?budget ?jobs net c2;
    random = Constr.apply_fixes net c1 (Assignment.random ~rng net);
    mono = Constr.apply_fixes net c1 (Assignment.mono net);
  }

let labelled a =
  [
    ("optimal", a.optimal);
    ("host-constr", a.host_constrained);
    ("product-constr", a.product_constrained);
    ("random", a.random);
    ("mono", a.mono);
  ]

type diversity_row = {
  label : string;
  log_p_ref : float;
  log_p_sim : float;
  d_bn : float;
}

let diversity_table ?(p_avg = Attack_bn.default_p_avg) a =
  let entry = Topology.host "c4" and target = Topology.host Topology.target in
  List.map
    (fun (label, assignment) ->
      let p_ref =
        Attack_bn.p_compromise assignment ~entry ~target
          ~model:(Attack_bn.Fixed p_avg)
      in
      let p_sim =
        Attack_bn.p_compromise assignment ~entry ~target
          ~model:Attack_bn.Uniform_choice
      in
      {
        label;
        log_p_ref = log10 p_ref;
        log_p_sim = log10 p_sim;
        d_bn = p_ref /. p_sim;
      })
    (labelled a)

type mttc_row = {
  label : string;
  per_entry : (string * Engine.mttc_stats) list;
}

let mttc_table ?(seed = 7) ?(runs = 1000) a =
  let target = Topology.host Topology.target in
  (* Table VI omits the random baseline *)
  let rows =
    List.filter (fun (label, _) -> label <> "random") (labelled a)
  in
  List.map
    (fun (label, assignment) ->
      let per_entry =
        List.map
          (fun entry_name ->
            let rng = Random.State.make [| seed; Hashtbl.hash label;
                                           Hashtbl.hash entry_name |] in
            ( entry_name,
              Engine.mttc ~rng ~runs assignment
                ~entry:(Topology.host entry_name) ~target ))
          Topology.entry_points
      in
      { label; per_entry })
    rows
