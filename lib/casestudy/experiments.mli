(** The case-study experiments of Section VII.

    Computes the five assignments the paper evaluates —

    - [optimal] (α̂): unconstrained optimal diversification,
    - [host_constrained] (α̂C1): optimal under the C1 host policies,
    - [product_constrained] (α̂C2): optimal under C1 plus the C2
      undesirable-combination constraints,
    - [random] (αr): uniform random diversification,
    - [mono] (αm): the homogeneous worst case —

    and reproduces Table V (the BN diversity metric [d_bn] with entry c4
    and target t5) and Table VI (MTTC from the five entry points). *)

type assignments = {
  optimal : Netdiv_core.Assignment.t;
  host_constrained : Netdiv_core.Assignment.t;
  product_constrained : Netdiv_core.Assignment.t;
  random : Netdiv_core.Assignment.t;
  mono : Netdiv_core.Assignment.t;
}

val compute_assignments :
  ?seed:int ->
  ?budget:Netdiv_mrf.Runner.Budget.t ->
  ?jobs:int ->
  Netdiv_core.Network.t ->
  assignments
(** Runs the optimizer for the three optimal variants and builds the two
    baselines.  αr and αm respect the C1 [Fix] policies (the paper applies
    baselines to "non-constrained hosts" only).  Deterministic in
    [seed].  [budget] (a {e per-run} allowance, applied to each of the
    three optimizer calls) routes the solves through the anytime
    harness; each still fails if the budgeted answer violates its
    constraint set.  [jobs] parallelizes the solver as in
    {!Netdiv_core.Optimize.run}; the assignments do not depend on its
    value. *)

val labelled : assignments -> (string * Netdiv_core.Assignment.t) list
(** [("optimal", α̂); ("host-constr", α̂C1); ("product-constr", α̂C2);
    ("random", αr); ("mono", αm)] — Table V's row order. *)

type diversity_row = {
  label : string;
  log_p_ref : float;   (** log10 P′(t5) — flat-rate reference *)
  log_p_sim : float;   (** log10 P(t5) — similarity-aware *)
  d_bn : float;        (** P′/P, Definition 6 *)
}

val diversity_table :
  ?p_avg:float -> assignments -> diversity_row list
(** Table V: entry c4, target t5. *)

type mttc_row = {
  label : string;
  per_entry : (string * Netdiv_sim.Engine.mttc_stats) list;
      (** entry host name → MTTC statistics *)
}

val mttc_table :
  ?seed:int -> ?runs:int -> assignments -> mttc_row list
(** Table VI: MTTC of α̂, α̂C1, α̂C2 and αm from entries c1, c4, e3, r4 and
    v1 (1,000 runs each by default), with the reconnaissance attacker. *)
