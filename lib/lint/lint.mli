(** netdiv-lint: a concurrency/determinism checker for this repository's
    own OCaml sources, with no dependencies outside the repository
    (no ppx, no compiler-libs; JSON goes through {!Netdiv_vuln.Json}).

    The paper's reported numbers (optimal assignments, d_bn, MTTC) are
    reproducible only while every solver path stays deterministic under
    any domain count.  The type system cannot express that contract, so
    this module enforces the mechanically checkable part of it: a
    comment/string-aware surface lexer ({!Lexer}) feeds a small rule
    engine, and each rule reports findings as [file:line] pairs.  On top
    of the per-line rules, {!analyze_paths} runs the interprocedural
    passes ({!Symbols} call graph, {!Effects} fixpoint) whose rules see
    through call chains.

    {2 Surface rules}

    - [spawn-outside-pool]: [Domain.spawn] anywhere but [lib/par/pool.ml].
    - [toplevel-mutable-state]: module-toplevel [ref] / [Hashtbl.create] /
      [Array.make] bindings in parallel-reachable libraries ([lib/mrf],
      [lib/sim], [lib/par], [lib/core]).
    - [nondeterminism-source]: [Random.self_init], [Sys.time] or
      [Unix.gettimeofday] in solver/sim code.
    - [direct-clock-in-instrumented-code]: [Unix.gettimeofday] or
      [Sys.time] in the layers wired with Netdiv_obs telemetry but
      outside the solver/sim scope ([lib/obs], [lib/core], [bin/]);
      timestamps must go through [Netdiv_obs.Obs.Clock] so spans and
      reported timings share one monotone time base.
    - [list-nth-in-loop]: [List.nth]/[List.nth_opt] inside a [for]/[while]
      loop.
    - [alloc-in-loop]: [Array.make]/[Array.init]/[Array.copy] inside a
      [for]/[while] body in the measured hot directories ([lib/mrf],
      [lib/bayes]); per-iteration allocation there is GC pressure the
      bench pays for directly — hoist a scratch buffer.  Also flags a
      tuple or record literal built around [Mrf.Compact] accessor calls
      inside such a loop: packing [Compact.neighbor]/[Compact.edge]
      reads into a boxed value re-creates, per iteration, exactly the
      per-edge records the CSR layout removed — keep the fields in
      scalar [let]s.
    - [missing-mli]: a [lib/] module with no interface file.
    - [printf-in-lib]: stdout printing from library code.
    - [bad-suppression]: a malformed suppression comment.
    - [float-equality-in-kernel]: [=]/[<>] with a float literal (or
      [infinity]/[nan]/...) operand in [lib/mrf]; computed energies must
      compare through an epsilon or an intentional [Float.equal].

    {2 Interprocedural rules} (only via {!analyze_paths}/{!analyze_sources})

    - [nondet-taint]: a [lib/mrf]/[lib/sim]/[lib/core] binding whose
      transitive call closure reaches a clock read or global [Random]
      use.  Only transitive reaches are reported (a direct source is
      already a surface finding); each finding carries the witness call
      chain, printable with [--explain].
    - [impure-in-parallel-region]: a callee passed into
      [Pool.parallel_for]/[map_range]/[map_reduce] or [Team.run] whose
      summary mutates module-toplevel state or spawns a domain, or an
      inline closure body doing so directly.
    - [unused-export]: an [.mli]-declared value never referenced from
      outside its module, counting reference roots ([test/], [bench/],
      [examples/], [tools/]) as consumers.

    Suppressions double as effect {e barriers}: a reasoned suppression
    at a source line certifies it, so the sanctioned clock shim in
    [lib/obs] does not taint every instrumented caller.

    {2 Suppressions}

    A finding is silenced by a comment on the same line, the line before,
    or (for [allow-file]) anywhere in the file:

    {v (* netdiv-lint: allow <rule> — <reason> *) v}
    {v (* netdiv-lint: allow-file <rule> — <reason> *) v}

    The reason is mandatory: a suppression without one is itself reported
    under [bad-suppression]. *)

type chain_step = { c_name : string; c_file : string; c_line : int }

type finding = {
  file : string;
  line : int;
  rule : string;
  message : string;
  symbol : string option;
      (** qualified binding name, for interprocedural findings *)
  chain : chain_step list;
      (** witness call chain (tainted binding first, source last);
          empty for surface findings *)
}

val pp_finding : Format.formatter -> finding -> unit
(** Renders as [file:line: [rule] message]. *)

val pp_chain : Format.formatter -> chain_step list -> unit
(** Renders a witness chain one step per line, indented with [->]. *)

val rules : (string * string) list
(** Shipped rule ids with a one-line description each. *)

val lint_source : path:string -> ?has_mli:bool -> string -> finding list
(** [lint_source ~path src] lints the source text [src] as though it
    lived at [path]; the path decides which rules apply (library vs
    binary, parallel-reachable directory, the pool exemption).  The
    [missing-mli] rule only runs when [has_mli] is supplied, since the
    text alone cannot know its siblings.  Findings are sorted by line. *)

val lint_file : string -> finding list
(** Reads [path] and lints it; for a [.ml] file the sibling [.mli]'s
    existence feeds the [missing-mli] rule. *)

val lint_paths : string list -> finding list
(** Recursively lints every [.ml] file under the given files/directories,
    in sorted filename order, skipping dot- and underscore-prefixed
    directory entries ([_build], [.git]).  Surface rules only; the CLI
    uses {!analyze_paths}. *)

(** {2 Whole-repo analysis} *)

type report = {
  r_findings : finding list;
      (** suppression-filtered, sorted by (file, line, rule) *)
  r_files : int;  (** analyzed files, reference roots excluded *)
  r_bindings : int;  (** bindings in the symbol graph *)
}

val analyze_sources :
  ?refs:(string * string) list ->
  (string * string * string option) list ->
  report
(** [analyze_sources files] runs surface and interprocedural rules over
    in-memory sources; each file is [(path, source, mli_source)].
    [refs] are reference-only roots: they join the symbol graph so their
    uses count for [unused-export], but no rule reports on them.  A file
    given without an [.mli] source is treated as having none (so
    [missing-mli] applies to lib modules; pass [Some ""] to model an
    interface that exports nothing). *)

val analyze_paths : ?ref_paths:string list -> string list -> report
(** Disk-backed {!analyze_sources}: collects [.ml] files under [paths]
    with their sibling [.mli]s, and reference files under [ref_paths]. *)

val default_ref_paths : string list -> string list
(** The conventional reference roots for a repository checkout: the
    [test]/[bench]/[examples]/[tools] siblings of the first path's
    parent directory, filtered to those that exist. *)

val explain : report -> string -> finding list
(** Findings carrying a witness chain whose symbol matches the given
    name exactly or by [.]-suffix ([explain r "solve"] matches
    ["Trws.solve"]). *)

(** {2 JSON output and baselines} *)

val report_to_json :
  ?fresh:finding list -> ?baselined:int -> ?stale:string list ->
  report -> string
(** Machine-readable report: [{"version", "files", "bindings",
    "findings", "baselined", "stale_baseline"}].  [fresh] is the
    post-baseline finding list to emit. *)

type baseline_entry = {
  e_file : string;
  e_rule : string;
  e_symbol : string option;
  e_line : int option;
  e_reason : string;  (** mandatory, like suppression reasons *)
}

val baseline_of_string : string -> (baseline_entry list, string) result
(** Parses a baseline file ([{"findings": [{file, rule, symbol?, line?,
    reason}]}]); an entry without a written reason is an error. *)

val apply_baseline :
  baseline_entry list -> finding list ->
  finding list * int * string list
(** [(fresh, baselined, stale)]: findings no entry matches, the count
    absorbed by the baseline, and rendered entries that matched nothing
    (fix them by deleting the entry). *)

val baseline_template : finding list -> string
(** Serializes findings as a baseline skeleton with TODO reasons, for
    [--write-baseline]. *)
