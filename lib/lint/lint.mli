(** netdiv-lint: a dependency-free concurrency/determinism checker for
    this repository's own OCaml sources.

    The paper's reported numbers (optimal assignments, d_bn, MTTC) are
    reproducible only while every solver path stays deterministic under
    any domain count.  The type system cannot express that contract, so
    this module enforces the mechanically checkable part of it: a
    comment/string-aware surface lexer ({!Lexer}) feeds a small rule
    engine, and each rule reports findings as [file:line] pairs.

    {2 Rules}

    - [spawn-outside-pool]: [Domain.spawn] anywhere but [lib/par/pool.ml].
    - [toplevel-mutable-state]: module-toplevel [ref] / [Hashtbl.create] /
      [Array.make] bindings in parallel-reachable libraries ([lib/mrf],
      [lib/sim], [lib/par], [lib/core]).
    - [nondeterminism-source]: [Random.self_init], [Sys.time] or
      [Unix.gettimeofday] in solver/sim code.
    - [direct-clock-in-instrumented-code]: [Unix.gettimeofday] or
      [Sys.time] in the layers wired with Netdiv_obs telemetry but
      outside the solver/sim scope ([lib/obs], [lib/core], [bin/]);
      timestamps must go through [Netdiv_obs.Obs.Clock] so spans and
      reported timings share one monotone time base.
    - [list-nth-in-loop]: [List.nth]/[List.nth_opt] inside a [for]/[while]
      loop.
    - [alloc-in-loop]: [Array.make]/[Array.init]/[Array.copy] inside a
      [for]/[while] body in the measured hot directories ([lib/mrf],
      [lib/bayes]); per-iteration allocation there is GC pressure the
      bench pays for directly — hoist a scratch buffer.
    - [missing-mli]: a [lib/] module with no interface file.
    - [printf-in-lib]: stdout printing from library code.
    - [bad-suppression]: a malformed suppression comment.

    {2 Suppressions}

    A finding is silenced by a comment on the same line, the line before,
    or (for [allow-file]) anywhere in the file:

    {v (* netdiv-lint: allow <rule> — <reason> *) v}
    {v (* netdiv-lint: allow-file <rule> — <reason> *) v}

    The reason is mandatory: a suppression without one is itself reported
    under [bad-suppression]. *)

type finding = {
  file : string;
  line : int;
  rule : string;
  message : string;
}

val pp_finding : Format.formatter -> finding -> unit
(** Renders as [file:line: [rule] message]. *)

val rules : (string * string) list
(** Shipped rule ids with a one-line description each. *)

val lint_source : path:string -> ?has_mli:bool -> string -> finding list
(** [lint_source ~path src] lints the source text [src] as though it
    lived at [path]; the path decides which rules apply (library vs
    binary, parallel-reachable directory, the pool exemption).  The
    [missing-mli] rule only runs when [has_mli] is supplied, since the
    text alone cannot know its siblings.  Findings are sorted by line. *)

val lint_file : string -> finding list
(** Reads [path] and lints it; for a [.ml] file the sibling [.mli]'s
    existence feeds the [missing-mli] rule. *)

val lint_paths : string list -> finding list
(** Recursively lints every [.ml] file under the given files/directories,
    in sorted filename order, skipping dot- and underscore-prefixed
    directory entries ([_build], [.git]). *)
