(** Transitive effect summaries over the {!Symbols} call graph.

    Each top-level binding gets a summary in the six-point powerset
    lattice {nondet-clock, nondet-random, spawns-domain,
    mutates-toplevel, allocates, prints}.  Base effects come from token
    patterns inside the binding's own body; the fixpoint then closes
    them over the over-approximate call graph, so a solver entry point
    three calls away from [Unix.gettimeofday] carries [Clock] even
    though no forbidden token appears in its body.

    Suppressions act as trust boundaries: a source token whose line
    carries a reasoned [netdiv-lint] suppression for the matching
    surface rule does {e not} contribute its base effect, so e.g. the
    sanctioned clock shim in [lib/obs] (suppressed at the
    [Unix.gettimeofday] read) stops clock taint from flooding every
    instrumented caller.  The [barrier] callback supplies that
    judgement, keeping this module free of suppression-parsing logic.

    Every effect an analysis reports is backed by a witness — either
    the source token itself or the call edge it arrived through — so a
    finding can be explained as a concrete call chain.  Witness chains
    are acyclic by construction: an edge witness is only recorded the
    first time an effect reaches a binding, and at that moment the
    callee's own chain was already complete. *)

type eff =
  | Clock  (** [Unix.gettimeofday] / [Sys.time] *)
  | Random  (** global-state [Random.*] (anything but [Random.State]) *)
  | Spawn  (** [Domain.spawn] *)
  | Mutate  (** assignment to a module-toplevel binding *)
  | Alloc  (** heap allocation helpers ([Array.make], slabs, tables) *)
  | Print  (** stdout printing *)

val eff_name : eff -> string
(** ["nondet-clock"], ["nondet-random"], ["spawns-domain"],
    ["mutates-toplevel"], ["allocates"], ["prints"]. *)

type source = { s_eff : eff; s_line : int; s_descr : string }
(** A base-effect occurrence, e.g.
    [{ s_eff = Clock; s_line = 12; s_descr = "Unix.gettimeofday" }]. *)

type witness =
  | Direct of source
  | Via of { callee : int; call_line : int }
      (** the effect arrived through a call to binding [callee],
          referenced at [call_line] of this binding's file *)

type summary = {
  effs : eff list;  (** sorted, duplicate-free *)
  wit : (eff * witness) list;  (** one witness per present effect *)
}

type t = {
  repo : Symbols.repo;
  summaries : summary array;  (** indexed by binding id *)
}

val analyze :
  barrier:(path:string -> line:int -> rule:string -> bool) ->
  Symbols.repo ->
  t
(** Computes base effects and runs the fixpoint.  [barrier ~path ~line
    ~rule] must return [true] when a reasoned suppression for [rule]
    covers [line] of [path]; such sources are certified and dropped. *)

val has : t -> int -> eff -> bool

val summary : t -> int -> summary

val direct_sources :
  barrier:(path:string -> line:int -> rule:string -> bool) ->
  Symbols.file_syms ->
  Symbols.binding ->
  lo:int ->
  hi:int ->
  Symbols.repo ->
  source list
(** The base-effect occurrences inside the token range [\[lo, hi)] of
    one binding's body, barrier-filtered; used by the
    parallel-region rule to check inline closure bodies without
    re-running the whole analysis. *)

type chain_step = { c_name : string; c_file : string; c_line : int }

val chain : t -> int -> eff -> chain_step list
(** The witness chain for an effect of a binding: the binding itself
    (at its definition line), each intermediate callee, and finally the
    source token spelled as its description ([Unix.gettimeofday], ...)
    at the line it occurs.  Empty when the binding lacks the effect. *)
