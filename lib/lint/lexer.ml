(* Surface lexer for netdiv-lint.  See lexer.mli for the contract.

   This is deliberately not a real OCaml lexer: it only needs to be
   accurate about what is *code* versus what is a comment, a string or a
   character literal, and to attach a line/column to every surviving
   token.  Operators are emitted one character at a time; rules match on
   short token sequences, so multi-character operators never matter. *)

type token = { text : string; line : int; col : int }
type comment = { ctext : string; cline : int; cline_end : int }

type t = { tokens : token array; comments : comment array }

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let is_digit c = c >= '0' && c <= '9'

(* Loose number body: enough to swallow literals like 0xBF58l, 1e-6,
   1_000_000 or 3.14 as a single token without caring about validity. *)
let is_number_char c =
  is_digit c || is_ident_char c || c = '.'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] and comments = ref [] in
  let line = ref 1 and bol = ref 0 in
  let i = ref 0 in
  let col at = at - !bol in
  let newline at = incr line; bol := at + 1 in
  let emit text at_col at_line =
    tokens := { text; line = at_line; col = at_col } :: !tokens
  in
  (* Skip a string literal starting at [!i] (which points at '"').
     Returns with [!i] just past the closing quote. *)
  let skip_string () =
    incr i;
    let fin = ref false in
    while (not !fin) && !i < n do
      (match src.[!i] with
      | '\\' -> incr i (* skip the escaped character, whatever it is *)
      | '"' -> fin := true
      | '\n' -> newline !i
      | _ -> ());
      incr i
    done
  in
  (* Quoted string {id|...|id}. [!i] points at '{'; returns past the
     closing }.  If this is not actually a quoted string, emits '{'. *)
  let skip_quoted_string () =
    let j = ref (!i + 1) in
    while !j < n && (src.[!j] = '_' || (src.[!j] >= 'a' && src.[!j] <= 'z')) do
      incr j
    done;
    if !j < n && src.[!j] = '|' then begin
      let id = String.sub src (!i + 1) (!j - !i - 1) in
      let closing = "|" ^ id ^ "}" in
      let m = String.length closing in
      i := !j + 1;
      let fin = ref false in
      while (not !fin) && !i < n do
        if src.[!i] = '\n' then newline !i;
        if !i + m <= n && String.sub src !i m = closing then begin
          i := !i + m;
          fin := true
        end
        else incr i
      done
    end
    else begin
      emit "{" (col !i) !line;
      incr i
    end
  in
  (* Comment starting at [!i] (pointing at the '(' of "(*").  Handles
     nesting and strings inside comments; records the top-level comment
     text and its line span for suppression matching. *)
  let skip_comment () =
    let start = !i and start_line = !line in
    let depth = ref 0 in
    let fin = ref false in
    while (not !fin) && !i < n do
      if !i + 1 < n && src.[!i] = '(' && src.[!i + 1] = '*' then begin
        incr depth;
        i := !i + 2
      end
      else if !i + 1 < n && src.[!i] = '*' && src.[!i + 1] = ')' then begin
        decr depth;
        i := !i + 2;
        if !depth = 0 then fin := true
      end
      else if src.[!i] = '"' then skip_string ()
      else begin
        if src.[!i] = '\n' then newline !i;
        incr i
      end
    done;
    comments :=
      { ctext = String.sub src start (!i - start);
        cline = start_line;
        cline_end = !line }
      :: !comments
  in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      newline !i;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if !i + 1 < n && c = '(' && src.[!i + 1] = '*' then skip_comment ()
    else if c = '"' then skip_string ()
    else if c = '{' then skip_quoted_string ()
    else if c = '\'' then begin
      (* char literal vs type variable / label quote *)
      if !i + 1 < n && src.[!i + 1] = '\\' then begin
        (* escaped char literal: skip to the closing quote *)
        i := !i + 2;
        while !i < n && src.[!i] <> '\'' do incr i done;
        incr i
      end
      else if !i + 2 < n && src.[!i + 2] = '\'' then
        (* plain char literal 'x' *)
        i := !i + 3
      else (* type variable: drop the quote, the ident follows *)
        incr i
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      emit (String.sub src start (!i - start)) (col start) !line
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_number_char src.[!i] do incr i done;
      emit (String.sub src start (!i - start)) (col start) !line
    end
    else begin
      emit (String.make 1 c) (col !i) !line;
      incr i
    end
  done;
  {
    tokens = Array.of_list (List.rev !tokens);
    comments = Array.of_list (List.rev !comments);
  }
