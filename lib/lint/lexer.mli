(** Comment- and string-aware surface lexer for the netdiv-lint checker.

    The lexer splits OCaml source into a flat token stream annotated with
    line and column, discarding the contents of string literals, character
    literals and comments, so rule patterns never match inside them.
    Comments are captured separately (with their line span) because they
    carry inline suppressions.

    It is intentionally not a full OCaml lexer: identifiers, numbers and
    single-character symbols are all it distinguishes.  That is enough
    for the short token-sequence patterns the rule engine matches, and it
    keeps the library dependency-free (no ppx, no compiler-libs). *)

type token = {
  text : string;  (** identifier, number, or a single symbol character *)
  line : int;  (** 1-based line *)
  col : int;  (** 0-based column of the token's first character *)
}

type comment = {
  ctext : string;  (** full comment text including delimiters *)
  cline : int;  (** line the comment opens on *)
  cline_end : int;  (** line the comment closes on *)
}

type t = { tokens : token array; comments : comment array }

val tokenize : string -> t
(** [tokenize src] lexes a whole source file.  Never raises: unterminated
    comments or strings simply end at end-of-file. *)
