(** Structural symbol tables and an over-approximate call graph for
    netdiv-lint's interprocedural passes.

    Built on the {!Lexer} token stream, this module recognizes just
    enough OCaml structure to answer two questions per repository:

    - which top-level [let]-bindings (and [external]s) does each file
      define, under which module path, and which token span is each
      binding's body;
    - which other bindings may each body reference (an over-approximate
      call graph: every identifier that resolves is an edge; unresolved
      identifiers — locals, stdlib, pattern variables — are dropped).

    It is deliberately not a parser: structure is recovered from the
    ocamlformat-shaped column discipline the repository follows (items
    at column 0, plus two per enclosing [struct]/[sig]), with a resync
    rule so that syntax it cannot model (nested [let module], functor
    bodies, objects) derails at most the enclosing binding and never the
    rest of the file.  Everything downstream treats the result as an
    over-approximation: missing edges are possible only for constructs
    the repository's own style forbids, spurious edges are harmless
    (they widen effect summaries, never shrink them). *)

type binding = {
  b_id : int;  (** global index once {!build} has run; -1 before *)
  b_file : string;
  b_module : string list;
      (** module path inside the file, starting with the file's own
          module name, e.g. [["Obs"; "Clock"]] for [Obs.Clock.now] *)
  b_name : string;
      (** value name; operator definitions are spelled as their
          concatenated symbol, e.g. [".%()"] or ["let*"]; anonymous
          toplevel bindings ([let () = ...]) are ["(init)"] *)
  b_line : int;
  b_lo : int;  (** first token index of the binding body *)
  b_hi : int;  (** one past the last token index of the body *)
  b_func : bool;
      (** has parameters or a [fun]/[function] body — a call-time
          binding; [false] means a value evaluated once at module
          init, through which per-call effects must not propagate *)
}

type reference = {
  r_path : string list;  (** module qualifiers, [[]] for a bare name *)
  r_name : string;
  r_line : int;
  r_tok : int;  (** token index of the first path component *)
}

type mli_val = {
  v_name : string;
  v_module : string list;  (** like {!binding.b_module} *)
  v_line : int;
  v_operator : bool;  (** declared as [val ( op ) : ...] *)
}

type file_syms = {
  f_path : string;
  f_modname : string;  (** capitalized basename, ["Pool"] for pool.ml *)
  f_lex : Lexer.t;
  f_bindings : binding array;
  f_refs : reference array array;  (** per binding, same indexing *)
  f_opens : string list list;
  f_aliases : (string * string list) list;
      (** [module X = P.Q] and functor applications [module X = F (A)],
          recorded as X -> head path *)
  f_mli : mli_val list;  (** exports, when a sibling .mli was supplied *)
}

type repo = {
  files : file_syms array;
  bindings : binding array;  (** all bindings, indexed by [b_id] *)
  file_of : int array;  (** binding id -> index into [files] *)
  by_suffix : (string, int list) Hashtbl.t;
      (** resolution index: ["Mod.Sub.name"] suffix keys -> binding ids *)
}

val module_name_of_path : string -> string
(** ["lib/par/pool.ml"] -> ["Pool"]. *)

val parse_lexed : path:string -> Lexer.t -> ?mli:Lexer.t -> unit -> file_syms
(** Builds the symbol table for one already-lexed file; [mli] supplies
    the sibling interface's exports. *)

val parse_file : path:string -> ?mli:string -> string -> file_syms
(** [parse_file ~path src] lexes and parses; [mli] is the interface
    source text if one exists. *)

val build : file_syms list -> repo
(** Assigns global binding ids and freezes the resolution index. *)

val resolve : repo -> file_syms -> reference -> int list
(** All binding ids the reference may denote, [[]] when it resolves to
    nothing the repository defines (stdlib, locals the parser missed).
    Qualified paths are matched by module-path suffix after expanding
    file-local aliases and dropping [Netdiv_*]/[Stdlib] wrapper
    components; bare names resolve within the defining file (latest
    definition at or above the use line, i.e. shadow-aware) and through
    that file's [open]s. *)

val qualified_name : binding -> string
(** ["Obs.Clock.now"] — module path and name joined with dots. *)

val normalize_path : file_syms -> string list -> string list
(** Expands a file-local module alias at the head and drops
    [Netdiv_*]/[Stdlib] library-wrapper components, so
    [["Obs"; "Clock"]] comes back for a use spelled through
    [module Obs = Netdiv_obs.Obs]. *)

val ref_at : file_syms -> binding -> int -> reference option
(** The recorded reference whose first token is exactly the given token
    index, if any; used to ask "is this token a real reference or a
    local the parser already discharged?". *)
