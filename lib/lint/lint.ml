(* netdiv-lint rule engine.  See lint.mli for the contract and DESIGN.md
   ("Concurrency discipline") for the rationale behind each rule. *)

type finding = { file : string; line : int; rule : string; message : string }

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d: [%s] %s" f.file f.line f.rule f.message

let rules =
  [
    ( "spawn-outside-pool",
      "Domain.spawn anywhere but lib/par/pool.ml; all parallelism must go \
       through Netdiv_par.Pool so job-count invariance holds" );
    ( "toplevel-mutable-state",
      "module-toplevel ref / Hashtbl.create / Array.make binding in a \
       parallel-reachable library (lib/mrf, lib/sim, lib/par, lib/core)" );
    ( "nondeterminism-source",
      "Random.self_init, Sys.time or Unix.gettimeofday in solver/sim code; \
       results must depend only on explicit seeds and budgets" );
    ( "direct-clock-in-instrumented-code",
      "Unix.gettimeofday or Sys.time in code wired with Netdiv_obs \
       telemetry (lib/obs, lib/core, bin); timestamps must go through \
       Netdiv_obs.Obs.Clock so spans and reported timings share one \
       monotone time base" );
    ( "list-nth-in-loop",
      "List.nth inside a for/while loop: O(n) per access turns the loop \
       quadratic (the exact class fixed in lib/sim/engine.ml)" );
    ( "alloc-in-loop",
      "Array.make/Array.init/Array.copy or Float.Array.create/make \
       inside a for/while body in hot solver code (lib/mrf, lib/bayes); \
       allocate scratch (including message slabs) once outside the loop \
       and reuse it" );
    ( "missing-mli",
      "library module without an interface file; every lib/ module must \
       state its exported surface" );
    ( "printf-in-lib",
      "stdout printing from library code; libraries format via a caller's \
       formatter, only bin/ may print" );
    ( "swallowed-exception",
      "try ... with _ -> () discards a failure without logging, counting \
       or re-raising; match the specific exception or suppress with the \
       reason the discard is safe" );
    ( "bad-suppression",
      "malformed netdiv-lint suppression: unknown rule id or missing \
       written reason" );
  ]

let rule_ids = List.map fst rules

(* ------------------------------------------------------ classification *)

type ctx = {
  path : string;
  in_lib : bool;
  lib_dir : string option;
  is_pool : bool;
}

let split_path path =
  String.split_on_char '/' (String.map (fun c -> if c = '\\' then '/' else c) path)

let classify path =
  let segs = List.filter (fun s -> s <> "" && s <> ".") (split_path path) in
  let rec find_lib = function
    | "lib" :: rest -> Some rest
    | _ :: rest -> find_lib rest
    | [] -> None
  in
  let after_lib = find_lib segs in
  let in_lib = after_lib <> None in
  let lib_dir =
    match after_lib with
    | Some (d :: _ :: _) -> Some d (* lib/<dir>/.../file *)
    | _ -> None
  in
  let base = match List.rev segs with b :: _ -> b | [] -> path in
  let is_pool = lib_dir = Some "par" && base = "pool.ml" in
  { path; in_lib; lib_dir; is_pool }

let parallel_reachable ctx =
  match ctx.lib_dir with
  | Some ("mrf" | "sim" | "par" | "core") -> true
  | _ -> false

let solver_sim ctx =
  match ctx.lib_dir with Some ("mrf" | "sim" | "par") -> true | _ -> false

(* Layers that carry Netdiv_obs spans/metrics but sit outside the
   solver/sim scope (where nondeterminism-source already polices clock
   reads): the observability library itself, the optimizer pipeline and
   the executables.  The split keeps the two rules disjoint, so a stray
   clock read gets exactly one finding. *)
let instrumented_non_solver ctx =
  (not (solver_sim ctx))
  &&
  match ctx.lib_dir with
  | Some ("obs" | "core") -> true
  | Some _ -> false
  | None -> not ctx.in_lib

(* Directories whose inner loops are the measured hot path: a
   per-iteration allocation there shows up directly in BENCH.json. *)
let hot_path ctx =
  match ctx.lib_dir with Some ("mrf" | "bayes") -> true | _ -> false

(* -------------------------------------------------------- suppressions *)

type suppression = {
  s_rule : string;
  s_lo : int;
  s_hi : int;  (* a suppression covers its comment's lines plus one *)
  s_file_wide : bool;
}

let directive_prefix = "netdiv-lint:"

(* A reason must contain at least one alphanumeric character, so a bare
   dash or em-dash does not count as one. *)
let is_reason_text s =
  String.exists
    (fun c ->
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9'))
    s

let is_ws c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let split_first_ws s =
  let n = String.length s in
  let rec go i = if i < n && not (is_ws s.[i]) then go (i + 1) else i in
  let i = go 0 in
  (String.sub s 0 i, String.sub s i (n - i))

let parse_directive ~path ~line body =
  (* [body] is everything between the directive marker and the comment
     closer; expected shape: allow[-file] <rule> <separator> <reason> *)
  let body = String.trim body in
  let word, rest = split_first_ws body in
  let bad message = Error { file = path; line; rule = "bad-suppression"; message } in
  let file_wide =
    match word with
    | "allow" -> Some false
    | "allow-file" -> Some true
    | _ -> None
  in
  match file_wide with
  | None ->
      bad
        (Printf.sprintf
           "expected 'allow <rule>' or 'allow-file <rule>', got %S" word)
  | Some s_file_wide -> (
      let rule, reason = split_first_ws (String.trim rest) in
      match List.mem rule rule_ids with
      | false -> bad (Printf.sprintf "unknown rule id %S" rule)
      | true ->
          if not (is_reason_text reason) then
            bad
              (Printf.sprintf
                 "suppression of %s has no written reason; say why the \
                  violation is acceptable"
                 rule)
          else Ok (rule, s_file_wide))

(* A directive must open the comment ("(* netdiv-lint: ..."); mentioning
   the marker mid-prose, as this very comment does, is not a directive. *)
let parse_suppressions ~path (comments : Lexer.comment array) =
  let sups = ref [] and bad = ref [] in
  Array.iter
    (fun (c : Lexer.comment) ->
      (* strip the comment opener and leading whitespace *)
      let text = c.ctext in
      let i = ref 0 in
      let len = String.length text in
      if len >= 2 && String.sub text 0 2 = "(*" then i := 2;
      while !i < len && (text.[!i] = ' ' || text.[!i] = '\t' || text.[!i] = '\n')
      do
        incr i
      done;
      let plen = String.length directive_prefix in
      if !i + plen <= len && String.sub text !i plen = directive_prefix then begin
        let start = !i + plen in
        let body = String.sub text start (len - start) in
        (* drop the comment closer before parsing *)
        let body =
          if String.length body >= 2
             && String.sub body (String.length body - 2) 2 = "*)"
          then String.sub body 0 (String.length body - 2)
          else body
        in
        match parse_directive ~path ~line:c.cline body with
        | Ok (s_rule, s_file_wide) ->
            sups :=
              { s_rule; s_lo = c.cline; s_hi = c.cline_end + 1; s_file_wide }
              :: !sups
        | Error f -> bad := f :: !bad
      end)
    comments;
  (!sups, !bad)

let suppressed sups (f : finding) =
  List.exists
    (fun s ->
      s.s_rule = f.rule && (s.s_file_wide || (f.line >= s.s_lo && f.line <= s.s_hi)))
    sups

(* ------------------------------------------------------- token helpers *)

let tok (toks : Lexer.token array) i =
  if i >= 0 && i < Array.length toks then toks.(i).Lexer.text else ""

let seq2 toks i a b = tok toks i = a && tok toks (i + 1) = b

let seq3 toks i a b c = seq2 toks i a b && tok toks (i + 2) = c

(* --------------------------------------------------------- token rules *)

let finding ctx (t : Lexer.token) rule message =
  { file = ctx.path; line = t.Lexer.line; rule; message }

(* Single forward pass for the sequence-matching rules; [loop_depth]
   tracks for/while nesting for list-nth-in-loop. *)
let scan_tokens ctx (toks : Lexer.token array) =
  let out = ref [] in
  let add t rule msg = out := finding ctx t rule msg :: !out in
  let loop_depth = ref 0 in
  let n = Array.length toks in
  for i = 0 to n - 1 do
    let t = toks.(i) in
    (match t.Lexer.text with
    | "for" | "while" -> incr loop_depth
    | "done" -> if !loop_depth > 0 then decr loop_depth
    | _ -> ());
    if (not ctx.is_pool) && seq3 toks i "Domain" "." "spawn" then
      add t "spawn-outside-pool"
        "Domain.spawn outside lib/par/pool.ml; use Netdiv_par.Pool \
         combinators instead";
    if solver_sim ctx then begin
      if seq3 toks i "Random" "." "self_init" then
        add t "nondeterminism-source"
          "Random.self_init makes results irreproducible; derive seeds \
           with Pool.split_seed";
      if seq3 toks i "Sys" "." "time" then
        add t "nondeterminism-source"
          "Sys.time in solver/sim code; wall-clock reads belong in the \
           anytime harness only";
      if seq3 toks i "Unix" "." "gettimeofday" then
        add t "nondeterminism-source"
          "Unix.gettimeofday in solver/sim code; wall-clock reads belong \
           in the anytime harness only"
    end;
    if instrumented_non_solver ctx then begin
      if seq3 toks i "Unix" "." "gettimeofday" then
        add t "direct-clock-in-instrumented-code"
          "direct Unix.gettimeofday in instrumented code; read the clock \
           through Netdiv_obs.Obs.Clock.now so spans and timings share \
           one time base";
      if seq3 toks i "Sys" "." "time" then
        add t "direct-clock-in-instrumented-code"
          "direct Sys.time in instrumented code; read the clock through \
           Netdiv_obs.Obs.Clock.now so spans and timings share one time \
           base"
    end;
    if
      !loop_depth > 0
      && seq2 toks i "List" "."
      && (tok toks (i + 2) = "nth" || tok toks (i + 2) = "nth_opt")
    then
      add t "list-nth-in-loop"
        "List.nth inside a loop is O(n) per access; index an array or \
         restructure the traversal";
    if
      hot_path ctx && !loop_depth > 0
      && seq2 toks i "Array" "."
      && not (seq2 toks (i - 2) "Float" ".")
      &&
      let f = tok toks (i + 2) in
      f = "make" || f = "init" || f = "copy"
    then
      add t "alloc-in-loop"
        (Printf.sprintf
           "Array.%s inside a loop body allocates per iteration; hoist a \
            scratch buffer out of the loop (the exact class fixed in \
            lib/mrf/bp.ml's message update)"
           (tok toks (i + 2)));
    if
      hot_path ctx && !loop_depth > 0
      && seq3 toks i "Float" "." "Array"
      && tok toks (i + 3) = "."
      &&
      let f = tok toks (i + 4) in
      f = "create" || f = "make" || f = "init" || f = "copy"
    then
      add t "alloc-in-loop"
        (Printf.sprintf
           "Float.Array.%s inside a loop body allocates an unboxed slab \
            per iteration; hoist it out of the sweep and reuse it"
           (tok toks (i + 4)));
    if ctx.in_lib then begin
      if seq3 toks i "Printf" "." "printf" || seq3 toks i "Format" "." "printf"
      then
        add t "printf-in-lib"
          "library code must not print to stdout; take a Format formatter \
           from the caller";
      (match t.Lexer.text with
      | "print_endline" | "print_string" | "print_newline" | "print_int"
      | "print_float" | "print_char" ->
          (* bare stdout printers; allow qualified uses of same-named
             functions from other modules, but not Stdlib's *)
          let prev = tok toks (i - 1) in
          if prev <> "." || tok toks (i - 2) = "Stdlib" then
            add t "printf-in-lib"
              "library code must not print to stdout; take a Format \
               formatter from the caller"
      | _ -> ())
    end
  done;
  !out

(* -------------------------------------------- swallowed exception rule *)

(* Exception handlers whose catch-all arm is exactly [_ -> ()]: the
   failure vanishes with no log line, no counter and no re-raise, which
   is how a fault-injection run silently passes.  Detection is
   token-shaped: a stack distinguishes the [with] of [try] from the
   [with] of [match] and of record updates [{ r with ... }]; once inside
   a try handler, the arm introduced by [with] itself or by a leading
   [|] is checked for the pattern [_] with body exactly [()].  A guarded
   arm ([_ when ...]) or a body that continues past [()] is deliberate
   handling and is not flagged. *)
let scan_swallowed ctx (toks : Lexer.token array) =
  let out = ref [] in
  let n = Array.length toks in
  let stack = ref [] in
  let in_handler = ref false in
  (* paren/bracket depth, and the depth at which the active handler's
     arms live: a closer that drops below it ends the handler, and a [|]
     at a deeper depth belongs to some nested construct *)
  let depth = ref 0 in
  let handler_depth = ref 0 in
  let swallow_arm i =
    (* [i] points at the candidate arm's pattern *)
    tok toks i = "_"
    && seq2 toks (i + 1) "-" ">"
    && seq2 toks (i + 3) "(" ")"
    && tok toks (i + 5) <> ";"
  in
  let flag t =
    out :=
      finding ctx t "swallowed-exception"
        "catch-all handler [_ -> ()] discards the exception and does \
         nothing; match the specific exception, record the failure, or \
         re-raise"
      :: !out
  in
  for i = 0 to n - 1 do
    let t = toks.(i) in
    match t.Lexer.text with
    | "try" ->
        stack := `Try :: !stack;
        in_handler := false
    | "match" ->
        stack := `Match :: !stack;
        in_handler := false
    | "{" -> stack := `Brace :: !stack
    | "}" -> ( match !stack with `Brace :: rest -> stack := rest | _ -> ())
    | "with" -> (
        match !stack with
        | `Try :: rest ->
            stack := rest;
            in_handler := true;
            handler_depth := !depth;
            if swallow_arm (i + 1) then flag t
        | `Match :: rest ->
            stack := rest;
            in_handler := false
        | `Brace :: _ | [] -> ())
    | "|" when !in_handler && !depth = !handler_depth ->
        if swallow_arm (i + 1) then flag t
    | "(" | "[" -> incr depth
    | ")" | "]" ->
        decr depth;
        if !depth < !handler_depth then in_handler := false
    | "fun" | "function" | "in" | "done" | "end" ->
        (* a nested binder or scope closer ends the run of arms we can
           safely attribute to the try handler *)
        in_handler := false
    | _ -> ()
  done;
  !out

(* ----------------------------------------- toplevel mutable state rule *)

let item_keywords =
  [ "let"; "and"; "module"; "type"; "open"; "include"; "exception";
    "external"; "val"; "class" ]

let lower_ident s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | '_' -> true | _ -> false)
  && not (List.mem s item_keywords)

(* Detect module-toplevel [let name = <expr constructing mutable state>].
   Toplevel-ness is tracked with an indentation stack: items live at
   column 0, or at [col + 2] inside each enclosing [struct]/[sig] (the
   repository is ocamlformat-shaped, and the fixtures in test_lint pin
   this).  A mutable constructor occurring after the first [fun] or
   [function] token builds per-call state and is not flagged. *)
let scan_toplevel_mutable ctx (toks : Lexer.token array) =
  if not (parallel_reachable ctx) then []
  else begin
    let out = ref [] in
    let n = Array.length toks in
    (* stack of (item_col, close_col, open_line) for struct/sig scopes *)
    let stack = ref [ (0, -1, -1) ] in
    let item_col () = match !stack with (c, _, _) :: _ -> c | [] -> 0 in
    let last_item = ref "" in
    let i = ref 0 in
    while !i < n do
      let t = toks.(!i) in
      (match t.Lexer.text with
      | "struct" | "sig" ->
          stack := (item_col () + 2, item_col (), t.Lexer.line) :: !stack
      | "end" -> (
          match !stack with
          | (_, close_col, open_line) :: rest
            when rest <> []
                 && (t.Lexer.col = close_col || t.Lexer.line = open_line) ->
              stack := rest
          | _ -> ())
      | _ -> ());
      if t.Lexer.col = item_col () && List.mem t.Lexer.text item_keywords then begin
        if t.Lexer.text <> "and" then last_item := t.Lexer.text
      end;
      if
        t.Lexer.col = item_col ()
        && (t.Lexer.text = "let"
           || (t.Lexer.text = "and" && !last_item = "let"))
      then begin
        let j = ref (!i + 1) in
        if tok toks !j = "rec" then incr j;
        let name = tok toks !j in
        if lower_ident name then begin
          (* skip an optional [: type] annotation to reach [=] *)
          let k = ref (!j + 1) in
          if tok toks !k = ":" then begin
            while !k < n && tok toks !k <> "=" do incr k done
          end;
          if tok toks !k = "=" then begin
            (* simple value binding: scan the right-hand side *)
            let r = ref (!k + 1) in
            let fin = ref false and behind_fun = ref false in
            while (not !fin) && !r < n do
              let u = toks.(!r) in
              if
                u.Lexer.col <= item_col ()
                && (List.mem u.Lexer.text item_keywords
                   || u.Lexer.text = "end")
              then fin := true
              else begin
                (match u.Lexer.text with
                | "fun" | "function" -> behind_fun := true
                | _ -> ());
                if not !behind_fun then begin
                  if u.Lexer.text = "ref" then
                    out :=
                      finding ctx t "toplevel-mutable-state"
                        (Printf.sprintf
                           "toplevel binding %S holds a ref shared by every \
                            domain; make it per-call or suppress with a \
                            documented guard"
                           name)
                      :: !out
                  else if
                    seq3 toks !r "Hashtbl" "." "create"
                    || seq3 toks !r "Array" "." "make"
                  then
                    out :=
                      finding ctx t "toplevel-mutable-state"
                        (Printf.sprintf
                           "toplevel binding %S allocates shared mutable \
                            state (%s); make it per-call or suppress with \
                            a documented guard"
                           name
                           (tok toks !r ^ "." ^ tok toks (!r + 2)))
                      :: !out
                end;
                incr r
              end
            done;
            i := !r - 1
          end
        end
      end;
      incr i
    done;
    !out
  end

(* -------------------------------------------------------------- driver *)

let lint_source ~path ?has_mli src =
  let ctx = classify path in
  let lx = Lexer.tokenize src in
  let sups, bad = parse_suppressions ~path lx.Lexer.comments in
  let token_findings =
    scan_tokens ctx lx.Lexer.tokens
    @ scan_swallowed ctx lx.Lexer.tokens
    @ scan_toplevel_mutable ctx lx.Lexer.tokens
  in
  let mli_findings =
    match has_mli with
    | Some false
      when ctx.in_lib
           && Filename.check_suffix path ".ml"
           && not (Filename.check_suffix path ".pp.ml") ->
        [ { file = path; line = 1; rule = "missing-mli";
            message =
              "library module has no .mli; state the exported surface \
               (add an interface file)" } ]
    | _ -> []
  in
  let kept =
    List.filter (fun f -> not (suppressed sups f)) (token_findings @ mli_findings)
  in
  List.sort
    (fun a b -> if a.line = b.line then compare a.rule b.rule else compare a.line b.line)
    (kept @ bad)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file path =
  let has_mli =
    if Filename.check_suffix path ".ml" then Some (Sys.file_exists (path ^ "i"))
    else None
  in
  lint_source ~path ?has_mli (read_file path)

let rec collect_ml path acc =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc name ->
        if name = "" || name.[0] = '.' || name.[0] = '_' then acc
        else collect_ml (Filename.concat path name) acc)
      acc
      (let entries = Sys.readdir path in
       Array.sort compare entries;
       entries)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let lint_paths paths =
  let files = List.rev (List.fold_left (fun acc p -> collect_ml p acc) [] paths) in
  List.concat_map lint_file files
