(* netdiv-lint rule engine.  See lint.mli for the contract and DESIGN.md
   ("Concurrency discipline") for the rationale behind each rule. *)

type chain_step = { c_name : string; c_file : string; c_line : int }

type finding = {
  file : string;
  line : int;
  rule : string;
  message : string;
  symbol : string option;
      (* qualified binding name for interprocedural findings *)
  chain : chain_step list;  (* taint call chain, source last *)
}

let mk ~file ~line ~rule ~message =
  { file; line; rule; message; symbol = None; chain = [] }

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d: [%s] %s" f.file f.line f.rule f.message

let pp_chain ppf steps =
  List.iteri
    (fun i (s : chain_step) ->
      Format.fprintf ppf "%s%s (%s:%d)@\n"
        (if i = 0 then "" else String.make (2 * i) ' ' ^ "-> ")
        s.c_name s.c_file s.c_line)
    steps

let rules =
  [
    ( "spawn-outside-pool",
      "Domain.spawn anywhere but lib/par/pool.ml; all parallelism must go \
       through Netdiv_par.Pool so job-count invariance holds" );
    ( "toplevel-mutable-state",
      "module-toplevel ref / Hashtbl.create / Array.make binding in a \
       parallel-reachable library (lib/mrf, lib/sim, lib/par, lib/core)" );
    ( "nondeterminism-source",
      "Random.self_init, Sys.time or Unix.gettimeofday in solver/sim code; \
       results must depend only on explicit seeds and budgets" );
    ( "direct-clock-in-instrumented-code",
      "Unix.gettimeofday or Sys.time in code wired with Netdiv_obs \
       telemetry (lib/obs, lib/core, bin); timestamps must go through \
       Netdiv_obs.Obs.Clock so spans and reported timings share one \
       monotone time base" );
    ( "list-nth-in-loop",
      "List.nth inside a for/while loop: O(n) per access turns the loop \
       quadratic (the exact class fixed in lib/sim/engine.ml)" );
    ( "alloc-in-loop",
      "Array.make/Array.init/Array.copy or Float.Array.create/make \
       inside a for/while body in hot solver code (lib/mrf, lib/bayes), \
       or a tuple/record built from Mrf.Compact accessor results there; \
       allocate scratch (including message slabs) once outside the loop, \
       and keep accessor reads in scalar lets instead of re-boxing them" );
    ( "missing-mli",
      "library module without an interface file; every lib/ module must \
       state its exported surface" );
    ( "printf-in-lib",
      "stdout printing from library code; libraries format via a caller's \
       formatter, only bin/ may print" );
    ( "swallowed-exception",
      "try ... with _ -> () discards a failure without logging, counting \
       or re-raising; match the specific exception or suppress with the \
       reason the discard is safe" );
    ( "bad-suppression",
      "malformed netdiv-lint suppression: unknown rule id or missing \
       written reason" );
    ( "float-equality-in-kernel",
      "= or <> applied to float operands in lib/mrf kernel code; energies \
       and bounds must compare via an explicit epsilon or Float.equal \
       with a suppression reason" );
    ( "nondet-taint",
      "a lib/mrf, lib/sim or lib/core binding transitively reaches a \
       nondeterminism source (clock or global Random) through the call \
       graph; run with --explain SYMBOL for the chain" );
    ( "impure-in-parallel-region",
      "a function passed into Pool.parallel_for/map_range/map_reduce or \
       Team.run mutates module-toplevel state or spawns its own domain; \
       chunk workers must only write their own slices" );
    ( "unused-export",
      ".mli-declared value never referenced outside its module (including \
       test/, bench/, examples/ and tools/); drop it from the interface \
       or suppress with the reason it is public API" );
  ]

let rule_ids = List.map fst rules

(* ------------------------------------------------------ classification *)

type ctx = {
  path : string;
  in_lib : bool;
  lib_dir : string option;
  is_pool : bool;
}

let split_path path =
  String.split_on_char '/' (String.map (fun c -> if c = '\\' then '/' else c) path)

let classify path =
  let segs = List.filter (fun s -> s <> "" && s <> ".") (split_path path) in
  let rec find_lib = function
    | "lib" :: rest -> Some rest
    | _ :: rest -> find_lib rest
    | [] -> None
  in
  let after_lib = find_lib segs in
  let in_lib = after_lib <> None in
  let lib_dir =
    match after_lib with
    | Some (d :: _ :: _) -> Some d (* lib/<dir>/.../file *)
    | _ -> None
  in
  let base = match List.rev segs with b :: _ -> b | [] -> path in
  let is_pool = lib_dir = Some "par" && base = "pool.ml" in
  { path; in_lib; lib_dir; is_pool }

let parallel_reachable ctx =
  match ctx.lib_dir with
  | Some ("mrf" | "sim" | "par" | "core") -> true
  | _ -> false

let solver_sim ctx =
  match ctx.lib_dir with Some ("mrf" | "sim" | "par") -> true | _ -> false

(* Layers that carry Netdiv_obs spans/metrics but sit outside the
   solver/sim scope (where nondeterminism-source already polices clock
   reads): the observability library itself, the optimizer pipeline and
   the executables.  The split keeps the two rules disjoint, so a stray
   clock read gets exactly one finding. *)
let instrumented_non_solver ctx =
  (not (solver_sim ctx))
  &&
  match ctx.lib_dir with
  | Some ("obs" | "core") -> true
  | Some _ -> false
  | None -> not ctx.in_lib

(* Directories whose inner loops are the measured hot path: a
   per-iteration allocation there shows up directly in BENCH.json. *)
let hot_path ctx =
  match ctx.lib_dir with Some ("mrf" | "bayes") -> true | _ -> false

(* -------------------------------------------------------- suppressions *)

type suppression = {
  s_rule : string;
  s_lo : int;
  s_hi : int;  (* a suppression covers its comment's lines plus one *)
  s_file_wide : bool;
}

let directive_prefix = "netdiv-lint:"

(* A reason must contain at least one alphanumeric character, so a bare
   dash or em-dash does not count as one. *)
let is_reason_text s =
  String.exists
    (fun c ->
      (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9'))
    s

let is_ws c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let split_first_ws s =
  let n = String.length s in
  let rec go i = if i < n && not (is_ws s.[i]) then go (i + 1) else i in
  let i = go 0 in
  (String.sub s 0 i, String.sub s i (n - i))

let parse_directive ~path ~line body =
  (* [body] is everything between the directive marker and the comment
     closer; expected shape: allow[-file] <rule> <separator> <reason> *)
  let body = String.trim body in
  let word, rest = split_first_ws body in
  let bad message = Error (mk ~file:path ~line ~rule:"bad-suppression" ~message) in
  let file_wide =
    match word with
    | "allow" -> Some false
    | "allow-file" -> Some true
    | _ -> None
  in
  match file_wide with
  | None ->
      bad
        (Printf.sprintf
           "expected 'allow <rule>' or 'allow-file <rule>', got %S" word)
  | Some s_file_wide -> (
      let rule, reason = split_first_ws (String.trim rest) in
      match List.mem rule rule_ids with
      | false -> bad (Printf.sprintf "unknown rule id %S" rule)
      | true ->
          if not (is_reason_text reason) then
            bad
              (Printf.sprintf
                 "suppression of %s has no written reason; say why the \
                  violation is acceptable"
                 rule)
          else Ok (rule, s_file_wide))

(* A directive must open the comment ("(* netdiv-lint: ..."); mentioning
   the marker mid-prose, as this very comment does, is not a directive. *)
let parse_suppressions ~path (comments : Lexer.comment array) =
  let sups = ref [] and bad = ref [] in
  Array.iter
    (fun (c : Lexer.comment) ->
      (* strip the comment opener and leading whitespace *)
      let text = c.ctext in
      let i = ref 0 in
      let len = String.length text in
      if len >= 2 && String.sub text 0 2 = "(*" then i := 2;
      while !i < len && (text.[!i] = ' ' || text.[!i] = '\t' || text.[!i] = '\n')
      do
        incr i
      done;
      let plen = String.length directive_prefix in
      if !i + plen <= len && String.sub text !i plen = directive_prefix then begin
        let start = !i + plen in
        let body = String.sub text start (len - start) in
        (* drop the comment closer before parsing *)
        let body =
          if String.length body >= 2
             && String.sub body (String.length body - 2) 2 = "*)"
          then String.sub body 0 (String.length body - 2)
          else body
        in
        match parse_directive ~path ~line:c.cline body with
        | Ok (s_rule, s_file_wide) ->
            sups :=
              { s_rule; s_lo = c.cline; s_hi = c.cline_end + 1; s_file_wide }
              :: !sups
        | Error f -> bad := f :: !bad
      end)
    comments;
  (!sups, !bad)

let suppressed sups (f : finding) =
  List.exists
    (fun s ->
      s.s_rule = f.rule && (s.s_file_wide || (f.line >= s.s_lo && f.line <= s.s_hi)))
    sups

(* ------------------------------------------------------- token helpers *)

let tok (toks : Lexer.token array) i =
  if i >= 0 && i < Array.length toks then toks.(i).Lexer.text else ""

let seq2 toks i a b = tok toks i = a && tok toks (i + 1) = b

let seq3 toks i a b c = seq2 toks i a b && tok toks (i + 2) = c

(* --------------------------------------------------------- token rules *)

let finding ctx (t : Lexer.token) rule message =
  mk ~file:ctx.path ~line:t.Lexer.line ~rule ~message

(* Paren/brace frame for the boxed-construction extension of
   alloc-in-loop: each open [(] or [{] remembers whether it opened
   inside a loop, whether a [Compact] accessor is called inside it, and
   (for parens) whether it holds a top-level tuple comma.  A paren frame
   closing with both marks is a boxed tuple of accessor results; a brace
   frame closing with the Compact mark is a boxed record of them.  The
   Compact mark propagates outward on pop, so the accessor may sit
   inside a nested call's own parentheses. *)
type frame = {
  fr_tok : Lexer.token;
  fr_brace : bool;
  fr_in_loop : bool;
  mutable fr_compact : bool;
  mutable fr_comma : bool;
}

(* Single forward pass for the sequence-matching rules; [loop_depth]
   tracks for/while nesting for list-nth-in-loop. *)
let scan_tokens ctx (toks : Lexer.token array) =
  let out = ref [] in
  let add t rule msg = out := finding ctx t rule msg :: !out in
  let loop_depth = ref 0 in
  let frames = ref [] in
  let push t ~brace =
    frames :=
      { fr_tok = t; fr_brace = brace; fr_in_loop = !loop_depth > 0;
        fr_compact = false; fr_comma = false }
      :: !frames
  in
  let pop ~brace =
    match !frames with
    | f :: rest when f.fr_brace = brace ->
        frames := rest;
        if f.fr_compact then
          (match rest with parent :: _ -> parent.fr_compact <- true | [] -> ());
        Some f
    | _ -> None
  in
  let n = Array.length toks in
  for i = 0 to n - 1 do
    let t = toks.(i) in
    (match t.Lexer.text with
    | "for" | "while" -> incr loop_depth
    | "done" -> if !loop_depth > 0 then decr loop_depth
    | "(" -> push t ~brace:false
    | "{" -> push t ~brace:true
    | "," -> (
        match !frames with
        | f :: _ when not f.fr_brace -> f.fr_comma <- true
        | _ -> ())
    | "Compact" -> (
        if tok toks (i + 1) = "." then
          match !frames with f :: _ -> f.fr_compact <- true | [] -> ())
    | ")" -> (
        match pop ~brace:false with
        | Some f when hot_path ctx && f.fr_in_loop && f.fr_compact && f.fr_comma
          ->
            add f.fr_tok "alloc-in-loop"
              "tuple of Compact accessor results inside a loop body boxes \
               what the CSR layout keeps flat; keep the fields in scalar \
               lets"
        | _ -> ())
    | "}" -> (
        match pop ~brace:true with
        | Some f when hot_path ctx && f.fr_in_loop && f.fr_compact ->
            add f.fr_tok "alloc-in-loop"
              "record built from Compact accessor results inside a loop \
               body re-boxes the compact representation; keep the fields \
               in scalar lets"
        | _ -> ())
    | _ -> ());
    if (not ctx.is_pool) && seq3 toks i "Domain" "." "spawn" then
      add t "spawn-outside-pool"
        "Domain.spawn outside lib/par/pool.ml; use Netdiv_par.Pool \
         combinators instead";
    if solver_sim ctx then begin
      if seq3 toks i "Random" "." "self_init" then
        add t "nondeterminism-source"
          "Random.self_init makes results irreproducible; derive seeds \
           with Pool.split_seed";
      if seq3 toks i "Sys" "." "time" then
        add t "nondeterminism-source"
          "Sys.time in solver/sim code; wall-clock reads belong in the \
           anytime harness only";
      if seq3 toks i "Unix" "." "gettimeofday" then
        add t "nondeterminism-source"
          "Unix.gettimeofday in solver/sim code; wall-clock reads belong \
           in the anytime harness only"
    end;
    if instrumented_non_solver ctx then begin
      if seq3 toks i "Unix" "." "gettimeofday" then
        add t "direct-clock-in-instrumented-code"
          "direct Unix.gettimeofday in instrumented code; read the clock \
           through Netdiv_obs.Obs.Clock.now so spans and timings share \
           one time base";
      if seq3 toks i "Sys" "." "time" then
        add t "direct-clock-in-instrumented-code"
          "direct Sys.time in instrumented code; read the clock through \
           Netdiv_obs.Obs.Clock.now so spans and timings share one time \
           base"
    end;
    if
      !loop_depth > 0
      && seq2 toks i "List" "."
      && (tok toks (i + 2) = "nth" || tok toks (i + 2) = "nth_opt")
    then
      add t "list-nth-in-loop"
        "List.nth inside a loop is O(n) per access; index an array or \
         restructure the traversal";
    if
      hot_path ctx && !loop_depth > 0
      && seq2 toks i "Array" "."
      && not (seq2 toks (i - 2) "Float" ".")
      &&
      let f = tok toks (i + 2) in
      f = "make" || f = "init" || f = "copy"
    then
      add t "alloc-in-loop"
        (Printf.sprintf
           "Array.%s inside a loop body allocates per iteration; hoist a \
            scratch buffer out of the loop (the exact class fixed in \
            lib/mrf/bp.ml's message update)"
           (tok toks (i + 2)));
    if
      hot_path ctx && !loop_depth > 0
      && seq3 toks i "Float" "." "Array"
      && tok toks (i + 3) = "."
      &&
      let f = tok toks (i + 4) in
      f = "create" || f = "make" || f = "init" || f = "copy"
    then
      add t "alloc-in-loop"
        (Printf.sprintf
           "Float.Array.%s inside a loop body allocates an unboxed slab \
            per iteration; hoist it out of the sweep and reuse it"
           (tok toks (i + 4)));
    if ctx.in_lib then begin
      if seq3 toks i "Printf" "." "printf" || seq3 toks i "Format" "." "printf"
      then
        add t "printf-in-lib"
          "library code must not print to stdout; take a Format formatter \
           from the caller";
      (match t.Lexer.text with
      | "print_endline" | "print_string" | "print_newline" | "print_int"
      | "print_float" | "print_char" ->
          (* bare stdout printers; allow qualified uses of same-named
             functions from other modules, but not Stdlib's *)
          let prev = tok toks (i - 1) in
          if prev <> "." || tok toks (i - 2) = "Stdlib" then
            add t "printf-in-lib"
              "library code must not print to stdout; take a Format \
               formatter from the caller"
      | _ -> ())
    end
  done;
  !out

(* -------------------------------------------- swallowed exception rule *)

(* Exception handlers whose catch-all arm is exactly [_ -> ()]: the
   failure vanishes with no log line, no counter and no re-raise, which
   is how a fault-injection run silently passes.  Detection is
   token-shaped: a stack distinguishes the [with] of [try] from the
   [with] of [match] and of record updates [{ r with ... }]; once inside
   a try handler, the arm introduced by [with] itself or by a leading
   [|] is checked for the pattern [_] with body exactly [()].  A guarded
   arm ([_ when ...]) or a body that continues past [()] is deliberate
   handling and is not flagged. *)
let scan_swallowed ctx (toks : Lexer.token array) =
  let out = ref [] in
  let n = Array.length toks in
  let stack = ref [] in
  let in_handler = ref false in
  (* paren/bracket depth, and the depth at which the active handler's
     arms live: a closer that drops below it ends the handler, and a [|]
     at a deeper depth belongs to some nested construct *)
  let depth = ref 0 in
  let handler_depth = ref 0 in
  let swallow_arm i =
    (* [i] points at the candidate arm's pattern *)
    tok toks i = "_"
    && seq2 toks (i + 1) "-" ">"
    && seq2 toks (i + 3) "(" ")"
    && tok toks (i + 5) <> ";"
  in
  let flag t =
    out :=
      finding ctx t "swallowed-exception"
        "catch-all handler [_ -> ()] discards the exception and does \
         nothing; match the specific exception, record the failure, or \
         re-raise"
      :: !out
  in
  for i = 0 to n - 1 do
    let t = toks.(i) in
    match t.Lexer.text with
    | "try" ->
        stack := `Try :: !stack;
        in_handler := false
    | "match" ->
        stack := `Match :: !stack;
        in_handler := false
    | "{" -> stack := `Brace :: !stack
    | "}" -> ( match !stack with `Brace :: rest -> stack := rest | _ -> ())
    | "with" -> (
        match !stack with
        | `Try :: rest ->
            stack := rest;
            in_handler := true;
            handler_depth := !depth;
            if swallow_arm (i + 1) then flag t
        | `Match :: rest ->
            stack := rest;
            in_handler := false
        | `Brace :: _ | [] -> ())
    | "|" when !in_handler && !depth = !handler_depth ->
        if swallow_arm (i + 1) then flag t
    | "(" | "[" -> incr depth
    | ")" | "]" ->
        decr depth;
        if !depth < !handler_depth then in_handler := false
    | "fun" | "function" | "in" | "done" | "end" ->
        (* a nested binder or scope closer ends the run of arms we can
           safely attribute to the try handler *)
        in_handler := false
    | _ -> ()
  done;
  !out

(* ----------------------------------------- toplevel mutable state rule *)

let item_keywords =
  [ "let"; "and"; "module"; "type"; "open"; "include"; "exception";
    "external"; "val"; "class" ]

let lower_ident s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | '_' -> true | _ -> false)
  && not (List.mem s item_keywords)

(* Detect module-toplevel [let name = <expr constructing mutable state>].
   Toplevel-ness is tracked with an indentation stack: items live at
   column 0, or at [col + 2] inside each enclosing [struct]/[sig] (the
   repository is ocamlformat-shaped, and the fixtures in test_lint pin
   this).  A mutable constructor occurring after the first [fun] or
   [function] token builds per-call state and is not flagged. *)
let scan_toplevel_mutable ctx (toks : Lexer.token array) =
  if not (parallel_reachable ctx) then []
  else begin
    let out = ref [] in
    let n = Array.length toks in
    (* stack of (item_col, close_col, open_line) for struct/sig scopes *)
    let stack = ref [ (0, -1, -1) ] in
    let item_col () = match !stack with (c, _, _) :: _ -> c | [] -> 0 in
    let last_item = ref "" in
    let i = ref 0 in
    while !i < n do
      let t = toks.(!i) in
      (match t.Lexer.text with
      | "struct" | "sig" ->
          stack := (item_col () + 2, item_col (), t.Lexer.line) :: !stack
      | "end" -> (
          match !stack with
          | (_, close_col, open_line) :: rest
            when rest <> []
                 && (t.Lexer.col = close_col || t.Lexer.line = open_line) ->
              stack := rest
          | _ -> ())
      | _ -> ());
      if t.Lexer.col = item_col () && List.mem t.Lexer.text item_keywords then begin
        if t.Lexer.text <> "and" then last_item := t.Lexer.text
      end;
      if
        t.Lexer.col = item_col ()
        && (t.Lexer.text = "let"
           || (t.Lexer.text = "and" && !last_item = "let"))
      then begin
        let j = ref (!i + 1) in
        if tok toks !j = "rec" then incr j;
        let name = tok toks !j in
        if lower_ident name then begin
          (* skip an optional [: type] annotation to reach [=] *)
          let k = ref (!j + 1) in
          if tok toks !k = ":" then begin
            while !k < n && tok toks !k <> "=" do incr k done
          end;
          if tok toks !k = "=" then begin
            (* simple value binding: scan the right-hand side *)
            let r = ref (!k + 1) in
            let fin = ref false and behind_fun = ref false in
            while (not !fin) && !r < n do
              let u = toks.(!r) in
              if
                u.Lexer.col <= item_col ()
                && (List.mem u.Lexer.text item_keywords
                   || u.Lexer.text = "end")
              then fin := true
              else begin
                (match u.Lexer.text with
                | "fun" | "function" -> behind_fun := true
                | _ -> ());
                if not !behind_fun then begin
                  if u.Lexer.text = "ref" then
                    out :=
                      finding ctx t "toplevel-mutable-state"
                        (Printf.sprintf
                           "toplevel binding %S holds a ref shared by every \
                            domain; make it per-call or suppress with a \
                            documented guard"
                           name)
                      :: !out
                  else if
                    seq3 toks !r "Hashtbl" "." "create"
                    || seq3 toks !r "Array" "." "make"
                  then
                    out :=
                      finding ctx t "toplevel-mutable-state"
                        (Printf.sprintf
                           "toplevel binding %S allocates shared mutable \
                            state (%s); make it per-call or suppress with \
                            a documented guard"
                           name
                           (tok toks !r ^ "." ^ tok toks (!r + 2)))
                      :: !out
                end;
                incr r
              end
            done;
            i := !r - 1
          end
        end
      end;
      incr i
    done;
    !out
  end

(* ------------------------------------------- float equality in kernels *)

(* Structural [=] (binders: [let x =], [type t =], record fields, optional
   argument defaults) must not be confused with the comparison operator.
   A small stack arms one binder [=] per [let]/[and]/[type]/... and per
   record field (re-armed at each [;] inside the brace), at the
   paren/brace depth where the keyword appeared; any other [=], and every
   [<>], is a comparison whose operands we test for float-ness.  Only
   literal or well-known float operands are flagged — an unannotated
   [a = b] stays silent, which keeps the rule precise at the cost of
   recall (ISSUE 8 asks for float {e expressions}, and in this codebase
   energies are compared against literals or [infinity]). *)
let scan_float_eq ctx (toks : Lexer.token array) =
  if ctx.lib_dir <> Some "mrf" then []
  else begin
    let out = ref [] in
    let n = Array.length toks in
    let depth = ref 0 in
    (* depths at which the next [=] is structural, not a comparison *)
    let binders = ref [] in
    (* depths of open record braces, for field re-arming at [;] *)
    let braces = ref [] in
    let arm () =
      match !binders with
      | d :: _ when d = !depth -> ()
      | _ -> binders := !depth :: !binders
    in
    let glued i = tok toks (i + 1) <> "" && toks.(i).Lexer.line = toks.(i + 1).Lexer.line
                  && toks.(i).Lexer.col + String.length toks.(i).Lexer.text
                     = toks.(i + 1).Lexer.col in
    let float_lit s =
      String.length s > 0
      && s.[0] >= '0' && s.[0] <= '9'
      && (String.contains s '.'
          || ((String.contains s 'e' || String.contains s 'E')
             && not (String.length s > 1 && (s.[1] = 'x' || s.[1] = 'X'))))
    in
    let float_operand i =
      let s = tok toks i in
      float_lit s
      || (List.mem s
            [ "infinity"; "neg_infinity"; "nan"; "epsilon_float";
              "max_float"; "min_float" ]
         && (tok toks (i - 1) <> "."
            || tok toks (i - 2) = "Float"
            || tok toks (i - 2) = "Stdlib"))
    in
    (* skip a unary minus in operand position: [x = -1.0] *)
    let operand_after i = if tok toks i = "-" then i + 1 else i in
    let flag t op =
      out :=
        finding ctx t "float-equality-in-kernel"
          (Printf.sprintf
             "float %s comparison in kernel code; exact equality on \
              computed energies is representation-dependent — use \
              Float.equal for intentional bitwise tests or an explicit \
              epsilon"
             op)
        :: !out
    in
    for i = 0 to n - 1 do
      let t = toks.(i) in
      match t.Lexer.text with
      | "let" | "and" | "type" | "external" | "module" | "method" | "for" ->
          arm ()
      | "(" | "[" ->
          incr depth;
          (* [?(arg = default)] arms a binder for the default's [=] *)
          if tok toks (i - 1) = "?" then arm ()
      | "{" ->
          incr depth;
          braces := !depth :: !braces;
          arm ()
      | ")" | "]" | "}" ->
          decr depth;
          binders := List.filter (fun d -> d <= !depth) !binders;
          braces := List.filter (fun d -> d <= !depth) !braces
      | ";" -> (
          (* a new record field re-arms the field [=] *)
          match !braces with
          | d :: _ when d = !depth -> arm ()
          | _ -> ())
      | "=" ->
          let operator_adjacent =
            (List.mem (tok toks (i - 1)) [ "<"; ">"; "!"; "="; ":" ]
            && glued (i - 1))
            || (tok toks (i + 1) = "=" && glued i)
          in
          if not operator_adjacent then begin
            let structural =
              match !binders with
              | d :: rest when d = !depth ->
                  binders := rest;
                  true
              | _ -> false
            in
            if (not structural)
               && (float_operand (i - 1) || float_operand (operand_after (i + 1)))
            then flag t "="
          end
      | "<" when tok toks (i + 1) = ">" && glued i ->
          if float_operand (i - 1) || float_operand (operand_after (i + 2))
          then flag t "<>"
      | _ -> ()
    done;
    !out
  end

(* -------------------------------------------------------------- driver *)

let lint_source ~path ?has_mli src =
  let ctx = classify path in
  let lx = Lexer.tokenize src in
  let sups, bad = parse_suppressions ~path lx.Lexer.comments in
  let token_findings =
    scan_tokens ctx lx.Lexer.tokens
    @ scan_swallowed ctx lx.Lexer.tokens
    @ scan_toplevel_mutable ctx lx.Lexer.tokens
    @ scan_float_eq ctx lx.Lexer.tokens
  in
  let mli_findings =
    match has_mli with
    | Some false
      when ctx.in_lib
           && Filename.check_suffix path ".ml"
           && not (Filename.check_suffix path ".pp.ml") ->
        [ mk ~file:path ~line:1 ~rule:"missing-mli"
            ~message:
              "library module has no .mli; state the exported surface \
               (add an interface file)" ]
    | _ -> []
  in
  let kept =
    List.filter (fun f -> not (suppressed sups f)) (token_findings @ mli_findings)
  in
  List.sort
    (fun a b -> if a.line = b.line then compare a.rule b.rule else compare a.line b.line)
    (kept @ bad)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file path =
  let has_mli =
    if Filename.check_suffix path ".ml" then Some (Sys.file_exists (path ^ "i"))
    else None
  in
  lint_source ~path ?has_mli (read_file path)

let rec collect_ml path acc =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc name ->
        if name = "" || name.[0] = '.' || name.[0] = '_' then acc
        else collect_ml (Filename.concat path name) acc)
      acc
      (let entries = Sys.readdir path in
       Array.sort compare entries;
       entries)
  else if Filename.check_suffix path ".ml" then path :: acc
  else acc

let lint_paths paths =
  let files = List.rev (List.fold_left (fun acc p -> collect_ml p acc) [] paths) in
  List.concat_map lint_file files

(* ----------------------------------- interprocedural analysis (ISSUE 8) *)

type report = {
  r_findings : finding list;
  r_files : int;  (* analyzed files (reference roots excluded) *)
  r_bindings : int;  (* total bindings in the symbol graph *)
}

(* Layers whose results the paper reports as bitwise-reproducible; a
   transitive clock/Random reach here breaks the --jobs invariance gates
   even when the source token sits in another directory. *)
let taint_dirs = [ "mrf"; "sim"; "core" ]

let par_combinators = [ "parallel_for"; "map_range"; "map_reduce" ]

let qname (b : Symbols.binding) = Symbols.qualified_name b

let import_chain steps =
  List.map
    (fun (s : Effects.chain_step) ->
      { c_name = s.Effects.c_name; c_file = s.Effects.c_file;
        c_line = s.Effects.c_line })
    steps

(* nondet-taint: only [Via] witnesses are reported — a direct source in
   the binding's own body is already a call-site finding of the surface
   rules, and reporting it twice would force double suppressions. *)
let taint_findings (eff : Effects.t) analyzed_paths =
  let repo = eff.Effects.repo in
  let out = ref [] in
  Array.iter
    (fun (b : Symbols.binding) ->
      let ctx = classify b.Symbols.b_file in
      let in_scope =
        Hashtbl.mem analyzed_paths b.Symbols.b_file
        && match ctx.lib_dir with
           | Some d -> List.mem d taint_dirs
           | None -> false
      in
      if in_scope then
        List.iter
          (fun e ->
            let s = Effects.summary eff b.Symbols.b_id in
            match List.assoc_opt e s.Effects.wit with
            | Some (Effects.Via _) ->
                let steps = import_chain (Effects.chain eff b.Symbols.b_id e) in
                let source_descr =
                  match List.rev steps with
                  | last :: _ -> last.c_name
                  | [] -> Effects.eff_name e
                in
                let hops = max 1 (List.length steps - 2) in
                out :=
                  {
                    file = b.Symbols.b_file;
                    line = b.Symbols.b_line;
                    rule = "nondet-taint";
                    message =
                      Printf.sprintf
                        "%s transitively reaches %s (%s, %d call%s deep); \
                         results must depend only on explicit seeds — \
                         break the chain or suppress at the source \
                         (netdiv lint --explain %s)"
                        (qname b) source_descr (Effects.eff_name e) hops
                        (if hops = 1 then "" else "s")
                        (qname b);
                    symbol = Some (qname b);
                    chain = steps;
                  }
                  :: !out
            | _ -> ())
          [ Effects.Clock; Effects.Random ])
    repo.Symbols.bindings;
  !out

(* impure-in-parallel-region: inside the argument extent of a Pool
   combinator or [Team.run], any resolved callee whose summary carries
   Mutate or Spawn, plus direct mutations in inline closure bodies. *)
let region_findings ~barrier (eff : Effects.t) analyzed_paths =
  let repo = eff.Effects.repo in
  let out = ref [] in
  Array.iter
    (fun (fs : Symbols.file_syms) ->
      let ctx = classify fs.Symbols.f_path in
      if Hashtbl.mem analyzed_paths fs.Symbols.f_path && not ctx.is_pool then begin
        let toks = fs.Symbols.f_lex.Lexer.tokens in
        let tk i = tok toks i in
        Array.iteri
          (fun bi (b : Symbols.binding) ->
            let hi = b.Symbols.b_hi in
            for i = b.Symbols.b_lo to hi - 1 do
              let is_comb =
                (List.mem (tk i) par_combinators
                && (tk (i - 1) <> "."
                   || tk (i - 2) = "Pool"
                   || tk (i - 2) = "Netdiv_par"))
                || (tk i = "run" && tk (i - 1) = "." && tk (i - 2) = "Team")
              in
              if is_comb then begin
                (* argument extent: to the call's end at depth 0 *)
                let d = ref 0 and j = ref (i + 1) and stop = ref false in
                while (not !stop) && !j < hi do
                  (match tk !j with
                  | "(" | "[" -> incr d
                  | ")" | "]" ->
                      decr d;
                      if !d < 0 then stop := true
                  | ";" | "in" when !d = 0 -> stop := true
                  | _ -> ());
                  if not !stop then incr j
                done;
                let rhi = !j in
                let seen = Hashtbl.create 8 in
                Array.iter
                  (fun (r : Symbols.reference) ->
                    if r.Symbols.r_tok > i && r.Symbols.r_tok < rhi then
                      List.iter
                        (fun id ->
                          let cb = repo.Symbols.bindings.(id) in
                          let cctx = classify cb.Symbols.b_file in
                          (* a non-function binding referenced in the
                             region is a read of an already-evaluated
                             value, not a call *)
                          if (not cctx.is_pool) && cb.Symbols.b_func then
                            List.iter
                              (fun (e, verb) ->
                                if
                                  Effects.has eff id e
                                  && not (Hashtbl.mem seen (id, verb))
                                then begin
                                  Hashtbl.replace seen (id, verb) ();
                                  let steps =
                                    import_chain (Effects.chain eff id e)
                                  in
                                  out :=
                                    {
                                      file = fs.Symbols.f_path;
                                      line = r.Symbols.r_line;
                                      rule = "impure-in-parallel-region";
                                      message =
                                        Printf.sprintf
                                          "%s, passed into a parallel \
                                           region, %s; chunk workers must \
                                           only write their own slices \
                                           (netdiv lint --explain %s)"
                                          (qname cb) verb (qname cb);
                                      symbol = Some (qname cb);
                                      chain = steps;
                                    }
                                    :: !out
                                end)
                              [
                                (Effects.Mutate,
                                 "mutates module-toplevel state");
                                (Effects.Spawn, "spawns its own domain");
                              ])
                        (Symbols.resolve repo fs r))
                  fs.Symbols.f_refs.(bi);
                List.iter
                  (fun (s : Effects.source) ->
                    if s.Effects.s_eff = Effects.Mutate then
                      out :=
                        {
                          file = fs.Symbols.f_path;
                          line = s.Effects.s_line;
                          rule = "impure-in-parallel-region";
                          message =
                            Printf.sprintf
                              "parallel-region closure %s; chunk workers \
                               must only write their own slices"
                              s.Effects.s_descr;
                          symbol = Some (qname b);
                          chain = [];
                        }
                        :: !out)
                  (Effects.direct_sources ~barrier fs b ~lo:(i + 1) ~hi:rhi
                     repo)
              end
            done)
          fs.Symbols.f_bindings
      end)
    repo.Symbols.files;
  !out

(* unused-export: an .mli-declared value with no reference from any other
   file.  Primary evidence is resolution-based (a reference in another
   file resolving to the backing binding); the fallback matches
   (last-module, name) pairs for references that resolve to nothing,
   which keeps misses of the resolver from producing false findings.
   Operator exports are skipped — their use sites are bare symbols the
   reference scanner cannot attribute. *)
let unused_export_findings (repo : Symbols.repo) analyzed =
  let used_ids = Hashtbl.create 256 in
  let used_pairs = Hashtbl.create 256 in
  Array.iter
    (fun (fs : Symbols.file_syms) ->
      Array.iter
        (fun refs ->
          Array.iter
            (fun (r : Symbols.reference) ->
              match Symbols.resolve repo fs r with
              | [] -> (
                  match List.rev (Symbols.normalize_path fs r.Symbols.r_path) with
                  | last :: _ ->
                      Hashtbl.replace used_pairs (last, r.Symbols.r_name) ()
                  | [] ->
                      List.iter
                        (fun o ->
                          match List.rev (Symbols.normalize_path fs o) with
                          | last :: _ ->
                              Hashtbl.replace used_pairs
                                (last, r.Symbols.r_name) ()
                          | [] -> ())
                        fs.Symbols.f_opens)
              | ids ->
                  List.iter
                    (fun id ->
                      let b = repo.Symbols.bindings.(id) in
                      if b.Symbols.b_file <> fs.Symbols.f_path then
                        Hashtbl.replace used_ids id ())
                    ids)
            refs)
        fs.Symbols.f_refs)
    repo.Symbols.files;
  let out = ref [] in
  List.iter
    (fun (fs : Symbols.file_syms) ->
      let mli_path = fs.Symbols.f_path ^ "i" in
      List.iter
        (fun (v : Symbols.mli_val) ->
          if not v.Symbols.v_operator then begin
            let by_id =
              Array.exists
                (fun (b : Symbols.binding) ->
                  b.Symbols.b_name = v.Symbols.v_name
                  && b.Symbols.b_module = v.Symbols.v_module
                  && b.Symbols.b_id >= 0
                  && Hashtbl.mem used_ids b.Symbols.b_id)
                fs.Symbols.f_bindings
            in
            let by_pair =
              match List.rev v.Symbols.v_module with
              | last :: _ -> Hashtbl.mem used_pairs (last, v.Symbols.v_name)
              | [] -> false
            in
            if not (by_id || by_pair) then
              let q =
                String.concat "." (v.Symbols.v_module @ [ v.Symbols.v_name ])
              in
              out :=
                {
                  file = mli_path;
                  line = v.Symbols.v_line;
                  rule = "unused-export";
                  message =
                    Printf.sprintf
                      "%s is exported but never referenced outside its \
                       module; drop it from the interface or suppress \
                       with the reason it is public API"
                      q;
                  symbol = Some q;
                  chain = [];
                }
                :: !out
          end)
        fs.Symbols.f_mli)
    analyzed;
  !out

let compare_findings a b =
  compare
    (a.file, a.line, a.rule, a.message, a.symbol)
    (b.file, b.line, b.rule, b.message, b.symbol)

let analyze_sources ?(refs = []) files =
  let sup_tbl = Hashtbl.create 32 in
  let bad = ref [] in
  let note_sups path (lx : Lexer.t) =
    let sups, b = parse_suppressions ~path lx.Lexer.comments in
    let prev = Option.value (Hashtbl.find_opt sup_tbl path) ~default:[] in
    Hashtbl.replace sup_tbl path (sups @ prev);
    bad := b @ !bad
  in
  let lexed =
    List.map
      (fun (path, src, mli) ->
        let lx = Lexer.tokenize src in
        note_sups path lx;
        let mli_lex =
          Option.map
            (fun m ->
              let mlx = Lexer.tokenize m in
              note_sups (path ^ "i") mlx;
              mlx)
            mli
        in
        (path, lx, mli_lex, mli <> None))
      files
  in
  let analyzed =
    List.map
      (fun (path, lx, mli_lex, _) -> Symbols.parse_lexed ~path lx ?mli:mli_lex ())
      lexed
  in
  let ref_syms = List.map (fun (path, src) -> Symbols.parse_file ~path src) refs in
  (* reference roots join the symbol graph (their uses resolve, keeping
     unused-export honest about test/bench consumers) but no rule scans
     them: [analyzed_paths] gates every reporting pass *)
  let repo = Symbols.build (analyzed @ ref_syms) in
  let analyzed_paths = Hashtbl.create 32 in
  List.iter
    (fun (fs : Symbols.file_syms) ->
      Hashtbl.replace analyzed_paths fs.Symbols.f_path ())
    analyzed;
  let barrier ~path ~line ~rule =
    match Hashtbl.find_opt sup_tbl path with
    | None -> false
    | Some sups ->
        List.exists
          (fun s ->
            s.s_rule = rule
            && (s.s_file_wide || (line >= s.s_lo && line <= s.s_hi)))
          sups
  in
  let eff = Effects.analyze ~barrier repo in
  let surface =
    List.concat_map
      (fun (path, lx, _, has_mli) ->
        let ctx = classify path in
        let token_findings =
          scan_tokens ctx lx.Lexer.tokens
          @ scan_swallowed ctx lx.Lexer.tokens
          @ scan_toplevel_mutable ctx lx.Lexer.tokens
          @ scan_float_eq ctx lx.Lexer.tokens
        in
        let mli_findings =
          if
            (not has_mli) && ctx.in_lib
            && Filename.check_suffix path ".ml"
            && not (Filename.check_suffix path ".pp.ml")
          then
            [ mk ~file:path ~line:1 ~rule:"missing-mli"
                ~message:
                  "library module has no .mli; state the exported surface \
                   (add an interface file)" ]
          else []
        in
        token_findings @ mli_findings)
      lexed
  in
  let inter =
    taint_findings eff analyzed_paths
    @ region_findings ~barrier eff analyzed_paths
    @ unused_export_findings repo analyzed
  in
  let kept =
    List.filter
      (fun f ->
        match Hashtbl.find_opt sup_tbl f.file with
        | None -> true
        | Some sups -> not (suppressed sups f))
      (surface @ inter)
  in
  {
    r_findings = List.sort_uniq compare_findings (kept @ !bad);
    r_files = List.length files;
    r_bindings = Array.length repo.Symbols.bindings;
  }

let default_ref_paths paths =
  match paths with
  | [] -> []
  | first :: _ ->
      let parent = Filename.dirname first in
      List.filter
        (fun p -> Sys.file_exists p && Sys.is_directory p)
        (List.map
           (Filename.concat parent)
           [ "test"; "bench"; "examples"; "tools" ])

let analyze_paths ?(ref_paths = []) paths =
  let files =
    List.rev (List.fold_left (fun acc p -> collect_ml p acc) [] paths)
  in
  let load path =
    let mli =
      if Sys.file_exists (path ^ "i") then Some (read_file (path ^ "i"))
      else None
    in
    (path, read_file path, mli)
  in
  let refs =
    List.concat_map
      (fun root ->
        List.rev_map
          (fun p -> (p, read_file p))
          (collect_ml root []))
      ref_paths
  in
  analyze_sources ~refs (List.map load files)

let explain report sym =
  List.filter
    (fun f ->
      f.chain <> []
      &&
      match f.symbol with
      | Some s -> s = sym || String.ends_with ~suffix:("." ^ sym) s
      | None -> false)
    report.r_findings

(* ------------------------------------------------- JSON and baselines *)

module J = Netdiv_vuln.Json

let finding_to_json f =
  let base =
    [
      ("file", J.String f.file);
      ("line", J.Number (float_of_int f.line));
      ("rule", J.String f.rule);
      ("message", J.String f.message);
    ]
  in
  let sym = match f.symbol with Some s -> [ ("symbol", J.String s) ] | None -> [] in
  let chain =
    match f.chain with
    | [] -> []
    | steps ->
        [
          ( "chain",
            J.List
              (List.map
                 (fun s ->
                   J.Object
                     [
                       ("name", J.String s.c_name);
                       ("file", J.String s.c_file);
                       ("line", J.Number (float_of_int s.c_line));
                     ])
                 steps) );
        ]
  in
  J.Object (base @ sym @ chain)

let report_to_json ?(fresh = []) ?(baselined = 0) ?(stale = []) report =
  J.to_string ~pretty:true
    (J.Object
       [
         ("version", J.Number 1.);
         ("files", J.Number (float_of_int report.r_files));
         ("bindings", J.Number (float_of_int report.r_bindings));
         ("findings", J.List (List.map finding_to_json fresh));
         ("baselined", J.Number (float_of_int baselined));
         ("stale_baseline", J.List (List.map (fun s -> J.String s) stale));
       ])
  ^ "\n"

type baseline_entry = {
  e_file : string;
  e_rule : string;
  e_symbol : string option;
  e_line : int option;
  e_reason : string;
}

let baseline_of_string text =
  match J.parse text with
  | Error msg -> Error ("baseline is not valid JSON: " ^ msg)
  | Ok j -> (
      match Option.bind (J.member "findings" j) J.to_list with
      | None -> Error "baseline must be an object with a \"findings\" list"
      | Some entries ->
          let parse_entry i e =
            let str k = Option.bind (J.member k e) J.to_str in
            let num k = Option.bind (J.member k e) J.to_float in
            match (str "file", str "rule", str "reason") with
            | Some e_file, Some e_rule, Some e_reason
              when is_reason_text e_reason ->
                Ok
                  {
                    e_file;
                    e_rule;
                    e_symbol = str "symbol";
                    e_line = Option.map int_of_float (num "line");
                    e_reason;
                  }
            | Some _, Some _, _ ->
                Error
                  (Printf.sprintf
                     "baseline entry %d has no written reason; every \
                      accepted finding must say why it is acceptable"
                     i)
            | _ ->
                Error
                  (Printf.sprintf
                     "baseline entry %d needs string fields \"file\", \
                      \"rule\" and \"reason\""
                     i)
          in
          let rec go i acc = function
            | [] -> Ok (List.rev acc)
            | e :: rest -> (
                match parse_entry i e with
                | Ok entry -> go (i + 1) (entry :: acc) rest
                | Error _ as err -> err)
          in
          go 0 [] entries)

let baseline_matches entry f =
  entry.e_file = f.file
  && entry.e_rule = f.rule
  && (match entry.e_symbol with
     | Some s -> f.symbol = Some s
     | None -> true)
  && match entry.e_line with Some l -> l = f.line | None -> true

(* Returns (fresh findings, baselined count, stale entries).  A stale
   entry — one matching no current finding — is reported so the baseline
   shrinks as violations are fixed instead of fossilizing. *)
let apply_baseline entries findings =
  let hit = Array.make (List.length entries) false in
  let fresh =
    List.filter
      (fun f ->
        let matched = ref false in
        List.iteri
          (fun i e ->
            if baseline_matches e f then begin
              hit.(i) <- true;
              matched := true
            end)
          entries;
        not !matched)
      findings
  in
  let stale =
    List.filteri (fun i _ -> not hit.(i)) entries
    |> List.map (fun e ->
           Printf.sprintf "%s [%s]%s" e.e_file e.e_rule
             (match e.e_symbol with Some s -> " " ^ s | None -> ""))
  in
  (fresh, List.length findings - List.length fresh, stale)

let baseline_template findings =
  J.to_string ~pretty:true
    (J.Object
       [
         ("version", J.Number 1.);
         ( "findings",
           J.List
             (List.map
                (fun f ->
                  let sym =
                    match f.symbol with
                    | Some s -> [ ("symbol", J.String s) ]
                    | None -> [ ("line", J.Number (float_of_int f.line)) ]
                  in
                  J.Object
                    ([ ("file", J.String f.file); ("rule", J.String f.rule) ]
                    @ sym
                    @ [ ("reason", J.String "TODO: justify or fix") ]))
                findings) );
       ])
  ^ "\n"
