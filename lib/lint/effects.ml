(* Effect summaries and the interprocedural fixpoint.  See effects.mli
   for the contract.

   Summaries live in a six-bit mask; the fixpoint is a naive
   iterate-until-stable loop over the binding array, which converges in
   at most six rounds times the longest acyclic call chain (each round
   can only add bits, and there are six).  The repository has ~10^3
   bindings and ~10^4 edges, so this is microseconds — simplicity over
   a worklist. *)

type eff = Clock | Random | Spawn | Mutate | Alloc | Print

let eff_name = function
  | Clock -> "nondet-clock"
  | Random -> "nondet-random"
  | Spawn -> "spawns-domain"
  | Mutate -> "mutates-toplevel"
  | Alloc -> "allocates"
  | Print -> "prints"

let bit = function
  | Clock -> 1
  | Random -> 2
  | Spawn -> 4
  | Mutate -> 8
  | Alloc -> 16
  | Print -> 32

let all_effs = [ Clock; Random; Spawn; Mutate; Alloc; Print ]

type source = { s_eff : eff; s_line : int; s_descr : string }

type witness = Direct of source | Via of { callee : int; call_line : int }

type summary = { effs : eff list; wit : (eff * witness) list }

type t = { repo : Symbols.repo; summaries : summary array }

(* ------------------------------------------------------- token helpers *)

let tok (toks : Lexer.token array) i =
  if i >= 0 && i < Array.length toks then toks.(i).Lexer.text else ""

let seq2 toks i a b = tok toks i = a && tok toks (i + 1) = b

let seq3 toks i a b c = seq2 toks i a b && tok toks (i + 2) = c

(* two single-char operator tokens glued in the source (":=", "<-") *)
let glued (toks : Lexer.token array) i =
  i + 1 < Array.length toks
  && toks.(i).Lexer.line = toks.(i + 1).Lexer.line
  && toks.(i + 1).Lexer.col = toks.(i).Lexer.col + 1

let is_pool_ml path =
  Filename.basename path = "pool.ml"
  && Filename.basename (Filename.dirname path) = "par"

(* Does a binding's body construct mutable state?  Used to keep
   [x := ...] on a shadowed local from convicting an unrelated
   same-named toplevel function. *)
let looks_mutable (fs : Symbols.file_syms) (b : Symbols.binding) =
  let toks = fs.f_lex.Lexer.tokens in
  let found = ref false in
  for i = b.b_lo to min b.b_hi (Array.length toks) - 1 do
    (match tok toks i with
    | "ref" | "mutable" -> found := true
    | "Hashtbl" | "Atomic" | "Queue" | "Stack" | "Buffer" | "Bytes" ->
        if
          tok toks (i + 1) = "."
          &&
          match tok toks (i + 2) with
          | "create" | "make" | "init" -> true
          | _ -> false
        then found := true
    | "Array" ->
        if seq2 toks (i + 1) "." "make" || seq2 toks (i + 1) "." "init"
           || seq2 toks (i + 1) "." "create" (* Float.Array.create *)
        then found := true
    | "DLS" ->
        if tok toks (i + 1) = "." && tok toks (i + 2) = "new_key" then
          found := true
    | _ -> ())
  done;
  !found

(* ------------------------------------------------------- base effects *)

let mutation_rules = [ "toplevel-mutable-state" ]
let clock_rules =
  [ "nondeterminism-source"; "direct-clock-in-instrumented-code"; "nondet-taint" ]
let random_rules = [ "nondeterminism-source"; "nondet-taint" ]
let spawn_rules = [ "spawn-outside-pool" ]
let print_rules = [ "printf-in-lib" ]

let barred barrier ~path ~line rules =
  List.exists (fun rule -> barrier ~path ~line ~rule) rules

(* walk back over a dotted access path ending at token [e]; returns the
   index of the head component, or -1 when [e] is not an identifier *)
let path_head (toks : Lexer.token array) e =
  let is_ident s =
    s <> ""
    &&
    match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false
  in
  if e < 0 || not (is_ident (tok toks e)) then -1
  else begin
    let k = ref e in
    while !k >= 2 && tok toks (!k - 1) = "." && is_ident (tok toks (!k - 2)) do
      k := !k - 2
    done;
    !k
  end

(* the token index of the assignment target's head for [<-]: handles
   [x <- v], [r.f <- v], [t.(i) <- v] and [t.%(i) <- v] shapes *)
let arrow_target (toks : Lexer.token array) i =
  match tok toks (i - 1) with
  | ")" | "]" ->
      (* walk back to the matching opener *)
      let depth = ref 1 and k = ref (i - 2) in
      while !depth > 0 && !k >= 0 do
        (match tok toks !k with
        | ")" | "]" -> incr depth
        | "(" | "[" -> decr depth
        | _ -> ());
        if !depth > 0 then decr k
      done;
      (* skip index-operator chars between the path and the opener:
         t.(i), t.%(i), t.%.(i) ... *)
      let e = ref (!k - 1) in
      while !e >= 0 && (tok toks !e = "." || tok toks !e = "%" || tok toks !e = "$")
      do
        decr e
      done;
      path_head toks !e
  | _ -> path_head toks (i - 1)

(* The resolved toplevel bindings a mutation target may denote, with
   certified (suppressed-at-definition) targets dropped. *)
let mutated_bindings ~barrier repo (fs : Symbols.file_syms) b head_tok =
  match Symbols.ref_at fs b head_tok with
  | None -> []
  | Some r ->
      List.filter
        (fun id ->
          let tb = repo.Symbols.bindings.(id) in
          let tfs = repo.Symbols.files.(repo.Symbols.file_of.(id)) in
          looks_mutable tfs tb
          && not
               (barred barrier ~path:tb.Symbols.b_file ~line:tb.Symbols.b_line
                  mutation_rules))
        (Symbols.resolve repo fs r)

let direct_sources ~barrier (fs : Symbols.file_syms) (b : Symbols.binding)
    ~lo ~hi repo =
  let toks = fs.f_lex.Lexer.tokens in
  let path = fs.f_path in
  let out = ref [] in
  let add line eff descr =
    out := { s_eff = eff; s_line = line; s_descr = descr } :: !out
  in
  let pool = is_pool_ml path in
  let hi = min hi (Array.length toks) in
  for i = lo to hi - 1 do
    let t = toks.(i) in
    let line = t.Lexer.line in
    (* clock *)
    if seq3 toks i "Unix" "." "gettimeofday" || seq3 toks i "Sys" "." "time"
    then begin
      if not (barred barrier ~path ~line clock_rules) then
        add line Clock (tok toks i ^ "." ^ tok toks (i + 2))
    end;
    (* global-state Random (Random.State is the seeded, sanctioned API) *)
    if
      seq2 toks i "Random" "."
      && tok toks (i - 1) <> "."
      && tok toks (i + 2) <> "State"
      && tok toks (i + 2) <> ""
    then begin
      if not (barred barrier ~path ~line random_rules) then
        add line Random ("Random." ^ tok toks (i + 2))
    end;
    (* spawn — the pool is the sanctioned spawner *)
    if seq3 toks i "Domain" "." "spawn" && not pool then begin
      if not (barred barrier ~path ~line spawn_rules) then
        add line Spawn "Domain.spawn"
    end;
    (* prints *)
    let print_descr =
      if seq3 toks i "Printf" "." "printf" || seq3 toks i "Format" "." "printf"
      then Some (t.Lexer.text ^ ".printf")
      else
        match t.Lexer.text with
        | ( "print_endline" | "print_string" | "print_newline" | "print_int"
          | "print_float" | "print_char" )
          when tok toks (i - 1) <> "." || tok toks (i - 2) = "Stdlib" ->
            Some t.Lexer.text
        | _ -> None
    in
    (match print_descr with
    | Some descr ->
        if not (barred barrier ~path ~line print_rules) then
          add line Print descr
    | None -> ());
    (* allocation *)
    if
      (seq2 toks i "Array" "."
      && (not (seq2 toks (i - 2) "Float" "."))
      && List.mem (tok toks (i + 2)) [ "make"; "init"; "copy" ])
      || (seq3 toks i "Float" "." "Array"
         && tok toks (i + 3) = "."
         && List.mem (tok toks (i + 4)) [ "create"; "make"; "init"; "copy" ])
      || seq3 toks i "Hashtbl" "." "create"
      || (seq2 toks i "Bytes" "."
         && List.mem (tok toks (i + 2)) [ "create"; "make" ])
    then add line Alloc ("allocation via " ^ t.Lexer.text);
    (* mutation of toplevel state: [:=], [<-], and the imperative
       container APIs applied to a resolvable toplevel binding *)
    let mut_head =
      if tok toks i = ":" && tok toks (i + 1) = "=" && glued toks i then
        path_head toks (i - 1)
      else if tok toks i = "<" && tok toks (i + 1) = "-" && glued toks i then
        arrow_target toks i
      else if
        (tok toks i = "Hashtbl"
        && tok toks (i + 1) = "."
        && List.mem (tok toks (i + 2))
             [ "add"; "replace"; "remove"; "reset"; "clear";
               "filter_map_inplace" ])
        || (tok toks i = "Atomic"
           && tok toks (i + 1) = "."
           && List.mem (tok toks (i + 2))
                [ "set"; "incr"; "decr"; "exchange"; "compare_and_set" ])
      then if i + 3 < hi then path_head toks (i + 3) else -1
      else -1
    in
    if mut_head >= 0 then begin
      match mutated_bindings ~barrier repo fs b mut_head with
      | [] -> ()
      | tb_id :: _ ->
          let tb = repo.Symbols.bindings.(tb_id) in
          add line Mutate
            (Printf.sprintf "mutates toplevel %s (%s:%d)"
               (Symbols.qualified_name tb) tb.Symbols.b_file tb.Symbols.b_line)
    end
  done;
  List.rev !out

(* ----------------------------------------------------------- fixpoint *)

let analyze ~barrier repo =
  let n = Array.length repo.Symbols.bindings in
  let masks = Array.make n 0 in
  let wits : (eff * witness) list array = Array.make n [] in
  (* base effects *)
  Array.iteri
    (fun id b ->
      let fs = repo.Symbols.files.(repo.Symbols.file_of.(id)) in
      let srcs =
        direct_sources ~barrier fs b ~lo:b.Symbols.b_lo ~hi:b.Symbols.b_hi repo
      in
      List.iter
        (fun s ->
          if masks.(id) land bit s.s_eff = 0 then begin
            masks.(id) <- masks.(id) lor bit s.s_eff;
            wits.(id) <- (s.s_eff, Direct s) :: wits.(id)
          end)
        srcs)
    repo.Symbols.bindings;
  (* call edges *)
  let edges : (int * int) list array = Array.make n [] in
  Array.iter
    (fun fs ->
      Array.iteri
        (fun bi b ->
          let id = b.Symbols.b_id in
          let seen = Hashtbl.create 16 in
          Array.iter
            (fun r ->
              List.iter
                (fun callee ->
                  if callee <> id && not (Hashtbl.mem seen callee) then begin
                    Hashtbl.replace seen callee ();
                    edges.(id) <- (callee, r.Symbols.r_line) :: edges.(id)
                  end)
                (Symbols.resolve repo fs r))
            fs.Symbols.f_refs.(bi))
        fs.Symbols.f_bindings)
    repo.Symbols.files;
  Array.iteri (fun id l -> edges.(id) <- List.rev l) edges;
  (* iterate to fixpoint.  An edge to a non-function binding (a value
     evaluated once at module init) transmits only the nondeterminism
     bits: referencing [let c = Counter.make "x"] does not re-run the
     registration, so Mutate/Spawn/Alloc/Print stop there, but a value
     initialized from the clock or global Random state still poisons
     every consumer's reproducibility. *)
  let init_bits = bit Clock lor bit Random in
  let changed = ref true in
  while !changed do
    changed := false;
    for id = 0 to n - 1 do
      List.iter
        (fun (callee, call_line) ->
          let transmitted =
            if repo.Symbols.bindings.(callee).Symbols.b_func then
              masks.(callee)
            else masks.(callee) land init_bits
          in
          let fresh = transmitted land lnot masks.(id) in
          if fresh <> 0 then begin
            masks.(id) <- masks.(id) lor fresh;
            changed := true;
            List.iter
              (fun e ->
                if fresh land bit e <> 0 then
                  wits.(id) <- (e, Via { callee; call_line }) :: wits.(id))
              all_effs
          end)
        edges.(id)
    done
  done;
  let summaries =
    Array.init n (fun id ->
        {
          effs = List.filter (fun e -> masks.(id) land bit e <> 0) all_effs;
          wit = List.rev wits.(id);
        })
  in
  { repo; summaries }

let summary t id = t.summaries.(id)

let has t id e = List.mem e t.summaries.(id).effs

(* -------------------------------------------------------------- chains *)

type chain_step = { c_name : string; c_file : string; c_line : int }

let chain t id0 e =
  if not (has t id0 e) then []
  else begin
    let step_of id =
      let b = t.repo.Symbols.bindings.(id) in
      { c_name = Symbols.qualified_name b; c_file = b.Symbols.b_file;
        c_line = b.Symbols.b_line }
    in
    let rec go id acc guard =
      if guard > Array.length t.repo.Symbols.bindings then List.rev acc
      else
        match List.assoc_opt e t.summaries.(id).wit with
        | None -> List.rev acc
        | Some (Direct s) ->
            let b = t.repo.Symbols.bindings.(id) in
            List.rev
              ({ c_name = s.s_descr; c_file = b.Symbols.b_file;
                 c_line = s.s_line }
              :: acc)
        | Some (Via { callee; _ }) -> go callee (step_of callee :: acc) (guard + 1)
    in
    go id0 [ step_of id0 ] 0
  end
