(* Structural symbol tables for netdiv-lint.  See symbols.mli for the
   contract and DESIGN.md ("Static analysis") for the rationale.

   The parser is a single forward pass over the Lexer token stream.  It
   tracks module nesting with the same column discipline the
   toplevel-mutable-state rule uses (items at column 0, +2 per
   enclosing struct/sig), extended with a resync rule: an item keyword
   appearing at the column of an *outer* scope pops back to that scope,
   so a construct the tracker cannot model (a multi-line [let module],
   a functor body) loses at most the bindings inside it. *)

type binding = {
  b_id : int;
  b_file : string;
  b_module : string list;
  b_name : string;
  b_line : int;
  b_lo : int;
  b_hi : int;
  b_func : bool;
}

type reference = {
  r_path : string list;
  r_name : string;
  r_line : int;
  r_tok : int;
}

type mli_val = {
  v_name : string;
  v_module : string list;
  v_line : int;
  v_operator : bool;
}

type file_syms = {
  f_path : string;
  f_modname : string;
  f_lex : Lexer.t;
  f_bindings : binding array;
  f_refs : reference array array;
  f_opens : string list list;
  f_aliases : (string * string list) list;
  f_mli : mli_val list;
}

type repo = {
  files : file_syms array;
  bindings : binding array;
  file_of : int array;
  by_suffix : (string, int list) Hashtbl.t;
}

(* ------------------------------------------------------------ helpers *)

let keywords =
  [ "let"; "rec"; "and"; "in"; "fun"; "function"; "match"; "with"; "if";
    "then"; "else"; "for"; "while"; "do"; "done"; "to"; "downto"; "begin";
    "end"; "struct"; "sig"; "module"; "open"; "include"; "type"; "val";
    "exception"; "external"; "mutable"; "of"; "as"; "when"; "try"; "new";
    "object"; "method"; "lazy"; "assert"; "true"; "false"; "land"; "lor";
    "lxor"; "lsl"; "lsr"; "asr"; "mod"; "or"; "inherit"; "initializer";
    "constraint"; "virtual"; "private"; "nonrec" ]

let is_keyword s = List.mem s keywords

let is_uident s = s <> "" && s.[0] >= 'A' && s.[0] <= 'Z'

let is_lident s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | '_' -> true | _ -> false)
  && not (is_keyword s)

let is_opchar_tok s =
  String.length s = 1
  &&
  match s.[0] with
  | '!' | '$' | '%' | '&' | '*' | '+' | '-' | '.' | '/' | ':' | '<' | '='
  | '>' | '?' | '@' | '^' | '|' | '~' ->
      true
  | _ -> false

let item_keywords =
  [ "let"; "and"; "module"; "type"; "open"; "include"; "exception";
    "external"; "val"; "class" ]

let module_name_of_path path =
  let base = Filename.remove_extension (Filename.basename path) in
  if base = "" then "_"
  else String.make 1 (Char.uppercase_ascii base.[0])
       ^ String.sub base 1 (String.length base - 1)

let qualified_name b = String.concat "." (b.b_module @ [ b.b_name ])

(* ------------------------------------------------------- .mli exports *)

(* Exported values of an interface: [val]/[external] items at the
   current signature item column.  Values declared inside a
   [module type ... = sig] are specifications, not exports, and are
   skipped via the [mt] flag carried down the scope stack. *)
let parse_mli ~modname (lx : Lexer.t) =
  let toks = lx.Lexer.tokens in
  let n = Array.length toks in
  let tok i = if i >= 0 && i < n then toks.(i).Lexer.text else "" in
  let vals = ref [] in
  (* (item_col, close_col, open_line, module_path, in_module_type) *)
  let stack = ref [ (0, -1, -1, [ modname ], false) ] in
  let item_col () = match !stack with (c, _, _, _, _) :: _ -> c | [] -> 0 in
  let cur_path () = match !stack with (_, _, _, p, _) :: _ -> p | [] -> [] in
  let cur_mt () = match !stack with (_, _, _, _, m) :: _ -> m | [] -> false in
  let pending = ref None and pending_mt = ref false in
  for i = 0 to n - 1 do
    let t = toks.(i) in
    (match t.Lexer.text with
    | "struct" | "sig" ->
        let name = Option.value !pending ~default:"_" in
        stack :=
          ( item_col () + 2, item_col (), t.Lexer.line, cur_path () @ [ name ],
            cur_mt () || !pending_mt )
          :: !stack;
        pending := None;
        pending_mt := false
    | "end" -> (
        match !stack with
        | (_, close_col, open_line, _, _) :: rest
          when rest <> []
               && (t.Lexer.col = close_col || t.Lexer.line = open_line) ->
            stack := rest
        | _ -> ())
    | _ -> ());
    if List.mem t.Lexer.text item_keywords then begin
      (* resync: an item at an outer scope's column pops back to it *)
      while
        (match !stack with _ :: _ :: _ -> true | _ -> false)
        && t.Lexer.col < item_col ()
      do
        stack := List.tl !stack
      done
    end;
    if t.Lexer.col = item_col () then begin
      (match t.Lexer.text with
      | "module" ->
          if tok (i + 1) = "type" then begin
            pending_mt := true;
            pending := (if is_uident (tok (i + 2)) then Some (tok (i + 2)) else None)
          end
          else if is_uident (tok (i + 1)) then begin
            pending := Some (tok (i + 1));
            pending_mt := false
          end
      | _ -> ());
      if (t.Lexer.text = "val" || t.Lexer.text = "external") && not (cur_mt ())
      then begin
        let name, operator =
          if is_lident (tok (i + 1)) then (tok (i + 1), false)
          else if tok (i + 1) = "(" then begin
            let b = Buffer.create 8 in
            let depth = ref 1 and j = ref (i + 2) in
            while !depth > 0 && !j < n do
              (match tok !j with
              | "(" -> incr depth
              | ")" -> decr depth
              | _ -> ());
              if !depth > 0 then Buffer.add_string b (tok !j);
              incr j
            done;
            (Buffer.contents b, true)
          end
          else ("", false)
        in
        if name <> "" then
          vals :=
            { v_name = name; v_module = cur_path (); v_line = t.Lexer.line;
              v_operator = operator }
            :: !vals
      end
    end
  done;
  List.rev !vals

(* ------------------------------------------------------- .ml structure *)

let parse_lexed ~path (lx : Lexer.t) ?mli () =
  let modname = module_name_of_path path in
  let toks = lx.Lexer.tokens in
  let n = Array.length toks in
  let tok i = if i >= 0 && i < n then toks.(i).Lexer.text else "" in
  (* scope stack: (item_col, close_col, open_line, module_path) *)
  let stack = ref [ (0, -1, -1, [ modname ]) ] in
  let item_col () = match !stack with (c, _, _, _) :: _ -> c | [] -> 0 in
  let cur_path () = match !stack with (_, _, _, p) :: _ -> p | [] -> [] in
  let pending = ref None in
  let last_item = ref "" in
  let opens = ref [] and aliases = ref [] in
  let bindings = ref [] and refs = ref [] in
  (* current binding under construction *)
  let cur = ref None in
  (* locals of the current binding: name -> () (position-sensitive: a
     name is local from the token that binds it onward) *)
  let locals = Hashtbl.create 32 in
  (* token indices that are binder occurrences, not references *)
  let binder_toks = Hashtbl.create 32 in
  let cur_refs = ref [] in
  let close_binding upto =
    match !cur with
    | None -> ()
    | Some (name, line, path_, lo, func) ->
        bindings :=
          { b_id = -1; b_file = path; b_module = path_; b_name = name;
            b_line = line; b_lo = lo; b_hi = upto; b_func = func }
          :: !bindings;
        refs := Array.of_list (List.rev !cur_refs) :: !refs;
        cur := None;
        cur_refs := [];
        Hashtbl.reset locals
  in
  (* reads a dotted module path of uidents starting at [i]; returns the
     components and the index just past them *)
  let read_upath i =
    let comps = ref [ tok i ] and j = ref i in
    while tok (!j + 1) = "." && is_uident (tok (!j + 2)) do
      comps := tok (!j + 2) :: !comps;
      j := !j + 2
    done;
    (List.rev !comps, !j + 1)
  in
  (* operator name between parens: [i] points at '('; returns
     (concatenated-name, index past the closing paren) *)
  let read_opname i =
    let b = Buffer.create 8 in
    let depth = ref 1 and j = ref (i + 1) in
    while !depth > 0 && !j < n do
      (match tok !j with "(" -> incr depth | ")" -> decr depth | _ -> ());
      if !depth > 0 then Buffer.add_string b (tok !j);
      incr j
    done;
    (Buffer.contents b, !j)
  in
  (* the bound name of a let: after optional [rec] and binder operator
     chars ([let*]); returns (name, name_tok_index or -1, idx past) *)
  let read_let_name i =
    let j = ref i in
    if tok !j = "rec" then incr j;
    while is_opchar_tok (tok !j) do incr j done;
    if is_lident (tok !j) then (tok !j, !j, !j + 1)
    else if tok !j = "(" then begin
      let name, past = read_opname !j in
      ((if name = "" then "(init)" else name), !j, past)
    end
    else (("(init)"), -1, !j + 1)
  in
  let start_binding i =
    close_binding i;
    let name, name_tok, past = read_let_name (i + 1) in
    if name_tok >= 0 then Hashtbl.replace binder_toks name_tok ();
    (* header: parameters and type annotation up to the first [=] at
       paren depth 0; every lident there is a local.  After a depth-0
       [:] the rest of the header is the return type — its lidents are
       type names, not parameters. *)
    let k = ref past and depth = ref 0 and fin = ref false in
    let has_param = ref false and ann = ref false in
    while (not !fin) && !k < n do
      (match tok !k with
      | "(" | "[" | "{" ->
          incr depth;
          if tok !k = "(" && tok (!k + 1) = ")" then has_param := true
      | ")" | "]" | "}" -> decr depth
      | "=" when !depth = 0 -> fin := true
      | ":" when !depth = 0 -> ann := true
      | s when !depth >= 0 && is_lident s && not !ann ->
          has_param := true;
          Hashtbl.replace locals s ();
          Hashtbl.replace binder_toks !k ()
      | _ -> ());
      (* a new item starting before we saw [=] means a malformed or
         bodyless binding (external-style); stop scanning *)
      if
        (not !fin)
        && toks.(!k).Lexer.col <= item_col ()
        && List.mem (tok !k) item_keywords
        && !k > past
      then begin
        fin := true;
        decr k
      end;
      incr k
    done;
    let func =
      !has_param || tok !k = "fun" || tok !k = "function" || tok !k = "lazy"
    in
    cur := Some (name, toks.(i).Lexer.line, cur_path (), !k, func)
  in
  let i = ref 0 in
  while !i < n do
    let t = toks.(!i) in
    let text = t.Lexer.text in
    (match text with
    | "struct" | "sig" ->
        let name = Option.value !pending ~default:"_" in
        stack :=
          (item_col () + 2, item_col (), t.Lexer.line, cur_path () @ [ name ])
          :: !stack;
        pending := None
    | "end" -> (
        match !stack with
        | (_, close_col, open_line, _) :: rest
          when rest <> []
               && (t.Lexer.col = close_col || t.Lexer.line = open_line) ->
            stack := rest
        | _ -> ())
    | _ -> ());
    if List.mem text item_keywords then begin
      while
        (match !stack with _ :: _ :: _ -> true | _ -> false)
        && t.Lexer.col < item_col ()
      do
        stack := List.tl !stack
      done
    end;
    if t.Lexer.col = item_col () && List.mem text item_keywords then begin
      if text <> "and" then last_item := text;
      match text with
      | "let" -> start_binding !i
      | "and" when !last_item = "let" -> start_binding !i
      | "external" ->
          close_binding !i;
          let name, name_tok, past = read_let_name (!i + 1) in
          if name_tok >= 0 then Hashtbl.replace binder_toks name_tok ();
          cur := Some (name, t.Lexer.line, cur_path (), past, true)
      | "open" | "include" when is_uident (tok (!i + 1)) ->
          close_binding !i;
          let comps, _ = read_upath (!i + 1) in
          opens := comps :: !opens
      | "module" ->
          close_binding !i;
          let j = if tok (!i + 1) = "type" then !i + 2 else !i + 1 in
          if is_uident (tok j) then begin
            pending := Some (tok j);
            (* skip functor parameters and a signature annotation to
               find what follows [=] *)
            let k = ref (j + 1) in
            let continue = ref true in
            while !continue do
              if tok !k = "(" then begin
                let depth = ref 1 in
                incr k;
                while !depth > 0 && !k < n do
                  (match tok !k with
                  | "(" -> incr depth
                  | ")" -> decr depth
                  | _ -> ());
                  incr k
                done
              end
              else if tok !k = ":" then begin
                (* signature constraint: skip to [=] or [struct]/[sig] *)
                while
                  !k < n
                  && tok !k <> "="
                  && tok !k <> "struct"
                  && tok !k <> "sig"
                do
                  incr k
                done
              end
              else continue := false
            done;
            if tok !k = "=" && is_uident (tok (!k + 1)) then begin
              (* alias or functor application: record head path *)
              let comps, _ = read_upath (!k + 1) in
              aliases := (tok j, comps) :: !aliases;
              pending := None
            end
          end
      | _ -> close_binding !i
    end
    else begin
      (* inside a binding body (or stray module-level tokens) *)
      match !cur with
      | None -> ()
      | Some _ ->
          (match text with
          | "let" | "and" ->
              (* local binder: record the bound name as a local *)
              let _, name_tok, _ = read_let_name (!i + 1) in
              if name_tok >= 0 && is_lident (tok name_tok) then begin
                Hashtbl.replace locals (tok name_tok) ();
                Hashtbl.replace binder_toks name_tok ()
              end
          | "fun" ->
              (* parameters up to the arrow bind locally *)
              let j = ref (!i + 1) and fin = ref false in
              while (not !fin) && !j < min n (!i + 16) do
                (if tok !j = "-" && tok (!j + 1) = ">" then fin := true
                 else if is_lident (tok !j) then begin
                   Hashtbl.replace locals (tok !j) ();
                   Hashtbl.replace binder_toks !j ()
                 end);
                incr j
              done
          | _ -> ());
          if is_uident text && tok (!i - 1) <> "." then begin
            let comps, past = read_upath !i in
            if tok past = "." && is_lident (tok (past + 1)) then
              cur_refs :=
                { r_path = comps; r_name = tok (past + 1); r_line = t.Lexer.line;
                  r_tok = !i }
                :: !cur_refs
          end
          else if
            is_lident text
            && tok (!i - 1) <> "."
            && (not (Hashtbl.mem locals text))
            && (not (Hashtbl.mem binder_toks !i))
            && not
                 ((tok (!i - 1) = "~" || tok (!i - 1) = "?")
                 && tok (!i + 1) = ":")
          then
            cur_refs :=
              { r_path = []; r_name = text; r_line = t.Lexer.line; r_tok = !i }
              :: !cur_refs
    end;
    incr i
  done;
  close_binding n;
  {
    f_path = path;
    f_modname = modname;
    f_lex = lx;
    f_bindings = Array.of_list (List.rev !bindings);
    f_refs = Array.of_list (List.rev !refs);
    f_opens = List.rev !opens;
    f_aliases = !aliases;
    f_mli =
      (match mli with
      | Some mlx -> parse_mli ~modname mlx
      | None -> []);
  }

let parse_file ~path ?mli src =
  let mli = Option.map Lexer.tokenize mli in
  parse_lexed ~path (Lexer.tokenize src) ?mli ()

(* ----------------------------------------------------------- resolution *)

(* Suffix index: a binding with module path [M0; S1; S2] and name n is
   registered under "M0.S1.S2.n", "S1.S2.n" and "S2.n" — never under
   the bare name, which only resolves within the defining file or
   through an [open].  The anonymous names "(init)" and "_" are not
   registered. *)
let suffix_keys b =
  if b.b_name = "(init)" || b.b_name = "" then []
  else
    let rec suffixes = function
      | [] -> []
      | _ :: rest as l -> l :: suffixes rest
    in
    List.map
      (fun path -> String.concat "." (path @ [ b.b_name ]))
      (suffixes b.b_module)

let build files =
  let files = Array.of_list files in
  let all = ref [] and file_of = ref [] in
  let id = ref 0 in
  let by_suffix = Hashtbl.create 256 in
  Array.iteri
    (fun fi f ->
      Array.iteri
        (fun bi b ->
          let b = { b with b_id = !id } in
          f.f_bindings.(bi) <- b;
          all := b :: !all;
          file_of := fi :: !file_of;
          List.iter
            (fun key ->
              let prev = Option.value (Hashtbl.find_opt by_suffix key) ~default:[] in
              Hashtbl.replace by_suffix key (b.b_id :: prev))
            (suffix_keys b);
          incr id)
        f.f_bindings)
    files;
  {
    files;
    bindings = Array.of_list (List.rev !all);
    file_of = Array.of_list (List.rev !file_of);
    by_suffix;
  }

let is_wrapper_component c =
  c = "Stdlib"
  || String.length c > 7
     && String.sub c 0 7 = "Netdiv_"

let normalize_path (fs : file_syms) path =
  (* expand a file-local alias at the head, then drop library-wrapper
     components anywhere in the prefix *)
  let path =
    match path with
    | head :: rest -> (
        match List.assoc_opt head fs.f_aliases with
        | Some target -> target @ rest
        | None -> path)
    | [] -> []
  in
  List.filter (fun c -> not (is_wrapper_component c)) path

let rec resolve repo fs r =
  let lookup_suffix key =
    Option.value (Hashtbl.find_opt repo.by_suffix key) ~default:[]
  in
  if r.r_path = [] then begin
    (* bare name: latest same-file definition at or above the use line
       (shadow-aware), falling back to the earliest (forward references
       inside [let rec ... and ...]); then the file's opens *)
    let best = ref None and first = ref None in
    Array.iter
      (fun b ->
        if b.b_name = r.r_name then begin
          if !first = None then first := Some b;
          if b.b_line <= r.r_line then
            match !best with
            | Some p when p.b_line >= b.b_line -> ()
            | _ -> best := Some b
        end)
      fs.f_bindings;
    match (!best, !first) with
    | Some b, _ | None, Some b -> [ b.b_id ]
    | None, None ->
        List.concat_map
          (fun o ->
            match List.rev (normalize_path fs o) with
            | last :: _ -> lookup_suffix (last ^ "." ^ r.r_name)
            | [] -> [])
          fs.f_opens
  end
  else begin
    let path = normalize_path fs r.r_path in
    let rec try_suffixes = function
      | [] -> []
      | p -> (
          match lookup_suffix (String.concat "." (p @ [ r.r_name ])) with
          | [] -> try_suffixes (List.tl p)
          | ids -> ids)
    in
    match try_suffixes path with
    | [] when path = [] ->
        (* the whole path was wrapper components: treat as bare *)
        resolve repo fs { r with r_path = [] }
    | ids -> ids
  end

let ref_at fs b tok_idx =
  let bi =
    let found = ref None in
    Array.iteri (fun i b' -> if b'.b_id = b.b_id then found := Some i) fs.f_bindings;
    !found
  in
  match bi with
  | None -> None
  | Some bi ->
      Array.fold_left
        (fun acc r -> if r.r_tok = tok_idx then Some r else acc)
        None fs.f_refs.(bi)
