(** Loopy min-sum belief propagation (baseline).

    The paper discusses BP as the common alternative to graph-cuts but
    prefers TRW-S because BP "might not converge" on loopy graphs
    (Section V-C).  This damped, sequential min-sum implementation serves
    as that baseline: it provides no dual bound and no convergence
    guarantee, which the ablation benches demonstrate. *)

type config = {
  max_iters : int;
  tolerance : float;   (** stop when no message changes more than this *)
  damping : float;     (** new = (1-d)*update + d*old; 0 = undamped *)
  init_noise : float;
      (** deterministic initial message jitter in [0,noise); breaks the
          symmetric all-zero fixed point on label-symmetric models *)
}

val default_config : config
(** 100 iterations, tolerance 1e-7, damping 0.3, noise 1e-4. *)

val solve :
  ?config:config ->
  ?interrupt:(unit -> bool) ->
  ?on_progress:(iter:int -> energy:float -> bound:float -> unit) ->
  Mrf.t ->
  Solver.result
(** [interrupt] is polled once per sweep; on [true] the best decoded
    labeling so far is returned.  [on_progress] fires after each sweep
    with [bound = neg_infinity] (BP provides no dual bound). *)

val solve_chromatic :
  ?config:config ->
  ?interrupt:(unit -> bool) ->
  ?on_progress:(iter:int -> energy:float -> bound:float -> unit) ->
  ?jobs:int ->
  Mrf.t ->
  Solver.result
(** Chromatic-schedule BP: the node graph is greedy-colored once
    ({!Mrf.greedy_coloring}) and every sweep runs one parallel region
    per color class on a persistent {!Netdiv_par.Pool.Team}.  Nodes of
    one class are pairwise non-adjacent, so a class member's update
    reads only messages no other member writes — within a class the
    result is independent even of chunk boundaries, which makes the
    whole solve bitwise identical across job counts (it is a different,
    Jacobi-within-class schedule from {!solve}'s Gauss-Seidel sweep, so
    the two solvers' trajectories differ; both remain deterministic).
    Decoding parallelizes the same way.  [jobs] resolves via
    {!Netdiv_par.Pool.resolve_jobs}. *)
