(** Discrete pairwise Markov Random Fields (energy form).

    A model over nodes [0..n-1]; node [i] takes a label in
    [0 .. label_count i - 1].  The energy of a labeling [x] is

    {v E(x) = sum_i unary_i(x_i) + sum_{e=(u,v)} pairwise_e(x_u, x_v) v}

    which is the optimization function (1) of the paper.  MAP inference
    minimizes [E].  Models are assembled with {!Builder} and frozen; solvers
    ({!Trws}, {!Bp}, {!Icm}, {!Brute}) operate on the frozen form.

    Pairwise cost arrays are row-major by the {e first} endpoint's label:
    entry [x_u * k_v + x_v].  The arrays are {e not} copied, and
    {!Builder.build} hash-conses them: edges whose matrices have equal
    content share one interned table, and all distinct tables are packed
    into a single flat array for the solver hot loops.  Memory for the
    pairwise terms is therefore O(distinct tables · L²) instead of
    O(edges · L²) — in a diversification MRF almost every edge carries
    one of a handful of similarity tables. *)

type t

module Builder : sig
  type b

  val create : label_counts:int array -> b
  (** One entry per node; every count must be at least 1. *)

  val reserve_edges : b -> int -> unit
  (** Presizes the builder's compact edge slots (three ints per edge,
      otherwise grown by doubling) — call with the expected edge count
      before streaming a large instance so the builder never
      reallocates.  Never shrinks. *)

  val add_unary : b -> node:int -> label:int -> float -> unit
  (** Adds (accumulates) a cost onto one unary entry. *)

  val set_unary : b -> node:int -> float array -> unit
  (** Replaces the whole unary vector of [node]; length must equal the
      node's label count. *)

  val add_edge : b -> int -> int -> float array -> unit
  (** [add_edge b u v cost] adds an edge with pairwise cost matrix [cost]
      of size [k_u * k_v], row-major by [u]'s label.  The matrix is shared,
      not copied, and hash-consed immediately: an edge whose matrix has
      the shape and content of an earlier one stores only the earlier
      table's id, so a streamed million-edge instance holds three ints
      per edge plus one table per {e distinct} matrix.  Parallel edges
      are allowed (their costs add).
      @raise Invalid_argument on self-edges or size mismatch. *)

  val build : ?specialize:bool -> b -> t
  (** Freezes the model.  The builder must not be reused afterwards.
      Each distinct pairwise table is classified once for the
      structure-specialized message kernels (see {!Kernel}); pass
      [~specialize:false] to force every table onto the generic O(L²)
      kernel — useful only for testing and benchmarking the kernels
      against each other, since the specialized paths are bitwise
      equivalent. *)
end

val n_nodes : t -> int
val n_edges : t -> int
val label_count : t -> int -> int

val max_label_count : t -> int

val unary : t -> node:int -> label:int -> float

val edge_endpoints : t -> int -> int * int
val edge_cost : t -> int -> float array
(** The interned pairwise matrix of an edge — do not mutate.  Edges
    whose matrices were equal at {!Builder.add_edge} time return the
    {e same} (physically equal) array. *)

val edge_table_id : t -> int -> int
(** Id of the interned table carried by an edge, in
    [0 .. n_tables - 1].  Two edges share an id iff their cost matrices
    had equal content. *)

val n_tables : t -> int
(** Number of distinct pairwise tables after interning. *)

val pot_words : t -> int
(** Total [float] entries stored for pairwise tables after interning. *)

val pot_words_unshared : t -> int
(** Total [float] entries the pairwise tables would occupy without
    interning (one copy per edge); [pot_words t <=
    pot_words_unshared t] always holds. *)

val table_class : t -> int -> Kernel.t
(** Message-kernel classification of an interned table (see
    {!Kernel.classify}); indexed by table id in [0 .. n_tables - 1]. *)

val specialized : t -> bool
(** Whether any table runs a structure-specialized kernel. *)

val despecialize : t -> t
(** A copy of the model with every table classified {!Kernel.Generic}.
    Potential storage is shared with the original; results are bitwise
    identical by the kernel equivalence contract.  This is the
    middle rung of the anytime harness's degradation ladder: when a
    specialized solve keeps failing, retry on the generic kernels
    before falling back to ICM. *)

type kernel_counts = {
  potts_tables : int;
  sparse_tables : int;
  generic_tables : int;
  potts_edges : int;
  sparse_edges : int;
  generic_edges : int;
}

val kernel_counts : t -> kernel_counts
(** Census of kernel classifications over distinct tables and over
    edges (each edge counted under its interned table's class). *)

val energy : t -> int array -> float
(** [energy t x] evaluates E(x).
    @raise Invalid_argument if [x] has wrong length or out-of-range labels. *)

val incident : t -> int -> (int * bool) array
(** [incident t i] lists the edges touching node [i] as [(edge, i_is_u)]
    pairs, sorted by the id of the opposite endpoint.  Owned by the model;
    do not mutate. *)

val opposite : t -> edge:int -> int -> int
(** [opposite t ~edge i] is the other endpoint of [edge]. *)

val validate_labeling : t -> int array -> unit
(** @raise Invalid_argument when the labeling is malformed. *)

val greedy_coloring : t -> int array * int
(** [greedy_coloring t] returns [(color, ncolors)]: a proper coloring of
    the model's node graph ([color.(u) <> color.(v)] for every edge
    [(u, v)]) with colors in [0 .. ncolors - 1], computed by
    deterministic greedy first-fit in node order — O(n + m), at most
    (max degree + 1) colors.  Nodes sharing a color are pairwise
    non-adjacent, so their message updates touch disjoint slab slots;
    chromatic BP ({!Bp.solve_chromatic}) runs each color class as one
    parallel region.  The result depends only on the frozen model,
    never on job counts. *)

val with_unaries : t -> float array -> t
(** [with_unaries t u] is [t] with its unary slab replaced by [u]
    (length must equal the current slab's).  Every other array is
    shared, and [u] is used directly, not copied — O(1) words.  This is
    the reparameterization hook the zoned solver uses to push per-round
    Lagrangian penalties into a zone submodel without rebuilding it. *)

val pp_stats : Format.formatter -> t -> unit

(** {2 Memory accounting} *)

type footprint = {
  f_nodes : int;
  f_edges : int;
  f_tables : int;  (** distinct interned pairwise tables *)
  f_words : int;  (** resident words of the frozen compact model *)
  f_words_per_node : float;
  f_words_per_edge : float;
  f_flat_words : int;
      (** words the same model would occupy in the pre-compact layout
          (boxed per-edge records, unshared cost matrices, per-node
          adjacency lists of boxed pairs) *)
}

val footprint : t -> footprint
(** Exact word counts of the frozen model (headers included, floats
    unboxed), plus what the replaced boxed layout would have used — the
    compaction win is [f_flat_words / f_words]. *)

val pp_footprint : Format.formatter -> footprint -> unit

val estimate_words : nodes:int -> edges:int -> max_labels:int -> tables:int -> int
(** Pre-build sizing for fail-fast memory budgeting: words a compact
    model of the given shape will occupy {e plus} the TRW-S solve-time
    slabs (messages, reparameterized unaries, bound aggregation) — the
    peak commitment of building and solving the instance.  Multiply by
    8 for bytes. *)

(**/**)

(** Flat CSR views for the solvers in this library: zero-allocation
    access to the frozen storage.  [row_ptr] is [i_inc_off], and for an
    incidence slot [k] in [row_start t i .. row_stop t i - 1],
    {!Compact.neighbor} is the opposite endpoint (one load from the
    neighbor column), {!Compact.edge} the edge id and
    {!Compact.node_is_u} the orientation.  All arrays are owned by the
    model — read-only, safe to share across domains. *)
module Compact : sig
  type arrays = {
    i_labels : int array;      (** label count per node *)
    i_unary_off : int array;   (** n+1 prefix sums over labels *)
    i_unary : float array;     (** flat unary costs *)
    i_eu : int array;          (** edge endpoints, u side *)
    i_ev : int array;          (** edge endpoints, v side *)
    i_etab : int array;        (** per-edge interned table id *)
    i_pot_off : int array;     (** n_tables+1 prefix sums into [i_pot] *)
    i_pot : float array;       (** flat concatenation of distinct tables *)
    i_inc_off : int array;     (** n+1 CSR row pointers into [i_inc] *)
    i_inc : int array;         (** incidences: edge*2 + (1 if node=u) *)
    i_col : int array;         (** opposite endpoint per incidence slot *)
    i_classes : Kernel.t array;  (** per-table kernel classification *)
  }

  val arrays : t -> arrays
  (** The solvers destructure this once per solve and then index raw
      arrays in their hot loops.  The pairwise entry of edge [e] for
      labels [(xu, xv)] is
      [i_pot.(i_pot_off.(i_etab.(e)) + xu * k_v + xv)]. *)

  val degree : t -> int -> int
  val row_start : t -> int -> int
  val row_stop : t -> int -> int

  val neighbor : t -> int -> int
  (** Opposite endpoint at incidence slot [k] — keep the result scalar
      in sweep bodies; packing it into a tuple or record re-boxes what
      this accessor exists to keep flat (netdiv-lint flags it). *)

  val edge : t -> int -> int
  val node_is_u : t -> int -> bool
end

(**/**)
