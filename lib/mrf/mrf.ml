type t = {
  n : int;
  labels : int array;          (* label count per node *)
  unary_off : int array;       (* n+1 prefix sums over labels *)
  unary : float array;         (* flat unary costs *)
  m : int;
  eu : int array;              (* edge endpoints, u side *)
  ev : int array;              (* edge endpoints, v side *)
  etab : int array;            (* per-edge id of its interned table *)
  tables : float array array;  (* distinct pairwise tables (caller arrays) *)
  pot_off : int array;         (* n_tables+1 prefix sums into pot *)
  pot : float array;           (* flat concatenation of the tables *)
  inc_off : int array;         (* n+1 CSR offsets into inc *)
  inc : int array;             (* encoded incidences: edge*2 + (1 if node=u) *)
  classes : Kernel.t array;    (* per-table message-kernel classification *)
}

type internals = {
  i_labels : int array;
  i_unary_off : int array;
  i_unary : float array;
  i_eu : int array;
  i_ev : int array;
  i_etab : int array;
  i_pot_off : int array;
  i_pot : float array;
  i_inc_off : int array;
  i_inc : int array;
  i_classes : Kernel.t array;
}

(* Shape-and-content-based interning of pairwise tables.  Physical
   equality is a fast path; the structural fallback uses polymorphic
   [compare] so two nan entries at the same position still unify.  The
   key carries [kv] (the column count) because a table is only
   meaningful together with its shape: the kernel classification of a
   2x3 matrix differs from that of the same six floats read as 3x2, so
   edges may share a table id only when both shape and content agree. *)
module Table_key = struct
  type t = int * float array

  let equal (kva, a) (kvb, b) =
    kva = kvb
    && (a == b || (Array.length a = Array.length b && compare a b = 0))

  let hash ((kv, a) : t) = Hashtbl.hash (kv, Hashtbl.hash a)
end

module Table_tbl = Hashtbl.Make (Table_key)

module Builder = struct
  type b = {
    b_labels : int array;
    b_unary_off : int array;
    b_unary : float array;
    mutable b_edges : (int * int * float array) list;
    mutable b_m : int;
    mutable built : bool;
  }

  let create ~label_counts =
    let n = Array.length label_counts in
    Array.iteri
      (fun i k ->
        if k < 1 then
          invalid_arg
            (Printf.sprintf "Mrf.Builder.create: node %d has %d labels" i k))
      label_counts;
    let off = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      off.(i + 1) <- off.(i) + label_counts.(i)
    done;
    {
      b_labels = Array.copy label_counts;
      b_unary_off = off;
      b_unary = Array.make off.(n) 0.0;
      b_edges = [];
      b_m = 0;
      built = false;
    }

  let check_node b node =
    if node < 0 || node >= Array.length b.b_labels then
      invalid_arg (Printf.sprintf "Mrf.Builder: node %d out of range" node)

  let add_unary b ~node ~label cost =
    check_node b node;
    if label < 0 || label >= b.b_labels.(node) then
      invalid_arg
        (Printf.sprintf "Mrf.Builder.add_unary: label %d out of range" label);
    let k = b.b_unary_off.(node) + label in
    b.b_unary.(k) <- b.b_unary.(k) +. cost

  let set_unary b ~node costs =
    check_node b node;
    if Array.length costs <> b.b_labels.(node) then
      invalid_arg "Mrf.Builder.set_unary: wrong vector length";
    Array.blit costs 0 b.b_unary b.b_unary_off.(node) (Array.length costs)

  let add_edge b u v cost =
    check_node b u;
    check_node b v;
    if u = v then invalid_arg "Mrf.Builder.add_edge: self-edge";
    if Array.length cost <> b.b_labels.(u) * b.b_labels.(v) then
      invalid_arg "Mrf.Builder.add_edge: cost matrix size mismatch";
    b.b_edges <- (u, v, cost) :: b.b_edges;
    b.b_m <- b.b_m + 1

  let build ?(specialize = true) b =
    if b.built then invalid_arg "Mrf.Builder.build: builder already used";
    b.built <- true;
    let n = Array.length b.b_labels in
    let m = b.b_m in
    let eu = Array.make m 0 and ev = Array.make m 0 in
    let ecost = Array.make m [||] in
    List.iteri
      (fun idx (u, v, cost) ->
        let e = m - 1 - idx in
        eu.(e) <- u;
        ev.(e) <- v;
        ecost.(e) <- cost)
      b.b_edges;
    (* Hash-cons the pairwise tables: edges carrying equal-shape,
       equal-content matrices share one table id, and the distinct
       tables are packed into a single flat array for the solver hot
       loops.  Table ids are assigned in first-use edge order, so they
       depend only on the sequence of [add_edge] calls. *)
    let interned = Table_tbl.create (max 16 (m / 4)) in
    let rev_tables = ref [] in
    let rev_shapes = ref [] in
    let n_tables = ref 0 in
    let etab = Array.make m 0 in
    for e = 0 to m - 1 do
      let cost = ecost.(e) in
      let kv = b.b_labels.(ev.(e)) in
      match Table_tbl.find_opt interned (kv, cost) with
      | Some id -> etab.(e) <- id
      | None ->
          let id = !n_tables in
          incr n_tables;
          Table_tbl.add interned (kv, cost) id;
          rev_tables := cost :: !rev_tables;
          rev_shapes := (b.b_labels.(eu.(e)), kv) :: !rev_shapes;
          etab.(e) <- id
    done;
    let tables = Array.of_list (List.rev !rev_tables) in
    let shapes = Array.of_list (List.rev !rev_shapes) in
    (* Classify each distinct table once: the solvers dispatch every
       message update on this tag, replacing the O(L^2) scan with an
       O(L) Potts or O(L + nnz) sparse kernel where the structure
       permits (see kernel.mli). *)
    let classes =
      if specialize then
        Array.mapi
          (fun id tab ->
            let ku, kv = shapes.(id) in
            Kernel.classify ~ku ~kv tab)
          tables
      else Array.map (fun _ -> Kernel.Generic) tables
    in
    let pot_off = Array.make (!n_tables + 1) 0 in
    for id = 0 to !n_tables - 1 do
      pot_off.(id + 1) <- pot_off.(id) + Array.length tables.(id)
    done;
    let pot = Array.make pot_off.(!n_tables) 0.0 in
    Array.iteri
      (fun id tab -> Array.blit tab 0 pot pot_off.(id) (Array.length tab))
      tables;
    (* incidence CSR, sorted per node by opposite endpoint id *)
    let deg = Array.make n 0 in
    for e = 0 to m - 1 do
      deg.(eu.(e)) <- deg.(eu.(e)) + 1;
      deg.(ev.(e)) <- deg.(ev.(e)) + 1
    done;
    let inc_off = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      inc_off.(i + 1) <- inc_off.(i) + deg.(i)
    done;
    let inc = Array.make inc_off.(n) 0 in
    let cursor = Array.copy inc_off in
    for e = 0 to m - 1 do
      inc.(cursor.(eu.(e))) <- (e * 2) + 1;
      cursor.(eu.(e)) <- cursor.(eu.(e)) + 1;
      inc.(cursor.(ev.(e))) <- e * 2;
      cursor.(ev.(e)) <- cursor.(ev.(e)) + 1
    done;
    (* sort each node's slice by opposite endpoint, then edge id *)
    let opposite_of code =
      let e = code / 2 in
      if code land 1 = 1 then ev.(e) else eu.(e)
    in
    for i = 0 to n - 1 do
      let lo = inc_off.(i) and hi = inc_off.(i + 1) in
      let slice = Array.sub inc lo (hi - lo) in
      Array.sort
        (fun a b ->
          let c = compare (opposite_of a) (opposite_of b) in
          if c <> 0 then c else compare a b)
        slice;
      Array.blit slice 0 inc lo (hi - lo)
    done;
    {
      n;
      labels = b.b_labels;
      unary_off = b.b_unary_off;
      unary = b.b_unary;
      m;
      eu;
      ev;
      etab;
      tables;
      pot_off;
      pot;
      inc_off;
      inc;
      classes;
    }
end

let n_nodes t = t.n
let n_edges t = t.m
let label_count t i = t.labels.(i)

let max_label_count t = Array.fold_left max 1 t.labels

let unary t ~node ~label = t.unary.(t.unary_off.(node) + label)

let edge_endpoints t e = (t.eu.(e), t.ev.(e))
let edge_cost t e = t.tables.(t.etab.(e))
let edge_table_id t e = t.etab.(e)

let n_tables t = Array.length t.tables
let pot_words t = Array.length t.pot

let table_class t id = t.classes.(id)

let specialized t =
  Array.exists (function Kernel.Generic -> false | _ -> true) t.classes

(* Degradation rung for the anytime harness: same model, every table
   forced onto the generic O(L²) kernel.  Cheap (shares all potential
   storage with [t]) and bitwise-equivalent by the kernel contract —
   used when a specialized solve keeps failing and the harness wants to
   rule the specialized paths out. *)
let despecialize t =
  { t with classes = Array.map (fun _ -> Kernel.Generic) t.classes }

type kernel_counts = {
  potts_tables : int;
  sparse_tables : int;
  generic_tables : int;
  potts_edges : int;
  sparse_edges : int;
  generic_edges : int;
}

let kernel_counts t =
  let pt = ref 0 and st = ref 0 and gt = ref 0 in
  Array.iter
    (function
      | Kernel.Potts _ -> incr pt
      | Kernel.Const_sparse _ -> incr st
      | Kernel.Generic -> incr gt)
    t.classes;
  let pe = ref 0 and se = ref 0 and ge = ref 0 in
  for e = 0 to t.m - 1 do
    match t.classes.(t.etab.(e)) with
    | Kernel.Potts _ -> incr pe
    | Kernel.Const_sparse _ -> incr se
    | Kernel.Generic -> incr ge
  done;
  {
    potts_tables = !pt;
    sparse_tables = !st;
    generic_tables = !gt;
    potts_edges = !pe;
    sparse_edges = !se;
    generic_edges = !ge;
  }

let pot_words_unshared t =
  let acc = ref 0 in
  for e = 0 to t.m - 1 do
    let id = t.etab.(e) in
    acc := !acc + (t.pot_off.(id + 1) - t.pot_off.(id))
  done;
  !acc

let validate_labeling t x =
  if Array.length x <> t.n then
    invalid_arg "Mrf.validate_labeling: wrong length";
  Array.iteri
    (fun i xi ->
      if xi < 0 || xi >= t.labels.(i) then
        invalid_arg
          (Printf.sprintf "Mrf.validate_labeling: label %d at node %d" xi i))
    x

let energy t x =
  validate_labeling t x;
  let acc = ref 0.0 in
  for i = 0 to t.n - 1 do
    acc := !acc +. t.unary.(t.unary_off.(i) + x.(i))
  done;
  for e = 0 to t.m - 1 do
    let u = t.eu.(e) and v = t.ev.(e) in
    acc :=
      !acc
      +. t.pot.(t.pot_off.(t.etab.(e)) + (x.(u) * t.labels.(v)) + x.(v))
  done;
  !acc

let incident t i =
  Array.map
    (fun code -> (code / 2, code land 1 = 1))
    (Array.sub t.inc t.inc_off.(i) (t.inc_off.(i + 1) - t.inc_off.(i)))

let opposite t ~edge i =
  if t.eu.(edge) = i then t.ev.(edge)
  else if t.ev.(edge) = i then t.eu.(edge)
  else invalid_arg "Mrf.opposite: node not on edge"

(* Greedy first-fit coloring in node order.  Deterministic: colors
   depend only on the frozen incidence structure, never on job counts,
   so the chromatic-BP schedule built on top inherits the pool's
   reproducibility contract.  [mark] is stamped with the current node id
   instead of being cleared between nodes, keeping the pass O(n + m). *)
let greedy_coloring t =
  let n = t.n in
  let color = Array.make n (-1) in
  let ncolors = ref 0 in
  (* first-fit needs at most (max degree + 1) <= n colors *)
  let mark = Array.make (n + 1) (-1) in
  for i = 0 to n - 1 do
    let lo = t.inc_off.(i) and hi = t.inc_off.(i + 1) in
    for k = lo to hi - 1 do
      let code = t.inc.(k) in
      let e = code / 2 in
      let j = if code land 1 = 1 then t.ev.(e) else t.eu.(e) in
      let cj = color.(j) in
      if cj >= 0 then mark.(cj) <- i
    done;
    let c = ref 0 in
    while mark.(!c) = i do
      incr c
    done;
    color.(i) <- !c;
    if !c >= !ncolors then ncolors := !c + 1
  done;
  (color, max 1 !ncolors)

(* Internal accessors used by the solvers in this library; exposed through
   a semi-private interface. *)
let internal_arrays t =
  {
    i_labels = t.labels;
    i_unary_off = t.unary_off;
    i_unary = t.unary;
    i_eu = t.eu;
    i_ev = t.ev;
    i_etab = t.etab;
    i_pot_off = t.pot_off;
    i_pot = t.pot;
    i_inc_off = t.inc_off;
    i_inc = t.inc;
    i_classes = t.classes;
  }

let pp_stats ppf t =
  let k = kernel_counts t in
  Format.fprintf ppf
    "mrf: %d nodes, %d edges, labels max %d, unary entries %d, \
     pairwise tables %d (%d words interned, %d unshared), kernels \
     %d potts / %d sparse / %d generic tables (%d/%d/%d edges)"
    t.n t.m (max_label_count t)
    t.unary_off.(t.n)
    (n_tables t) (pot_words t) (pot_words_unshared t)
    k.potts_tables k.sparse_tables k.generic_tables k.potts_edges
    k.sparse_edges k.generic_edges
