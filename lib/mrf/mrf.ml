type t = {
  n : int;
  labels : int array;          (* label count per node *)
  unary_off : int array;       (* n+1 prefix sums over labels *)
  unary : float array;         (* flat unary costs *)
  m : int;
  eu : int array;              (* edge endpoints, u side *)
  ev : int array;              (* edge endpoints, v side *)
  etab : int array;            (* per-edge id of its interned table *)
  tables : float array array;  (* distinct pairwise tables (caller arrays) *)
  pot_off : int array;         (* n_tables+1 prefix sums into pot *)
  pot : float array;           (* flat concatenation of the tables *)
  inc_off : int array;         (* n+1 CSR offsets into inc *)
  inc : int array;             (* encoded incidences: edge*2 + (1 if node=u) *)
  col : int array;             (* opposite endpoint per incidence slot *)
  classes : Kernel.t array;    (* per-table message-kernel classification *)
}

(* Shape-and-content-based interning of pairwise tables.  Physical
   equality is a fast path; the structural fallback uses polymorphic
   [compare] so two nan entries at the same position still unify.  The
   key carries [kv] (the column count) because a table is only
   meaningful together with its shape: the kernel classification of a
   2x3 matrix differs from that of the same six floats read as 3x2, so
   edges may share a table id only when both shape and content agree. *)
module Table_key = struct
  type t = int * float array

  let equal (kva, a) (kvb, b) =
    kva = kvb
    && (a == b || (Array.length a = Array.length b && compare a b = 0))

  let hash ((kv, a) : t) = Hashtbl.hash (kv, Hashtbl.hash a)
end

module Table_tbl = Hashtbl.Make (Table_key)

module Builder = struct
  type b = {
    b_labels : int array;
    b_unary_off : int array;
    b_unary : float array;
    (* Compact growable edge storage: three parallel int slots per edge
       instead of a boxed (u, v, cost) cons list.  At 100k-host scale the
       transient list (~12 words/edge) would outweigh the frozen model;
       the slots are exactly what the frozen form keeps. *)
    mutable b_eu : int array;
    mutable b_ev : int array;
    mutable b_etab : int array;
    mutable b_m : int;
    (* Pairwise tables are interned as edges arrive.  Ids are assigned in
       first-use add_edge order — the same order the historical
       build-time pass produced, so frozen models are bit-identical. *)
    b_interned : int Table_tbl.t;
    mutable b_tables : float array array;
    mutable b_sku : int array;   (* row count of table id *)
    mutable b_skv : int array;   (* column count of table id *)
    mutable b_ntab : int;
    mutable built : bool;
  }

  let create ~label_counts =
    let edges_hint = 0 in
    let n = Array.length label_counts in
    Array.iteri
      (fun i k ->
        if k < 1 then
          invalid_arg
            (Printf.sprintf "Mrf.Builder.create: node %d has %d labels" i k))
      label_counts;
    let off = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      off.(i + 1) <- off.(i) + label_counts.(i)
    done;
    let cap = max 0 edges_hint in
    {
      b_labels = Array.copy label_counts;
      b_unary_off = off;
      b_unary = Array.make off.(n) 0.0;
      b_eu = Array.make cap 0;
      b_ev = Array.make cap 0;
      b_etab = Array.make cap 0;
      b_m = 0;
      b_interned = Table_tbl.create 16;
      b_tables = [||];
      b_sku = [||];
      b_skv = [||];
      b_ntab = 0;
      built = false;
    }

  let check_node b node =
    if node < 0 || node >= Array.length b.b_labels then
      invalid_arg (Printf.sprintf "Mrf.Builder: node %d out of range" node)

  let add_unary b ~node ~label cost =
    check_node b node;
    if label < 0 || label >= b.b_labels.(node) then
      invalid_arg
        (Printf.sprintf "Mrf.Builder.add_unary: label %d out of range" label);
    let k = b.b_unary_off.(node) + label in
    b.b_unary.(k) <- b.b_unary.(k) +. cost

  let set_unary b ~node costs =
    check_node b node;
    if Array.length costs <> b.b_labels.(node) then
      invalid_arg "Mrf.Builder.set_unary: wrong vector length";
    Array.blit costs 0 b.b_unary b.b_unary_off.(node) (Array.length costs)

  let grow_edges_to b cap' =
    let g a =
      let a' = Array.make cap' 0 in
      Array.blit a 0 a' 0 b.b_m;
      a'
    in
    b.b_eu <- g b.b_eu;
    b.b_ev <- g b.b_ev;
    b.b_etab <- g b.b_etab

  let grow_edges b = grow_edges_to b (max 8 (2 * Array.length b.b_eu))

  (* Presize the edge slots for a streamed instance of known size, so
     the builder never reallocates mid-stream. *)
  let reserve_edges b hint =
    if hint > Array.length b.b_eu then grow_edges_to b hint

  let intern_table b ~ku ~kv cost =
    match Table_tbl.find_opt b.b_interned (kv, cost) with
    | Some id -> id
    | None ->
        let id = b.b_ntab in
        if id = Array.length b.b_tables then begin
          let cap' = max 8 (2 * id) in
          let gt = Array.make cap' [||] in
          Array.blit b.b_tables 0 gt 0 id;
          b.b_tables <- gt;
          let gi a =
            let a' = Array.make cap' 0 in
            Array.blit a 0 a' 0 id;
            a'
          in
          b.b_sku <- gi b.b_sku;
          b.b_skv <- gi b.b_skv
        end;
        Table_tbl.add b.b_interned (kv, cost) id;
        b.b_tables.(id) <- cost;
        b.b_sku.(id) <- ku;
        b.b_skv.(id) <- kv;
        b.b_ntab <- id + 1;
        id

  let add_edge b u v cost =
    check_node b u;
    check_node b v;
    if u = v then invalid_arg "Mrf.Builder.add_edge: self-edge";
    if Array.length cost <> b.b_labels.(u) * b.b_labels.(v) then
      invalid_arg "Mrf.Builder.add_edge: cost matrix size mismatch";
    if b.b_m = Array.length b.b_eu then grow_edges b;
    let id = intern_table b ~ku:b.b_labels.(u) ~kv:b.b_labels.(v) cost in
    b.b_eu.(b.b_m) <- u;
    b.b_ev.(b.b_m) <- v;
    b.b_etab.(b.b_m) <- id;
    b.b_m <- b.b_m + 1

  let build ?(specialize = true) b =
    if b.built then invalid_arg "Mrf.Builder.build: builder already used";
    b.built <- true;
    let n = Array.length b.b_labels in
    let m = b.b_m in
    (* The builder already holds the frozen layout: trim the growable
       slots to size.  Tables were hash-consed at [add_edge] time —
       edges carrying equal-shape, equal-content matrices share one
       table id, assigned in first-use edge order, so ids depend only on
       the sequence of [add_edge] calls. *)
    let trim a = if Array.length a = m then a else Array.sub a 0 m in
    let eu = trim b.b_eu and ev = trim b.b_ev and etab = trim b.b_etab in
    let n_tables = b.b_ntab in
    let tables = Array.sub b.b_tables 0 n_tables in
    (* Classify each distinct table once: the solvers dispatch every
       message update on this tag, replacing the O(L^2) scan with an
       O(L) Potts or O(L + nnz) sparse kernel where the structure
       permits (see kernel.mli). *)
    let classes =
      if specialize then
        Array.mapi
          (fun id tab -> Kernel.classify ~ku:b.b_sku.(id) ~kv:b.b_skv.(id) tab)
          tables
      else Array.map (fun _ -> Kernel.Generic) tables
    in
    let pot_off = Array.make (n_tables + 1) 0 in
    for id = 0 to n_tables - 1 do
      pot_off.(id + 1) <- pot_off.(id) + Array.length tables.(id)
    done;
    let pot = Array.make pot_off.(n_tables) 0.0 in
    Array.iteri
      (fun id tab -> Array.blit tab 0 pot pot_off.(id) (Array.length tab))
      tables;
    (* incidence CSR, sorted per node by opposite endpoint id *)
    let deg = Array.make n 0 in
    for e = 0 to m - 1 do
      deg.(eu.(e)) <- deg.(eu.(e)) + 1;
      deg.(ev.(e)) <- deg.(ev.(e)) + 1
    done;
    let inc_off = Array.make (n + 1) 0 in
    for i = 0 to n - 1 do
      inc_off.(i + 1) <- inc_off.(i) + deg.(i)
    done;
    let inc = Array.make inc_off.(n) 0 in
    let cursor = Array.copy inc_off in
    for e = 0 to m - 1 do
      inc.(cursor.(eu.(e))) <- (e * 2) + 1;
      cursor.(eu.(e)) <- cursor.(eu.(e)) + 1;
      inc.(cursor.(ev.(e))) <- e * 2;
      cursor.(ev.(e)) <- cursor.(ev.(e)) + 1
    done;
    (* sort each node's slice by opposite endpoint, then edge id *)
    let opposite_of code =
      let e = code / 2 in
      if code land 1 = 1 then ev.(e) else eu.(e)
    in
    for i = 0 to n - 1 do
      let lo = inc_off.(i) and hi = inc_off.(i + 1) in
      let slice = Array.sub inc lo (hi - lo) in
      Array.sort
        (fun a b ->
          let c = compare (opposite_of a) (opposite_of b) in
          if c <> 0 then c else compare a b)
        slice;
      Array.blit slice 0 inc lo (hi - lo)
    done;
    (* CSR neighbor column: the opposite endpoint of each incidence
       slot, so hot loops reach a neighbor id in one load instead of a
       code decode plus a dependent eu/ev load. *)
    let col = Array.make inc_off.(n) 0 in
    for k = 0 to inc_off.(n) - 1 do
      col.(k) <- opposite_of inc.(k)
    done;
    {
      n;
      labels = b.b_labels;
      unary_off = b.b_unary_off;
      unary = b.b_unary;
      m;
      eu;
      ev;
      etab;
      tables;
      pot_off;
      pot;
      inc_off;
      inc;
      col;
      classes;
    }
end

let n_nodes t = t.n
let n_edges t = t.m
let label_count t i = t.labels.(i)

let max_label_count t = Array.fold_left max 1 t.labels

let unary t ~node ~label = t.unary.(t.unary_off.(node) + label)

let edge_endpoints t e = (t.eu.(e), t.ev.(e))
let edge_cost t e = t.tables.(t.etab.(e))
let edge_table_id t e = t.etab.(e)

let n_tables t = Array.length t.tables
let pot_words t = Array.length t.pot

let table_class t id = t.classes.(id)

let specialized t =
  Array.exists (function Kernel.Generic -> false | _ -> true) t.classes

(* Degradation rung for the anytime harness: same model, every table
   forced onto the generic O(L²) kernel.  Cheap (shares all potential
   storage with [t]) and bitwise-equivalent by the kernel contract —
   used when a specialized solve keeps failing and the harness wants to
   rule the specialized paths out. *)
let despecialize t =
  { t with classes = Array.map (fun _ -> Kernel.Generic) t.classes }

type kernel_counts = {
  potts_tables : int;
  sparse_tables : int;
  generic_tables : int;
  potts_edges : int;
  sparse_edges : int;
  generic_edges : int;
}

let kernel_counts t =
  let pt = ref 0 and st = ref 0 and gt = ref 0 in
  Array.iter
    (function
      | Kernel.Potts _ -> incr pt
      | Kernel.Const_sparse _ -> incr st
      | Kernel.Generic -> incr gt)
    t.classes;
  let pe = ref 0 and se = ref 0 and ge = ref 0 in
  for e = 0 to t.m - 1 do
    match t.classes.(t.etab.(e)) with
    | Kernel.Potts _ -> incr pe
    | Kernel.Const_sparse _ -> incr se
    | Kernel.Generic -> incr ge
  done;
  {
    potts_tables = !pt;
    sparse_tables = !st;
    generic_tables = !gt;
    potts_edges = !pe;
    sparse_edges = !se;
    generic_edges = !ge;
  }

let pot_words_unshared t =
  let acc = ref 0 in
  for e = 0 to t.m - 1 do
    let id = t.etab.(e) in
    acc := !acc + (t.pot_off.(id + 1) - t.pot_off.(id))
  done;
  !acc

let validate_labeling t x =
  if Array.length x <> t.n then
    invalid_arg "Mrf.validate_labeling: wrong length";
  Array.iteri
    (fun i xi ->
      if xi < 0 || xi >= t.labels.(i) then
        invalid_arg
          (Printf.sprintf "Mrf.validate_labeling: label %d at node %d" xi i))
    x

let energy t x =
  validate_labeling t x;
  let acc = ref 0.0 in
  for i = 0 to t.n - 1 do
    acc := !acc +. t.unary.(t.unary_off.(i) + x.(i))
  done;
  for e = 0 to t.m - 1 do
    let u = t.eu.(e) and v = t.ev.(e) in
    acc :=
      !acc
      +. t.pot.(t.pot_off.(t.etab.(e)) + (x.(u) * t.labels.(v)) + x.(v))
  done;
  !acc

let incident t i =
  Array.map
    (fun code -> (code / 2, code land 1 = 1))
    (Array.sub t.inc t.inc_off.(i) (t.inc_off.(i + 1) - t.inc_off.(i)))

let opposite t ~edge i =
  if t.eu.(edge) = i then t.ev.(edge)
  else if t.ev.(edge) = i then t.eu.(edge)
  else invalid_arg "Mrf.opposite: node not on edge"

(* Greedy first-fit coloring in node order.  Deterministic: colors
   depend only on the frozen incidence structure, never on job counts,
   so the chromatic-BP schedule built on top inherits the pool's
   reproducibility contract.  [mark] is stamped with the current node id
   instead of being cleared between nodes, keeping the pass O(n + m). *)
let greedy_coloring t =
  let n = t.n in
  let color = Array.make n (-1) in
  let ncolors = ref 0 in
  (* first-fit needs at most (max degree + 1) <= n colors *)
  let mark = Array.make (n + 1) (-1) in
  for i = 0 to n - 1 do
    let lo = t.inc_off.(i) and hi = t.inc_off.(i + 1) in
    for k = lo to hi - 1 do
      let cj = color.(t.col.(k)) in
      if cj >= 0 then mark.(cj) <- i
    done;
    let c = ref 0 in
    while mark.(!c) = i do
      incr c
    done;
    color.(i) <- !c;
    if !c >= !ncolors then ncolors := !c + 1
  done;
  (color, max 1 !ncolors)

(* Reparameterization: same structure, different unary slab.  Shares
   every other array with [t]; the caller's array is used directly.
   This is what the zoned solver uses to push per-round Lagrangian
   penalties into a zone submodel without rebuilding it. *)
let with_unaries t u =
  if Array.length u <> Array.length t.unary then
    invalid_arg "Mrf.with_unaries: wrong unary length";
  { t with unary = u }

module Compact = struct
  type arrays = {
    i_labels : int array;
    i_unary_off : int array;
    i_unary : float array;
    i_eu : int array;
    i_ev : int array;
    i_etab : int array;
    i_pot_off : int array;
    i_pot : float array;
    i_inc_off : int array;
    i_inc : int array;
    i_col : int array;
    i_classes : Kernel.t array;
  }

  let arrays t =
    {
      i_labels = t.labels;
      i_unary_off = t.unary_off;
      i_unary = t.unary;
      i_eu = t.eu;
      i_ev = t.ev;
      i_etab = t.etab;
      i_pot_off = t.pot_off;
      i_pot = t.pot;
      i_inc_off = t.inc_off;
      i_inc = t.inc;
      i_col = t.col;
      i_classes = t.classes;
    }

  let[@inline] degree t i = t.inc_off.(i + 1) - t.inc_off.(i)
  let[@inline] row_start t i = t.inc_off.(i)
  let[@inline] row_stop t i = t.inc_off.(i + 1)
  let[@inline] neighbor t k = t.col.(k)
  let[@inline] edge t k = t.inc.(k) lsr 1
  let[@inline] node_is_u t k = t.inc.(k) land 1 = 1
end

(* ---- memory accounting ------------------------------------------------- *)

type footprint = {
  f_nodes : int;
  f_edges : int;
  f_tables : int;
  f_words : int;
  f_words_per_node : float;
  f_words_per_edge : float;
  f_flat_words : int;
}

(* one header word per array plus one word per element (floats are
   unboxed inside float arrays) *)
let words_of_len len = len + 1

let kernel_payload_words = function
  | Kernel.Generic -> 0
  | Kernel.Potts { diag; _ } -> 3 + words_of_len (Array.length diag)
  | Kernel.Const_sparse { col_idx; col_val; row_idx; row_val; _ } ->
      let nested a =
        Array.fold_left (fun acc x -> acc + words_of_len (Array.length x)) 1 a
      in
      8 + nested col_idx + nested col_val + nested row_idx + nested row_val

let footprint t =
  let compact =
    words_of_len t.n (* labels *)
    + words_of_len (t.n + 1) (* unary_off *)
    + words_of_len (Array.length t.unary)
    + (3 * words_of_len t.m) (* eu, ev, etab *)
    + words_of_len (Array.length t.pot_off)
    + words_of_len (Array.length t.pot)
    + words_of_len (t.n + 1) (* inc_off *)
    + (2 * words_of_len (Array.length t.inc)) (* inc + col *)
    (* the interned caller tables are retained alongside the flat copy *)
    + Array.fold_left
        (fun acc tab -> acc + words_of_len (Array.length tab))
        (words_of_len (Array.length t.tables))
        t.tables
    + Array.fold_left
        (fun acc c -> acc + kernel_payload_words c)
        (words_of_len (Array.length t.classes))
        t.classes
  in
  (* What the same model costs in the pre-compact layout this module
     replaced: a boxed (u, v, cost) record per edge in a cons list, an
     unshared cost matrix per edge, and per-node adjacency lists of
     boxed (edge, is_u) pairs.  Node-side storage is identical, so the
     ratio isolates the edge-structure win. *)
  let flat =
    words_of_len t.n
    + words_of_len (t.n + 1)
    + words_of_len (Array.length t.unary)
    + (t.m * (4 + 3)) (* 3-field edge block + cons cell *)
    + pot_words_unshared t
    + t.m (* header per unshared matrix copy *)
    + (2 * t.m * (3 + 3)) (* (edge, is_u) tuple + cons cell per incidence *)
  in
  {
    f_nodes = t.n;
    f_edges = t.m;
    f_tables = Array.length t.tables;
    f_words = compact;
    f_words_per_node = (if t.n = 0 then 0.0 else float compact /. float t.n);
    f_words_per_edge = (if t.m = 0 then 0.0 else float compact /. float t.m);
    f_flat_words = flat;
  }

let pp_footprint ppf f =
  Format.fprintf ppf
    "mrf footprint: %d nodes, %d edges, %d tables, %d words (%.1f/node, \
     %.1f/edge); flat layout would use %d words (%.1fx)"
    f.f_nodes f.f_edges f.f_tables f.f_words f.f_words_per_node
    f.f_words_per_edge f.f_flat_words
    (if f.f_words = 0 then 1.0 else float f.f_flat_words /. float f.f_words)

(* Pre-build sizing for fail-fast memory budgeting: the words a compact
   model of the given shape will occupy, plus the TRW-S solve-time slabs
   (messages, reparameterized unaries, bound aggregation) — the peak a
   [solve] on that model commits to. *)
let estimate_words ~nodes ~edges ~max_labels ~tables =
  let n = nodes and m = edges and l = max_labels in
  let model =
    (3 * (n + 1)) (* labels, unary_off, inc_off *)
    + (n * l) (* unary *)
    + (3 * m) (* eu, ev, etab *)
    + (tables + 1)
    + (2 * tables * l * l) (* flat pot + retained caller tables *)
    + (4 * m) (* inc + col *)
  in
  let solve =
    (2 * m * l) (* fw/bw message slabs *)
    + (2 * (m + 1)) (* per-direction offsets *)
    + (2 * n * l) (* reparameterized unary + bound aggregation slabs *)
    + (4 * n) (* chain bookkeeping, labeling, coloring scratch *)
  in
  model + solve

let pp_stats ppf t =
  let k = kernel_counts t in
  Format.fprintf ppf
    "mrf: %d nodes, %d edges, labels max %d, unary entries %d, \
     pairwise tables %d (%d words interned, %d unshared), kernels \
     %d potts / %d sparse / %d generic tables (%d/%d/%d edges)"
    t.n t.m (max_label_count t)
    t.unary_off.(t.n)
    (n_tables t) (pot_words t) (pot_words_unshared t)
    k.potts_tables k.sparse_tables k.generic_tables k.potts_edges
    k.sparse_edges k.generic_edges
