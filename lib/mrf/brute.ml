let search_space mrf =
  let acc = ref 1.0 in
  for i = 0 to Mrf.n_nodes mrf - 1 do
    acc := !acc *. float_of_int (Mrf.label_count mrf i)
  done;
  !acc

let solve ?(limit = 2_000_000) ?(interrupt = fun () -> false)
    ?(on_progress = fun ~iter:_ ~energy:_ ~bound:_ -> ()) mrf =
  if search_space mrf > float_of_int limit then
    invalid_arg "Brute.solve: search space too large";
  let run () =
    let n = Mrf.n_nodes mrf in
    let x = Array.make n 0 in
    let best = Array.make n 0 in
    let best_energy = ref (Mrf.energy mrf x) in
    let count = ref 1 in
    let complete = ref true in
    (* odometer enumeration *)
    let rec next i =
      if i < 0 then false
      else if x.(i) + 1 < Mrf.label_count mrf i then begin
        x.(i) <- x.(i) + 1;
        true
      end
      else begin
        x.(i) <- 0;
        next (i - 1)
      end
    in
    (try
       while next (n - 1) do
         if !count land 1023 = 0 then begin
           if interrupt () then begin
             complete := false;
             raise Exit
           end;
           on_progress ~iter:!count ~energy:!best_energy
             ~bound:neg_infinity
         end;
         incr count;
         let e = Mrf.energy mrf x in
         if e < !best_energy then begin
           best_energy := e;
           Array.blit x 0 best 0 n
         end
       done
     with Exit -> ());
    (best, !best_energy, !count, !complete)
  in
  let (labeling, energy, iterations, complete), runtime_s =
    Solver.timed run
  in
  {
    Solver.labeling;
    energy;
    lower_bound = (if complete then energy else neg_infinity);
    iterations;
    converged = complete;
    runtime_s;
  }
