(** Structure-specialized min-sum message kernels.

    The TRW-S/BP hot path computes, for every directed edge message, the
    min-sum reduction

    {v out(x_o) = min_{x_s} h(x_s) + V(x_s, x_o) v}

    over an interned pairwise table [V].  Done naively this is O(L²) per
    message, yet in a diversification MRF almost every edge carries one
    of a handful of highly structured tables.  This module classifies
    each distinct table {e once}, at intern time, and provides an
    allocation-free [update] that exploits the structure:

    - {b Potts / uniform-off-diagonal} (square, every off-diagonal entry
      equal): the diversity objective's dominant shape — a constant
      penalty when two hosts pick similar products, zero otherwise.
      O(L) per message via a global min plus per-label correction.
    - {b constant-plus-sparse} (a base value with few deviating
      entries, as produced by near-uniform Jaccard rows and big-M
      combination constraints with few exceptions): O(L·(d+1) + nnz)
      per message where [d] is the largest per-row/column deviation
      count.
    - {b generic}: the exact O(L²) scan, reading a precomputed [h]
      instead of recomputing it per inner iteration.

    All three kernels produce {e bitwise identical} messages: the
    specialized paths reorder only [min] reductions (associative and
    commutative for non-NaN floats) and perform the same [+.] on the
    same operands — monotonicity of IEEE rounding does the rest.  Any
    table containing a non-finite entry is classified [Generic] so that
    NaN propagation semantics never change.

    Message storage is {e unboxed}: [update] reads its reduction input
    from and writes its output into [floatarray] slabs ([Float.Array]),
    so solver message buffers are flat runs of doubles with no per-cell
    boxing and the kernels stream over contiguous memory.  The
    [( .%() )] / [( .%()<- )] index operators below are the shared
    accessors for those slabs. *)

external ( .%() ) : floatarray -> int -> float = "%floatarray_safe_get"
(** [slab.%(i)] — bounds-checked unboxed read from a float slab. *)

external ( .%()<- ) : floatarray -> int -> float -> unit
  = "%floatarray_safe_set"
(** [slab.%(i) <- v] — bounds-checked unboxed store into a float slab. *)

type t =
  | Potts of { off : float; diag : float array }
      (** Square [k×k]; [V(i,j) = off] for [i <> j], [diag.(i)] on the
          diagonal. *)
  | Const_sparse of {
      base : float;  (** the modal table entry *)
      nnz : int;  (** number of entries deviating from [base] *)
      max_line_nnz : int;
          (** largest deviation count of any single row or column *)
      col_idx : int array array;
          (** per output column [xv]: deviating rows [xu], ascending *)
      col_val : float array array;  (** matching table values *)
      row_idx : int array array;
          (** per output row [xu]: deviating columns [xv], ascending *)
      row_val : float array array;  (** matching table values *)
    }
  | Generic

val classify : ku:int -> kv:int -> float array -> t
(** [classify ~ku ~kv tab] inspects a row-major [ku*kv] table (entry
    [xu * kv + xv]) and returns the cheapest kernel whose estimated
    per-message cost beats the generic scan.  Tables that {e almost}
    qualify — one off-diagonal outlier, or deviation lines too dense to
    pay — come back [Generic].  Non-finite entries force [Generic]. *)

val kind_name : t -> string
(** ["potts"], ["const-sparse"] or ["generic"]. *)

val message_cost : t -> k_src:int -> k_out:int -> int
(** Estimated abstract work units (≈ flops) of one [update] call; used
    by callers to build {!Netdiv_par.Pool} cost hints. *)

type scratch = {
  h : floatarray;  (** caller-filled reduction input, length ≥ k_src *)
  fresh : floatarray;
      (** kernel output staging for damped updates (BP), length ≥ max L *)
  sel_v : floatarray;  (** internal: smallest-values selection buffer *)
  sel_i : int array;  (** internal: matching indices *)
}

val make_scratch : max_labels:int -> scratch
(** Preallocates every buffer [update] may need for label counts up to
    [max_labels]; one scratch per solver {e worker} (each parallel chunk
    owns its own), reused across all messages so the hot path never
    allocates. *)

val update :
  t ->
  pot:float array ->
  p0:int ->
  src_is_u:bool ->
  k_src:int ->
  k_out:int ->
  scratch:scratch ->
  out:floatarray ->
  out_off:int ->
  float
(** [update cls ~pot ~p0 ~src_is_u ~k_src ~k_out ~scratch ~out ~out_off]
    writes [out.(out_off + x_o) = min_{x_s} scratch.h.(x_s) + V(x_s, x_o)]
    for every output label and returns the minimum over outputs (for the
    caller's normalization).  [V] lives flat at [pot.(p0 ...)], row-major
    by the {e u} endpoint's label; [src_is_u] selects the orientation.
    The caller must have filled [scratch.h.(0 .. k_src-1)]. *)
