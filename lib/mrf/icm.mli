(** Iterated conditional modes (greedy local search baseline).

    Starting from a unary-greedy labeling (or a supplied one), repeatedly
    move each node to the label minimizing its local energy until a full
    sweep makes no change.  Fast, bound-free, and easily stuck in local
    minima — a natural lower baseline for the solver ablation. *)

type config = { max_sweeps : int }

val default_config : config
(** 100 sweeps. *)

val solve :
  ?config:config ->
  ?interrupt:(unit -> bool) ->
  ?on_progress:(iter:int -> energy:float -> bound:float -> unit) ->
  ?init:int array ->
  Mrf.t ->
  Solver.result
(** [interrupt] is polled once per sweep; on [true] the current labeling
    (greedy moves never increase energy) is returned.  [on_progress]
    fires after each sweep with [bound = neg_infinity]. *)
