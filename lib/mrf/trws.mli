(** Sequential tree-reweighted message passing (TRW-S).

    The solver the paper uses for optimal diversification (Section V-C),
    after Kolmogorov's convergent TRW-S with monotonic-chain weights: nodes
    are processed in index order; a forward sweep updates messages toward
    higher-indexed neighbours, a backward sweep mirrors it.  Each node's
    aggregated cost is weighted by [1 / max(#lower neighbours, #higher
    neighbours)], which makes the dual bound non-decreasing.

    The reported lower bound is the reparameterization bound
    [sum_i min θ̂_i + sum_e min θ̂_e], valid for any message state and tight
    on trees.  Labelings are decoded greedily in node order, conditioning on
    already-decoded lower neighbours (Kolmogorov's scheme). *)

type config = {
  max_iters : int;       (** cap on forward+backward sweep pairs *)
  tolerance : float;     (** stop when the bound improves less than this *)
  patience : int;        (** ... for this many consecutive iterations *)
  bound_every : int;     (** compute bound/decode every k iterations *)
}

val default_config : config
(** 100 iterations, tolerance 1e-7, patience 3, bound every iteration. *)

val solve :
  ?config:config ->
  ?interrupt:(unit -> bool) ->
  ?on_progress:(iter:int -> energy:float -> bound:float -> unit) ->
  Mrf.t ->
  Solver.result
(** Runs TRW-S and returns the best decoded labeling encountered, its
    energy, and the final lower bound.

    [interrupt] is polled once per forward/backward sweep pair; when it
    returns [true] the solver stops and returns the best labeling, energy
    and bound found so far (the anytime property — an initial decode
    happens before the first sweep, so the labeling is always feasible).
    [on_progress] fires after every bound computation with the running
    best energy and dual bound. *)

val solve_partitioned :
  ?config:config ->
  ?interrupt:(unit -> bool) ->
  ?on_progress:(iter:int -> energy:float -> bound:float -> unit) ->
  ?parts:int ->
  ?jobs:int ->
  Mrf.t ->
  Solver.result
(** Intra-component parallel TRW-S: the node ordering is split into
    [parts] contiguous partitions (default: 1 below 4096 nodes, 16
    above — a function of the model size {e only}).  Each half-sweep
    runs the partitions' intra-partition message updates in parallel on
    a persistent {!Netdiv_par.Pool.Team} — a message between two nodes
    of the same partition is written by exactly one partition, so chunk
    writes are disjoint by construction — then recomputes every
    cross-partition message sequentially in global node order (the
    deterministic boundary-merge pass).  The dual bound parallelizes the
    same way (per-node aggregation, then per-chain DP) and is summed in
    chain order, so bound, messages, decode and therefore energy depend
    only on [parts], never on the job count.  With [parts = 1] this is
    {e bitwise identical} to {!solve}.  Worker domains are created once
    per solve and parked between regions, so a 10µs partition phase
    costs a broadcast, not a domain spawn. *)

val solve_components :
  ?config:config ->
  ?interrupt:(unit -> bool) ->
  ?on_progress:(iter:int -> energy:float -> bound:float -> unit) ->
  ?jobs:int ->
  Mrf.t ->
  Solver.result
(** Like {!solve}, but decomposes the model into connected components
    and solves them on separate domains ([jobs] resolved by
    {!Netdiv_par.Pool.resolve_jobs}).  Since no message crosses between
    components, the merged result — labeling, energy sum, bound sum,
    max iteration count, conjunction of convergence flags — is
    independent of the job count.  With a single component this
    delegates to {!solve} when [jobs] is omitted, and to
    {!solve_partitioned} when the caller asked for parallelism — intra-
    component partitioning is exactly the schedule for the
    one-big-component case.  [interrupt] must be safe to call
    from multiple domains (wall-clock reads are; mutable counters are
    not); [on_progress] fires once, after the merge, when the model has
    more than one component. *)

val solve_zoned :
  ?config:config ->
  ?interrupt:(unit -> bool) ->
  ?on_progress:(iter:int -> energy:float -> bound:float -> unit) ->
  ?zones:int ->
  ?zone_of:int array ->
  ?rounds:int ->
  ?step:float ->
  ?jobs:int ->
  Mrf.t ->
  Solver.result
(** Block-coordinate zone decomposition (Lagrangian dual decomposition)
    for instances whose topology is nearly block-structured — the zoned
    ICS networks of the paper at 100k-host scale.

    The node set is split by [zone_of] (any per-node zone ids; renumbered
    densely in order of first appearance) or, when absent, into [zones]
    balanced connected blocks by deterministic BFS growth over the model
    adjacency (the MRF-side mirror of {!Netdiv_graph.Cut.greedy_partition};
    default zone count as {!solve_partitioned}'s parts).  Each zone slave
    owns its interior edges, unaries and the running boundary penalties;
    every boundary edge (u, v) is a two-variable slave
    [min pot(xu, xv) - lam_u(xu) - lam_v(xv)].  Per round, zone slaves
    are solved with {!solve} in parallel on a {!Netdiv_par.Pool.Team},
    then every boundary edge is reconciled {e sequentially in global
    edge order}: the multipliers of a disagreeing endpoint move one
    diminishing subgradient step ([step / round]).  The reported bound
    is [sum of zone bounds + sum of edge-slave minima] — a valid lower
    bound on the full model's optimum — and the reported labeling is the
    best concatenation of zone labelings seen (always feasible);
    [iterations] counts reconciliation rounds (at most [rounds], fewer
    when every boundary edge agrees and all zones converged, or when the
    primal-dual gap falls under [config.tolerance]).

    Determinism contract, as {!solve_partitioned}: the trajectory is a
    function of the zone map only — zone solves are independent, results
    land in per-zone slots, and multiplier updates run in global order —
    so results are invariant across job counts, and with a single zone
    this delegates to (and is bitwise identical to) {!solve}.  Memory
    peaks at one zone submodel plus message slabs per in-flight zone
    rather than the whole-model slabs of {!solve}. *)
