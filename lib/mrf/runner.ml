(* The anytime harness is the sanctioned wall-clock boundary: clock
   reads feed budgets, stall detection and reported timings only, and
   all of them go through the Netdiv_obs clock shim so harness timings
   and trace spans share one time base.  Which assignment is returned
   can depend on the clock solely when the caller explicitly passes a
   time budget; unbudgeted runs are clock-independent. *)

module Obs = Netdiv_obs.Obs
module Recorder = Netdiv_obs.Recorder
module Fault = Netdiv_fault.Fault

module Budget = struct
  type t = { seconds : float option; sweeps : int option }

  let unlimited = { seconds = None; sweeps = None }
  let seconds s = { seconds = Some s; sweeps = None }
  let sweeps n = { seconds = None; sweeps = Some n }
  let make ?seconds ?sweeps () = { seconds; sweeps }

  let pp ppf = function
    | { seconds = None; sweeps = None } ->
        Format.pp_print_string ppf "unlimited"
    | { seconds; sweeps } ->
        (match seconds with
        | Some s -> Format.fprintf ppf "%gs" s
        | None -> ());
        (match (seconds, sweeps) with
        | Some _, Some _ -> Format.pp_print_string ppf ", "
        | _ -> ());
        (match sweeps with
        | Some k -> Format.fprintf ppf "%d sweeps" k
        | None -> ())
end

type outcome =
  | Converged
  | Budget_exhausted
  | Stalled
  | Fell_back of string * outcome
  | Degraded of string * outcome

let rec pp_outcome ppf = function
  | Converged -> Format.pp_print_string ppf "converged"
  | Budget_exhausted -> Format.pp_print_string ppf "budget exhausted"
  | Stalled -> Format.pp_print_string ppf "stalled"
  | Fell_back (stage, rest) ->
      Format.fprintf ppf "fell back from %s; %a" stage pp_outcome rest
  | Degraded (rung, rest) ->
      Format.fprintf ppf "degraded to %s; %a" rung pp_outcome rest

let rec outcome_converged = function
  | Converged -> true
  | Budget_exhausted | Stalled -> false
  | Fell_back (_, rest) | Degraded (_, rest) -> outcome_converged rest

type stage = {
  name : string;
  solve :
    interrupt:(unit -> bool) ->
    on_progress:(iter:int -> energy:float -> bound:float -> unit) ->
    init:int array option ->
    Mrf.t ->
    Solver.result;
}

let stage_name s = s.name

(* [jobs = None] keeps the historical single-threaded solve; [Some j]
   routes through the per-component decomposition, whose result is
   job-count-invariant. *)
let trws_solve ?config ?jobs ~interrupt ~on_progress mrf =
  match jobs with
  | None -> Trws.solve ?config ~interrupt ~on_progress mrf
  | Some _ -> Trws.solve_components ?config ~interrupt ~on_progress ?jobs mrf

let trws ?config ?jobs () =
  {
    name = "trws";
    solve =
      (fun ~interrupt ~on_progress ~init:_ mrf ->
        trws_solve ?config ?jobs ~interrupt ~on_progress mrf);
  }

let trws_icm ?config ?icm_config ?jobs () =
  {
    name = "trws+icm";
    solve =
      (fun ~interrupt ~on_progress ~init:_ mrf ->
        let r = trws_solve ?config ?jobs ~interrupt ~on_progress mrf in
        let p =
          Icm.solve ?config:icm_config ~interrupt
            ~on_progress:(fun ~iter ~energy ~bound:_ ->
              on_progress ~iter ~energy ~bound:r.Solver.lower_bound)
            ~init:r.Solver.labeling mrf
        in
        let merged =
          if p.Solver.energy < r.Solver.energy then
            { p with Solver.lower_bound = r.Solver.lower_bound }
          else r
        in
        {
          merged with
          Solver.runtime_s = r.Solver.runtime_s +. p.Solver.runtime_s;
          iterations = r.Solver.iterations + p.Solver.iterations;
          converged = r.Solver.converged && p.Solver.converged;
        });
  }

(* As with TRW-S: [jobs = None] keeps the historical sequential sweep;
   [Some j] selects the chromatic schedule, whose result is job-count
   invariant (same coloring whatever [j]). *)
let bp ?config ?jobs () =
  {
    name = "bp";
    solve =
      (fun ~interrupt ~on_progress ~init:_ mrf ->
        match jobs with
        | None -> Bp.solve ?config ~interrupt ~on_progress mrf
        | Some _ -> Bp.solve_chromatic ?config ~interrupt ~on_progress ?jobs mrf);
  }

let icm ?config () =
  {
    name = "icm";
    solve =
      (fun ~interrupt ~on_progress ~init mrf ->
        Icm.solve ?config ~interrupt ~on_progress ?init mrf);
  }

let icm_restarts ?config ?(restarts = 4) ?(seed = 0x1c3)
    ?(strength = 0.25) ?jobs () =
  {
    name = "icm-restarts";
    solve =
      (fun ~interrupt ~on_progress ~init mrf ->
        if restarts <= 1 then
          Icm.solve ?config ~interrupt ~on_progress ?init mrf
        else begin
          let run () =
            (* restart 0 keeps the warm start untouched; later restarts
               perturb it (or draw a fresh random labeling) with an rng
               derived from the restart index alone, so the set of runs
               is identical for any job count *)
            let one r =
              let init_r =
                if r = 0 then init
                else begin
                  let rng =
                    Random.State.make
                      [| Netdiv_par.Pool.split_seed seed r |]
                  in
                  match init with
                  | Some x ->
                      let x = Array.copy x in
                      for i = 0 to Array.length x - 1 do
                        if Random.State.float rng 1.0 < strength then
                          x.(i) <-
                            Random.State.int rng (Mrf.label_count mrf i)
                      done;
                      Some x
                  | None ->
                      Some
                        (Array.init (Mrf.n_nodes mrf) (fun i ->
                             Random.State.int rng (Mrf.label_count mrf i)))
                end
              in
              (* no per-sweep on_progress: the harness progress closure
                 mutates caller state and is not safe off-domain *)
              Icm.solve ?config ~interrupt ?init:init_r mrf
            in
            (* ≈ a dozen ICM sweeps, each touching every (label, edge)
               slot once; lets the pool run smoke-sized restart batches
               inline instead of spawning domains *)
            let cost =
              12 * (Mrf.pot_words_unshared mrf + Mrf.n_nodes mrf)
            in
            let results =
              Netdiv_par.Pool.map_range ?jobs ~cost ~lo:0 ~hi:restarts one
            in
            let best = ref results.(0) in
            Array.iter
              (fun r ->
                if r.Solver.energy < !best.Solver.energy then best := r)
              results;
            let iterations =
              Array.fold_left
                (fun acc r -> acc + r.Solver.iterations)
                0 results
            in
            let converged =
              Array.for_all (fun r -> r.Solver.converged) results
            in
            { !best with Solver.iterations = iterations; converged }
          in
          let r, runtime_s = Solver.timed run in
          on_progress ~iter:r.Solver.iterations ~energy:r.Solver.energy
            ~bound:neg_infinity;
          { r with Solver.runtime_s = runtime_s }
        end);
  }

let sa ?config ?jobs () =
  let config =
    match jobs with
    | None -> config
    | Some j ->
        let base = Option.value config ~default:Sa.default_config in
        Some { base with Sa.domains = j }
  in
  {
    name = "sa";
    solve =
      (fun ~interrupt ~on_progress ~init mrf ->
        Sa.solve ?config ~interrupt ~on_progress ?init mrf);
  }

let bnb ?config () =
  {
    name = "bnb";
    solve =
      (fun ~interrupt ~on_progress ~init:_ mrf ->
        Bnb.solve ?config ~interrupt ~on_progress mrf);
  }

let brute ?limit () =
  {
    name = "brute";
    solve =
      (fun ~interrupt ~on_progress ~init:_ mrf ->
        Brute.solve ?limit ~interrupt ~on_progress mrf);
  }

let perturbed ?(seed = 0x6b1c) ?(strength = 0.15) stage =
  {
    name = stage.name ^ "*";
    solve =
      (fun ~interrupt ~on_progress ~init mrf ->
        let init =
          match init with
          | None -> None
          | Some x ->
              let rng = Random.State.make [| seed |] in
              let x = Array.copy x in
              for i = 0 to Array.length x - 1 do
                if Random.State.float rng 1.0 < strength then
                  x.(i) <- Random.State.int rng (Mrf.label_count mrf i)
              done;
              Some x
        in
        stage.solve ~interrupt ~on_progress ~init mrf);
  }

type progress = { stage : string; iter : int; energy : float; bound : float }

type run_report = {
  result : Solver.result;
  outcome : outcome;
  stage_timings : (string * float) list;
  retries : int;
}

(* Retry / degradation telemetry and the [runner.stage] injection
   point.  Attempt keys come from a process-wide counter: the harness
   runs stages single-threaded, so the sequence is deterministic and a
   recorded schedule replays exactly. *)
let c_retries = Obs.Counter.make "runner.retries"
let c_degraded = Obs.Counter.make "runner.degraded"
let c_dump_errors = Obs.Counter.make "runner.dump_errors"

(* Flush the installed flight recorder (if any) to its dump path (if
   any): every degradation, watchdog abandonment, escaping exception
   and completed run ships its black box.  A failed dump must never
   mask the solve outcome, so the error is only counted. *)
let dump_black_box reason =
  match Recorder.current () with
  | None -> ()
  | Some r -> (
      match Recorder.dump ~reason r with
      | Ok () -> ()
      | Error _ -> Obs.Counter.incr c_dump_errors)
let p_stage = Fault.point "runner.stage"
let attempt_seq = Atomic.make 0

(* The failures a retry can meaningfully absorb: injected faults and
   genuinely transient environment errors.  Everything else —
   [Pool.Race], [Invalid_argument], [Assert_failure] — is a programmer
   error or a sanitizer report and must propagate unchanged. *)
let recoverable = function
  | Fault.Injected _ | Out_of_memory | Sys_error _ -> true
  | _ -> false

(* Degradation ladder rungs, climbed when retries on the current rung
   keep failing: the model as given, then the same model forced onto
   generic kernels (rules the specialized message paths out), then
   plain ICM warm-started from the best labeling so far. *)
let rung_name = function
  | 1 -> "generic-kernel"
  | 2 -> "icm-fallback"
  | r -> "rung-" ^ string_of_int r

let run ?(budget = Budget.unlimited) ?patience ?(retries = 2)
    ?(backoff_s = 0.0) ?init ?on_best
    ?(on_progress = fun (_ : progress) -> ()) ~stages mrf =
  if stages = [] then invalid_arg "Runner.run: empty cascade";
  let t0 = Obs.Clock.now () in
  let deadline = Option.map (fun s -> t0 +. s) budget.Budget.seconds in
  let done_sweeps = ref 0 in
  let best : Solver.result option ref = ref None in
  (match init with
  | None -> ()
  | Some lab ->
      (* resume support: a checkpointed labeling seeds the cascade's
         best-so-far, so stages warm-start from it and the watchdog can
         always fall back to it *)
      best :=
        Some
          {
            Solver.labeling = Array.copy lab;
            energy = Mrf.energy mrf lab;
            lower_bound = neg_infinity;
            iterations = 0;
            converged = false;
            runtime_s = 0.0;
          });
  let timings = ref [] in
  let exhausted = ref false in
  let fell = ref [] in
  let retries_used = ref 0 in
  let rung = ref 0 in
  let rungs_entered = ref [] in
  let degraded_model = lazy (Mrf.despecialize mrf) in
  let icm_fallback = icm () in
  let escalate () =
    (* skip the generic-kernel rung when there is nothing to
       despecialize — it would re-run the identical computation *)
    let next = if !rung = 0 && not (Mrf.specialized mrf) then 2 else !rung + 1 in
    rung := next;
    rungs_entered := rung_name next :: !rungs_entered;
    Obs.Counter.incr c_degraded;
    Recorder.mark ("degrade:" ^ rung_name next);
    (* flush immediately: if the degraded rung dies too, the black box
       already tells the story up to this point *)
    dump_black_box "degraded"
  in
  let rec go = function
    | [] -> assert false
    | stage :: rest ->
        Recorder.mark ("stage:" ^ stage.name);
        let stage_start = Obs.Clock.now () in
        (* stall detection: wall clock since the last global improvement *)
        let last_gain = ref stage_start in
        let stage_sweeps = ref 0 in
        let best_energy =
          ref (match !best with Some r -> r.Solver.energy | None -> infinity)
        and best_bound =
          ref
            (match !best with
            | Some r -> r.Solver.lower_bound
            | None -> neg_infinity)
        in
        (* polled from solver inner loops, possibly from spawned domains:
           only reads wall clock and sets monotone flags *)
        let interrupt () =
          let now = Obs.Clock.now () in
          let over_deadline =
            match deadline with Some d -> now >= d | None -> false
          in
          let over_sweeps =
            match budget.Budget.sweeps with
            | Some cap -> !done_sweeps + !stage_sweeps >= cap
            | None -> false
          in
          if over_deadline || over_sweeps then begin
            exhausted := true;
            true
          end
          else
            match patience with
            | Some p when now -. !last_gain > p -> true
            | _ -> false
        in
        let progress ~iter ~energy ~bound =
          stage_sweeps := iter;
          let improved =
            energy < !best_energy -. 1e-12 || bound > !best_bound +. 1e-12
          in
          if improved then begin
            if energy < !best_energy then best_energy := energy;
            if bound > !best_bound then best_bound := bound;
            last_gain := Obs.Clock.now ()
          end;
          on_progress { stage = stage.name; iter; energy; bound }
        in
        let warm = Option.map (fun r -> r.Solver.labeling) !best in
        (* One attempt on the current degradation rung.  The injected
           [runner.stage] check sits before the solve so a scheduled
           fault kills the attempt, not the harness. *)
        let solve_once () =
          if Fault.enabled () then
            Fault.check ~key:(Atomic.fetch_and_add attempt_seq 1) p_stage;
          let model = if !rung >= 1 then Lazy.force degraded_model else mrf in
          let s = if !rung >= 2 then icm_fallback else stage in
          Obs.span
            ~name:("runner.stage:" ^ s.name)
            (fun () -> s.solve ~interrupt ~on_progress:progress ~init:warm model)
        in
        (* Retry-with-backoff, escalating the ladder when a rung's
           retries are spent.  Backoff waits run against the same
           deadline as solve time — a retrying run is still anytime. *)
        let rec attempt tries_left =
          match solve_once () with
          | r -> Some r
          | exception exn when recoverable exn ->
              let bt = Printexc.get_raw_backtrace () in
              Obs.Counter.incr c_retries;
              incr retries_used;
              Recorder.mark ("retry:" ^ stage.name);
              if tries_left > 0 then begin
                if backoff_s > 0.0 then
                  Unix.sleepf
                    (backoff_s *. float_of_int (1 lsl (retries - tries_left)));
                attempt (tries_left - 1)
              end
              else if !rung < 2 then begin
                escalate ();
                attempt retries
              end
              else if Option.is_some !best then begin
                (* watchdog: the whole ladder failed, but an anytime
                   labeling exists — abandon the stage, keep the result *)
                Recorder.mark ("watchdog:" ^ stage.name);
                dump_black_box "watchdog";
                None
              end
              else begin
                dump_black_box (Printexc.to_string exn);
                Printexc.raise_with_backtrace exn bt
              end
        in
        let outcome_of = function
          | None ->
              (* stage abandoned after exhausting every rung *)
              fell := stage.name :: !fell;
              if rest <> [] then go rest else Stalled
          | Some r ->
              done_sweeps := !done_sweeps + r.Solver.iterations;
              let prev = !best in
              let merged =
                match prev with
                | None -> r
                | Some b ->
                    let better =
                      if r.Solver.energy <= b.Solver.energy then r else b
                    in
                    {
                      better with
                      Solver.lower_bound =
                        max r.Solver.lower_bound b.Solver.lower_bound;
                    }
              in
              best := Some merged;
              (match on_best with
              | Some f
                when (match prev with
                     | None -> true
                     | Some b -> merged.Solver.energy < b.Solver.energy) ->
                  f merged
              | _ -> ());
              if r.Solver.converged then Converged
              else if !exhausted then Budget_exhausted
              else if rest <> [] then begin
                fell := stage.name :: !fell;
                go rest
              end
              else Stalled
        in
        let g0 = Gc.quick_stat () in
        let r = attempt retries in
        let g1 = Gc.quick_stat () in
        (* one measurement feeds both sinks: the report's stage_timings
           list (public API) and the metrics registry — previously two
           separate gettimeofday code paths *)
        let stage_elapsed = Obs.Clock.now () -. stage_start in
        timings := (stage.name, stage_elapsed) :: !timings;
        Obs.Histogram.record
          (Obs.Histogram.make ("runner.stage." ^ stage.name))
          stage_elapsed;
        (* allocation attribution per stage, as seen by this domain:
           which rung of the cascade actually churns the heap *)
        Obs.Histogram.record
          (Obs.Histogram.make ("runner.stage_minor_words." ^ stage.name))
          (g1.Gc.minor_words -. g0.Gc.minor_words);
        Obs.Histogram.record
          (Obs.Histogram.make ("runner.stage_major_words." ^ stage.name))
          (g1.Gc.major_words -. g0.Gc.major_words);
        outcome_of r
  in
  let base = go stages in
  let outcome =
    List.fold_left (fun o name -> Fell_back (name, o)) base !fell
  in
  let outcome =
    List.fold_left (fun o name -> Degraded (name, o)) outcome !rungs_entered
  in
  let result =
    match !best with Some r -> r | None -> assert false
  in
  let result =
    {
      result with
      Solver.iterations = !done_sweeps;
      runtime_s = Obs.Clock.now () -. t0;
      converged = outcome_converged outcome;
    }
  in
  dump_black_box (Format.asprintf "%a" pp_outcome outcome);
  { result; outcome; stage_timings = List.rev !timings; retries = !retries_used }
