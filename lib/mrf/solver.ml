type result = {
  labeling : int array;
  energy : float;
  lower_bound : float;
  iterations : int;
  converged : bool;
  runtime_s : float;
}

(* Timing goes through the observability clock shim so reported
   runtimes share a time base with trace spans; the wrapped computation
   never observes the clock. *)
let timed f =
  let t0 = Netdiv_obs.Obs.Clock.now () in
  let x = f () in
  (x, Netdiv_obs.Obs.Clock.now () -. t0)

let optimality_gap r =
  if Float.is_nan r.energy || Float.is_nan r.lower_bound then infinity
  else if not (Float.is_finite r.lower_bound) then infinity
  else if not (Float.is_finite r.energy) then infinity
  else r.energy -. r.lower_bound

(* render non-finite floats as words so nan/-inf never leak into reports *)
let pp_float ppf v =
  if Float.is_nan v then Format.pp_print_string ppf "undefined"
  else if Float.equal v neg_infinity then Format.pp_print_string ppf "none"
  else if Float.equal v infinity then Format.pp_print_string ppf "unbounded"
  else Format.fprintf ppf "%.6f" v

let pp_result ppf r =
  Format.fprintf ppf "energy %a, bound %a, %d iters, %s, %.3fs" pp_float
    r.energy pp_float r.lower_bound r.iterations
    (if r.converged then "converged" else "iteration cap")
    r.runtime_s
