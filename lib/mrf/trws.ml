module Obs = Netdiv_obs.Obs
module Recorder = Netdiv_obs.Recorder
module Pool = Netdiv_par.Pool
open Kernel

(* Telemetry handles (shared with Bp via the names, all no-ops until
   Obs.set_enabled true): message updates by kernel class, per-sweep
   energy/bound samples. *)
let c_msg_potts = Obs.Counter.make "mrf.messages.potts"
let c_msg_sparse = Obs.Counter.make "mrf.messages.const_sparse"
let c_msg_generic = Obs.Counter.make "mrf.messages.generic"

type config = {
  max_iters : int;
  tolerance : float;
  patience : int;
  bound_every : int;
}

let default_config =
  { max_iters = 100; tolerance = 1e-7; patience = 3; bound_every = 1 }

(* Message state: for edge e = (u,v), [fw] holds the message into v
   (length labels.(v)) and [bw] the message into u (length labels.(u)),
   stored flat with per-edge offsets.  Messages, unaries and the bound
   aggregation scratch live on unboxed [floatarray] slabs so the kernels
   stream over contiguous doubles; everything here is immutable topology
   or slab storage shared by all workers — per-worker mutable scratch
   lives in {!workspace}. *)
type state = {
  labels : int array;
  unary_off : int array;
  unary : floatarray;  (* unboxed copy of the model's unaries *)
  eu : int array;
  ev : int array;
  etab : int array;
  pot_off : int array;
  pot : float array;
  inc_off : int array;
  inc : int array;
  fw_off : int array;
  bw_off : int array;
  fw : floatarray;
  bw : floatarray;
  classes : Kernel.t array;
  lb_agg : floatarray;  (* lower_bound slab: gamma-weighted unaries *)
  chain_best : floatarray;  (* lower_bound slab: per-chain DP minimum *)
  gamma : float array;
  chains : int array array;
      (* monotonic chain decomposition: each chain is the sequence of its
         edge ids, traversed from lower to higher node order.  Every edge
         belongs to exactly one chain; node [i] lies on
         [max(#lower, #higher)] chains. *)
  isolated : int list;  (* nodes with no incident edges *)
}

(* Per-worker scratch: one per parallel chunk so partitioned sweeps never
   share a theta buffer or kernel scratch across domains.  Allocated per
   solve, reused across all messages, so the hot path never allocates
   (minor GCs are stop-the-world across ALL domains). *)
type workspace = {
  theta : floatarray;
  ks : Kernel.scratch;
  dp : floatarray;  (* lower_bound chain DP, current *)
  dp' : floatarray;  (* lower_bound chain DP, next *)
}

let make_state mrf =
  let {
    Mrf.Compact.i_labels = labels;
    i_unary_off = unary_off;
    i_unary = unary;
    i_eu = eu;
    i_ev = ev;
    i_etab = etab;
    i_pot_off = pot_off;
    i_pot = pot;
    i_inc_off = inc_off;
    i_inc = inc;
    i_col = col;
    i_classes = classes;
  } =
    Mrf.Compact.arrays mrf
  in
  let n = Array.length labels and m = Array.length eu in
  let fw_off = Array.make (m + 1) 0 and bw_off = Array.make (m + 1) 0 in
  for e = 0 to m - 1 do
    fw_off.(e + 1) <- fw_off.(e) + labels.(ev.(e));
    bw_off.(e + 1) <- bw_off.(e) + labels.(eu.(e))
  done;
  let gamma = Array.make n 1.0 in
  let backward = Array.make n [] and forward = Array.make n [] in
  for i = 0 to n - 1 do
    let lower = ref 0 and higher = ref 0 in
    (* walk the incidence slice backwards so the per-node edge lists come
       out sorted by opposite endpoint *)
    for k = inc_off.(i + 1) - 1 downto inc_off.(i) do
      let e = inc.(k) lsr 1 in
      let j = col.(k) in
      if j < i then begin
        incr lower;
        backward.(i) <- e :: backward.(i)
      end
      else begin
        incr higher;
        forward.(i) <- e :: forward.(i)
      end
    done;
    gamma.(i) <- 1.0 /. float_of_int (max 1 (max !lower !higher))
  done;
  (* Monotonic chain decomposition (Kolmogorov): at each node, pair its k-th
     lower edge with its k-th higher edge; unpaired higher edges start
     chains, unpaired lower edges end them. *)
  let succ = Array.make m (-1) in
  let has_pred = Array.make m false in
  for i = 0 to n - 1 do
    let rec pair lows highs =
      match (lows, highs) with
      | e :: lows', e' :: highs' ->
          succ.(e) <- e';
          has_pred.(e') <- true;
          pair lows' highs'
      | _ -> ()
    in
    pair backward.(i) forward.(i)
  done;
  let chains = ref [] in
  for e = 0 to m - 1 do
    if not has_pred.(e) then begin
      let rec walk e acc =
        let acc = e :: acc in
        if succ.(e) >= 0 then walk succ.(e) acc else acc
      in
      chains := Array.of_list (List.rev (walk e [])) :: !chains
    end
  done;
  let chains = Array.of_list !chains in
  let isolated = ref [] in
  for i = 0 to n - 1 do
    if inc_off.(i + 1) = inc_off.(i) then isolated := i :: !isolated
  done;
  {
    labels;
    unary_off;
    unary = Float.Array.init unary_off.(n) (fun k -> unary.(k));
    eu;
    ev;
    etab;
    pot_off;
    pot;
    inc_off;
    inc;
    fw_off;
    bw_off;
    fw = Float.Array.make fw_off.(m) 0.0;
    bw = Float.Array.make bw_off.(m) 0.0;
    classes;
    (* per-iteration bound scratch lives in the state: allocating it in
       [lower_bound] made every iteration churn the minor heap, and
       minor collections are stop-the-world across ALL domains — the
       per-component solves then serialized on the GC barrier *)
    lb_agg = Float.Array.make unary_off.(n) 0.0;
    chain_best = Float.Array.make (Array.length chains) 0.0;
    gamma;
    chains;
    isolated = !isolated;
  }

let make_workspace st =
  let kmax = Array.fold_left max 1 st.labels in
  {
    theta = Float.Array.make kmax 0.0;
    ks = Kernel.make_scratch ~max_labels:kmax;
    dp = Float.Array.make kmax 0.0;
    dp' = Float.Array.make kmax 0.0;
  }

(* Aggregate node i's unary plus all incoming messages into [theta]. *)
let aggregate st i (theta : floatarray) =
  let k = st.labels.(i) in
  let u0 = st.unary_off.(i) in
  for x = 0 to k - 1 do
    theta.%(x) <- st.unary.%(u0 + x)
  done;
  for p = st.inc_off.(i) to st.inc_off.(i + 1) - 1 do
    let code = st.inc.(p) in
    let e = code / 2 in
    (* two scalar ifs, not a destructured tuple: this runs per incident
       edge per node per sweep, and the tuple would be a fresh minor
       allocation each time (minor GCs are global barriers under
       domains) *)
    let bwd = code land 1 = 1 in
    let off = if bwd then st.bw_off.(e) else st.fw_off.(e) in
    let msg = if bwd then st.bw else st.fw in
    for x = 0 to k - 1 do
      theta.%(x) <- theta.%(x) +. msg.%(off + x)
    done
  done

(* Update node [i]'s outgoing messages in direction [forward] (toward
   higher neighbours when [forward], lower otherwise), restricted to
   neighbours [j] with [(plo <= j < phi) = inside].  The sequential
   sweep passes the full range with [inside:true] (no restriction); the
   partitioned schedule runs the [inside:true] case per partition in
   parallel — all written messages then lie strictly inside the caller's
   partition, so distinct chunks never touch the same slab slot — and
   the [inside:false] case sequentially as the boundary-merge pass. *)
let process_node st ws ~forward ~inside ~plo ~phi i =
  let theta = ws.theta in
  aggregate st i theta;
  let k = st.labels.(i) in
  let g = st.gamma.(i) in
  for p = st.inc_off.(i) to st.inc_off.(i + 1) - 1 do
    let code = st.inc.(p) in
    let e = code / 2 in
    let i_is_u = code land 1 = 1 in
    let j = if i_is_u then st.ev.(e) else st.eu.(e) in
    if
      (if forward then j > i else j < i)
      && (j >= plo && j < phi) = inside
    then begin
      let kj = st.labels.(j) in
      let p0 = st.pot_off.(st.etab.(e)) in
      (* message into i along e (to be subtracted) and out of i (to
         be written); scalar ifs keep this allocation-free *)
      let in_off = if i_is_u then st.bw_off.(e) else st.fw_off.(e) in
      let in_msg = if i_is_u then st.bw else st.fw in
      let out_off = if i_is_u then st.fw_off.(e) else st.bw_off.(e) in
      let out_msg = if i_is_u then st.fw else st.bw in
      (* reduction input: reparameterized node cost minus the reverse
         message.  Precomputed once so every kernel — including the
         generic scan — reads it O(L) times instead of recomputing it
         O(L²) times. *)
      let h = ws.ks.Kernel.h in
      for xi = 0 to k - 1 do
        h.%(xi) <- (g *. theta.%(xi)) -. in_msg.%(in_off + xi)
      done;
      let vmin =
        Kernel.update
          st.classes.(st.etab.(e))
          ~pot:st.pot ~p0 ~src_is_u:i_is_u ~k_src:k ~k_out:kj ~scratch:ws.ks
          ~out:out_msg ~out_off
      in
      (* normalize so the smallest entry is zero *)
      for xj = 0 to kj - 1 do
        out_msg.%(out_off + xj) <- out_msg.%(out_off + xj) -. vmin
      done
    end
  done

(* One sequential sweep.  [forward] selects direction: process nodes in
   increasing order updating messages to higher neighbours, or the
   mirror image. *)
let sweep st ws n forward =
  if forward then
    for i = 0 to n - 1 do
      process_node st ws ~forward:true ~inside:true ~plo:0 ~phi:n i
    done
  else
    for i = n - 1 downto 0 do
      process_node st ws ~forward:false ~inside:true ~plo:0 ~phi:n i
    done

(* TRW dual bound for the monotonic-chain decomposition: the energy is
   split as E(x) = sum_C E_C(x_C) with per-chain node costs gamma_i *
   theta_hat_i and reparameterized edge costs; the bound is the sum of the
   chains' independent minima, computed by dynamic programming along each
   chain.  Valid for any message state (each chain min <= the chain's value
   at the true optimum), and tight at TRW-S fixed points on trees.

   Split into three passes so the partitioned schedule can parallelize
   the first two: [fill_agg] writes node [i]'s gamma-weighted aggregate
   (slots disjoint per node), [chain_dp] writes chain [ci]'s minimum into
   the [chain_best] slab (slots disjoint per chain), and [lb_sum] folds
   the per-chain minima in chain order — so the bound is bitwise
   identical whatever the chunking. *)
let fill_agg st ws i =
  aggregate st i ws.theta;
  let off = st.unary_off.(i) in
  for x = 0 to st.labels.(i) - 1 do
    st.lb_agg.%(off + x) <- st.gamma.(i) *. ws.theta.%(x)
  done

let chain_dp st ws ci =
  let chain = st.chains.(ci) in
  let agg = st.lb_agg in
  let dp = ws.dp in
  let dp' = ws.dp' in
  let e0 = chain.(0) in
  let first = if st.eu.(e0) < st.ev.(e0) then st.eu.(e0) else st.ev.(e0) in
  let k0 = st.labels.(first) in
  for x = 0 to k0 - 1 do
    dp.%(x) <- agg.%(st.unary_off.(first) + x)
  done;
  let prev_k = ref k0 in
  (* The per-edge DP transition is written out inline with the running
     minimum accumulated directly in the [dp'] slab: a local
     float-returning closure (boxed return per call without flambda) or
     a [float ref] minimum (boxed store per assignment) here made every
     bound evaluation allocate ~10^5 minor words, and under multicore
     the resulting minor collections are stop-the-world barriers that
     serialize otherwise independent per-component solves.  The
     reparameterized cost, oriented low node -> high node, is
       pot[xu,xv] - fw[xv] - bw[xu]
     with (xu, xv) = (x, y) when u < v and (y, x) otherwise. *)
  Array.iter
    (fun e ->
      let u = st.eu.(e) and v = st.ev.(e) in
      let kv = st.labels.(v) in
      let pbase = st.pot_off.(st.etab.(e)) in
      let fw0 = st.fw_off.(e) and bw0 = st.bw_off.(e) in
      let hi = if u < v then v else u in
      let kh = st.labels.(hi) in
      for y = 0 to kh - 1 do
        dp'.%(y) <- infinity
      done;
      if u < v then
        for x = 0 to !prev_k - 1 do
          let base = dp.%(x) -. st.bw.%(bw0 + x) in
          let prow = pbase + (x * kv) in
          for y = 0 to kh - 1 do
            let c = base +. st.pot.(prow + y) -. st.fw.%(fw0 + y) in
            if c < dp'.%(y) then dp'.%(y) <- c
          done
        done
      else
        for x = 0 to !prev_k - 1 do
          let base = dp.%(x) -. st.fw.%(fw0 + x) in
          for y = 0 to kh - 1 do
            let c =
              base +. st.pot.(pbase + (y * kv) + x) -. st.bw.%(bw0 + y)
            in
            if c < dp'.%(y) then dp'.%(y) <- c
          done
        done;
      let hoff = st.unary_off.(hi) in
      for y = 0 to kh - 1 do
        dp'.%(y) <- dp'.%(y) +. agg.%(hoff + y)
      done;
      Float.Array.blit dp' 0 dp 0 kh;
      prev_k := kh)
    chain;
  let best = ref infinity in
  for x = 0 to !prev_k - 1 do
    if dp.%(x) < !best then best := dp.%(x)
  done;
  (* routed through the pool so a sanitized region catches two chunks
     claiming the same chain *)
  Pool.write_slab st.chain_best ci !best

let lb_sum st =
  let acc = ref 0.0 in
  for ci = 0 to Array.length st.chains - 1 do
    acc := !acc +. st.chain_best.%(ci)
  done;
  List.iter
    (fun i ->
      let best = ref infinity in
      for x = 0 to st.labels.(i) - 1 do
        let c = st.unary.%(st.unary_off.(i) + x) in
        if c < !best then best := c
      done;
      acc := !acc +. !best)
    st.isolated;
  !acc

let lower_bound st ws n =
  for i = 0 to n - 1 do
    fill_agg st ws i
  done;
  for ci = 0 to Array.length st.chains - 1 do
    chain_dp st ws ci
  done;
  lb_sum st

(* Message updates one full iteration (forward + backward sweep)
   performs, split by kernel class: each edge's two directed messages
   are recomputed exactly once per iteration.  Computed once per solve
   and flushed as one counter add per class per iteration, so the
   per-message hot path carries no instrumentation at all. *)
let count_messages st m =
  let potts = ref 0 and sparse = ref 0 and generic = ref 0 in
  for e = 0 to m - 1 do
    match st.classes.(st.etab.(e)) with
    | Kernel.Potts _ -> potts := !potts + 2
    | Kernel.Const_sparse _ -> sparse := !sparse + 2
    | Kernel.Generic -> generic := !generic + 2
  done;
  (!potts, !sparse, !generic)

(* Greedy decoding in node order: condition on already decoded lower
   neighbours, use incoming messages from undecoded higher ones. *)
let decode st ws n x =
  let theta = ws.theta in
  for i = 0 to n - 1 do
    let k = st.labels.(i) in
    let u0 = st.unary_off.(i) in
    for xi = 0 to k - 1 do
      theta.%(xi) <- st.unary.%(u0 + xi)
    done;
    for p = st.inc_off.(i) to st.inc_off.(i + 1) - 1 do
      let code = st.inc.(p) in
      let e = code / 2 in
      let i_is_u = code land 1 = 1 in
      let j = if i_is_u then st.ev.(e) else st.eu.(e) in
      if j < i then begin
        let p0 = st.pot_off.(st.etab.(e)) in
        let kj = st.labels.(j) in
        for xi = 0 to k - 1 do
          let pair =
            if i_is_u then st.pot.(p0 + (xi * kj) + x.(j))
            else st.pot.(p0 + (x.(j) * k) + xi)
          in
          theta.%(xi) <- theta.%(xi) +. pair
        done
      end
      else begin
        let off = if i_is_u then st.bw_off.(e) else st.fw_off.(e) in
        let msg = if i_is_u then st.bw else st.fw in
        for xi = 0 to k - 1 do
          theta.%(xi) <- theta.%(xi) +. msg.%(off + xi)
        done
      end
    done;
    let best = ref 0 in
    for xi = 1 to k - 1 do
      if theta.%(xi) < theta.%(!best) then best := xi
    done;
    x.(i) <- !best
  done

(* Shared iteration loop: sweeps, convergence bookkeeping, telemetry.
   [sweep_pair] performs one forward+backward iteration; [bound]
   computes the dual bound for the current messages.  The sequential and
   partitioned schedules differ only in these two callbacks, so the
   stopping logic — and therefore the iteration count for identical
   message trajectories — is shared by construction. *)
let run_loop ~config ~interrupt ~on_progress mrf st ws n m ~sweep_pair ~bound
    =
  (* enablement is sampled once per solve; per-iteration work below is
     a handful of counter adds and begin/end span records, all
     allocation-free, and zero when disabled *)
  let obs_on = Obs.enabled () in
  (* the flight recorder is sampled once per solve too: installation
     never changes inside a solve (only [Recorder.suspended] around
     whole parallel regions does, and those wrap whole solves) *)
  let rec_on = Recorder.installed () in
  let msg_potts, msg_sparse, msg_generic =
    if obs_on || rec_on then count_messages st m else (0, 0, 0)
  in
  let x = Array.make n 0 in
  let best_x = Array.make n 0 in
  decode st ws n best_x;
  let best_energy = ref (Mrf.energy mrf best_x) in
  let prev_energy = ref !best_energy in
  let best_bound = ref neg_infinity in
  let stall = ref 0 in
  let iters = ref 0 in
  let converged = ref false in
  (try
     for it = 1 to config.max_iters do
       if interrupt () then raise Exit;
       iters := it;
       Obs.begin_span "trws.sweep";
       sweep_pair ();
       Obs.end_span "trws.sweep";
       if obs_on then begin
         Obs.Counter.add c_msg_potts msg_potts;
         Obs.Counter.add c_msg_sparse msg_sparse;
         Obs.Counter.add c_msg_generic msg_generic
       end;
       if it mod config.bound_every = 0 || it = config.max_iters then begin
         Obs.begin_span "trws.bound";
         let lb = bound () in
         decode st ws n x;
         Obs.end_span "trws.bound";
         let e = Mrf.energy mrf x in
         if e < !best_energy then begin
           best_energy := e;
           Array.blit x 0 best_x 0 n
         end;
         let bound_progress = lb -. !best_bound in
         if lb > !best_bound then best_bound := lb;
         let energy_progress = !prev_energy -. !best_energy in
         prev_energy := !best_energy;
         Obs.sample ~name:"trws.energy" !best_energy;
         Obs.sample ~name:"trws.lower_bound" !best_bound;
         if rec_on then
           Recorder.sweep ~iter:it ~energy:!best_energy ~bound:!best_bound
             ~residual:(Float.max bound_progress energy_progress)
             ~msg_potts ~msg_sparse ~msg_generic;
         on_progress ~iter:it ~energy:!best_energy ~bound:!best_bound;
         if
           bound_progress < config.tolerance
           && energy_progress < config.tolerance
         then incr stall
         else stall := 0;
         if
           !stall >= config.patience
           || !best_energy -. !best_bound < config.tolerance
         then begin
           converged := true;
           raise Exit
         end
       end
     done
   with Exit -> ());
  if obs_on then begin
    (* per-solve message totals as samples, so an exported trace (not
       just the live registry) carries the kernel-class mix — the
       report's throughput table sums these *)
    Obs.sample ~name:"mrf.messages.potts"
      (float_of_int (msg_potts * !iters));
    Obs.sample ~name:"mrf.messages.const_sparse"
      (float_of_int (msg_sparse * !iters));
    Obs.sample ~name:"mrf.messages.generic"
      (float_of_int (msg_generic * !iters))
  end;
  (best_x, !best_energy, !best_bound, !iters, !converged)

let solve ?(config = default_config) ?(interrupt = fun () -> false)
    ?(on_progress = fun ~iter:_ ~energy:_ ~bound:_ -> ()) mrf =
  let run () =
    let st = make_state mrf in
    let ws = make_workspace st in
    let n = Mrf.n_nodes mrf and m = Mrf.n_edges mrf in
    run_loop ~config ~interrupt ~on_progress mrf st ws n m
      ~sweep_pair:(fun () ->
        sweep st ws n true;
        sweep st ws n false)
      ~bound:(fun () -> lower_bound st ws n)
  in
  let (labeling, energy, lb, iterations, converged), runtime_s =
    Solver.timed (fun () -> Obs.span ~name:"trws.solve" run)
  in
  {
    Solver.labeling;
    energy;
    lower_bound = lb;
    iterations;
    converged;
    runtime_s;
  }

(* Partition count for the partitioned schedule: a function of the model
   size ONLY — never of the job count — so results are job-count
   invariant by construction (partition boundaries play the role the
   pool's chunk boundaries play elsewhere).  Small components are not
   worth partitioning: the boundary pass is pure overhead there. *)
let default_parts n = if n < 4096 then 1 else 16

let solve_partitioned ?(config = default_config)
    ?(interrupt = fun () -> false)
    ?(on_progress = fun ~iter:_ ~energy:_ ~bound:_ -> ()) ?parts ?jobs mrf =
  let n = Mrf.n_nodes mrf in
  let parts =
    match parts with
    | Some p -> max 1 (min p (max 1 n))
    | None -> default_parts n
  in
  if parts <= 1 then solve ~config ~interrupt ~on_progress mrf
  else begin
    let run () =
      let st = make_state mrf in
      let m = Mrf.n_edges mrf in
      let team = Pool.Team.create ?jobs () in
      Fun.protect
        ~finally:(fun () -> Pool.Team.stop team)
        (fun () ->
          let wss = Array.init parts (fun _ -> make_workspace st) in
          let ws0 = wss.(0) in
          (* partition bounds: mirror of the pool's chunk_span (even
             split, remainder over the first partitions), so the bounds
             Team.run hands each chunk are exactly these *)
          let part_off = Array.make (parts + 1) 0 in
          let q = n / parts and r = n mod parts in
          for p = 0 to parts - 1 do
            part_off.(p + 1) <- part_off.(p) + q + (if p < r then 1 else 0)
          done;
          let part_of = Array.make n 0 in
          for p = 0 to parts - 1 do
            for i = part_off.(p) to part_off.(p + 1) - 1 do
              part_of.(i) <- p
            done
          done;
          (* nodes with at least one cross-partition edge, ascending:
             the boundary-merge pass walks exactly these *)
          let is_cross i =
            let plo = part_off.(part_of.(i))
            and phi = part_off.(part_of.(i) + 1) in
            let c = ref false in
            for k = st.inc_off.(i) to st.inc_off.(i + 1) - 1 do
              let code = st.inc.(k) in
              let e = code / 2 in
              let j = if code land 1 = 1 then st.ev.(e) else st.eu.(e) in
              if j < plo || j >= phi then c := true
            done;
            !c
          in
          let ncross = ref 0 in
          for i = 0 to n - 1 do
            if is_cross i then incr ncross
          done;
          let cross = Array.make (max 1 !ncross) 0 in
          let cur = ref 0 in
          for i = 0 to n - 1 do
            if is_cross i then begin
              cross.(!cur) <- i;
              incr cur
            end
          done;
          let ncross = !ncross in
          (* One half-sweep: all partitions run their intra-partition
             node updates in parallel (each chunk's writes stay inside
             its own slab stripe), then the sequential boundary pass
             recomputes every cross-partition message in global node
             order.  Both phases depend only on [parts], never on the
             job count. *)
          let half forward =
            Pool.Team.run team ~chunks:parts ~lo:0 ~hi:n (fun c clo chi ->
                let ws = wss.(c) in
                if forward then
                  for i = clo to chi - 1 do
                    process_node st ws ~forward:true ~inside:true ~plo:clo
                      ~phi:chi i
                  done
                else
                  for i = chi - 1 downto clo do
                    process_node st ws ~forward:false ~inside:true ~plo:clo
                      ~phi:chi i
                  done);
            Obs.begin_span "trws.boundary";
            if forward then
              for k = 0 to ncross - 1 do
                let i = cross.(k) in
                let p = part_of.(i) in
                process_node st ws0 ~forward:true ~inside:false
                  ~plo:part_off.(p)
                  ~phi:part_off.(p + 1)
                  i
              done
            else
              for k = ncross - 1 downto 0 do
                let i = cross.(k) in
                let p = part_of.(i) in
                process_node st ws0 ~forward:false ~inside:false
                  ~plo:part_off.(p)
                  ~phi:part_off.(p + 1)
                  i
              done;
            Obs.end_span "trws.boundary"
          in
          let bound () =
            Pool.Team.run team ~chunks:parts ~lo:0 ~hi:n (fun c clo chi ->
                let ws = wss.(c) in
                for i = clo to chi - 1 do
                  fill_agg st ws i
                done);
            let nch = Array.length st.chains in
            Pool.Team.run team ~chunks:parts ~lo:0 ~hi:nch
              (fun c clo chi ->
                let ws = wss.(c) in
                for ci = clo to chi - 1 do
                  chain_dp st ws ci
                done);
            lb_sum st
          in
          run_loop ~config ~interrupt ~on_progress mrf st ws0 n m
            ~sweep_pair:(fun () ->
              half true;
              half false)
            ~bound)
    in
    let (labeling, energy, lb, iterations, converged), runtime_s =
      Solver.timed (fun () -> Obs.span ~name:"trws.solve" run)
    in
    {
      Solver.labeling;
      energy;
      lower_bound = lb;
      iterations;
      converged;
      runtime_s;
    }
  end

(* Connected components of the MRF graph (union-find with path
   compression; the smaller root id wins so component ids follow node
   order).  Components of a diversification MRF are independent
   subproblems: no message ever crosses between them, so each can be
   solved on its own domain and the results merged in component order. *)
let solve_components ?(config = default_config)
    ?(interrupt = fun () -> false)
    ?(on_progress = fun ~iter:_ ~energy:_ ~bound:_ -> ()) ?jobs mrf =
  let n = Mrf.n_nodes mrf and m = Mrf.n_edges mrf in
  let parent = Array.init n Fun.id in
  let rec find i =
    if parent.(i) = i then i
    else begin
      let r = find parent.(i) in
      parent.(i) <- r;
      r
    end
  in
  for e = 0 to m - 1 do
    let u, v = Mrf.edge_endpoints mrf e in
    let ru = find u and rv = find v in
    if ru <> rv then
      if ru < rv then parent.(rv) <- ru else parent.(ru) <- rv
  done;
  (* component ids in order of first appearance by node id *)
  let comp_of = Array.make (max 1 n) 0 in
  let n_comps = ref 0 in
  let id_of_root = Hashtbl.create 16 in
  for i = 0 to n - 1 do
    let r = find i in
    comp_of.(i) <-
      (match Hashtbl.find_opt id_of_root r with
      | Some id -> id
      | None ->
          let id = !n_comps in
          incr n_comps;
          Hashtbl.add id_of_root r id;
          id)
  done;
  if !n_comps <= 1 then begin
    (* A single large component is exactly where across-component
       parallelism does nothing: go intra-component when the caller
       asked for parallel solving at all. *)
    match jobs with
    | None -> solve ~config ~interrupt ~on_progress mrf
    | Some _ ->
        solve_partitioned ~config ~interrupt ~on_progress ?jobs mrf
  end
  else begin
    let run () =
      let n_comps = !n_comps in
      (* local index of every node inside its component *)
      let sizes = Array.make n_comps 0 in
      let local = Array.make n 0 in
      for i = 0 to n - 1 do
        let c = comp_of.(i) in
        local.(i) <- sizes.(c);
        sizes.(c) <- sizes.(c) + 1
      done;
      let nodes = Array.init n_comps (fun c -> Array.make sizes.(c) 0) in
      for i = 0 to n - 1 do
        nodes.(comp_of.(i)).(local.(i)) <- i
      done;
      let builders =
        Array.map
          (fun ns ->
            Mrf.Builder.create
              ~label_counts:(Array.map (Mrf.label_count mrf) ns))
          nodes
      in
      Array.iteri
        (fun c ns ->
          Array.iteri
            (fun li gi ->
              let k = Mrf.label_count mrf gi in
              Mrf.Builder.set_unary builders.(c) ~node:li
                (Array.init k (fun label -> Mrf.unary mrf ~node:gi ~label)))
            ns)
        nodes;
      (* edges keep their global order within each component, and the
         interned tables are passed through unchanged (shared, not
         copied), so sub-model interning is cheap. *)
      for e = 0 to m - 1 do
        let u, v = Mrf.edge_endpoints mrf e in
        Mrf.Builder.add_edge
          builders.(comp_of.(u))
          local.(u) local.(v) (Mrf.edge_cost mrf e)
      done;
      let subs = Array.map Mrf.Builder.build builders in
      (* Granularity hint for the pool: estimated kernel work of one
         component solve, averaged over components.  Each TRW-S
         iteration updates every directed edge message once, and the
         per-message cost depends on the table's kernel class — so the
         total tracks Kernel.message_cost, not a blanket O(L²).  Smoke
         problems land below the pool's sequential cutoff and run
         inline instead of paying domain spawns. *)
      let sweep_cost = ref 0 in
      for e = 0 to m - 1 do
        let u, v = Mrf.edge_endpoints mrf e in
        let ku = Mrf.label_count mrf u and kv = Mrf.label_count mrf v in
        let cls = Mrf.table_class mrf (Mrf.edge_table_id mrf e) in
        sweep_cost :=
          !sweep_cost
          + Kernel.message_cost cls ~k_src:ku ~k_out:kv
          + Kernel.message_cost cls ~k_src:kv ~k_out:ku
      done;
      let est_iters = min config.max_iters 24 in
      let cost = max 1 (est_iters * 2 * !sweep_cost / n_comps) in
      (* Per-component results come back in component order whatever the
         job count, so the merged labeling, the energy sum and the bound
         sum are job-count-invariant. *)
      let results =
        (* pool workers AND the participating caller domain would record
           component sweep frames in chunk-claim order — suspend the
           flight recorder so its contents stay schedule-independent *)
        Recorder.suspended (fun () ->
            Netdiv_par.Pool.map_range ?jobs ~cost ~lo:0 ~hi:n_comps (fun c ->
                solve ~config ~interrupt subs.(c)))
      in
      let x = Array.make n 0 in
      Array.iteri
        (fun c r ->
          Array.iteri
            (fun li lab -> x.(nodes.(c).(li)) <- lab)
            r.Solver.labeling)
        results;
      let energy =
        Array.fold_left (fun acc r -> acc +. r.Solver.energy) 0.0 results
      in
      let bound =
        Array.fold_left
          (fun acc r -> acc +. r.Solver.lower_bound)
          0.0 results
      in
      let iterations =
        Array.fold_left (fun acc r -> max acc r.Solver.iterations) 0 results
      in
      let converged = Array.for_all (fun r -> r.Solver.converged) results in
      if Recorder.installed () then begin
        (* the per-component results are in component order whatever the
           job count, so recording them here — not inside the solves the
           suspension above muted — keeps the black box deterministic *)
        Array.iteri
          (fun c (r : Solver.result) ->
            Recorder.zone ~round:0 ~zone:c ~energy:r.Solver.energy
              ~bound:r.Solver.lower_bound ~iterations:r.Solver.iterations
              ~converged:r.Solver.converged)
          results;
        Recorder.sweep ~iter:iterations ~energy ~bound ~residual:0.0
          ~msg_potts:0 ~msg_sparse:0 ~msg_generic:0
      end;
      (x, energy, bound, iterations, converged)
    in
    let (labeling, energy, bound, iterations, converged), runtime_s =
      Solver.timed (fun () -> Obs.span ~name:"trws.components" run)
    in
    on_progress ~iter:iterations ~energy ~bound;
    {
      Solver.labeling;
      energy;
      lower_bound = bound;
      iterations;
      converged;
      runtime_s;
    }
  end

(* ---- block-coordinate zone decomposition ------------------------------- *)

(* Fallback zone assignment when the caller has none: deterministic BFS
   growth over the model's CSR adjacency, the MRF-side mirror of
   Graph.Cut.greedy_partition.  Zones are grown one at a time from the
   lowest unassigned node, absorbing neighbors in incidence order until
   the zone reaches its quota — a function of the frozen model only. *)
let greedy_zone_partition mrf ~zones =
  let n = Mrf.n_nodes mrf in
  let zones = max 1 (min zones (max 1 n)) in
  let zone = Array.make (max 1 n) (-1) in
  let base = n / zones and extra = n mod zones in
  let queue = Queue.create () in
  let scan = ref 0 in
  for z = 0 to zones - 1 do
    let remaining = ref (base + if z < extra then 1 else 0) in
    Queue.clear queue;
    while !remaining > 0 do
      if Queue.is_empty queue then begin
        while zone.(!scan) >= 0 do
          incr scan
        done;
        zone.(!scan) <- z;
        decr remaining;
        Queue.add !scan queue
      end
      else begin
        let u = Queue.pop queue in
        for k = Mrf.Compact.row_start mrf u to Mrf.Compact.row_stop mrf u - 1
        do
          let v = Mrf.Compact.neighbor mrf k in
          if !remaining > 0 && zone.(v) < 0 then begin
            zone.(v) <- z;
            decr remaining;
            Queue.add v queue
          end
        done
      end
    done
  done;
  zone

let default_zone_rounds = 8
let default_zone_step = 0.25

(* Lagrangian (dual) decomposition over zones.  Zone slaves own their
   interior edges and unaries plus the running boundary penalties; each
   boundary edge (u, v) is its own two-variable slave
   min_{xu, xv} [ pot(xu, xv) - lam_u(xu) - lam_v(xv) ], so for any
   labeling the slave objectives sum exactly to E and

     sum_z bound(zone slave) + sum_boundary min(edge slave)  <=  min E

   is a valid global lower bound even though each zone bound is itself a
   TRW-S dual bound rather than an exact minimum.  After each round the
   multipliers move one subgradient step toward agreement between the
   zone argmin and the edge-slave argmin, in global boundary-edge order
   with a deterministic diminishing step — so the trajectory is a
   function of the zone map only, never of the job count, and rounds
   stop early when every boundary edge agrees. *)
let solve_zoned ?(config = default_config) ?(interrupt = fun () -> false)
    ?(on_progress = fun ~iter:_ ~energy:_ ~bound:_ -> ()) ?zones ?zone_of
    ?(rounds = default_zone_rounds) ?(step = default_zone_step) ?jobs mrf =
  let n = Mrf.n_nodes mrf and m = Mrf.n_edges mrf in
  (* normalize the zone map: dense ids in order of first appearance *)
  let zone_of, nz =
    match zone_of with
    | Some z ->
        if Array.length z <> n then
          invalid_arg "Trws.solve_zoned: zone_of has wrong length";
        let dense = Array.make (max 1 n) 0 in
        let id_of = Hashtbl.create 16 in
        let next = ref 0 in
        for i = 0 to n - 1 do
          if z.(i) < 0 then
            invalid_arg "Trws.solve_zoned: negative zone id";
          dense.(i) <-
            (match Hashtbl.find_opt id_of z.(i) with
            | Some id -> id
            | None ->
                let id = !next in
                incr next;
                Hashtbl.add id_of z.(i) id;
                id)
        done;
        (dense, max 1 !next)
    | None ->
        let zones =
          match zones with
          | Some z -> max 1 (min z (max 1 n))
          | None -> default_parts n
        in
        if zones <= 1 then (Array.make (max 1 n) 0, 1)
        else (greedy_zone_partition mrf ~zones, zones)
  in
  if nz <= 1 then solve ~config ~interrupt ~on_progress mrf
  else begin
    let run () =
      let {
        Mrf.Compact.i_labels = g_labels;
        i_eu = g_eu;
        i_ev = g_ev;
        i_etab = g_etab;
        i_pot_off = g_pot_off;
        i_pot = g_pot;
        _;
      } =
        Mrf.Compact.arrays mrf
      in
      (* zone membership, local indices, per-zone node lists in global
         node order *)
      let sizes = Array.make nz 0 in
      let local = Array.make n 0 in
      for i = 0 to n - 1 do
        let z = zone_of.(i) in
        local.(i) <- sizes.(z);
        sizes.(z) <- sizes.(z) + 1
      done;
      let nodes = Array.init nz (fun z -> Array.make (max 1 sizes.(z)) 0) in
      for i = 0 to n - 1 do
        nodes.(zone_of.(i)).(local.(i)) <- i
      done;
      let builders =
        Array.init nz (fun z ->
            Mrf.Builder.create
              ~label_counts:
                (Array.init sizes.(z) (fun li ->
                     g_labels.(nodes.(z).(li)))))
      in
      Array.iteri
        (fun z ns ->
          if sizes.(z) > 0 then
            Array.iteri
              (fun li gi ->
                let k = g_labels.(gi) in
                Mrf.Builder.set_unary builders.(z) ~node:li
                  (Array.init k (fun label -> Mrf.unary mrf ~node:gi ~label)))
              ns)
        nodes;
      (* first pass: count interior edges per zone and boundary edges *)
      let interior = Array.make nz 0 in
      let nb = ref 0 in
      for e = 0 to m - 1 do
        let zu = zone_of.(g_eu.(e)) and zv = zone_of.(g_ev.(e)) in
        if zu = zv then interior.(zu) <- interior.(zu) + 1 else incr nb
      done;
      let nb = !nb in
      Array.iteri (fun z c -> Mrf.Builder.reserve_edges builders.(z) c)
        interior;
      (* second pass: interior edges stream into their zone builder in
         global edge order (interned tables pass through shared, so
         sub-model interning is cheap); boundary edges are recorded in
         global edge order — the order every multiplier update uses *)
      let be = Array.make (max 1 nb) 0 in
      let cur = ref 0 in
      for e = 0 to m - 1 do
        let u = g_eu.(e) and v = g_ev.(e) in
        if zone_of.(u) = zone_of.(v) then
          Mrf.Builder.add_edge builders.(zone_of.(u)) local.(u) local.(v)
            (Mrf.edge_cost mrf e)
        else begin
          be.(!cur) <- e;
          incr cur
        end
      done;
      let subs = Array.map Mrf.Builder.build builders in
      (* per-zone effective unary slabs: base copy + running penalties;
         each zone model is wrapped once and re-reads the slab every
         round *)
      let base =
        Array.map (fun s -> (Mrf.Compact.arrays s).Mrf.Compact.i_unary) subs
      in
      let eff = Array.map Array.copy base in
      let wrapped =
        Array.init nz (fun z -> Mrf.with_unaries subs.(z) eff.(z))
      in
      let sub_uoff =
        Array.map
          (fun s -> (Mrf.Compact.arrays s).Mrf.Compact.i_unary_off)
          subs
      in
      (* boundary-edge metadata, flat in boundary order *)
      let b_u = Array.make (max 1 nb) 0 and b_v = Array.make (max 1 nb) 0 in
      let b_ku = Array.make (max 1 nb) 0 and b_kv = Array.make (max 1 nb) 0 in
      let b_uoff = Array.make (max 1 nb) 0 in
      let b_voff = Array.make (max 1 nb) 0 in
      let b_p0 = Array.make (max 1 nb) 0 in
      let lam_off = Array.make (nb + 1) 0 in
      for bi = 0 to nb - 1 do
        let e = be.(bi) in
        let u = g_eu.(e) and v = g_ev.(e) in
        b_u.(bi) <- u;
        b_v.(bi) <- v;
        b_ku.(bi) <- g_labels.(u);
        b_kv.(bi) <- g_labels.(v);
        b_uoff.(bi) <- sub_uoff.(zone_of.(u)).(local.(u));
        b_voff.(bi) <- sub_uoff.(zone_of.(v)).(local.(v));
        b_p0.(bi) <- g_pot_off.(g_etab.(e));
        lam_off.(bi + 1) <- lam_off.(bi) + g_labels.(u) + g_labels.(v)
      done;
      let lam = Array.make (max 1 lam_off.(nb)) 0.0 in
      let team = Pool.Team.create ?jobs () in
      Fun.protect
        ~finally:(fun () -> Pool.Team.stop team)
        (fun () ->
          let dummy =
            {
              Solver.labeling = [||];
              energy = infinity;
              lower_bound = neg_infinity;
              iterations = 0;
              converged = false;
              runtime_s = 0.0;
            }
          in
          let results = Array.make nz dummy in
          let solve_zone z =
            Pool.write results z (solve ~config ~interrupt wrapped.(z))
          in
          let xhat = Array.make n 0 in
          let best_x = Array.make n 0 in
          let best_energy = ref infinity in
          let best_bound = ref neg_infinity in
          let iters = ref 0 in
          let converged = ref false in
          let rec_on = Recorder.installed () in
          (* scalar scratch for the edge-slave argmin, hoisted out of
             the round loop *)
          let sl_best = ref 0.0 in
          let sl_bu = ref 0 and sl_bv = ref 0 in
          (try
             for r = 0 to rounds - 1 do
               if interrupt () then raise Exit;
               iters := r + 1;
               (* refresh effective unaries: base + current penalties *)
               Array.iteri
                 (fun z b -> Array.blit b 0 eff.(z) 0 (Array.length b))
                 base;
               for bi = 0 to nb - 1 do
                 let lo = lam_off.(bi) in
                 let ku = b_ku.(bi) and kv = b_kv.(bi) in
                 let zu = zone_of.(b_u.(bi)) and zv = zone_of.(b_v.(bi)) in
                 let uo = b_uoff.(bi) and vo = b_voff.(bi) in
                 for l = 0 to ku - 1 do
                   eff.(zu).(uo + l) <- eff.(zu).(uo + l) +. lam.(lo + l)
                 done;
                 for l = 0 to kv - 1 do
                   eff.(zv).(vo + l) <- eff.(zv).(vo + l) +. lam.(lo + ku + l)
                 done
               done;
               (* zone-interior solves in parallel; each chunk writes
                  only its own result slots *)
               Obs.begin_span "trws.zones";
               (* zone sub-solves claim chunks dynamically (and the
                  caller participates): suspend the flight recorder so
                  the orchestrator-level frames below stay the only —
                  and deterministic — record of this round *)
               Recorder.suspended (fun () ->
                   Pool.Team.run team ~chunks:nz ~lo:0 ~hi:nz
                     (fun _c clo chi ->
                       for z = clo to chi - 1 do
                         solve_zone z
                       done));
               Obs.end_span "trws.zones";
               for z = 0 to nz - 1 do
                 let ns = nodes.(z) and r = results.(z) in
                 for li = 0 to sizes.(z) - 1 do
                   xhat.(ns.(li)) <- r.Solver.labeling.(li)
                 done
               done;
               (* boundary reconciliation: edge-slave minima complete
                  the dual bound; disagreeing multipliers take one
                  diminishing subgradient step, in global order *)
               Obs.begin_span "trws.boundary";
               let zb = ref 0.0 in
               for z = 0 to nz - 1 do
                 zb := !zb +. results.(z).Solver.lower_bound
               done;
               let eb = ref 0.0 in
               let disagree = ref 0 in
               let step_r = step /. float_of_int (r + 1) in
               for bi = 0 to nb - 1 do
                 let lo = lam_off.(bi) in
                 let ku = b_ku.(bi) and kv = b_kv.(bi) in
                 let p0 = b_p0.(bi) in
                 sl_best := infinity;
                 sl_bu := 0;
                 sl_bv := 0;
                 for xu = 0 to ku - 1 do
                   for xv = 0 to kv - 1 do
                     let c =
                       g_pot.(p0 + (xu * kv) + xv)
                       -. lam.(lo + xu)
                       -. lam.(lo + ku + xv)
                     in
                     if c < !sl_best then begin
                       sl_best := c;
                       sl_bu := xu;
                       sl_bv := xv
                     end
                   done
                 done;
                 eb := !eb +. !sl_best;
                 let xu = xhat.(b_u.(bi)) and xv = xhat.(b_v.(bi)) in
                 if xu <> !sl_bu then begin
                   incr disagree;
                   lam.(lo + xu) <- lam.(lo + xu) +. step_r;
                   lam.(lo + !sl_bu) <- lam.(lo + !sl_bu) -. step_r
                 end;
                 if xv <> !sl_bv then begin
                   incr disagree;
                   lam.(lo + ku + xv) <- lam.(lo + ku + xv) +. step_r;
                   lam.(lo + ku + !sl_bv) <- lam.(lo + ku + !sl_bv) -. step_r
                 end
               done;
               Obs.end_span "trws.boundary";
               let lb = !zb +. !eb in
               let prev_bound = !best_bound and prev_energy = !best_energy in
               if lb > !best_bound then best_bound := lb;
               (* the concatenated zone labelings are always a feasible
                  primal point of the full model *)
               let e = Mrf.energy mrf xhat in
               if e < !best_energy then begin
                 best_energy := e;
                 Array.blit xhat 0 best_x 0 n
               end;
               Obs.sample ~name:"trws.energy" !best_energy;
               Obs.sample ~name:"trws.lower_bound" !best_bound;
               if rec_on then begin
                 (* per-round black box: one frame per zone, the
                    boundary reconciliation, and a round-level sweep
                    frame — all orchestrator-side, so the recording is a
                    function of the zone map only *)
                 for z = 0 to nz - 1 do
                   let res = results.(z) in
                   Recorder.zone ~round:(r + 1) ~zone:z
                     ~energy:res.Solver.energy ~bound:res.Solver.lower_bound
                     ~iterations:res.Solver.iterations
                     ~converged:res.Solver.converged
                 done;
                 Recorder.boundary ~round:(r + 1) ~disagree:!disagree
                   ~edge_bound:!eb ~zone_bound:!zb ~step:step_r;
                 Recorder.sweep ~iter:(r + 1) ~energy:!best_energy
                   ~bound:!best_bound
                   ~residual:
                     (Float.max
                        (prev_energy -. !best_energy)
                        (!best_bound -. prev_bound))
                   ~msg_potts:0 ~msg_sparse:0 ~msg_generic:0
               end;
               on_progress ~iter:(r + 1) ~energy:!best_energy
                 ~bound:!best_bound;
               if
                 !disagree = 0
                 && Array.for_all (fun r -> r.Solver.converged) results
               then begin
                 converged := true;
                 raise Exit
               end;
               if !best_energy -. !best_bound < config.tolerance then begin
                 converged := true;
                 raise Exit
               end
             done
           with Exit -> ());
          (best_x, !best_energy, !best_bound, !iters, !converged))
    in
    let (labeling, energy, lb, iterations, converged), runtime_s =
      Solver.timed (fun () -> Obs.span ~name:"trws.zoned" run)
    in
    {
      Solver.labeling;
      energy;
      lower_bound = lb;
      iterations;
      converged;
      runtime_s;
    }
  end
