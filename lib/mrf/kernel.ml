(* Structure-specialized min-sum message kernels.  See kernel.mli for
   the contract and DESIGN.md ("Message kernels") for the classification
   rules and the bitwise-equivalence argument. *)

external ( .%() ) : floatarray -> int -> float = "%floatarray_safe_get"

external ( .%()<- ) : floatarray -> int -> float -> unit
  = "%floatarray_safe_set"

type t =
  | Potts of { off : float; diag : float array }
  | Const_sparse of {
      base : float;
      nnz : int;
      max_line_nnz : int;
      col_idx : int array array;
      col_val : float array array;
      row_idx : int array array;
      row_val : float array array;
    }
  | Generic

let kind_name = function
  | Potts _ -> "potts"
  | Const_sparse _ -> "const-sparse"
  | Generic -> "generic"

let message_cost cls ~k_src ~k_out =
  match cls with
  | Potts _ -> (3 * k_src) + k_out
  | Const_sparse { max_line_nnz; nnz; _ } ->
      (k_src * (max_line_nnz + 2)) + nnz + k_out
  | Generic -> k_src * k_out

(* A table qualifies as constant-plus-sparse only when the specialized
   update clearly beats the O(ku*kv) scan in BOTH orientations: the
   selection pass costs k_src*(max_line_nnz+1) and the deviation pass
   costs the line's nnz, so demand a 2x margin on the dense bound. *)
let sparse_pays ~ku ~kv ~max_line_nnz ~nnz =
  (max ku kv * (max_line_nnz + 2)) + nnz <= ku * kv / 2

let classify ~ku ~kv tab =
  if ku < 1 || kv < 1 || Array.length tab <> ku * kv then Generic
  else if not (Array.for_all Float.is_finite tab) then
    (* keep NaN/inf propagation semantics on the generic path *)
    Generic
  else begin
    let potts =
      if ku <> kv then None
      else if ku = 1 then Some (Potts { off = tab.(0); diag = [| tab.(0) |] })
      else begin
        let off = tab.(1) in
        let uniform = ref true in
        for i = 0 to ku - 1 do
          for j = 0 to kv - 1 do
            if i <> j && tab.((i * kv) + j) <> off then uniform := false
          done
        done;
        if !uniform then
          Some
            (Potts
               { off; diag = Array.init ku (fun i -> tab.((i * kv) + i)) })
        else None
      end
    in
    match potts with
    | Some p -> p
    | None ->
        (* modal entry = candidate base value *)
        let sorted = Array.copy tab in
        Array.sort compare sorted;
        let base = ref sorted.(0) and best_run = ref 1 and run = ref 1 in
        for i = 1 to Array.length sorted - 1 do
          if sorted.(i) = sorted.(i - 1) then incr run else run := 1;
          if !run > !best_run then begin
            best_run := !run;
            base := sorted.(i)
          end
        done;
        let base = !base in
        let row_nnz = Array.make ku 0 and col_nnz = Array.make kv 0 in
        let nnz = ref 0 in
        for i = 0 to ku - 1 do
          for j = 0 to kv - 1 do
            if tab.((i * kv) + j) <> base then begin
              incr nnz;
              row_nnz.(i) <- row_nnz.(i) + 1;
              col_nnz.(j) <- col_nnz.(j) + 1
            end
          done
        done;
        let nnz = !nnz in
        let max_line_nnz =
          max
            (Array.fold_left max 0 row_nnz)
            (Array.fold_left max 0 col_nnz)
        in
        if not (sparse_pays ~ku ~kv ~max_line_nnz ~nnz) then Generic
        else begin
          let col_idx = Array.map (fun c -> Array.make c 0) col_nnz in
          let col_val = Array.map (fun c -> Array.make c 0.0) col_nnz in
          let row_idx = Array.map (fun c -> Array.make c 0) row_nnz in
          let row_val = Array.map (fun c -> Array.make c 0.0) row_nnz in
          let ccur = Array.make kv 0 and rcur = Array.make ku 0 in
          for i = 0 to ku - 1 do
            for j = 0 to kv - 1 do
              let v = tab.((i * kv) + j) in
              if v <> base then begin
                col_idx.(j).(ccur.(j)) <- i;
                col_val.(j).(ccur.(j)) <- v;
                ccur.(j) <- ccur.(j) + 1;
                row_idx.(i).(rcur.(i)) <- j;
                row_val.(i).(rcur.(i)) <- v;
                rcur.(i) <- rcur.(i) + 1
              end
            done
          done;
          Const_sparse
            { base; nnz; max_line_nnz; col_idx; col_val; row_idx; row_val }
        end
  end

type scratch = {
  h : floatarray;
  fresh : floatarray;
  sel_v : floatarray;
  sel_i : int array;
}

let make_scratch ~max_labels =
  let k = max 1 max_labels in
  {
    h = Float.Array.make k 0.0;
    fresh = Float.Array.make k 0.0;
    sel_v = Float.Array.make (k + 1) infinity;
    sel_i = Array.make (k + 1) (-1);
  }

let update cls ~pot ~p0 ~src_is_u ~k_src ~k_out ~scratch ~out ~out_off =
  let h = scratch.h in
  match cls with
  | Potts { off; diag } ->
      (* min and second-min of h; each output label needs the min over
         the OTHER labels, which is m0 unless the argmin is itself *)
      let m0 = ref infinity and m1 = ref infinity and arg0 = ref (-1) in
      for x = 0 to k_src - 1 do
        let v = h.%(x) in
        if v < !m0 then begin
          m1 := !m0;
          m0 := v;
          arg0 := x
        end
        else if v < !m1 then m1 := v
      done;
      let vmin = ref infinity in
      for xo = 0 to k_out - 1 do
        let excl = if xo = !arg0 then !m1 else !m0 in
        let same = h.%(xo) +. diag.(xo) in
        let other = excl +. off in
        let c = if same < other then same else other in
        out.%(out_off + xo) <- c;
        if c < !vmin then vmin := c
      done;
      !vmin
  | Const_sparse { base; max_line_nnz; col_idx; col_val; row_idx; row_val; _ }
    ->
      let idx, vals =
        if src_is_u then (col_idx, col_val) else (row_idx, row_val)
      in
      (* keep the (max_line_nnz + 1) smallest h values: every output line
         deviates in at most max_line_nnz sources, so at least one kept
         index pays the base value *)
      let keep = min (max_line_nnz + 1) k_src in
      let sv = scratch.sel_v and si = scratch.sel_i in
      for t = 0 to keep - 1 do
        sv.%(t) <- infinity;
        si.(t) <- -1
      done;
      for x = 0 to k_src - 1 do
        let v = h.%(x) in
        if v < sv.%(keep - 1) then begin
          let t = ref (keep - 1) in
          while !t > 0 && sv.%(!t - 1) > v do
            sv.%(!t) <- sv.%(!t - 1);
            si.(!t) <- si.(!t - 1);
            decr t
          done;
          sv.%(!t) <- v;
          si.(!t) <- x
        end
      done;
      let vmin = ref infinity in
      for xo = 0 to k_out - 1 do
        let di = idx.(xo) and dv = vals.(xo) in
        let nd = Array.length di in
        (* cheapest source whose entry is the base value *)
        let plain = ref infinity in
        let t = ref 0 and found = ref false in
        while (not !found) && !t < keep do
          let s = si.(!t) in
          let dev = ref false in
          for d = 0 to nd - 1 do
            if di.(d) = s then dev := true
          done;
          if not !dev then begin
            plain := sv.%(!t);
            found := true
          end;
          incr t
        done;
        let best = ref (!plain +. base) in
        for d = 0 to nd - 1 do
          let c = h.%(di.(d)) +. dv.(d) in
          if c < !best then best := c
        done;
        out.%(out_off + xo) <- !best;
        if !best < !vmin then vmin := !best
      done;
      !vmin
  | Generic ->
      let vmin = ref infinity in
      for xo = 0 to k_out - 1 do
        let best = ref infinity in
        if src_is_u then
          for xs = 0 to k_src - 1 do
            let c = h.%(xs) +. pot.(p0 + (xs * k_out) + xo) in
            if c < !best then best := c
          done
        else begin
          let r0 = p0 + (xo * k_src) in
          for xs = 0 to k_src - 1 do
            let c = h.%(xs) +. pot.(r0 + xs) in
            if c < !best then best := c
          done
        end;
        out.%(out_off + xo) <- !best;
        if !best < !vmin then vmin := !best
      done;
      !vmin
