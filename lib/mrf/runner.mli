(** Fault-tolerant anytime harness over the MAP solvers.

    The paper's headline claim is scalability — diversification of
    10,000-host networks in bounded time — and online re-diversification
    needs solvers that can be stopped at a deadline and still return the
    best feasible assignment found so far.  The runner wraps the six
    solvers behind a uniform [stage] interface, enforces a wall-clock /
    sweep {!Budget}, detects stalls (no energy or bound improvement for a
    patience window) and degrades through a fallback cascade, merging the
    best-so-far labeling across stages.

    Interrupt granularity: once per sweep for TRW-S, BP, ICM and SA
    (every restart, including spawned domains), per node expansion for
    branch-and-bound, every 1024 labelings for brute force.  All stages
    preserve the anytime property: they return a feasible labeling and
    its energy no matter when they are stopped. *)

module Budget : sig
  type t = {
    seconds : float option;  (** wall-clock allowance, from run start *)
    sweeps : int option;     (** cap on sweeps/iterations per run *)
  }

  val unlimited : t
  val seconds : float -> t
  val sweeps : int -> t
  val make : ?seconds:float -> ?sweeps:int -> unit -> t
  val pp : Format.formatter -> t -> unit
end

type outcome =
  | Converged  (** a stage met its own stopping criterion *)
  | Budget_exhausted  (** deadline or sweep cap hit *)
  | Stalled  (** no improvement for [patience] and no stage left *)
  | Fell_back of string * outcome
      (** a stage stalled; the cascade degraded to the next one.  The
          string names the abandoned stage; the payload is the eventual
          outcome of the rest of the cascade. *)
  | Degraded of string * outcome
      (** stage failures forced the harness down its degradation ladder;
          the string names the rung entered (["generic-kernel"]: same
          model on generic message kernels; ["icm-fallback"]: plain ICM
          warm-started from the best labeling).  Recorded outermost-last:
          the deepest rung entered is the outermost wrapper. *)

val pp_outcome : Format.formatter -> outcome -> unit
(** ["converged"], ["budget exhausted"], ["stalled"], or
    ["fell back from <stage>; <outcome>"]. *)

val outcome_converged : outcome -> bool
(** [true] iff the outcome terminates in [Converged] (looking through
    [Fell_back]). *)

type stage
(** One solver in a cascade: a name plus a solve function taking the
    harness interrupt/progress hooks and an optional warm-start
    labeling. *)

val stage_name : stage -> string

val trws : ?config:Trws.config -> ?jobs:int -> unit -> stage
(** With [jobs] the model is decomposed into connected components solved
    on separate domains ({!Trws.solve_components}); the result is
    job-count-invariant.  Without it, the historical single-threaded
    {!Trws.solve}. *)

val trws_icm :
  ?config:Trws.config -> ?icm_config:Icm.config -> ?jobs:int -> unit -> stage
(** TRW-S followed by an ICM polish warm-started from its labeling; keeps
    the TRW-S dual bound.  [converged] requires both to converge.
    [jobs] parallelizes the TRW-S part as in {!trws}. *)

val bp : ?config:Bp.config -> ?jobs:int -> unit -> stage
(** With [jobs] the sweeps run the chromatic parallel schedule
    ({!Bp.solve_chromatic}); the result is job-count-invariant.  Without
    it, the historical sequential {!Bp.solve}. *)

val icm : ?config:Icm.config -> unit -> stage

val icm_restarts :
  ?config:Icm.config ->
  ?restarts:int ->
  ?seed:int ->
  ?strength:float ->
  ?jobs:int ->
  unit ->
  stage
(** Multi-restart ICM over the domain pool (default 4 restarts).
    Restart 0 runs from the cascade's warm start unchanged; each later
    restart perturbs it — relabeling a [strength] (default 0.25)
    fraction of nodes — or, with no warm start, draws a fresh uniform
    labeling, using an rng derived from [seed] and the restart index
    only.  The best energy wins (lowest restart index on ties),
    [iterations] sums all restarts, [converged] requires all restarts to
    converge; the outcome is identical for every job count.  Progress
    fires once, after the restarts join. *)

val sa : ?config:Sa.config -> ?jobs:int -> unit -> stage
(** [jobs] overrides [config.domains], parallelizing the restarts over
    the domain pool (results are job-count-invariant). *)

val bnb : ?config:Bnb.config -> unit -> stage
val brute : ?limit:int -> unit -> stage

val perturbed : ?seed:int -> ?strength:float -> stage -> stage
(** [perturbed stage] relabels a random [strength] fraction (default
    0.15) of the warm-start labeling before running [stage] — a restart
    kick for SA/ICM retries after a stall.  Deterministic in [seed]. *)

type progress = {
  stage : string;   (** name of the stage reporting *)
  iter : int;       (** its sweep / node count *)
  energy : float;   (** best energy so far within the stage *)
  bound : float;    (** best dual bound so far; [neg_infinity] if none *)
}

type run_report = {
  result : Solver.result;
      (** best labeling across all stages run; [lower_bound] is the max
          bound any stage proved, [iterations] and [runtime_s] are summed *)
  outcome : outcome;
  stage_timings : (string * float) list;
      (** wall-clock seconds per stage, in execution order *)
  retries : int;
      (** stage attempts that died on a recoverable failure and were
          retried (or escalated down the ladder); 0 on a clean run *)
}

val run :
  ?budget:Budget.t ->
  ?patience:float ->
  ?retries:int ->
  ?backoff_s:float ->
  ?init:int array ->
  ?on_best:(Solver.result -> unit) ->
  ?on_progress:(progress -> unit) ->
  stages:stage list ->
  Mrf.t ->
  run_report
(** Runs the cascade: each stage starts from the best labeling found so
    far and inherits the remaining budget.  A stage that converges ends
    the run with [Converged]; hitting the deadline or sweep cap ends it
    with [Budget_exhausted].  A stage that stalls — no energy or bound
    improvement for [patience] wall-clock seconds (default: never) — or
    exhausts its own iteration cap falls through to the next stage,
    wrapping the eventual outcome in [Fell_back]; when no stage remains
    the run ends [Stalled].

    {b Recovery.}  A stage attempt that dies on a {e recoverable}
    failure — an injected fault ({!Netdiv_fault.Fault.Injected}),
    [Out_of_memory], [Sys_error] — is retried up to [retries] times
    (default 2) with exponential backoff starting at [backoff_s]
    seconds (default 0; waits count against the deadline).  When a
    rung's retries are spent the harness climbs its degradation ladder:
    the model forced onto generic kernels ({!Mrf.despecialize}; skipped
    when nothing is specialized), then plain ICM warm-started from the
    best labeling so far.  Rungs entered are recorded as [Degraded]
    wrappers on the outcome and counted in the [runner.retries] /
    [runner.degraded] metrics.  If every rung fails and a best-so-far
    (or [init]) labeling exists, the stage is abandoned and the run
    keeps its anytime result; with nothing to fall back on the failure
    propagates.  Non-recoverable exceptions ([Pool.Race], programmer
    errors) always propagate unchanged.

    [init] seeds the best-so-far labeling before any stage runs (the
    resume path: stages warm-start from it and it is the watchdog's
    fallback).  [on_best] fires in the harness domain each time the
    merged best strictly improves — the checkpoint hook.

    The returned labeling is always feasible (every stage is anytime),
    and with [Budget.seconds 0.0] each stage returns within its first
    interrupt poll.

    @raise Invalid_argument on an empty [stages] list. *)
