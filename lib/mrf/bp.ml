module Obs = Netdiv_obs.Obs
module Recorder = Netdiv_obs.Recorder
module Pool = Netdiv_par.Pool
open Kernel

(* Same registry names as Trws: the counters classify message updates
   by kernel class whatever solver issued them. *)
let c_msg_potts = Obs.Counter.make "mrf.messages.potts"
let c_msg_sparse = Obs.Counter.make "mrf.messages.const_sparse"
let c_msg_generic = Obs.Counter.make "mrf.messages.generic"

type config = {
  max_iters : int;
  tolerance : float;
  damping : float;
  init_noise : float;
}

let default_config =
  { max_iters = 100; tolerance = 1e-7; damping = 0.3; init_noise = 1e-4 }

(* Message slabs and shared read-only topology; per-worker mutable
   scratch lives in {!workspace}.  [delta] holds each node's largest
   absolute message change of the current sweep — a per-node slot
   instead of a running maximum so parallel schedules can write
   disjointly and reduce afterwards (max is exact, so the reduction
   order never shows). *)
type state = {
  labels : int array;
  unary_off : int array;
  unary : floatarray;  (* unboxed copy of the model's unaries *)
  eu : int array;
  ev : int array;
  etab : int array;
  pot_off : int array;
  pot : float array;
  inc_off : int array;
  inc : int array;
  fw_off : int array;
  bw_off : int array;
  fw : floatarray;  (* message into v of each edge *)
  bw : floatarray;  (* message into u of each edge *)
  classes : Kernel.t array;
  delta : floatarray;  (* per-node max message change, this sweep *)
}

type workspace = { theta : floatarray; ks : Kernel.scratch }

let make_state mrf =
  let {
    Mrf.Compact.i_labels = labels;
    i_unary_off = unary_off;
    i_unary = unary;
    i_eu = eu;
    i_ev = ev;
    i_etab = etab;
    i_pot_off = pot_off;
    i_pot = pot;
    i_inc_off = inc_off;
    i_inc = inc;
    i_col = _;
    i_classes = classes;
  } =
    Mrf.Compact.arrays mrf
  in
  let n = Array.length labels and m = Array.length eu in
  let fw_off = Array.make (m + 1) 0 and bw_off = Array.make (m + 1) 0 in
  for e = 0 to m - 1 do
    fw_off.(e + 1) <- fw_off.(e) + labels.(ev.(e));
    bw_off.(e + 1) <- bw_off.(e) + labels.(eu.(e))
  done;
  {
    labels;
    unary_off;
    unary = Float.Array.init unary_off.(n) (fun k -> unary.(k));
    eu;
    ev;
    etab;
    pot_off;
    pot;
    inc_off;
    inc;
    fw_off;
    bw_off;
    fw = Float.Array.make fw_off.(m) 0.0;
    bw = Float.Array.make bw_off.(m) 0.0;
    classes;
    delta = Float.Array.make (max 1 n) 0.0;
  }

let make_workspace st =
  let kmax = Array.fold_left max 1 st.labels in
  {
    theta = Float.Array.make kmax 0.0;
    ks = Kernel.make_scratch ~max_labels:kmax;
  }

(* break ties deterministically: symmetric models otherwise sit on the
   all-zero-message fixed point and decode to a mono labeling *)
let init_messages st config =
  if config.init_noise > 0.0 then begin
    let rng = Random.State.make [| 0x5bf0 |] in
    for i = 0 to Float.Array.length st.fw - 1 do
      st.fw.%(i) <- Random.State.float rng config.init_noise
    done;
    for i = 0 to Float.Array.length st.bw - 1 do
      st.bw.%(i) <- Random.State.float rng config.init_noise
    done
  end

let aggregate st i (theta : floatarray) =
  let k = st.labels.(i) in
  let u0 = st.unary_off.(i) in
  for x = 0 to k - 1 do
    theta.%(x) <- st.unary.%(u0 + x)
  done;
  for p = st.inc_off.(i) to st.inc_off.(i + 1) - 1 do
    let code = st.inc.(p) in
    let e = code / 2 in
    let bwd = code land 1 = 1 in
    let off = if bwd then st.bw_off.(e) else st.fw_off.(e) in
    let msg = if bwd then st.bw else st.fw in
    for x = 0 to k - 1 do
      theta.%(x) <- theta.%(x) +. msg.%(off + x)
    done
  done

(* Update every directed message out of node [i] and record the node's
   largest absolute change in the [delta] slab.  Writes touch only
   [i]'s outgoing message slots and [delta.(i)], so two non-adjacent
   nodes can run concurrently — the invariant the chromatic schedule is
   built on. *)
let update_node st ws damping i =
  let theta = ws.theta in
  aggregate st i theta;
  let k = st.labels.(i) in
  let dmax = ref 0.0 in
  for p = st.inc_off.(i) to st.inc_off.(i + 1) - 1 do
    let code = st.inc.(p) in
    let e = code / 2 in
    let i_is_u = code land 1 = 1 in
    let j = if i_is_u then st.ev.(e) else st.eu.(e) in
    let kj = st.labels.(j) in
    let p0 = st.pot_off.(st.etab.(e)) in
    let in_off = if i_is_u then st.bw_off.(e) else st.fw_off.(e) in
    let in_msg = if i_is_u then st.bw else st.fw in
    let out_off = if i_is_u then st.fw_off.(e) else st.bw_off.(e) in
    let out_msg = if i_is_u then st.fw else st.bw in
    (* reduction input, precomputed once per message; the kernel stages
       its raw output in the preallocated [scratch.fresh] buffer (no
       per-message allocation) so the damping blend below can mix it
       with the previous message value. *)
    let h = ws.ks.Kernel.h in
    for xi = 0 to k - 1 do
      h.%(xi) <- theta.%(xi) -. in_msg.%(in_off + xi)
    done;
    let fresh = ws.ks.Kernel.fresh in
    let vmin =
      Kernel.update
        st.classes.(st.etab.(e))
        ~pot:st.pot ~p0 ~src_is_u:i_is_u ~k_src:k ~k_out:kj ~scratch:ws.ks
        ~out:fresh ~out_off:0
    in
    for xj = 0 to kj - 1 do
      let updated =
        ((1.0 -. damping) *. (fresh.%(xj) -. vmin))
        +. (damping *. out_msg.%(out_off + xj))
      in
      let change = abs_float (updated -. out_msg.%(out_off + xj)) in
      if change > !dmax then dmax := change;
      out_msg.%(out_off + xj) <- updated
    done
  done;
  (* slab slot [i] is outside the schedule's loop-index space (color
     classes iterate class indices), so route through the pool's
     overlap-checked slab store *)
  Pool.write_slab st.delta i !dmax

(* One sequential sweep updating every directed message once; returns the
   largest absolute message change. *)
let sweep st ws n damping =
  for i = 0 to n - 1 do
    update_node st ws damping i
  done;
  let d = ref 0.0 in
  for i = 0 to n - 1 do
    if st.delta.%(i) > !d then d := st.delta.%(i)
  done;
  !d

(* Directed messages one BP sweep updates, by kernel class: every node
   sends along each incident edge, so each edge counts twice.  Flushed
   as one counter add per class per sweep. *)
let count_messages st m =
  let potts = ref 0 and sparse = ref 0 and generic = ref 0 in
  for e = 0 to m - 1 do
    match st.classes.(st.etab.(e)) with
    | Kernel.Potts _ -> potts := !potts + 2
    | Kernel.Const_sparse _ -> sparse := !sparse + 2
    | Kernel.Generic -> generic := !generic + 2
  done;
  (!potts, !sparse, !generic)

(* plain store, not {!Pool.write}: node indices are not the loop-index
   space when a solve nests inside a sanitized per-component region, and
   the slot is tied to the loop index structurally anyway *)
let decode_node st ws x i =
  let theta = ws.theta in
  aggregate st i theta;
  let best = ref 0 in
  for xi = 1 to st.labels.(i) - 1 do
    if theta.%(xi) < theta.%(!best) then best := xi
  done;
  x.(i) <- !best

let decode st ws n x =
  for i = 0 to n - 1 do
    decode_node st ws x i
  done

(* Shared iteration loop; the sequential and chromatic schedules differ
   only in how one sweep and one decode pass execute. *)
let run_loop ~config ~interrupt ~on_progress mrf st n ~sweep_once ~decode_all
    =
  let obs_on = Obs.enabled () in
  let rec_on = Recorder.installed () in
  let msg_potts, msg_sparse, msg_generic =
    if obs_on || rec_on then count_messages st (Mrf.n_edges mrf)
    else (0, 0, 0)
  in
  let x = Array.make n 0 in
  let best_x = Array.make n 0 in
  decode_all best_x;
  let best_energy = ref (Mrf.energy mrf best_x) in
  let iters = ref 0 in
  let converged = ref false in
  (try
     for it = 1 to config.max_iters do
       if interrupt () then raise Exit;
       iters := it;
       Obs.begin_span "bp.sweep";
       let delta = sweep_once () in
       decode_all x;
       Obs.end_span "bp.sweep";
       if obs_on then begin
         Obs.Counter.add c_msg_potts msg_potts;
         Obs.Counter.add c_msg_sparse msg_sparse;
         Obs.Counter.add c_msg_generic msg_generic
       end;
       let e = Mrf.energy mrf x in
       if e < !best_energy then begin
         best_energy := e;
         Array.blit x 0 best_x 0 n
       end;
       Obs.sample ~name:"bp.energy" !best_energy;
       Obs.sample ~name:"bp.delta" delta;
       if rec_on then
         Recorder.sweep ~iter:it ~energy:!best_energy ~bound:neg_infinity
           ~residual:delta ~msg_potts ~msg_sparse ~msg_generic;
       on_progress ~iter:it ~energy:!best_energy ~bound:neg_infinity;
       if delta < config.tolerance then begin
         converged := true;
         raise Exit
       end
     done
   with Exit -> ());
  if obs_on then begin
    (* per-solve message totals as samples — the exported trace carries
       the kernel-class mix for the report's throughput table *)
    Obs.sample ~name:"mrf.messages.potts"
      (float_of_int (msg_potts * !iters));
    Obs.sample ~name:"mrf.messages.const_sparse"
      (float_of_int (msg_sparse * !iters));
    Obs.sample ~name:"mrf.messages.generic"
      (float_of_int (msg_generic * !iters))
  end;
  (best_x, !best_energy, !iters, !converged)

let solve ?(config = default_config) ?(interrupt = fun () -> false)
    ?(on_progress = fun ~iter:_ ~energy:_ ~bound:_ -> ()) mrf =
  let run () =
    let st = make_state mrf in
    init_messages st config;
    let ws = make_workspace st in
    let n = Mrf.n_nodes mrf in
    run_loop ~config ~interrupt ~on_progress mrf st n
      ~sweep_once:(fun () -> sweep st ws n config.damping)
      ~decode_all:(fun x -> decode st ws n x)
  in
  let (labeling, energy, iterations, converged), runtime_s =
    Solver.timed (fun () -> Obs.span ~name:"bp.solve" run)
  in
  {
    Solver.labeling;
    energy;
    lower_bound = neg_infinity;
    iterations;
    converged;
    runtime_s;
  }

let solve_chromatic ?(config = default_config)
    ?(interrupt = fun () -> false)
    ?(on_progress = fun ~iter:_ ~energy:_ ~bound:_ -> ()) ?jobs mrf =
  let run () =
    let st = make_state mrf in
    init_messages st config;
    let n = Mrf.n_nodes mrf in
    (* color classes as a CSR over nodes sorted by (color, id): one
       parallel region per class and sweep.  Nodes of one class are
       pairwise non-adjacent, so within a class every node's update
       reads only messages no class member writes — the sweep result is
       independent even of chunk boundaries, and therefore of jobs. *)
    let color, ncolors = Mrf.greedy_coloring mrf in
    let class_off = Array.make (ncolors + 1) 0 in
    for i = 0 to n - 1 do
      class_off.(color.(i) + 1) <- class_off.(color.(i) + 1) + 1
    done;
    for c = 0 to ncolors - 1 do
      class_off.(c + 1) <- class_off.(c + 1) + class_off.(c)
    done;
    let class_nodes = Array.make (max 1 n) 0 in
    let cursor = Array.copy class_off in
    for i = 0 to n - 1 do
      class_nodes.(cursor.(color.(i))) <- i;
      cursor.(color.(i)) <- cursor.(color.(i)) + 1
    done;
    let team = Pool.Team.create ?jobs () in
    Fun.protect
      ~finally:(fun () -> Pool.Team.stop team)
      (fun () ->
        let sz = Pool.Team.size team in
        let cap = max 1 (4 * sz) in
        let wss = Array.init cap (fun _ -> make_workspace st) in
        (* coarse chunks: claiming costs a CAS, so aim for a few chunks
           per worker and run small classes inline *)
        let chunks_for csize =
          if sz = 1 then 1 else min (4 * sz) (max 1 (csize / 32))
        in
        let sweep_once () =
          for c = 0 to ncolors - 1 do
            let lo = class_off.(c) and hi = class_off.(c + 1) in
            Pool.Team.run team
              ~chunks:(chunks_for (hi - lo))
              ~lo ~hi
              (fun ch clo chi ->
                let ws = wss.(ch) in
                for p = clo to chi - 1 do
                  update_node st ws config.damping class_nodes.(p)
                done)
          done;
          let d = ref 0.0 in
          for i = 0 to n - 1 do
            if st.delta.%(i) > !d then d := st.delta.%(i)
          done;
          !d
        in
        let decode_all x =
          Pool.Team.run team ~chunks:(chunks_for n) ~lo:0 ~hi:n
            (fun ch clo chi ->
              let ws = wss.(ch) in
              for i = clo to chi - 1 do
                decode_node st ws x i
              done)
        in
        run_loop ~config ~interrupt ~on_progress mrf st n ~sweep_once
          ~decode_all)
  in
  let (labeling, energy, iterations, converged), runtime_s =
    Solver.timed (fun () -> Obs.span ~name:"bp.solve" run)
  in
  {
    Solver.labeling;
    energy;
    lower_bound = neg_infinity;
    iterations;
    converged;
    runtime_s;
  }
