module Obs = Netdiv_obs.Obs

(* Same registry names as Trws: the counters classify message updates
   by kernel class whatever solver issued them. *)
let c_msg_potts = Obs.Counter.make "mrf.messages.potts"
let c_msg_sparse = Obs.Counter.make "mrf.messages.const_sparse"
let c_msg_generic = Obs.Counter.make "mrf.messages.generic"

type config = {
  max_iters : int;
  tolerance : float;
  damping : float;
  init_noise : float;
}

let default_config =
  { max_iters = 100; tolerance = 1e-7; damping = 0.3; init_noise = 1e-4 }

type state = {
  labels : int array;
  unary_off : int array;
  unary : float array;
  eu : int array;
  ev : int array;
  etab : int array;
  pot_off : int array;
  pot : float array;
  inc_off : int array;
  inc : int array;
  fw_off : int array;
  bw_off : int array;
  fw : float array;  (* message into v of each edge *)
  bw : float array;  (* message into u of each edge *)
  classes : Kernel.t array;
  scratch : Kernel.scratch;
}

let make_state mrf =
  let {
    Mrf.i_labels = labels;
    i_unary_off = unary_off;
    i_unary = unary;
    i_eu = eu;
    i_ev = ev;
    i_etab = etab;
    i_pot_off = pot_off;
    i_pot = pot;
    i_inc_off = inc_off;
    i_inc = inc;
    i_classes = classes;
  } =
    Mrf.internal_arrays mrf
  in
  let m = Array.length eu in
  let fw_off = Array.make (m + 1) 0 and bw_off = Array.make (m + 1) 0 in
  for e = 0 to m - 1 do
    fw_off.(e + 1) <- fw_off.(e) + labels.(ev.(e));
    bw_off.(e + 1) <- bw_off.(e) + labels.(eu.(e))
  done;
  {
    labels;
    unary_off;
    unary;
    eu;
    ev;
    etab;
    pot_off;
    pot;
    inc_off;
    inc;
    fw_off;
    bw_off;
    fw = Array.make fw_off.(m) 0.0;
    bw = Array.make bw_off.(m) 0.0;
    classes;
    scratch = Kernel.make_scratch ~max_labels:(Array.fold_left max 1 labels);
  }

let aggregate st i theta =
  let k = st.labels.(i) in
  let u0 = st.unary_off.(i) in
  for x = 0 to k - 1 do
    theta.(x) <- st.unary.(u0 + x)
  done;
  for p = st.inc_off.(i) to st.inc_off.(i + 1) - 1 do
    let code = st.inc.(p) in
    let e = code / 2 in
    let bwd = code land 1 = 1 in
    let off = if bwd then st.bw_off.(e) else st.fw_off.(e) in
    let msg = if bwd then st.bw else st.fw in
    for x = 0 to k - 1 do
      theta.(x) <- theta.(x) +. msg.(off + x)
    done
  done

(* One sequential sweep updating every directed message once; returns the
   largest absolute message change. *)
let sweep st n theta damping =
  let delta = ref 0.0 in
  for i = 0 to n - 1 do
    aggregate st i theta;
    let k = st.labels.(i) in
    for p = st.inc_off.(i) to st.inc_off.(i + 1) - 1 do
      let code = st.inc.(p) in
      let e = code / 2 in
      let i_is_u = code land 1 = 1 in
      let j = if i_is_u then st.ev.(e) else st.eu.(e) in
      let kj = st.labels.(j) in
      let p0 = st.pot_off.(st.etab.(e)) in
      let in_off = if i_is_u then st.bw_off.(e) else st.fw_off.(e) in
      let in_msg = if i_is_u then st.bw else st.fw in
      let out_off = if i_is_u then st.fw_off.(e) else st.bw_off.(e) in
      let out_msg = if i_is_u then st.fw else st.bw in
      (* reduction input, precomputed once per message; the kernel stages
         its raw output in the preallocated [scratch.fresh] buffer (no
         per-message allocation) so the damping blend below can mix it
         with the previous message value. *)
      let h = st.scratch.Kernel.h in
      for xi = 0 to k - 1 do
        h.(xi) <- theta.(xi) -. in_msg.(in_off + xi)
      done;
      let fresh = st.scratch.Kernel.fresh in
      let vmin =
        Kernel.update
          st.classes.(st.etab.(e))
          ~pot:st.pot ~p0 ~src_is_u:i_is_u ~k_src:k ~k_out:kj
          ~scratch:st.scratch ~out:fresh ~out_off:0
      in
      for xj = 0 to kj - 1 do
        let updated =
          ((1.0 -. damping) *. (fresh.(xj) -. vmin))
          +. (damping *. out_msg.(out_off + xj))
        in
        let change = abs_float (updated -. out_msg.(out_off + xj)) in
        if change > !delta then delta := change;
        out_msg.(out_off + xj) <- updated
      done
    done
  done;
  !delta

(* Directed messages one BP sweep updates, by kernel class: every node
   sends along each incident edge, so each edge counts twice.  Flushed
   as one counter add per class per sweep. *)
let count_messages st m =
  let potts = ref 0 and sparse = ref 0 and generic = ref 0 in
  for e = 0 to m - 1 do
    match st.classes.(st.etab.(e)) with
    | Kernel.Potts _ -> potts := !potts + 2
    | Kernel.Const_sparse _ -> sparse := !sparse + 2
    | Kernel.Generic -> generic := !generic + 2
  done;
  (!potts, !sparse, !generic)

let decode st n theta x =
  for i = 0 to n - 1 do
    aggregate st i theta;
    let best = ref 0 in
    for xi = 1 to st.labels.(i) - 1 do
      if theta.(xi) < theta.(!best) then best := xi
    done;
    x.(i) <- !best
  done

let solve ?(config = default_config) ?(interrupt = fun () -> false)
    ?(on_progress = fun ~iter:_ ~energy:_ ~bound:_ -> ()) mrf =
  let run () =
    let st = make_state mrf in
    (* break ties deterministically: symmetric models otherwise sit on the
       all-zero-message fixed point and decode to a mono labeling *)
    if config.init_noise > 0.0 then begin
      let rng = Random.State.make [| 0x5bf0 |] in
      for i = 0 to Array.length st.fw - 1 do
        st.fw.(i) <- Random.State.float rng config.init_noise
      done;
      for i = 0 to Array.length st.bw - 1 do
        st.bw.(i) <- Random.State.float rng config.init_noise
      done
    end;
    let n = Mrf.n_nodes mrf in
    let obs_on = Obs.enabled () in
    let msg_potts, msg_sparse, msg_generic =
      if obs_on then count_messages st (Mrf.n_edges mrf) else (0, 0, 0)
    in
    let theta = Array.make (Mrf.max_label_count mrf) 0.0 in
    let x = Array.make n 0 in
    let best_x = Array.make n 0 in
    decode st n theta best_x;
    let best_energy = ref (Mrf.energy mrf best_x) in
    let iters = ref 0 in
    let converged = ref false in
    (try
       for it = 1 to config.max_iters do
         if interrupt () then raise Exit;
         iters := it;
         Obs.begin_span "bp.sweep";
         let delta = sweep st n theta config.damping in
         decode st n theta x;
         Obs.end_span "bp.sweep";
         if obs_on then begin
           Obs.Counter.add c_msg_potts msg_potts;
           Obs.Counter.add c_msg_sparse msg_sparse;
           Obs.Counter.add c_msg_generic msg_generic
         end;
         let e = Mrf.energy mrf x in
         if e < !best_energy then begin
           best_energy := e;
           Array.blit x 0 best_x 0 n
         end;
         Obs.sample ~name:"bp.energy" !best_energy;
         Obs.sample ~name:"bp.delta" delta;
         on_progress ~iter:it ~energy:!best_energy ~bound:neg_infinity;
         if delta < config.tolerance then begin
           converged := true;
           raise Exit
         end
       done
     with Exit -> ());
    (best_x, !best_energy, !iters, !converged)
  in
  let (labeling, energy, iterations, converged), runtime_s =
    Solver.timed (fun () -> Obs.span ~name:"bp.solve" run)
  in
  {
    Solver.labeling;
    energy;
    lower_bound = neg_infinity;
    iterations;
    converged;
    runtime_s;
  }
