module Obs = Netdiv_obs.Obs
module Recorder = Netdiv_obs.Recorder

(* Acceptance telemetry: proposals and accepted moves are tallied in
   plain local ints inside each restart (restarts may run on pool
   domains) and flushed with one atomic add per restart, so the flip
   loop itself carries no shared-state traffic. *)
let c_proposals = Obs.Counter.make "sa.proposals"
let c_accepts = Obs.Counter.make "sa.accepts"

type config = {
  initial_temp : float;
  cooling : float;
  min_temp : float;
  sweeps_per_temp : int;
  restarts : int;
  seed : int;
  domains : int;
}

let default_config =
  {
    initial_temp = 2.0;
    cooling = 0.9;
    min_temp = 1e-3;
    sweeps_per_temp = 4;
    restarts = 2;
    seed = 0x5ead;
    domains = 1;
  }

(* energy delta of moving node i to label [fresh], given labeling x *)
let move_delta mrf x i fresh =
  let current = x.(i) in
  if fresh = current then 0.0
  else begin
    let delta =
      ref
        (Mrf.unary mrf ~node:i ~label:fresh
        -. Mrf.unary mrf ~node:i ~label:current)
    in
    Array.iter
      (fun (e, i_is_u) ->
        let j = Mrf.opposite mrf ~edge:e i in
        let pot = Mrf.edge_cost mrf e in
        let ki = Mrf.label_count mrf i and kj = Mrf.label_count mrf j in
        let cost xi =
          if i_is_u then pot.((xi * kj) + x.(j)) else pot.((x.(j) * ki) + xi)
        in
        delta := !delta +. cost fresh -. cost current)
      (Mrf.incident mrf i);
    !delta
  end

let greedy_unary_init mrf =
  Array.init (Mrf.n_nodes mrf) (fun i ->
      let k = Mrf.label_count mrf i in
      let best = ref 0 in
      for l = 1 to k - 1 do
        if
          Mrf.unary mrf ~node:i ~label:l < Mrf.unary mrf ~node:i ~label:!best
        then best := l
      done;
      !best)

let solve ?(config = default_config) ?(interrupt = fun () -> false)
    ?(on_progress = fun ~iter:_ ~energy:_ ~bound:_ -> ()) ?init mrf =
  if not (config.cooling > 0.0 && config.cooling < 1.0) then
    invalid_arg "Sa.solve: cooling must lie in (0,1)";
  (* progress callbacks touch caller state, so only fire them when the
     restarts run on this domain *)
  let sequential = config.domains <= 1 || config.restarts <= 1 in
  let run () =
    let n = Mrf.n_nodes mrf in
    let start =
      match init with
      | Some x0 ->
          Mrf.validate_labeling mrf x0;
          Array.copy x0
      | None -> greedy_unary_init mrf
    in
    (* one independent annealing run; deterministic in its restart index *)
    let one_restart restart =
      let rng = Random.State.make [| config.seed; restart |] in
      let x = Array.copy start in
      let energy = ref (Mrf.energy mrf x) in
      let local_best = Array.copy start in
      let local_best_energy = ref !energy in
      let sweeps = ref 0 in
      let stopped = ref false in
      let temp = ref config.initial_temp in
      let proposals = ref 0 in
      let accepts = ref 0 in
      (try
         while !temp > config.min_temp do
           for _ = 1 to config.sweeps_per_temp do
             if interrupt () then begin
               stopped := true;
               raise Exit
             end;
             incr sweeps;
             for i = 0 to n - 1 do
               let k = Mrf.label_count mrf i in
               if k > 1 then begin
                 let fresh = Random.State.int rng k in
                 let delta = move_delta mrf x i fresh in
                 incr proposals;
                 if
                   delta <= 0.0
                   || Random.State.float rng 1.0 < exp (-.delta /. !temp)
                 then begin
                   incr accepts;
                   x.(i) <- fresh;
                   energy := !energy +. delta;
                   if !energy < !local_best_energy then begin
                     local_best_energy := !energy;
                     Array.blit x 0 local_best 0 n
                   end
                 end
               end
             done
           done;
           if sequential then begin
             (* the flight recorder shares the progress callback's
                gating: parallel restarts run on pool workers, whose
                completion order must not reach caller state *)
             Recorder.sweep ~iter:!sweeps ~energy:!local_best_energy
               ~bound:neg_infinity ~residual:!temp ~msg_potts:0 ~msg_sparse:0
               ~msg_generic:0;
             on_progress ~iter:!sweeps ~energy:!local_best_energy
               ~bound:neg_infinity
           end;
           temp := !temp *. config.cooling
         done
       with Exit -> ());
      Obs.Counter.add c_proposals !proposals;
      Obs.Counter.add c_accepts !accepts;
      (local_best, !local_best_energy, !sweeps, !stopped)
    in
    let results =
      if sequential then List.init config.restarts one_restart
      else
        (* each restart owns its rng (seeded by restart index) and the
           pool returns results in restart order, so the outcome is
           identical for any domain count — including the sequential
           path above *)
        (* granularity hint: temperature steps × sweeps × per-sweep
           flip cost (one move_delta over each node's incident edges) *)
        let temps =
          int_of_float
            (Float.max 1.0
               (ceil
                  (log (config.min_temp /. config.initial_temp)
                  /. log config.cooling)))
        in
        let per_sweep = n + (8 * Mrf.n_edges mrf) in
        let cost = temps * config.sweeps_per_temp * per_sweep in
        Array.to_list
          (Netdiv_par.Pool.map_range ~jobs:config.domains ~cost ~lo:0
             ~hi:config.restarts one_restart)
    in
    let best = Array.copy start in
    let best_energy = ref (Mrf.energy mrf start) in
    let sweeps = ref 0 in
    let stopped = ref false in
    List.iter
      (fun (x, e, s, st) ->
        sweeps := !sweeps + s;
        if st then stopped := true;
        if e < !best_energy then begin
          best_energy := e;
          Array.blit x 0 best 0 n
        end)
      results;
    (* guard against float drift in the incremental energy *)
    let true_best = Mrf.energy mrf best in
    (best, true_best, !sweeps, not !stopped)
  in
  let (labeling, energy, iterations, converged), runtime_s =
    Solver.timed (fun () -> Obs.span ~name:"sa.solve" run)
  in
  {
    Solver.labeling;
    energy;
    lower_bound = neg_infinity;
    iterations;
    converged;
    runtime_s;
  }
