let max_edges n = n * (n - 1) / 2

(* Sample [m] distinct edges by rejection; dense graphs fall back to
   shuffling the full edge universe. *)
let gnm ~rng ~n ~m =
  if m < 0 || m > max_edges n then
    invalid_arg
      (Printf.sprintf "Gen.gnm: m = %d out of range for n = %d" m n);
  if 2 * m > max_edges n then begin
    (* dense: Fisher-Yates over all candidate edges *)
    let all = Array.make (max_edges n) (0, 0) in
    let k = ref 0 in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        all.(!k) <- (u, v);
        incr k
      done
    done;
    for i = Array.length all - 1 downto 1 do
      let j = Random.State.int rng (i + 1) in
      let tmp = all.(i) in
      all.(i) <- all.(j);
      all.(j) <- tmp
    done;
    Graph.of_edges ~n (Array.to_list (Array.sub all 0 m))
  end
  else begin
    let seen = Hashtbl.create (2 * m) in
    let edges = ref [] in
    let count = ref 0 in
    while !count < m do
      let u = Random.State.int rng n in
      let v = Random.State.int rng n in
      if u <> v then begin
        let key = if u < v then (u, v) else (v, u) in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          edges := key :: !edges;
          incr count
        end
      end
    done;
    Graph.of_edges ~n !edges
  end

let erdos_renyi ~rng ~n ~p =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1.0 < p then edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let avg_degree ~rng ~n ~degree = gnm ~rng ~n ~m:(n * degree / 2)

(* Streaming form of [connected_avg_degree]: each accepted edge is
   handed to [f] (with [u < v]) instead of being consed into a resident
   list, so a caller can emit a zone's links straight into a compact
   encoder.  The RNG draw sequence is identical to the materialized
   variant, which is implemented on top — the same seed yields the same
   edge set either way. *)
let iter_connected_avg_degree ~rng ~n ~degree f =
  let m = n * degree / 2 in
  if n > 0 && m < n - 1 then
    invalid_arg "Gen.connected_avg_degree: degree too small for connectivity";
  (* random spanning tree: attach each node to a uniformly chosen earlier
     node after a random permutation (uniform random recursive tree) *)
  let perm = Array.init n Fun.id in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = perm.(i) in
    perm.(i) <- perm.(j);
    perm.(j) <- tmp
  done;
  let seen = Hashtbl.create (2 * m) in
  let add u v =
    if u <> v then begin
      let lo = min u v and hi = max u v in
      if not (Hashtbl.mem seen (lo, hi)) then begin
        Hashtbl.add seen (lo, hi) ();
        f lo hi;
        true
      end
      else false
    end
    else false
  in
  for i = 1 to n - 1 do
    let parent = perm.(Random.State.int rng i) in
    ignore (add perm.(i) parent)
  done;
  let count = ref (n - 1) in
  while !count < m do
    let u = Random.State.int rng n in
    let v = Random.State.int rng n in
    if add u v then incr count
  done

let connected_avg_degree ~rng ~n ~degree =
  let edges = ref [] in
  iter_connected_avg_degree ~rng ~n ~degree (fun u v ->
      edges := (u, v) :: !edges);
  Graph.of_edges ~n !edges

let line n =
  Graph.of_edges ~n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let cycle n =
  if n < 3 then invalid_arg "Gen.cycle: need at least 3 nodes";
  Graph.of_edges ~n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let star n =
  Graph.of_edges ~n (List.init (max 0 (n - 1)) (fun i -> (0, i + 1)))

let grid rows cols =
  let n = rows * cols in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      let id = (r * cols) + c in
      if c + 1 < cols then edges := (id, id + 1) :: !edges;
      if r + 1 < rows then edges := (id, id + cols) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let complete n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n !edges
