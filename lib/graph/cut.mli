(** Minimum cuts between hosts — segmentation analysis.

    A worm must cross every cut separating its entry from the target, so
    the minimum edge cut is both an upper bound on the paths a defender
    must watch and the cheapest set of links to firewall off.  Unit-
    capacity max-flow (Edmonds–Karp) over the undirected host graph. *)

val max_flow : Graph.t -> source:int -> sink:int -> int
(** Maximum number of edge-disjoint paths between two hosts (0 when
    disconnected).
    @raise Invalid_argument on out-of-range endpoints or
    [source = sink]. *)

val min_edge_cut : Graph.t -> source:int -> sink:int -> (int * int) list
(** A minimum set of edges whose removal disconnects [sink] from
    [source]; its size equals {!max_flow} (Menger).  Edges are returned
    with the source-side endpoint first. *)

val is_cut : Graph.t -> source:int -> sink:int -> (int * int) list -> bool
(** Checks that removing the given edges actually separates the pair. *)

val greedy_partition : Graph.t -> parts:int -> int array
(** [greedy_partition g ~parts] assigns every node a part id in
    [0 .. min parts (n_nodes g) - 1] by deterministic BFS growth: parts
    are grown one at a time from the lowest-id unassigned node,
    absorbing neighbors in sorted order until the part reaches its
    quota, so sizes differ by at most one and parts are connected
    whenever the graph permits.  Depends only on the graph — never on
    job counts.  This is the zone fallback for hierarchical solving
    ({!Netdiv_mrf.Trws.solve_zoned}) when a workload carries no zone
    structure.
    @raise Invalid_argument when [parts < 1]. *)
