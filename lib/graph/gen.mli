(** Seeded random and deterministic graph generators.

    Used by the scalability study (Section VIII), which optimizes randomly
    generated networks parameterized by host count and average degree.  All
    generators are deterministic given the [Random.State.t]. *)

val gnm : rng:Random.State.t -> n:int -> m:int -> Graph.t
(** [gnm ~rng ~n ~m] samples a uniform simple graph with [n] nodes and
    exactly [m] distinct edges.
    @raise Invalid_argument if [m] exceeds [n*(n-1)/2]. *)

val erdos_renyi : rng:Random.State.t -> n:int -> p:float -> Graph.t
(** Each of the [n*(n-1)/2] candidate edges is kept with probability [p]. *)

val avg_degree : rng:Random.State.t -> n:int -> degree:int -> Graph.t
(** [avg_degree ~rng ~n ~degree] is the paper's random-network model: a
    uniform graph whose average degree is [degree], i.e. {!gnm} with
    [m = n * degree / 2]. *)

val connected_avg_degree : rng:Random.State.t -> n:int -> degree:int -> Graph.t
(** Like {!avg_degree} but guaranteed connected: a uniform random spanning
    tree is laid down first and the remaining edges are sampled uniformly.
    Requires [degree >= 2] so that [m >= n-1]. *)

val iter_connected_avg_degree :
  rng:Random.State.t -> n:int -> degree:int -> (int -> int -> unit) -> unit
(** Streaming form of {!connected_avg_degree}: calls [f u v] (with
    [u < v]) once per accepted edge instead of materializing a
    {!Graph.t}, so large instances can be emitted straight into a
    compact encoder without a resident edge list.  Draws the same RNG
    sequence as {!connected_avg_degree} — the same seed produces the
    same edge set either way. *)

val line : int -> Graph.t
(** Path graph [0 - 1 - ... - (n-1)]. *)

val cycle : int -> Graph.t
val star : int -> Graph.t
(** Node 0 connected to all others. *)

val grid : int -> int -> Graph.t
(** [grid rows cols]: 4-connected lattice, node [r*cols + c]. *)

val complete : int -> Graph.t
