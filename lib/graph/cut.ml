(* Unit-capacity Edmonds-Karp on the undirected graph: each undirected
   edge becomes a pair of directed arcs with capacity 1 each; residual
   capacities live in a hashtable keyed by directed pair. *)

let check g source sink =
  let n = Graph.n_nodes g in
  if source < 0 || source >= n || sink < 0 || sink >= n then
    invalid_arg "Cut: endpoint out of range";
  if source = sink then invalid_arg "Cut: source equals sink"

let residual_bfs g capacity source sink =
  let n = Graph.n_nodes g in
  let parent = Array.make n (-1) in
  let seen = Array.make n false in
  seen.(source) <- true;
  let queue = Queue.create () in
  Queue.add source queue;
  let found = ref false in
  while (not !found) && not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Graph.fold_neighbors
      (fun v () ->
        if (not seen.(v)) && Hashtbl.find capacity (u, v) > 0 then begin
          seen.(v) <- true;
          parent.(v) <- u;
          if v = sink then found := true else Queue.add v queue
        end)
      g u ()
  done;
  if !found then Some parent else None

let run_max_flow g ~source ~sink =
  check g source sink;
  let capacity = Hashtbl.create (4 * Graph.n_edges g) in
  Graph.iter_edges
    (fun u v ->
      Hashtbl.replace capacity (u, v) 1;
      Hashtbl.replace capacity (v, u) 1)
    g;
  let flow = ref 0 in
  let continue = ref true in
  while !continue do
    match residual_bfs g capacity source sink with
    | None -> continue := false
    | Some parent ->
        incr flow;
        let rec push v =
          if v <> source then begin
            let u = parent.(v) in
            Hashtbl.replace capacity (u, v) (Hashtbl.find capacity (u, v) - 1);
            Hashtbl.replace capacity (v, u) (Hashtbl.find capacity (v, u) + 1);
            push u
          end
        in
        push sink
  done;
  (!flow, capacity)

let max_flow g ~source ~sink = fst (run_max_flow g ~source ~sink)

let min_edge_cut g ~source ~sink =
  let _, capacity = run_max_flow g ~source ~sink in
  (* source side of the residual graph *)
  let n = Graph.n_nodes g in
  let side = Array.make n false in
  side.(source) <- true;
  let queue = Queue.create () in
  Queue.add source queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Graph.fold_neighbors
      (fun v () ->
        if (not side.(v)) && Hashtbl.find capacity (u, v) > 0 then begin
          side.(v) <- true;
          Queue.add v queue
        end)
      g u ()
  done;
  let cut = ref [] in
  Graph.iter_edges
    (fun u v ->
      match (side.(u), side.(v)) with
      | true, false -> cut := (u, v) :: !cut
      | false, true -> cut := (v, u) :: !cut
      | _ -> ())
    g;
  List.rev !cut

(* Deterministic balanced partition by BFS growth: parts are grown one
   at a time from the lowest-id unassigned node, absorbing the frontier
   in sorted-neighbor order until the part reaches its quota.  Quotas
   split n as evenly as possible (the first n mod parts quotas get one
   extra node), so the result depends only on the graph — never on job
   counts — and disconnected graphs pack components into parts in node
   order.  This is the zone fallback for instances whose workload
   carries no zone structure: parts are connected whenever the graph
   permits, so zone-interior subproblems keep most edges interior. *)
let greedy_partition g ~parts =
  let n = Graph.n_nodes g in
  if parts < 1 then invalid_arg "Cut.greedy_partition: parts < 1";
  let part = Array.make n (-1) in
  if parts = 1 then Array.fill part 0 n 0
  else begin
    let parts = min parts (max 1 n) in
    let base = n / parts and extra = n mod parts in
    let quota p = base + if p < extra then 1 else 0 in
    let queue = Queue.create () in
    let scan = ref 0 in
    for p = 0 to parts - 1 do
      let remaining = ref (quota p) in
      Queue.clear queue;
      while !remaining > 0 do
        (if Queue.is_empty queue then begin
           (* next seed: lowest unassigned node (new component or a
              node stranded by a filled part) *)
           while part.(!scan) >= 0 do
             incr scan
           done;
           part.(!scan) <- p;
           decr remaining;
           Queue.add !scan queue
         end
         else
           let u = Queue.pop queue in
           Graph.fold_neighbors
             (fun v () ->
               if !remaining > 0 && part.(v) < 0 then begin
                 part.(v) <- p;
                 decr remaining;
                 Queue.add v queue
               end)
             g u ())
      done
    done
  end;
  part

let is_cut g ~source ~sink edges =
  check g source sink;
  let removed = Hashtbl.create (List.length edges) in
  List.iter
    (fun (u, v) ->
      Hashtbl.replace removed (min u v, max u v) ())
    edges;
  let n = Graph.n_nodes g in
  let seen = Array.make n false in
  seen.(source) <- true;
  let queue = Queue.create () in
  Queue.add source queue;
  let reached = ref false in
  while (not !reached) && not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Graph.fold_neighbors
      (fun v () ->
        if
          (not seen.(v))
          && not (Hashtbl.mem removed (min u v, max u v))
        then begin
          seen.(v) <- true;
          if v = sink then reached := true else Queue.add v queue
        end)
      g u ()
  done;
  not !reached
