(* Convergence flight recorder.  See recorder.mli for the contract.

   Storage is a struct-of-arrays ring: one int array of frame tags, one
   flat [floatarray] of WIDTH slots per frame (stores into a floatarray
   are unboxed), and one string array for mark labels.  A record is a
   mutex-guarded bounded write — no allocation, no growth — so the
   recorder can stay installed for a 100k-host solve where the full
   event-buffer trace would be too heavy.  The frame variant below is
   only materialized at read-out time ([frames] / [dump]). *)

let width = 8
let default_capacity = 1024

(* frame tags in the ring *)
let tag_sweep = 0
let tag_zone = 1
let tag_boundary = 2
let tag_mark = 3

type t = {
  rname : string;
  capacity : int;
  t0 : float;
  dump_path : string option;
  lock : Mutex.t;
  tags : int array;
  data : floatarray;
  labels : string array;
  mutable total : int;
  mutable last_reason : string option;
}

type sweep_frame = {
  s_t : float;
  s_iter : int;
  s_energy : float;
  s_bound : float;
  s_residual : float;
  s_msg_potts : int;
  s_msg_sparse : int;
  s_msg_generic : int;
}

type zone_frame = {
  z_t : float;
  z_round : int;
  z_zone : int;
  z_energy : float;
  z_bound : float;
  z_iterations : int;
  z_converged : bool;
}

type boundary_frame = {
  b_t : float;
  b_round : int;
  b_disagree : int;
  b_edge_bound : float;
  b_zone_bound : float;
  b_step : float;
}

type mark_frame = { mk_t : float; mk_label : string }

type frame =
  | Sweep of sweep_frame
  | Zone of zone_frame
  | Boundary of boundary_frame
  | Mark of mark_frame

let create ?dump_path ?(capacity = default_capacity) name =
  let capacity = max 1 capacity in
  {
    rname = name;
    capacity;
    t0 = Obs.Clock.now ();
    dump_path;
    lock = Mutex.create ();
    tags = Array.make capacity 0;
    data = Float.Array.make (capacity * width) 0.0;
    labels = Array.make capacity "";
    total = 0;
    last_reason = None;
  }

let name r = r.rname
let capacity r = r.capacity
let recorded r = r.total
let dropped r = max 0 (r.total - r.capacity)

(* One bounded slot write.  Manual lock/unlock: [Mutex.protect] would
   allocate a closure on every frame. *)
let write r tag label f0 f1 f2 f3 f4 f5 f6 f7 =
  Mutex.lock r.lock;
  let slot = r.total mod r.capacity in
  let base = slot * width in
  r.tags.(slot) <- tag;
  r.labels.(slot) <- label;
  Float.Array.set r.data base f0;
  Float.Array.set r.data (base + 1) f1;
  Float.Array.set r.data (base + 2) f2;
  Float.Array.set r.data (base + 3) f3;
  Float.Array.set r.data (base + 4) f4;
  Float.Array.set r.data (base + 5) f5;
  Float.Array.set r.data (base + 6) f6;
  Float.Array.set r.data (base + 7) f7;
  r.total <- r.total + 1;
  Mutex.unlock r.lock

(* ------------------------------------------- ambient current recorder *)

(* The installed recorder is per-domain state: solver hot loops record
   through [current] without threading a recorder argument through
   every signature, and [suspended] can blank it around parallel
   regions so pool workers (and the participating caller domain) never
   record frames in a schedule-dependent order. *)
let current_key : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let current () = !(Domain.DLS.get current_key)
let installed () = current () <> None

let with_current v f =
  let cell = Domain.DLS.get current_key in
  let saved = !cell in
  cell := v;
  match f () with
  | x ->
      cell := saved;
      x
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      cell := saved;
      Printexc.raise_with_backtrace e bt

let with_recorder r f = with_current (Some r) f
let suspended f = with_current None f

let elapsed r = Obs.Clock.now () -. r.t0

let sweep ~iter ~energy ~bound ~residual ~msg_potts ~msg_sparse ~msg_generic =
  match current () with
  | None -> ()
  | Some r ->
      write r tag_sweep "" (elapsed r) (float_of_int iter) energy bound
        residual
        (float_of_int msg_potts)
        (float_of_int msg_sparse)
        (float_of_int msg_generic)

let zone ~round ~zone ~energy ~bound ~iterations ~converged =
  match current () with
  | None -> ()
  | Some r ->
      write r tag_zone "" (elapsed r) (float_of_int round) (float_of_int zone)
        energy bound
        (float_of_int iterations)
        (if converged then 1.0 else 0.0)
        0.0

let boundary ~round ~disagree ~edge_bound ~zone_bound ~step =
  match current () with
  | None -> ()
  | Some r ->
      write r tag_boundary "" (elapsed r) (float_of_int round)
        (float_of_int disagree) edge_bound zone_bound step 0.0 0.0

let mark label =
  match current () with
  | None -> ()
  | Some r -> write r tag_mark label (elapsed r) 0.0 0.0 0.0 0.0 0.0 0.0 0.0

(* ------------------------------------------------------------ read-out *)

let frame_of r slot =
  let base = slot * width in
  let g i = Float.Array.get r.data (base + i) in
  let t = g 0 in
  let tag = r.tags.(slot) in
  if tag = tag_sweep then
    Sweep
      {
        s_t = t;
        s_iter = int_of_float (g 1);
        s_energy = g 2;
        s_bound = g 3;
        s_residual = g 4;
        s_msg_potts = int_of_float (g 5);
        s_msg_sparse = int_of_float (g 6);
        s_msg_generic = int_of_float (g 7);
      }
  else if tag = tag_zone then
    Zone
      {
        z_t = t;
        z_round = int_of_float (g 1);
        z_zone = int_of_float (g 2);
        z_energy = g 3;
        z_bound = g 4;
        z_iterations = int_of_float (g 5);
        z_converged = g 6 <> 0.0;
      }
  else if tag = tag_boundary then
    Boundary
      {
        b_t = t;
        b_round = int_of_float (g 1);
        b_disagree = int_of_float (g 2);
        b_edge_bound = g 3;
        b_zone_bound = g 4;
        b_step = g 5;
      }
  else Mark { mk_t = t; mk_label = r.labels.(slot) }

let frames r =
  Mutex.lock r.lock;
  let total = r.total in
  let n = min total r.capacity in
  (* oldest retained frame first: when the ring has wrapped the slot
     after the write cursor is the oldest *)
  let start = if total <= r.capacity then 0 else total mod r.capacity in
  let out =
    List.init n (fun i -> frame_of r ((start + i) mod r.capacity))
  in
  Mutex.unlock r.lock;
  out

(* --------------------------------------------------------------- dump *)

let add_frame buf = function
  | Sweep s ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"k\":\"sweep\",\"t\":%s,\"iter\":%d,\"energy\":%s,\"bound\":%s,\
            \"residual\":%s,\"msg_potts\":%d,\"msg_sparse\":%d,\
            \"msg_generic\":%d}"
           (Export.json_float s.s_t) s.s_iter
           (Export.json_float s.s_energy)
           (Export.json_float s.s_bound)
           (Export.json_float s.s_residual)
           s.s_msg_potts s.s_msg_sparse s.s_msg_generic)
  | Zone z ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"k\":\"zone\",\"t\":%s,\"round\":%d,\"zone\":%d,\"energy\":%s,\
            \"bound\":%s,\"iters\":%d,\"converged\":%b}"
           (Export.json_float z.z_t) z.z_round z.z_zone
           (Export.json_float z.z_energy)
           (Export.json_float z.z_bound)
           z.z_iterations z.z_converged)
  | Boundary b ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"k\":\"boundary\",\"t\":%s,\"round\":%d,\"disagree\":%d,\
            \"edge_bound\":%s,\"zone_bound\":%s,\"step\":%s}"
           (Export.json_float b.b_t) b.b_round b.b_disagree
           (Export.json_float b.b_edge_bound)
           (Export.json_float b.b_zone_bound)
           (Export.json_float b.b_step))
  | Mark m ->
      Buffer.add_string buf
        (Printf.sprintf "{\"k\":\"mark\",\"t\":%s,\"label\":\"%s\"}"
           (Export.json_float m.mk_t) (Export.escape m.mk_label))

let dump_string ~reason r =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"netdiv_recorder\":1,\"name\":\"%s\",\"reason\":\"%s\",\
        \"capacity\":%d,\"recorded\":%d,\"dropped\":%d,\"frames\":["
       (Export.escape r.rname) (Export.escape reason) r.capacity r.total
       (dropped r));
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n';
      add_frame buf f)
    (frames r);
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

let last_dump r = r.last_reason

let dump ?path ~reason r =
  let path = match path with Some _ -> path | None -> r.dump_path in
  match path with
  | None -> Ok ()
  | Some path -> (
      match Netdiv_fault.Io.write_atomic ~path (dump_string ~reason r) with
      | Ok () ->
          r.last_reason <- Some reason;
          Ok ()
      | Error _ as e -> e)
