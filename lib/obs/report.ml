(* Convergence/profiling report logic.  See report.mli.

   Everything here is pure analysis over already-captured data
   ([Obs.event list] from a trace, [Recorder.frame list] from a flight
   recorder dump) so the CLI `netdiv report` and `netdiv obs-summary`
   subcommands share one code path; parsing JSON back into events and
   frames stays in bin/ with the repo's JSON reader. *)

(* ---------------------------------------------------------- hot spans *)

let hot_spans ?(k = 10) events =
  let rollup = Export.span_rollup events in
  List.filteri (fun i _ -> i < k) rollup

let pp_hot_spans ?k ppf events =
  match hot_spans ?k events with
  | [] -> Format.fprintf ppf "hot spans: none"
  | rows ->
      Format.fprintf ppf "@[<v>hot spans (by total time):@,";
      Format.fprintf ppf "  %-34s %8s %12s %12s@," "name" "count" "total_s"
        "max_s";
      List.iter
        (fun (name, count, total, mx) ->
          Format.fprintf ppf "  %-34s %8d %12.6f %12.6f@," name count total
            mx)
        rows;
      Format.fprintf ppf "@]"

(* --------------------------------------------- kernel-class throughput *)

type throughput = {
  k_class : string;
  k_messages : float;
  k_sweep_s : float;
  k_per_s : float;
}

let msg_prefix = "mrf.messages."

let kernel_throughput events =
  (* message totals: solvers sample the per-solve per-class totals at
     the end of every run_loop, so summing the Sample events recovers
     the global count even across several solves in one trace *)
  let totals : (string, float ref) Hashtbl.t = Hashtbl.create 4 in
  List.iter
    (fun (e : Obs.event) ->
      if
        e.Obs.kind = Obs.Sample
        && String.length e.Obs.name > String.length msg_prefix
        && String.sub e.Obs.name 0 (String.length msg_prefix) = msg_prefix
      then begin
        let cls =
          String.sub e.Obs.name
            (String.length msg_prefix)
            (String.length e.Obs.name - String.length msg_prefix)
        in
        match Hashtbl.find_opt totals cls with
        | Some r -> r := !r +. e.Obs.value
        | None -> Hashtbl.add totals cls (ref e.Obs.value)
      end)
    events;
  (* messages are produced inside sweep spans; their total wall time is
     the denominator *)
  let sweep_s =
    List.fold_left
      (fun acc (name, _, total, _) ->
        if name = "trws.sweep" || name = "bp.sweep" then acc +. total else acc)
      0.0 (Export.span_rollup events)
  in
  Hashtbl.fold
    (fun cls r acc ->
      {
        k_class = cls;
        k_messages = !r;
        k_sweep_s = sweep_s;
        k_per_s = (if sweep_s > 0.0 then !r /. sweep_s else 0.0);
      }
      :: acc)
    totals []
  |> List.sort (fun a b ->
         let c = Float.compare b.k_messages a.k_messages in
         if c <> 0 then c else compare a.k_class b.k_class)

let pp_throughput ppf events =
  match kernel_throughput events with
  | [] -> ()
  | rows ->
      Format.fprintf ppf "@[<v>kernel-class message throughput:@,";
      Format.fprintf ppf "  %-16s %16s %12s %16s@," "class" "messages"
        "sweep_s" "msgs/s";
      List.iter
        (fun t ->
          Format.fprintf ppf "  %-16s %16.0f %12.6f %16.3e@," t.k_class
            t.k_messages t.k_sweep_s t.k_per_s)
        rows;
      Format.fprintf ppf "@]"

(* ------------------------------------------------------ time-to-gap *)

type milestone = { m_gap_pct : float; m_t : float; m_iter : int }

(* the repo-wide relative-gap convention (see bench hierarchical_scale
   and Solver.optimality_gap): gap normalized by max(1, |energy|) *)
let rel_gap ~energy ~bound =
  if Float.is_finite bound then
    (energy -. bound) /. Float.max 1.0 (Float.abs energy)
  else infinity

let milestone_thresholds = [ 50.0; 20.0; 10.0; 5.0; 2.0; 1.0; 0.5; 0.1 ]

let sweeps frames =
  List.filter_map
    (function Recorder.Sweep s -> Some s | _ -> None)
    frames

let boundaries frames =
  List.filter_map
    (function Recorder.Boundary b -> Some b | _ -> None)
    frames

let marks frames =
  List.filter_map (function Recorder.Mark m -> Some m | _ -> None) frames

let sweep_gap (s : Recorder.sweep_frame) =
  rel_gap ~energy:s.Recorder.s_energy ~bound:s.Recorder.s_bound

let gap_milestones frames =
  let ss = sweeps frames in
  List.filter_map
    (fun pct ->
      List.find_opt (fun s -> sweep_gap s *. 100.0 <= pct) ss
      |> Option.map (fun (s : Recorder.sweep_frame) ->
             {
               m_gap_pct = pct;
               m_t = s.Recorder.s_t;
               m_iter = s.Recorder.s_iter;
             }))
    milestone_thresholds

(* ------------------------------------------------- zone attribution *)

type zone_gap = {
  z_zone : int;
  z_energy : float;
  z_bound : float;
  z_gap : float;
  z_converged : bool;
}

let zone_attribution frames =
  let zs =
    List.filter_map
      (function Recorder.Zone z -> Some z | _ -> None)
      frames
  in
  let last_round =
    List.fold_left (fun acc z -> max acc z.Recorder.z_round) (-1) zs
  in
  List.filter_map
    (fun (z : Recorder.zone_frame) ->
      if z.Recorder.z_round <> last_round then None
      else
        Some
          {
            z_zone = z.Recorder.z_zone;
            z_energy = z.Recorder.z_energy;
            z_bound = z.Recorder.z_bound;
            z_gap = z.Recorder.z_energy -. z.Recorder.z_bound;
            z_converged = z.Recorder.z_converged;
          })
    zs
  |> List.sort (fun a b ->
         let c = Float.compare b.z_gap a.z_gap in
         if c <> 0 then c else compare a.z_zone b.z_zone)

(* -------------------------------------------------- stall diagnosis *)

let last_n n l =
  let len = List.length l in
  if len <= n then l else List.filteri (fun i _ -> i >= len - n) l

let diagnose frames =
  let ss = sweeps frames in
  let bs = boundaries frames in
  match (bs, ss) with
  | [], [] -> "no convergence frames recorded"
  | _ :: _, _ ->
      (* zoned solve: the boundary frames carry the round-level story *)
      let tail = last_n 3 bs in
      let last = List.nth tail (List.length tail - 1) in
      if last.Recorder.b_disagree = 0 then
        "zones agree on every boundary edge (primal/dual reconciled)"
      else
        let plateaued =
          List.length tail >= 3
          && List.for_all
               (fun (b : Recorder.boundary_frame) ->
                 b.Recorder.b_disagree = last.Recorder.b_disagree)
               tail
        in
        if plateaued then
          Printf.sprintf
            "boundary disagreement plateaued at %d edge(s) — re-solve the \
             top-gap zones or shrink the subgradient step"
            last.Recorder.b_disagree
        else
          Printf.sprintf
            "boundary disagreement still shrinking (%d edge(s) at dump)"
            last.Recorder.b_disagree
  | [], _ :: _ ->
      let last = List.nth ss (List.length ss - 1) in
      let gap = sweep_gap last in
      if gap <= 0.0 then "converged: dual gap closed"
      else
        let recent = last_n 3 ss in
        let stalled =
          (* flat best energy AND best bound across the recent bound
             evaluations — the same condition that drives the solver's
             stall counter, reconstructed without knowing its tolerance *)
          match recent with
          | a :: rest when List.length recent >= 3 ->
              List.for_all
                (fun (s : Recorder.sweep_frame) ->
                  s.Recorder.s_energy = a.Recorder.s_energy
                  && s.Recorder.s_bound = a.Recorder.s_bound)
                rest
          | _ -> false
        in
        if stalled then
          Printf.sprintf
            "stalled: no energy/bound progress over the last %d bound \
             evaluations (gap %.3g%%)"
            (List.length recent) (gap *. 100.0)
        else Printf.sprintf "still progressing (gap %.3g%%)" (gap *. 100.0)

(* ----------------------------------------------------- full renderer *)

let pp_convergence ppf frames =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "diagnosis: %s@," (diagnose frames);
  (match marks frames with
  | [] -> ()
  | ms ->
      Format.fprintf ppf "marks:@,";
      List.iter
        (fun (m : Recorder.mark_frame) ->
          Format.fprintf ppf "  %10.6fs  %s@," m.Recorder.mk_t
            m.Recorder.mk_label)
        ms);
  (match gap_milestones frames with
  | [] -> ()
  | ms ->
      Format.fprintf ppf "time to gap:@,";
      Format.fprintf ppf "  %8s %12s %8s@," "gap<=" "t_s" "iter";
      List.iter
        (fun m ->
          Format.fprintf ppf "  %7g%% %12.6f %8d@," m.m_gap_pct m.m_t
            m.m_iter)
        ms);
  (match zone_attribution frames with
  | [] -> ()
  | zs ->
      Format.fprintf ppf
        "zone gap attribution (re-solve the top zones first):@,";
      Format.fprintf ppf "  %6s %16s %16s %12s %s@," "zone" "energy" "bound"
        "gap" "converged";
      List.iter
        (fun z ->
          Format.fprintf ppf "  %6d %16.6f %16.6f %12.6f %b@," z.z_zone
            z.z_energy z.z_bound z.z_gap z.z_converged)
        zs);
  (match boundaries frames with
  | [] -> ()
  | bs ->
      Format.fprintf ppf "boundary reconciliation:@,";
      Format.fprintf ppf "  %6s %10s %16s %16s %12s@," "round" "disagree"
        "zone_bound" "edge_bound" "step";
      List.iter
        (fun (b : Recorder.boundary_frame) ->
          Format.fprintf ppf "  %6d %10d %16.6f %16.6f %12.6g@,"
            b.Recorder.b_round b.Recorder.b_disagree b.Recorder.b_zone_bound
            b.Recorder.b_edge_bound b.Recorder.b_step)
        bs);
  (match sweeps frames with
  | [] -> ()
  | ss ->
      let n = List.length ss in
      let last = List.nth ss (n - 1) in
      Format.fprintf ppf
        "sweep frames: %d (last: iter %d, energy %.6f, bound %.6f)@," n
        last.Recorder.s_iter last.Recorder.s_energy last.Recorder.s_bound);
  Format.fprintf ppf "@]"
