(** Convergence and profiling report analysis, shared by the
    [netdiv report] and [netdiv obs-summary] subcommands.

    Everything operates on already-captured data — {!Obs.event} lists
    decoded from a trace and {!Recorder.frame} lists decoded from a
    flight-recorder dump — so the two CLI entry points render through
    one code path.  JSON parsing stays in [bin/] (with the repo's
    dependency-free reader); this library never reads files. *)

(** {1 Trace-event analyses} *)

val hot_spans :
  ?k:int -> Obs.event list -> (string * int * float * float) list
(** Top-[k] (default 10) spans by total time:
    [(name, count, total_s, max_s)], descending. *)

val pp_hot_spans : ?k:int -> Format.formatter -> Obs.event list -> unit

type throughput = {
  k_class : string;  (** kernel class: potts / const_sparse / generic *)
  k_messages : float;  (** messages of this class across the trace *)
  k_sweep_s : float;  (** total sweep-span wall time (the denominator) *)
  k_per_s : float;  (** messages per sweep second ([0.] if no sweeps) *)
}

val kernel_throughput : Obs.event list -> throughput list
(** Per-kernel-class message throughput: solvers sample their per-solve
    message totals under [mrf.messages.<class>], and sweeps run under
    [trws.sweep]/[bp.sweep] spans; the ratio is messages per sweep
    second.  Sorted by descending message count. *)

val pp_throughput : Format.formatter -> Obs.event list -> unit
(** Renders {!kernel_throughput}; prints nothing when the trace carries
    no message samples. *)

(** {1 Flight-recorder analyses} *)

type milestone = { m_gap_pct : float; m_t : float; m_iter : int }

val gap_milestones : Recorder.frame list -> milestone list
(** Time-to-gap curve: for each threshold (50/20/10/5/2/1/0.5/0.1%),
    the first sweep frame whose relative gap
    [(energy - bound) / max 1 |energy|] is at or below it.  Thresholds
    never reached are omitted. *)

type zone_gap = {
  z_zone : int;
  z_energy : float;
  z_bound : float;
  z_gap : float;  (** absolute energy - bound for this zone *)
  z_converged : bool;
}

val zone_attribution : Recorder.frame list -> zone_gap list
(** Per-zone gap attribution from the last recorded round of a zoned
    solve, ranked by descending gap — the order in which zones are
    worth re-solving.  Empty for non-zoned solves. *)

val diagnose : Recorder.frame list -> string
(** One-line stall/convergence diagnosis: boundary-disagreement trend
    for zoned solves, best-energy/bound flatness for monolithic ones. *)

val pp_convergence : Format.formatter -> Recorder.frame list -> unit
(** The full convergence report: diagnosis, marks, time-to-gap table,
    zone gap attribution, boundary-reconciliation trajectory and a
    sweep-frame digest. *)
