(* Trace exporters.  See export.mli for the formats.

   The writers are hand-rolled (the library stays dependency-free); the
   only subtlety is keeping the output inside the JSON grammar: names
   are escaped, and non-finite floats — which JSON numbers cannot
   carry — are emitted as strings. *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float v =
  if Float.is_finite v then Printf.sprintf "%.17g" v
  else Printf.sprintf "\"%s\"" (escape (Float.to_string v))

let ph = function
  | Obs.Begin -> "B"
  | Obs.End -> "E"
  | Obs.Instant -> "i"
  | Obs.Sample -> "C"

(* One Chrome trace_event object; [t0] rebases timestamps so the trace
   starts at zero (ts is microseconds in the format). *)
let add_event buf t0 (e : Obs.event) =
  Buffer.add_string buf
    (Printf.sprintf "{\"name\":\"%s\",\"ph\":\"%s\",\"ts\":%.3f,\"pid\":1,\"tid\":%d"
       (escape e.Obs.name) (ph e.Obs.kind)
       ((e.Obs.ts -. t0) *. 1e6)
       e.Obs.tid);
  (match e.Obs.kind with
  | Obs.Instant -> Buffer.add_string buf ",\"s\":\"t\""
  | Obs.Sample ->
      Buffer.add_string buf
        (Printf.sprintf ",\"args\":{\"value\":%s}" (json_float e.Obs.value))
  | Obs.Begin | Obs.End -> ());
  Buffer.add_char buf '}'

let epoch events =
  match events with [] -> 0.0 | e :: _ -> e.Obs.ts

let chrome_string () =
  let events = Obs.events () in
  let t0 = epoch events in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '\n';
      add_event buf t0 e)
    events;
  Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

let jsonl_string () =
  let events = Obs.events () in
  let t0 = epoch events in
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      add_event buf t0 e;
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

let write_trace ~path =
  let contents =
    if Filename.check_suffix path ".jsonl" then jsonl_string ()
    else chrome_string ()
  in
  Netdiv_fault.Io.write_atomic ~path contents

(* ------------------------------------------------------------ summary *)

let span_rollup events =
  (* per-tid stack of open (name, ts) frames; an End pops the nearest
     matching open and abandons anything stacked above it, so an
     unbalanced begin_span cannot corrupt later pairings *)
  let stacks : (int, (string * float) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let stack tid =
    match Hashtbl.find_opt stacks tid with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.add stacks tid s;
        s
  in
  let agg : (string, (int * float * float) ref) Hashtbl.t =
    Hashtbl.create 16
  in
  List.iter
    (fun (e : Obs.event) ->
      match e.Obs.kind with
      | Obs.Begin ->
          let s = stack e.Obs.tid in
          s := (e.Obs.name, e.Obs.ts) :: !s
      | Obs.End -> (
          let s = stack e.Obs.tid in
          let rec split acc = function
            | [] -> None
            | (n, t) :: rest when n = e.Obs.name -> Some (t, rest, acc)
            | frame :: rest -> split (frame :: acc) rest
          in
          match split [] !s with
          | None -> ()
          | Some (t, rest, _abandoned) ->
              s := rest;
              let d = e.Obs.ts -. t in
              let cell =
                match Hashtbl.find_opt agg e.Obs.name with
                | Some c -> c
                | None ->
                    let c = ref (0, 0.0, 0.0) in
                    Hashtbl.add agg e.Obs.name c;
                    c
              in
              let count, total, mx = !cell in
              cell := (count + 1, total +. d, if d > mx then d else mx))
      | Obs.Instant | Obs.Sample -> ())
    events;
  let rows =
    Hashtbl.fold
      (fun name cell acc ->
        let count, total, mx = !cell in
        (name, count, total, mx) :: acc)
      agg []
  in
  List.sort
    (fun (na, _, ta, _) (nb, _, tb, _) ->
      let c = Float.compare tb ta in
      if c <> 0 then c else compare na nb)
    rows

let pp_metric ppf = function
  | Obs.Counter_v { name; count } ->
      Format.fprintf ppf "counter    %-32s %d" name count
  | Obs.Gauge_v { name; value } ->
      Format.fprintf ppf "gauge      %-32s %g" name value
  | Obs.Histogram_v { name; count; sum; min; max; _ } ->
      if count = 0 then
        Format.fprintf ppf "histogram  %-32s (empty)" name
      else
        Format.fprintf ppf
          "histogram  %-32s count %d, sum %g, min %g, mean %g, max %g" name
          count sum min
          (sum /. float_of_int count)
          max

let pp_summary ppf () =
  let events = Obs.events () in
  let rollup = span_rollup events in
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "events: %d@," (List.length events);
  if rollup <> [] then begin
    Format.fprintf ppf "spans:@,";
    Format.fprintf ppf "  %-34s %8s %12s %12s@," "name" "count" "total_s"
      "max_s";
    List.iter
      (fun (name, count, total, mx) ->
        Format.fprintf ppf "  %-34s %8d %12.6f %12.6f@," name count total mx)
      rollup
  end;
  let ms = Obs.metrics () in
  if ms <> [] then begin
    Format.fprintf ppf "metrics:@,";
    List.iter (fun m -> Format.fprintf ppf "  %a@," pp_metric m) ms
  end;
  Format.fprintf ppf "@]"
