(** Exporters for {!Obs} data: Chrome [trace_event] JSON, JSONL, and a
    plain-text summary.

    Both JSON forms use the same per-event object shape (the Chrome
    trace format's):

    {v {"name":N,"ph":P,"ts":T,"pid":1,"tid":I[,"args":{"value":V}]} v}

    with [ph] one of ["B"]/["E"] (span begin/end), ["i"] (instant) or
    ["C"] (counter sample) and [ts] in microseconds relative to the
    first recorded event.  The Chrome form wraps the objects in
    [{"traceEvents":[...]}] — load it directly in [chrome://tracing] or
    Perfetto; the JSONL form emits one object per line for streaming
    consumers.  Non-finite sample values are emitted as JSON strings
    (["inf"], ["nan"]) so the output always parses. *)

val escape : string -> string
(** JSON string-body escaping (quotes, backslashes, control chars) —
    shared by every hand-rolled writer in the library. *)

val json_float : float -> string
(** A float as a JSON value: [%.17g] round-trippable text, with
    non-finite values emitted as strings (["inf"], ["nan"]) so the
    output always parses. *)

val chrome_string : unit -> string
(** The current event buffers as one Chrome [trace_event] document. *)

val jsonl_string : unit -> string
(** The current event buffers as newline-delimited JSON, one event per
    line (same object shape as {!chrome_string}). *)

val write_trace : path:string -> (unit, string) result
(** Write the current event buffers to [path]: JSONL when the file name
    ends in [.jsonl], the Chrome document otherwise.  The write is
    atomic (temp file + rename, via {!Netdiv_fault.Io.write_atomic});
    on [Error] any previous trace at [path] is untouched. *)

val span_rollup : Obs.event list -> (string * int * float * float) list
(** Aggregate well-nested [Begin]/[End] pairs per name:
    [(name, count, total_s, max_s)], sorted by descending total.
    Pairing is per [tid]; unbalanced opens are dropped. *)

val pp_summary : Format.formatter -> unit -> unit
(** Human-readable digest of the current state: span totals (from
    {!span_rollup}) followed by every registered metric. *)
