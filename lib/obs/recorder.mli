(** Convergence flight recorder: a fixed-size per-solver ring buffer of
    structured convergence frames, cheap enough to leave on at
    100k-host scale where the full event-buffer [--trace] is too heavy.

    A recorder holds the last [capacity] frames in O(capacity) memory;
    recording a frame is a mutex-guarded bounded write into
    preallocated arrays (no allocation, no growth).  Unlike the {!Obs}
    span/metric substrate, the recorder is {e not} gated on
    {!Obs.enabled}: it is on exactly while installed, so a production
    solve can keep its black box without paying for full tracing.

    {2 Installation}

    The active recorder is ambient per-domain state.  {!with_recorder}
    installs one for the duration of a callback; solver code records
    through the module-level frame functions, which are no-ops when no
    recorder is installed.  {!suspended} blanks the installation around
    a parallel region: pool workers — and the caller domain, which
    participates in chunk claiming — would otherwise record frames in a
    schedule-dependent order.  Orchestrator-level code records the
    deterministic per-round summary instead.

    {2 Dumps}

    {!dump} serializes the retained frames as one JSON document
    ([{"netdiv_recorder":1,...,"frames":[...]}]) written atomically via
    {!Netdiv_fault.Io.write_atomic}, so a dump torn by a crash or an
    injected fault never replaces a previous good black box.  The
    runner dumps on completion, watchdog abandonment and degradation;
    [netdiv report] renders the result. *)

type t

(** One bound-evaluation point of a monolithic solve (TRW-S/BP/SA).
    [s_t] is seconds since recorder creation (all frames share this
    base); [s_residual] is the best-energy/bound progress that drives
    stall detection; the [s_msg_*] fields are the per-iteration message
    counts by kernel class. *)
type sweep_frame = {
  s_t : float;
  s_iter : int;
  s_energy : float;
  s_bound : float;
  s_residual : float;
  s_msg_potts : int;
  s_msg_sparse : int;
  s_msg_generic : int;
}

(** One zone's sub-solve result in a [Trws.solve_zoned] round. *)
type zone_frame = {
  z_t : float;
  z_round : int;
  z_zone : int;
  z_energy : float;
  z_bound : float;
  z_iterations : int;
  z_converged : bool;
}

(** The reconciliation pass of a [solve_zoned] round: [b_disagree]
    boundary edges whose endpoints disagree, the edge-slave and
    zone-bound components of the dual, and the subgradient step used. *)
type boundary_frame = {
  b_t : float;
  b_round : int;
  b_disagree : int;
  b_edge_bound : float;
  b_zone_bound : float;
  b_step : float;
}

(** A point annotation (stage entry, retry, degradation). *)
type mark_frame = { mk_t : float; mk_label : string }

type frame =
  | Sweep of sweep_frame
  | Zone of zone_frame
  | Boundary of boundary_frame
  | Mark of mark_frame

val create : ?dump_path:string -> ?capacity:int -> string -> t
(** [create name] makes a recorder named [name] retaining the last
    [capacity] frames (default 1024, clamped to at least 1).
    [dump_path], when given, is the default destination for {!dump}. *)

val name : t -> string
val capacity : t -> int

val recorded : t -> int
(** Total frames ever recorded, including overwritten ones. *)

val dropped : t -> int
(** Frames lost to ring wraparound: [max 0 (recorded - capacity)]. *)

val frames : t -> frame list
(** The retained frames, oldest first.  Call between parallel regions
    (materializes the read-out variant; recording stays allocation-free). *)

(** {1 Ambient installation} *)

val with_recorder : t -> (unit -> 'a) -> 'a
(** Install [t] as the current domain's recorder for the callback
    (exception-safe; restores the previous installation). *)

val suspended : (unit -> 'a) -> 'a
(** Run the callback with no recorder installed — wrap parallel regions
    whose work order is schedule-dependent. *)

val current : unit -> t option
(** The currently installed recorder, if any. *)

val installed : unit -> bool
(** [current () <> None], one DLS read — poll before computing frame
    arguments that are otherwise unneeded. *)

(** {1 Recording}

    All record functions write to the current domain's installed
    recorder and are no-ops without one. *)

val sweep :
  iter:int ->
  energy:float ->
  bound:float ->
  residual:float ->
  msg_potts:int ->
  msg_sparse:int ->
  msg_generic:int ->
  unit

val zone :
  round:int ->
  zone:int ->
  energy:float ->
  bound:float ->
  iterations:int ->
  converged:bool ->
  unit

val boundary :
  round:int ->
  disagree:int ->
  edge_bound:float ->
  zone_bound:float ->
  step:float ->
  unit

val mark : string -> unit

(** {1 Dumping} *)

val dump_string : reason:string -> t -> string
(** The retained frames as one JSON document.  [reason] records why the
    dump happened (["completed"], ["degraded"], ["watchdog"], an
    exception name, ...). *)

val dump : ?path:string -> reason:string -> t -> (unit, string) result
(** Write {!dump_string} atomically to [path] (default: the recorder's
    [dump_path]).  [Ok ()] without writing when neither is set. *)

val last_dump : t -> string option
(** The [reason] of the most recent dump that actually wrote a file —
    [None] if none has.  Lets an outer harness avoid overwriting a more
    specific dump (a runner outcome) with a generic completion one. *)
