(** Structured tracing and metrics for the solver/simulation hot paths.

    This module is the single observability substrate of the repository:
    a span API producing timestamped begin/end events, plus a registry
    of named counters, gauges and log-bucketed histograms.  Everything
    is gated behind one global enable flag ({!set_enabled}); with the
    flag off every record operation reduces to a single atomic load and
    a branch, so instrumented hot loops cost nothing measurable (the
    bench [observability_overhead] section pins this).

    {2 Concurrency model}

    Spans and samples are buffered {e per domain}: the first event a
    domain records allocates it a private growable buffer (registered
    in a global list under a mutex, so the data outlives pool workers,
    which are joined after every parallel region).  No event path
    writes shared mutable state, so instrumented code remains race-free
    under the pool sanitizer ([NETDIV_SANITIZE=1]).  Counters are
    atomics; histograms and gauges take a per-instance mutex on the
    record path only.  {!events}, {!metrics} and {!reset} walk the
    global registries and must only be called between parallel regions
    (from the orchestrating domain), never concurrently with recording.

    {2 Timestamps}

    All timestamps come from {!Clock.now}, the one sanctioned wall-clock
    read for telemetry (the [direct-clock-in-instrumented-code] lint
    rule points here).  The shim clamps the raw clock to be
    non-decreasing per domain, so span durations are never negative even
    if the system clock steps backwards. *)

module Clock : sig
  val now : unit -> float
  (** Seconds since the Unix epoch, monotone non-decreasing within each
      domain.  This is the only clock telemetry may read; solver code
      that needs wall time (budgets, stage timings, reported runtimes)
      must go through it so every trace shares one time base. *)
end

val set_enabled : bool -> unit
(** Turn recording on or off globally.  Call it before spawning any
    parallel region; the flag is an atomic, so domains spawned after the
    write observe it.  The first enable installs a GC alarm that ticks
    the [gc.major_cycles] counter at the end of every major collection
    cycle, attributing full-GC pressure to the run.  Disabling does not
    clear recorded data — see {!reset}. *)

val enabled : unit -> bool
(** Whether recording is currently on (one atomic load — callers may
    poll this per iteration to skip instrumentation bookkeeping). *)

(** {1 Spans and events} *)

type kind =
  | Begin  (** span opened *)
  | End  (** span closed *)
  | Instant  (** point event *)
  | Sample  (** named numeric sample (a counter-track point) *)

type event = {
  kind : kind;
  name : string;
  ts : float;  (** {!Clock.now} at record time *)
  value : float;  (** payload of [Sample] events; [0.] otherwise *)
  tid : int;  (** id of the recording domain's buffer *)
}

val span : name:string -> (unit -> 'a) -> 'a
(** [span ~name f] runs [f ()] bracketed by [Begin]/[End] events.
    Nestable; exception-safe (the [End] event is recorded, then the
    exception is re-raised with its backtrace).  When recording is off
    this is exactly [f ()]. *)

val begin_span : string -> unit
(** Open a span without a closure — for hot loops where even the
    closure allocation of {!span} is unwelcome.  Every [begin_span]
    must be paired with an {!end_span} on the same domain along every
    non-raising path; exporters tolerate (and drop) unbalanced spans. *)

val end_span : string -> unit
(** Close the innermost span previously opened with the same name. *)

val instant : string -> unit
(** Record a point event. *)

val sample : name:string -> float -> unit
(** [sample ~name v] records a timestamped numeric sample; exported as
    a Chrome counter-track event, so per-sweep energies and bounds plot
    as curves in Perfetto. *)

val events : unit -> event list
(** Merge every domain buffer into one list ordered by timestamp
    (ties: buffer id, then recording order).  Within one [tid] the
    original per-domain order is always preserved.  Call between
    parallel regions only. *)

(** {1 Metrics registry}

    Metrics are named, created on first use ([make] is get-or-create,
    so module-toplevel [make] calls in instrumented libraries share one
    instance per name) and preallocated: the record paths below touch
    only existing atomics and arrays, never the allocator. *)

module Counter : sig
  type t

  val make : string -> t
  (** Get or create the counter registered under this name. *)

  val add : t -> int -> unit
  (** Atomic add; a no-op while recording is off. *)

  val incr : t -> unit
  val value : t -> int
  val name : t -> string
end

module Gauge : sig
  type t

  val make : string -> t

  val set : t -> float -> unit
  (** Last-writer-wins store (a preallocated float cell); a no-op while
      recording is off. *)

  val value : t -> float
  (** [nan] until first set. *)

  val name : t -> string
end

module Histogram : sig
  type t

  val n_buckets : int
  (** Number of log-scale buckets (fixed, preallocated). *)

  val base : float
  (** Lower edge of bucket 1.  Bucket 0 catches everything below
      [base] (including zero, negatives and [nan]); bucket [i >= 1]
      covers [[base * 2^(i-1), base * 2^i)]; the last bucket absorbs
      the overflow tail. *)

  val bucket_of : float -> int
  (** Bucket index a value lands in; exposed so tests can pin the
      edges. *)

  val bucket_lower : int -> float
  (** Inclusive lower edge of a bucket ([0.] for bucket 0). *)

  val make : string -> t

  val record : t -> float -> unit
  (** Mutex-guarded bucket/stat update, allocation-free; a no-op while
      recording is off. *)

  val count : t -> int
  val sum : t -> float
  val name : t -> string

  val buckets : t -> int array
  (** Copy of the bucket counts. *)
end

type metric =
  | Counter_v of { name : string; count : int }
  | Gauge_v of { name : string; value : float }
  | Histogram_v of {
      name : string;
      count : int;
      sum : float;
      min : float;  (** [infinity] when empty *)
      max : float;  (** [neg_infinity] when empty *)
      buckets : int array;
    }

val metric_name : metric -> string

val metrics : unit -> metric list
(** Snapshot of every registered metric, sorted by name.  Metrics that
    never recorded anything are included (count 0 / [nan] gauge). *)

val reset : unit -> unit
(** Clear all event buffers and zero every metric (registrations are
    kept).  Call between parallel regions only. *)
