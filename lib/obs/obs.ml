(* Tracing + metrics substrate.  See obs.mli for the contract.

   Design constraints, in order:
   - the disabled path must be one atomic load and a branch, with no
     allocation, so instrumentation can live inside solver hot loops;
   - recording must be race-free under the pool sanitizer: spans go to
     per-domain buffers, counters are atomics, histograms/gauges take a
     per-instance mutex;
   - the data must survive pool workers, which are joined after every
     region: each domain-local buffer is registered in a global list
     the moment it is created, so [events] can read it after the domain
     is gone. *)

module Clock = struct
  (* Per-domain monotone clamp over the system clock: a backwards step
     (NTP, VM migration) would otherwise produce negative span
     durations and out-of-order trace events. *)
  let last : float ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0.0)

  let now () =
    (* netdiv-lint: allow direct-clock-in-instrumented-code — this IS the
       clock shim the rule points everyone at; the one sanctioned
       gettimeofday read for telemetry and harness timing. *)
    let t = Unix.gettimeofday () in
    let r = Domain.DLS.get last in
    let t =
      if t > !r then begin
        r := t;
        t
      end
      else !r
    in
    (* Injected clock stalls land AFTER the monotone clamp: clearing
       the fault spec restores real time instead of leaving the skew
       captured in the per-domain [last] refs forever. *)
    t +. Netdiv_fault.Fault.clock_offset ()
end

(* Global enable flag.  An [Atomic] rather than a [ref] so domains
   spawned while the program toggles it still see a well-defined value
   under the OCaml 5 memory model. *)
let on = Atomic.make false
let enabled () = Atomic.get on

(* [set_enabled] lives below the metrics registry: the first enable
   lazily installs a GC alarm feeding the [gc.major_cycles] counter. *)

(* ------------------------------------------------------------- events *)

type kind = Begin | End | Instant | Sample

type event = {
  kind : kind;
  name : string;
  ts : float;
  value : float;
  tid : int;
}

let dummy_event = { kind = Instant; name = ""; ts = 0.0; value = 0.0; tid = 0 }

(* Growable per-domain event buffer (OCaml 5.1 has no Dynarray). *)
type buffer = { tid : int; mutable evs : event array; mutable len : int }

let registry_lock = Mutex.create ()
let buffers : buffer list ref = ref []
let next_tid = ref 0

(* First event on a domain allocates its buffer and registers it; the
   registration mutex is taken once per domain lifetime, never on the
   per-event path. *)
let buffer_key : buffer Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      Mutex.protect registry_lock (fun () ->
          let b =
            { tid = !next_tid; evs = Array.make 256 dummy_event; len = 0 }
          in
          incr next_tid;
          buffers := b :: !buffers;
          b))

let push b ev =
  if b.len = Array.length b.evs then begin
    let bigger = Array.make (2 * Array.length b.evs) dummy_event in
    Array.blit b.evs 0 bigger 0 b.len;
    b.evs <- bigger
  end;
  b.evs.(b.len) <- ev;
  b.len <- b.len + 1

let record kind name value =
  let b = Domain.DLS.get buffer_key in
  push b { kind; name; ts = Clock.now (); value; tid = b.tid }

let begin_span name = if Atomic.get on then record Begin name 0.0
let end_span name = if Atomic.get on then record End name 0.0
let instant name = if Atomic.get on then record Instant name 0.0
let sample ~name v = if Atomic.get on then record Sample name v

let span ~name f =
  if not (Atomic.get on) then f ()
  else begin
    record Begin name 0.0;
    match f () with
    | x ->
        record End name 0.0;
        x
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        record End name 0.0;
        Printexc.raise_with_backtrace e bt
  end

let events () =
  let all =
    Mutex.protect registry_lock (fun () ->
        List.concat_map
          (fun b -> List.init b.len (fun i -> b.evs.(i)))
          (List.sort (fun a b -> compare a.tid b.tid) !buffers))
  in
  (* stable sort: a buffer's events carry non-decreasing timestamps (the
     clock shim clamps per domain), so per-tid order survives *)
  List.stable_sort
    (fun a b ->
      let c = Float.compare a.ts b.ts in
      if c <> 0 then c else compare a.tid b.tid)
    all

(* ------------------------------------------------------------ metrics *)

module Counter = struct
  type t = { cname : string; v : int Atomic.t }

  let lock = Mutex.create ()
  let table : (string, t) Hashtbl.t = Hashtbl.create 32

  let make name =
    Mutex.protect lock (fun () ->
        match Hashtbl.find_opt table name with
        | Some c -> c
        | None ->
            let c = { cname = name; v = Atomic.make 0 } in
            Hashtbl.add table name c;
            c)

  let add c n = if Atomic.get on then ignore (Atomic.fetch_and_add c.v n)
  let incr c = add c 1
  let value c = Atomic.get c.v
  let name c = c.cname

  let reset_all () =
    Mutex.protect lock (fun () ->
        Hashtbl.iter (fun _ c -> Atomic.set c.v 0) table)
end

module Gauge = struct
  (* the value lives in a one-slot float array: stores into a float
     array are unboxed, where a [float ref] or mutable float field in a
     mixed record would box on every set *)
  type t = { gname : string; cell : float array }

  let lock = Mutex.create ()
  let table : (string, t) Hashtbl.t = Hashtbl.create 32

  let make name =
    Mutex.protect lock (fun () ->
        match Hashtbl.find_opt table name with
        | Some g -> g
        | None ->
            let g = { gname = name; cell = Array.make 1 nan } in
            Hashtbl.add table name g;
            g)

  let set g v = if Atomic.get on then g.cell.(0) <- v
  let value g = g.cell.(0)
  let name g = g.gname

  let reset_all () =
    Mutex.protect lock (fun () ->
        Hashtbl.iter (fun _ g -> g.cell.(0) <- nan) table)
end

module Histogram = struct
  let n_buckets = 64
  let base = 1e-6

  type t = {
    hname : string;
    hlock : Mutex.t;
    hbuckets : int array;
    mutable hcount : int;
    hstats : float array; (* [| sum; min; max |] *)
  }

  (* Bucket 0: everything below [base] (zero, negatives, nan).  Bucket
     [i >= 1] covers [base*2^(i-1), base*2^i).  Multiplying/dividing by
     a power of two is exact in IEEE double, so the edges are exact:
     [base *. 2.0 ** k] always lands in bucket [k + 1]. *)
  let bucket_of v =
    if not (v >= base) then 0
    else begin
      let b = 1 + int_of_float (Float.log2 (v /. base)) in
      if b >= n_buckets then n_buckets - 1 else b
    end

  let bucket_lower i = if i <= 0 then 0.0 else base *. (2.0 ** float_of_int (i - 1))

  let lock = Mutex.create ()
  let table : (string, t) Hashtbl.t = Hashtbl.create 32

  let make name =
    Mutex.protect lock (fun () ->
        match Hashtbl.find_opt table name with
        | Some h -> h
        | None ->
            let h =
              {
                hname = name;
                hlock = Mutex.create ();
                hbuckets = Array.make n_buckets 0;
                hcount = 0;
                hstats = [| 0.0; infinity; neg_infinity |];
              }
            in
            Hashtbl.add table name h;
            h)

  (* manual lock/unlock: [Mutex.protect] would allocate a closure on
     every record *)
  let record h v =
    if Atomic.get on then begin
      let b = bucket_of v in
      Mutex.lock h.hlock;
      h.hbuckets.(b) <- h.hbuckets.(b) + 1;
      h.hcount <- h.hcount + 1;
      h.hstats.(0) <- h.hstats.(0) +. v;
      if v < h.hstats.(1) then h.hstats.(1) <- v;
      if v > h.hstats.(2) then h.hstats.(2) <- v;
      Mutex.unlock h.hlock
    end

  let count h = h.hcount
  let sum h = h.hstats.(0)
  let name h = h.hname
  let buckets h = Array.copy h.hbuckets

  let clear h =
    Mutex.lock h.hlock;
    Array.fill h.hbuckets 0 n_buckets 0;
    h.hcount <- 0;
    h.hstats.(0) <- 0.0;
    h.hstats.(1) <- infinity;
    h.hstats.(2) <- neg_infinity;
    Mutex.unlock h.hlock

  let reset_all () =
    Mutex.protect lock (fun () -> Hashtbl.iter (fun _ h -> clear h) table)
end

(* GC attribution: a Gc alarm ticks a counter at the end of every major
   cycle on the installing domain, so a metrics dump shows how many
   full collections a run paid for.  Installed once, on the first
   enable — an alarm on a never-enabled process would be pure noise —
   and never removed: the counter add itself is gated on [on]. *)
let c_gc_major_cycles = Counter.make "gc.major_cycles"
let gc_alarm_installed = Atomic.make false

let set_enabled b =
  if b && not (Atomic.exchange gc_alarm_installed true) then
    ignore (Gc.create_alarm (fun () -> Counter.incr c_gc_major_cycles));
  Atomic.set on b

type metric =
  | Counter_v of { name : string; count : int }
  | Gauge_v of { name : string; value : float }
  | Histogram_v of {
      name : string;
      count : int;
      sum : float;
      min : float;
      max : float;
      buckets : int array;
    }

let metric_name = function
  | Counter_v { name; _ } | Gauge_v { name; _ } | Histogram_v { name; _ } ->
      name

let metrics () =
  let cs =
    Mutex.protect Counter.lock (fun () ->
        Hashtbl.fold
          (fun name c acc ->
            Counter_v { name; count = Atomic.get c.Counter.v } :: acc)
          Counter.table [])
  in
  let gs =
    Mutex.protect Gauge.lock (fun () ->
        Hashtbl.fold
          (fun name g acc -> Gauge_v { name; value = g.Gauge.cell.(0) } :: acc)
          Gauge.table [])
  in
  let hs =
    Mutex.protect Histogram.lock (fun () ->
        Hashtbl.fold
          (fun name h acc ->
            Histogram_v
              {
                name;
                count = h.Histogram.hcount;
                sum = h.Histogram.hstats.(0);
                min = h.Histogram.hstats.(1);
                max = h.Histogram.hstats.(2);
                buckets = Array.copy h.Histogram.hbuckets;
              }
            :: acc)
          Histogram.table [])
  in
  List.sort
    (fun a b -> compare (metric_name a) (metric_name b))
    (cs @ gs @ hs)

let reset () =
  Mutex.protect registry_lock (fun () ->
      List.iter (fun b -> b.len <- 0) !buffers);
  Counter.reset_all ();
  Gauge.reset_all ();
  Histogram.reset_all ()
