module Graph = Netdiv_graph.Graph
module Traversal = Netdiv_graph.Traversal
module Network = Netdiv_core.Network
module Assignment = Netdiv_core.Assignment

type exploit_model =
  | Uniform_choice
  | Best_choice
  | Fixed of float

let shared_services net u v =
  let su = Network.host_services net u in
  let sv = Network.host_services net v in
  let acc = ref [] in
  let i = ref 0 and j = ref 0 in
  while !i < Array.length su && !j < Array.length sv do
    if su.(!i) = sv.(!j) then begin
      acc := su.(!i) :: !acc;
      incr i;
      incr j
    end
    else if su.(!i) < sv.(!j) then incr i
    else incr j
  done;
  !acc

let default_base_rate = 0.30
let default_sim_floor = 0.05

(* effective per-service success rates along a directed edge *)
let service_rates ~base_rate ~sim_floor a u v =
  let net = Assignment.network a in
  List.map
    (fun s ->
      base_rate
      *. max sim_floor
           (Network.similarity net ~service:s
              (Assignment.get a ~host:u ~service:s)
              (Assignment.get a ~host:v ~service:s)))
    (shared_services net u v)

let edge_rate ?(base_rate = default_base_rate)
    ?(sim_floor = default_sim_floor) a ~model u v =
  match model with
  | Fixed r -> r
  | Uniform_choice | Best_choice -> (
      let net = Assignment.network a in
      let sims =
        List.map
          (fun s ->
            max sim_floor
              (Network.similarity net ~service:s
                 (Assignment.get a ~host:u ~service:s)
                 (Assignment.get a ~host:v ~service:s)))
          (shared_services net u v)
      in
      match sims with
      | [] -> 0.0
      | _ ->
          let sim =
            match model with
            | Best_choice -> List.fold_left max 0.0 sims
            | Uniform_choice ->
                List.fold_left ( +. ) 0.0 sims
                /. float_of_int (List.length sims)
            | Fixed _ -> assert false
          in
          base_rate *. sim)

let build ?base_rate ?sim_floor a ~entry ?(prior = 1.0) ~model () =
  let net = Assignment.network a in
  let g = Network.graph net in
  let dag = Traversal.bfs_dag g entry in
  (* incoming attack edges per host *)
  let incoming = Array.make (Graph.n_nodes g) [] in
  List.iter (fun (u, v) -> incoming.(v) <- u :: incoming.(v)) dag;
  let dist = Traversal.bfs g entry in
  let order =
    List.init (Graph.n_nodes g) Fun.id
    |> List.filter (fun h -> dist.(h) >= 0)
    |> List.sort (fun x y ->
           compare (dist.(x), x) (dist.(y), y))
  in
  let bn = Bn.create () in
  let node_of = Array.make (Graph.n_nodes g) (-1) in
  List.iter
    (fun h ->
      let id =
        if h = entry then
          Bn.add bn ~name:(Network.host_name net h) ~parents:[||]
            (Bn.Table [| prior |])
        else begin
          let parents =
            incoming.(h)
            |> List.map (fun u -> (node_of.(u), u))
            |> List.filter (fun (nu, _) -> nu >= 0)
            |> List.sort compare
          in
          let parent_ids = Array.of_list (List.map fst parents) in
          let rates =
            Array.of_list
              (List.map
               (fun (_, u) -> edge_rate ?base_rate ?sim_floor a ~model u h)
               parents)
          in
          Bn.add bn ~name:(Network.host_name net h) ~parents:parent_ids
            (Bn.Noisy_or { rates; leak = 0.0 })
        end
      in
      node_of.(h) <- id)
    order;
  (bn, node_of)

(* Explicit Section-VI construction: one multi-valued attacker-choice
   node per directed attack edge ("which shared service to exploit, or
   silent"), and one boolean compromise node per host whose CPT combines
   the choices' success rates.  Mathematically equivalent to the
   marginalized noisy-OR of [build]; kept as an executable specification
   and cross-validated in the test suite. *)
let build_explicit ?(base_rate = default_base_rate)
    ?(sim_floor = default_sim_floor) a ~entry ?(prior = 1.0) ~model () =
  let net = Assignment.network a in
  let g = Network.graph net in
  let dag = Traversal.bfs_dag g entry in
  let incoming = Array.make (Graph.n_nodes g) [] in
  List.iter (fun (u, v) -> incoming.(v) <- u :: incoming.(v)) dag;
  let dist = Traversal.bfs g entry in
  let order =
    List.init (Graph.n_nodes g) Fun.id
    |> List.filter (fun h -> dist.(h) >= 0)
    |> List.sort (fun x y -> compare (dist.(x), x) (dist.(y), y))
  in
  let bn = Dbn.create () in
  let node_of = Array.make (Graph.n_nodes g) (-1) in
  List.iter
    (fun h ->
      if h = entry then
        node_of.(h) <-
          Dbn.add bn
            ~name:(Network.host_name net h)
            ~card:2 ~parents:[||]
            (fun _ k -> if k = 1 then prior else 1.0 -. prior)
      else begin
        (* one choice node per incoming attack edge *)
        let attack_nodes =
          List.filter_map
            (fun u ->
              if node_of.(u) < 0 then None
              else begin
                let rates =
                  match model with
                  | Fixed r -> [ r ]
                  | Uniform_choice | Best_choice ->
                      service_rates ~base_rate ~sim_floor a u h
                in
                match rates with
                | [] -> None
                | rates ->
                    let k = List.length rates in
                    let silent = k in
                    (* choice distribution given the source host *)
                    let choice parent_values v =
                      if parent_values.(0) = 0 then
                        if v = silent then 1.0 else 0.0
                      else begin
                        match model with
                        | Fixed _ -> if v = 0 then 1.0 else 0.0
                        | Uniform_choice ->
                            if v < k then 1.0 /. float_of_int k else 0.0
                        | Best_choice ->
                            (* single scan; List.nth per element made
                               this quadratic in the out-degree *)
                            let best = ref 0 and best_rate = ref neg_infinity in
                            List.iteri
                              (fun i r ->
                                if r > !best_rate then begin
                                  best := i;
                                  best_rate := r
                                end)
                              rates;
                            if v = !best then 1.0 else 0.0
                      end
                    in
                    let id =
                      Dbn.add bn
                        ~name:
                          (Printf.sprintf "atk_%s_%s"
                             (Network.host_name net u)
                             (Network.host_name net h))
                        ~card:(k + 1)
                        ~parents:[| node_of.(u) |]
                        choice
                    in
                    Some (id, Array.of_list rates)
              end)
            (List.sort compare incoming.(h))
        in
        let parents = Array.of_list (List.map fst attack_nodes) in
        let rate_tables = Array.of_list (List.map snd attack_nodes) in
        let cpd parent_values v =
          let escape = ref 1.0 in
          Array.iteri
            (fun i choice ->
              let rates = rate_tables.(i) in
              if choice < Array.length rates then
                escape := !escape *. (1.0 -. rates.(choice)))
            parent_values;
          if v = 1 then 1.0 -. !escape else !escape
        in
        node_of.(h) <-
          Dbn.add bn ~name:(Network.host_name net h) ~card:2 ~parents cpd
      end)
    order;
  (bn, node_of)

let p_compromise_explicit ?base_rate ?sim_floor a ~entry ~target ~model =
  let bn, node_of =
    build_explicit ?base_rate ?sim_floor a ~entry ~model ()
  in
  if node_of.(target) < 0 then 0.0
  else (Dbn.marginal bn node_of.(target)).(1)

let p_compromise ?base_rate ?sim_floor ?(samples = 200_000) ?rng a ~entry
    ~target ~model =
  let bn, node_of = build ?base_rate ?sim_floor a ~entry ~model () in
  if node_of.(target) < 0 then 0.0
  else
    let query = node_of.(target) in
    match Infer.exact_marginal bn query with
    | p -> p
    | exception Invalid_argument _ ->
        let rng =
          match rng with Some r -> r | None -> Random.State.make [| 97 |]
        in
        let hits = ref 0 in
        for _ = 1 to samples do
          let values = Infer.forward_sample ~rng bn in
          if values.(query) then incr hits
        done;
        float_of_int !hits /. float_of_int samples

let host_marginals ?base_rate ?sim_floor ?(samples = 50_000) ?rng a ~entry
    ~model =
  let bn, node_of = build ?base_rate ?sim_floor a ~entry ~model () in
  let rng =
    match rng with Some r -> r | None -> Random.State.make [| 131 |]
  in
  let n_hosts = Array.length node_of in
  let hits = Array.make (Bn.n_nodes bn) 0 in
  for _ = 1 to samples do
    let values = Infer.forward_sample ~rng bn in
    Array.iteri (fun i v -> if v then hits.(i) <- hits.(i) + 1) values
  done;
  Array.init n_hosts (fun h ->
      if node_of.(h) < 0 then (h, 0.0)
      else
        ( h,
          float_of_int hits.(node_of.(h)) /. float_of_int samples ))

let default_p_avg = 0.065

let diversity ?base_rate ?sim_floor ?samples ?rng ?(p_avg = default_p_avg) a
    ~entry ~target =
  let p_ref =
    p_compromise ?samples ?rng a ~entry ~target ~model:(Fixed p_avg)
  in
  let p_sim =
    p_compromise ?base_rate ?sim_floor ?samples ?rng a ~entry ~target
      ~model:Uniform_choice
  in
  if p_sim <= 0.0 then infinity else p_ref /. p_sim
