(** JSON serialization of networks and assignments.

    A stable on-disk format so diversification problems and their
    solutions can move between the CLI, external tooling and version
    control:

    {v
    { "services": [ { "name": "os",
                      "products": ["WinXP", "Win7"],
                      "similarity": [1.0, 0.278, 0.278, 1.0] } ],
      "hosts":    [ { "name": "c1",
                      "services": [ { "service": "os",
                                      "candidates": ["Win7"] } ] } ],
      "links":    [ ["c1", "c2"] ] }
    v}

    Assignments are host-name keyed:
    [{ "assignment": [ { "host": "c1", "products": { "os": "Win7" } } ] }].
    Candidate lists may be omitted ("all products"); hosts and products
    are referenced by name, so files survive reordering. *)

val network_to_json : Network.t -> Netdiv_vuln.Json.t
val network_to_string : ?pretty:bool -> Network.t -> string

val network_of_json : Netdiv_vuln.Json.t -> (Network.t, string) result
val network_of_string : string -> (Network.t, string) result

val assignment_to_json : Assignment.t -> Netdiv_vuln.Json.t
val assignment_to_string : ?pretty:bool -> Assignment.t -> string

val assignment_of_json :
  Network.t -> Netdiv_vuln.Json.t -> (Assignment.t, string) result
val assignment_of_string :
  Network.t -> string -> (Assignment.t, string) result

(** {2 Solve checkpoints}

    Periodic best-labeling snapshots written during long solves and read
    back by [--resume]:
    [{ "netdiv_checkpoint": 1, "energy": E, "iterations": N,
       "labeling": [ ... ] }].
    The labeling is in MRF variable order for the encoding that produced
    it; {!Optimize} validates it against the current encoding on resume
    and falls back to a fresh solve when it does not fit.  [energy] is
    advisory (re-evaluated on resume). *)

type checkpoint = {
  ck_energy : float;       (** energy at snapshot time (advisory) *)
  ck_iterations : int;     (** sweeps spent when the snapshot was taken *)
  ck_labeling : int array; (** best labeling, MRF variable order *)
}

val checkpoint_to_string : ?pretty:bool -> checkpoint -> string

val checkpoint_of_string : string -> (checkpoint, string) result
(** Path-qualified errors ([labeling[7] = -2 is not a label index]);
    never raises on malformed input. *)
