module S = Netdiv_mrf.Solver
module Obs = Netdiv_obs.Obs
module Runner = Netdiv_mrf.Runner
module Trws_solver = Netdiv_mrf.Trws
module Bp_solver = Netdiv_mrf.Bp
module Icm_solver = Netdiv_mrf.Icm
module Sa_solver = Netdiv_mrf.Sa
module Bnb_solver = Netdiv_mrf.Bnb

type solver = Trws | Trws_icm | Bp | Icm | Sa | Exact

type report = {
  assignment : Assignment.t;
  energy : float;
  lower_bound : float;
  solver_result : S.result;
  constraints_ok : bool;
  violated : Constr.t list;
  runtime_s : float;
  outcome : Runner.outcome;
  stage_timings : (string * float) list;
  retries : int;
}

(* Checkpoint snapshots that could not be written (the solve continues;
   only durability of intermediate state is lost). *)
let c_ckpt_failed = Obs.Counter.make "optimize.checkpoint_failures"

(* Resume is graceful by design: an unreadable, corrupt or mismatched
   checkpoint must never kill a solve that could simply start fresh —
   a warning on stderr is the whole failure mode. *)
let load_resume path model =
  match Netdiv_fault.Io.read_file path with
  | Error msg ->
      Printf.eprintf "netdiv: cannot read checkpoint %s: %s; starting fresh\n%!"
        path msg;
      None
  | Ok s -> (
      match Serial.checkpoint_of_string s with
      | Error msg ->
          Printf.eprintf
            "netdiv: invalid checkpoint %s: %s; starting fresh\n%!" path msg;
          None
      | Ok ck ->
          let module M = Netdiv_mrf.Mrf in
          let lab = ck.Serial.ck_labeling in
          let fits =
            Array.length lab = M.n_nodes model
            && Array.for_all (fun l -> l >= 0) lab
            &&
            let ok = ref true in
            Array.iteri
              (fun v l -> if l >= M.label_count model v then ok := false)
              lab;
            !ok
          in
          if fits then Some lab
          else begin
            Printf.eprintf
              "netdiv: checkpoint %s does not fit this encoding; starting \
               fresh\n\
               %!"
              path;
            None
          end)

let save_checkpoint path (r : S.result) =
  let ck =
    {
      Serial.ck_energy = r.S.energy;
      ck_iterations = r.S.iterations;
      ck_labeling = r.S.labeling;
    }
  in
  match Netdiv_fault.Io.write_atomic ~path (Serial.checkpoint_to_string ck) with
  | Ok () -> ()
  | Error msg ->
      Obs.Counter.incr c_ckpt_failed;
      Printf.eprintf "netdiv: checkpoint write to %s failed: %s\n%!" path msg

let solver_name = function
  | Trws -> "trws"
  | Trws_icm -> "trws+icm"
  | Bp -> "bp"
  | Icm -> "icm"
  | Sa -> "sa"
  | Exact -> "bnb"

(* Fallback cascade per solver choice: the primary stage first; stalled
   primaries degrade to perturbed restarts (local searches) or to the
   approximate pipeline (Exact).  [jobs] parallelizes the stages that
   have a job-count-invariant parallel form: per-component TRW-S,
   multi-restart ICM, SA restarts. *)
let cascade ?jobs solver ~trws_config ~bp_config =
  match solver with
  | Trws -> [ Runner.trws ~config:trws_config ?jobs () ]
  | Trws_icm -> [ Runner.trws_icm ~config:trws_config ?jobs () ]
  | Bp -> [ Runner.bp ~config:bp_config ?jobs () ]
  | Icm -> (
      match jobs with
      | None ->
          [
            Runner.icm ();
            Runner.perturbed ~seed:17 (Runner.icm ());
            Runner.perturbed ~seed:43 (Runner.icm ());
          ]
      | Some _ ->
          (* the parallel restarts subsume the perturbed retries: each
             restart past the first already perturbs the warm start *)
          [ Runner.icm_restarts ?jobs () ])
  | Sa ->
      [
        Runner.sa ?jobs ();
        Runner.perturbed ~seed:91
          (Runner.sa
             ~config:{ Sa_solver.default_config with seed = 0x7e57 }
             ?jobs ());
      ]
  | Exact -> [ Runner.bnb (); Runner.trws_icm ~config:trws_config ?jobs () ]

let solve_encoded_outcome ?(solver = Trws_icm) ?max_iters ?budget ?patience
    ?jobs ?zone_of ?checkpoint ?resume encoded =
  let model = Encode.mrf encoded in
  let trws_config =
    match max_iters with
    | None -> Trws_solver.default_config
    | Some m -> { Trws_solver.default_config with max_iters = m }
  in
  let bp_config =
    match max_iters with
    | None -> Bp_solver.default_config
    | Some m -> { Bp_solver.default_config with max_iters = m }
  in
  match (budget, patience, checkpoint, resume) with
  | None, None, None, None -> (
      (* direct path: with [jobs] absent these are the legacy serial
         trajectories, bit-for-bit; with [jobs] present the TRW-S
         variants decompose into components and SA fans its restarts
         over the pool — both job-count-invariant *)
      let trws_solve model =
        match zone_of with
        | Some z ->
            (* hierarchical path: block-coordinate zone decomposition;
               deterministic in the zone map, invariant in [jobs] *)
            Trws_solver.solve_zoned ~config:trws_config ~zone_of:z ?jobs
              model
        | None -> (
            match jobs with
            | None -> Trws_solver.solve ~config:trws_config model
            | Some _ ->
                Trws_solver.solve_components ~config:trws_config ?jobs model)
      in
      let result =
        match solver with
        | Trws -> trws_solve model
        | Bp -> (
            match jobs with
            | None -> Bp_solver.solve ~config:bp_config model
            | Some _ ->
                Bp_solver.solve_chromatic ~config:bp_config ?jobs model)
        | Icm -> Icm_solver.solve model
        | Sa -> (
            match jobs with
            | None -> Sa_solver.solve model
            | Some j ->
                Sa_solver.solve
                  ~config:{ Sa_solver.default_config with domains = j }
                  model)
        | Exact -> Bnb_solver.solve model
        | Trws_icm ->
            let r = trws_solve model in
            let p = Icm_solver.solve ~init:r.S.labeling model in
            if p.S.energy < r.S.energy then
              {
                p with
                S.lower_bound = r.S.lower_bound;
                runtime_s = r.S.runtime_s +. p.S.runtime_s;
                iterations = r.S.iterations + p.S.iterations;
              }
            else { r with S.runtime_s = r.S.runtime_s +. p.S.runtime_s }
      in
      ( result,
        (if result.S.converged then Runner.Converged else Runner.Stalled),
        [ (solver_name solver, result.S.runtime_s) ],
        0 ))
  | _ ->
      let init = Option.bind resume (fun path -> load_resume path model) in
      let on_best = Option.map save_checkpoint checkpoint in
      let report =
        Runner.run ?budget ?patience ?init ?on_best
          ~stages:(cascade ?jobs solver ~trws_config ~bp_config)
          model
      in
      ( report.Runner.result,
        report.Runner.outcome,
        report.Runner.stage_timings,
        report.Runner.retries )

let solve_encoded ?solver ?max_iters ?budget ?patience ?jobs ?zone_of
    encoded =
  let result, _, _, _ =
    solve_encoded_outcome ?solver ?max_iters ?budget ?patience ?jobs ?zone_of
      encoded
  in
  result

let run ?solver ?prconst ?big_m ?preference ?edge_weight ?max_iters ?budget
    ?patience ?jobs ?zone_of ?checkpoint ?resume net constraints =
  let (encoded, result, outcome, stage_timings, retries), runtime_s =
    S.timed (fun () ->
        let encoded =
          Obs.span ~name:"optimize.encode" (fun () ->
              Encode.encode ?prconst ?big_m ?preference ?edge_weight net
                constraints)
        in
        let result, outcome, stage_timings, retries =
          Obs.span ~name:"optimize.solve" (fun () ->
              solve_encoded_outcome ?solver ?max_iters ?budget ?patience
                ?jobs ?zone_of ?checkpoint ?resume encoded)
        in
        (encoded, result, outcome, stage_timings, retries))
  in
  let assignment, violated =
    Obs.span ~name:"optimize.decode" (fun () ->
        let assignment = Encode.decode encoded result.S.labeling in
        (assignment, Constr.violations net assignment constraints))
  in
  {
    assignment;
    energy = result.S.energy;
    lower_bound = result.S.lower_bound;
    solver_result = result;
    constraints_ok = violated = [];
    violated;
    runtime_s;
    outcome;
    stage_timings;
    retries;
  }

let refine ?prconst ?big_m ?preference ?edge_weight ~previous net
    constraints =
  let (encoded, result), runtime_s =
    S.timed (fun () ->
        let encoded =
          Encode.encode ?prconst ?big_m ?preference ?edge_weight net
            constraints
        in
        (* project the previous assignment into the new encoding: slots
           whose old product is no longer selectable (a fresh Fix, a
           shrunk candidate list) fall back to their first label *)
        let model = Encode.mrf encoded in
        let init =
          Array.init (Encode.n_vars encoded) (fun v ->
              let h, s = Encode.slot_of encoded v in
              let p = Assignment.get previous ~host:h ~service:s in
              let cands = Encode.labels_of encoded v in
              let rec find i =
                if i >= Array.length cands then 0
                else if cands.(i) = p then i
                else find (i + 1)
              in
              find 0)
        in
        (encoded, Icm_solver.solve ~init model))
  in
  let assignment = Encode.decode encoded result.S.labeling in
  let violated = Constr.violations net assignment constraints in
  {
    assignment;
    energy = result.S.energy;
    lower_bound = neg_infinity;
    solver_result = result;
    constraints_ok = violated = [];
    violated;
    runtime_s;
    outcome =
      (if result.S.converged then Runner.Converged else Runner.Stalled);
    stage_timings = [ ("icm", result.S.runtime_s) ];
    retries = 0;
  }

let pp_report ppf r =
  Format.fprintf ppf "@[<v>energy %a (bound %a), constraints %s, %.3fs@]"
    S.pp_float r.energy S.pp_float r.lower_bound
    (if r.constraints_ok then "satisfied"
     else Printf.sprintf "VIOLATED (%d)" (List.length r.violated))
    r.runtime_s
