module Mrf = Netdiv_mrf.Mrf
module Graph = Netdiv_graph.Graph

type encoded = {
  net : Network.t;
  model : Mrf.t;
  var_index : int array array;  (* host -> slot -> var id *)
  slots : (int * int) array;    (* var -> (host, service) *)
  labels : int array array;     (* var -> selectable products *)
}

let default_prconst = 0.01
let default_big_m = 1e6

(* Intern pairwise similarity sub-matrices so edges share arrays.  Keyed by
   service and the two candidate lists (physically interned lists compare
   fast via their contents here). *)
module Matrix_cache = struct
  type key = int * int array * int array * float * float

  (* Domain-safety audit (netdiv-lint): encoding currently runs before any
     parallel region starts, but nothing in the types enforces that, so
     lookups/inserts are serialized under [lock].  The interned arrays
     themselves are written once at creation and read-only afterwards,
     which makes sharing them across solver domains safe. *)
  let lock = Mutex.create ()

  (* netdiv-lint: allow toplevel-mutable-state — intern table guarded by
     [lock]; interned values are immutable once published. *)
  let table : (key, float array) Hashtbl.t = Hashtbl.create 64

  let get net service cu cv weight threshold =
    let key = (service, cu, cv, weight, threshold) in
    match Mutex.protect lock (fun () -> Hashtbl.find_opt table key) with
    | Some m -> m
    | None ->
        let ku = Array.length cu and kv = Array.length cv in
        let m =
          Array.init (ku * kv) (fun idx ->
              let s =
                Network.similarity net ~service cu.(idx / kv) cv.(idx mod kv)
              in
              (* sub-threshold similarities snap to exactly 0, turning
                 near-uniform rows into uniform ones the message-kernel
                 classifier can exploit (Potts / constant-plus-sparse) *)
              if s < threshold then 0.0 else weight *. s)
        in
        Mutex.protect lock (fun () ->
            match Hashtbl.find_opt table key with
            | Some m' -> m' (* another domain interned it first *)
            | None ->
                Hashtbl.add table key m;
                m)

  let clear () = Mutex.protect lock (fun () -> Hashtbl.reset table)
end

let encode ?(prconst = default_prconst) ?(big_m = default_big_m)
    ?(similarity_threshold = 0.0) ?preference ?edge_weight net constraints =
  if
    not
      (similarity_threshold >= 0.0
      && similarity_threshold <= 1.0
      && Float.is_finite similarity_threshold)
  then invalid_arg "Encode.encode: similarity_threshold outside [0,1]";
  (match Constr.validate_all net constraints with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Encode.encode: " ^ msg));
  Matrix_cache.clear ();
  let n_hosts = Network.n_hosts net in
  (* collect Fix constraints; they restrict label sets *)
  let fixes = Hashtbl.create 8 in
  List.iter
    (function
      | Constr.Fix { host; service; product } -> (
          match Hashtbl.find_opt fixes (host, service) with
          | Some p when p <> product ->
              invalid_arg
                (Printf.sprintf
                   "Encode.encode: conflicting Fix constraints on %s/%s"
                   (Network.host_name net host)
                   (Network.service_name net service))
          | _ -> Hashtbl.replace fixes (host, service) product)
      | Constr.Requires _ | Constr.Forbids _ -> ())
    constraints;
  (* variables *)
  let var_index = Array.make n_hosts [||] in
  let slots = ref [] and labels = ref [] in
  let n_vars = ref 0 in
  for h = 0 to n_hosts - 1 do
    let services = Network.host_services net h in
    var_index.(h) <-
      Array.map
        (fun s ->
          let v = !n_vars in
          incr n_vars;
          let cands =
            match Hashtbl.find_opt fixes (h, s) with
            | Some p -> [| p |]
            | None -> Network.candidates net ~host:h ~service:s
          in
          slots := (h, s) :: !slots;
          labels := cands :: !labels;
          v)
        services
  done;
  let slots = Array.of_list (List.rev !slots) in
  let labels = Array.of_list (List.rev !labels) in
  let builder =
    Mrf.Builder.create ~label_counts:(Array.map Array.length labels)
  in
  (* unary costs *)
  Array.iteri
    (fun v (h, s) ->
      let cands = labels.(v) in
      let costs =
        match preference with
        | None -> Array.make (Array.length cands) prconst
        | Some f ->
            Array.map (fun p -> f ~host:h ~service:s ~product:p) cands
      in
      Mrf.Builder.set_unary builder ~node:v costs)
    slots;
  (* similarity edges: one per link and shared service *)
  let slot_var h s =
    let services = Network.host_services net h in
    let rec search lo hi =
      if lo >= hi then None
      else
        let mid = (lo + hi) / 2 in
        if services.(mid) = s then Some var_index.(h).(mid)
        else if services.(mid) < s then search (mid + 1) hi
        else search lo mid
    in
    search 0 (Array.length services)
  in
  Graph.iter_edges
    (fun u v ->
      let weight =
        match edge_weight with
        | None -> 1.0
        | Some f ->
            let w = f u v in
            if w < 0.0 then
              invalid_arg "Encode.encode: negative edge weight"
            else w
      in
      let su = Network.host_services net u in
      Array.iter
        (fun s ->
          match (slot_var u s, slot_var v s) with
          | Some vu, Some vv ->
              let cu = labels.(vu) and cv = labels.(vv) in
              Mrf.Builder.add_edge builder vu vv
                (Matrix_cache.get net s cu cv weight similarity_threshold)
          | _ -> ())
        su)
    (Network.graph net);
  (* combination constraints become intra-host big-M edges *)
  let add_combo h sm pj sn pn ~forbid =
    match (slot_var h sm, slot_var h sn) with
    | Some vm, Some vn ->
        let cm = labels.(vm) and cn = labels.(vn) in
        let km = Array.length cm and kn = Array.length cn in
        let cost =
          Array.init (km * kn) (fun idx ->
              let pm = cm.(idx / kn) and pn' = cn.(idx mod kn) in
              if pm <> pj then 0.0
              else if forbid then if pn' = pn then big_m else 0.0
              else if pn' = pn then 0.0
              else big_m)
        in
        Mrf.Builder.add_edge builder vm vn cost
    | _ -> ()
  in
  List.iter
    (function
      | Constr.Fix _ -> ()
      | Constr.Requires { scope; service_m; product_j; service_n; product_l }
        ->
          List.iter
            (fun h ->
              add_combo h service_m product_j service_n product_l
                ~forbid:false)
            (match scope with
            | Constr.Host h -> [ h ]
            | Constr.All -> List.init n_hosts Fun.id)
      | Constr.Forbids { scope; service_m; product_j; service_n; product_k }
        ->
          List.iter
            (fun h ->
              add_combo h service_m product_j service_n product_k
                ~forbid:true)
            (match scope with
            | Constr.Host h -> [ h ]
            | Constr.All -> List.init n_hosts Fun.id))
    constraints;
  let model = Mrf.Builder.build builder in
  { net; model; var_index; slots; labels }

let mrf e = e.model
let n_vars e = Array.length e.slots

let var_of e ~host ~service =
  let services = Network.host_services e.net host in
  let rec search lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      if services.(mid) = service then Some e.var_index.(host).(mid)
      else if services.(mid) < service then search (mid + 1) hi
      else search lo mid
  in
  search 0 (Array.length services)

let slot_of e v = e.slots.(v)
let labels_of e v = e.labels.(v)

let decode e labeling =
  Mrf.validate_labeling e.model labeling;
  Assignment.make e.net (fun ~host ~service ->
      match var_of e ~host ~service with
      | Some v -> e.labels.(v).(labeling.(v))
      | None -> assert false)

let labeling_of e a =
  Array.mapi
    (fun v (h, s) ->
      let p = Assignment.get a ~host:h ~service:s in
      let cands = e.labels.(v) in
      let rec find i =
        if i >= Array.length cands then
          invalid_arg
            (Printf.sprintf
               "Encode.labeling_of: product %s not selectable at %s/%s"
               (Network.product_name e.net ~service:s p)
               (Network.host_name e.net h)
               (Network.service_name e.net s))
        else if cands.(i) = p then i
        else find (i + 1)
      in
      find 0)
    e.slots

let assignment_energy e a = Mrf.energy e.model (labeling_of e a)

(* Size the encoding without building it: counts the slots and the
   (link, shared service) pairs the edge loop of [encode] would emit,
   plus one big-M edge per applicable combination constraint.  Tables
   are bounded by one similarity matrix per service plus one per
   constraint edge. *)
let estimate_words net constraints =
  let n_hosts = Network.n_hosts net in
  let nodes = ref 0 and max_labels = ref 1 in
  for h = 0 to n_hosts - 1 do
    let services = Network.host_services net h in
    nodes := !nodes + Array.length services;
    Array.iter
      (fun s ->
        max_labels :=
          max !max_labels
            (Array.length (Network.candidates net ~host:h ~service:s)))
      services
  done;
  let edges = ref 0 in
  Graph.iter_edges
    (fun u v ->
      Array.iter
        (fun s -> if Network.runs_service net ~host:v ~service:s then incr edges)
        (Network.host_services net u))
    (Network.graph net);
  let scope_hosts = function Constr.Host _ -> 1 | Constr.All -> n_hosts in
  let combos =
    List.fold_left
      (fun acc -> function
        | Constr.Fix _ -> acc
        | Constr.Requires { scope; _ } | Constr.Forbids { scope; _ } ->
            acc + scope_hosts scope)
      0 constraints
  in
  Mrf.estimate_words ~nodes:!nodes
    ~edges:(!edges + combos)
    ~max_labels:!max_labels
    ~tables:(Network.n_services net + combos)
