module Json = Netdiv_vuln.Json
module Graph = Netdiv_graph.Graph

let ( let* ) = Result.bind

(* ------------------------------------------------------------- writing *)

let network_to_json net =
  let services =
    Json.List
      (List.init (Network.n_services net) (fun s ->
           let p = Network.n_products net s in
           Json.Object
             [
               ("name", Json.String (Network.service_name net s));
               ( "products",
                 Json.List
                   (List.init p (fun k ->
                        Json.String (Network.product_name net ~service:s k)))
               );
               ( "similarity",
                 Json.List
                   (Array.to_list
                      (Array.map
                         (fun v -> Json.Number v)
                         (Network.similarity_matrix net ~service:s))) );
             ]))
  in
  let hosts =
    Json.List
      (List.init (Network.n_hosts net) (fun h ->
           let slots =
             Array.to_list (Network.host_services net h)
             |> List.map (fun s ->
                    let cands = Network.candidates net ~host:h ~service:s in
                    let all = Network.n_products net s in
                    let fields =
                      [ ("service", Json.String (Network.service_name net s)) ]
                    in
                    let fields =
                      if Array.length cands = all then fields
                      else
                        fields
                        @ [
                            ( "candidates",
                              Json.List
                                (Array.to_list
                                   (Array.map
                                      (fun p ->
                                        Json.String
                                          (Network.product_name net ~service:s
                                             p))
                                      cands)) );
                          ]
                    in
                    Json.Object fields)
           in
           Json.Object
             [
               ("name", Json.String (Network.host_name net h));
               ("services", Json.List slots);
             ]))
  in
  let links =
    let acc = ref [] in
    Graph.iter_edges
      (fun u v ->
        acc :=
          Json.List
            [
              Json.String (Network.host_name net u);
              Json.String (Network.host_name net v);
            ]
          :: !acc)
      (Network.graph net);
    Json.List (List.rev !acc)
  in
  Json.Object [ ("services", services); ("hosts", hosts); ("links", links) ]

let network_to_string ?pretty net = Json.to_string ?pretty (network_to_json net)

let assignment_to_json a =
  let net = Assignment.network a in
  Json.Object
    [
      ( "assignment",
        Json.List
          (List.init (Network.n_hosts net) (fun h ->
               Json.Object
                 [
                   ("host", Json.String (Network.host_name net h));
                   ( "products",
                     Json.Object
                       (Array.to_list (Network.host_services net h)
                       |> List.map (fun s ->
                              ( Network.service_name net s,
                                Json.String
                                  (Network.product_name net ~service:s
                                     (Assignment.get a ~host:h ~service:s))
                              ))) );
                 ])) );
    ]

let assignment_to_string ?pretty a = Json.to_string ?pretty (assignment_to_json a)

(* ------------------------------------------------------------- reading *)

let field name json =
  match Json.member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let as_list what = function
  | Json.List items -> Ok items
  | _ -> Error (what ^ " is not an array")

let as_string what = function
  | Json.String s -> Ok s
  | _ -> Error (what ^ " is not a string")

let as_number what = function
  | Json.Number f -> Ok f
  | _ -> Error (what ^ " is not a number")

let map_result f items =
  List.fold_left
    (fun acc item ->
      let* acc = acc in
      let* x = f item in
      Ok (x :: acc))
    (Ok []) items
  |> Result.map List.rev

let decode_service json =
  let* name = Result.bind (field "name" json) (as_string "service name") in
  let* products =
    Result.bind (field "products" json) (as_list "products")
  in
  let* products = map_result (as_string "product") products in
  let* sim = Result.bind (field "similarity" json) (as_list "similarity") in
  (* NaN or out-of-range entries would silently poison every MRF energy
     downstream; reject them here with the offending path *)
  let* sim =
    let rec check i acc = function
      | [] -> Ok (List.rev acc)
      | v :: rest ->
          let what = Printf.sprintf "service %S: similarity[%d]" name i in
          let* x = as_number what v in
          if Float.is_nan x || x < 0.0 || x > 1.0 then
            Error (Printf.sprintf "%s = %g is out of range [0,1]" what x)
          else check (i + 1) (x :: acc) rest
    in
    check 0 [] sim
  in
  Ok
    {
      Network.sv_name = name;
      sv_products = Array.of_list products;
      sv_similarity = Array.of_list sim;
    }

let decode_network json =
  let* services = Result.bind (field "services" json) (as_list "services") in
  let* services = map_result decode_service services in
  let services = Array.of_list services in
  let service_index name =
    let rec find i =
      if i >= Array.length services then
        Error (Printf.sprintf "unknown service %S" name)
      else if String.equal services.(i).Network.sv_name name then Ok i
      else find (i + 1)
    in
    find 0
  in
  let product_index s name =
    let arr = services.(s).Network.sv_products in
    let rec find i =
      if i >= Array.length arr then
        Error (Printf.sprintf "unknown product %S" name)
      else if String.equal arr.(i) name then Ok i
      else find (i + 1)
    in
    find 0
  in
  let* hosts = Result.bind (field "hosts" json) (as_list "hosts") in
  let* host_specs =
    map_result
      (fun host ->
        let* name = Result.bind (field "name" host) (as_string "host name") in
        let* slots = Result.bind (field "services" host) (as_list "host services") in
        let* slots =
          map_result
            (fun slot ->
              let* sname =
                Result.bind (field "service" slot) (as_string "slot service")
              in
              let* s = service_index sname in
              match Json.member "candidates" slot with
              | None -> Ok (s, [||])
              | Some cands ->
                  let* cands = as_list "candidates" cands in
                  let* cands = map_result (as_string "candidate") cands in
                  let* cands = map_result (product_index s) cands in
                  Ok (s, Array.of_list cands))
            slots
        in
        Ok { Network.h_name = name; h_services = slots })
      hosts
  in
  let host_specs = Array.of_list host_specs in
  let host_index name =
    let rec find i =
      if i >= Array.length host_specs then
        Error (Printf.sprintf "unknown host %S" name)
      else if String.equal host_specs.(i).Network.h_name name then Ok i
      else find (i + 1)
    in
    find 0
  in
  let* links = Result.bind (field "links" json) (as_list "links") in
  let* edges =
    map_result
      (function
        | Json.List [ a; b ] ->
            let* a = as_string "link endpoint" a in
            let* b = as_string "link endpoint" b in
            let* u = host_index a in
            let* v = host_index b in
            Ok (u, v)
        | _ -> Error "link is not a two-element array")
      links
  in
  match
    Network.create
      ~graph:(Graph.of_edges ~n:(Array.length host_specs) edges)
      ~services ~hosts:host_specs
  with
  | net -> Ok net
  | exception Invalid_argument msg -> Error msg

let network_of_json json = decode_network json

let network_of_string s =
  let* json = Json.parse s in
  decode_network json

let assignment_of_json net json =
  let* rows = Result.bind (field "assignment" json) (as_list "assignment") in
  let table = Hashtbl.create 64 in
  let* () =
    List.fold_left
      (fun acc row ->
        let* () = acc in
        let* host = Result.bind (field "host" row) (as_string "host") in
        let* h =
          match Network.find_host net host with
          | Some h -> Ok h
          | None -> Error (Printf.sprintf "unknown host %S" host)
        in
        let* products = field "products" row in
        match products with
        | Json.Object fields ->
            List.fold_left
              (fun acc (sname, pvalue) ->
                let* () = acc in
                let* s =
                  match Network.find_service net sname with
                  | Some s -> Ok s
                  | None -> Error (Printf.sprintf "unknown service %S" sname)
                in
                let* pname = as_string "product" pvalue in
                let* p =
                  match Network.find_product net ~service:s pname with
                  | Some p -> Ok p
                  | None -> Error (Printf.sprintf "unknown product %S" pname)
                in
                Hashtbl.replace table (h, s) p;
                Ok ())
              (Ok ()) fields
        | _ -> Error "products is not an object")
      (Ok ()) rows
  in
  match
    Assignment.make net (fun ~host ~service ->
        match Hashtbl.find_opt table (host, service) with
        | Some p -> p
        | None ->
            invalid_arg
              (Printf.sprintf "assignment missing %s/%s"
                 (Network.host_name net host)
                 (Network.service_name net service)))
  with
  | a -> Ok a
  | exception Invalid_argument msg -> Error msg

let assignment_of_string net s =
  let* json = Json.parse s in
  assignment_of_json net json

(* --------------------------------------------------------- checkpoints *)

type checkpoint = {
  ck_energy : float;
  ck_iterations : int;
  ck_labeling : int array;
}

let checkpoint_version = 1.0

let checkpoint_to_json ck =
  Json.Object
    [
      ("netdiv_checkpoint", Json.Number checkpoint_version);
      (* energy is advisory (the resume path re-evaluates the labeling
         against its own encoding); keep the document parseable even if
         a solver ever reports a non-finite energy *)
      ( "energy",
        if Float.is_finite ck.ck_energy then Json.Number ck.ck_energy
        else Json.String (Float.to_string ck.ck_energy) );
      ("iterations", Json.Number (float_of_int ck.ck_iterations));
      ( "labeling",
        Json.List
          (Array.to_list
             (Array.map
                (fun l -> Json.Number (float_of_int l))
                ck.ck_labeling)) );
    ]

let checkpoint_to_string ?pretty ck =
  Json.to_string ?pretty (checkpoint_to_json ck)

let checkpoint_of_string s =
  let* json = Json.parse s in
  let* v =
    Result.bind (field "netdiv_checkpoint" json) (as_number "netdiv_checkpoint")
  in
  if v <> checkpoint_version then
    Error (Printf.sprintf "unsupported checkpoint version %g" v)
  else
    let* lab = Result.bind (field "labeling" json) (as_list "labeling") in
    let* lab =
      let rec go i acc = function
        | [] -> Ok (List.rev acc)
        | x :: rest ->
            let what = Printf.sprintf "labeling[%d]" i in
            let* f = as_number what x in
            if Float.is_integer f && f >= 0.0 && f < 1e9 then
              go (i + 1) (int_of_float f :: acc) rest
            else Error (Printf.sprintf "%s = %g is not a label index" what f)
      in
      go 0 [] lab
    in
    let energy =
      match Json.member "energy" json with
      | Some (Json.Number f) -> f
      | _ -> Float.nan
    in
    let iterations =
      match Json.member "iterations" json with
      | Some (Json.Number f) when Float.is_integer f && f >= 0.0 ->
          int_of_float f
      | _ -> 0
    in
    Ok
      {
        ck_energy = energy;
        ck_iterations = iterations;
        ck_labeling = Array.of_list lab;
      }
