(** Encoding the diversification problem as a discrete MRF (Section V).

    One MRF variable per (host, service) slot; its labels are the slot's
    candidate products after applying [Fix] constraints.  Costs:

    - unary: the constant preference cost [prconst] (the paper's
      [Pr_const]), or a caller-supplied preference function;
    - one pairwise edge per (network link, shared service): the
      vulnerability similarity of the assigned products — term (3);
    - one pairwise edge per applicable combination constraint, charging
      [big_m] to forbidden label pairs — the paper's ∞-cost encoding of
      Section V-A, realized as a finite big-M.

    Pairwise matrices are interned so that the thousands of edges carrying
    the same service similarity share one array. *)

type encoded

val default_prconst : float
(** The paper's [Pr_const] (0.01). *)

val encode :
  ?prconst:float ->
  ?big_m:float ->
  ?similarity_threshold:float ->
  ?preference:(host:int -> service:int -> product:int -> float) ->
  ?edge_weight:(int -> int -> float) ->
  Network.t ->
  Constr.t list ->
  encoded
(** Builds the MRF.  Defaults: [prconst = 0.01], [big_m = 1e6],
    [similarity_threshold = 0.0].

    [edge_weight u v] scales the similarity cost of the network link
    (u,v) (default 1 everywhere); weighting the links around critical
    assets higher buys extra diversity exactly where a worm must pass to
    reach them (defense in depth).  Weights must be non-negative.

    [similarity_threshold] snaps similarities strictly below it to
    exactly [0.0] before weighting.  The default keeps the encoding
    exact; a small threshold (e.g. the noise floor of the Jaccard
    estimates) turns near-uniform similarity rows into uniform ones, so
    the resulting pairwise tables classify as Potts or
    constant-plus-sparse and the solvers' structure-specialized message
    kernels apply (see {!Netdiv_mrf.Kernel}).  It changes the objective
    only by the mass it snaps away — use it when the similarity data is
    noisier than the threshold anyway.
    @raise Invalid_argument when a constraint fails {!Constr.validate},
    two [Fix] constraints clash on a slot, a weight is negative, or the
    threshold lies outside [0,1]. *)

val mrf : encoded -> Netdiv_mrf.Mrf.t

val n_vars : encoded -> int

val var_of : encoded -> host:int -> service:int -> int option
(** MRF variable of a slot. *)

val slot_of : encoded -> int -> int * int
(** (host, service) of a variable. *)

val labels_of : encoded -> int -> int array
(** Products selectable at a variable, indexed by MRF label. *)

val decode : encoded -> int array -> Assignment.t
(** Maps an MRF labeling back to a product assignment. *)

val labeling_of : encoded -> Assignment.t -> int array
(** Inverse of {!decode}.
    @raise Invalid_argument if the assignment picks a product excluded by
    the encoding (e.g. conflicting with a [Fix]). *)

val assignment_energy : encoded -> Assignment.t -> float
(** MRF energy of an assignment under this encoding. *)

val estimate_words : Network.t -> Constr.t list -> int
(** Predicted peak words ({!Netdiv_mrf.Mrf.estimate_words}) for encoding
    and solving this network, computed without building anything — the
    fail-fast check behind [--mem-budget].  Counts the exact slot and
    (link, shared service) edge totals; the table count is an upper
    bound (one matrix per service plus one per applicable combination
    constraint), so the estimate errs high when constraints repeat. *)
