(** Optimal diversification (Definition 5, Section V-C).

    Encodes a network and its constraints as an MRF and minimizes with a
    configurable solver.  The default pipeline is TRW-S followed by an ICM
    polish of the decoded labeling: TRW-S supplies the global structure and
    the dual bound, ICM removes residual single-slot defects (it can only
    lower the energy). *)

type solver =
  | Trws           (** TRW-S alone *)
  | Trws_icm       (** TRW-S + ICM polish (default, "our method") *)
  | Bp             (** loopy belief propagation baseline *)
  | Icm            (** greedy local search baseline *)
  | Sa             (** simulated annealing baseline *)
  | Exact
      (** branch-and-bound ({!Netdiv_mrf.Bnb}): proves global optimality
          when it converges; practical for small or loosely-coupled
          instances *)

type report = {
  assignment : Assignment.t;
  energy : float;              (** MRF energy of [assignment] *)
  lower_bound : float;         (** dual bound ([neg_infinity] without one) *)
  solver_result : Netdiv_mrf.Solver.result;
  constraints_ok : bool;       (** all constraints satisfied *)
  violated : Constr.t list;
  runtime_s : float;           (** encode + solve wall clock *)
  outcome : Netdiv_mrf.Runner.outcome;
      (** how the solve ended; [Converged] on the unbudgeted path iff the
          solver met its own stopping criterion *)
  stage_timings : (string * float) list;
      (** wall-clock seconds per solver stage, in execution order *)
  retries : int;
      (** stage attempts retried after recoverable failures (see
          {!Netdiv_mrf.Runner.run}); 0 on a clean or direct-path run *)
}

val run :
  ?solver:solver ->
  ?prconst:float ->
  ?big_m:float ->
  ?preference:(host:int -> service:int -> product:int -> float) ->
  ?edge_weight:(int -> int -> float) ->
  ?max_iters:int ->
  ?budget:Netdiv_mrf.Runner.Budget.t ->
  ?patience:float ->
  ?jobs:int ->
  ?zone_of:int array ->
  ?checkpoint:string ->
  ?resume:string ->
  Network.t ->
  Constr.t list ->
  report
(** Computes an (approximately) optimal constrained assignment; the
    optional arguments are forwarded to {!Encode.encode}.

    Passing [budget] and/or [patience] routes the solve through the
    anytime harness ({!Netdiv_mrf.Runner}): the solver runs under the
    wall-clock/sweep budget, stalls degrade through a fallback cascade
    (e.g. [Exact] → TRW-S + ICM with the remaining budget, [Sa]/[Icm]
    retried from perturbed restarts), and the returned assignment is the
    best found when the budget expires — always feasible with respect to
    the encoding.  Without either option the solver is invoked directly,
    with trajectories identical to earlier releases.

    [jobs] parallelizes the stages that have a job-count-invariant
    parallel form over the {!Netdiv_par.Pool} domain pool: TRW-S solves
    connected components on separate domains, [Icm] becomes
    multi-restart ICM, [Sa] fans its restarts out.  The assignment is
    identical for every [jobs] value; omitting [jobs] keeps the
    historical serial trajectories.

    [zone_of] (one zone id per MRF variable, e.g. the second component
    of {!Netdiv_workload.Workload.stream_zoned}) routes the TRW-S stage
    of the direct path ([Trws]/[Trws_icm] without [budget]/[patience]/
    [checkpoint]/[resume]) through block-coordinate zone decomposition
    ({!Netdiv_mrf.Trws.solve_zoned}) — the 100k-host configuration.  The
    result is a function of the zone map only, never of [jobs]; other
    solvers and the anytime harness ignore it.

    [checkpoint] names a file that receives an atomic best-labeling
    snapshot ({!Serial.checkpoint_to_string}) every time the harness's
    best strictly improves; a failed snapshot write warns and counts
    ([optimize.checkpoint_failures]) but never aborts the solve.
    [resume] reads such a file and warm-starts the cascade from it — an
    unreadable, corrupt or wrong-encoding checkpoint warns and starts
    fresh.  Either option routes the solve through the anytime harness
    (like [budget]/[patience]).  Resuming an interrupted run with the
    same parameters yields the same assignment as the uninterrupted
    run: stages warm-start from the checkpointed labeling, and the
    best-so-far merge prefers the newest equal-energy labeling. *)

val refine :
  ?prconst:float ->
  ?big_m:float ->
  ?preference:(host:int -> service:int -> product:int -> float) ->
  ?edge_weight:(int -> int -> float) ->
  previous:Assignment.t ->
  Network.t ->
  Constr.t list ->
  report
(** Incremental re-optimization after a small change (a new constraint, a
    changed candidate list): warm-starts local search from [previous]
    instead of solving from scratch.  Slots whose previous product is no
    longer selectable fall back before polishing.  Much faster than
    {!run} for small perturbations, with no dual bound. *)

val solve_encoded :
  ?solver:solver ->
  ?max_iters:int ->
  ?budget:Netdiv_mrf.Runner.Budget.t ->
  ?patience:float ->
  ?jobs:int ->
  ?zone_of:int array ->
  Encode.encoded ->
  Netdiv_mrf.Solver.result
(** Lower-level entry point on a pre-built encoding (used by the
    scalability benches, which time encode and solve separately).
    [zone_of] as in {!run}. *)

val solve_encoded_outcome :
  ?solver:solver ->
  ?max_iters:int ->
  ?budget:Netdiv_mrf.Runner.Budget.t ->
  ?patience:float ->
  ?jobs:int ->
  ?zone_of:int array ->
  ?checkpoint:string ->
  ?resume:string ->
  Encode.encoded ->
  Netdiv_mrf.Solver.result
  * Netdiv_mrf.Runner.outcome
  * (string * float) list
  * int
(** Like {!solve_encoded} but also reports the outcome, per-stage
    timings and retry count (the anytime-quality data the benches
    record).  [checkpoint]/[resume] as in {!run}. *)

val solver_name : solver -> string

val pp_report : Format.formatter -> report -> unit
