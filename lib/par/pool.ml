(* Chunked domain pool.  See pool.mli for the contract.

   Domains are spawned per call and always joined before the call
   returns: there is no persistent worker pool to shut down, so a
   program that finishes its last parallel region exits cleanly.  Chunk
   claiming goes through a single [Atomic] counter, which lets callers
   oversubscribe ([chunks] > [jobs]) for load balancing without
   affecting results: outputs are written into per-index slots or
   combined in chunk order, never in completion order. *)

exception Race of string

module Obs = Netdiv_obs.Obs
module Fault = Netdiv_fault.Fault

(* Pool telemetry (all no-ops until Obs.set_enabled true): regions and
   chunks dispatched, per-chunk and per-domain busy time, and GC
   pressure around parallel regions — the "is a domain idle / is the
   GC the bottleneck" questions every perf investigation starts with. *)
let c_regions = Obs.Counter.make "pool.regions"
let c_chunks = Obs.Counter.make "pool.chunks"
let c_gc_minor = Obs.Counter.make "pool.gc_minor"
let c_gc_major = Obs.Counter.make "pool.gc_major"
let c_gc_minor_words = Obs.Counter.make "pool.gc_minor_words"
let c_gc_major_words = Obs.Counter.make "pool.gc_major_words"
let h_chunk_busy = Obs.Histogram.make "pool.chunk_busy_s"
let h_domain_busy = Obs.Histogram.make "pool.domain_busy_s"

(* Fault-recovery telemetry: injected chunk crashes seen and chunks
   re-executed sequentially to completion. *)
let c_chunk_faults = Obs.Counter.make "pool.chunk_faults"
let c_chunk_recovered = Obs.Counter.make "pool.chunk_recovered"

(* Injection points (armed only under NETDIV_FAULT; see Netdiv_fault).
   [pool.chunk] crashes a chunk body; [pool.alloc] fails the output
   allocation of a mapping combinator.  Chunk keys combine a region
   sequence number with the chunk index, both deterministic program
   quantities, so a recorded schedule replays exactly. *)
let p_chunk = Fault.point "pool.chunk"
let p_alloc = Fault.point "pool.alloc"
let region_seq = Atomic.make 0

(* Wrap one combinator invocation: a "pool.region" span in the calling
   domain plus GC minor/major collection deltas (as observed by the
   caller).  Covers every execution strategy — inline fast path,
   granularity-planned sequential run and dispatched chunks — so a
   trace shows each parallel region exactly once. *)
let observe_region f =
  if not (Obs.enabled ()) then f ()
  else begin
    Obs.Counter.incr c_regions;
    let g0 = Gc.quick_stat () in
    let r = Obs.span ~name:"pool.region" f in
    let g1 = Gc.quick_stat () in
    Obs.Counter.add c_gc_minor
      (g1.Gc.minor_collections - g0.Gc.minor_collections);
    Obs.Counter.add c_gc_major
      (g1.Gc.major_collections - g0.Gc.major_collections);
    (* allocation attribution, words not collections: a region can
       allocate heavily yet get lucky on collection timing *)
    Obs.Counter.add c_gc_minor_words
      (int_of_float (g1.Gc.minor_words -. g0.Gc.minor_words));
    Obs.Counter.add c_gc_major_words
      (int_of_float (g1.Gc.major_words -. g0.Gc.major_words));
    r
  end

(* --------------------------------------------------------- sanitizer --

   NETDIV_SANITIZE=1 turns on a debug mode that shadow-tracks which
   chunk executed each loop index of a [parallel_for]/[map_range] region
   and, for consumers routing output stores through [write], which chunk
   wrote each output slot.  Overlapping writes from distinct chunks and
   writes escaping the owning chunk's sub-range raise [Race] instead of
   silently corrupting results.  The mode exists to catch races the
   static netdiv-lint rules cannot see; it costs a mutex per tracked
   event, so it is strictly a test/debug facility. *)

(* netdiv-lint: allow toplevel-mutable-state — test-only override knob for
   the sanitizer; written once by set_sanitize before parallel regions
   start, read-only inside them. *)
let sanitize_override = ref None

let set_sanitize v = sanitize_override := v

let sanitize_enabled () =
  match !sanitize_override with
  | Some b -> b
  | None -> (
      match Sys.getenv_opt "NETDIV_SANITIZE" with
      | Some ("1" | "true") -> true
      | _ -> false)

(* Shadow state for one sanitized parallel region.  [dispatch] records
   the chunk that claimed each loop index; [written] records, per output
   array (compared physically), the chunk that wrote each slot. *)
type region = {
  span_lo : int;
  span_hi : int;
  dispatch : int array;
  mutable written : (Obj.t * (int, int) Hashtbl.t) list;
  lock : Mutex.t;
}

type chunk_ctx = { chunk : int; clo : int; chi : int; region : region }

let make_region ~lo ~hi =
  {
    span_lo = lo;
    span_hi = hi;
    dispatch = Array.make (max 0 (hi - lo)) (-1);
    written = [];
    lock = Mutex.create ();
  }

(* Per-domain chunk context; Domain.DLS state is domain-local by
   construction, so this carries no cross-domain sharing. *)
let ctx_key : chunk_ctx option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let with_ctx ctx f =
  let prev = Domain.DLS.get ctx_key in
  Domain.DLS.set ctx_key (Some ctx);
  Fun.protect ~finally:(fun () -> Domain.DLS.set ctx_key prev) f

(* Claim loop index [i] for [ctx.chunk].  Catches a future chunking bug
   (overlapping or escaping chunk bounds) the moment it dispatches an
   index twice or outside the claiming chunk's sub-range. *)
let claim_dispatch ctx i =
  let r = ctx.region in
  if i < ctx.clo || i >= ctx.chi then
    raise
      (Race
         (Printf.sprintf
            "sanitizer: chunk %d [%d,%d) dispatched loop index %d outside \
             its bounds"
            ctx.chunk ctx.clo ctx.chi i));
  let clash =
    Mutex.protect r.lock (fun () ->
        let prev = r.dispatch.(i - r.span_lo) in
        if prev = -1 then r.dispatch.(i - r.span_lo) <- ctx.chunk;
        prev)
  in
  if clash <> -1 && clash <> ctx.chunk then
    raise
      (Race
         (Printf.sprintf
            "sanitizer: loop index %d dispatched to chunks %d and %d" i
            (min clash ctx.chunk) (max clash ctx.chunk)))

(* Shared shadow-tracking core of [write] / [write_slab]: record that
   [ctx.chunk] wrote slot [i] of the output identified by [o] and raise
   on a clash with another chunk. *)
let check_overlap ctx o i =
  let r = ctx.region in
  let clash =
    Mutex.protect r.lock (fun () ->
        let table =
          match List.find_opt (fun (o', _) -> o' == o) r.written with
          | Some (_, t) -> t
          | None ->
              let t = Hashtbl.create 64 in
              r.written <- (o, t) :: r.written;
              t
        in
        match Hashtbl.find_opt table i with
        | Some prev when prev <> ctx.chunk -> Some prev
        | _ ->
            Hashtbl.replace table i ctx.chunk;
            None)
  in
  match clash with
  | Some prev ->
      raise
        (Race
           (Printf.sprintf
              "sanitizer: overlapping write to slot %d by chunks %d and %d"
              i
              (min prev ctx.chunk)
              (max prev ctx.chunk)))
  | None -> ()

let write (arr : 'a array) i v =
  (match Domain.DLS.get ctx_key with
  | None -> ()
  | Some ctx ->
      check_overlap ctx (Obj.repr arr) i;
      if i < ctx.clo || i >= ctx.chi then
        raise
          (Race
             (Printf.sprintf
                "sanitizer: chunk %d [%d,%d) wrote slot %d across its \
                 chunk boundary"
                ctx.chunk ctx.clo ctx.chi i)));
  arr.(i) <- v

let write_slab (slab : floatarray) i v =
  (* Slab slots are indexed in their own offset space (directed-edge
     offsets, per-node scratch offsets, ...) which in general is not the
     loop-index space, so only the overlapping-write check applies — a
     slot owned by two distinct chunks is a race whatever the spaces. *)
  (match Domain.DLS.get ctx_key with
  | None -> ()
  | Some ctx -> check_overlap ctx (Obj.repr slab) i);
  Float.Array.set slab i v

let env_jobs () =
  match Sys.getenv_opt "NETDIV_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ -> None)

let resolve_jobs ?jobs () =
  match jobs with
  | Some n when n >= 1 -> n
  | _ -> (
      match env_jobs () with
      | Some n -> n
      | None -> max 1 (Domain.recommended_domain_count ()))

(* Splitmix64 finalizer over a mix of [seed] and [index].  Constants
   from Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators" (OOPSLA 2014).  Mask to 62 bits so the result stays a
   non-negative OCaml [int] on 64-bit platforms. *)
let split_seed seed index =
  let open Int64 in
  let golden = 0x9E3779B97F4A7C15L in
  let z = add (of_int seed) (mul (of_int (index + 1)) golden) in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  to_int (logand z 0x3FFF_FFFF_FFFF_FFFFL)

(* ------------------------------------------------- granularity plan --

   Callers may pass [?cost], an estimated per-item work weight in
   abstract units (~nanoseconds of straight-line compute).  The plan
   compares the total estimated work against a sequential cutoff:
   below it, domain spawn + join overhead (hundreds of microseconds
   per region on this runtime) dominates, so the region runs inline
   in the caller; above it, the chunk count adapts so each chunk
   carries enough work to amortize claiming, clamped to
   [jobs .. 8*jobs] for load balancing.  Without a hint the historical
   behavior is preserved exactly (chunks = jobs, always dispatch). *)

let sequential_cutoff = 20_000_000
let target_chunk_cost = 5_000_000

let plan ~jobs ~explicit_chunks ~cost ~n =
  let default_chunks =
    match explicit_chunks with Some c -> c | None -> jobs
  in
  match cost with
  | None -> (jobs, default_chunks)
  | Some per_item ->
      (* float arithmetic so absurd hints cannot overflow *)
      let total =
        float_of_int (max 1 per_item) *. float_of_int (max 0 n)
      in
      if total < float_of_int sequential_cutoff then
        (* inline, but an explicit chunk request still shapes the loop:
           chunk boundaries (and so sanitizer ownership, map_reduce
           association order) stay what the caller asked for *)
        (1, match explicit_chunks with Some c -> c | None -> 1)
      else
        let chunks =
          match explicit_chunks with
          | Some c -> c
          | None ->
              let by_cost =
                int_of_float (total /. float_of_int target_chunk_cost)
              in
              max jobs (min (8 * jobs) by_cost)
        in
        (jobs, chunks)

(* Hardware parallelism cap.  Spawning more domains than the runtime
   recommends (the CPUs actually visible to this process, cgroup quota
   included) always loses on OCaml 5: domains are OS threads sharing
   one stop-the-world minor collector, so oversubscription turns every
   minor GC into a contended global barrier.  [jobs] is therefore a cap
   on the domain count, never a demand.  Chunk boundaries remain a
   function of [chunks] alone, so the clamp can never change results,
   reduction order or sanitizer ownership. *)
let hardware_default = lazy (max 1 (Domain.recommended_domain_count ()))

(* netdiv-lint: allow toplevel-mutable-state — test-only override knob
   mirroring set_sanitize: lets the suite exercise the cross-domain
   machinery (Team barriers, chunk claiming) on single-core CI boxes
   where the recommended count would pin everything to the caller.
   Written between regions only. *)
let hardware_override = ref None

let set_hardware_jobs v = hardware_override := v

let hardware_jobs () =
  match !hardware_override with
  | Some n -> max 1 n
  | None -> Lazy.force hardware_default

(* Failure from the lowest-indexed failing chunk, so the exception the
   caller sees does not depend on domain scheduling. *)
type failure = { chunk : int; exn : exn; bt : Printexc.raw_backtrace }

let record_failure slot chunk exn bt =
  let f = { chunk; exn; bt } in
  let rec loop () =
    match Atomic.get slot with
    | Some prev when prev.chunk <= chunk -> ()
    | prev -> if not (Atomic.compare_and_set slot prev (Some f)) then loop ()
  in
  loop ()

(* Even split of [lo, lo+n) into [chunks] sub-ranges with the remainder
   spread over the first chunks; shared by [run_chunks] and [Team]. *)
let chunk_span ~lo ~n ~chunks c =
  let q = n / chunks and r = n mod chunks in
  let clo = lo + (c * q) + min c r in
  let chi = clo + q + (if c < r then 1 else 0) in
  (clo, chi)

(* Per-chunk span + busy-time sample; the span lands in the executing
   domain's buffer, so Perfetto shows which worker ran which chunk.  On
   failure the span is still closed before the exception propagates to
   [record_failure]. *)
let instrument_chunk body =
  if not (Obs.enabled ()) then body
  else fun c clo chi ->
    Obs.Counter.incr c_chunks;
    Obs.begin_span "pool.chunk";
    let t0 = Obs.Clock.now () in
    (match body c clo chi with
    | () ->
        Obs.Histogram.record h_chunk_busy (Obs.Clock.now () -. t0);
        Obs.end_span "pool.chunk"
    | exception exn ->
        let bt = Printexc.get_raw_backtrace () in
        Obs.Histogram.record h_chunk_busy (Obs.Clock.now () -. t0);
        Obs.end_span "pool.chunk";
        Printexc.raise_with_backtrace exn bt)

(* Run [body c clo chi] for every chunk [c] covering [lo, hi).  [body]
   receives the chunk index and its sub-range; chunk boundaries depend
   only on [chunks], [lo] and [hi], never on [jobs]. *)
let run_chunks ~jobs ~chunks ~lo ~hi body =
  let n = hi - lo in
  if n <= 0 then ()
  else
    let obs_on = Obs.enabled () in
    let body = instrument_chunk body in
    let chunks = max 1 (min chunks n) in
    let jobs = max 1 (min jobs chunks) in
    let jobs = min jobs (hardware_jobs ()) in
    let chunk_bounds c = chunk_span ~lo ~n ~chunks c in
    (* Injected chunk crashes are recoverable: the guard swallows them,
       notes the chunk, and the region re-executes those chunks
       sequentially after the parallel phase.  Chunk boundaries alone
       determine results, so a recovered region computes exactly what a
       fault-free region would — only the schedule differs.  Anything
       that is not an injected fault ([Race], programmer errors, real
       OS failures) still aborts the region through [record_failure]. *)
    let fault_on = Fault.enabled () in
    let rseq = if fault_on then Atomic.fetch_and_add region_seq 1 else 0 in
    let crash_mu = Mutex.create () in
    let crashed = ref [] in
    let guarded =
      if not fault_on then body
      else fun c clo chi ->
        match
          Fault.check ~key:((rseq lsl 12) lor c) p_chunk;
          body c clo chi
        with
        | () -> ()
        | exception exn when Fault.is_injected exn ->
            Obs.Counter.incr c_chunk_faults;
            Mutex.protect crash_mu (fun () -> crashed := c :: !crashed)
    in
    let recover () =
      (* ascending chunk order: deterministic, and (point, key) pairs
         fire at most once, so the re-execution cannot trip over the
         same injection again *)
      List.iter
        (fun c ->
          let clo, chi = chunk_bounds c in
          body c clo chi;
          Obs.Counter.incr c_chunk_recovered)
        (List.sort compare !crashed)
    in
    if jobs = 1 then begin
      let t0 = if obs_on then Obs.Clock.now () else 0.0 in
      for c = 0 to chunks - 1 do
        let clo, chi = chunk_bounds c in
        guarded c clo chi
      done;
      if fault_on then recover ();
      if obs_on then Obs.Histogram.record h_domain_busy (Obs.Clock.now () -. t0)
    end
    else begin
      let next = Atomic.make 0 in
      let failed : failure option Atomic.t = Atomic.make None in
      let worker_loop () =
        let continue = ref true in
        while !continue do
          let c = Atomic.fetch_and_add next 1 in
          if c >= chunks then continue := false
          else if Option.is_none (Atomic.get failed) then begin
            let clo, chi = chunk_bounds c in
            try guarded c clo chi
            with exn ->
              let bt = Printexc.get_raw_backtrace () in
              record_failure failed c exn bt
          end
        done
      in
      let worker () =
        (* per-domain busy time: this worker's whole participation in
           the region (chunk claiming included); comparing the recorded
           values exposes idle domains and load imbalance *)
        if obs_on then begin
          let t0 = Obs.Clock.now () in
          worker_loop ();
          Obs.Histogram.record h_domain_busy (Obs.Clock.now () -. t0)
        end
        else worker_loop ()
      in
      let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join domains;
      match Atomic.get failed with
      | Some { exn; bt; _ } -> Printexc.raise_with_backtrace exn bt
      | None -> if fault_on then recover ()
    end

let parallel_for ?jobs ?chunks ?cost ~lo ~hi f =
  if hi <= lo then ()
  else observe_region @@ fun () ->
  let jobs = resolve_jobs ?jobs () in
  let explicit_chunks =
    match chunks with Some c when c >= 1 -> Some c | _ -> None
  in
  let jobs, chunks = plan ~jobs ~explicit_chunks ~cost ~n:(hi - lo) in
  if sanitize_enabled () then
    (* the serial fast path is skipped on purpose: sanitized runs always
       dispatch through chunks so every index is claim-checked *)
    let region = make_region ~lo ~hi in
    run_chunks ~jobs ~chunks ~lo ~hi (fun c clo chi ->
        let ctx = { chunk = c; clo; chi; region } in
        with_ctx ctx (fun () ->
            for i = clo to chi - 1 do
              claim_dispatch ctx i;
              f i
            done))
  else if jobs = 1 && chunks = 1 then
    for i = lo to hi - 1 do
      f i
    done
  else
    run_chunks ~jobs ~chunks ~lo ~hi (fun _c clo chi ->
        for i = clo to chi - 1 do
          f i
        done)

let map_range ?jobs ?chunks ?cost ~lo ~hi f =
  let n = hi - lo in
  if n <= 0 then [||]
  else begin
    observe_region @@ fun () ->
    (* injected allocation failure: the whole region fails before any
       work is dispatched; recovery belongs to the caller (the anytime
       harness retries the stage) *)
    Fault.check p_alloc;
    let jobs = resolve_jobs ?jobs () in
    let explicit_chunks =
      match chunks with Some c when c >= 1 -> Some c | _ -> None
    in
    let jobs, chunks = plan ~jobs ~explicit_chunks ~cost ~n in
    if sanitize_enabled () then begin
      (* The pool's own stores map loop index [i] to slot [i - lo]
         bijectively, so dispatch claims shadow the output slots: a
         chunking bug shows up as a duplicate or escaping claim. *)
      let region = make_region ~lo ~hi in
      let first = f lo in
      let out = Array.make n first in
      run_chunks ~jobs ~chunks ~lo:(lo + 1) ~hi (fun c clo chi ->
          let ctx = { chunk = c; clo; chi; region } in
          with_ctx ctx (fun () ->
              for i = clo to chi - 1 do
                claim_dispatch ctx i;
                out.(i - lo) <- f i
              done));
      out
    end
    else if jobs = 1 && chunks = 1 then Array.init n (fun i -> f (lo + i))
    else begin
      (* Fill the first slot serially so the array can be allocated
         without requiring ['a] to have a dummy value. *)
      let first = f lo in
      let out = Array.make n first in
      run_chunks ~jobs ~chunks ~lo:(lo + 1) ~hi (fun _c clo chi ->
          for i = clo to chi - 1 do
            out.(i - lo) <- f i
          done);
      out
    end
  end

let map_reduce ?jobs ?chunks ?cost ~lo ~hi ~map ~reduce ~init =
  let n = hi - lo in
  if n <= 0 then init
  else begin
    observe_region @@ fun () ->
    Fault.check p_alloc;
    let jobs = resolve_jobs ?jobs () in
    let explicit_chunks =
      match chunks with Some c when c >= 1 -> Some c | _ -> None
    in
    let jobs, chunks = plan ~jobs ~explicit_chunks ~cost ~n in
    if jobs = 1 && chunks = 1 then begin
      let acc = ref init in
      for i = lo to hi - 1 do
        acc := reduce !acc (map i)
      done;
      !acc
    end
    else begin
      let chunks = max 1 (min chunks n) in
      let partial = Array.make chunks None in
      run_chunks ~jobs ~chunks ~lo ~hi (fun c clo chi ->
          let acc = ref (map clo) in
          for i = clo + 1 to chi - 1 do
            acc := reduce !acc (map i)
          done;
          partial.(c) <- Some !acc);
      Array.fold_left
        (fun acc p -> match p with None -> acc | Some v -> reduce acc v)
        init partial
    end
  end

(* ------------------------------------------------- persistent team --

   The per-call combinators above spawn domains per region, which is
   fine when a region carries tens of milliseconds of work (per-
   component solves, SA restarts) but hopeless for the intra-component
   schedules: a TRW-S half-sweep or one chromatic-BP color phase is
   10us-1ms of work and there are thousands of them per solve.  A
   [Team] amortizes the spawn: worker domains are created once per
   solve and parked on a condition variable; each [run] is one
   broadcast + chunk-claim + join-by-counter round trip (microseconds,
   not the hundreds of microseconds of Domain.spawn).

   Determinism contract is the same as [run_chunks]: chunk boundaries
   are a function of [chunks], [lo], [hi] alone ([chunk_span]), chunks
   are claimed dynamically, and the lowest failing chunk's exception
   wins.  Unlike the mapping combinators there is NO fault-injection
   point here: Team bodies update shared slabs in place (Gauss-Seidel
   message sweeps), so re-executing a crashed chunk is not idempotent
   and recovery would be unsound.  Teams are for regions whose results
   are chunk-boundary-deterministic by construction. *)

module Team = struct
  type team = {
    size : int;  (* participating domains, caller included *)
    mu : Mutex.t;
    work_ready : Condition.t;
    work_done : Condition.t;
    mutable epoch : int;
    mutable stopping : bool;
    (* current region, written under [mu] before the epoch bump *)
    mutable lo : int;
    mutable n : int;
    mutable chunks : int;
    mutable body : int -> int -> int -> unit;
    next : int Atomic.t;
    failed : failure option Atomic.t;
    mutable active : int;  (* workers still executing this epoch *)
    mutable domains : unit Domain.t array;
  }

  type t = team

  let noop _ _ _ = ()

  let claim_loop t =
    let continue = ref true in
    while !continue do
      let c = Atomic.fetch_and_add t.next 1 in
      if c >= t.chunks then continue := false
      else if Option.is_none (Atomic.get t.failed) then begin
        let clo, chi = chunk_span ~lo:t.lo ~n:t.n ~chunks:t.chunks c in
        try t.body c clo chi
        with exn ->
          let bt = Printexc.get_raw_backtrace () in
          record_failure t.failed c exn bt
      end
    done

  let worker t =
    let my_epoch = ref 0 in
    let continue = ref true in
    while !continue do
      Mutex.lock t.mu;
      while (not t.stopping) && t.epoch = !my_epoch do
        Condition.wait t.work_ready t.mu
      done;
      if t.stopping then begin
        Mutex.unlock t.mu;
        continue := false
      end
      else begin
        my_epoch := t.epoch;
        Mutex.unlock t.mu;
        claim_loop t;
        Mutex.lock t.mu;
        t.active <- t.active - 1;
        if t.active = 0 then Condition.signal t.work_done;
        Mutex.unlock t.mu
      end
    done

  let create ?jobs () =
    let size = min (resolve_jobs ?jobs ()) (hardware_jobs ()) in
    let t =
      {
        size;
        mu = Mutex.create ();
        work_ready = Condition.create ();
        work_done = Condition.create ();
        epoch = 0;
        stopping = false;
        lo = 0;
        n = 0;
        chunks = 0;
        body = noop;
        next = Atomic.make 0;
        failed = Atomic.make None;
        active = 0;
        domains = [||];
      }
    in
    if size > 1 then
      t.domains <-
        Array.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker t));
    t

  let size t = t.size

  let stop t =
    if Array.length t.domains > 0 then begin
      Mutex.protect t.mu (fun () ->
          t.stopping <- true;
          Condition.broadcast t.work_ready);
      Array.iter Domain.join t.domains;
      t.domains <- [||]
    end

  let run t ~chunks ~lo ~hi body =
    let n = hi - lo in
    if n <= 0 then ()
    else
      observe_region @@ fun () ->
      let chunks = max 1 (min chunks n) in
      let body = instrument_chunk body in
      let body =
        if not (sanitize_enabled ()) then body
        else begin
          (* same shadow tracking as parallel_for: every loop index is
             claimed by its chunk before the body runs, so overlapping
             or escaping chunk spans raise [Race]; bodies may addition-
             ally route stores through [write] / [write_slab]. *)
          let region = make_region ~lo ~hi in
          fun c clo chi ->
            let ctx = { chunk = c; clo; chi; region } in
            with_ctx ctx (fun () ->
                for i = clo to chi - 1 do
                  claim_dispatch ctx i
                done;
                body c clo chi)
        end
      in
      (* inline when there are no parked workers (size 1, or the team
         was stopped) or only one chunk exists *)
      if Array.length t.domains = 0 || chunks = 1 then
        for c = 0 to chunks - 1 do
          let clo, chi = chunk_span ~lo ~n ~chunks c in
          body c clo chi
        done
      else begin
        Mutex.lock t.mu;
        t.lo <- lo;
        t.n <- n;
        t.chunks <- chunks;
        t.body <- body;
        Atomic.set t.next 0;
        Atomic.set t.failed None;
        t.active <- t.size - 1;
        t.epoch <- t.epoch + 1;
        Condition.broadcast t.work_ready;
        Mutex.unlock t.mu;
        claim_loop t;
        Mutex.lock t.mu;
        while t.active > 0 do
          Condition.wait t.work_done t.mu
        done;
        Mutex.unlock t.mu;
        t.body <- noop;
        match Atomic.get t.failed with
        | Some { exn; bt; _ } -> Printexc.raise_with_backtrace exn bt
        | None -> ()
      end
end
