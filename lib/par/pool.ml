(* Chunked domain pool.  See pool.mli for the contract.

   Domains are spawned per call and always joined before the call
   returns: there is no persistent worker pool to shut down, so a
   program that finishes its last parallel region exits cleanly.  Chunk
   claiming goes through a single [Atomic] counter, which lets callers
   oversubscribe ([chunks] > [jobs]) for load balancing without
   affecting results: outputs are written into per-index slots or
   combined in chunk order, never in completion order. *)

let env_jobs () =
  match Sys.getenv_opt "NETDIV_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | _ -> None)

let resolve_jobs ?jobs () =
  match jobs with
  | Some n when n >= 1 -> n
  | _ -> (
      match env_jobs () with
      | Some n -> n
      | None -> max 1 (Domain.recommended_domain_count ()))

(* Splitmix64 finalizer over a mix of [seed] and [index].  Constants
   from Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators" (OOPSLA 2014).  Mask to 62 bits so the result stays a
   non-negative OCaml [int] on 64-bit platforms. *)
let split_seed seed index =
  let open Int64 in
  let golden = 0x9E3779B97F4A7C15L in
  let z = add (of_int seed) (mul (of_int (index + 1)) golden) in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  to_int (logand z 0x3FFF_FFFF_FFFF_FFFFL)

(* Failure from the lowest-indexed failing chunk, so the exception the
   caller sees does not depend on domain scheduling. *)
type failure = { chunk : int; exn : exn; bt : Printexc.raw_backtrace }

let record_failure slot chunk exn bt =
  let f = { chunk; exn; bt } in
  let rec loop () =
    match Atomic.get slot with
    | Some prev when prev.chunk <= chunk -> ()
    | prev -> if not (Atomic.compare_and_set slot prev (Some f)) then loop ()
  in
  loop ()

(* Run [body c clo chi] for every chunk [c] covering [lo, hi).  [body]
   receives the chunk index and its sub-range; chunk boundaries depend
   only on [chunks], [lo] and [hi], never on [jobs]. *)
let run_chunks ~jobs ~chunks ~lo ~hi body =
  let n = hi - lo in
  if n <= 0 then ()
  else
    let chunks = max 1 (min chunks n) in
    let jobs = max 1 (min jobs chunks) in
    let chunk_bounds c =
      (* Even split with the remainder spread over the first chunks. *)
      let q = n / chunks and r = n mod chunks in
      let clo = lo + (c * q) + min c r in
      let chi = clo + q + (if c < r then 1 else 0) in
      (clo, chi)
    in
    if jobs = 1 then
      for c = 0 to chunks - 1 do
        let clo, chi = chunk_bounds c in
        body c clo chi
      done
    else begin
      let next = Atomic.make 0 in
      let failed : failure option Atomic.t = Atomic.make None in
      let worker () =
        let continue = ref true in
        while !continue do
          let c = Atomic.fetch_and_add next 1 in
          if c >= chunks then continue := false
          else if Option.is_none (Atomic.get failed) then begin
            let clo, chi = chunk_bounds c in
            try body c clo chi
            with exn ->
              let bt = Printexc.get_raw_backtrace () in
              record_failure failed c exn bt
          end
        done
      in
      let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      Array.iter Domain.join domains;
      match Atomic.get failed with
      | Some { exn; bt; _ } -> Printexc.raise_with_backtrace exn bt
      | None -> ()
    end

let parallel_for ?jobs ?chunks ~lo ~hi f =
  let jobs = resolve_jobs ?jobs () in
  let chunks = match chunks with Some c when c >= 1 -> c | _ -> jobs in
  if jobs = 1 && chunks = 1 then
    for i = lo to hi - 1 do
      f i
    done
  else
    run_chunks ~jobs ~chunks ~lo ~hi (fun _c clo chi ->
        for i = clo to chi - 1 do
          f i
        done)

let map_range ?jobs ?chunks ~lo ~hi f =
  let n = hi - lo in
  if n <= 0 then [||]
  else begin
    let jobs = resolve_jobs ?jobs () in
    let chunks = match chunks with Some c when c >= 1 -> c | _ -> jobs in
    if jobs = 1 && chunks = 1 then Array.init n (fun i -> f (lo + i))
    else begin
      (* Fill the first slot serially so the array can be allocated
         without requiring ['a] to have a dummy value. *)
      let first = f lo in
      let out = Array.make n first in
      run_chunks ~jobs ~chunks ~lo:(lo + 1) ~hi (fun _c clo chi ->
          for i = clo to chi - 1 do
            out.(i - lo) <- f i
          done);
      out
    end
  end

let map_reduce ?jobs ?chunks ~lo ~hi ~map ~reduce ~init =
  let n = hi - lo in
  if n <= 0 then init
  else begin
    let jobs = resolve_jobs ?jobs () in
    let chunks = match chunks with Some c when c >= 1 -> c | _ -> jobs in
    if jobs = 1 && chunks = 1 then begin
      let acc = ref init in
      for i = lo to hi - 1 do
        acc := reduce !acc (map i)
      done;
      !acc
    end
    else begin
      let chunks = max 1 (min chunks n) in
      let partial = Array.make chunks None in
      run_chunks ~jobs ~chunks ~lo ~hi (fun c clo chi ->
          let acc = ref (map clo) in
          for i = clo + 1 to chi - 1 do
            acc := reduce !acc (map i)
          done;
          partial.(c) <- Some !acc);
      Array.fold_left
        (fun acc p -> match p with None -> acc | Some v -> reduce acc v)
        init partial
    end
  end
