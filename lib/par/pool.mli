(** Shared domain pool: chunked data-parallel iteration over integer ranges.

    This is the only module in the code base that is allowed to call
    [Domain.spawn].  Every parallel consumer (simulated annealing restarts,
    Monte-Carlo MTTC sweeps, per-component TRW-S, the bench harness) goes
    through the combinators below, which guarantee:

    - deterministic results: chunk outputs are combined in chunk-index
      order, so the result is independent of the number of domains;
    - exception propagation: a worker failure is re-raised in the caller
      (lowest failing chunk index wins) after all domains are joined;
    - a bit-for-bit serial fallback when the resolved job count is 1 —
      no domain is spawned and the body runs inline in the caller.

    {2 Race sanitizer}

    Setting [NETDIV_SANITIZE=1] (or calling {!set_sanitize}) switches
    {!parallel_for} and {!map_range} into a debug mode that shadow-tracks
    which chunk executed each loop index and — for stores routed through
    {!write} — which chunk wrote each output slot.  A loop index
    dispatched twice, a dispatch outside the claiming chunk's sub-range,
    an output slot written by two distinct chunks, or a write across the
    owning chunk's boundary raises {!Race} instead of silently producing
    job-count-dependent results.  The static netdiv-lint rules and this
    runtime check cover each other's blind spots: the linter sees code
    that never runs, the sanitizer sees aliasing no lexical rule can.
    Sanitized runs always dispatch through chunks (the serial fast path
    is disabled) and pay a mutex per tracked event, so the mode is meant
    for tests and debugging, never production runs.

    {2 Fault recovery}

    Under [NETDIV_FAULT] (see {!Netdiv_fault.Fault}) the pool hosts two
    injection points: [pool.chunk] crashes a chunk body and
    [pool.alloc] fails a mapping combinator before any work is
    dispatched.  An injected chunk crash is {e recovered}: the pool
    notes the chunk, lets the remaining chunks finish, and re-executes
    the crashed chunks sequentially in ascending chunk order after the
    parallel phase.  Chunk boundaries alone determine results, so a
    recovered region returns exactly what a fault-free region would;
    the recovery is visible only through the [pool.chunk_faults] /
    [pool.chunk_recovered] counters in {!Netdiv_obs}.  Exceptions that
    are not injected faults — {!Race}, programmer errors, real OS
    failures — keep their historical behavior: the region aborts and
    the lowest failing chunk's exception is re-raised in the caller. *)

exception Race of string
(** Raised (and re-raised in the calling domain, lowest failing chunk
    first) when the sanitizer observes an overlapping write, a
    chunk-boundary escape or a double dispatch. *)

val set_sanitize : bool option -> unit
(** [set_sanitize (Some b)] forces the sanitizer on or off for subsequent
    parallel regions, overriding the environment; [set_sanitize None]
    restores the [NETDIV_SANITIZE] default.  Call it only between
    parallel regions (tests), never from inside one. *)

val sanitize_enabled : unit -> bool
(** Whether the next parallel region will be sanitized. *)

val write : 'a array -> int -> 'a -> unit
(** [write out i v] is [out.(i) <- v] for an output array indexed by the
    loop index.  Outside a sanitized region it is exactly that store (one
    domain-local read of overhead).  Inside one, the sanitizer first
    checks that slot [i] is not owned by another chunk and that [i] lies
    within the calling chunk's sub-range, raising {!Race} otherwise.
    Use it for [parallel_for] bodies that fill a caller-allocated array;
    [map_range]'s own stores are tracked automatically. *)

val write_slab : floatarray -> int -> float -> unit
(** {!write} for unboxed float slabs.  Slab slots live in their own
    offset space (directed-edge offsets, per-node scratch offsets), which
    in general is not the loop-index space, so only the overlapping-write
    check applies: a slot written by two distinct chunks of the same
    region raises {!Race}; the chunk-boundary check of {!write} is
    skipped.  Outside a sanitized region this is [Float.Array.set]. *)

val set_hardware_jobs : int option -> unit
(** Test-only override of the hardware parallelism clamp.
    [set_hardware_jobs (Some n)] makes the pool and {!Team} behave as if
    [Domain.recommended_domain_count () = n] — on a single-core CI box
    this is the only way to actually exercise the cross-domain machinery
    (worker parking, chunk claiming, failure propagation).
    [set_hardware_jobs None] restores the runtime's own count.  Call it
    only between parallel regions, never from inside one; results are
    unaffected either way because chunk boundaries never depend on the
    domain count. *)

val resolve_jobs : ?jobs:int -> unit -> int
(** Number of worker domains to use.  Picks the first available of:
    [jobs] argument (when >= 1), the [NETDIV_JOBS] environment variable
    (when it parses to an int >= 1), [Domain.recommended_domain_count ()].
    The result is always >= 1.

    The resolved value is a {e cap}, not a demand: at execution time the
    pool additionally clamps the spawned domain count to
    [Domain.recommended_domain_count ()] (the CPUs actually visible to
    the process, cgroup quota included).  On OCaml 5 domains share one
    stop-the-world minor collector, so running more domains than cores
    strictly slows regions down.  Chunk boundaries — and therefore
    results, reduction order and sanitizer ownership — depend only on
    the chunk count, never on how many domains execute the chunks. *)

val split_seed : int -> int -> int
(** [split_seed seed index] derives an independent, deterministic child
    seed from a master seed and a chunk/run index using a splitmix64-style
    finalizer.  The result is non-negative and depends only on the two
    arguments, never on the job count. *)

(** {2 Granularity}

    Every combinator takes an optional [?cost] hint: the estimated work
    of one loop item in abstract units (≈ nanoseconds of straight-line
    compute; {!Netdiv_mrf.Kernel.message_cost} feeds it for the
    solvers).  When the hint puts the region's total estimated work
    below a sequential cutoff (≈ 20M units, a few domain-spawn
    round-trips), the region runs inline in the caller — spawning
    domains for sub-millisecond work makes 2–4 jobs {e slower} than
    sequential.  Above the cutoff the chunk count adapts to the
    estimate (clamped to [jobs .. 8*jobs]) so chunks stay coarse enough
    to amortize claiming.  Results never depend on the decision: all
    combinators are job- and chunk-count-invariant by construction (for
    {!map_reduce}, given an associative [reduce]).  Without [?cost] the
    historical behavior is unchanged.  An explicit [?chunks] overrides
    the adaptive count; sanitized regions always dispatch through
    chunks so the claim checks still run. *)

val sequential_cutoff : int
(** Total estimated work (units) below which a hinted region runs
    inline. *)

val target_chunk_cost : int
(** Estimated work one adaptive chunk aims to carry. *)

val parallel_for :
  ?jobs:int ->
  ?chunks:int ->
  ?cost:int ->
  lo:int ->
  hi:int ->
  (int -> unit) ->
  unit
(** [parallel_for ~lo ~hi f] runs [f i] for every [lo <= i < hi], with
    the range split into [chunks] contiguous chunks (default: the job
    count) claimed dynamically by [jobs] workers.  [f] must be safe to
    call concurrently for distinct [i].  With [jobs = 1] this is exactly
    [for i = lo to hi - 1 do f i done]. *)

val map_range :
  ?jobs:int ->
  ?chunks:int ->
  ?cost:int ->
  lo:int ->
  hi:int ->
  (int -> 'a) ->
  'a array
(** [map_range ~lo ~hi f] returns [[| f lo; f (lo+1); ...; f (hi-1) |]].
    Element order is always index order regardless of [jobs]. *)

val map_reduce :
  ?jobs:int ->
  ?chunks:int ->
  ?cost:int ->
  lo:int ->
  hi:int ->
  map:(int -> 'a) ->
  reduce:('a -> 'a -> 'a) ->
  init:'a ->
  'a
(** Fold [reduce] over [map i] for [lo <= i < hi].  Per-chunk partial
    results are combined left-to-right in chunk order starting from
    [init], so the result is job-count-invariant provided [reduce] is
    associative with [init] as identity. *)

(** {2 Persistent worker team}

    The combinators above spawn domains per region — fine for regions
    carrying tens of milliseconds of work, hopeless for intra-component
    solver schedules where one region (a TRW-S partition phase, one
    chromatic-BP color class) is 10µs–1ms of work repeated thousands of
    times per solve.  A {!Team.t} amortizes the spawn: its worker
    domains are created once (per solve) and parked on a condition
    variable; each {!Team.run} costs one broadcast plus a chunk-claim
    loop plus a counter join.

    The determinism contract matches the combinators: chunk boundaries
    are a function of [chunks], [lo], [hi] alone; chunks are claimed
    dynamically; the lowest failing chunk's exception is re-raised in
    the caller.  Under the sanitizer every loop index is claim-checked
    exactly as in {!parallel_for}, and bodies may route stores through
    {!write} / {!write_slab}.  There is {e no} fault-injection point
    inside a team: team bodies update shared slabs in place, so
    re-executing a crashed chunk would not be idempotent — teams are
    reserved for regions whose writes are disjoint by construction. *)

module Team : sig
  type t

  val create : ?jobs:int -> unit -> t
  (** Spawns [min (resolve_jobs ?jobs ()) hardware] minus one worker
      domains (the caller is the remaining participant) and parks them.
      With a resolved size of 1 no domain is spawned and every {!run}
      executes inline in the caller. *)

  val size : t -> int
  (** Participating domains, caller included; always >= 1. *)

  val run :
    t -> chunks:int -> lo:int -> hi:int -> (int -> int -> int -> unit) -> unit
  (** [run t ~chunks ~lo ~hi body] executes [body c clo chi] for every
      chunk [c] covering [lo, hi), exactly like the chunk dispatch of
      {!parallel_for} but on the parked workers.  [body] must confine
      its writes so that distinct chunks never write the same slot.
      Not reentrant: do not call [run] from inside a team body. *)

  val stop : t -> unit
  (** Wakes and joins the worker domains.  Idempotent.  A team must be
      stopped before the program exits; {!run} after [stop] executes
      inline in the caller. *)
end
