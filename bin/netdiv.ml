(* netdiv: command-line front end for the network-diversity toolkit.

   Subcommands:
     similarity   print a CVE/NVD vulnerability-similarity table
     optimize     optimally diversify a random network and report energies
     casestudy    run the Stuxnet-inspired ICS case study (Tables V/VI)
     simulate     agent-based worm propagation on the case study
     scalability  runtime sweep over random networks (Tables VII-IX) *)

module Corpus = Netdiv_vuln.Corpus
module Similarity = Netdiv_vuln.Similarity
module Network = Netdiv_core.Network
module Assignment = Netdiv_core.Assignment
module Optimize = Netdiv_core.Optimize
module Encode = Netdiv_core.Encode
module Workload = Netdiv_workload.Workload
module Engine = Netdiv_sim.Engine
module Topology = Netdiv_casestudy.Topology
module Products = Netdiv_casestudy.Products
module Experiments = Netdiv_casestudy.Experiments
module Runner = Netdiv_mrf.Runner
module Mrf = Netdiv_mrf.Mrf
module Trws = Netdiv_mrf.Trws
module Solver = Netdiv_mrf.Solver
module Obs = Netdiv_obs.Obs
module Obs_export = Netdiv_obs.Export
module Recorder = Netdiv_obs.Recorder
module Obs_report = Netdiv_obs.Report
module Json = Netdiv_vuln.Json

open Cmdliner

(* ------------------------------------------------------------ similarity *)

let similarity_cmd =
  let corpus =
    let doc = "Corpus to print: os, browser or database." in
    Arg.(value & opt string "os" & info [ "corpus" ] ~docv:"NAME" ~doc)
  in
  let synthesize =
    let doc =
      "Round-trip through a synthetic NVD: generate CVE entries matching \
       the curated counts and recompute the table from them."
    in
    Arg.(value & flag & info [ "synthesize" ] ~doc)
  in
  let run corpus synthesize =
    match Corpus.find_spec corpus with
    | None -> `Error (false, Printf.sprintf "unknown corpus %S" corpus)
    | Some spec ->
        let table =
          if synthesize then
            Similarity.of_nvd ~since:1999 ~until:2016
              (Corpus.synthesize spec)
              (Array.to_list spec.Corpus.products)
          else Corpus.table spec
        in
        Format.printf "%a@." Similarity.pp table;
        `Ok ()
  in
  let doc = "print a vulnerability-similarity table (paper Tables II/III)" in
  Cmd.v
    (Cmd.info "similarity" ~doc)
    Term.(ret (const run $ corpus $ synthesize))

(* -------------------------------------------------------------- optimize *)

let solver_conv =
  let parse = function
    | "trws" -> Ok Optimize.Trws
    | "trws+icm" -> Ok Optimize.Trws_icm
    | "bp" -> Ok Optimize.Bp
    | "icm" -> Ok Optimize.Icm
    | "sa" -> Ok Optimize.Sa
    | "bnb" | "exact" -> Ok Optimize.Exact
    | s -> Error (`Msg (Printf.sprintf "unknown solver %S" s))
  in
  let print ppf s = Format.pp_print_string ppf (Optimize.solver_name s) in
  Arg.conv (parse, print)

let time_budget_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "time-budget" ] ~docv:"SECONDS"
        ~doc:
          "Wall-clock budget per solve.  The solver runs through the \
           anytime harness and returns the best assignment found when \
           the budget expires.")

let budget_of = Option.map Runner.Budget.seconds

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "jobs" ] ~docv:"N"
        ~doc:
          "Parallelize the solver over N domains (0 = auto: \
           $(b,NETDIV_JOBS) or the recommended domain count).  The \
           assignment is identical for every N; omitting the option \
           keeps the serial solver.")

let jobs_of = function
  | None -> None
  | Some n when n >= 1 -> Some n
  | Some _ -> Some (Netdiv_par.Pool.resolve_jobs ())

(* --------------------------------------------------------- observability *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record trace spans and metrics while the command runs and \
           write them to $(docv).  A $(b,.jsonl) suffix selects the \
           line-delimited event log; any other name gets Chrome \
           trace_event JSON, loadable in chrome://tracing or Perfetto.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Print the span rollup and metrics registry (counters, \
           gauges, histograms) after the command finishes.")

(* Enables tracing around [f] when either output was requested; the
   trace/summary is still written when [f] raises so a failing run can
   be diagnosed from its partial trace. *)
let with_obs ~trace ~metrics f =
  if trace = None && not metrics then f ()
  else begin
    Obs.set_enabled true;
    let finish () =
      Obs.set_enabled false;
      Option.iter
        (fun path ->
          match Obs_export.write_trace ~path with
          | Ok () -> Format.printf "wrote trace %s@." path
          | Error msg ->
              Format.eprintf "netdiv: could not write trace %s: %s@." path msg)
        trace;
      if metrics then Format.printf "%a@." Obs_export.pp_summary ()
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let flight_record_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "flight-record" ] ~docv:"FILE"
        ~doc:
          "Keep a fixed-size convergence flight recorder installed for \
           the solve and dump its frames to $(docv) as JSON.  O(capacity) \
           memory whatever the instance size — cheap enough to leave on \
           at 100k hosts where $(b,--trace) is too heavy.  The dump also \
           happens on degradation, watchdog abandonment and escaping \
           exceptions; read it back with $(b,netdiv report).")

(* Installs a flight recorder around [f] when requested.  The anytime
   runner dumps with its outcome as the reason; paths that bypass the
   runner (the zoned scalability solve) are covered by the completion
   dump here, which defers to any more specific dump already written. *)
let with_flight_record ~flight f =
  match flight with
  | None -> f ()
  | Some path ->
      let r = Recorder.create ~dump_path:path "netdiv" in
      let dump reason =
        match Recorder.dump ~reason r with
        | Ok () -> Format.printf "wrote flight record %s@." path
        | Error msg ->
            Format.eprintf "netdiv: could not write flight record %s: %s@."
              path msg
      in
      Recorder.with_recorder r (fun () ->
          match f () with
          | v ->
              (match Recorder.last_dump r with
              | Some reason ->
                  Format.printf "wrote flight record %s (%s)@." path reason
              | None -> dump "completed");
              v
          | exception e ->
              if Recorder.last_dump r = None then
                dump (Printexc.to_string e);
              raise e)

let optimize_cmd =
  let hosts =
    Arg.(value & opt int 200 & info [ "hosts" ] ~docv:"N" ~doc:"Host count.")
  in
  let degree =
    Arg.(value & opt int 10 & info [ "degree" ] ~docv:"D" ~doc:"Average degree.")
  in
  let services =
    Arg.(value & opt int 5 & info [ "services" ] ~docv:"S" ~doc:"Services per host.")
  in
  let products =
    Arg.(value & opt int 4 & info [ "products" ] ~docv:"P" ~doc:"Products per service.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let solver =
    Arg.(value & opt solver_conv Optimize.Trws_icm
         & info [ "solver" ] ~docv:"SOLVER"
             ~doc:"Solver: trws+icm, trws, bp, icm, sa or bnb.")
  in
  let checkpoint =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"FILE"
             ~doc:"Write an atomic best-assignment snapshot to $(docv) \
                   every time the solve improves (routes through the \
                   anytime harness).")
  in
  let resume =
    Arg.(value & opt (some string) None
         & info [ "resume" ] ~docv:"FILE"
             ~doc:"Warm-start the solve from a checkpoint written by \
                   $(b,--checkpoint); an invalid or mismatched file warns \
                   and starts fresh.")
  in
  let run hosts degree services products_per_service seed solver
      time_budget jobs checkpoint resume flight trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    with_flight_record ~flight @@ fun () ->
    let net =
      Workload.instance { hosts; degree; services; products_per_service; seed }
    in
    Format.printf "%a@." Network.pp net;
    let report =
      Optimize.run ~solver ?budget:(budget_of time_budget)
        ?jobs:(jobs_of jobs) ?checkpoint ?resume net []
    in
    let encoded = Encode.encode net [] in
    let mono = Encode.assignment_energy encoded (Assignment.mono net) in
    let random =
      Encode.assignment_energy encoded
        (Assignment.random ~rng:(Random.State.make [| seed |]) net)
    in
    Format.printf "solver  %s@." (Optimize.solver_name solver);
    Format.printf "outcome %a@." Runner.pp_outcome report.Optimize.outcome;
    if report.Optimize.retries > 0 then
      Format.printf "retries %d@." report.Optimize.retries;
    (* surface the replay spec whenever injection actually fired, so a
       chaos run can be reproduced bit for bit from its own output *)
    if Netdiv_fault.Fault.fired_count () > 0 then
      Format.printf "faults  %s@." (Netdiv_fault.Fault.fired_spec ());
    Format.printf "optimal %a@." Optimize.pp_report report;
    Format.printf "mono    energy %.3f@.random  energy %.3f@." mono random
  in
  let doc = "diversify a random network and compare against baselines" in
  Cmd.v
    (Cmd.info "optimize" ~doc)
    Term.(
      const run $ hosts $ degree $ services $ products $ seed $ solver
      $ time_budget_arg $ jobs_arg $ checkpoint $ resume $ flight_record_arg
      $ trace_arg $ metrics_arg)

(* ------------------------------------------------------------- casestudy *)

let casestudy_cmd =
  let runs =
    Arg.(value & opt int 1000
         & info [ "runs" ] ~docv:"N" ~doc:"Simulation runs per MTTC cell.")
  in
  let seed = Arg.(value & opt int 2020 & info [ "seed" ] ~doc:"Random seed.") in
  let show_assignments =
    Arg.(value & flag
         & info [ "assignments" ]
             ~doc:"Also print the three optimal assignments (Fig. 4).")
  in
  let run runs seed show_assignments time_budget jobs trace metrics =
    with_obs ~trace ~metrics @@ fun () ->
    let net = Products.network () in
    let a =
      Experiments.compute_assignments ~seed
        ?budget:(budget_of time_budget) ?jobs:(jobs_of jobs) net
    in
    if show_assignments then begin
      Format.printf "=== optimal assignment (Fig. 4a) ===@.%a@." Assignment.pp
        a.Experiments.optimal;
      Format.printf "=== host-constrained (Fig. 4b) ===@.%a@." Assignment.pp
        a.Experiments.host_constrained;
      Format.printf "=== product-constrained (Fig. 4c) ===@.%a@."
        Assignment.pp a.Experiments.product_constrained
    end;
    Format.printf "=== Table V: BN diversity metric (entry c4, target t5) ===@.";
    Format.printf "%-16s %10s %10s %10s@." "assignment" "log10 P'" "log10 P"
      "d_bn";
    List.iter
      (fun (r : Experiments.diversity_row) ->
        Format.printf "%-16s %10.3f %10.3f %10.5f@." r.label r.log_p_ref
          r.log_p_sim r.d_bn)
      (Experiments.diversity_table a);
    Format.printf "@.=== Table VI: MTTC in ticks (%d runs each) ===@." runs;
    Format.printf "%-16s" "assignment";
    List.iter (Format.printf "%10s") Topology.entry_points;
    Format.printf "@.";
    List.iter
      (fun (r : Experiments.mttc_row) ->
        Format.printf "%-16s" r.label;
        List.iter
          (fun (_, (s : Engine.mttc_stats)) ->
            Format.printf "%10.2f" s.mean_ticks)
          r.per_entry;
        Format.printf "@.")
      (Experiments.mttc_table ~seed ~runs a)
  in
  let doc = "run the Stuxnet-inspired ICS case study (paper Section VII)" in
  Cmd.v
    (Cmd.info "casestudy" ~doc)
    Term.(
      const run $ runs $ seed $ show_assignments $ time_budget_arg
      $ jobs_arg $ trace_arg $ metrics_arg)

(* -------------------------------------------------------------- simulate *)

let simulate_cmd =
  let entry =
    Arg.(value & opt string "c4"
         & info [ "entry" ] ~docv:"HOST" ~doc:"Attack entry host.")
  in
  let target =
    Arg.(value & opt string "t5"
         & info [ "target" ] ~docv:"HOST" ~doc:"Attack target host.")
  in
  let runs = Arg.(value & opt int 1000 & info [ "runs" ] ~doc:"Runs.") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Random seed.") in
  let assignment =
    Arg.(value & opt string "optimal"
         & info [ "assignment" ] ~docv:"NAME"
             ~doc:"One of: optimal, host-constr, product-constr, random, mono.")
  in
  let run entry target runs seed assignment =
    let net = Products.network () in
    let a = Experiments.compute_assignments ~seed net in
    match List.assoc_opt assignment (Experiments.labelled a) with
    | None -> `Error (false, Printf.sprintf "unknown assignment %S" assignment)
    | Some chosen -> (
        match (Network.find_host net entry, Network.find_host net target) with
        | Some entry_h, Some target_h ->
            let rng = Random.State.make [| seed |] in
            let stats, summary =
              Engine.mttc_summary ~rng ~runs chosen ~entry:entry_h
                ~target:target_h
            in
            Format.printf "%s from %s to %s: %a@." assignment entry target
              Engine.pp_mttc stats;
            (match summary with
            | Some s ->
                Format.printf "distribution: %a@." Netdiv_sim.Stat.pp_summary s
            | None -> ());
            let curve =
              Engine.epidemic_curve ~rng ~max_ticks:200 chosen ~entry:entry_h
            in
            Format.printf "epidemic curve (infected hosts per tick): %s@."
              (String.concat " "
                 (Array.to_list (Array.map string_of_int curve)));
            `Ok ()
        | _ -> `Error (false, "unknown entry or target host"))
  in
  let doc = "simulate Stuxnet-like worm propagation on the case study" in
  Cmd.v
    (Cmd.info "simulate" ~doc)
    Term.(ret (const run $ entry $ target $ runs $ seed $ assignment))

(* --------------------------------------------------------------- metrics *)

let metrics_cmd =
  let entry =
    Arg.(value & opt string "c4"
         & info [ "entry" ] ~docv:"HOST" ~doc:"Attack entry host.")
  in
  let target =
    Arg.(value & opt string "t5"
         & info [ "target" ] ~docv:"HOST" ~doc:"Attack target host.")
  in
  let seed = Arg.(value & opt int 2020 & info [ "seed" ] ~doc:"Random seed.") in
  let run entry target seed =
    let net = Products.network () in
    match (Network.find_host net entry, Network.find_host net target) with
    | Some entry_h, Some target_h ->
        let a = Experiments.compute_assignments ~seed net in
        let module M = Netdiv_metrics.Metrics in
        Format.printf "diversity metrics, entry %s, target %s:@.@." entry
          target;
        Format.printf "%-16s %10s %24s %8s %10s@." "assignment" "d1"
          "least effort (k)" "d2" "d3 (d_bn)";
        List.iter
          (fun (label, assignment) ->
            let effort =
              match
                M.least_effort ~limit:5 assignment ~entry:entry_h
                  ~target:target_h
              with
              | Ok exploits ->
                  Printf.sprintf "%d: %s" (List.length exploits)
                    (String.concat ","
                       (List.map
                          (Format.asprintf "%a" (M.pp_exploit net))
                          exploits))
              | Error `Above_limit -> ">5"
              | Error `Unreachable -> "unreachable"
            in
            Format.printf "%-16s %10.4f %24s %8.4f %10.5f@." label
              (M.d1 assignment) effort
              (M.d2 assignment ~entry:entry_h ~target:target_h)
              (M.d3 assignment ~entry:entry_h ~target:target_h))
          (Experiments.labelled a);
        `Ok ()
    | _ -> `Error (false, "unknown entry or target host")
  in
  let doc = "score case-study deployments with the d1/d2/d3 diversity metrics" in
  Cmd.v (Cmd.info "metrics" ~doc) Term.(ret (const run $ entry $ target $ seed))

(* ------------------------------------------------------------------ feed *)

let feed_cmd =
  let file =
    Arg.(required & opt (some file) None
         & info [ "file" ] ~docv:"FILE" ~doc:"NVD JSON feed (schema 1.1).")
  in
  let cpes =
    Arg.(value & opt_all string []
         & info [ "cpe" ] ~docv:"CPE"
             ~doc:"CPE pattern to include in the similarity table \
                   (repeatable), e.g. cpe:/o:microsoft:windows_7.")
  in
  let weighted =
    Arg.(value & flag
         & info [ "weighted" ]
             ~doc:"Weight the similarity by CVSS base scores.")
  in
  let run file cpes weighted =
    let contents =
      let ic = open_in_bin file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    let db = Netdiv_vuln.Nvd.create () in
    match Netdiv_vuln.Feed.load_into db contents with
    | Error msg -> `Error (false, msg)
    | Ok (count, warnings) ->
        Format.printf "loaded %d CVE entries (%d skipped)@." count
          (List.length warnings);
        List.iter (fun w -> Format.printf "  warning: %s@." w) warnings;
        let parsed =
          List.map
            (fun s ->
              match Netdiv_vuln.Cpe.of_string s with
              | Ok c -> Ok (s, c)
              | Error e -> Error e)
            cpes
        in
        (match
           List.find_opt (function Error _ -> true | Ok _ -> false) parsed
         with
        | Some (Error e) -> `Error (false, e)
        | _ ->
            let products =
              List.filter_map (function Ok p -> Some p | Error _ -> None)
                parsed
            in
            if products <> [] then begin
              let table =
                if weighted then Netdiv_vuln.Weighted.of_nvd db products
                else Netdiv_vuln.Similarity.of_nvd db products
              in
              Format.printf "%a@." Netdiv_vuln.Similarity.pp table
            end;
            `Ok ())
  in
  let doc = "ingest an NVD JSON feed and compute similarity tables" in
  Cmd.v (Cmd.info "feed" ~doc) Term.(ret (const run $ file $ cpes $ weighted))

(* ---------------------------------------------------------------- verify *)

let verify_cmd =
  let network_file =
    Arg.(required & opt (some file) None
         & info [ "network" ] ~docv:"FILE" ~doc:"Network JSON (see export).")
  in
  let assignment_file =
    Arg.(required & opt (some file) None
         & info [ "assignment" ] ~docv:"FILE" ~doc:"Assignment JSON.")
  in
  let read_file path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let run network_file assignment_file =
    match Netdiv_core.Serial.network_of_string (read_file network_file) with
    | Error msg -> `Error (false, "network: " ^ msg)
    | Ok net -> (
        match
          Netdiv_core.Serial.assignment_of_string net
            (read_file assignment_file)
        with
        | Error msg -> `Error (false, "assignment: " ^ msg)
        | Ok a ->
            let encoded = Encode.encode net [] in
            Format.printf "network:    %a@." Network.pp net;
            Format.printf "energy:     %.6f@."
              (Encode.assignment_energy encoded a);
            Format.printf "cross-edge similarity: %.6f@."
              (Assignment.pairwise_energy a);
            let optimal = Optimize.run net [] in
            Format.printf
              "optimizer reaches:     %.6f (bound %.6f)@."
              optimal.Optimize.energy optimal.Optimize.lower_bound;
            `Ok ())
  in
  let doc = "score a saved assignment against its network file" in
  Cmd.v
    (Cmd.info "verify" ~doc)
    Term.(ret (const run $ network_file $ assignment_file))

(* ------------------------------------------------------------------ lint *)

let lint_cmd =
  let paths =
    Arg.(value & pos_all string [ "lib"; "bin" ]
         & info [] ~docv:"PATH"
             ~doc:"Files or directories to lint (default: lib bin).")
  in
  let list_rules =
    Arg.(value & flag
         & info [ "list-rules" ] ~doc:"Print the shipped rules and exit.")
  in
  let format =
    Arg.(value & opt string "text"
         & info [ "format" ] ~docv:"FMT" ~doc:"Output format: text or json.")
  in
  let baseline =
    Arg.(value & opt (some string) None
         & info [ "baseline" ] ~docv:"FILE"
             ~doc:"Accepted-findings file; only findings not listed there \
                   fail the run, and stale entries are reported.")
  in
  let write_baseline =
    Arg.(value & opt (some string) None
         & info [ "write-baseline" ] ~docv:"FILE"
             ~doc:"Write the current findings as a baseline skeleton \
                   (reasons left as TODO) and exit 0.")
  in
  let explain =
    Arg.(value & opt (some string) None
         & info [ "explain" ] ~docv:"SYMBOL"
             ~doc:"Print the witness call chain(s) behind the taint \
                   findings on SYMBOL (qualified name or suffix).")
  in
  let refs =
    Arg.(value & opt_all string []
         & info [ "refs" ] ~docv:"DIR"
             ~doc:"Extra reference roots whose uses count for \
                   unused-export but are not themselves linted \
                   (default: test bench examples tools siblings of the \
                   first path).")
  in
  (* exit codes are part of the contract (cram-tested): 0 clean, 1 new
     findings, 2 usage or parse error — so errors print to stderr and
     exit directly instead of going through cmdliner's `Error (124). *)
  let usage_error fmt =
    Format.kasprintf
      (fun msg ->
        Format.eprintf "netdiv: %s@." msg;
        exit 2)
      fmt
  in
  let run list_rules format baseline write_baseline explain refs paths =
    let module Lint = Netdiv_lint.Lint in
    if list_rules then begin
      List.iter
        (fun (id, descr) -> Format.printf "%-24s %s@." id descr)
        Lint.rules;
      `Ok ()
    end
    else begin
      if format <> "text" && format <> "json" then
        usage_error "unknown --format %S (expected text or json)" format;
      (match List.filter (fun p -> not (Sys.file_exists p)) paths with
      | missing :: _ -> usage_error "no such file or directory: %s" missing
      | [] -> ());
      let ref_paths =
        match refs with [] -> Lint.default_ref_paths paths | l -> l
      in
      let report = Lint.analyze_paths ~ref_paths paths in
      match explain with
      | Some sym -> (
          match Lint.explain report sym with
          | [] ->
              usage_error
                "no finding with a witness chain matches %S (chains exist \
                 only for unsuppressed interprocedural findings)"
                sym
          | fs ->
              List.iter
                (fun (f : Lint.finding) ->
                  Format.printf "%a@.%a" Lint.pp_finding f Lint.pp_chain
                    f.Lint.chain)
                fs;
              `Ok ())
      | None -> (
          match write_baseline with
          | Some file ->
              let oc = open_out_bin file in
              output_string oc (Lint.baseline_template report.Lint.r_findings);
              close_out oc;
              Format.printf
                "wrote %d entr%s to %s; fill in the TODO reasons@."
                (List.length report.Lint.r_findings)
                (if List.length report.Lint.r_findings = 1 then "y" else "ies")
                file;
              `Ok ()
          | None ->
              let entries =
                match baseline with
                | None -> []
                | Some file ->
                    if not (Sys.file_exists file) then
                      usage_error "baseline file not found: %s" file;
                    let ic = open_in_bin file in
                    let text = really_input_string ic (in_channel_length ic) in
                    close_in ic;
                    (match Lint.baseline_of_string text with
                    | Ok e -> e
                    | Error msg -> usage_error "%s: %s" file msg)
              in
              let fresh, baselined, stale =
                Lint.apply_baseline entries report.Lint.r_findings
              in
              (match format with
              | "json" ->
                  print_string
                    (Lint.report_to_json ~fresh ~baselined ~stale report)
              | _ ->
                  List.iter
                    (fun f -> Format.printf "%a@." Lint.pp_finding f)
                    fresh;
                  if fresh <> [] || baselined > 0 || stale <> [] then
                    Format.printf "%d finding(s), %d baselined, %d stale \
                                   baseline entr%s@."
                      (List.length fresh) baselined (List.length stale)
                      (if List.length stale = 1 then "y" else "ies");
                  List.iter
                    (fun s -> Format.printf "stale baseline entry: %s@." s)
                    stale);
              if fresh <> [] then exit 1;
              `Ok ())
    end
  in
  let doc =
    "statically check the sources for concurrency/determinism hazards"
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Runs the netdiv-lint surface rules (spawn-outside-pool, \
         toplevel-mutable-state, nondeterminism-source, \
         direct-clock-in-instrumented-code, list-nth-in-loop, \
         missing-mli, printf-in-lib, swallowed-exception, \
         float-equality-in-kernel) and the interprocedural rules \
         (nondet-taint, impure-in-parallel-region, unused-export) over \
         the given paths.  Findings can be silenced by inline \
         suppressions ($(b,(* netdiv-lint: allow <rule> — <reason> *))) \
         or accepted in a $(b,--baseline) file; both require a written \
         reason.";
      `P
        "Exit codes: 0 when clean (or all findings baselined), 1 when \
         new findings remain, 2 on usage or parse errors.";
    ]
  in
  Cmd.v (Cmd.info "lint" ~doc ~man)
    Term.(
      ret
        (const run $ list_rules $ format $ baseline $ write_baseline $ explain
       $ refs $ paths))

(* ------------------------------------------------------------------ rank *)

let rank_cmd =
  let entry =
    Arg.(value & opt string "c4"
         & info [ "entry" ] ~docv:"HOST" ~doc:"Attack entry host.")
  in
  let assignment =
    Arg.(value & opt string "optimal"
         & info [ "assignment" ] ~docv:"NAME"
             ~doc:"One of: optimal, host-constr, product-constr, random, mono.")
  in
  let samples =
    Arg.(value & opt int 50_000 & info [ "samples" ] ~doc:"BN samples.")
  in
  let top = Arg.(value & opt int 15 & info [ "top" ] ~doc:"Rows to print.") in
  let run entry assignment samples top =
    let net = Products.network () in
    let a = Experiments.compute_assignments net in
    match
      ( List.assoc_opt assignment (Experiments.labelled a),
        Network.find_host net entry )
    with
    | Some chosen, Some entry_h ->
        let marginals =
          Netdiv_bayes.Attack_bn.host_marginals ~samples chosen
            ~entry:entry_h ~model:Netdiv_bayes.Attack_bn.Uniform_choice
        in
        let zone h =
          let name = Network.host_name net h in
          match
            List.find_opt
              (fun (_, members) -> List.mem name members)
              Topology.zones
          with
          | Some (zone, _) -> zone
          | None -> "?"
        in
        let rows = Array.to_list marginals in
        let sorted =
          List.sort (fun (_, p) (_, q) -> compare q p) rows
        in
        Format.printf
          "host compromise risk under %s (entry %s, %d samples):@."
          assignment entry samples;
        Format.printf "%-6s %-12s %10s@." "host" "zone" "P(comp.)";
        List.iteri
          (fun i (h, p) ->
            if i < top then
              Format.printf "%-6s %-12s %10.5f@."
                (Network.host_name net h) (zone h) p)
          sorted;
        `Ok ()
    | None, _ -> `Error (false, "unknown assignment")
    | _, None -> `Error (false, "unknown entry host")
  in
  let doc = "rank case-study hosts by compromise probability" in
  Cmd.v
    (Cmd.info "rank" ~doc)
    Term.(ret (const run $ entry $ assignment $ samples $ top))

(* ---------------------------------------------------------------- export *)

let export_cmd =
  let network_out =
    Arg.(value & opt (some string) None
         & info [ "network" ] ~docv:"FILE"
             ~doc:"Write the case-study network as JSON.")
  in
  let assignment_out =
    Arg.(value & opt (some string) None
         & info [ "assignment" ] ~docv:"FILE"
             ~doc:"Write the optimal assignment as JSON.")
  in
  let feed_out =
    Arg.(value & opt (some string) None
         & info [ "feed" ] ~docv:"FILE"
             ~doc:"Write the synthetic OS corpus as an NVD JSON feed.")
  in
  let dot_out =
    Arg.(value & opt (some string) None
         & info [ "dot" ] ~docv:"FILE"
             ~doc:"Write the optimal assignment as a Graphviz DOT graph.")
  in
  let write path contents =
    match Netdiv_fault.Io.write_atomic ~path contents with
    | Ok () -> Format.printf "wrote %s@." path
    | Error msg -> Format.eprintf "netdiv: could not write %s: %s@." path msg
  in
  let run network_out assignment_out feed_out dot_out =
    let net = Products.network () in
    Option.iter
      (fun path ->
        write path (Netdiv_core.Serial.network_to_string ~pretty:true net))
      network_out;
    Option.iter
      (fun path ->
        let report = Optimize.run net [] in
        write path
          (Netdiv_core.Serial.assignment_to_string ~pretty:true
             report.Optimize.assignment))
      assignment_out;
    Option.iter
      (fun path ->
        write path
          (Netdiv_vuln.Feed.to_string ~pretty:true
             (Corpus.synthesize Corpus.os_spec)))
      feed_out;
    Option.iter
      (fun path ->
        let report = Optimize.run net [] in
        write path
          (Netdiv_core.Viz.assignment_dot
             ~entry:(Topology.host "c4")
             ~target:(Topology.host Topology.target)
             report.Optimize.assignment))
      dot_out
  in
  let doc = "export the case study (network, assignment, synthetic feed) as JSON" in
  Cmd.v
    (Cmd.info "export" ~doc)
    Term.(const run $ network_out $ assignment_out $ feed_out $ dot_out)

(* ----------------------------------------------------------- scalability *)

let scalability_cmd =
  let sweep =
    Arg.(value & opt string "hosts"
         & info [ "sweep" ] ~docv:"DIM" ~doc:"Dimension: hosts, degree or services.")
  in
  let full =
    Arg.(value & flag
         & info [ "full" ] ~doc:"Run the paper's full parameter ranges.")
  in
  let hosts_arg =
    Arg.(value & opt (some int) None
         & info [ "hosts" ] ~docv:"N"
             ~doc:
               "Solve one zoned instance of $(docv) hosts instead of \
                sweeping: the instance is streamed zone-by-zone into the \
                compact MRF encoder and solved by block-coordinate zone \
                decomposition.  This is the 100k-host entry point.")
  in
  let zones_arg =
    Arg.(value & opt (some int) None
         & info [ "zones" ] ~docv:"Z"
             ~doc:
               "Zone count for $(b,--hosts) mode (default: one zone per \
                1000 hosts, at least one).")
  in
  let mem_budget_arg =
    Arg.(value & opt (some float) None
         & info [ "mem-budget" ] ~docv:"MIB"
             ~doc:
               "Fail fast before any allocation when the predicted peak \
                model+solver footprint of $(b,--hosts) mode exceeds \
                $(docv) mebibytes.")
  in
  let run sweep full hosts zones mem_budget time_budget jobs flight trace
      metrics =
    with_obs ~trace ~metrics @@ fun () ->
    with_flight_record ~flight @@ fun () ->
    let budget = budget_of time_budget in
    let jobs = jobs_of jobs in
    let time_one hosts degree services =
      let net =
        Workload.instance
          { hosts; degree; services; products_per_service = 4; seed = 1 }
      in
      let (_ : Optimize.report) = Optimize.run ?budget ?jobs net [] in
      let t0 = Obs.Clock.now () in
      let report = Optimize.run ?budget ?jobs net [] in
      let elapsed = Obs.Clock.now () -. t0 in
      let marker =
        if Runner.outcome_converged report.Optimize.outcome then ""
        else
          Format.asprintf "  (%a)" Runner.pp_outcome
            report.Optimize.outcome
      in
      (elapsed, marker)
    in
    let row label hosts degree services =
      let t, marker = time_one hosts degree services in
      Format.printf "%6d %8.3f%s@." label t marker
    in
    let hosts_mode n =
      if n < 1 then `Error (false, "netdiv scalability: --hosts must be >= 1")
      else begin
        let z = match zones with Some z -> z | None -> max 1 (n / 1000) in
        if z < 1 then
          `Error (false, "netdiv scalability: --zones must be >= 1")
        else begin
          let p =
            { Workload.default_zoned with z_hosts = n; z_zones = min z n }
          in
          Format.printf "# %a@." Workload.pp_zoned_params p;
          let words = Workload.estimate_zoned_words p in
          let mib w = float_of_int (w * 8) /. (1024. *. 1024.) in
          match mem_budget with
          | Some cap when mib words > cap ->
              `Error
                ( false,
                  Format.asprintf
                    "netdiv scalability: predicted footprint %.1f MiB (%d \
                     words: compact model + message slabs for %d \
                     variables across %d zones) exceeds --mem-budget \
                     %.1f MiB; nothing was allocated.  Raise the budget \
                     or lower --hosts."
                    (mib words) words
                    (n * p.Workload.z_services)
                    p.Workload.z_zones cap )
          | _ ->
              let t0 = Obs.Clock.now () in
              let model, zone_of = Workload.stream_zoned p in
              let gen_s = Obs.Clock.now () -. t0 in
              let fp = Mrf.footprint model in
              Format.printf "%a@." Mrf.pp_footprint fp;
              let result = Trws.solve_zoned ~zone_of ?jobs model in
              let gap =
                (result.Solver.energy -. result.Solver.lower_bound)
                /. Float.max 1.0 (Float.abs result.Solver.energy)
              in
              Format.printf
                "energy %a  bound %a  gap %.2e  rounds %d%s@.generate \
                 %.3fs  solve %.3fs  words/host %.1f@."
                Solver.pp_float result.Solver.energy Solver.pp_float
                result.Solver.lower_bound gap result.Solver.iterations
                (if result.Solver.converged then "" else "  (not converged)")
                gen_s result.Solver.runtime_s
                (float_of_int fp.Mrf.f_words /. float_of_int n);
              `Ok ()
        end
      end
    in
    match hosts with
    | Some n -> hosts_mode n
    | None ->
    (match sweep with
    | "hosts" ->
        let sizes =
          if full then [ 100; 200; 400; 600; 800; 1000; 2000; 4000; 6000 ]
          else [ 100; 200; 400; 800; 1000 ]
        in
        Format.printf "# hosts (degree 20, 15 services): time in seconds@.";
        List.iter (fun n -> row n n 20 15) sizes
    | "degree" ->
        let degrees =
          if full then [ 5; 10; 15; 20; 25; 30; 35; 40; 45; 50 ]
          else [ 5; 10; 20; 30 ]
        in
        Format.printf "# degree (1000 hosts, 15 services): time in seconds@.";
        List.iter (fun d -> row d 1000 d 15) degrees
    | "services" ->
        let services =
          if full then [ 5; 10; 15; 20; 25; 30 ] else [ 5; 10; 15 ]
        in
        Format.printf "# services (1000 hosts, degree 20): time in seconds@.";
        List.iter (fun s -> row s 1000 20 s) services
    | other -> Format.printf "unknown sweep dimension %S@." other);
    `Ok ()
  in
  let doc = "runtime sweeps over random networks (paper Tables VII-IX)" in
  Cmd.v
    (Cmd.info "scalability" ~doc)
    Term.(
      ret
        (const run $ sweep $ full $ hosts_arg $ zones_arg $ mem_budget_arg
       $ time_budget_arg $ jobs_arg $ flight_record_arg $ trace_arg
       $ metrics_arg))

(* ---------------------------------------------------- trace/dump readers *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

(* A Chrome trace is one JSON document carrying a traceEvents list;
   anything else is treated as JSONL, one event object per line.
   Validation is strict — this doubles as the CI round-trip check for
   the exporters. *)
let load_trace contents =
  match Json.parse contents with
  | Ok json -> (
      match Option.bind (Json.member "traceEvents" json) Json.to_list with
      | Some events -> Ok ("chrome", events)
      | None -> Error "single JSON document without a traceEvents list")
  | Error _ ->
      let rec go lineno acc = function
        | [] -> Ok ("jsonl", List.rev acc)
        | line :: rest ->
            if String.trim line = "" then go (lineno + 1) acc rest
            else (
              match Json.parse line with
              | Ok ev -> go (lineno + 1) (ev :: acc) rest
              | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
      in
      go 1 [] (String.split_on_char '\n' contents)

(* JSON numbers cannot carry non-finite floats, so the exporters write
   them as strings ("inf", "-inf", "nan"); accept both shapes here. *)
let json_num j =
  match Json.to_float j with
  | Some v -> Some v
  | None -> Option.bind (Json.to_str j) float_of_string_opt

(* Decode one Chrome/JSONL trace-event object back into an {!Obs.event}
   so `netdiv report` and `netdiv obs-summary` can reuse the in-process
   analyses ({!Obs_report.hot_spans}, {!Obs_report.kernel_throughput})
   on data read from disk.  [ts] is microseconds in the trace format. *)
let event_of_json ev =
  let str k = Option.bind (Json.member k ev) Json.to_str in
  let num k = Option.bind (Json.member k ev) json_num in
  match (str "name", str "ph") with
  | Some name, Some ph ->
      (match ph with
      | "B" -> Some Obs.Begin
      | "E" -> Some Obs.End
      | "i" -> Some Obs.Instant
      | "C" -> Some Obs.Sample
      | _ -> None)
      |> Option.map (fun kind ->
             {
               Obs.kind;
               name;
               ts = (match num "ts" with Some us -> us /. 1e6 | None -> 0.0);
               tid = (match num "tid" with Some t -> int_of_float t | None -> 0);
               value =
                 (match
                    Option.bind (Json.path [ "args"; "value" ] ev) json_num
                  with
                 | Some v -> v
                 | None -> 0.0);
             })
  | _ -> None

(* Decode one flight-recorder frame object (see {!Recorder.dump_string}
   for the writer side).  [None] on any missing or mistyped field — the
   caller treats that as a malformed dump, not a skippable frame. *)
let frame_of_json j =
  let f k = Option.bind (Json.member k j) json_num in
  let i k = Option.map int_of_float (f k) in
  let b k = Option.bind (Json.member k j) Json.to_bool in
  let s k = Option.bind (Json.member k j) Json.to_str in
  match s "k" with
  | Some "sweep" -> (
      match
        ( f "t", i "iter", f "energy", f "bound", f "residual",
          i "msg_potts", i "msg_sparse", i "msg_generic" )
      with
      | ( Some t, Some iter, Some energy, Some bound, Some residual,
          Some mp, Some ms, Some mg ) ->
          Some
            (Recorder.Sweep
               {
                 Recorder.s_t = t;
                 s_iter = iter;
                 s_energy = energy;
                 s_bound = bound;
                 s_residual = residual;
                 s_msg_potts = mp;
                 s_msg_sparse = ms;
                 s_msg_generic = mg;
               })
      | _ -> None)
  | Some "zone" -> (
      match
        (f "t", i "round", i "zone", f "energy", f "bound", i "iters",
         b "converged")
      with
      | Some t, Some round, Some zone, Some energy, Some bound, Some iters,
        Some converged ->
          Some
            (Recorder.Zone
               {
                 Recorder.z_t = t;
                 z_round = round;
                 z_zone = zone;
                 z_energy = energy;
                 z_bound = bound;
                 z_iterations = iters;
                 z_converged = converged;
               })
      | _ -> None)
  | Some "boundary" -> (
      match
        (f "t", i "round", i "disagree", f "edge_bound", f "zone_bound",
         f "step")
      with
      | Some t, Some round, Some disagree, Some eb, Some zb, Some step ->
          Some
            (Recorder.Boundary
               {
                 Recorder.b_t = t;
                 b_round = round;
                 b_disagree = disagree;
                 b_edge_bound = eb;
                 b_zone_bound = zb;
                 b_step = step;
               })
      | _ -> None)
  | Some "mark" -> (
      match (f "t", s "label") with
      | Some t, Some label ->
          Some (Recorder.Mark { Recorder.mk_t = t; mk_label = label })
      | _ -> None)
  | _ -> None

(* ---------------------------------------------------------------- report *)

let report_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "Flight-recorder dump written by $(b,--flight-record), or a \
             trace file written by $(b,--trace) (Chrome JSON or .jsonl).")
  in
  let top =
    Arg.(value & opt int 10
         & info [ "top" ] ~docv:"K"
             ~doc:"Rows in the hot-span table (trace input only).")
  in
  let run file top =
    let contents = read_file file in
    match Json.parse contents with
    | Ok json when Json.member "netdiv_recorder" json <> None -> (
        match Option.bind (Json.member "frames" json) Json.to_list with
        | None ->
            `Error
              (false, Printf.sprintf "%s: recorder dump lacks a frames list" file)
        | Some frames_json ->
            let frames = List.filter_map frame_of_json frames_json in
            if List.length frames <> List.length frames_json then
              `Error
                ( false,
                  Printf.sprintf "%s: malformed frame in flight-recorder dump"
                    file )
            else begin
              let str k = Option.bind (Json.member k json) Json.to_str in
              let int_of k =
                Option.map int_of_float
                  (Option.bind (Json.member k json) Json.to_float)
              in
              Format.printf "recorder %s@."
                (Option.value ~default:"?" (str "name"));
              Format.printf "reason   %s@."
                (Option.value ~default:"?" (str "reason"));
              (match (int_of "recorded", int_of "capacity", int_of "dropped")
               with
              | Some r, Some c, Some d ->
                  Format.printf "frames   %d recorded, capacity %d, %d dropped@."
                    r c d
              | _ -> ());
              Format.printf "%a@." Obs_report.pp_convergence frames;
              `Ok ()
            end)
    | _ -> (
        (* not a recorder dump: fall back to the trace formats and report
           profiling attribution instead of convergence *)
        match load_trace contents with
        | Error msg -> `Error (false, Printf.sprintf "%s: %s" file msg)
        | Ok (format, events_json) ->
            let events = List.filter_map event_of_json events_json in
            Format.printf "format  %s (%d events)@." format
              (List.length events);
            Format.printf "%a@." (Obs_report.pp_hot_spans ~k:top) events;
            if Obs_report.kernel_throughput events <> [] then
              Format.printf "%a@." Obs_report.pp_throughput events;
            `Ok ())
  in
  let doc =
    "render convergence and profiling reports from a flight-recorder dump \
     or trace"
  in
  Cmd.v (Cmd.info "report" ~doc) Term.(ret (const run $ file $ top))

(* ----------------------------------------------------------- obs-summary *)

let obs_summary_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"TRACE"
          ~doc:"Trace file written by $(b,--trace) (Chrome JSON or .jsonl).")
  in
  let run file =
    match load_trace (read_file file) with
    | Error msg -> `Error (false, Printf.sprintf "%s: %s" file msg)
    | Ok (format, events) -> (
        let malformed = ref None in
        let spans = Hashtbl.create 16 in
        let begins = ref 0
        and ends = ref 0
        and instants = ref 0
        and samples = ref 0 in
        List.iteri
          (fun i ev ->
            match
              ( Option.bind (Json.member "name" ev) Json.to_str,
                Option.bind (Json.member "ph" ev) Json.to_str )
            with
            | Some name, Some ph -> (
                match ph with
                | "B" ->
                    incr begins;
                    Hashtbl.replace spans name
                      (1
                      + Option.value ~default:0 (Hashtbl.find_opt spans name))
                | "E" -> incr ends
                | "i" -> incr instants
                | "C" -> incr samples
                | _ -> if !malformed = None then malformed := Some i)
            | _ -> if !malformed = None then malformed := Some i)
          events;
        match !malformed with
        | Some i ->
            `Error
              ( false,
                Printf.sprintf "%s: event %d lacks a name/ph or uses an \
                                unknown phase" file i )
        | None ->
            Format.printf "format  %s@." format;
            Format.printf "events  %d@." (List.length events);
            Format.printf "spans   %d begun, %d ended@." !begins !ends;
            Format.printf "marks   %d instants, %d counter samples@."
              !instants !samples;
            let names =
              List.sort
                (fun (na, ca) (nb, cb) ->
                  let c = compare (cb : int) ca in
                  if c <> 0 then c else compare (na : string) nb)
                (Hashtbl.fold (fun k v acc -> (k, v) :: acc) spans [])
            in
            if names <> [] then begin
              Format.printf "span names:@.";
              List.iter
                (fun (n, c) -> Format.printf "  %-34s %8d@." n c)
                names
            end;
            (* profiling attribution shares the `netdiv report` code
               path: decode the validated events and roll them up *)
            let decoded = List.filter_map event_of_json events in
            if Obs_report.hot_spans decoded <> [] then
              Format.printf "%a@." (Obs_report.pp_hot_spans ~k:10) decoded;
            if Obs_report.kernel_throughput decoded <> [] then
              Format.printf "%a@." Obs_report.pp_throughput decoded;
            `Ok ())
  in
  let doc = "validate and digest a trace file written by --trace" in
  Cmd.v (Cmd.info "obs-summary" ~doc) Term.(ret (const run $ file))

let main =
  let doc =
    "optimal network diversification for ICS resilience (DSN 2020 \
     reproduction)"
  in
  Cmd.group
    (Cmd.info "netdiv" ~version:"1.0.0" ~doc)
    [ similarity_cmd; optimize_cmd; casestudy_cmd; simulate_cmd;
      scalability_cmd; metrics_cmd; feed_cmd; export_cmd; rank_cmd;
      verify_cmd; lint_cmd; obs_summary_cmd; report_cmd ]

let () = exit (Cmd.eval main)
