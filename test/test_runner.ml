(* Tests for the anytime harness (Runner): a ~0-second budget makes every
   solver return within its next interrupt poll with a feasible labeling
   and [Budget_exhausted]; a generous budget reproduces the legacy solver
   trajectories exactly; stalls degrade through the fallback cascade and
   still yield constraint-satisfying assignments. *)

open Netdiv_mrf
module Optimize = Netdiv_core.Optimize
module Constr = Netdiv_core.Constr
module Network = Netdiv_core.Network
module Workload = Netdiv_workload.Workload

let rng seed = Random.State.make [| seed |]

let random_mrf rng n k p =
  let b = Mrf.Builder.create ~label_counts:(Array.make n k) in
  for i = 0 to n - 1 do
    Mrf.Builder.set_unary b ~node:i
      (Array.init k (fun _ -> Random.State.float rng 1.0))
  done;
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1.0 < p then
        Mrf.Builder.add_edge b u v
          (Array.init (k * k) (fun _ -> Random.State.float rng 1.0))
    done
  done;
  Mrf.Builder.build b

let outcome = Alcotest.testable Runner.pp_outcome ( = )

(* the labeling is complete, in range, and consistent with the reported
   energy — the anytime feasibility guarantee *)
let check_feasible name mrf (r : Solver.result) =
  Alcotest.(check int)
    (name ^ ": labeling length")
    (Mrf.n_nodes mrf)
    (Array.length r.Solver.labeling);
  Array.iteri
    (fun i l ->
      if l < 0 || l >= Mrf.label_count mrf i then
        Alcotest.failf "%s: label %d out of range at node %d" name l i)
    r.Solver.labeling;
  Alcotest.(check (float 1e-6))
    (name ^ ": energy matches labeling")
    (Mrf.energy mrf r.Solver.labeling)
    r.Solver.energy

let instance ~hosts ?(degree = 10) ?(services = 5) ?(products = 4)
    ?(seed = 1) () =
  Workload.instance
    { hosts; degree; services; products_per_service = products; seed }

(* ------------------------------------------------- zero-budget anytime *)

let test_zero_budget_stages () =
  let mrf = random_mrf (rng 42) 200 4 0.02 in
  List.iter
    (fun stage ->
      let name = Runner.stage_name stage in
      let report =
        Runner.run
          ~budget:(Runner.Budget.seconds 0.0)
          ~stages:[ stage ] mrf
      in
      Alcotest.check outcome
        (name ^ ": outcome")
        Runner.Budget_exhausted report.Runner.outcome;
      check_feasible name mrf report.Runner.result;
      (* the first poll fires before the first sweep *)
      if report.Runner.result.Solver.iterations > 1 then
        Alcotest.failf "%s: ran %d sweeps under a zero budget" name
          report.Runner.result.Solver.iterations)
    [
      Runner.trws (); Runner.trws_icm (); Runner.bp (); Runner.icm ();
      Runner.sa (); Runner.bnb ();
    ]

let test_zero_budget_brute () =
  (* brute polls every 1024 labelings, so give it a space it can cover
     between polls: 3^12 = 531,441 *)
  let mrf = random_mrf (rng 7) 12 3 0.4 in
  let report =
    Runner.run
      ~budget:(Runner.Budget.seconds 0.0)
      ~stages:[ Runner.brute () ]
      mrf
  in
  Alcotest.check outcome "brute: outcome" Runner.Budget_exhausted
    report.Runner.outcome;
  check_feasible "brute" mrf report.Runner.result;
  if report.Runner.result.Solver.iterations > 1024 then
    Alcotest.failf "brute: enumerated %d labelings under a zero budget"
      report.Runner.result.Solver.iterations

let test_optimize_zero_budget () =
  let net = instance ~hosts:200 () in
  List.iter
    (fun solver ->
      let name = Optimize.solver_name solver in
      let report =
        Optimize.run ~solver
          ~budget:(Runner.Budget.seconds 0.0)
          net []
      in
      Alcotest.check outcome
        (name ^ ": outcome")
        Runner.Budget_exhausted report.Optimize.outcome;
      Alcotest.(check bool)
        (name ^ ": constraints ok")
        true report.Optimize.constraints_ok;
      if not (Float.is_finite report.Optimize.energy) then
        Alcotest.failf "%s: non-finite energy" name)
    [
      Optimize.Trws; Optimize.Trws_icm; Optimize.Bp; Optimize.Icm;
      Optimize.Sa; Optimize.Exact;
    ]

(* ------------------------------------------------- generous budgets *)

let test_generous_budget_matches_legacy () =
  let net = instance ~hosts:60 () in
  List.iter
    (fun solver ->
      let name = Optimize.solver_name solver in
      let legacy = Optimize.run ~solver net [] in
      let budgeted =
        Optimize.run ~solver
          ~budget:(Runner.Budget.seconds 300.0)
          net []
      in
      Alcotest.(check (float 1e-9))
        (name ^ ": energy matches legacy")
        legacy.Optimize.energy budgeted.Optimize.energy;
      Alcotest.check outcome
        (name ^ ": outcome matches legacy")
        legacy.Optimize.outcome budgeted.Optimize.outcome)
    [ Optimize.Trws; Optimize.Trws_icm; Optimize.Bp; Optimize.Icm;
      Optimize.Sa ]

let test_generous_budget_bnb () =
  let mrf = random_mrf (rng 5) 12 3 0.3 in
  let exact = Brute.solve mrf in
  let report =
    Runner.run
      ~budget:(Runner.Budget.seconds 300.0)
      ~stages:[ Runner.bnb () ]
      mrf
  in
  Alcotest.check outcome "bnb: outcome" Runner.Converged
    report.Runner.outcome;
  Alcotest.(check (float 1e-9))
    "bnb: certified optimum" exact.Solver.energy
    report.Runner.result.Solver.energy

(* ------------------------------------------------- fallback cascade *)

let test_cascade_falls_back_on_stall () =
  let mrf = random_mrf (rng 9) 50 3 0.1 in
  let report =
    Runner.run ~patience:0.0
      ~stages:[ Runner.sa (); Runner.icm () ]
      mrf
  in
  (match report.Runner.outcome with
  | Runner.Fell_back ("sa", _) -> ()
  | o ->
      Alcotest.failf "expected a fallback from sa, got %a" Runner.pp_outcome
        o);
  check_feasible "cascade" mrf report.Runner.result;
  match report.Runner.stage_timings with
  | [ ("sa", _); ("icm", _) ] -> ()
  | l ->
      Alcotest.failf "expected sa and icm stage timings, got [%s]"
        (String.concat "; " (List.map fst l))

let test_exact_cascade_constraints () =
  let net = instance ~hosts:30 ~degree:6 ~services:3 () in
  let service = (Network.host_services net 0).(0) in
  let constraints =
    [
      Constr.Fix
        {
          host = 0;
          service;
          product = (Network.candidates net ~host:0 ~service).(0);
        };
    ]
  in
  let report =
    Optimize.run ~solver:Optimize.Exact
      ~budget:(Runner.Budget.seconds 30.0)
      ~patience:0.0 net constraints
  in
  (match report.Optimize.outcome with
  | Runner.Fell_back ("bnb", _) -> ()
  | o ->
      Alcotest.failf "expected a fallback from bnb, got %a"
        Runner.pp_outcome o);
  Alcotest.(check bool)
    "cascade satisfies the Fix constraint" true
    report.Optimize.constraints_ok

(* ------------------------------------------------- budget mechanics *)

let test_icm_restarts_jobs_invariant () =
  let mrf = random_mrf (rng 13) 40 3 0.2 in
  let solve jobs =
    (Runner.run ~stages:[ Runner.icm_restarts ~jobs () ] mrf).Runner.result
  in
  let one = solve 1 in
  let four = solve 4 in
  Alcotest.(check (float 1e-9)) "same energy" one.Solver.energy
    four.Solver.energy;
  Alcotest.(check bool) "same labeling" true
    (one.Solver.labeling = four.Solver.labeling);
  (* the restarts can only improve on a single warm-started ICM *)
  let single = (Runner.run ~stages:[ Runner.icm () ] mrf).Runner.result in
  Alcotest.(check bool) "no worse than single icm" true
    (one.Solver.energy <= single.Solver.energy +. 1e-9)

let test_sweep_cap () =
  let mrf = random_mrf (rng 21) 200 4 0.1 in
  let report =
    Runner.run
      ~budget:(Runner.Budget.make ~sweeps:3 ())
      ~stages:[ Runner.trws () ]
      mrf
  in
  Alcotest.check outcome "sweep cap: outcome" Runner.Budget_exhausted
    report.Runner.outcome;
  if report.Runner.result.Solver.iterations > 5 then
    Alcotest.failf "sweep cap of 3 ran %d sweeps"
      report.Runner.result.Solver.iterations;
  check_feasible "sweep cap" mrf report.Runner.result

let test_empty_stages () =
  let mrf = random_mrf (rng 2) 4 2 0.5 in
  match Runner.run ~stages:[] mrf with
  | _ -> Alcotest.fail "accepted an empty cascade"
  | exception Invalid_argument _ -> ()

let test_progress_reported () =
  let mrf = random_mrf (rng 31) 40 3 0.2 in
  let seen = ref [] in
  let report =
    Runner.run
      ~on_progress:(fun p -> seen := p.Runner.stage :: !seen)
      ~stages:[ Runner.icm () ]
      mrf
  in
  Alcotest.(check bool)
    "progress callbacks fired" true
    (List.length !seen > 0 && List.for_all (String.equal "icm") !seen);
  Alcotest.check outcome "converges unbudgeted" Runner.Converged
    report.Runner.outcome

(* ------------------------------------------------- non-finite rendering *)

let dummy energy lower_bound =
  {
    Solver.labeling = [| 0 |];
    energy;
    lower_bound;
    iterations = 1;
    converged = false;
    runtime_s = 0.0;
  }

let test_gap_nonfinite () =
  Alcotest.(check (float 0.0))
    "no bound -> infinite gap" infinity
    (Solver.optimality_gap (dummy 1.0 neg_infinity));
  Alcotest.(check (float 0.0))
    "nan energy -> infinite gap" infinity
    (Solver.optimality_gap (dummy nan 0.5));
  Alcotest.(check (float 0.0))
    "nan bound -> infinite gap" infinity
    (Solver.optimality_gap (dummy 1.0 nan));
  Alcotest.(check (float 1e-9))
    "finite gap untouched" 0.5
    (Solver.optimality_gap (dummy 1.0 0.5))

let test_pp_result_nonfinite () =
  let render r = Format.asprintf "%a" Solver.pp_result r in
  let contains s sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  let no_bound = render (dummy 1.0 neg_infinity) in
  Alcotest.(check bool)
    "neg_infinity bound renders as none" true
    (contains no_bound "bound none");
  Alcotest.(check bool)
    "no raw -inf in output" false
    (contains no_bound "-inf");
  let nan_energy = render (dummy nan neg_infinity) in
  Alcotest.(check bool)
    "nan energy renders as undefined" true
    (contains nan_energy "energy undefined");
  Alcotest.(check bool)
    "no raw nan in output" false
    (contains nan_energy "energy nan")

let () =
  Alcotest.run "runner"
    [
      ( "anytime",
        [
          Alcotest.test_case "zero budget, every stage" `Quick
            test_zero_budget_stages;
          Alcotest.test_case "zero budget, brute force" `Quick
            test_zero_budget_brute;
          Alcotest.test_case "zero budget through Optimize.run" `Quick
            test_optimize_zero_budget;
          Alcotest.test_case "generous budget matches legacy" `Quick
            test_generous_budget_matches_legacy;
          Alcotest.test_case "generous budget certifies (bnb)" `Quick
            test_generous_budget_bnb;
        ] );
      ( "cascade",
        [
          Alcotest.test_case "stall falls back" `Quick
            test_cascade_falls_back_on_stall;
          Alcotest.test_case "exact cascade keeps constraints" `Quick
            test_exact_cascade_constraints;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "icm restarts jobs-invariant" `Quick
            test_icm_restarts_jobs_invariant;
        ] );
      ( "budget",
        [
          Alcotest.test_case "sweep cap" `Quick test_sweep_cap;
          Alcotest.test_case "empty cascade rejected" `Quick
            test_empty_stages;
          Alcotest.test_case "progress callbacks" `Quick
            test_progress_reported;
        ] );
      ( "rendering",
        [
          Alcotest.test_case "optimality gap non-finite" `Quick
            test_gap_nonfinite;
          Alcotest.test_case "pp_result non-finite" `Quick
            test_pp_result_nonfinite;
        ] );
    ]
