(* Tests for netdiv-lint: per-rule fixtures (positive match, negative
   near-miss, suppressed match), suppression parsing, lexer blind spots,
   and the self-check that the repository's own lib/ and bin/ lint clean. *)

module Lint = Netdiv_lint.Lint

let rules_of findings = List.map (fun f -> f.Lint.rule) findings

let lint ?has_mli path src = Lint.lint_source ~path ?has_mli src

let check_rules msg expected findings =
  Alcotest.(check (list string)) msg expected (rules_of findings)

(* ------------------------------------------------- spawn-outside-pool *)

let test_spawn_outside_pool () =
  check_rules "positive: spawn in sim code"
    [ "spawn-outside-pool" ]
    (lint "lib/sim/engine.ml" "let go f = Domain.spawn f\n");
  check_rules "positive: spawn in bin"
    [ "spawn-outside-pool" ]
    (lint "bin/netdiv.ml" "let go f = Domain.spawn f\n");
  check_rules "near-miss: pool.ml is the sanctioned caller" []
    (lint "lib/par/pool.ml" "let go f = Domain.spawn f\n");
  check_rules "near-miss: join is not spawn" []
    (lint "lib/sim/engine.ml" "let wait d = Domain.join d\n");
  check_rules "suppressed" []
    (lint "lib/sim/engine.ml"
       "(* netdiv-lint: allow spawn-outside-pool — fixture justification *)\n\
        let go f = Domain.spawn f\n")

(* --------------------------------------------- toplevel-mutable-state *)

let test_toplevel_mutable_state () =
  check_rules "positive: toplevel Hashtbl"
    [ "toplevel-mutable-state" ]
    (lint "lib/mrf/cache.ml" "let cache = Hashtbl.create 16\n");
  check_rules "positive: toplevel ref"
    [ "toplevel-mutable-state" ]
    (lint "lib/core/state.ml" "let counter = ref 0\n");
  check_rules "positive: toplevel Array.make"
    [ "toplevel-mutable-state" ]
    (lint "lib/sim/buf.ml" "let scratch = Array.make 64 0.0\n");
  check_rules "positive: annotated binding"
    [ "toplevel-mutable-state" ]
    (lint "lib/par/tbl.ml"
       "let table : (int, int) Hashtbl.t = Hashtbl.create 8\n");
  check_rules "positive: inside a module struct"
    [ "toplevel-mutable-state" ]
    (lint "lib/core/m.ml"
       "module Cache = struct\n  let t = Hashtbl.create 8\nend\n");
  check_rules "near-miss: function-local state" []
    (lint "lib/mrf/f.ml"
       "let solve n =\n  let tbl = Hashtbl.create n in\n  Hashtbl.length tbl\n");
  check_rules "near-miss: closure builds per-call state" []
    (lint "lib/mrf/g.ml" "let fresh = fun () -> ref 0\n");
  check_rules "near-miss: function binding with parameters" []
    (lint "lib/sim/h.ml" "let make n = Array.make n 0\n");
  check_rules "near-miss: library outside the parallel-reachable set" []
    (lint "lib/vuln/w.ml" "let cache = Hashtbl.create 16\n");
  check_rules "suppressed" []
    (lint "lib/core/enc.ml"
       "(* netdiv-lint: allow toplevel-mutable-state — fixture guard *)\n\
        let table = Hashtbl.create 8\n")

(* ----------------------------------------------- nondeterminism-source *)

let test_nondeterminism_source () =
  check_rules "positive: gettimeofday in solver"
    [ "nondeterminism-source" ]
    (lint "lib/mrf/s.ml" "let now () = Unix.gettimeofday ()\n");
  check_rules "positive: self_init in sim"
    [ "nondeterminism-source" ]
    (lint "lib/sim/r.ml" "let seed () = Random.self_init ()\n");
  check_rules "positive: Sys.time in par"
    [ "nondeterminism-source" ]
    (lint "lib/par/t.ml" "let t () = Sys.time ()\n");
  check_rules "near-miss: outside solver/sim scope" []
    (lint "lib/vuln/feed.ml" "let now () = Unix.gettimeofday ()\n");
  check_rules "near-miss: seeded Random is fine" []
    (lint "lib/sim/r.ml" "let draw st = Random.State.int st 10\n");
  check_rules "suppressed (line)" []
    (lint "lib/mrf/s.ml"
       "(* netdiv-lint: allow nondeterminism-source — fixture timing *)\n\
        let now () = Unix.gettimeofday ()\n");
  check_rules "suppressed (file-wide)" []
    (lint "lib/mrf/s.ml"
       "(* netdiv-lint: allow-file nondeterminism-source — fixture-wide \
        reason *)\n\
        let a () = Unix.gettimeofday ()\n\n\
        let b () = Sys.time ()\n")

(* ----------------------------------- direct-clock-in-instrumented-code *)

let test_direct_clock () =
  check_rules "positive: gettimeofday in the optimizer pipeline"
    [ "direct-clock-in-instrumented-code" ]
    (lint "lib/core/optimize.ml" "let now () = Unix.gettimeofday ()\n");
  check_rules "positive: gettimeofday in the obs library itself"
    [ "direct-clock-in-instrumented-code" ]
    (lint "lib/obs/obs.ml" "let now () = Unix.gettimeofday ()\n");
  check_rules "positive: Sys.time in bin"
    [ "direct-clock-in-instrumented-code" ]
    (lint "bin/netdiv.ml" "let t () = Sys.time ()\n");
  check_rules "near-miss: solver scope reports nondeterminism-source \
               instead (rules are disjoint)"
    [ "nondeterminism-source" ]
    (lint "lib/mrf/s.ml" "let now () = Unix.gettimeofday ()\n");
  check_rules "near-miss: uninstrumented library" []
    (lint "lib/vuln/feed.ml" "let now () = Unix.gettimeofday ()\n");
  check_rules "suppressed (the clock shim carries this exact comment)" []
    (lint "lib/obs/obs.ml"
       "(* netdiv-lint: allow direct-clock-in-instrumented-code — fixture \
        shim justification *)\n\
        let now () = Unix.gettimeofday ()\n")

(* --------------------------------------------------- list-nth-in-loop *)

let test_list_nth_in_loop () =
  check_rules "positive: nth inside for"
    [ "list-nth-in-loop" ]
    (lint "lib/sim/e.ml"
       "let f xs =\n\
       \  for i = 0 to 3 do\n\
       \    ignore (List.nth xs i)\n\
       \  done\n");
  check_rules "positive: nth_opt inside while"
    [ "list-nth-in-loop" ]
    (lint "lib/graph/g.ml"
       "let f xs =\n\
       \  while !going do\n\
       \    ignore (List.nth_opt xs 0)\n\
       \  done\n");
  check_rules "near-miss: nth outside any loop" []
    (lint "lib/sim/e.ml" "let second xs = List.nth xs 1\n");
  check_rules "near-miss: loop without nth" []
    (lint "lib/sim/e.ml"
       "let f xs =\n\
       \  for _ = 0 to 3 do\n\
       \    ignore (List.length xs)\n\
       \  done\n");
  check_rules "suppressed" []
    (lint "lib/sim/e.ml"
       "let f xs =\n\
       \  for i = 0 to 3 do\n\
       \    (* netdiv-lint: allow list-nth-in-loop — fixture, list of 2 *)\n\
       \    ignore (List.nth xs i)\n\
       \  done\n")

(* ------------------------------------------------------ alloc-in-loop *)

let test_alloc_in_loop () =
  check_rules "positive: Array.make inside for in mrf"
    [ "alloc-in-loop" ]
    (lint "lib/mrf/bp.ml"
       "let f n =\n\
       \  for _ = 0 to n - 1 do\n\
       \    ignore (Array.make 4 0.0)\n\
       \  done\n");
  check_rules "positive: Array.copy inside while in bayes"
    [ "alloc-in-loop" ]
    (lint "lib/bayes/bn.ml"
       "let f xs =\n\
       \  while !going do\n\
       \    ignore (Array.copy xs)\n\
       \  done\n");
  check_rules "positive: Array.init inside for"
    [ "alloc-in-loop" ]
    (lint "lib/mrf/trws.ml"
       "let f n =\n\
       \  for _ = 0 to n - 1 do\n\
       \    ignore (Array.init 4 Fun.id)\n\
       \  done\n");
  check_rules "positive: Float.Array.create inside for (one finding)"
    [ "alloc-in-loop" ]
    (lint "lib/mrf/trws.ml"
       "let f n =\n\
       \  for _ = 0 to n - 1 do\n\
       \    ignore (Float.Array.create 4)\n\
       \  done\n");
  check_rules "positive: Float.Array.make inside while"
    [ "alloc-in-loop" ]
    (lint "lib/mrf/bp.ml"
       "let f n =\n\
       \  while !going do\n\
       \    ignore (Float.Array.make n 0.0)\n\
       \  done\n");
  check_rules "near-miss: allocation before the loop" []
    (lint "lib/mrf/bp.ml"
       "let f n =\n\
       \  let scratch = Array.make 4 0.0 in\n\
       \  for i = 0 to n - 1 do\n\
       \    scratch.(0) <- float_of_int i\n\
       \  done\n");
  check_rules "near-miss: slab allocated before the sweep" []
    (lint "lib/mrf/trws.ml"
       "let f n =\n\
       \  let slab = Float.Array.create n in\n\
       \  for i = 0 to n - 1 do\n\
       \    Float.Array.set slab i 0.0\n\
       \  done\n");
  check_rules "near-miss: hot dirs only (lib/sim is exempt)" []
    (lint "lib/sim/engine.ml"
       "let f n =\n\
       \  for _ = 0 to n - 1 do\n\
       \    ignore (Array.make 4 0.0)\n\
       \  done\n");
  check_rules "near-miss: Array.length allocates nothing" []
    (lint "lib/mrf/bp.ml"
       "let f xs n =\n\
       \  for _ = 0 to n - 1 do\n\
       \    ignore (Array.length xs)\n\
       \  done\n");
  check_rules "suppressed" []
    (lint "lib/mrf/bp.ml"
       "let f n =\n\
       \  for _ = 0 to n - 1 do\n\
       \    (* netdiv-lint: allow alloc-in-loop — fixture, cold setup loop *)\n\
       \    ignore (Array.make 4 0.0)\n\
       \  done\n")

(* Boxed-construction extension: tuples/records packed from Mrf.Compact
   accessor results inside sweep loops re-box what the CSR layout keeps
   flat. *)
let test_compact_boxing_in_loop () =
  check_rules "positive: tuple of accessor results inside for"
    [ "alloc-in-loop" ]
    (lint "lib/mrf/trws.ml"
       "let f t k n =\n\
       \  for _ = 0 to n - 1 do\n\
       \    ignore (Mrf.Compact.neighbor t k, Mrf.Compact.edge t k)\n\
       \  done\n");
  check_rules "positive: record built from accessors inside while"
    [ "alloc-in-loop" ]
    (lint "lib/mrf/bp.ml"
       "let f t k =\n\
       \  while !going do\n\
       \    ignore { nb = Compact.neighbor t k; e = Compact.edge t k }\n\
       \  done\n");
  check_rules "positive: accessor nested in a call inside the tuple"
    [ "alloc-in-loop" ]
    (lint "lib/mrf/trws.ml"
       "let f t k n =\n\
       \  for _ = 0 to n - 1 do\n\
       \    ignore (decode (Mrf.Compact.edge t k), k)\n\
       \  done\n");
  check_rules "near-miss: scalar lets do not box" []
    (lint "lib/mrf/trws.ml"
       "let f t k n =\n\
       \  for _ = 0 to n - 1 do\n\
       \    let j = Mrf.Compact.neighbor t k in\n\
       \    let e = Mrf.Compact.edge t k in\n\
       \    visit j e\n\
       \  done\n");
  check_rules "near-miss: tuple without accessor results" []
    (lint "lib/mrf/trws.ml"
       "let f a b n =\n\
       \  for _ = 0 to n - 1 do\n\
       \    ignore (a, b)\n\
       \  done\n");
  check_rules "near-miss: tuple of accessors outside any loop" []
    (lint "lib/mrf/trws.ml"
       "let f t k = (Mrf.Compact.neighbor t k, Mrf.Compact.edge t k)\n");
  check_rules "near-miss: hot dirs only (lib/graph is exempt)" []
    (lint "lib/graph/cut.ml"
       "let f t k n =\n\
       \  for _ = 0 to n - 1 do\n\
       \    ignore (Mrf.Compact.neighbor t k, Mrf.Compact.edge t k)\n\
       \  done\n");
  check_rules "suppressed" []
    (lint "lib/mrf/trws.ml"
       "let f t k n =\n\
       \  for _ = 0 to n - 1 do\n\
       \    (* netdiv-lint: allow alloc-in-loop — fixture, cold decode loop *)\n\
       \    ignore (Mrf.Compact.neighbor t k, Mrf.Compact.edge t k)\n\
       \  done\n")

(* -------------------------------------------------------- missing-mli *)

let test_missing_mli () =
  check_rules "positive: lib module without mli"
    [ "missing-mli" ]
    (lint ~has_mli:false "lib/sim/new_module.ml" "let x = 1\n");
  check_rules "near-miss: mli present" []
    (lint ~has_mli:true "lib/sim/new_module.ml" "let x = 1\n");
  check_rules "near-miss: binaries need no mli" []
    (lint ~has_mli:false "bin/netdiv.ml" "let x = 1\n");
  check_rules "near-miss: unknown siblings skip the rule" []
    (lint "lib/sim/new_module.ml" "let x = 1\n");
  check_rules "suppressed" []
    (lint ~has_mli:false "lib/sim/new_module.ml"
       "(* netdiv-lint: allow missing-mli — fixture scaffolding module *)\n\
        let x = 1\n")

(* ------------------------------------------------------ printf-in-lib *)

let test_printf_in_lib () =
  check_rules "positive: Printf.printf in lib"
    [ "printf-in-lib" ]
    (lint "lib/metrics/m.ml" "let show x = Printf.printf \"%d\" x\n");
  check_rules "positive: bare print_endline"
    [ "printf-in-lib" ]
    (lint "lib/graph/d.ml" "let log s = print_endline s\n");
  check_rules "positive: Stdlib-qualified printer"
    [ "printf-in-lib" ]
    (lint "lib/graph/d.ml" "let log s = Stdlib.print_endline s\n");
  check_rules "near-miss: bin may print" []
    (lint "bin/netdiv.ml" "let show x = Printf.printf \"%d\" x\n");
  check_rules "near-miss: sprintf allocates, never prints" []
    (lint "lib/metrics/m.ml" "let s x = Printf.sprintf \"%d\" x\n");
  check_rules "near-miss: another module's print_endline" []
    (lint "lib/metrics/m.ml" "let log s = My_sink.print_endline s\n");
  check_rules "suppressed" []
    (lint "lib/metrics/m.ml"
       "(* netdiv-lint: allow printf-in-lib — fixture debug aid *)\n\
        let show x = Printf.printf \"%d\" x\n")

(* ------------------------------------------------ swallowed-exception *)

let test_swallowed_exception () =
  check_rules "positive: try ... with _ -> ()"
    [ "swallowed-exception" ]
    (lint "lib/sim/e.ml" "let f g = try g () with _ -> ()\n");
  check_rules "positive: leading bar form"
    [ "swallowed-exception" ]
    (lint "lib/sim/e.ml" "let f g = try g () with | _ -> ()\n");
  check_rules "positive: catch-all arm after a specific one"
    [ "swallowed-exception" ]
    (lint "lib/sim/e.ml"
       "let f g = try g () with Not_found -> () | _ -> ()\n");
  check_rules "positive: applies outside lib too"
    [ "swallowed-exception" ]
    (lint "bin/netdiv.ml" "let f g = try g () with _ -> ()\n");
  check_rules "near-miss: specific exception discarded deliberately" []
    (lint "lib/sim/e.ml" "let f g = try g () with Not_found -> ()\n");
  check_rules "near-miss: catch-all that re-raises" []
    (lint "lib/sim/e.ml" "let f g = try g () with e -> raise e\n");
  check_rules "near-miss: guarded catch-all" []
    (lint "lib/sim/e.ml"
       "let f g = try g () with _ when quiet -> () | e -> raise e\n");
  check_rules "near-miss: body continues past unit" []
    (lint "lib/sim/e.ml"
       "let f g = try g () with _ -> (); Log.warn \"failed\"\n");
  check_rules "near-miss: match catch-all is not an exception handler" []
    (lint "lib/sim/e.ml" "let f x = match x with Some () -> () | _ -> ()\n");
  check_rules "near-miss: record update with is not a handler" []
    (lint "lib/sim/e.ml" "let f r = { r with x = () }\n");
  check_rules "near-miss: match nested in a try body keeps its arms" []
    (lint "lib/sim/e.ml"
       "let f g x = try (match g x with Some () -> () | _ -> ()) with\n\
       \  | Not_found -> raise Exit\n");
  check_rules "suppressed" []
    (lint "lib/sim/e.ml"
       "(* netdiv-lint: allow swallowed-exception — fixture, best-effort \
        cleanup *)\n\
        let f g = try g () with _ -> ()\n")

(* ---------------------------------------------------- bad-suppression *)

let test_bad_suppression () =
  check_rules "positive: missing reason"
    [ "bad-suppression" ]
    (lint "lib/sim/e.ml" "(* netdiv-lint: allow printf-in-lib *)\nlet x = 1\n");
  check_rules "positive: dash alone is not a reason"
    [ "bad-suppression" ]
    (lint "lib/sim/e.ml"
       "(* netdiv-lint: allow printf-in-lib — *)\nlet x = 1\n");
  check_rules "positive: unknown rule id"
    [ "bad-suppression" ]
    (lint "lib/sim/e.ml"
       "(* netdiv-lint: allow no-such-rule — reason here *)\nlet x = 1\n");
  check_rules "positive: unknown directive verb"
    [ "bad-suppression" ]
    (lint "lib/sim/e.ml"
       "(* netdiv-lint: allowing printf-in-lib — reason *)\nlet x = 1\n");
  check_rules "near-miss: prose mentioning the marker mid-comment" []
    (lint "lib/sim/e.ml"
       "(* suppressions are written as netdiv-lint: allow <rule>. *)\n\
        let x = 1\n");
  check_rules "near-miss: well-formed suppression raises nothing" []
    (lint "lib/sim/e.ml"
       "(* netdiv-lint: allow printf-in-lib — a documented reason *)\n\
        let x = 1\n")

(* ---------------------------------------------------- lexer blind spots *)

let test_lexer_blind_spots () =
  check_rules "patterns inside string literals do not match" []
    (lint "lib/sim/e.ml" "let s = \"Domain.spawn Unix.gettimeofday\"\n");
  check_rules "patterns inside comments do not match" []
    (lint "lib/sim/e.ml" "(* Domain.spawn would be bad here *)\nlet x = 1\n");
  check_rules "patterns inside nested comments do not match" []
    (lint "lib/sim/e.ml"
       "(* outer (* Domain.spawn *) still comment *)\nlet x = 1\n");
  check_rules "quoted strings are opaque" []
    (lint "lib/sim/e.ml" "let s = {|Domain.spawn|}\n");
  (* a string ending in a quote inside a comment must not derail lexing *)
  check_rules "comment containing a string with a closer"
    [ "spawn-outside-pool" ]
    (lint "lib/sim/e.ml"
       "(* tricky \"*)\" still a comment *)\nlet go f = Domain.spawn f\n");
  (* char literals: the quote must not open a string-like region *)
  check_rules "char literals lex cleanly"
    [ "spawn-outside-pool" ]
    (lint "lib/sim/e.ml"
       "let c = 'x'\nlet d = '\\n'\nlet go f = Domain.spawn f\n")

(* ------------------------------------------------- multiple findings *)

let test_ordering_and_pp () =
  let findings =
    lint "lib/sim/e.ml"
      "let go f = Domain.spawn f\n\nlet now () = Unix.gettimeofday ()\n"
  in
  check_rules "two findings, line order"
    [ "spawn-outside-pool"; "nondeterminism-source" ]
    findings;
  match findings with
  | first :: _ ->
      Alcotest.(check string)
        "pp format" "lib/sim/e.ml:1"
        (let s = Format.asprintf "%a" Lint.pp_finding first in
         String.sub s 0 (String.index s ':' + 2))
  | [] -> Alcotest.fail "expected findings"

(* ------------------------------------------------------ symbol tables *)

module Symbols = Netdiv_lint.Symbols

let binding_names (fs : Symbols.file_syms) =
  Array.to_list (Array.map (fun b -> b.Symbols.b_name) fs.Symbols.f_bindings)

let test_symbols_builder () =
  Alcotest.(check string)
    "module name" "Pool"
    (Symbols.module_name_of_path "lib/par/pool.ml");
  (* nested [let module] stays inside the enclosing binding *)
  let fs =
    Symbols.parse_file ~path:"lib/core/a.ml"
      "let f x =\n\
      \  let module M = Map.Make (Int) in\n\
      \  M.cardinal M.empty + x\n\n\
       let g y = y\n"
  in
  Alcotest.(check (list string))
    "let module does not split the binding" [ "f"; "g" ] (binding_names fs);
  (* functor application is recorded as a module alias *)
  let fs =
    Symbols.parse_file ~path:"lib/core/b.ml"
      "module IntMap = Map.Make (Int)\n\nlet size m = IntMap.cardinal m\n"
  in
  Alcotest.(check bool)
    "functor application aliased" true
    (List.mem_assoc "IntMap" fs.Symbols.f_aliases);
  (* operator definitions keep their concatenated symbol as the name *)
  let fs =
    Symbols.parse_file ~path:"lib/core/c.ml"
      "let ( .%() ) t i = Array.unsafe_get t i\n\n\
       let ( let* ) x f = f x\n"
  in
  Alcotest.(check (list string))
    "operator names" [ ".%()"; "let*" ] (binding_names fs);
  Alcotest.(check bool)
    "operator bindings are functions" true
    (Array.for_all (fun b -> b.Symbols.b_func) fs.Symbols.f_bindings);
  (* [let*] used as a binder introduces a local, not a reference *)
  let fs =
    Symbols.parse_file ~path:"lib/core/d.ml"
      "let run m =\n  let* x = m in\n  x + 1\n"
  in
  Alcotest.(check (list string)) "binder fixture parses" [ "run" ]
    (binding_names fs);
  Array.iter
    (fun refs ->
      Array.iter
        (fun r ->
          Alcotest.(check bool)
            "x is a local, not a reference" false
            (r.Symbols.r_name = "x"))
        refs)
    fs.Symbols.f_refs;
  (* value vs function classification *)
  let fs =
    Symbols.parse_file ~path:"lib/core/e.ml"
      "let table = Hashtbl.create 8\n\nlet touch k = Hashtbl.replace table k ()\n"
  in
  (match Array.to_list fs.Symbols.f_bindings with
  | [ v; f ] ->
      Alcotest.(check bool) "table is a value" false v.Symbols.b_func;
      Alcotest.(check bool) "touch is a function" true f.Symbols.b_func
  | _ -> Alcotest.fail "expected two bindings")

let test_symbols_shadowing () =
  let fs =
    Symbols.parse_file ~path:"lib/core/s.ml"
      "let scale x = x * 2\n\n\
       let use1 y = scale y\n\n\
       let scale x = x * 3\n\n\
       let use2 y = scale y\n"
  in
  let repo = Symbols.build [ fs ] in
  let ref_in name =
    let bi = ref (-1) in
    Array.iteri
      (fun i b -> if b.Symbols.b_name = name then bi := i)
      fs.Symbols.f_bindings;
    Array.to_list fs.Symbols.f_refs.(!bi)
    |> List.find (fun r -> r.Symbols.r_name = "scale")
  in
  let line_of ids =
    match ids with
    | [ id ] -> repo.Symbols.bindings.(id).Symbols.b_line
    | _ -> -1
  in
  Alcotest.(check int)
    "use1 sees the first scale" 1
    (line_of (Symbols.resolve repo fs (ref_in "use1")));
  Alcotest.(check int)
    "use2 sees the shadowing scale" 5
    (line_of (Symbols.resolve repo fs (ref_in "use2")))

(* ------------------------------------------------ effect fixpoint rules *)

(* Convenience driver over in-memory sources; every fixture supplies an
   empty .mli so missing-mli stays out of the expected lists. *)
let analyze ?refs files =
  Lint.analyze_sources ?refs
    (List.map (fun (p, s) -> (p, s, Some "")) files)

let rules_and_lines report =
  List.map (fun f -> (f.Lint.rule, f.Lint.line)) report.Lint.r_findings

let test_nondet_taint_two_deep () =
  (* the acceptance fixture: a helper wrapping Unix.gettimeofday, reached
     two calls deep from sim code — invisible to the per-line rules *)
  let util = "let now () = Unix.gettimeofday ()\n" in
  let mid = "let stamp () = Util.now () +. 1.0\n" in
  let engine = "let run () = int_of_float (Mid.stamp ())\n" in
  Alcotest.(check (list string))
    "call-site-only lint misses the wrapped clock" []
    (rules_of (lint "lib/sim/engine2.ml" ~has_mli:true engine));
  let report =
    analyze
      [ ("lib/core/util.ml", util); ("lib/core/mid.ml", mid);
        ("lib/sim/engine2.ml", engine) ]
  in
  Alcotest.(check (list (pair string int)))
    "direct source is a surface finding; both wrappers are tainted"
    [
      ("direct-clock-in-instrumented-code", 1);
      ("nondet-taint", 1);
      ("nondet-taint", 1);
    ]
    (List.sort compare (rules_and_lines report));
  (* the witness chain runs all the way to the source token *)
  match Lint.explain report "Engine2.run" with
  | [ f ] ->
      Alcotest.(check (list string))
        "full chain"
        [ "Engine2.run"; "Mid.stamp"; "Util.now"; "Unix.gettimeofday" ]
        (List.map (fun (s : Lint.chain_step) -> s.Lint.c_name) f.Lint.chain);
      Alcotest.(check bool)
        "suffix match finds the same finding" true
        (Lint.explain report "run" <> [])
  | fs -> Alcotest.failf "expected one explained finding, got %d" (List.length fs)

let test_taint_barrier () =
  (* a reasoned suppression at the source certifies the whole chain *)
  let util =
    "(* netdiv-lint: allow direct-clock-in-instrumented-code — sanctioned \
     shim, fixture *)\n\
     let now () = Unix.gettimeofday ()\n"
  in
  let report =
    analyze
      [ ("lib/core/util.ml", util);
        ("lib/sim/engine2.ml", "let run () = int_of_float (Util.now ())\n") ]
  in
  Alcotest.(check (list (pair string int)))
    "barrier stops the taint" [] (rules_and_lines report)

let test_fixpoint_mutual_recursion () =
  (* mutually recursive bindings must reach a fixpoint, with the Direct
     witness staying on the binding that owns the source token *)
  let src =
    "let rec ping n = if n = 0 then 0 else pong (n - 1)\n\n\
     and pong n = ping (int_of_float (Unix.gettimeofday ()) + n)\n"
  in
  let report = analyze [ ("lib/sim/rec.ml", src) ] in
  Alcotest.(check (list (pair string int)))
    "pong is a direct surface finding, ping is tainted via pong"
    [ ("nondet-taint", 1); ("nondeterminism-source", 3) ]
    (List.sort compare (rules_and_lines report))

let test_impure_in_parallel_region () =
  let src =
    "let total = ref 0\n\n\
     let bump () = total := !total + 1\n\n\
     let run () = Netdiv_par.Pool.map_range ~lo:0 ~hi:10 (fun i -> bump (); i)\n"
  in
  let report = analyze [ ("lib/sim/paruse.ml", src) ] in
  Alcotest.(check (list (pair string int)))
    "callee mutating a toplevel ref is flagged at the region"
    [ ("impure-in-parallel-region", 5); ("toplevel-mutable-state", 1) ]
    (List.sort compare (rules_and_lines report));
  (* inline closure mutating toplevel state directly *)
  let src =
    "let total = ref 0\n\n\
     let run () = Netdiv_par.Pool.parallel_for 0 10 (fun i -> total := i)\n"
  in
  let report = analyze [ ("lib/sim/parinline.ml", src) ] in
  Alcotest.(check (list (pair string int)))
    "inline closure mutation is flagged"
    [ ("impure-in-parallel-region", 3); ("toplevel-mutable-state", 1) ]
    (List.sort compare (rules_and_lines report));
  (* workers writing their own slice of a local buffer are clean *)
  let src =
    "let run n =\n\
    \  let out = Array.make n 0 in\n\
    \  Netdiv_par.Pool.parallel_for 0 n (fun i -> out.(i) <- i * i);\n\
    \  out\n"
  in
  let report = analyze [ ("lib/sim/parok.ml", src) ] in
  Alcotest.(check (list (pair string int)))
    "chunk-local writes are clean" [] (rules_and_lines report)

let test_unused_export () =
  let api_mli = "val used : int -> int\n\nval unused : int -> int\n" in
  let api = "let used x = x + 1\n\nlet unused x = x - 1\n" in
  let caller = "let call x = Api.used x\n" in
  let report =
    Lint.analyze_sources
      [
        ("lib/core/api.ml", api, Some api_mli);
        ("lib/core/caller.ml", caller, Some "");
      ]
  in
  Alcotest.(check (list (pair string string)))
    "only the unreferenced export is flagged"
    [ ("unused-export", "lib/core/api.mli") ]
    (List.map (fun f -> (f.Lint.rule, f.Lint.file)) report.Lint.r_findings);
  (* a use from a reference root (test/bench/...) counts *)
  let report =
    Lint.analyze_sources
      ~refs:[ ("test/t.ml", "let () = ignore (Api.unused 1)\n") ]
      [
        ("lib/core/api.ml", api, Some api_mli);
        ("lib/core/caller.ml", caller, Some "");
      ]
  in
  Alcotest.(check int)
    "test usage silences the finding" 0
    (List.length report.Lint.r_findings);
  (* an .mli suppression with a reason is honored *)
  let api_mli_sup =
    "val used : int -> int\n\n\
     (* netdiv-lint: allow unused-export — public API, fixture *)\n\
     val unused : int -> int\n"
  in
  let report =
    Lint.analyze_sources
      [
        ("lib/core/api.ml", api, Some api_mli_sup);
        ("lib/core/caller.ml", caller, Some "");
      ]
  in
  Alcotest.(check int)
    "suppressed in the interface" 0
    (List.length report.Lint.r_findings)

let test_float_equality_in_kernel () =
  check_rules "positive: = against a float literal"
    [ "float-equality-in-kernel" ]
    (lint "lib/mrf/k.ml" ~has_mli:true "let check x = x = 0.0\n");
  check_rules "positive: <> against infinity"
    [ "float-equality-in-kernel" ]
    (lint "lib/mrf/k.ml" ~has_mli:true "let bounded b = b <> infinity\n");
  check_rules "positive: negative literal"
    [ "float-equality-in-kernel" ]
    (lint "lib/mrf/k.ml" ~has_mli:true "let is_neg x = x = -1.0\n");
  check_rules "near-miss: binder and optional default are structural" []
    (lint "lib/mrf/k.ml" ~has_mli:true
       "let eps = 1e-9\n\nlet near ?(tol = 1e-6) x = abs_float x < tol\n");
  check_rules "near-miss: record fields are structural" []
    (lint "lib/mrf/k.ml" ~has_mli:true
       "let defaults = { damping = 0.5; tol = 1e-6 }\n");
  check_rules "near-miss: integer equality" []
    (lint "lib/mrf/k.ml" ~has_mli:true "let z x = x = 0\n");
  check_rules "near-miss: <= is ordering, not equality" []
    (lint "lib/mrf/k.ml" ~has_mli:true "let small x = x <= 0.5\n");
  check_rules "near-miss: outside lib/mrf" []
    (lint "lib/sim/k.ml" ~has_mli:true "let check x = x = 0.0\n");
  check_rules "suppressed with a reason" []
    (lint "lib/mrf/k.ml" ~has_mli:true
       "(* netdiv-lint: allow float-equality-in-kernel — sentinel compare, \
        fixture *)\n\
        let check x = x = 0.0\n")

(* ------------------------------------------------- baselines and JSON *)

let test_baseline () =
  (match Lint.baseline_of_string "{\"findings\": [{\"file\": \"a.ml\", \
                                  \"rule\": \"nondet-taint\"}]}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "entry without a reason must be rejected");
  let entries =
    match
      Lint.baseline_of_string
        "{\"findings\": [{\"file\": \"lib/core/api.mli\", \"rule\": \
         \"unused-export\", \"symbol\": \"Api.unused\", \"reason\": \
         \"public API, fixture\"}, {\"file\": \"gone.ml\", \"rule\": \
         \"nondet-taint\", \"reason\": \"stale, fixture\"}]}"
    with
    | Ok e -> e
    | Error msg -> Alcotest.failf "baseline parse: %s" msg
  in
  let report =
    Lint.analyze_sources
      [
        ( "lib/core/api.ml",
          "let used x = x + 1\n\nlet unused x = x - 1\n",
          Some "val used : int -> int\n\nval unused : int -> int\n" );
        ("lib/core/caller.ml", "let call x = Api.used x\n", Some "");
      ]
  in
  let fresh, baselined, stale =
    Lint.apply_baseline entries report.Lint.r_findings
  in
  Alcotest.(check int) "finding absorbed" 0 (List.length fresh);
  Alcotest.(check int) "one baselined" 1 baselined;
  Alcotest.(check int) "one stale entry" 1 (List.length stale)

let test_json_roundtrip () =
  let report =
    analyze [ ("lib/sim/e.ml", "let go f = Domain.spawn f\n") ]
  in
  let text =
    Lint.report_to_json ~fresh:report.Lint.r_findings ~baselined:0 ~stale:[]
      report
  in
  let module J = Netdiv_vuln.Json in
  match J.parse text with
  | Error msg -> Alcotest.failf "report JSON does not parse: %s" msg
  | Ok j ->
      let findings =
        Option.get (Option.bind (J.member "findings" j) J.to_list)
      in
      Alcotest.(check int) "one finding" 1 (List.length findings);
      let rule =
        Option.get
          (Option.bind (J.member "rule" (List.hd findings)) J.to_str)
      in
      Alcotest.(check string) "rule field" "spawn-outside-pool" rule

(* --------------------------------------------------------- self-check *)

let test_repo_lints_clean () =
  (* under `dune runtest` the cwd is _build/default/test and the sources
     sit one level up (declared as deps); under `dune exec` from the repo
     root they sit right here.  The interprocedural analysis runs with
     the checked-in baseline; a fresh finding means a violation crept in
     without a written suppression or baseline reason. *)
  let at_root = Sys.file_exists "lib" && Sys.is_directory "lib" in
  let prefix p = if at_root then p else "../" ^ p in
  let roots = [ prefix "lib"; prefix "bin" ] in
  let report =
    Lint.analyze_paths ~ref_paths:(Lint.default_ref_paths roots) roots
  in
  let entries =
    let file = prefix "lint_baseline.json" in
    if not (Sys.file_exists file) then []
    else
      let ic = open_in_bin file in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      match Lint.baseline_of_string text with
      | Ok e -> e
      | Error msg -> Alcotest.failf "checked-in baseline invalid: %s" msg
  in
  let strip_prefix s =
    if at_root then s
    else if String.length s > 3 && String.sub s 0 3 = "../" then
      String.sub s 3 (String.length s - 3)
    else s
  in
  let findings =
    List.map
      (fun f -> { f with Lint.file = strip_prefix f.Lint.file })
      report.Lint.r_findings
  in
  let fresh, _, stale = Lint.apply_baseline entries findings in
  if fresh <> [] then
    Alcotest.failf "repository must lint clean, got:@\n%s"
      (String.concat "\n"
         (List.map (Format.asprintf "%a" Lint.pp_finding) fresh));
  if stale <> [] then
    Alcotest.failf "stale baseline entries (fixed findings):@\n%s"
      (String.concat "\n" stale)

let test_rule_list () =
  let ids = List.map fst Lint.rules in
  List.iter
    (fun required ->
      Alcotest.(check bool)
        (Printf.sprintf "rule %s shipped" required)
        true (List.mem required ids))
    [
      "spawn-outside-pool"; "toplevel-mutable-state"; "nondeterminism-source";
      "direct-clock-in-instrumented-code"; "list-nth-in-loop";
      "alloc-in-loop"; "missing-mli"; "printf-in-lib"; "swallowed-exception";
      "bad-suppression"; "float-equality-in-kernel"; "nondet-taint";
      "impure-in-parallel-region"; "unused-export";
    ]

let () =
  Alcotest.run "netdiv_lint"
    [
      ( "rules",
        [
          Alcotest.test_case "spawn-outside-pool" `Quick
            test_spawn_outside_pool;
          Alcotest.test_case "toplevel-mutable-state" `Quick
            test_toplevel_mutable_state;
          Alcotest.test_case "nondeterminism-source" `Quick
            test_nondeterminism_source;
          Alcotest.test_case "direct-clock-in-instrumented-code" `Quick
            test_direct_clock;
          Alcotest.test_case "list-nth-in-loop" `Quick test_list_nth_in_loop;
          Alcotest.test_case "alloc-in-loop" `Quick test_alloc_in_loop;
          Alcotest.test_case "alloc-in-loop (Compact boxing)" `Quick
            test_compact_boxing_in_loop;
          Alcotest.test_case "missing-mli" `Quick test_missing_mli;
          Alcotest.test_case "printf-in-lib" `Quick test_printf_in_lib;
          Alcotest.test_case "swallowed-exception" `Quick
            test_swallowed_exception;
          Alcotest.test_case "bad-suppression" `Quick test_bad_suppression;
          Alcotest.test_case "rule list" `Quick test_rule_list;
        ] );
      ( "engine",
        [
          Alcotest.test_case "lexer blind spots" `Quick test_lexer_blind_spots;
          Alcotest.test_case "ordering and pp" `Quick test_ordering_and_pp;
        ] );
      ( "symbols",
        [
          Alcotest.test_case "builder on tricky syntax" `Quick
            test_symbols_builder;
          Alcotest.test_case "shadow-aware resolution" `Quick
            test_symbols_shadowing;
        ] );
      ( "interprocedural",
        [
          Alcotest.test_case "nondet-taint two calls deep" `Quick
            test_nondet_taint_two_deep;
          Alcotest.test_case "suppression as barrier" `Quick
            test_taint_barrier;
          Alcotest.test_case "fixpoint on mutual recursion" `Quick
            test_fixpoint_mutual_recursion;
          Alcotest.test_case "impure-in-parallel-region" `Quick
            test_impure_in_parallel_region;
          Alcotest.test_case "unused-export" `Quick test_unused_export;
          Alcotest.test_case "float-equality-in-kernel" `Quick
            test_float_equality_in_kernel;
          Alcotest.test_case "baseline diffing" `Quick test_baseline;
          Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
        ] );
      ( "self-check",
        [ Alcotest.test_case "lib+bin lint clean" `Quick test_repo_lints_clean ] );
    ]
