(* Tests for netdiv-lint: per-rule fixtures (positive match, negative
   near-miss, suppressed match), suppression parsing, lexer blind spots,
   and the self-check that the repository's own lib/ and bin/ lint clean. *)

module Lint = Netdiv_lint.Lint

let rules_of findings = List.map (fun f -> f.Lint.rule) findings

let lint ?has_mli path src = Lint.lint_source ~path ?has_mli src

let check_rules msg expected findings =
  Alcotest.(check (list string)) msg expected (rules_of findings)

(* ------------------------------------------------- spawn-outside-pool *)

let test_spawn_outside_pool () =
  check_rules "positive: spawn in sim code"
    [ "spawn-outside-pool" ]
    (lint "lib/sim/engine.ml" "let go f = Domain.spawn f\n");
  check_rules "positive: spawn in bin"
    [ "spawn-outside-pool" ]
    (lint "bin/netdiv.ml" "let go f = Domain.spawn f\n");
  check_rules "near-miss: pool.ml is the sanctioned caller" []
    (lint "lib/par/pool.ml" "let go f = Domain.spawn f\n");
  check_rules "near-miss: join is not spawn" []
    (lint "lib/sim/engine.ml" "let wait d = Domain.join d\n");
  check_rules "suppressed" []
    (lint "lib/sim/engine.ml"
       "(* netdiv-lint: allow spawn-outside-pool — fixture justification *)\n\
        let go f = Domain.spawn f\n")

(* --------------------------------------------- toplevel-mutable-state *)

let test_toplevel_mutable_state () =
  check_rules "positive: toplevel Hashtbl"
    [ "toplevel-mutable-state" ]
    (lint "lib/mrf/cache.ml" "let cache = Hashtbl.create 16\n");
  check_rules "positive: toplevel ref"
    [ "toplevel-mutable-state" ]
    (lint "lib/core/state.ml" "let counter = ref 0\n");
  check_rules "positive: toplevel Array.make"
    [ "toplevel-mutable-state" ]
    (lint "lib/sim/buf.ml" "let scratch = Array.make 64 0.0\n");
  check_rules "positive: annotated binding"
    [ "toplevel-mutable-state" ]
    (lint "lib/par/tbl.ml"
       "let table : (int, int) Hashtbl.t = Hashtbl.create 8\n");
  check_rules "positive: inside a module struct"
    [ "toplevel-mutable-state" ]
    (lint "lib/core/m.ml"
       "module Cache = struct\n  let t = Hashtbl.create 8\nend\n");
  check_rules "near-miss: function-local state" []
    (lint "lib/mrf/f.ml"
       "let solve n =\n  let tbl = Hashtbl.create n in\n  Hashtbl.length tbl\n");
  check_rules "near-miss: closure builds per-call state" []
    (lint "lib/mrf/g.ml" "let fresh = fun () -> ref 0\n");
  check_rules "near-miss: function binding with parameters" []
    (lint "lib/sim/h.ml" "let make n = Array.make n 0\n");
  check_rules "near-miss: library outside the parallel-reachable set" []
    (lint "lib/vuln/w.ml" "let cache = Hashtbl.create 16\n");
  check_rules "suppressed" []
    (lint "lib/core/enc.ml"
       "(* netdiv-lint: allow toplevel-mutable-state — fixture guard *)\n\
        let table = Hashtbl.create 8\n")

(* ----------------------------------------------- nondeterminism-source *)

let test_nondeterminism_source () =
  check_rules "positive: gettimeofday in solver"
    [ "nondeterminism-source" ]
    (lint "lib/mrf/s.ml" "let now () = Unix.gettimeofday ()\n");
  check_rules "positive: self_init in sim"
    [ "nondeterminism-source" ]
    (lint "lib/sim/r.ml" "let seed () = Random.self_init ()\n");
  check_rules "positive: Sys.time in par"
    [ "nondeterminism-source" ]
    (lint "lib/par/t.ml" "let t () = Sys.time ()\n");
  check_rules "near-miss: outside solver/sim scope" []
    (lint "lib/vuln/feed.ml" "let now () = Unix.gettimeofday ()\n");
  check_rules "near-miss: seeded Random is fine" []
    (lint "lib/sim/r.ml" "let draw st = Random.State.int st 10\n");
  check_rules "suppressed (line)" []
    (lint "lib/mrf/s.ml"
       "(* netdiv-lint: allow nondeterminism-source — fixture timing *)\n\
        let now () = Unix.gettimeofday ()\n");
  check_rules "suppressed (file-wide)" []
    (lint "lib/mrf/s.ml"
       "(* netdiv-lint: allow-file nondeterminism-source — fixture-wide \
        reason *)\n\
        let a () = Unix.gettimeofday ()\n\n\
        let b () = Sys.time ()\n")

(* ----------------------------------- direct-clock-in-instrumented-code *)

let test_direct_clock () =
  check_rules "positive: gettimeofday in the optimizer pipeline"
    [ "direct-clock-in-instrumented-code" ]
    (lint "lib/core/optimize.ml" "let now () = Unix.gettimeofday ()\n");
  check_rules "positive: gettimeofday in the obs library itself"
    [ "direct-clock-in-instrumented-code" ]
    (lint "lib/obs/obs.ml" "let now () = Unix.gettimeofday ()\n");
  check_rules "positive: Sys.time in bin"
    [ "direct-clock-in-instrumented-code" ]
    (lint "bin/netdiv.ml" "let t () = Sys.time ()\n");
  check_rules "near-miss: solver scope reports nondeterminism-source \
               instead (rules are disjoint)"
    [ "nondeterminism-source" ]
    (lint "lib/mrf/s.ml" "let now () = Unix.gettimeofday ()\n");
  check_rules "near-miss: uninstrumented library" []
    (lint "lib/vuln/feed.ml" "let now () = Unix.gettimeofday ()\n");
  check_rules "suppressed (the clock shim carries this exact comment)" []
    (lint "lib/obs/obs.ml"
       "(* netdiv-lint: allow direct-clock-in-instrumented-code — fixture \
        shim justification *)\n\
        let now () = Unix.gettimeofday ()\n")

(* --------------------------------------------------- list-nth-in-loop *)

let test_list_nth_in_loop () =
  check_rules "positive: nth inside for"
    [ "list-nth-in-loop" ]
    (lint "lib/sim/e.ml"
       "let f xs =\n\
       \  for i = 0 to 3 do\n\
       \    ignore (List.nth xs i)\n\
       \  done\n");
  check_rules "positive: nth_opt inside while"
    [ "list-nth-in-loop" ]
    (lint "lib/graph/g.ml"
       "let f xs =\n\
       \  while !going do\n\
       \    ignore (List.nth_opt xs 0)\n\
       \  done\n");
  check_rules "near-miss: nth outside any loop" []
    (lint "lib/sim/e.ml" "let second xs = List.nth xs 1\n");
  check_rules "near-miss: loop without nth" []
    (lint "lib/sim/e.ml"
       "let f xs =\n\
       \  for _ = 0 to 3 do\n\
       \    ignore (List.length xs)\n\
       \  done\n");
  check_rules "suppressed" []
    (lint "lib/sim/e.ml"
       "let f xs =\n\
       \  for i = 0 to 3 do\n\
       \    (* netdiv-lint: allow list-nth-in-loop — fixture, list of 2 *)\n\
       \    ignore (List.nth xs i)\n\
       \  done\n")

(* ------------------------------------------------------ alloc-in-loop *)

let test_alloc_in_loop () =
  check_rules "positive: Array.make inside for in mrf"
    [ "alloc-in-loop" ]
    (lint "lib/mrf/bp.ml"
       "let f n =\n\
       \  for _ = 0 to n - 1 do\n\
       \    ignore (Array.make 4 0.0)\n\
       \  done\n");
  check_rules "positive: Array.copy inside while in bayes"
    [ "alloc-in-loop" ]
    (lint "lib/bayes/bn.ml"
       "let f xs =\n\
       \  while !going do\n\
       \    ignore (Array.copy xs)\n\
       \  done\n");
  check_rules "positive: Array.init inside for"
    [ "alloc-in-loop" ]
    (lint "lib/mrf/trws.ml"
       "let f n =\n\
       \  for _ = 0 to n - 1 do\n\
       \    ignore (Array.init 4 Fun.id)\n\
       \  done\n");
  check_rules "positive: Float.Array.create inside for (one finding)"
    [ "alloc-in-loop" ]
    (lint "lib/mrf/trws.ml"
       "let f n =\n\
       \  for _ = 0 to n - 1 do\n\
       \    ignore (Float.Array.create 4)\n\
       \  done\n");
  check_rules "positive: Float.Array.make inside while"
    [ "alloc-in-loop" ]
    (lint "lib/mrf/bp.ml"
       "let f n =\n\
       \  while !going do\n\
       \    ignore (Float.Array.make n 0.0)\n\
       \  done\n");
  check_rules "near-miss: allocation before the loop" []
    (lint "lib/mrf/bp.ml"
       "let f n =\n\
       \  let scratch = Array.make 4 0.0 in\n\
       \  for i = 0 to n - 1 do\n\
       \    scratch.(0) <- float_of_int i\n\
       \  done\n");
  check_rules "near-miss: slab allocated before the sweep" []
    (lint "lib/mrf/trws.ml"
       "let f n =\n\
       \  let slab = Float.Array.create n in\n\
       \  for i = 0 to n - 1 do\n\
       \    Float.Array.set slab i 0.0\n\
       \  done\n");
  check_rules "near-miss: hot dirs only (lib/sim is exempt)" []
    (lint "lib/sim/engine.ml"
       "let f n =\n\
       \  for _ = 0 to n - 1 do\n\
       \    ignore (Array.make 4 0.0)\n\
       \  done\n");
  check_rules "near-miss: Array.length allocates nothing" []
    (lint "lib/mrf/bp.ml"
       "let f xs n =\n\
       \  for _ = 0 to n - 1 do\n\
       \    ignore (Array.length xs)\n\
       \  done\n");
  check_rules "suppressed" []
    (lint "lib/mrf/bp.ml"
       "let f n =\n\
       \  for _ = 0 to n - 1 do\n\
       \    (* netdiv-lint: allow alloc-in-loop — fixture, cold setup loop *)\n\
       \    ignore (Array.make 4 0.0)\n\
       \  done\n")

(* -------------------------------------------------------- missing-mli *)

let test_missing_mli () =
  check_rules "positive: lib module without mli"
    [ "missing-mli" ]
    (lint ~has_mli:false "lib/sim/new_module.ml" "let x = 1\n");
  check_rules "near-miss: mli present" []
    (lint ~has_mli:true "lib/sim/new_module.ml" "let x = 1\n");
  check_rules "near-miss: binaries need no mli" []
    (lint ~has_mli:false "bin/netdiv.ml" "let x = 1\n");
  check_rules "near-miss: unknown siblings skip the rule" []
    (lint "lib/sim/new_module.ml" "let x = 1\n");
  check_rules "suppressed" []
    (lint ~has_mli:false "lib/sim/new_module.ml"
       "(* netdiv-lint: allow missing-mli — fixture scaffolding module *)\n\
        let x = 1\n")

(* ------------------------------------------------------ printf-in-lib *)

let test_printf_in_lib () =
  check_rules "positive: Printf.printf in lib"
    [ "printf-in-lib" ]
    (lint "lib/metrics/m.ml" "let show x = Printf.printf \"%d\" x\n");
  check_rules "positive: bare print_endline"
    [ "printf-in-lib" ]
    (lint "lib/graph/d.ml" "let log s = print_endline s\n");
  check_rules "positive: Stdlib-qualified printer"
    [ "printf-in-lib" ]
    (lint "lib/graph/d.ml" "let log s = Stdlib.print_endline s\n");
  check_rules "near-miss: bin may print" []
    (lint "bin/netdiv.ml" "let show x = Printf.printf \"%d\" x\n");
  check_rules "near-miss: sprintf allocates, never prints" []
    (lint "lib/metrics/m.ml" "let s x = Printf.sprintf \"%d\" x\n");
  check_rules "near-miss: another module's print_endline" []
    (lint "lib/metrics/m.ml" "let log s = My_sink.print_endline s\n");
  check_rules "suppressed" []
    (lint "lib/metrics/m.ml"
       "(* netdiv-lint: allow printf-in-lib — fixture debug aid *)\n\
        let show x = Printf.printf \"%d\" x\n")

(* ------------------------------------------------ swallowed-exception *)

let test_swallowed_exception () =
  check_rules "positive: try ... with _ -> ()"
    [ "swallowed-exception" ]
    (lint "lib/sim/e.ml" "let f g = try g () with _ -> ()\n");
  check_rules "positive: leading bar form"
    [ "swallowed-exception" ]
    (lint "lib/sim/e.ml" "let f g = try g () with | _ -> ()\n");
  check_rules "positive: catch-all arm after a specific one"
    [ "swallowed-exception" ]
    (lint "lib/sim/e.ml"
       "let f g = try g () with Not_found -> () | _ -> ()\n");
  check_rules "positive: applies outside lib too"
    [ "swallowed-exception" ]
    (lint "bin/netdiv.ml" "let f g = try g () with _ -> ()\n");
  check_rules "near-miss: specific exception discarded deliberately" []
    (lint "lib/sim/e.ml" "let f g = try g () with Not_found -> ()\n");
  check_rules "near-miss: catch-all that re-raises" []
    (lint "lib/sim/e.ml" "let f g = try g () with e -> raise e\n");
  check_rules "near-miss: guarded catch-all" []
    (lint "lib/sim/e.ml"
       "let f g = try g () with _ when quiet -> () | e -> raise e\n");
  check_rules "near-miss: body continues past unit" []
    (lint "lib/sim/e.ml"
       "let f g = try g () with _ -> (); Log.warn \"failed\"\n");
  check_rules "near-miss: match catch-all is not an exception handler" []
    (lint "lib/sim/e.ml" "let f x = match x with Some () -> () | _ -> ()\n");
  check_rules "near-miss: record update with is not a handler" []
    (lint "lib/sim/e.ml" "let f r = { r with x = () }\n");
  check_rules "near-miss: match nested in a try body keeps its arms" []
    (lint "lib/sim/e.ml"
       "let f g x = try (match g x with Some () -> () | _ -> ()) with\n\
       \  | Not_found -> raise Exit\n");
  check_rules "suppressed" []
    (lint "lib/sim/e.ml"
       "(* netdiv-lint: allow swallowed-exception — fixture, best-effort \
        cleanup *)\n\
        let f g = try g () with _ -> ()\n")

(* ---------------------------------------------------- bad-suppression *)

let test_bad_suppression () =
  check_rules "positive: missing reason"
    [ "bad-suppression" ]
    (lint "lib/sim/e.ml" "(* netdiv-lint: allow printf-in-lib *)\nlet x = 1\n");
  check_rules "positive: dash alone is not a reason"
    [ "bad-suppression" ]
    (lint "lib/sim/e.ml"
       "(* netdiv-lint: allow printf-in-lib — *)\nlet x = 1\n");
  check_rules "positive: unknown rule id"
    [ "bad-suppression" ]
    (lint "lib/sim/e.ml"
       "(* netdiv-lint: allow no-such-rule — reason here *)\nlet x = 1\n");
  check_rules "positive: unknown directive verb"
    [ "bad-suppression" ]
    (lint "lib/sim/e.ml"
       "(* netdiv-lint: allowing printf-in-lib — reason *)\nlet x = 1\n");
  check_rules "near-miss: prose mentioning the marker mid-comment" []
    (lint "lib/sim/e.ml"
       "(* suppressions are written as netdiv-lint: allow <rule>. *)\n\
        let x = 1\n");
  check_rules "near-miss: well-formed suppression raises nothing" []
    (lint "lib/sim/e.ml"
       "(* netdiv-lint: allow printf-in-lib — a documented reason *)\n\
        let x = 1\n")

(* ---------------------------------------------------- lexer blind spots *)

let test_lexer_blind_spots () =
  check_rules "patterns inside string literals do not match" []
    (lint "lib/sim/e.ml" "let s = \"Domain.spawn Unix.gettimeofday\"\n");
  check_rules "patterns inside comments do not match" []
    (lint "lib/sim/e.ml" "(* Domain.spawn would be bad here *)\nlet x = 1\n");
  check_rules "patterns inside nested comments do not match" []
    (lint "lib/sim/e.ml"
       "(* outer (* Domain.spawn *) still comment *)\nlet x = 1\n");
  check_rules "quoted strings are opaque" []
    (lint "lib/sim/e.ml" "let s = {|Domain.spawn|}\n");
  (* a string ending in a quote inside a comment must not derail lexing *)
  check_rules "comment containing a string with a closer"
    [ "spawn-outside-pool" ]
    (lint "lib/sim/e.ml"
       "(* tricky \"*)\" still a comment *)\nlet go f = Domain.spawn f\n");
  (* char literals: the quote must not open a string-like region *)
  check_rules "char literals lex cleanly"
    [ "spawn-outside-pool" ]
    (lint "lib/sim/e.ml"
       "let c = 'x'\nlet d = '\\n'\nlet go f = Domain.spawn f\n")

(* ------------------------------------------------- multiple findings *)

let test_ordering_and_pp () =
  let findings =
    lint "lib/sim/e.ml"
      "let go f = Domain.spawn f\n\nlet now () = Unix.gettimeofday ()\n"
  in
  check_rules "two findings, line order"
    [ "spawn-outside-pool"; "nondeterminism-source" ]
    findings;
  match findings with
  | first :: _ ->
      Alcotest.(check string)
        "pp format" "lib/sim/e.ml:1"
        (let s = Format.asprintf "%a" Lint.pp_finding first in
         String.sub s 0 (String.index s ':' + 2))
  | [] -> Alcotest.fail "expected findings"

(* --------------------------------------------------------- self-check *)

let test_repo_lints_clean () =
  (* under `dune runtest` the cwd is _build/default/test and the sources
     sit one level up (declared as deps); under `dune exec` from the repo
     root they sit right here.  Any finding means a violation crept in
     without a written suppression. *)
  let roots =
    if Sys.file_exists "../lib" && Sys.is_directory "../lib" then
      [ "../lib"; "../bin" ]
    else [ "lib"; "bin" ]
  in
  let findings = Lint.lint_paths roots in
  if findings <> [] then
    Alcotest.failf "repository must lint clean, got:@\n%s"
      (String.concat "\n"
         (List.map (Format.asprintf "%a" Lint.pp_finding) findings))

let test_rule_list () =
  let ids = List.map fst Lint.rules in
  List.iter
    (fun required ->
      Alcotest.(check bool)
        (Printf.sprintf "rule %s shipped" required)
        true (List.mem required ids))
    [
      "spawn-outside-pool"; "toplevel-mutable-state"; "nondeterminism-source";
      "direct-clock-in-instrumented-code"; "list-nth-in-loop";
      "alloc-in-loop"; "missing-mli"; "printf-in-lib"; "swallowed-exception";
      "bad-suppression";
    ]

let () =
  Alcotest.run "netdiv_lint"
    [
      ( "rules",
        [
          Alcotest.test_case "spawn-outside-pool" `Quick
            test_spawn_outside_pool;
          Alcotest.test_case "toplevel-mutable-state" `Quick
            test_toplevel_mutable_state;
          Alcotest.test_case "nondeterminism-source" `Quick
            test_nondeterminism_source;
          Alcotest.test_case "direct-clock-in-instrumented-code" `Quick
            test_direct_clock;
          Alcotest.test_case "list-nth-in-loop" `Quick test_list_nth_in_loop;
          Alcotest.test_case "alloc-in-loop" `Quick test_alloc_in_loop;
          Alcotest.test_case "missing-mli" `Quick test_missing_mli;
          Alcotest.test_case "printf-in-lib" `Quick test_printf_in_lib;
          Alcotest.test_case "swallowed-exception" `Quick
            test_swallowed_exception;
          Alcotest.test_case "bad-suppression" `Quick test_bad_suppression;
          Alcotest.test_case "rule list" `Quick test_rule_list;
        ] );
      ( "engine",
        [
          Alcotest.test_case "lexer blind spots" `Quick test_lexer_blind_spots;
          Alcotest.test_case "ordering and pp" `Quick test_ordering_and_pp;
        ] );
      ( "self-check",
        [ Alcotest.test_case "lib+bin lint clean" `Quick test_repo_lints_clean ] );
    ]
