The similarity CLI prints the paper's Table II (lower triangle, counts in
brackets):

  $ netdiv similarity --corpus os
            WinXP2          Win7            Win8.1          Win10           Ubt14.04        Deb8.0          Mac10.5         Suse13.2        Fedora          
  WinXP2    1.00 (479)      
  Win7      0.278 (328)     1.00 (1028)     
  Win8.1    0.010 (10)      0.229 (298)     1.00 (572)      
  Win10     0.000 (0)       0.125 (164)     0.697 (421)     1.00 (453)      
  Ubt14.04  0.000 (0)       0.000 (0)       0.000 (0)       0.000 (0)       1.00 (612)      
  Deb8.0    0.000 (0)       0.000 (0)       0.000 (0)       0.000 (0)       0.208 (195)     1.00 (519)      
  Mac10.5   0.000 (0)       0.081 (109)     0.000 (0)       0.000 (0)       0.000 (0)       0.000 (0)       1.00 (424)      
  Suse13.2  0.000 (0)       0.000 (0)       0.000 (0)       0.000 (0)       0.171 (161)     0.112 (102)     0.000 (0)       1.00 (492)      
  Fedora    0.000 (0)       0.000 (0)       0.000 (0)       0.000 (0)       0.083 (75)      0.049 (41)      0.001 (1)       0.116 (89)      1.00 (367)      
  

The database corpus (curated, see EXPERIMENTS.md):

  $ netdiv similarity --corpus database --synthesize
             MSSQL08         MSSQL14         MySQL5.5        MariaDB10       
  MSSQL08    1.00 (46)       
  MSSQL14    0.118 (8)       1.00 (30)       
  MySQL5.5   0.000 (0)       0.000 (0)       1.00 (171)      
  MariaDB10  0.000 (0)       0.000 (0)       0.187 (44)      1.00 (108)      
  

Unknown corpora are rejected:

  $ netdiv similarity --corpus nope
  netdiv: unknown corpus "nope"
  [124]

The diversity metrics of the five case-study deployments are
deterministic under the default seed:

  $ netdiv metrics
  diversity metrics, entry c4, target t5:
  
  assignment               d1         least effort (k)       d2  d3 (d_bn)
  optimal              0.1507               1: os:Win7   0.3333    0.83362
  host-constr          0.1505     2: os:WinXP2,os:Win7   0.6667    0.60183
  product-constr       0.1508     2: os:WinXP2,os:Win7   0.6667    0.60183
  random               0.1496     2: os:WinXP2,os:Win7   0.6667    0.06131
  mono                 0.0674     2: os:WinXP2,os:Win7   0.6667    0.02123

So is the risk ranking (seeded sampling):

  $ netdiv rank --samples 4000 --top 5
  host compromise risk under optimal (entry c4, 4000 samples):
  host   zone           P(comp.)
  c4     corporate       1.00000
  c2     corporate       0.17150
  c3     corporate       0.01850
  z4     dmz             0.01625
  c1     corporate       0.01175

The file workflow round-trips: export the case study, verify the saved
assignment scores exactly the optimizer's energy:

  $ netdiv export --network n.json --assignment a.json
  wrote n.json
  wrote a.json

  $ netdiv verify --network n.json --assignment a.json
  network:    network: 32 hosts, 3 services, 77 links, 63 slots
  energy:     40.909076
  cross-edge similarity: 40.279076
  optimizer reaches:     40.909076 (bound 38.280157)

The anytime harness: a tiny time budget on a large instance returns the
best-so-far assignment and reports the truncation honestly (timing lines
are filtered out, they are not deterministic):

  $ netdiv optimize --hosts 800 --time-budget 0.01 | grep -E "^(solver|outcome)"
  solver  trws+icm
  outcome budget exhausted

A generous budget leaves convergence untouched:

  $ netdiv optimize --hosts 40 --time-budget 60 | grep -E "^(solver|outcome)"
  solver  trws+icm
  outcome converged

  $ netdiv optimize --hosts 40 --solver sa --time-budget 60 | grep -E "^(solver|outcome)"
  solver  sa
  outcome converged

The concurrency/determinism linter reports file:line findings and exits
non-zero; the path decides which rules apply (lib/sim is solver/sim and
parallel-reachable):

  $ mkdir -p lib/sim
  $ cat > lib/sim/bad.ml <<'ML'
  > let go f = Domain.spawn f
  > let now () = Unix.gettimeofday ()
  > ML
  $ netdiv lint lib
  lib/sim/bad.ml:1: [missing-mli] library module has no .mli; state the exported surface (add an interface file)
  lib/sim/bad.ml:1: [spawn-outside-pool] Domain.spawn outside lib/par/pool.ml; use Netdiv_par.Pool combinators instead
  lib/sim/bad.ml:2: [nondeterminism-source] Unix.gettimeofday in solver/sim code; wall-clock reads belong in the anytime harness only
  3 finding(s), 0 baselined, 0 stale baseline entries
  [1]

An interface file and reasoned suppressions make the same tree lint
clean; a suppression without a written reason is itself a finding:

  $ cat > lib/sim/bad.mli <<'ML'
  > (* netdiv-lint: allow-file unused-export — cram fixture; nothing links against it *)
  > val go : (unit -> unit) -> unit Domain.t
  > val now : unit -> float
  > ML
  $ cat > lib/sim/bad.ml <<'ML'
  > (* netdiv-lint: allow spawn-outside-pool — cram fixture exercising the CLI *)
  > let go f = Domain.spawn f
  > (* netdiv-lint: allow nondeterminism-source — cram fixture exercising the CLI *)
  > let now () = Unix.gettimeofday ()
  > ML
  $ netdiv lint lib

  $ cat > lib/sim/unreasoned.ml <<'ML'
  > (* netdiv-lint: allow spawn-outside-pool *)
  > let go f = Domain.spawn f
  > ML
  $ netdiv lint lib/sim/unreasoned.ml
  lib/sim/unreasoned.ml:1: [bad-suppression] suppression of spawn-outside-pool has no written reason; say why the violation is acceptable
  lib/sim/unreasoned.ml:1: [missing-mli] library module has no .mli; state the exported surface (add an interface file)
  lib/sim/unreasoned.ml:2: [spawn-outside-pool] Domain.spawn outside lib/par/pool.ml; use Netdiv_par.Pool combinators instead
  3 finding(s), 0 baselined, 0 stale baseline entries
  [1]
  $ rm lib/sim/unreasoned.ml

The interprocedural pass sees through call chains: a helper wrapping the
clock taints its callers, however many hops away, and --explain prints
the witness chain for any tainted symbol:

  $ cat > lib/sim/tick.ml <<'ML'
  > let tick () = Unix.gettimeofday ()
  > ML
  $ cat > lib/sim/solve.ml <<'ML'
  > let phase () = Tick.tick () +. 1.0
  > let solve () = int_of_float (phase ())
  > ML
  $ netdiv lint lib
  lib/sim/solve.ml:1: [missing-mli] library module has no .mli; state the exported surface (add an interface file)
  lib/sim/solve.ml:1: [nondet-taint] Solve.phase transitively reaches Unix.gettimeofday (nondet-clock, 1 call deep); results must depend only on explicit seeds — break the chain or suppress at the source (netdiv lint --explain Solve.phase)
  lib/sim/solve.ml:2: [nondet-taint] Solve.solve transitively reaches Unix.gettimeofday (nondet-clock, 2 calls deep); results must depend only on explicit seeds — break the chain or suppress at the source (netdiv lint --explain Solve.solve)
  lib/sim/tick.ml:1: [missing-mli] library module has no .mli; state the exported surface (add an interface file)
  lib/sim/tick.ml:1: [nondeterminism-source] Unix.gettimeofday in solver/sim code; wall-clock reads belong in the anytime harness only
  5 finding(s), 0 baselined, 0 stale baseline entries
  [1]

  $ netdiv lint --explain Solve.solve lib
  lib/sim/solve.ml:2: [nondet-taint] Solve.solve transitively reaches Unix.gettimeofday (nondet-clock, 2 calls deep); results must depend only on explicit seeds — break the chain or suppress at the source (netdiv lint --explain Solve.solve)
  Solve.solve (lib/sim/solve.ml:2)
    -> Solve.phase (lib/sim/solve.ml:1)
      -> Tick.tick (lib/sim/tick.ml:1)
        -> Unix.gettimeofday (lib/sim/tick.ml:1)

Accepted findings live in a checked-in baseline: --write-baseline emits
a template (reasons must be filled in by hand), a matching baseline
turns exit 1 into exit 0, and entries that no longer match are reported
as stale so the baseline only ever shrinks:

  $ netdiv lint --write-baseline accepted.json lib
  wrote 5 entries to accepted.json; fill in the TODO reasons
  $ netdiv lint --baseline accepted.json lib
  0 finding(s), 5 baselined, 0 stale baseline entries

  $ rm lib/sim/tick.ml lib/sim/solve.ml
  $ netdiv lint --baseline accepted.json lib
  0 finding(s), 0 baselined, 5 stale baseline entries
  stale baseline entry: lib/sim/solve.ml [missing-mli]
  stale baseline entry: lib/sim/solve.ml [nondet-taint] Solve.phase
  stale baseline entry: lib/sim/solve.ml [nondet-taint] Solve.solve
  stale baseline entry: lib/sim/tick.ml [missing-mli]
  stale baseline entry: lib/sim/tick.ml [nondeterminism-source]

--format json emits the machine-readable report the CI gate consumes:

  $ netdiv lint --format json --baseline accepted.json lib | grep -E '"findings"|"baselined"'
    "findings": [],
    "baselined": 0,

Usage and parse errors exit 2, distinct from exit 1 for findings: an
unknown format, a baseline entry with no written reason, a missing path:

  $ netdiv lint --format yaml lib
  netdiv: unknown --format "yaml" (expected text or json)
  [2]

  $ printf '{"findings": [{"file": "x.ml", "rule": "nondet-taint"}]}\n' > noreason.json
  $ netdiv lint --baseline noreason.json lib
  netdiv: noreason.json: baseline entry 0 has no written reason; every accepted finding must say why it is acceptable
  [2]

  $ netdiv lint no/such/dir
  netdiv: no such file or directory: no/such/dir
  [2]

Telemetry timestamps outside the solver scope must go through the
Netdiv_obs clock shim; the dedicated rule reports direct reads:

  $ mkdir -p lib/core
  $ cat > lib/core/clock.ml <<'ML'
  > let now () = Unix.gettimeofday ()
  > ML
  $ netdiv lint lib/core/clock.ml
  lib/core/clock.ml:1: [direct-clock-in-instrumented-code] direct Unix.gettimeofday in instrumented code; read the clock through Netdiv_obs.Obs.Clock.now so spans and timings share one time base
  lib/core/clock.ml:1: [missing-mli] library module has no .mli; state the exported surface (add an interface file)
  2 finding(s), 0 baselined, 0 stale baseline entries
  [1]

A traced run writes a Chrome trace that obs-summary validates and
digests; solver sweeps and the optimizer stages appear as spans:

  $ netdiv optimize --hosts 30 --degree 4 --services 3 --trace t.json | grep trace
  wrote trace t.json
  $ netdiv obs-summary t.json | grep format
  format  chrome
  $ netdiv obs-summary t.json | grep -c "trws.sweep\|optimize.solve"
  4

The JSONL exporter round-trips through the same validator:

  $ netdiv optimize --hosts 30 --degree 4 --services 3 --trace t.jsonl > /dev/null
  $ netdiv obs-summary t.jsonl | grep format
  format  jsonl

The flight-recorder report is a pure function of the dump: a fixed
black-box fixture renders the same post-mortem every time, with gap
milestones, per-zone attribution and boundary reconciliation rounds:

  $ cat > blackbox.json <<'EOF'
  > {"netdiv_recorder":1,"name":"fixture","reason":"completed",
  > "capacity":64,"recorded":10,"dropped":0,"frames":[
  > {"k":"mark","t":0.000,"label":"stage:trws"},
  > {"k":"sweep","t":0.001,"iter":0,"energy":120.0,"bound":20.0,"residual":9.0,"msg_potts":64,"msg_sparse":0,"msg_generic":32},
  > {"k":"sweep","t":0.002,"iter":1,"energy":60.0,"bound":40.0,"residual":2.5,"msg_potts":64,"msg_sparse":0,"msg_generic":32},
  > {"k":"sweep","t":0.003,"iter":2,"energy":50.0,"bound":49.0,"residual":0.4,"msg_potts":64,"msg_sparse":0,"msg_generic":32},
  > {"k":"sweep","t":0.004,"iter":3,"energy":50.0,"bound":49.9,"residual":0.01,"msg_potts":64,"msg_sparse":0,"msg_generic":32},
  > {"k":"zone","t":0.005,"round":0,"zone":0,"energy":30.0,"bound":29.0,"iters":12,"converged":true},
  > {"k":"zone","t":0.005,"round":0,"zone":1,"energy":20.0,"bound":16.0,"iters":20,"converged":false},
  > {"k":"boundary","t":0.006,"round":0,"disagree":4,"edge_bound":1.0,"zone_bound":45.0,"step":0.5},
  > {"k":"boundary","t":0.007,"round":1,"disagree":0,"edge_bound":1.5,"zone_bound":46.0,"step":0.25},
  > {"k":"mark","t":0.008,"label":"stage:done"}
  > ]}
  > EOF
  $ netdiv report blackbox.json
  recorder fixture
  reason   completed
  frames   10 recorded, capacity 64, 0 dropped
  diagnosis: zones agree on every boundary edge (primal/dual reconciled)
  marks:
      0.000000s  stage:trws
      0.008000s  stage:done
  time to gap:
       gap<=          t_s     iter
         50%     0.002000        1
         20%     0.003000        2
         10%     0.003000        2
          5%     0.003000        2
          2%     0.003000        2
          1%     0.004000        3
        0.5%     0.004000        3
  zone gap attribution (re-solve the top zones first):
      zone           energy            bound          gap converged
         1        20.000000        16.000000     4.000000 false
         0        30.000000        29.000000     1.000000 true
  boundary reconciliation:
     round   disagree       zone_bound       edge_bound         step
         0          4        45.000000         1.000000          0.5
         1          0        46.000000         1.500000         0.25
  sweep frames: 4 (last: iter 3, energy 50.000000, bound 49.900000)
  

A real traced-and-recorded run ties the two together: the completion
dump lands where --flight-record points and the report parses it:

  $ netdiv optimize --hosts 30 --degree 4 --services 3 --flight-record fr.json | grep flight
  wrote flight record fr.json
  $ netdiv report fr.json | grep -c "^recorder netdiv\|^reason   completed"
  2

A malformed dump is rejected with a parse error, not a crash:

  $ echo '{"netdiv_recorder":1,"frames":[{"k":"sweep"}]}' > bad.json
  $ netdiv report bad.json
  netdiv: bad.json: malformed frame in flight-recorder dump
  [124]
