(* Tests for the MRF library: model construction, energy evaluation, and
   the four solvers (TRW-S, BP, ICM, exhaustive).  The key invariants:
   TRW-S's dual bound never exceeds any labeling's energy, is exact and
   tight on trees, and on tiny loopy models all solvers stay above the
   exhaustive optimum. *)

open Netdiv_mrf

let rng seed = Random.State.make [| seed |]

(* random MRF with n nodes, k labels each, edge probability p *)
let random_mrf rng n k p =
  let b = Mrf.Builder.create ~label_counts:(Array.make n k) in
  for i = 0 to n - 1 do
    Mrf.Builder.set_unary b ~node:i
      (Array.init k (fun _ -> Random.State.float rng 1.0))
  done;
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1.0 < p then
        Mrf.Builder.add_edge b u v
          (Array.init (k * k) (fun _ -> Random.State.float rng 1.0))
    done
  done;
  Mrf.Builder.build b

let random_tree_mrf rng n k =
  let b = Mrf.Builder.create ~label_counts:(Array.make n k) in
  for i = 0 to n - 1 do
    Mrf.Builder.set_unary b ~node:i
      (Array.init k (fun _ -> Random.State.float rng 1.0))
  done;
  for i = 1 to n - 1 do
    let parent = Random.State.int rng i in
    Mrf.Builder.add_edge b parent i
      (Array.init (k * k) (fun _ -> Random.State.float rng 1.0))
  done;
  Mrf.Builder.build b

(* ---------------------------------------------------------------- model *)

let test_builder_basic () =
  let b = Mrf.Builder.create ~label_counts:[| 2; 3 |] in
  Mrf.Builder.set_unary b ~node:0 [| 1.0; 2.0 |];
  Mrf.Builder.add_unary b ~node:0 ~label:1 0.5;
  Mrf.Builder.add_edge b 0 1 (Array.init 6 float_of_int);
  let m = Mrf.Builder.build b in
  Alcotest.(check int) "nodes" 2 (Mrf.n_nodes m);
  Alcotest.(check int) "edges" 1 (Mrf.n_edges m);
  Alcotest.(check int) "labels" 3 (Mrf.label_count m 1);
  Alcotest.(check (float 1e-9)) "unary accumulates" 2.5
    (Mrf.unary m ~node:0 ~label:1);
  Alcotest.(check (float 1e-9)) "energy" (1.0 +. 0.0 +. 2.0)
    (Mrf.energy m [| 0; 2 |])

let test_builder_validation () =
  (match Mrf.Builder.create ~label_counts:[| 0 |] with
  | _ -> Alcotest.fail "accepted zero labels"
  | exception Invalid_argument _ -> ());
  let b = Mrf.Builder.create ~label_counts:[| 2; 2 |] in
  (match Mrf.Builder.add_edge b 0 0 (Array.make 4 0.0) with
  | () -> Alcotest.fail "accepted self-edge"
  | exception Invalid_argument _ -> ());
  (match Mrf.Builder.add_edge b 0 1 (Array.make 3 0.0) with
  | () -> Alcotest.fail "accepted wrong matrix size"
  | exception Invalid_argument _ -> ());
  match Mrf.Builder.set_unary b ~node:0 [| 1.0 |] with
  | () -> Alcotest.fail "accepted short unary"
  | exception Invalid_argument _ -> ()

let test_energy_validation () =
  let m = random_mrf (rng 1) 4 3 0.5 in
  (match Mrf.energy m [| 0; 0; 0 |] with
  | _ -> Alcotest.fail "accepted wrong length"
  | exception Invalid_argument _ -> ());
  match Mrf.energy m [| 0; 0; 3; 0 |] with
  | _ -> Alcotest.fail "accepted out-of-range label"
  | exception Invalid_argument _ -> ()

let test_incident () =
  let b = Mrf.Builder.create ~label_counts:[| 2; 2; 2 |] in
  Mrf.Builder.add_edge b 1 0 (Array.make 4 0.0);
  Mrf.Builder.add_edge b 1 2 (Array.make 4 0.0);
  let m = Mrf.Builder.build b in
  let inc = Mrf.incident m 1 in
  Alcotest.(check int) "two incidences" 2 (Array.length inc);
  (* sorted by opposite endpoint: 0 first, then 2 *)
  let e0, _ = inc.(0) and e1, _ = inc.(1) in
  Alcotest.(check int) "opposite of first" 0 (Mrf.opposite m ~edge:e0 1);
  Alcotest.(check int) "opposite of second" 2 (Mrf.opposite m ~edge:e1 1)

let test_shared_matrix () =
  let shared = Array.make 4 0.5 in
  let b = Mrf.Builder.create ~label_counts:[| 2; 2; 2 |] in
  Mrf.Builder.add_edge b 0 1 shared;
  Mrf.Builder.add_edge b 1 2 shared;
  let m = Mrf.Builder.build b in
  Alcotest.(check bool) "physically shared" true
    (Mrf.edge_cost m 0 == Mrf.edge_cost m 1)

let test_interned_tables () =
  (* distinct arrays with equal contents must hash-cons to one table *)
  let b = Mrf.Builder.create ~label_counts:[| 2; 2; 2; 2 |] in
  Mrf.Builder.add_edge b 0 1 [| 0.5; 0.1; 0.1; 0.5 |];
  Mrf.Builder.add_edge b 1 2 [| 0.5; 0.1; 0.1; 0.5 |];
  Mrf.Builder.add_edge b 2 3 [| 0.9; 0.0; 0.0; 0.9 |];
  let m = Mrf.Builder.build b in
  Alcotest.(check int) "two distinct tables" 2 (Mrf.n_tables m);
  Alcotest.(check bool) "content-equal edges share storage" true
    (Mrf.edge_cost m 0 == Mrf.edge_cost m 1);
  Alcotest.(check int) "same table id"
    (Mrf.edge_table_id m 0)
    (Mrf.edge_table_id m 1);
  Alcotest.(check bool) "third edge gets its own table" true
    (Mrf.edge_table_id m 2 <> Mrf.edge_table_id m 0);
  Alcotest.(check int) "interned words" 8 (Mrf.pot_words m);
  Alcotest.(check int) "unshared words" 12 (Mrf.pot_words_unshared m)

(* -------------------------------------------------------------- solvers *)

let test_trws_tiny_exact () =
  (* two nodes, pull apart: optimum must be the anti-diagonal *)
  let b = Mrf.Builder.create ~label_counts:[| 2; 2 |] in
  Mrf.Builder.add_edge b 0 1 [| 1.0; 0.0; 0.0; 1.0 |];
  let m = Mrf.Builder.build b in
  let r = Trws.solve m in
  Alcotest.(check (float 1e-9)) "energy 0" 0.0 r.Solver.energy;
  Alcotest.(check (float 1e-6)) "bound tight" 0.0 r.Solver.lower_bound;
  Alcotest.(check bool) "anti-diagonal" true
    (r.Solver.labeling.(0) <> r.Solver.labeling.(1))

let test_trws_trees_exact () =
  for seed = 1 to 10 do
    let m = random_tree_mrf (rng seed) (5 + (seed mod 6)) 3 in
    let exact = Brute.solve m in
    let r = Trws.solve m in
    Alcotest.(check (float 1e-6))
      (Printf.sprintf "tree %d energy optimal" seed)
      exact.Solver.energy r.Solver.energy;
    Alcotest.(check (float 1e-5))
      (Printf.sprintf "tree %d bound tight" seed)
      exact.Solver.energy r.Solver.lower_bound
  done

let test_solvers_vs_brute_loopy () =
  let exact_hits = ref 0 in
  for seed = 1 to 15 do
    let m = random_mrf (rng (100 + seed)) 6 3 0.5 in
    let exact = Brute.solve m in
    let tr = Trws.solve m in
    let bp = Bp.solve m in
    let icm = Icm.solve m in
    Alcotest.(check bool) "trws >= optimum" true
      (tr.Solver.energy >= exact.Solver.energy -. 1e-9);
    Alcotest.(check bool) "trws bound <= optimum" true
      (tr.Solver.lower_bound <= exact.Solver.energy +. 1e-9);
    Alcotest.(check bool) "bp >= optimum" true
      (bp.Solver.energy >= exact.Solver.energy -. 1e-9);
    Alcotest.(check bool) "icm >= optimum" true
      (icm.Solver.energy >= exact.Solver.energy -. 1e-9);
    if tr.Solver.energy -. exact.Solver.energy < 1e-6 then incr exact_hits
  done;
  Alcotest.(check bool) "trws exact on most loopy instances" true
    (!exact_hits >= 10)

let test_trws_bound_below_decoded () =
  for seed = 1 to 8 do
    let m = random_mrf (rng (200 + seed)) 20 4 0.2 in
    let r = Trws.solve m in
    Alcotest.(check bool) "bound <= energy" true
      (r.Solver.lower_bound <= r.Solver.energy +. 1e-9)
  done

let test_icm_local_optimum () =
  let m = random_mrf (rng 3) 12 3 0.4 in
  let r = Icm.solve m in
  (* no single-node move may improve an ICM fixed point *)
  let x = Array.copy r.Solver.labeling in
  let base = Mrf.energy m x in
  for i = 0 to Mrf.n_nodes m - 1 do
    let keep = x.(i) in
    for l = 0 to Mrf.label_count m i - 1 do
      x.(i) <- l;
      Alcotest.(check bool) "no improving move" true
        (Mrf.energy m x >= base -. 1e-9)
    done;
    x.(i) <- keep
  done

let test_icm_respects_init () =
  let m = random_mrf (rng 4) 8 3 0.4 in
  let init = Array.make 8 2 in
  let r = Icm.solve ~init m in
  Alcotest.(check bool) "improves init" true
    (r.Solver.energy <= Mrf.energy m init +. 1e-9)

let test_brute_counts () =
  let m = random_mrf (rng 5) 4 3 0.5 in
  let r = Brute.solve m in
  Alcotest.(check int) "enumerates 3^4" 81 r.Solver.iterations;
  Alcotest.(check (float 1e-9)) "search space" 81.0 (Brute.search_space m)

let test_brute_limit () =
  let m = random_mrf (rng 6) 30 4 0.1 in
  match Brute.solve ~limit:1000 m with
  | _ -> Alcotest.fail "accepted huge search space"
  | exception Invalid_argument _ -> ()

let test_isolated_nodes () =
  (* solver must handle nodes with no edges *)
  let b = Mrf.Builder.create ~label_counts:[| 3; 3; 2 |] in
  Mrf.Builder.set_unary b ~node:0 [| 2.0; 1.0; 3.0 |];
  Mrf.Builder.set_unary b ~node:2 [| 0.5; 0.1 |];
  Mrf.Builder.add_edge b 0 1 (Array.make 9 0.0);
  let m = Mrf.Builder.build b in
  let r = Trws.solve m in
  Alcotest.(check (float 1e-9)) "isolated picks min unary" 1.1
    r.Solver.energy;
  Alcotest.(check (float 1e-6)) "bound tight" 1.1 r.Solver.lower_bound

let test_sa_vs_brute () =
  for seed = 1 to 8 do
    let m = random_mrf (rng (300 + seed)) 6 3 0.5 in
    let exact = Brute.solve m in
    let sa = Sa.solve m in
    Alcotest.(check bool) "sa >= optimum" true
      (sa.Solver.energy >= exact.Solver.energy -. 1e-9);
    (* on instances this small, annealing should find the optimum *)
    Alcotest.(check (float 1e-6))
      (Printf.sprintf "sa exact on seed %d" seed)
      exact.Solver.energy sa.Solver.energy
  done

let test_sa_deterministic () =
  let m = random_mrf (rng 9) 15 3 0.3 in
  let a = Sa.solve m and b = Sa.solve m in
  Alcotest.(check bool) "same labeling" true
    (a.Solver.labeling = b.Solver.labeling)

let test_sa_improves_init () =
  let m = random_mrf (rng 10) 12 4 0.4 in
  let init = Array.make 12 3 in
  let r = Sa.solve ~init m in
  Alcotest.(check bool) "improves" true
    (r.Solver.energy <= Mrf.energy m init +. 1e-9)

let test_sa_parallel_matches_sequential () =
  let m = random_mrf (rng 15) 20 3 0.3 in
  let base = { Sa.default_config with restarts = 4 } in
  let seq = Sa.solve ~config:base m in
  let par = Sa.solve ~config:{ base with domains = 4 } m in
  Alcotest.(check (float 1e-9)) "same energy" seq.Solver.energy
    par.Solver.energy;
  Alcotest.(check bool) "same labeling" true
    (seq.Solver.labeling = par.Solver.labeling)

let test_sa_oversubscribed () =
  (* more domains than restarts (and than cores) must not change the
     result *)
  let m = random_mrf (rng 15) 20 3 0.3 in
  let base = { Sa.default_config with restarts = 3 } in
  let seq = Sa.solve ~config:base m in
  let par = Sa.solve ~config:{ base with domains = 16 } m in
  Alcotest.(check (float 1e-9)) "same energy" seq.Solver.energy
    par.Solver.energy;
  Alcotest.(check bool) "same labeling" true
    (seq.Solver.labeling = par.Solver.labeling)

let disconnected_mrf () =
  (* two 4-node chains and an isolated node — three components *)
  let b = Mrf.Builder.create ~label_counts:(Array.make 9 3) in
  let r = rng 77 in
  for i = 0 to 8 do
    Mrf.Builder.set_unary b ~node:i
      (Array.init 3 (fun _ -> Random.State.float r 1.0))
  done;
  List.iter
    (fun (u, v) ->
      Mrf.Builder.add_edge b u v
        (Array.init 9 (fun _ -> Random.State.float r 1.0)))
    [ (0, 1); (1, 2); (2, 3); (4, 5); (5, 6); (6, 7) ];
  Mrf.Builder.build b

let test_solve_components () =
  let m = disconnected_mrf () in
  let exact = Brute.solve m in
  let serial = Trws.solve_components ~jobs:1 m in
  let par = Trws.solve_components ~jobs:4 m in
  (* every component is a tree, so the merged solve must be exact *)
  Alcotest.(check (float 1e-6)) "exact on forest" exact.Solver.energy
    serial.Solver.energy;
  Alcotest.(check (float 1e-9)) "jobs-invariant energy" serial.Solver.energy
    par.Solver.energy;
  Alcotest.(check bool) "jobs-invariant labeling" true
    (serial.Solver.labeling = par.Solver.labeling);
  Alcotest.(check (float 1e-9)) "jobs-invariant bound"
    serial.Solver.lower_bound par.Solver.lower_bound;
  Alcotest.(check (float 1e-9)) "labeling consistent with energy"
    serial.Solver.energy
    (Mrf.energy m serial.Solver.labeling)

let test_sa_config_validation () =
  let m = random_mrf (rng 11) 3 2 0.5 in
  match Sa.solve ~config:{ Sa.default_config with cooling = 1.5 } m with
  | _ -> Alcotest.fail "accepted cooling > 1"
  | exception Invalid_argument _ -> ()

let test_bnb_exact () =
  for seed = 1 to 12 do
    let m = random_mrf (rng (700 + seed)) 8 3 0.4 in
    let exact = Brute.solve m in
    let bb = Bnb.solve m in
    Alcotest.(check bool)
      (Printf.sprintf "certified on seed %d" seed)
      true bb.Solver.converged;
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "optimal on seed %d" seed)
      exact.Solver.energy bb.Solver.energy;
    Alcotest.(check (float 1e-9)) "bound equals energy when certified"
      bb.Solver.energy bb.Solver.lower_bound
  done

let test_bnb_node_limit () =
  let m = random_mrf (rng 13) 25 4 0.4 in
  let bb = Bnb.solve ~config:{ Bnb.node_limit = 10 } m in
  Alcotest.(check bool) "gave up" false bb.Solver.converged;
  (* the incumbent is still at least as good as the warm start *)
  let warm = Trws.solve m in
  let polished = Icm.solve ~init:warm.Solver.labeling m in
  Alcotest.(check bool) "incumbent sane" true
    (bb.Solver.energy <= polished.Solver.energy +. 1e-9);
  Alcotest.(check bool) "bound still valid" true
    (bb.Solver.lower_bound <= bb.Solver.energy +. 1e-9)

let test_bnb_tree_fast () =
  let m = random_tree_mrf (rng 14) 30 4 in
  let bb = Bnb.solve ~config:{ Bnb.node_limit = 100_000 } m in
  Alcotest.(check bool) "trees certify" true bb.Solver.converged;
  let tr = Trws.solve m in
  Alcotest.(check (float 1e-6)) "agrees with trws on trees"
    tr.Solver.energy bb.Solver.energy

let test_parallel_edges () =
  (* duplicate edges accumulate cost *)
  let b = Mrf.Builder.create ~label_counts:[| 2; 2 |] in
  Mrf.Builder.add_edge b 0 1 [| 1.0; 0.0; 0.0; 1.0 |];
  Mrf.Builder.add_edge b 0 1 [| 0.3; 0.0; 0.0; 0.3 |];
  let m = Mrf.Builder.build b in
  Alcotest.(check (float 1e-9)) "parallel sum" 1.3 (Mrf.energy m [| 0; 0 |]);
  let r = Trws.solve m in
  Alcotest.(check (float 1e-9)) "optimum avoids both" 0.0 r.Solver.energy

(* -------------------------------------------------------------- kernels *)

let test_kernel_classify () =
  let k = 5 in
  let potts =
    Array.init (k * k) (fun idx ->
        if idx / k = idx mod k then 0.1 *. float_of_int (idx / k) else 0.7)
  in
  (match Kernel.classify ~ku:k ~kv:k potts with
  | Kernel.Potts { off; diag } ->
      Alcotest.(check (float 0.0)) "off value" 0.7 off;
      Alcotest.(check (float 0.0)) "diag value" 0.2 diag.(2)
  | c -> Alcotest.failf "potts table classified %s" (Kernel.kind_name c));
  (* base value with two deviations at k=8: the selection bound pays *)
  let k8 = 8 in
  let cs = Array.make (k8 * k8) 0.3 in
  cs.(3) <- 0.9;
  cs.(20) <- 0.05;
  (match Kernel.classify ~ku:k8 ~kv:k8 cs with
  | Kernel.Const_sparse { base; nnz; max_line_nnz; _ } ->
      Alcotest.(check (float 0.0)) "base" 0.3 base;
      Alcotest.(check int) "nnz" 2 nnz;
      Alcotest.(check int) "max_line_nnz" 1 max_line_nnz
  | c -> Alcotest.failf "sparse table classified %s" (Kernel.kind_name c));
  (* almost-Potts at k=4: one off-diagonal outlier, and the table is too
     small for the sparse kernel to pay — the classifier must reject *)
  let k4 = 4 in
  let almost =
    Array.init (k4 * k4) (fun idx ->
        if idx / k4 = idx mod k4 then 0.0 else 0.7)
  in
  almost.(1) <- 0.71;
  (match Kernel.classify ~ku:k4 ~kv:k4 almost with
  | Kernel.Generic -> ()
  | c -> Alcotest.failf "almost-Potts classified %s" (Kernel.kind_name c));
  (* non-finite entries stay on the generic path for NaN propagation *)
  let nanny = Array.make (k8 * k8) 0.3 in
  nanny.(5) <- Float.nan;
  (match Kernel.classify ~ku:k8 ~kv:k8 nanny with
  | Kernel.Generic -> ()
  | c -> Alcotest.failf "NaN table classified %s" (Kernel.kind_name c));
  (* shape mismatch is rejected outright *)
  match Kernel.classify ~ku:3 ~kv:3 (Array.make 6 0.0) with
  | Kernel.Generic -> ()
  | c -> Alcotest.failf "misshaped table classified %s" (Kernel.kind_name c)

let test_kernel_stats_exposed () =
  let k = 6 in
  let b = Mrf.Builder.create ~label_counts:(Array.make 3 k) in
  let potts =
    Array.init (k * k) (fun idx -> if idx / k = idx mod k then 0.0 else 1.0)
  in
  Mrf.Builder.add_edge b 0 1 potts;
  Mrf.Builder.add_edge b 1 2 potts;
  Mrf.Builder.add_edge b 0 2 (Array.init (k * k) float_of_int);
  let m = Mrf.Builder.build b in
  let kc = Mrf.kernel_counts m in
  Alcotest.(check int) "potts tables" 1 kc.Mrf.potts_tables;
  Alcotest.(check int) "generic tables" 1 kc.Mrf.generic_tables;
  Alcotest.(check int) "potts edges" 2 kc.Mrf.potts_edges;
  Alcotest.(check int) "generic edges" 1 kc.Mrf.generic_edges;
  (match Mrf.table_class m (Mrf.edge_table_id m 0) with
  | Kernel.Potts _ -> ()
  | c -> Alcotest.failf "edge 0 carries %s" (Kernel.kind_name c));
  (* the opt-out knob forces every table onto the generic kernel *)
  let b = Mrf.Builder.create ~label_counts:(Array.make 2 k) in
  Mrf.Builder.add_edge b 0 1 potts;
  let mg = Mrf.Builder.build ~specialize:false b in
  Alcotest.(check int) "specialize:false all generic" 1
    (Mrf.kernel_counts mg).Mrf.generic_tables

(* Random MRF over a mix of structured tables: Potts, constant-plus-
   sparse, almost-qualifying (classifier rejection path) and dense
   generic, over mixed label counts so non-square tables exercise both
   message orientations.  Deterministic in [seed]. *)
let random_structured_mrf ~specialize seed =
  let rng = Random.State.make [| 0xface; seed |] in
  let n = 10 in
  let labels =
    Array.init n (fun i ->
        if i mod 5 = 4 then 1 else if i mod 2 = 0 then 9 else 12)
  in
  let b = Mrf.Builder.create ~label_counts:labels in
  for i = 0 to n - 1 do
    Mrf.Builder.set_unary b ~node:i
      (Array.init labels.(i) (fun _ -> Random.State.float rng 1.0))
  done;
  let mk_table ku kv =
    match Random.State.int rng 4 with
    | 0 when ku = kv ->
        (* Potts: uniform off-diagonal, random diagonal *)
        let off = 0.25 +. Random.State.float rng 0.75 in
        Array.init (ku * kv) (fun idx ->
            if idx / kv = idx mod kv then Random.State.float rng 0.2
            else off)
    | 1 ->
        (* constant-plus-sparse: uniform base, two deviations *)
        let t =
          Array.make (ku * kv) (0.2 +. Random.State.float rng 0.5)
        in
        t.(Random.State.int rng (ku * kv)) <- Random.State.float rng 2.0;
        t.(Random.State.int rng (ku * kv)) <- Random.State.float rng 2.0;
        t
    | 2 when ku = kv ->
        (* almost-Potts: one off-diagonal outlier *)
        let off = 0.25 +. Random.State.float rng 0.75 in
        let t =
          Array.init (ku * kv) (fun idx ->
              if idx / kv = idx mod kv then Random.State.float rng 0.2
              else off)
        in
        let i = Random.State.int rng ku in
        let j = (i + 1) mod kv in
        t.((i * kv) + j) <- off +. 0.01;
        t
    | _ -> Array.init (ku * kv) (fun _ -> Random.State.float rng 1.0)
  in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1.0 < 0.35 then
        Mrf.Builder.add_edge b u v (mk_table labels.(u) labels.(v))
    done
  done;
  Mrf.Builder.build ~specialize b

let test_kernel_equivalence () =
  let specialized_seen = ref 0 in
  for seed = 0 to 19 do
    let ms = random_structured_mrf ~specialize:true seed in
    let mg = random_structured_mrf ~specialize:false seed in
    let kc = Mrf.kernel_counts ms in
    specialized_seen :=
      !specialized_seen + kc.Mrf.potts_edges + kc.Mrf.sparse_edges;
    Alcotest.(check int)
      "opt-out model runs fully generic" 0
      ((Mrf.kernel_counts mg).Mrf.potts_tables
      + (Mrf.kernel_counts mg).Mrf.sparse_tables);
    (* TRW-S: messages are bitwise identical, so energies, bounds,
       labelings and even iteration counts must match exactly *)
    let rs = Trws.solve ms and rg = Trws.solve mg in
    Alcotest.(check (array int))
      (Printf.sprintf "trws labeling seed=%d" seed)
      rg.Solver.labeling rs.Solver.labeling;
    Alcotest.(check bool)
      (Printf.sprintf "trws energy bitwise seed=%d" seed)
      true
      (rs.Solver.energy = rg.Solver.energy);
    Alcotest.(check bool)
      (Printf.sprintf "trws bound bitwise seed=%d" seed)
      true
      (rs.Solver.lower_bound = rg.Solver.lower_bound);
    Alcotest.(check int)
      (Printf.sprintf "trws iterations seed=%d" seed)
      rg.Solver.iterations rs.Solver.iterations;
    (* BP: damped blends of bitwise-identical fresh messages *)
    let bs = Bp.solve ms and bg = Bp.solve mg in
    Alcotest.(check (array int))
      (Printf.sprintf "bp labeling seed=%d" seed)
      bg.Solver.labeling bs.Solver.labeling;
    Alcotest.(check bool)
      (Printf.sprintf "bp energy bitwise seed=%d" seed)
      true
      (bs.Solver.energy = bg.Solver.energy);
    Alcotest.(check int)
      (Printf.sprintf "bp iterations seed=%d" seed)
      bg.Solver.iterations bs.Solver.iterations
  done;
  (* the property is vacuous if no structured table ever classified *)
  Alcotest.(check bool) "specialized kernels exercised" true
    (!specialized_seen > 20)

(* -------------------------------------- intra-component parallelism *)

module Pool = Netdiv_par.Pool

(* Run [f] pretending the machine has [n] cores so the parallel
   schedules really spawn domains, even on a single-core CI box. *)
let with_hardware_jobs n f =
  Pool.set_hardware_jobs (Some n);
  Fun.protect ~finally:(fun () -> Pool.set_hardware_jobs None) f

let test_greedy_coloring_proper () =
  List.iter
    (fun (seed, n, p) ->
      let m = random_mrf (rng seed) n 3 p in
      let color, ncolors = Mrf.greedy_coloring m in
      Alcotest.(check int) "one color per node" n (Array.length color);
      Alcotest.(check bool) "at least one color" true (ncolors >= 1);
      Array.iteri
        (fun i c ->
          Alcotest.(check bool)
            (Printf.sprintf "node %d color in range" i)
            true
            (c >= 0 && c < ncolors))
        color;
      for e = 0 to Mrf.n_edges m - 1 do
        let u, v = Mrf.edge_endpoints m e in
        Alcotest.(check bool)
          (Printf.sprintf "edge %d endpoints differ" e)
          true
          (color.(u) <> color.(v))
      done)
    [ (31, 12, 0.4); (32, 30, 0.15); (33, 1, 0.0); (34, 25, 0.9) ]

let test_trws_partitioned_matches_solve () =
  (* one partition must be the sequential solver, bit for bit; and for a
     fixed partition count the job count must not matter *)
  for seed = 40 to 44 do
    let m = random_mrf (rng seed) 30 3 0.15 in
    let base = Trws.solve m in
    let p1 = Trws.solve_partitioned ~parts:1 ~jobs:1 m in
    Alcotest.(check bool)
      (Printf.sprintf "parts=1 energy bitwise seed=%d" seed)
      true
      (base.Solver.energy = p1.Solver.energy);
    Alcotest.(check bool) "parts=1 bound bitwise" true
      (base.Solver.lower_bound = p1.Solver.lower_bound);
    Alcotest.(check (array int)) "parts=1 labeling" base.Solver.labeling
      p1.Solver.labeling;
    Alcotest.(check int) "parts=1 iterations" base.Solver.iterations
      p1.Solver.iterations
  done

let test_trws_partitioned_jobs_invariant () =
  with_hardware_jobs 4 (fun () ->
      for seed = 45 to 49 do
        let m = random_mrf (rng seed) 40 3 0.12 in
        let r1 = Trws.solve_partitioned ~parts:4 ~jobs:1 m in
        List.iter
          (fun jobs ->
            let r = Trws.solve_partitioned ~parts:4 ~jobs m in
            Alcotest.(check bool)
              (Printf.sprintf "energy bitwise seed=%d jobs=%d" seed jobs)
              true
              (r1.Solver.energy = r.Solver.energy);
            Alcotest.(check bool)
              (Printf.sprintf "bound bitwise seed=%d jobs=%d" seed jobs)
              true
              (r1.Solver.lower_bound = r.Solver.lower_bound);
            Alcotest.(check (array int))
              (Printf.sprintf "labeling seed=%d jobs=%d" seed jobs)
              r1.Solver.labeling r.Solver.labeling;
            Alcotest.(check int)
              (Printf.sprintf "iterations seed=%d jobs=%d" seed jobs)
              r1.Solver.iterations r.Solver.iterations)
          [ 2; 4 ];
        (* the boundary merge must keep the anytime contract *)
        let r4 = Trws.solve_partitioned ~parts:4 ~jobs:4 m in
        Alcotest.(check (float 1e-9)) "labeling consistent with energy"
          r4.Solver.energy
          (Mrf.energy m r4.Solver.labeling);
        Alcotest.(check bool) "bound below energy" true
          (r4.Solver.lower_bound <= r4.Solver.energy +. 1e-9)
      done)

let test_bp_chromatic_jobs_invariant () =
  with_hardware_jobs 4 (fun () ->
      for seed = 50 to 54 do
        let m = random_mrf (rng seed) 40 3 0.12 in
        let r1 = Bp.solve_chromatic ~jobs:1 m in
        List.iter
          (fun jobs ->
            let r = Bp.solve_chromatic ~jobs m in
            Alcotest.(check bool)
              (Printf.sprintf "energy bitwise seed=%d jobs=%d" seed jobs)
              true
              (r1.Solver.energy = r.Solver.energy);
            Alcotest.(check (array int))
              (Printf.sprintf "labeling seed=%d jobs=%d" seed jobs)
              r1.Solver.labeling r.Solver.labeling;
            Alcotest.(check int)
              (Printf.sprintf "iterations seed=%d jobs=%d" seed jobs)
              r1.Solver.iterations r.Solver.iterations)
          [ 2; 4 ];
        Alcotest.(check (float 1e-9)) "labeling consistent with energy"
          r1.Solver.energy
          (Mrf.energy m r1.Solver.labeling)
      done)

let test_parallel_schedules_on_structured_kernels () =
  (* the slab-backed parallel schedules must hit the same specialized-
     equals-generic bitwise property the sequential solvers guarantee,
     across all three kernel classes (Potts, constant-plus-sparse,
     generic) *)
  with_hardware_jobs 4 (fun () ->
      for seed = 0 to 4 do
        let ms = random_structured_mrf ~specialize:true seed in
        let mg = random_structured_mrf ~specialize:false seed in
        let ts = Trws.solve_partitioned ~parts:3 ~jobs:4 ms in
        let tg = Trws.solve_partitioned ~parts:3 ~jobs:4 mg in
        Alcotest.(check bool)
          (Printf.sprintf "partitioned trws energy bitwise seed=%d" seed)
          true
          (ts.Solver.energy = tg.Solver.energy);
        Alcotest.(check (array int))
          (Printf.sprintf "partitioned trws labeling seed=%d" seed)
          tg.Solver.labeling ts.Solver.labeling;
        let bs = Bp.solve_chromatic ~jobs:4 ms in
        let bg = Bp.solve_chromatic ~jobs:4 mg in
        Alcotest.(check bool)
          (Printf.sprintf "chromatic bp energy bitwise seed=%d" seed)
          true
          (bs.Solver.energy = bg.Solver.energy);
        Alcotest.(check (array int))
          (Printf.sprintf "chromatic bp labeling seed=%d" seed)
          bg.Solver.labeling bs.Solver.labeling
      done)

(* ---------------------------------------------------- zoned decomposition *)

let test_compact_accessors () =
  let m = random_mrf (rng 60) 15 3 0.3 in
  for i = 0 to Mrf.n_nodes m - 1 do
    let inc = Mrf.incident m i in
    Alcotest.(check int)
      (Printf.sprintf "degree of %d" i)
      (Array.length inc) (Mrf.Compact.degree m i);
    Array.iteri
      (fun s (e, is_u) ->
        let k = Mrf.Compact.row_start m i + s in
        Alcotest.(check int) "edge id" e (Mrf.Compact.edge m k);
        Alcotest.(check bool) "orientation" is_u (Mrf.Compact.node_is_u m k);
        Alcotest.(check int) "neighbor column" (Mrf.opposite m ~edge:e i)
          (Mrf.Compact.neighbor m k))
      inc;
    Alcotest.(check int) "row extent"
      (Mrf.Compact.row_stop m i - Mrf.Compact.row_start m i)
      (Mrf.Compact.degree m i)
  done

let test_footprint () =
  let m = random_mrf (rng 61) 25 3 0.25 in
  let f = Mrf.footprint m in
  Alcotest.(check int) "nodes" (Mrf.n_nodes m) f.Mrf.f_nodes;
  Alcotest.(check int) "edges" (Mrf.n_edges m) f.Mrf.f_edges;
  Alcotest.(check bool) "positive words" true (f.Mrf.f_words > 0);
  Alcotest.(check bool) "per-node positive" true
    (f.Mrf.f_words_per_node > 0.0);
  (* this model's tables are all distinct (random), still the boxed
     layout pays list/tuple overhead the compact layout doesn't *)
  Alcotest.(check bool) "flat layout is larger" true
    (f.Mrf.f_flat_words > f.Mrf.f_words / 2);
  (* heavy interning: one shared table, many edges -> compact wins big *)
  let shared = Array.make 9 0.25 in
  let b = Mrf.Builder.create ~label_counts:(Array.make 40 3) in
  Mrf.Builder.reserve_edges b 80;
  for u = 0 to 38 do
    Mrf.Builder.add_edge b u (u + 1) shared
  done;
  let mi = Mrf.Builder.build b in
  let fi = Mrf.footprint mi in
  Alcotest.(check int) "one interned table" 1 fi.Mrf.f_tables;
  Alcotest.(check bool) "interned compact under half of flat" true
    (2 * fi.Mrf.f_words < fi.Mrf.f_flat_words);
  let est =
    Mrf.estimate_words ~nodes:40 ~edges:39 ~max_labels:3 ~tables:1
  in
  Alcotest.(check bool) "estimate covers the model" true
    (est >= fi.Mrf.f_words)

let test_with_unaries () =
  let m = random_mrf (rng 62) 8 3 0.4 in
  let x = Array.make 8 1 in
  let e0 = Mrf.energy m x in
  let u = Array.init (8 * 3) (fun k -> Mrf.unary m ~node:(k / 3) ~label:(k mod 3)) in
  let shifted = Array.map (fun c -> c +. 0.5) u in
  let m' = Mrf.with_unaries m shifted in
  Alcotest.(check (float 1e-9)) "energy shifts by n * 0.5" (e0 +. 4.0)
    (Mrf.energy m' x);
  Alcotest.(check (float 1e-9)) "original untouched" e0 (Mrf.energy m x);
  match Mrf.with_unaries m [| 0.0 |] with
  | _ -> Alcotest.fail "accepted wrong unary length"
  | exception Invalid_argument _ -> ()

let test_solve_zoned_single_zone_matches_solve () =
  (* one zone must be the sequential solver, bit for bit — whether the
     zone count is given explicitly, via a constant zone map, or falls
     out of the size default *)
  for seed = 70 to 74 do
    let m = random_mrf (rng seed) 30 3 0.15 in
    let base = Trws.solve m in
    List.iter
      (fun (label, r) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s energy bitwise seed=%d" label seed)
          true
          (base.Solver.energy = r.Solver.energy);
        Alcotest.(check bool)
          (Printf.sprintf "%s bound bitwise seed=%d" label seed)
          true
          (base.Solver.lower_bound = r.Solver.lower_bound);
        Alcotest.(check (array int))
          (Printf.sprintf "%s labeling seed=%d" label seed)
          base.Solver.labeling r.Solver.labeling;
        Alcotest.(check int)
          (Printf.sprintf "%s iterations seed=%d" label seed)
          base.Solver.iterations r.Solver.iterations)
      [
        ("zones=1", Trws.solve_zoned ~zones:1 ~jobs:1 m);
        ("constant zone map", Trws.solve_zoned ~zone_of:(Array.make 30 7) m);
        ("size default", Trws.solve_zoned m);
      ]
  done

let test_solve_zoned_jobs_invariant () =
  with_hardware_jobs 4 (fun () ->
      for seed = 75 to 78 do
        let m = random_mrf (rng seed) 40 3 0.12 in
        let zone_of = Array.init 40 (fun i -> i / 10) in
        let r1 = Trws.solve_zoned ~zone_of ~jobs:1 m in
        List.iter
          (fun jobs ->
            let r = Trws.solve_zoned ~zone_of ~jobs m in
            Alcotest.(check bool)
              (Printf.sprintf "energy bitwise seed=%d jobs=%d" seed jobs)
              true
              (r1.Solver.energy = r.Solver.energy);
            Alcotest.(check bool)
              (Printf.sprintf "bound bitwise seed=%d jobs=%d" seed jobs)
              true
              (r1.Solver.lower_bound = r.Solver.lower_bound);
            Alcotest.(check (array int))
              (Printf.sprintf "labeling seed=%d jobs=%d" seed jobs)
              r1.Solver.labeling r.Solver.labeling;
            Alcotest.(check int)
              (Printf.sprintf "iterations seed=%d jobs=%d" seed jobs)
              r1.Solver.iterations r.Solver.iterations)
          [ 2; 4 ];
        (* dual decomposition must keep the sandwich *)
        Alcotest.(check (float 1e-9)) "labeling consistent with energy"
          r1.Solver.energy
          (Mrf.energy m r1.Solver.labeling);
        Alcotest.(check bool) "bound below energy" true
          (r1.Solver.lower_bound <= r1.Solver.energy +. 1e-9)
      done)

let test_solve_zoned_bound_valid () =
  (* zone bound + edge-slave minima must stay below the true optimum on
     instances small enough to enumerate *)
  for seed = 80 to 84 do
    let m = random_mrf (rng seed) 7 3 0.5 in
    let exact = Brute.solve m in
    let r = Trws.solve_zoned ~zones:3 ~rounds:6 m in
    Alcotest.(check bool)
      (Printf.sprintf "bound below optimum seed=%d" seed)
      true
      (r.Solver.lower_bound <= exact.Solver.energy +. 1e-7);
    Alcotest.(check bool)
      (Printf.sprintf "primal above optimum seed=%d" seed)
      true
      (r.Solver.energy >= exact.Solver.energy -. 1e-9)
  done

(* ------------------------------------------------------------- property *)

let mrf_gen =
  QCheck2.Gen.(
    let* seed = 0 -- 100_000 in
    let* n = 2 -- 7 in
    let* k = 2 -- 4 in
    return (random_mrf (Random.State.make [| seed |]) n k 0.5))

let prop_trws_sandwich =
  QCheck2.Test.make ~count:60
    ~name:"TRW-S: bound <= optimum <= decoded energy" mrf_gen (fun m ->
      let exact = Brute.solve m in
      let r = Trws.solve m in
      r.Solver.lower_bound <= exact.Solver.energy +. 1e-7
      && r.Solver.energy >= exact.Solver.energy -. 1e-9)

let prop_decode_valid =
  QCheck2.Test.make ~count:60 ~name:"solvers return valid labelings"
    mrf_gen (fun m ->
      List.for_all
        (fun (r : Solver.result) ->
          match Mrf.validate_labeling m r.Solver.labeling with
          | () -> abs_float (Mrf.energy m r.labeling -. r.energy) < 1e-9
          | exception Invalid_argument _ -> false)
        [ Trws.solve m; Bp.solve m; Icm.solve m ])

let () =
  Alcotest.run "mrf"
    [
      ( "model",
        [
          Alcotest.test_case "builder basics" `Quick test_builder_basic;
          Alcotest.test_case "builder validation" `Quick
            test_builder_validation;
          Alcotest.test_case "energy validation" `Quick
            test_energy_validation;
          Alcotest.test_case "incidence ordering" `Quick test_incident;
          Alcotest.test_case "shared pairwise matrices" `Quick
            test_shared_matrix;
          Alcotest.test_case "interned pairwise tables" `Quick
            test_interned_tables;
        ] );
      ( "kernels",
        [
          Alcotest.test_case "classifier on structured tables" `Quick
            test_kernel_classify;
          Alcotest.test_case "kernel census exposed in stats" `Quick
            test_kernel_stats_exposed;
          Alcotest.test_case "specialized = generic, bitwise" `Quick
            test_kernel_equivalence;
        ] );
      ( "solvers",
        [
          Alcotest.test_case "trws tiny exact" `Quick test_trws_tiny_exact;
          Alcotest.test_case "trws exact and tight on trees" `Quick
            test_trws_trees_exact;
          Alcotest.test_case "all solvers vs brute force" `Quick
            test_solvers_vs_brute_loopy;
          Alcotest.test_case "bound below decoded energy" `Quick
            test_trws_bound_below_decoded;
          Alcotest.test_case "icm reaches a local optimum" `Quick
            test_icm_local_optimum;
          Alcotest.test_case "icm improves its init" `Quick
            test_icm_respects_init;
          Alcotest.test_case "brute enumerates fully" `Quick
            test_brute_counts;
          Alcotest.test_case "brute respects limit" `Quick test_brute_limit;
          Alcotest.test_case "isolated nodes" `Quick test_isolated_nodes;
          Alcotest.test_case "sa vs brute force" `Quick test_sa_vs_brute;
          Alcotest.test_case "sa deterministic" `Quick test_sa_deterministic;
          Alcotest.test_case "sa improves init" `Quick test_sa_improves_init;
          Alcotest.test_case "sa config validation" `Quick
            test_sa_config_validation;
          Alcotest.test_case "sa parallel = sequential" `Quick
            test_sa_parallel_matches_sequential;
          Alcotest.test_case "sa oversubscribed domains" `Quick
            test_sa_oversubscribed;
          Alcotest.test_case "per-component trws" `Quick
            test_solve_components;
          Alcotest.test_case "bnb certifies small instances" `Quick
            test_bnb_exact;
          Alcotest.test_case "bnb node limit" `Quick test_bnb_node_limit;
          Alcotest.test_case "bnb certifies trees" `Quick test_bnb_tree_fast;
          Alcotest.test_case "parallel edges" `Quick test_parallel_edges;
        ] );
      ( "intra-component",
        [
          Alcotest.test_case "greedy coloring is proper" `Quick
            test_greedy_coloring_proper;
          Alcotest.test_case "partitioned trws, parts=1 = solve" `Quick
            test_trws_partitioned_matches_solve;
          Alcotest.test_case "partitioned trws jobs-invariant" `Quick
            test_trws_partitioned_jobs_invariant;
          Alcotest.test_case "chromatic bp jobs-invariant" `Quick
            test_bp_chromatic_jobs_invariant;
          Alcotest.test_case "parallel schedules on structured kernels"
            `Quick test_parallel_schedules_on_structured_kernels;
        ] );
      ( "zoned",
        [
          Alcotest.test_case "compact accessors agree with incident" `Quick
            test_compact_accessors;
          Alcotest.test_case "footprint accounting" `Quick test_footprint;
          Alcotest.test_case "with_unaries reparameterization" `Quick
            test_with_unaries;
          Alcotest.test_case "zoned trws, zones=1 = solve" `Quick
            test_solve_zoned_single_zone_matches_solve;
          Alcotest.test_case "zoned trws jobs-invariant" `Quick
            test_solve_zoned_jobs_invariant;
          Alcotest.test_case "zoned bound stays valid" `Quick
            test_solve_zoned_bound_valid;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_trws_sandwich;
          QCheck_alcotest.to_alcotest prop_decode_valid;
        ] );
    ]
