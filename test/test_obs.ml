(* Tests for Netdiv_obs: span nesting/ordering, the disabled fast path,
   histogram bucket edges, Chrome-trace/JSONL validity via the in-repo
   JSON parser, per-domain buffer merging under the pool sanitizer, and
   the runner's stage-timing histograms. *)

module Obs = Netdiv_obs.Obs
module Export = Netdiv_obs.Export
module Json = Netdiv_vuln.Json
module Pool = Netdiv_par.Pool

open Netdiv_mrf

(* every test owns the global registries: start clean, leave disabled *)
let scoped f () =
  Obs.set_enabled false;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.set_enabled false;
      Obs.reset ())
    f

let kind_label = function
  | Obs.Begin -> "B"
  | Obs.End -> "E"
  | Obs.Instant -> "i"
  | Obs.Sample -> "C"

let pp_event ppf (e : Obs.event) =
  Format.fprintf ppf "%s:%s" (kind_label e.Obs.kind) e.Obs.name

let shape events = List.map (Format.asprintf "%a" pp_event) events

(* ------------------------------------------------------ span ordering *)

let test_span_nesting () =
  Obs.set_enabled true;
  let r =
    Obs.span ~name:"outer" (fun () ->
        Obs.instant "mark";
        Obs.span ~name:"inner" (fun () -> 7))
  in
  Alcotest.(check int) "span returns the body's value" 7 r;
  let events = Obs.events () in
  Alcotest.(check (list string))
    "nested begin/end order"
    [ "B:outer"; "i:mark"; "B:inner"; "E:inner"; "E:outer" ]
    (shape events);
  let ts = List.map (fun (e : Obs.event) -> e.Obs.ts) events in
  Alcotest.(check bool)
    "timestamps are non-decreasing" true
    (List.sort compare ts = ts);
  Alcotest.(check int)
    "single-domain run uses one buffer" 1
    (List.length
       (List.sort_uniq compare
          (List.map (fun (e : Obs.event) -> e.Obs.tid) events)))

let test_span_exception_safe () =
  Obs.set_enabled true;
  (try Obs.span ~name:"boom" (fun () -> failwith "expected") with
  | Failure _ -> ());
  Alcotest.(check (list string))
    "the End event survives the raise"
    [ "B:boom"; "E:boom" ]
    (shape (Obs.events ()))

let test_disabled_is_silent () =
  Alcotest.(check bool) "flag starts off" false (Obs.enabled ());
  Obs.span ~name:"quiet" (fun () -> ());
  Obs.begin_span "quiet";
  Obs.end_span "quiet";
  Obs.instant "quiet";
  Obs.sample ~name:"quiet" 1.0;
  let c = Obs.Counter.make "test.off_counter" in
  Obs.Counter.add c 5;
  let h = Obs.Histogram.make "test.off_hist" in
  Obs.Histogram.record h 1.0;
  Alcotest.(check (list string)) "no events recorded" [] (shape (Obs.events ()));
  Alcotest.(check int) "counter unchanged" 0 (Obs.Counter.value c);
  Alcotest.(check int) "histogram unchanged" 0 (Obs.Histogram.count h)

(* ------------------------------------------------------------ metrics *)

let test_counter_gauge () =
  Obs.set_enabled true;
  let c = Obs.Counter.make "test.counter" in
  Alcotest.(check bool)
    "make is get-or-create" true
    (c == Obs.Counter.make "test.counter");
  Obs.Counter.add c 3;
  Obs.Counter.incr c;
  Alcotest.(check int) "counter accumulates" 4 (Obs.Counter.value c);
  let g = Obs.Gauge.make "test.gauge" in
  Alcotest.(check bool)
    "gauge starts nan" true
    (Float.is_nan (Obs.Gauge.value g));
  Obs.Gauge.set g 2.5;
  Alcotest.(check (float 0.0)) "gauge stores" 2.5 (Obs.Gauge.value g);
  Obs.reset ();
  Alcotest.(check int) "reset zeroes counters" 0 (Obs.Counter.value c);
  Alcotest.(check bool)
    "reset clears gauges" true
    (Float.is_nan (Obs.Gauge.value g))

let test_histogram_buckets () =
  let base = Obs.Histogram.base in
  let checks =
    [
      ("zero", 0.0, 0);
      ("negative", -1.0, 0);
      ("nan", Float.nan, 0);
      ("below base", base /. 2.0, 0);
      ("base lands in bucket 1", base, 1);
      ("inside bucket 1", base *. 1.5, 1);
      ("next power of two opens bucket 2", base *. 2.0, 2);
      ("bucket 3", base *. 4.0, 3);
      ("overflow clamps to the last bucket", 1e30, Obs.Histogram.n_buckets - 1);
    ]
  in
  List.iter
    (fun (msg, v, expect) ->
      Alcotest.(check int) msg expect (Obs.Histogram.bucket_of v))
    checks;
  (* lower edges are exact powers of two over the base *)
  Alcotest.(check (float 0.0)) "bucket 0 lower" 0.0 (Obs.Histogram.bucket_lower 0);
  Alcotest.(check (float 0.0)) "bucket 1 lower" base (Obs.Histogram.bucket_lower 1);
  Alcotest.(check (float 0.0))
    "bucket 4 lower" (base *. 8.0)
    (Obs.Histogram.bucket_lower 4);
  (* every recorded value lands in the bucket whose edges contain it *)
  Obs.set_enabled true;
  let h = Obs.Histogram.make "test.hist" in
  List.iter (fun (_, v, _) -> Obs.Histogram.record h v) checks;
  Alcotest.(check int) "count tracks records" (List.length checks)
    (Obs.Histogram.count h);
  let buckets = Obs.Histogram.buckets h in
  List.iter
    (fun (msg, _, expect) ->
      Alcotest.(check bool) (msg ^ ": bucket populated") true
        (buckets.(expect) > 0))
    checks

(* -------------------------------------------------- export round-trip *)

let record_sample_trace () =
  Obs.set_enabled true;
  Obs.span ~name:"solve" (fun () ->
      Obs.span ~name:"sweep" (fun () -> Obs.sample ~name:"energy" 12.5);
      Obs.span ~name:"sweep" (fun () ->
          Obs.sample ~name:"energy" neg_infinity);
      Obs.instant "converged")

let test_chrome_round_trip () =
  record_sample_trace ();
  let events = Obs.events () in
  let json =
    match Json.parse (Export.chrome_string ()) with
    | Ok j -> j
    | Error msg -> Alcotest.failf "chrome trace does not parse: %s" msg
  in
  let trace_events =
    match Option.bind (Json.member "traceEvents" json) Json.to_list with
    | Some l -> l
    | None -> Alcotest.fail "no traceEvents list"
  in
  Alcotest.(check int)
    "one trace object per recorded event"
    (List.length events)
    (List.length trace_events);
  (* rebased timestamps start at zero and every object is well-formed *)
  List.iteri
    (fun i ev ->
      let str field = Option.bind (Json.member field ev) Json.to_str in
      let num field = Option.bind (Json.member field ev) Json.to_float in
      (match (str "name", str "ph", num "ts", num "pid", num "tid") with
      | Some _, Some ph, Some ts, Some _, Some _ ->
          Alcotest.(check bool)
            (Printf.sprintf "event %d has a known phase" i)
            true
            (List.mem ph [ "B"; "E"; "i"; "C" ]);
          Alcotest.(check bool)
            (Printf.sprintf "event %d timestamp rebased" i)
            true (ts >= 0.0)
      | _ -> Alcotest.failf "event %d lacks a required field" i))
    trace_events;
  (* the non-finite sample value survived as a JSON string *)
  let carries_string_value ev =
    match Json.path [ "args"; "value" ] ev with
    | Some (Json.String _) -> true
    | _ -> false
  in
  Alcotest.(check bool)
    "non-finite sample exported as a string" true
    (List.exists carries_string_value trace_events)

let test_jsonl_round_trip () =
  record_sample_trace ();
  let lines =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' (Export.jsonl_string ()))
  in
  Alcotest.(check int)
    "one line per event"
    (List.length (Obs.events ()))
    (List.length lines);
  List.iteri
    (fun i line ->
      match Json.parse line with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "line %d does not parse: %s" i msg)
    lines

let test_span_rollup () =
  record_sample_trace ();
  let rollup = Export.span_rollup (Obs.events ()) in
  let count name =
    match List.find_opt (fun (n, _, _, _) -> n = name) rollup with
    | Some (_, c, _, _) -> c
    | None -> 0
  in
  Alcotest.(check int) "two sweep spans" 2 (count "sweep");
  Alcotest.(check int) "one solve span" 1 (count "solve");
  List.iter
    (fun (name, _, total, mx) ->
      Alcotest.(check bool) (name ^ ": max <= total") true (mx <= total +. 1e-12))
    rollup

(* ------------------------------------- per-domain buffers + sanitizer *)

let test_parallel_merge () =
  Obs.set_enabled true;
  Pool.set_sanitize (Some true);
  Fun.protect ~finally:(fun () -> Pool.set_sanitize None) @@ fun () ->
  let n = 200 in
  let hits = Array.make n 0 in
  Pool.parallel_for ~jobs:4 ~lo:0 ~hi:n (fun i ->
      Obs.begin_span "work";
      hits.(i) <- hits.(i) + 1;
      Obs.end_span "work");
  Alcotest.(check bool)
    "sanitizer saw every index exactly once" true
    (Array.for_all (fun h -> h = 1) hits);
  let events = Obs.events () in
  let count k name =
    List.length
      (List.filter
         (fun (e : Obs.event) -> e.Obs.kind = k && e.Obs.name = name)
         events)
  in
  Alcotest.(check int) "every index opened a work span" n (count Obs.Begin "work");
  Alcotest.(check int) "every work span closed" n (count Obs.End "work");
  Alcotest.(check int) "one region span" 1 (count Obs.Begin "pool.region");
  Alcotest.(check bool)
    "chunk spans recorded" true
    (count Obs.Begin "pool.chunk" >= 1);
  (* within each buffer, begin/end pairs are balanced and never go
     negative — the per-domain recording order is preserved by the merge *)
  let tids =
    List.sort_uniq compare (List.map (fun (e : Obs.event) -> e.Obs.tid) events)
  in
  List.iter
    (fun tid ->
      let depth = ref 0 in
      List.iter
        (fun (e : Obs.event) ->
          if e.Obs.tid = tid && e.Obs.name = "work" then begin
            (match e.Obs.kind with
            | Obs.Begin -> incr depth
            | Obs.End -> decr depth
            | _ -> ());
            if !depth < 0 then
              Alcotest.failf "tid %d: end before begin after merging" tid
          end)
        events;
      Alcotest.(check int)
        (Printf.sprintf "tid %d: balanced spans" tid)
        0 !depth)
    tids;
  (* pool telemetry fired: chunks dispatched and busy time recorded *)
  Alcotest.(check bool)
    "pool.chunks counter counts dispatches" true
    (Obs.Counter.value (Obs.Counter.make "pool.chunks") >= 1);
  Alcotest.(check bool)
    "chunk busy-time histogram populated" true
    (Obs.Histogram.count (Obs.Histogram.make "pool.chunk_busy_s") >= 1)

(* the merged name multiset is independent of the job count *)
let test_merge_deterministic_across_jobs () =
  Obs.set_enabled true;
  Pool.set_sanitize (Some true);
  Fun.protect ~finally:(fun () -> Pool.set_sanitize None) @@ fun () ->
  let run jobs =
    Obs.reset ();
    Pool.parallel_for ~jobs ~lo:0 ~hi:64 (fun i ->
        Obs.span ~name:(Printf.sprintf "item%d" (i mod 4)) (fun () -> ()));
    (* the pool's own chunk spans scale with the job count by design;
       the caller-visible spans must not *)
    List.sort compare
      (List.filter
         (fun s -> not (String.length s > 6 && String.sub s 2 4 = "pool"))
         (shape (Obs.events ())))
  in
  let serial = run 1 in
  List.iter
    (fun jobs ->
      Alcotest.(check (list string))
        (Printf.sprintf "event multiset identical at %d jobs" jobs)
        serial (run jobs))
    [ 2; 4 ]

(* ------------------------------------------------- runner integration *)

let tiny_mrf () =
  let rng = Random.State.make [| 11 |] in
  let k = 3 in
  let n = 8 in
  let b = Mrf.Builder.create ~label_counts:(Array.make n k) in
  for i = 0 to n - 1 do
    Mrf.Builder.set_unary b ~node:i
      (Array.init k (fun _ -> Random.State.float rng 1.0))
  done;
  for u = 0 to n - 2 do
    Mrf.Builder.add_edge b u (u + 1)
      (Array.init (k * k) (fun _ -> Random.State.float rng 1.0))
  done;
  Mrf.Builder.build b

let test_runner_stage_metrics () =
  Obs.set_enabled true;
  let mrf = tiny_mrf () in
  let report =
    Runner.run
      ~budget:(Runner.Budget.seconds 30.0)
      ~stages:[ Runner.trws () ]
      mrf
  in
  (* the stage timing list and the histogram come from one measurement *)
  Alcotest.(check int)
    "stage_timings still populated" 1
    (List.length report.Runner.stage_timings);
  let h = Obs.Histogram.make "runner.stage.trws" in
  Alcotest.(check int) "stage histogram recorded once" 1 (Obs.Histogram.count h);
  let _, elapsed = List.hd report.Runner.stage_timings in
  Alcotest.(check bool)
    "histogram sum matches the reported timing" true
    (abs_float (Obs.Histogram.sum h -. elapsed) < 1e-9);
  (* the stage solve appears as a span *)
  Alcotest.(check bool)
    "runner stage span present" true
    (List.mem "B:runner.stage:trws" (shape (Obs.events ())))

(* --------------------------------------------------- flight recorder *)

module Recorder = Netdiv_obs.Recorder
module Obs_report = Netdiv_obs.Report
module Fault = Netdiv_fault.Fault

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_recorder_ring_wraparound () =
  let r = Recorder.create ~capacity:4 "ring" in
  Recorder.with_recorder r (fun () ->
      for i = 0 to 9 do
        Recorder.sweep ~iter:i ~energy:(float_of_int i) ~bound:0.0
          ~residual:0.0 ~msg_potts:i ~msg_sparse:0 ~msg_generic:0
      done);
  Alcotest.(check string) "name round-trips" "ring" (Recorder.name r);
  Alcotest.(check int) "capacity round-trips" 4 (Recorder.capacity r);
  Alcotest.(check int) "recorded counts every frame" 10 (Recorder.recorded r);
  Alcotest.(check int) "dropped = recorded - capacity" 6 (Recorder.dropped r);
  let iters =
    List.filter_map
      (function Recorder.Sweep s -> Some s.Recorder.s_iter | _ -> None)
      (Recorder.frames r)
  in
  Alcotest.(check (list int))
    "last capacity frames survive, oldest first" [ 6; 7; 8; 9 ] iters;
  (* capacity is clamped, never zero *)
  let tiny = Recorder.create ~capacity:0 "tiny" in
  Recorder.with_recorder tiny (fun () ->
      Recorder.mark "a";
      Recorder.mark "b");
  Alcotest.(check int) "clamped capacity retains one frame" 1
    (List.length (Recorder.frames tiny))

let test_recorder_install_and_suspend () =
  let r = Recorder.create "inst" in
  Recorder.mark "outside";
  Alcotest.(check int) "record is a no-op without installation" 0
    (Recorder.recorded r);
  Recorder.with_recorder r (fun () ->
      Alcotest.(check bool) "installed inside" true (Recorder.installed ());
      Recorder.mark "inside";
      Recorder.suspended (fun () ->
          Alcotest.(check bool) "blank under suspended" false
            (Recorder.installed ());
          Recorder.mark "suppressed"));
  Alcotest.(check bool) "uninstalled after" false (Recorder.installed ());
  (try Recorder.with_recorder r (fun () -> failwith "expected") with
  | Failure _ -> ());
  Alcotest.(check bool) "uninstalled after a raise" false
    (Recorder.installed ());
  Alcotest.(check int) "only the installed mark was recorded" 1
    (Recorder.recorded r)

let test_recorder_dump_parses () =
  let r = Recorder.create ~capacity:8 "dump" in
  Recorder.with_recorder r (fun () ->
      Recorder.mark "stage:trws";
      Recorder.sweep ~iter:1 ~energy:3.5 ~bound:neg_infinity ~residual:0.25
        ~msg_potts:10 ~msg_sparse:4 ~msg_generic:0;
      Recorder.zone ~round:1 ~zone:0 ~energy:2.0 ~bound:1.0 ~iterations:7
        ~converged:true;
      Recorder.boundary ~round:1 ~disagree:3 ~edge_bound:(-0.5)
        ~zone_bound:1.5 ~step:0.25);
  let json =
    match Json.parse (Recorder.dump_string ~reason:"unit" r) with
    | Ok j -> j
    | Error msg -> Alcotest.failf "dump does not parse: %s" msg
  in
  Alcotest.(check (option string))
    "reason field" (Some "unit")
    (Option.bind (Json.member "reason" json) Json.to_str);
  Alcotest.(check (option (float 0.0)))
    "version marker" (Some 1.0)
    (Option.bind (Json.member "netdiv_recorder" json) Json.to_float);
  let frames =
    match Option.bind (Json.member "frames" json) Json.to_list with
    | Some l -> l
    | None -> Alcotest.fail "no frames list"
  in
  Alcotest.(check int) "one object per frame" 4 (List.length frames);
  let kinds =
    List.filter_map (fun f -> Option.bind (Json.member "k" f) Json.to_str)
      frames
  in
  Alcotest.(check (list string))
    "frame kinds in record order"
    [ "mark"; "sweep"; "zone"; "boundary" ]
    kinds;
  (* the non-finite bound crossed the JSON boundary as a string *)
  let sweep = List.nth frames 1 in
  (match Json.member "bound" sweep with
  | Some (Json.String _) -> ()
  | _ -> Alcotest.fail "non-finite bound not serialized as a string");
  (* a dump with neither path nor dump_path is Ok and writes nothing *)
  (match Recorder.dump ~reason:"nowhere" r with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "pathless dump failed: %s" msg);
  Alcotest.(check (option string))
    "pathless dump does not count as written" None (Recorder.last_dump r)

let test_recorder_dump_on_degradation () =
  let path = Filename.temp_file "netdiv_rec" ".json" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let r = Recorder.create ~dump_path:path "degrade" in
  Fault.set_spec (Some "runner.stage@0,runner.stage@1,runner.stage@2");
  Fault.reset ();
  let report =
    Fun.protect
      ~finally:(fun () ->
        Fault.set_spec None;
        Fault.reset ())
      (fun () ->
        Recorder.with_recorder r (fun () ->
            Runner.run
              ~budget:(Runner.Budget.seconds 30.0)
              ~stages:[ Runner.trws () ]
              (tiny_mrf ())))
  in
  (match report.Runner.outcome with
  | Runner.Degraded _ -> ()
  | o ->
      Alcotest.failf "expected a degraded outcome, got %a" Runner.pp_outcome o);
  (* the runner dumped the black box, first on degradation and finally
     with the run's outcome as the reason *)
  (match Recorder.last_dump r with
  | Some reason ->
      Alcotest.(check bool)
        "last dump carries the degraded outcome" true
        (String.length reason >= 8 && String.sub reason 0 8 = "degraded")
  | None -> Alcotest.fail "no dump was written");
  let json =
    match Json.parse (read_file path) with
    | Ok j -> j
    | Error msg -> Alcotest.failf "on-disk dump does not parse: %s" msg
  in
  let labels =
    match Option.bind (Json.member "frames" json) Json.to_list with
    | Some frames ->
        List.filter_map
          (fun f -> Option.bind (Json.member "label" f) Json.to_str)
          frames
    | None -> Alcotest.fail "on-disk dump has no frames"
  in
  Alcotest.(check bool)
    "degradation mark present" true
    (List.exists
       (fun l ->
         String.length l >= 8 && String.sub l 0 8 = "degrade:")
       labels);
  Alcotest.(check bool)
    "retry marks present" true
    (List.exists
       (fun l -> String.length l >= 6 && String.sub l 0 6 = "retry:")
       labels)

(* two 4-node chains and an isolated node: three components, so
   [Trws.solve_components] exercises the suspended parallel region and
   the deterministic per-component zone frames *)
let components_mrf () =
  let b = Mrf.Builder.create ~label_counts:(Array.make 9 3) in
  let rng = Random.State.make [| 77 |] in
  for i = 0 to 8 do
    Mrf.Builder.set_unary b ~node:i
      (Array.init 3 (fun _ -> Random.State.float rng 1.0))
  done;
  List.iter
    (fun (u, v) ->
      Mrf.Builder.add_edge b u v
        (Array.init 9 (fun _ -> Random.State.float rng 1.0)))
    [ (0, 1); (1, 2); (2, 3); (4, 5); (5, 6); (6, 7) ];
  Mrf.Builder.build b

let test_recorder_parallel_sanitized () =
  Pool.set_sanitize (Some true);
  Fun.protect ~finally:(fun () -> Pool.set_sanitize None) @@ fun () ->
  let m = components_mrf () in
  let plain = Trws.solve_components ~jobs:2 m in
  let r = Recorder.create "par" in
  let recorded =
    Recorder.with_recorder r (fun () -> Trws.solve_components ~jobs:2 m)
  in
  (* the recorder must not perturb the solve: bitwise-identical result *)
  Alcotest.(check bool) "energy bitwise with recorder" true
    (plain.Solver.energy = recorded.Solver.energy);
  Alcotest.(check bool) "bound bitwise with recorder" true
    (plain.Solver.lower_bound = recorded.Solver.lower_bound);
  Alcotest.(check (array int))
    "labeling with recorder" plain.Solver.labeling recorded.Solver.labeling;
  (* orchestrator frames: one zone frame per component plus the summary
     sweep, recorded after the suspended parallel region *)
  let frames = Recorder.frames r in
  let zones =
    List.filter_map
      (function Recorder.Zone z -> Some z.Recorder.z_zone | _ -> None)
      frames
  in
  Alcotest.(check (list int)) "one frame per component, in order"
    [ 0; 1; 2 ] zones;
  Alcotest.(check int) "one summary sweep frame" 1
    (List.length
       (List.filter
          (function Recorder.Sweep _ -> true | _ -> false)
          frames))

let test_recorder_report_analysis () =
  let r = Recorder.create "an" in
  Recorder.with_recorder r (fun () ->
      Recorder.zone ~round:1 ~zone:0 ~energy:10.0 ~bound:9.0 ~iterations:5
        ~converged:true;
      Recorder.zone ~round:1 ~zone:1 ~energy:20.0 ~bound:12.0 ~iterations:5
        ~converged:false;
      Recorder.boundary ~round:1 ~disagree:4 ~edge_bound:(-1.0)
        ~zone_bound:21.0 ~step:0.5;
      Recorder.sweep ~iter:1 ~energy:30.0 ~bound:20.0 ~residual:1.0
        ~msg_potts:0 ~msg_sparse:0 ~msg_generic:0;
      Recorder.zone ~round:2 ~zone:0 ~energy:10.0 ~bound:9.5 ~iterations:3
        ~converged:true;
      Recorder.zone ~round:2 ~zone:1 ~energy:18.0 ~bound:13.0 ~iterations:4
        ~converged:true;
      Recorder.boundary ~round:2 ~disagree:0 ~edge_bound:(-0.5)
        ~zone_bound:23.0 ~step:0.25;
      Recorder.sweep ~iter:2 ~energy:28.0 ~bound:22.5 ~residual:0.5
        ~msg_potts:0 ~msg_sparse:0 ~msg_generic:0);
  let frames = Recorder.frames r in
  (* zone attribution keeps only the last round, sorted by gap *)
  let attr = Obs_report.zone_attribution frames in
  Alcotest.(check (list int))
    "last-round zones, widest gap first" [ 1; 0 ]
    (List.map (fun (z : Obs_report.zone_gap) -> z.Obs_report.z_zone) attr);
  Alcotest.(check (float 1e-9)) "gap of the top zone" 5.0
    (List.hd attr).Obs_report.z_gap;
  (* all boundary edges agreed in the final round *)
  Alcotest.(check string)
    "reconciled diagnosis"
    "zones agree on every boundary edge (primal/dual reconciled)"
    (Obs_report.diagnose frames);
  (* the renderer is a pure function of the frames *)
  let render () = Format.asprintf "%a" Obs_report.pp_convergence frames in
  Alcotest.(check string) "rendering is deterministic" (render ()) (render ());
  (* milestone table finds the first sweep at or under each threshold *)
  let ms = Obs_report.gap_milestones frames in
  Alcotest.(check bool) "50% milestone reached" true
    (List.exists (fun m -> m.Obs_report.m_gap_pct = 50.0) ms);
  Alcotest.(check bool) "0.1% milestone not reached" true
    (not (List.exists (fun m -> m.Obs_report.m_gap_pct = 0.1) ms))

let () =
  Alcotest.run "netdiv_obs"
    [
      ( "spans",
        [
          Alcotest.test_case "nesting and ordering" `Quick
            (scoped test_span_nesting);
          Alcotest.test_case "exception safety" `Quick
            (scoped test_span_exception_safe);
          Alcotest.test_case "disabled path records nothing" `Quick
            (scoped test_disabled_is_silent);
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters and gauges" `Quick
            (scoped test_counter_gauge);
          Alcotest.test_case "histogram bucket edges" `Quick
            (scoped test_histogram_buckets);
        ] );
      ( "export",
        [
          Alcotest.test_case "chrome trace round-trip" `Quick
            (scoped test_chrome_round_trip);
          Alcotest.test_case "jsonl round-trip" `Quick
            (scoped test_jsonl_round_trip);
          Alcotest.test_case "span rollup" `Quick (scoped test_span_rollup);
        ] );
      ( "parallel",
        [
          Alcotest.test_case "per-domain merge under sanitizer" `Quick
            (scoped test_parallel_merge);
          Alcotest.test_case "merge deterministic across jobs" `Quick
            (scoped test_merge_deterministic_across_jobs);
        ] );
      ( "runner",
        [
          Alcotest.test_case "stage timings via registry" `Quick
            (scoped test_runner_stage_metrics);
        ] );
      ( "recorder",
        [
          Alcotest.test_case "ring wraparound" `Quick
            (scoped test_recorder_ring_wraparound);
          Alcotest.test_case "installation and suspension" `Quick
            (scoped test_recorder_install_and_suspend);
          Alcotest.test_case "dump round-trip" `Quick
            (scoped test_recorder_dump_parses);
          Alcotest.test_case "dump on runner degradation" `Quick
            (scoped test_recorder_dump_on_degradation);
          Alcotest.test_case "parallel recording under sanitizer" `Quick
            (scoped test_recorder_parallel_sanitized);
          Alcotest.test_case "report analyses" `Quick
            (scoped test_recorder_report_analysis);
        ] );
    ]
