(* Tests for the random-instance generator behind the scalability study. *)

open Netdiv_workload.Workload
module Network = Netdiv_core.Network
module Graph = Netdiv_graph.Graph
module Traversal = Netdiv_graph.Traversal
module Mrf = Netdiv_mrf.Mrf

let test_default_shape () =
  let net = instance default in
  Alcotest.(check int) "hosts" 1000 (Network.n_hosts net);
  Alcotest.(check int) "services" 15 (Network.n_services net);
  Alcotest.(check int) "edges = n*deg/2" 10_000
    (Graph.n_edges (Network.graph net));
  Alcotest.(check int) "products" 4 (Network.n_products net 0);
  Alcotest.(check int) "slots" 15_000 (Array.length (Network.slots net))

let test_deterministic () =
  let p = { default with hosts = 100; services = 3; seed = 9 } in
  let a = instance p and b = instance p in
  Alcotest.(check bool) "same graphs" true
    (Graph.edges (Network.graph a) = Graph.edges (Network.graph b));
  Alcotest.(check (float 1e-12)) "same similarities"
    (Network.similarity a ~service:1 0 3)
    (Network.similarity b ~service:1 0 3)

let test_connected () =
  let net = instance { default with hosts = 500; degree = 4 } in
  Alcotest.(check bool) "connected" true
    (Traversal.is_connected (Network.graph net))

let test_invalid_params () =
  match instance { default with hosts = 0 } with
  | _ -> Alcotest.fail "accepted zero hosts"
  | exception Invalid_argument _ -> ()

let test_synthetic_similarity_valid () =
  let rng = Random.State.make [| 4 |] in
  for products = 1 to 8 do
    let m = synthetic_similarity ~rng ~products in
    Alcotest.(check int) "size" (products * products) (Array.length m);
    for i = 0 to products - 1 do
      Alcotest.(check (float 1e-12)) "diag" 1.0 m.((i * products) + i);
      for j = 0 to products - 1 do
        let v = m.((i * products) + j) in
        Alcotest.(check bool) "bounds" true (v >= 0.0 && v <= 1.0);
        Alcotest.(check (float 1e-12)) "symmetric" v m.((j * products) + i)
      done
    done
  done

let test_cross_family_zero () =
  let rng = Random.State.make [| 5 |] in
  let products = 6 in
  let m = synthetic_similarity ~rng ~products in
  (* families are [0..2] and [3..5] *)
  for i = 0 to 2 do
    for j = 3 to 5 do
      Alcotest.(check (float 1e-12)) "cross family" 0.0
        m.((i * products) + j)
    done
  done

let test_optimizable () =
  (* the whole point: the optimizer runs on generated instances and beats
     the homogeneous baseline *)
  let net =
    instance { hosts = 60; degree = 6; services = 3;
               products_per_service = 4; seed = 3 }
  in
  let report = Netdiv_core.Optimize.run net [] in
  Alcotest.(check bool) "constraints ok" true
    report.Netdiv_core.Optimize.constraints_ok;
  let e = Netdiv_core.Encode.encode net [] in
  let mono_energy =
    Netdiv_core.Encode.assignment_energy e (Netdiv_core.Assignment.mono net)
  in
  Alcotest.(check bool) "beats mono" true
    (report.Netdiv_core.Optimize.energy < mono_energy)

(* ------------------------------------------------- zoned streaming *)

let zp =
  { z_hosts = 200; z_zones = 5; z_degree = 4; z_gateway_links = 3;
    z_services = 3; z_products = 4; z_seed = 7 }

let test_stream_zoned_shape () =
  let model, zone_of = stream_zoned zp in
  Alcotest.(check int) "variables = hosts * services" 600 (Mrf.n_nodes model);
  Alcotest.(check int) "one shared table per service" 3 (Mrf.n_tables model);
  Alcotest.(check int) "zone map covers every variable" 600
    (Array.length zone_of);
  (* hosts are generated zone by zone, so the per-variable zone map is
     nondecreasing and every zone is populated *)
  let counts = Array.make zp.z_zones 0 in
  Array.iteri
    (fun i z ->
      Alcotest.(check bool) "zone id in range" true (z >= 0 && z < 5);
      if i > 0 then
        Alcotest.(check bool) "zone-contiguous" true (zone_of.(i - 1) <= z);
      counts.(z) <- counts.(z) + 1)
    zone_of;
  Array.iter (fun c -> Alcotest.(check int) "balanced zones" 120 c) counts;
  Alcotest.(check bool) "connected within budget" true (Mrf.n_edges model > 0)

let test_stream_zoned_deterministic () =
  let a, za = stream_zoned zp and b, zb = stream_zoned zp in
  Alcotest.(check bool) "same zone map" true (za = zb);
  Alcotest.(check bool) "same compact arrays" true
    (Mrf.Compact.arrays a = Mrf.Compact.arrays b)

let test_stream_zoned_estimate () =
  (* the pre-allocation estimate must bound what streaming then builds,
     or --mem-budget would reject instances that actually fit *)
  let model, _ = stream_zoned zp in
  let fp = Mrf.footprint model in
  let est = estimate_zoned_words zp in
  Alcotest.(check bool) "estimate bounds footprint" true
    (est >= fp.Mrf.f_words);
  Alcotest.(check bool) "interned tables beat flat storage" true
    (fp.Mrf.f_words < fp.Mrf.f_flat_words)

let test_stream_zoned_invalid () =
  List.iter
    (fun p ->
      match stream_zoned p with
      | _ -> Alcotest.fail "accepted bad zoned parameter"
      | exception Invalid_argument _ -> ())
    [ { zp with z_zones = 0 }; { zp with z_hosts = 0 };
      { zp with z_zones = zp.z_hosts + 1 }; { zp with z_services = 0 } ]

let test_encode_estimate_bounds () =
  (* same contract on the constraint-encoding path: the estimate behind
     netdiv's --mem-budget must dominate the encoded model's footprint *)
  let net =
    instance { hosts = 60; degree = 6; services = 3;
               products_per_service = 4; seed = 3 }
  in
  let est = Netdiv_core.Encode.estimate_words net [] in
  let fp = Mrf.footprint (Netdiv_core.Encode.mrf (Netdiv_core.Encode.encode net [])) in
  Alcotest.(check bool) "estimate bounds encoded footprint" true
    (est >= fp.Mrf.f_words)

let () =
  Alcotest.run "workload"
    [
      ( "workload",
        [
          Alcotest.test_case "default shape" `Quick test_default_shape;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "connected" `Quick test_connected;
          Alcotest.test_case "invalid params" `Quick test_invalid_params;
          Alcotest.test_case "synthetic similarity valid" `Quick
            test_synthetic_similarity_valid;
          Alcotest.test_case "cross-family zero" `Quick
            test_cross_family_zero;
          Alcotest.test_case "optimizable" `Quick test_optimizable;
        ] );
      ( "zoned",
        [
          Alcotest.test_case "stream shape" `Quick test_stream_zoned_shape;
          Alcotest.test_case "stream deterministic" `Quick
            test_stream_zoned_deterministic;
          Alcotest.test_case "stream estimate bounds" `Quick
            test_stream_zoned_estimate;
          Alcotest.test_case "stream invalid params" `Quick
            test_stream_zoned_invalid;
          Alcotest.test_case "encode estimate bounds" `Quick
            test_encode_estimate_bounds;
        ] );
    ]
