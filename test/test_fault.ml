(* Tests for the deterministic fault-injection layer and the recovery
   paths built on it: spec parsing, pure-function decisions and replay,
   pool chunk-crash recovery (plain and sanitized), the runner's
   retry/degradation ladder, atomic I/O under injected write faults,
   checkpoint serialization, and checkpoint/resume through Optimize.

   Ordering note: [runner.stage] keys on a process-global attempt
   counter, so the runner test registers before any other test that
   runs the harness with injection enabled. *)

module Fault = Netdiv_fault.Fault
module Io = Netdiv_fault.Io
module Obs = Netdiv_obs.Obs
module Pool = Netdiv_par.Pool
open Netdiv_mrf
module Optimize = Netdiv_core.Optimize
module Serial = Netdiv_core.Serial
module Workload = Netdiv_workload.Workload

(* Run [f] under spec [s], always restoring the no-injection default and
   clearing the firing record afterwards. *)
let with_spec s f =
  Fault.set_spec (Some s);
  Fault.reset ();
  Fun.protect
    ~finally:(fun () ->
      Fault.set_spec (Some "");
      Fault.reset ())
    f

let rng seed = Random.State.make [| seed |]

let random_mrf rng n k p =
  let b = Mrf.Builder.create ~label_counts:(Array.make n k) in
  for i = 0 to n - 1 do
    Mrf.Builder.set_unary b ~node:i
      (Array.init k (fun _ -> Random.State.float rng 1.0))
  done;
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Random.State.float rng 1.0 < p then
        Mrf.Builder.add_edge b u v
          (Array.init (k * k) (fun _ -> Random.State.float rng 1.0))
    done
  done;
  Mrf.Builder.build b

let temp_file () = Filename.temp_file "netdiv_fault" ".json"

(* ------------------------------------------------------- spec parsing *)

let test_spec_parsing () =
  List.iter
    (fun s ->
      match Fault.parse_spec_errors s with
      | None -> ()
      | Some msg -> Alcotest.failf "spec %S should parse, got: %s" s msg)
    [
      ""; "rate=0.5"; "seed=7,rate=0.25,only=pool.,stall=5";
      "pool.chunk@4097;io.fsync@0"; " rate=1.0 , runner.stage@3 ";
    ];
  List.iter
    (fun s ->
      match Fault.parse_spec_errors s with
      | Some _ -> ()
      | None -> Alcotest.failf "spec %S should be rejected" s)
    [ "rate=lots"; "rate=2.0"; "frobnicate"; "@3"; "seed=xyz"; "stall=-1" ];
  (* the test hook fails loudly on a typo *)
  (match Fault.set_spec (Some "rate=banana") with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "set_spec must reject a malformed spec");
  Alcotest.(check bool) "empty spec disables" false
    (with_spec "" (fun () -> Fault.enabled ()));
  Alcotest.(check bool) "rate spec enables" true
    (with_spec "rate=0.1" (fun () -> Fault.enabled ()));
  Alcotest.(check bool) "entry spec enables" true
    (with_spec "x@0" (fun () -> Fault.enabled ()))

(* --------------------------------------- decisions, fire-once, replay *)

let test_decisions () =
  let p = Fault.point "test.det" in
  Alcotest.(check string) "point name" "test.det" (Fault.point_name p);
  let draws () = List.init 64 (fun k -> Fault.should_fail ~key:k p) in
  let d1 =
    with_spec "seed=3,rate=0.5,only=test.det" (fun () -> draws ())
  in
  let d2 =
    with_spec "seed=3,rate=0.5,only=test.det" (fun () -> draws ())
  in
  Alcotest.(check (list bool)) "same spec, same decisions" d1 d2;
  Alcotest.(check bool) "some keys fire at rate 0.5" true
    (List.mem true d1);
  Alcotest.(check bool) "some keys pass at rate 0.5" true
    (List.mem false d1);
  let d3 =
    with_spec "seed=4,rate=0.5,only=test.det" (fun () -> draws ())
  in
  if d1 = d3 then Alcotest.fail "seed must change the decision set";
  (* the only= prefix filter really filters *)
  let d4 =
    with_spec "seed=3,rate=0.5,only=other." (fun () -> draws ())
  in
  Alcotest.(check (list bool)) "prefix-filtered point never fires"
    (List.init 64 (fun _ -> false))
    d4

let test_fire_once () =
  let p = Fault.point "test.once" in
  with_spec "test.once@5" (fun () ->
      Alcotest.(check bool) "other key passes" false
        (Fault.should_fail ~key:4 p);
      Alcotest.(check bool) "scheduled key fires" true
        (Fault.should_fail ~key:5 p);
      Alcotest.(check bool) "same key fires at most once" false
        (Fault.should_fail ~key:5 p);
      Alcotest.(check (list (pair string int))) "firing recorded"
        [ ("test.once", 5) ]
        (Fault.fired ());
      Alcotest.(check int) "fired_count" 1 (Fault.fired_count ());
      Alcotest.(check string) "fired_spec renders the schedule"
        "test.once@5" (Fault.fired_spec ());
      (* check raises exactly the recorded failure *)
      Fault.reset ();
      match Fault.check ~key:5 p with
      | exception Fault.Injected ("test.once", 5) -> ()
      | () -> Alcotest.fail "check must raise on a scheduled key")

let test_replay () =
  let p = Fault.point "test.replay" in
  let schedule, first =
    with_spec "seed=11,rate=0.3,only=test.replay" (fun () ->
        for k = 0 to 31 do
          ignore (Fault.should_fail ~key:k p)
        done;
        (Fault.fired_spec (), Fault.fired ()))
  in
  if first = [] then Alcotest.fail "rate 0.3 over 32 keys must fire";
  let second =
    with_spec schedule (fun () ->
        for k = 0 to 31 do
          ignore (Fault.should_fail ~key:k p)
        done;
        Fault.fired ())
  in
  Alcotest.(check (list (pair string int)))
    "replaying fired_spec reproduces the firing record" first second

(* ------------------------------------------------- pool chunk recovery *)

let test_pool_recovery () =
  let f i = (i * i) + (i mod 7) in
  let expected = Pool.map_range ~jobs:4 ~chunks:8 ~lo:0 ~hi:512 f in
  let faulty, fired =
    with_spec "rate=1.0,only=pool.chunk" (fun () ->
        let a = Pool.map_range ~jobs:4 ~chunks:8 ~lo:0 ~hi:512 f in
        (a, Fault.fired_count ()))
  in
  Alcotest.(check (array int))
    "every chunk crashed; recovery reproduces the fault-free result"
    expected faulty;
  Alcotest.(check bool) "chunks actually crashed" true (fired > 0);
  let sum_expected =
    Pool.map_reduce ?cost:None ~jobs:4 ~chunks:8 ~lo:0 ~hi:512 ~map:f ~reduce:( + )
      ~init:0
  in
  let sum_faulty =
    with_spec "rate=1.0,only=pool.chunk" (fun () ->
        Pool.map_reduce ?cost:None ~jobs:4 ~chunks:8 ~lo:0 ~hi:512 ~map:f ~reduce:( + )
          ~init:0)
  in
  Alcotest.(check int) "map_reduce recovers crashed chunks" sum_expected
    sum_faulty

let test_pool_recovery_sanitized () =
  let f i = (i * 3) lxor (i lsr 2) in
  let expected = Pool.map_range ~jobs:4 ~chunks:8 ~lo:0 ~hi:256 f in
  Pool.set_sanitize (Some true);
  Fun.protect
    ~finally:(fun () -> Pool.set_sanitize None)
    (fun () ->
      let faulty =
        with_spec "rate=1.0,only=pool.chunk" (fun () ->
            Pool.map_range ~jobs:4 ~chunks:8 ~lo:0 ~hi:256 f)
      in
      Alcotest.(check (array int))
        "recovery agrees with the race sanitizer" expected faulty)

let test_pool_alloc_fault () =
  (* allocation failure has no recovery story: it surfaces to the caller
     as the injected exception *)
  with_spec "rate=1.0,only=pool.alloc" (fun () ->
      match Pool.map_range ~jobs:2 ~lo:0 ~hi:64 (fun i -> i) with
      | _ -> Alcotest.fail "pool.alloc fault must propagate"
      | exception e ->
          Alcotest.(check bool) "propagates as Injected" true
            (Fault.is_injected e))

(* --------------------------------------------- runner retry and ladder *)

let rec rung_names = function
  | Runner.Degraded (r, rest) -> r :: rung_names rest
  | Runner.Fell_back (_, rest) -> rung_names rest
  | Runner.Converged | Runner.Budget_exhausted | Runner.Stalled -> []

let test_runner_faults () =
  let mrf = random_mrf (rng 42) 80 4 0.05 in
  let clean = Runner.run ~stages:[ Runner.icm () ] mrf in
  Alcotest.(check int) "clean run retries nothing" 0 clean.Runner.retries;
  (* one transient failure on the first attempt: the retry must land on
     the identical trajectory (this binary's first enabled attempt) *)
  let retried =
    with_spec "runner.stage@0" (fun () ->
        Runner.run ~stages:[ Runner.icm () ] mrf)
  in
  Alcotest.(check int) "one retry recorded" 1 retried.Runner.retries;
  Alcotest.(check (array int)) "retried solve is bitwise-identical"
    clean.Runner.result.Solver.labeling
    retried.Runner.result.Solver.labeling;
  (* every attempt on every rung fails: the watchdog falls back to the
     seeded anytime labeling and records the rungs it burned through *)
  let init = Array.make (Mrf.n_nodes mrf) 0 in
  let degraded =
    with_spec "rate=1.0,only=runner.stage" (fun () ->
        Runner.run ~init ~stages:[ Runner.icm () ] mrf)
  in
  Alcotest.(check (array int)) "watchdog returns the anytime labeling"
    init degraded.Runner.result.Solver.labeling;
  Alcotest.(check (float 1e-9)) "watchdog energy is the labeling's"
    (Mrf.energy mrf init)
    degraded.Runner.result.Solver.energy;
  Alcotest.(check bool) "ladder reached the icm fallback" true
    (List.mem "icm-fallback" (rung_names degraded.Runner.outcome));
  Alcotest.(check bool) "outcome reports failure" false
    (Runner.outcome_converged degraded.Runner.outcome);
  if degraded.Runner.retries < 6 then
    Alcotest.failf "expected the whole ladder's retries, got %d"
      degraded.Runner.retries;
  (* with no anytime labeling at all the failure must propagate *)
  with_spec "rate=1.0,only=runner.stage" (fun () ->
      match Runner.run ~stages:[ Runner.icm () ] mrf with
      | _ -> Alcotest.fail "total failure with no best must raise"
      | exception e ->
          Alcotest.(check bool) "propagates as Injected" true
            (Fault.is_injected e))

(* --------------------------------------------------- atomic file writes *)

let test_atomic_write () =
  let path = temp_file () in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove path with Sys_error _ -> ());
      try Sys.remove (Io.temp_path path) with Sys_error _ -> ())
    (fun () ->
      (match Io.write_atomic ~path "v1-contents" with
      | Ok () -> ()
      | Error e -> Alcotest.failf "clean write failed: %s" e);
      Alcotest.(check bool) "no temp straggler after a clean write" false
        (Sys.file_exists (Io.temp_path path));
      Alcotest.(check (result string string)) "clean read round-trips"
        (Ok "v1-contents") (Io.read_file path);
      (* torn write: destination untouched, temp left behind like a
         real crash would leave it *)
      (match
         with_spec "rate=1.0,only=io.write" (fun () ->
             Io.write_atomic ~path "v2-would-be")
       with
      | Ok () -> Alcotest.fail "torn write must report an error"
      | Error _ -> ());
      Alcotest.(check (result string string))
        "destination survives a torn write" (Ok "v1-contents")
        (Io.read_file path);
      Alcotest.(check bool) "torn write leaves the temp file" true
        (Sys.file_exists (Io.temp_path path));
      Sys.remove (Io.temp_path path);
      (* fsync failure: complete content, no durability — destination
         keeps the old artifact and the temp is cleaned up *)
      (match
         with_spec "rate=1.0,only=io.fsync" (fun () ->
             Io.write_atomic ~path "v3-would-be")
       with
      | Ok () -> Alcotest.fail "fsync failure must report an error"
      | Error _ -> ());
      Alcotest.(check (result string string))
        "destination survives an fsync failure" (Ok "v1-contents")
        (Io.read_file path);
      Alcotest.(check bool) "fsync failure removes the temp file" false
        (Sys.file_exists (Io.temp_path path)))

let test_faulty_reads () =
  let path = temp_file () in
  let content = "0123456789abcdef" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (match Io.write_atomic ~path content with
      | Ok () -> ()
      | Error e -> Alcotest.failf "setup write failed: %s" e);
      (match
         with_spec "rate=1.0,only=io.read.truncate" (fun () ->
             Io.read_file path)
       with
      | Error e -> Alcotest.failf "truncated read still returns Ok: %s" e
      | Ok s ->
          if String.length s >= String.length content then
            Alcotest.fail "truncated read must drop the tail";
          Alcotest.(check string) "truncation keeps a prefix" s
            (String.sub content 0 (String.length s)));
      (match
         with_spec "rate=1.0,only=io.read.corrupt" (fun () ->
             Io.read_file path)
       with
      | Error e -> Alcotest.failf "corrupt read still returns Ok: %s" e
      | Ok s ->
          Alcotest.(check int) "corruption preserves the length"
            (String.length content) (String.length s);
          let diffs = ref 0 in
          String.iteri
            (fun i c -> if c <> content.[i] then incr diffs)
            s;
          Alcotest.(check int) "exactly one byte flipped" 1 !diffs);
      (* the file on disk was never touched *)
      Alcotest.(check (result string string)) "disk content intact"
        (Ok content) (Io.read_file path));
  match Io.read_file path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "reading a removed file must be an Error"

(* ------------------------------------------- checkpoint serialization *)

let test_checkpoint_serial () =
  let ck =
    {
      Serial.ck_energy = -12.5;
      ck_iterations = 42;
      ck_labeling = [| 0; 3; 1; 2 |];
    }
  in
  (match Serial.checkpoint_of_string (Serial.checkpoint_to_string ck) with
  | Error e -> Alcotest.failf "round trip failed: %s" e
  | Ok ck' ->
      Alcotest.(check (float 1e-9)) "energy" ck.Serial.ck_energy
        ck'.Serial.ck_energy;
      Alcotest.(check int) "iterations" ck.Serial.ck_iterations
        ck'.Serial.ck_iterations;
      Alcotest.(check (array int)) "labeling" ck.Serial.ck_labeling
        ck'.Serial.ck_labeling);
  (* malformed inputs are Errors, never exceptions *)
  let full = Serial.checkpoint_to_string ck in
  for cut = 0 to String.length full - 1 do
    match Serial.checkpoint_of_string (String.sub full 0 cut) with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "prefix of length %d must not parse" cut
  done;
  (match
     Serial.checkpoint_of_string
       "{\"netdiv_checkpoint\":1,\"labeling\":[-2]}"
   with
  | Error e ->
      Alcotest.(check bool) "error names the bad path" true
        (String.length e > 0)
  | Ok _ -> Alcotest.fail "negative label must not parse");
  match
    Serial.checkpoint_of_string "{\"netdiv_checkpoint\":9,\"labeling\":[]}"
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown version must not parse"

(* --------------------------------------- optimize checkpoint / resume *)

let small_net () =
  Workload.instance
    {
      Workload.hosts = 40;
      degree = 6;
      services = 3;
      products_per_service = 3;
      seed = 5;
    }

let test_optimize_checkpoint_resume () =
  let net = small_net () in
  let ck = temp_file () in
  Sys.remove ck;
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove ck with Sys_error _ -> ());
      try Sys.remove (Io.temp_path ck) with Sys_error _ -> ())
    (fun () ->
      let r1 = Optimize.run ~checkpoint:ck net [] in
      Alcotest.(check bool) "checkpoint written" true (Sys.file_exists ck);
      Alcotest.(check int) "clean run retries nothing" 0 r1.Optimize.retries;
      let r2 = Optimize.run ~resume:ck net [] in
      Alcotest.(check (float 1e-9)) "resumed energy identical"
        r1.Optimize.energy r2.Optimize.energy;
      Alcotest.(check (array int)) "resumed labeling bitwise-identical"
        r1.Optimize.solver_result.Solver.labeling
        r2.Optimize.solver_result.Solver.labeling;
      (* resuming from garbage warns and starts fresh, landing on the
         same solution as the uninterrupted run *)
      (match Io.write_atomic ~path:ck "{ not a checkpoint" with
      | Ok () -> ()
      | Error e -> Alcotest.failf "setup write failed: %s" e);
      let r3 = Optimize.run ~resume:ck net [] in
      Alcotest.(check (array int)) "corrupt checkpoint falls back to fresh"
        r1.Optimize.solver_result.Solver.labeling
        r3.Optimize.solver_result.Solver.labeling;
      (* a truncated read of a valid checkpoint likewise degrades to a
         fresh solve instead of failing *)
      let r4 =
        with_spec "rate=1.0,only=io.read.truncate" (fun () ->
            Optimize.run ~resume:ck net [])
      in
      Alcotest.(check (array int)) "truncated checkpoint read degrades"
        r1.Optimize.solver_result.Solver.labeling
        r4.Optimize.solver_result.Solver.labeling)

let test_optimize_checkpoint_write_failure () =
  (* every snapshot write fails: the solve must complete untouched and
     the destination must never appear *)
  let net = small_net () in
  let ck = temp_file () in
  Sys.remove ck;
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove ck with Sys_error _ -> ());
      try Sys.remove (Io.temp_path ck) with Sys_error _ -> ())
    (fun () ->
      let clean = Optimize.run net [] in
      let r =
        with_spec "rate=1.0,only=io.write" (fun () ->
            Optimize.run ~checkpoint:ck net [])
      in
      Alcotest.(check bool) "destination never materializes" false
        (Sys.file_exists ck);
      Alcotest.(check (float 1e-9)) "solve unaffected by write failures"
        clean.Optimize.energy r.Optimize.energy)

(* ---------------------------------------------------------- clock stall *)

let test_clock_stall () =
  with_spec "clock.stall@0,stall=7.5" (fun () ->
      let before = Obs.Clock.now () in
      Alcotest.(check (float 1e-9)) "stall applied once" 7.5
        (Fault.clock_offset ());
      let after = Obs.Clock.now () in
      Alcotest.(check (float 1e-9)) "no further stalls" 7.5
        (Fault.clock_offset ());
      if after < before then Alcotest.fail "clock must stay monotone");
  Alcotest.(check (float 1e-9)) "reset clears the skew" 0.0
    (Fault.clock_offset ())

let () =
  Alcotest.run "netdiv_fault"
    [
      ( "spec",
        [
          Alcotest.test_case "parsing" `Quick test_spec_parsing;
          Alcotest.test_case "decisions" `Quick test_decisions;
          Alcotest.test_case "fire-once" `Quick test_fire_once;
          Alcotest.test_case "replay" `Quick test_replay;
        ] );
      ( "runner",
        [ Alcotest.test_case "retry and ladder" `Quick test_runner_faults ] );
      ( "pool",
        [
          Alcotest.test_case "chunk recovery" `Quick test_pool_recovery;
          Alcotest.test_case "chunk recovery (sanitized)" `Quick
            test_pool_recovery_sanitized;
          Alcotest.test_case "alloc fault propagates" `Quick
            test_pool_alloc_fault;
        ] );
      ( "io",
        [
          Alcotest.test_case "atomic writes" `Quick test_atomic_write;
          Alcotest.test_case "faulty reads" `Quick test_faulty_reads;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "serialization" `Quick test_checkpoint_serial;
          Alcotest.test_case "optimize resume" `Quick
            test_optimize_checkpoint_resume;
          Alcotest.test_case "write failure" `Quick
            test_optimize_checkpoint_write_failure;
        ] );
      ("clock", [ Alcotest.test_case "stall" `Quick test_clock_stall ]);
    ]
