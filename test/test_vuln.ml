(* Tests for the vulnerability-database substrate: CPE naming, CVE entries,
   the in-memory NVD, Jaccard similarity tables, and the curated corpora. *)

open Netdiv_vuln

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ CPE *)

let test_cpe_make () =
  let c = Cpe.make ~part:Cpe.Operating_system ~vendor:"Microsoft" "Windows 7" in
  Alcotest.(check string) "normalized" "cpe:/o:microsoft:windows_7"
    (Cpe.to_string c);
  let v = Cpe.make ~version:"8.1" ~part:Cpe.Application ~vendor:"x" "y" in
  Alcotest.(check string) "with version" "cpe:/a:x:y:8.1" (Cpe.to_string v)

let test_cpe_make_invalid () =
  Alcotest.check_raises "empty vendor"
    (Invalid_argument "Cpe.make: empty vendor") (fun () ->
      ignore (Cpe.make ~part:Cpe.Application ~vendor:"" "p"))

let test_cpe_parse () =
  (match Cpe.of_string "cpe:/o:microsoft:windows_7" with
  | Ok c ->
      Alcotest.(check string) "vendor" "microsoft" c.Cpe.vendor;
      Alcotest.(check string) "product" "windows_7" c.Cpe.product;
      Alcotest.(check bool) "no version" true (c.Cpe.version = None)
  | Error e -> Alcotest.fail e);
  match Cpe.of_string "cpe:/a:google:chrome:50.0" with
  | Ok c -> Alcotest.(check bool) "version" true (c.Cpe.version = Some "50.0")
  | Error e -> Alcotest.fail e

let test_cpe_parse_dash_version () =
  match Cpe.of_string "cpe:/a:microsoft:edge:-" with
  | Ok c -> Alcotest.(check bool) "dash is none" true (c.Cpe.version = None)
  | Error e -> Alcotest.fail e

let test_cpe_parse_invalid () =
  let bad = [ "windows"; "cpe:/x:a:b"; "cpe:/o::p"; "cpe:/o:v:"; "cpe:/" ] in
  List.iter
    (fun s ->
      match Cpe.of_string s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    bad

let test_cpe_roundtrip () =
  let inputs =
    [ "cpe:/o:debian:debian_linux:8.0"; "cpe:/a:oracle:mysql";
      "cpe:/h:siemens:s7-300" ]
  in
  List.iter
    (fun s ->
      Alcotest.(check string) s s (Cpe.to_string (Cpe.of_string_exn s)))
    inputs

let test_cpe_matches () =
  let versionless = Cpe.of_string_exn "cpe:/a:mozilla:firefox" in
  let versioned = Cpe.of_string_exn "cpe:/a:mozilla:firefox:45" in
  Alcotest.(check bool) "versionless matches versioned" true
    (Cpe.matches ~pattern:versionless versioned);
  Alcotest.(check bool) "versioned does not match versionless" false
    (Cpe.matches ~pattern:versioned versionless);
  Alcotest.(check bool) "same matches" true
    (Cpe.matches ~pattern:versioned versioned);
  let other = Cpe.of_string_exn "cpe:/a:mozilla:seamonkey" in
  Alcotest.(check bool) "different product" false
    (Cpe.matches ~pattern:versionless other)

(* ------------------------------------------------------------------ CVE *)

let ff = Cpe.of_string_exn "cpe:/a:mozilla:firefox"

let test_cve_make () =
  match Cve.make ~id:"CVE-2016-7153" [ ff ] with
  | Ok c ->
      Alcotest.(check int) "year" 2016 c.Cve.year;
      Alcotest.(check bool) "affects" true (Cve.affects c ~pattern:ff)
  | Error e -> Alcotest.fail e

let test_cve_bad_ids () =
  List.iter
    (fun id ->
      match Cve.make ~id [] with
      | Ok _ -> Alcotest.failf "accepted %S" id
      | Error _ -> ())
    [ "CVE-16-7153"; "cve-2016-7153"; "CVE-2016-1"; "CVE-2016"; "2016-7153";
      "CVE-20x6-7153" ]

let test_cve_cvss_range () =
  (match Cve.make ~cvss:11.0 ~id:"CVE-2016-0001" [] with
  | Ok _ -> Alcotest.fail "accepted cvss 11"
  | Error _ -> ());
  match Cve.make ~cvss:9.8 ~id:"CVE-2016-0001" [] with
  | Ok c -> Alcotest.(check bool) "stored" true (c.Cve.cvss = Some 9.8)
  | Error e -> Alcotest.fail e

(* ------------------------------------------------------------------ NVD *)

let test_nvd_basic () =
  let db = Nvd.create () in
  Nvd.add db (Cve.make_exn ~id:"CVE-2001-1000" [ ff ]);
  Nvd.add db (Cve.make_exn ~id:"CVE-2005-2000" [ ff ]);
  Nvd.add db (Cve.make_exn ~id:"CVE-2001-1000" [ ff ]);
  (* replace *)
  Alcotest.(check int) "size dedups" 2 (Nvd.size db);
  Alcotest.(check bool) "find" true (Nvd.find db "CVE-2005-2000" <> None);
  Alcotest.(check bool) "find missing" true (Nvd.find db "CVE-1999-9999" = None)

let test_nvd_window () =
  let db = Nvd.create () in
  List.iter
    (fun (id, year) ->
      Nvd.add db (Cve.make_exn ~id:(Printf.sprintf "CVE-%d-%s" year id) [ ff ]))
    [ ("1000", 1999); ("1001", 2005); ("1002", 2016); ("1003", 2020) ];
  Alcotest.(check int) "all" 4 (Nvd.count_of db ff);
  Alcotest.(check int) "paper window" 3
    (Nvd.count_of ~since:1999 ~until:2016 db ff);
  Alcotest.(check int) "until" 2 (Nvd.count_of ~until:2005 db ff);
  Alcotest.(check int) "since" 2 (Nvd.count_of ~since:2016 db ff)

(* ----------------------------------------------------------- Similarity *)

let set_of l = List.fold_right Nvd.String_set.add l Nvd.String_set.empty

let test_jaccard () =
  check_float "identical" 1.0 (Similarity.jaccard (set_of [ "a"; "b" ]) (set_of [ "a"; "b" ]));
  check_float "disjoint" 0.0 (Similarity.jaccard (set_of [ "a" ]) (set_of [ "b" ]));
  check_float "half" (1.0 /. 3.0)
    (Similarity.jaccard (set_of [ "a"; "b" ]) (set_of [ "b"; "c" ]));
  check_float "both empty" 0.0 (Similarity.jaccard (set_of []) (set_of []))

let test_of_counts () =
  let t =
    Similarity.of_counts ~products:[| "A"; "B"; "C" |] ~totals:[| 10; 20; 5 |]
      ~shared:[ (0, 1, 6) ]
  in
  check_float "sim AB" (6.0 /. 24.0) (Similarity.get t 0 1);
  check_float "symmetric" (Similarity.get t 0 1) (Similarity.get t 1 0);
  check_float "diag" 1.0 (Similarity.get t 2 2);
  check_float "unlisted" 0.0 (Similarity.get t 0 2);
  Alcotest.(check int) "shared count" 6 (Similarity.shared_count t 1 0);
  Alcotest.(check bool) "index" true (Similarity.index t "B" = Some 1);
  Alcotest.(check bool) "find" true
    (Similarity.find t "A" "B" = Some (6.0 /. 24.0))

let test_of_counts_invalid () =
  let mk shared () =
    ignore
      (Similarity.of_counts ~products:[| "A"; "B" |] ~totals:[| 3; 4 |]
         ~shared)
  in
  List.iter
    (fun shared ->
      match mk shared () with
      | () -> Alcotest.fail "accepted inconsistent counts"
      | exception Invalid_argument _ -> ())
    [ [ (0, 1, 5) ]; [ (0, 0, 1) ]; [ (0, 2, 1) ]; [ (0, 1, 1); (1, 0, 1) ] ]

(* --------------------------------------------------------------- Corpus *)

let test_corpus_matches_paper () =
  (* spot-check cells against the paper's printed tables *)
  let t = Corpus.table Corpus.os_spec in
  let get a b =
    match Similarity.find t a b with Some v -> v | None -> Alcotest.fail "missing"
  in
  check_float "WinXP/Win7 0.278" 0.278 (Float.round (get "WinXP2" "Win7" *. 1000.) /. 1000.);
  check_float "Win10/Win8.1 0.697" 0.697 (Float.round (get "Win10" "Win8.1" *. 1000.) /. 1000.);
  check_float "WinXP/Win10 0" 0.0 (get "WinXP2" "Win10");
  check_float "Ubt/Deb 0.208" 0.208 (Float.round (get "Ubt14.04" "Deb8.0" *. 1000.) /. 1000.);
  let tb = Corpus.table Corpus.browser_spec in
  (match Similarity.find tb "IE8" "IE10" with
  | Some v -> check_float "IE8/IE10 0.386" 0.386 (Float.round (v *. 1000.) /. 1000.)
  | None -> Alcotest.fail "missing");
  match Similarity.find tb "SeaMonkey" "Firefox" with
  | Some v -> check_float "SM/FF 0.450" 0.450 (Float.round (v *. 1000.) /. 1000.)
  | None -> Alcotest.fail "missing"

let test_synthesis_exact () =
  List.iter
    (fun spec ->
      let from_counts = Corpus.table spec in
      let db = Corpus.synthesize spec in
      let from_nvd =
        Similarity.of_nvd ~since:1999 ~until:2016 db
          (Array.to_list spec.Corpus.products)
      in
      let n = Similarity.size from_counts in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          Alcotest.(check int)
            (Printf.sprintf "%s shared %d %d" spec.Corpus.label i j)
            (Similarity.shared_count from_counts i j)
            (Similarity.shared_count from_nvd i j)
        done
      done)
    Corpus.all_specs

let test_synthesis_years () =
  let db = Corpus.synthesize Corpus.database_spec in
  Nvd.fold
    (fun cve () ->
      if cve.Cve.year < 1999 || cve.Cve.year > 2016 then
        Alcotest.failf "year %d outside window" cve.Cve.year)
    db ()

let test_find_spec () =
  Alcotest.(check bool) "os" true (Corpus.find_spec "os" <> None);
  Alcotest.(check bool) "none" true (Corpus.find_spec "nope" = None)

(* ----------------------------------------------------------------- json *)

let json_ok s =
  match Json.parse s with Ok v -> v | Error e -> Alcotest.fail e

let test_json_atoms () =
  Alcotest.(check bool) "null" true (json_ok "null" = Json.Null);
  Alcotest.(check bool) "true" true (json_ok "true" = Json.Bool true);
  Alcotest.(check bool) "false" true (json_ok " false " = Json.Bool false);
  Alcotest.(check bool) "int" true (json_ok "42" = Json.Number 42.0);
  Alcotest.(check bool) "neg float" true (json_ok "-2.5" = Json.Number (-2.5));
  Alcotest.(check bool) "exponent" true (json_ok "1e3" = Json.Number 1000.0);
  Alcotest.(check bool) "string" true (json_ok "\"hi\"" = Json.String "hi")

let test_json_nested () =
  let v = json_ok {|{"a": [1, {"b": null}, "x"], "c": {"d": true}}|} in
  Alcotest.(check bool) "path" true
    (Json.path [ "c"; "d" ] v = Some (Json.Bool true));
  match Json.member "a" v with
  | Some (Json.List [ Json.Number 1.0; inner; Json.String "x" ]) ->
      Alcotest.(check bool) "inner" true
        (Json.member "b" inner = Some Json.Null)
  | _ -> Alcotest.fail "bad list shape"

let test_json_escapes () =
  Alcotest.(check bool) "basic escapes" true
    (json_ok {|"a\"b\\c\nd\te"|} = Json.String "a\"b\\c\nd\te");
  Alcotest.(check bool) "unicode bmp" true
    (json_ok {|"\u0041\u00e9"|} = Json.String "A\xc3\xa9");
  (* surrogate pair: U+1F600 *)
  Alcotest.(check bool) "surrogate pair" true
    (json_ok {|"\ud83d\ude00"|} = Json.String "\xf0\x9f\x98\x80")

let test_json_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2";
      "\"\\ud800\""; "nulll"; "[1, 2"; "{\"a\" 1}"; "01" ]

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let test_json_depth_limit () =
  (* a degenerate or adversarial document must fail with an error, not
     overflow the recursive-descent parser's stack *)
  let deep n = String.make n '[' ^ String.make n ']' in
  (match Json.parse (deep 600) with
  | Ok _ -> Alcotest.fail "accepted 600-deep nesting"
  | Error e ->
      Alcotest.(check bool) "error names the default limit" true
        (contains e "nesting" && contains e "512"));
  (match Json.parse (deep 100) with
  | Error e -> Alcotest.fail e
  | Ok _ -> ());
  (match Json.parse ~depth_limit:8 (deep 20) with
  | Ok _ -> Alcotest.fail "limit 8 accepted 20-deep nesting"
  | Error e ->
      Alcotest.(check bool) "error names the custom limit" true
        (contains e "8"));
  (match Json.parse ~depth_limit:8 (deep 5) with
  | Error e -> Alcotest.fail e
  | Ok _ -> ());
  (* mixed containers count too *)
  match Json.parse ~depth_limit:4 {|{"a":[{"b":[{"c":1}]}]}|} with
  | Ok _ -> Alcotest.fail "limit 4 accepted 6-deep mixed nesting"
  | Error _ -> ()

let test_json_print_roundtrip () =
  let samples =
    [ {|{"a":[1,2,3],"b":"x\ny","c":null,"d":false,"e":{"f":1.5}}|};
      {|[[],{},[{"deep":[[["v"]]]}]]|} ]
  in
  List.iter
    (fun s ->
      let v = json_ok s in
      Alcotest.(check bool) "compact round-trip" true
        (Json.equal v (json_ok (Json.to_string v)));
      Alcotest.(check bool) "pretty round-trip" true
        (Json.equal v (json_ok (Json.to_string ~pretty:true v))))
    samples

let json_gen =
  QCheck2.Gen.(
    sized @@ fix (fun self size ->
        let atom =
          oneof
            [
              return Json.Null;
              map (fun b -> Json.Bool b) bool;
              map (fun f -> Json.Number (Float.round (f *. 100.) /. 100.))
                (float_range (-1e6) 1e6);
              map (fun s -> Json.String s) (string_size (0 -- 10));
            ]
        in
        if size <= 1 then atom
        else
          oneof
            [
              atom;
              map (fun xs -> Json.List xs)
                (list_size (0 -- 4) (self (size / 2)));
              map
                (fun kvs ->
                  (* distinct keys keep equality well-defined *)
                  Json.Object
                    (List.mapi
                       (fun i (k, v) -> (Printf.sprintf "%d_%s" i k, v))
                       kvs))
                (list_size (0 -- 4)
                   (pair (string_size (0 -- 5)) (self (size / 2))));
            ]))

let prop_json_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"print/parse round-trip" json_gen
    (fun v ->
      match Json.parse (Json.to_string v) with
      | Ok v' -> Json.equal v v'
      | Error _ -> false)

(* Fuzz: feed the parser every proper prefix of a valid document — the
   shape a torn write or a fault-injected truncated read produces.  No
   input may escape as an exception; the parse must come back Ok (a
   prefix of a number literal can be a shorter valid number) or an
   Error with a written reason.  Container documents are unbalanced in
   every proper prefix, so there the parse must always be an Error. *)
let prop_json_truncation =
  QCheck2.Test.make ~count:200 ~name:"fuzz: truncated documents" json_gen
    (fun v ->
      let s = Json.to_string v in
      let container =
        match v with Json.Object _ | Json.List _ -> true | _ -> false
      in
      let ok = ref true in
      for cut = 0 to String.length s - 1 do
        match Json.parse (String.sub s 0 cut) with
        | Ok _ -> if container then ok := false
        | Error msg -> if msg = "" then ok := false
        | exception _ -> ok := false
      done;
      !ok)

(* Fuzz: single-byte corruption (the io.read.corrupt fault) anywhere in
   a valid document must parse or fail cleanly, never raise. *)
let prop_json_byte_flip =
  QCheck2.Test.make ~count:500 ~name:"fuzz: byte flips"
    QCheck2.Gen.(triple json_gen (int_bound 4096) (int_range 1 255))
    (fun (v, pos, mask) ->
      let b = Bytes.of_string (Json.to_string v) in
      let i = pos mod Bytes.length b in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor mask));
      match Json.parse (Bytes.to_string b) with
      | Ok _ -> true
      | Error msg -> msg <> ""
      | exception _ -> false)

(* ----------------------------------------------------------------- feed *)

let sample_feed =
  {|{
  "CVE_data_type": "CVE",
  "CVE_Items": [
    {
      "cve": {
        "CVE_data_meta": { "ID": "CVE-2016-7153" },
        "description": { "description_data": [ { "lang": "en", "value": "HEIST attack" } ] }
      },
      "configurations": {
        "nodes": [
          { "cpe_match": [
              { "vulnerable": true, "cpe23Uri": "cpe:2.3:a:microsoft:edge:*:*:*:*:*:*:*:*" },
              { "vulnerable": true, "cpe22Uri": "cpe:/a:google:chrome" } ],
            "children": [
              { "cpe_match": [ { "cpe23Uri": "cpe:2.3:a:apple:safari:9.1:*:*:*:*:*:*:*" } ] } ] }
        ]
      },
      "impact": {
        "baseMetricV3": { "cvssV3": { "baseScore": 5.3 } },
        "baseMetricV2": { "cvssV2": { "baseScore": 4.3 } }
      },
      "publishedDate": "2016-09-06T14:59Z"
    },
    {
      "cve": { "CVE_data_meta": { "ID": "not-a-cve" } },
      "configurations": { "nodes": [] }
    }
  ]
}|}

let test_cpe23 () =
  (match Feed.cpe23_of_string "cpe:2.3:o:microsoft:windows_7:*:*:*:*:*:*:*:*" with
  | Ok c ->
      Alcotest.(check string) "2.3 uri" "cpe:/o:microsoft:windows_7"
        (Cpe.to_string c)
  | Error e -> Alcotest.fail e);
  (match Feed.cpe23_of_string "cpe:2.3:a:apple:safari:9.1:*:*:*:*:*:*:*" with
  | Ok c -> Alcotest.(check bool) "version kept" true (c.Cpe.version = Some "9.1")
  | Error e -> Alcotest.fail e);
  match Feed.cpe23_of_string "cpe:/a:old:style" with
  | Ok _ -> Alcotest.fail "accepted 2.2 uri"
  | Error _ -> ()

let test_feed_decode () =
  match Feed.of_string sample_feed with
  | Error e -> Alcotest.fail e
  | Ok (entries, warnings) ->
      Alcotest.(check int) "one good entry" 1 (List.length entries);
      Alcotest.(check int) "one warning" 1 (List.length warnings);
      let cve = List.hd entries in
      Alcotest.(check string) "id" "CVE-2016-7153" cve.Cve.id;
      Alcotest.(check string) "summary" "HEIST attack" cve.Cve.summary;
      Alcotest.(check bool) "v3 score preferred" true (cve.Cve.cvss = Some 5.3);
      Alcotest.(check int) "three cpes incl. children" 3
        (List.length cve.Cve.affected)

let test_feed_roundtrip () =
  (* synthesize a corpus, write it as a feed, read it back: the
     similarity table must survive *)
  let spec = Corpus.database_spec in
  let db = Corpus.synthesize spec in
  let dumped = Feed.to_string ~pretty:true db in
  let db' = Nvd.create () in
  (match Feed.load_into db' dumped with
  | Ok (count, warnings) ->
      Alcotest.(check int) "all loaded" (Nvd.size db) count;
      Alcotest.(check int) "no warnings" 0 (List.length warnings)
  | Error e -> Alcotest.fail e);
  let products = Array.to_list spec.Corpus.products in
  let before = Similarity.of_nvd db products in
  let after = Similarity.of_nvd db' products in
  let n = Similarity.size before in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Alcotest.(check int) "counts survive"
        (Similarity.shared_count before i j)
        (Similarity.shared_count after i j)
    done
  done;
  (* cvss survives too *)
  let sample = List.hd (Nvd.entries db) in
  match Nvd.find db' sample.Cve.id with
  | Some loaded ->
      Alcotest.(check bool) "score kept" true (loaded.Cve.cvss = sample.Cve.cvss)
  | None -> Alcotest.fail "entry lost"

let test_feed_bad_documents () =
  List.iter
    (fun doc ->
      match Feed.of_string doc with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" doc)
    [ "[]"; "{}"; {|{"CVE_Items": 3}|}; "not json" ]

let cvss_feed score =
  Printf.sprintf
    {|{"CVE_Items":[{"cve":{"CVE_data_meta":{"ID":"CVE-2020-0001"}},"configurations":{"nodes":[{"cpe_match":[{"cpe23Uri":"cpe:2.3:a:acme:widget:*:*:*:*:*:*:*:*"}]}]},"impact":{"baseMetricV2":{"cvssV2":{"baseScore":%s}}}}]}|}
    score

let test_feed_cvss_range () =
  (* out-of-range base scores skip the item with a warning naming the
     CVE id and the JSON path of the offending score *)
  List.iter
    (fun score ->
      match Feed.of_string (cvss_feed score) with
      | Error e -> Alcotest.fail e
      | Ok (entries, warnings) -> (
          Alcotest.(check int)
            (score ^ ": entry skipped")
            0 (List.length entries);
          match warnings with
          | [ w ] ->
              Alcotest.(check bool)
                (score ^ ": warning names id and path")
                true
                (contains w "CVE-2020-0001"
                && contains w "impact.baseMetricV2.cvssV2.baseScore")
          | l ->
              Alcotest.failf "%s: expected one warning, got %d" score
                (List.length l)))
    [ "11.5"; "-0.5" ];
  (* the boundaries are legal scores *)
  List.iter
    (fun (score, expected) ->
      match Feed.of_string (cvss_feed score) with
      | Ok ([ cve ], []) ->
          Alcotest.(check bool)
            (score ^ ": accepted")
            true
            (cve.Cve.cvss = Some expected)
      | Ok (entries, warnings) ->
          Alcotest.failf "%s: %d entries, %d warnings" score
            (List.length entries) (List.length warnings)
      | Error e -> Alcotest.fail e)
    [ ("0.0", 0.0); ("10.0", 10.0) ]

(* ----------------------------------------------------------------- cvss *)

let check_score = Alcotest.(check (float 1e-9))

let v2_score vector =
  match Cvss.V2.of_vector vector with
  | Ok t -> Cvss.V2.base_score t
  | Error e -> Alcotest.fail e

let v3_score vector =
  match Cvss.V3.of_vector vector with
  | Ok t -> Cvss.V3.base_score t
  | Error e -> Alcotest.fail e

let test_cvss_v2_known () =
  check_score "classic 7.5" 7.5 (v2_score "AV:N/AC:L/Au:N/C:P/I:P/A:P");
  check_score "9.3" 9.3 (v2_score "AV:N/AC:M/Au:N/C:C/I:C/A:C");
  check_score "7.2" 7.2 (v2_score "AV:L/AC:L/Au:N/C:C/I:C/A:C");
  check_score "10.0" 10.0 (v2_score "AV:N/AC:L/Au:N/C:C/I:C/A:C");
  check_score "no impact is 0" 0.0 (v2_score "AV:L/AC:H/Au:M/C:N/I:N/A:N")

let test_cvss_v3_known () =
  check_score "9.8" 9.8 (v3_score "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H");
  check_score "10.0" 10.0 (v3_score "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:C/C:H/I:H/A:H");
  check_score "XSS 6.1" 6.1 (v3_score "CVSS:3.1/AV:N/AC:L/PR:N/UI:R/S:C/C:L/I:L/A:N");
  check_score "local 7.8" 7.8 (v3_score "CVSS:3.1/AV:L/AC:L/PR:L/UI:N/S:U/C:H/I:H/A:H");
  check_score "no impact 0" 0.0 (v3_score "CVSS:3.1/AV:N/AC:H/PR:N/UI:N/S:U/C:N/I:N/A:N");
  (* prefix optional *)
  check_score "no prefix" 9.8 (v3_score "AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H")

let test_cvss_parse_errors () =
  List.iter
    (fun v ->
      match Cvss.V2.of_vector v with
      | Ok _ -> Alcotest.failf "accepted %S" v
      | Error _ -> ())
    [ "AV:N/AC:L/Au:N/C:P/I:P"; "AV:X/AC:L/Au:N/C:P/I:P/A:P";
      "AV:N/AV:N/AC:L/Au:N/C:P/I:P/A:P"; "garbage" ];
  match Cvss.V3.of_vector "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H" with
  | Ok _ -> Alcotest.fail "accepted missing A"
  | Error _ -> ()

let test_cvss_dispatch () =
  (match Cvss.score "AV:N/AC:L/Au:N/C:P/I:P/A:P" with
  | Ok s -> check_score "v2 dispatch" 7.5 s
  | Error e -> Alcotest.fail e);
  match Cvss.score "CVSS:3.1/AV:N/AC:L/PR:N/UI:N/S:U/C:H/I:H/A:H" with
  | Ok s -> check_score "v3 dispatch" 9.8 s
  | Error e -> Alcotest.fail e

let test_cvss_severity () =
  Alcotest.(check bool) "none" true (Cvss.severity_of_score 0.0 = Cvss.None_);
  Alcotest.(check bool) "low" true (Cvss.severity_of_score 3.9 = Cvss.Low);
  Alcotest.(check bool) "medium" true (Cvss.severity_of_score 4.0 = Cvss.Medium);
  Alcotest.(check bool) "high" true (Cvss.severity_of_score 7.0 = Cvss.High);
  Alcotest.(check bool) "critical" true
    (Cvss.severity_of_score 9.0 = Cvss.Critical)

let v2_gen =
  QCheck2.Gen.(
    let* av = oneofl ([ Local; Adjacent; Network ] : Cvss.V2.access_vector list) in
    let* ac = oneofl ([ High; Medium; Low ] : Cvss.V2.access_complexity list) in
    let* au =
      oneofl ([ Multiple; Single; None_required ] : Cvss.V2.authentication list)
    in
    let* c = oneofl ([ None_; Partial; Complete ] : Cvss.V2.impact list) in
    let* i = oneofl ([ None_; Partial; Complete ] : Cvss.V2.impact list) in
    let* a = oneofl ([ None_; Partial; Complete ] : Cvss.V2.impact list) in
    return { Cvss.V2.av; ac; au; c; i; a })

let prop_cvss_v2_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"v2 vector round-trips" v2_gen
    (fun t ->
      match Cvss.V2.of_vector (Cvss.V2.to_vector t) with
      | Ok t' -> t = t'
      | Error _ -> false)

let prop_cvss_v2_range =
  QCheck2.Test.make ~count:200 ~name:"v2 score within [0,10]" v2_gen
    (fun t ->
      let s = Cvss.V2.base_score t in
      s >= 0.0 && s <= 10.0)

let v3_gen =
  QCheck2.Gen.(
    let* av =
      oneofl ([ Network; Adjacent; Local; Physical ] : Cvss.V3.attack_vector list)
    in
    let* ac = oneofl ([ Low; High ] : Cvss.V3.attack_complexity list) in
    let* pr = oneofl ([ None_; Low; High ] : Cvss.V3.privileges list) in
    let* ui = oneofl ([ None_; Required ] : Cvss.V3.interaction list) in
    let* sc = oneofl ([ Unchanged; Changed ] : Cvss.V3.scope list) in
    let* c = oneofl ([ High; Low; None_ ] : Cvss.V3.impact list) in
    let* i = oneofl ([ High; Low; None_ ] : Cvss.V3.impact list) in
    let* a = oneofl ([ High; Low; None_ ] : Cvss.V3.impact list) in
    return { Cvss.V3.av; ac; pr; ui; s = sc; c; i; a })

let prop_cvss_v3_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"v3 vector round-trips" v3_gen
    (fun t ->
      match Cvss.V3.of_vector (Cvss.V3.to_vector t) with
      | Ok t' -> t = t'
      | Error _ -> false)

(* raising one impact metric can never lower the v3 base score *)
let upgrade_impact (i : Cvss.V3.impact) : Cvss.V3.impact =
  match i with None_ -> Low | Low -> High | High -> High

let prop_cvss_v3_impact_monotone =
  QCheck2.Test.make ~count:200 ~name:"v3 score monotone in confidentiality"
    v3_gen (fun t ->
      let upgraded = { t with Cvss.V3.c = upgrade_impact t.Cvss.V3.c } in
      Cvss.V3.base_score upgraded >= Cvss.V3.base_score t -. 1e-9)

let prop_cvss_v3_range =
  QCheck2.Test.make ~count:200 ~name:"v3 score within [0,10]" v3_gen
    (fun t ->
      let s = Cvss.V3.base_score t in
      s >= 0.0 && s <= 10.0)

(* ------------------------------------------------------------- weighted *)

let test_weighted_unit_is_jaccard () =
  let a = set_of [ "x"; "y"; "z" ] and b = set_of [ "y"; "z"; "w" ] in
  check_float "unit weights" (Similarity.jaccard a b)
    (Weighted.weighted_jaccard ~weight:(fun _ -> 1.0) a b)

let test_weighted_severity_shifts () =
  (* shared CVE heavy, disjoint ones light: similarity rises above the
     unweighted value; and vice versa *)
  let a = set_of [ "shared"; "a_only" ] and b = set_of [ "shared"; "b_only" ] in
  let plain = Similarity.jaccard a b in
  let heavy_shared =
    Weighted.weighted_jaccard
      ~weight:(fun id -> if id = "shared" then 1.0 else 0.1)
      a b
  in
  let light_shared =
    Weighted.weighted_jaccard
      ~weight:(fun id -> if id = "shared" then 0.1 else 1.0)
      a b
  in
  Alcotest.(check bool) "heavy shared raises" true (heavy_shared > plain);
  Alcotest.(check bool) "light shared lowers" true (light_shared < plain)

let test_weighted_of_nvd () =
  let spec = Corpus.os_spec in
  let db = Corpus.synthesize spec in
  let products = Array.to_list spec.Corpus.products in
  let plain = Similarity.of_nvd ~since:1999 ~until:2016 db products in
  let weighted = Weighted.of_nvd ~since:1999 ~until:2016 db products in
  let n = Similarity.size plain in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      (* counts preserved *)
      Alcotest.(check int) "counts match"
        (Similarity.shared_count plain i j)
        (Similarity.shared_count weighted i j);
      let w = Similarity.get weighted i j in
      Alcotest.(check bool) "bounds" true (w >= 0.0 && w <= 1.0);
      (* zero intersections stay zero *)
      if i <> j && Similarity.get plain i j = 0.0 then
        Alcotest.(check (float 1e-12)) "zero stays zero" 0.0 w
    done
  done

(* ------------------------------------------------------------- property *)

let small_set =
  QCheck2.Gen.(map set_of (list_size (0 -- 8) (string_size (1 -- 2))))

let prop_jaccard_bounds =
  QCheck2.Test.make ~count:200 ~name:"jaccard within [0,1] and symmetric"
    QCheck2.Gen.(pair small_set small_set)
    (fun (a, b) ->
      let s = Similarity.jaccard a b in
      s >= 0.0 && s <= 1.0
      && abs_float (s -. Similarity.jaccard b a) < 1e-12)

let prop_weighted_jaccard_bounds =
  QCheck2.Test.make ~count:200 ~name:"weighted jaccard within [0,1]"
    QCheck2.Gen.(pair small_set small_set)
    (fun (a, b) ->
      let weight id = float_of_int (1 + (Hashtbl.hash id mod 9)) /. 10.0 in
      let s = Weighted.weighted_jaccard ~weight a b in
      s >= 0.0 && s <= 1.0)

let prop_jaccard_self =
  QCheck2.Test.make ~count:200 ~name:"jaccard self is 1 for nonempty"
    small_set (fun a ->
      QCheck2.assume (not (Nvd.String_set.is_empty a));
      Similarity.jaccard a a = 1.0)

let () =
  Alcotest.run "vuln"
    [
      ( "cpe",
        [
          Alcotest.test_case "make normalizes" `Quick test_cpe_make;
          Alcotest.test_case "make rejects empty" `Quick test_cpe_make_invalid;
          Alcotest.test_case "parse" `Quick test_cpe_parse;
          Alcotest.test_case "parse dash version" `Quick
            test_cpe_parse_dash_version;
          Alcotest.test_case "parse rejects malformed" `Quick
            test_cpe_parse_invalid;
          Alcotest.test_case "round-trip" `Quick test_cpe_roundtrip;
          Alcotest.test_case "pattern matching" `Quick test_cpe_matches;
        ] );
      ( "cve",
        [
          Alcotest.test_case "make" `Quick test_cve_make;
          Alcotest.test_case "rejects malformed ids" `Quick test_cve_bad_ids;
          Alcotest.test_case "cvss range" `Quick test_cve_cvss_range;
        ] );
      ( "nvd",
        [
          Alcotest.test_case "add/find/replace" `Quick test_nvd_basic;
          Alcotest.test_case "year windows" `Quick test_nvd_window;
        ] );
      ( "similarity",
        [
          Alcotest.test_case "jaccard" `Quick test_jaccard;
          Alcotest.test_case "of_counts" `Quick test_of_counts;
          Alcotest.test_case "of_counts validation" `Quick
            test_of_counts_invalid;
          QCheck_alcotest.to_alcotest prop_jaccard_bounds;
          QCheck_alcotest.to_alcotest prop_jaccard_self;
          QCheck_alcotest.to_alcotest prop_weighted_jaccard_bounds;
        ] );
      ( "json",
        [
          Alcotest.test_case "atoms" `Quick test_json_atoms;
          Alcotest.test_case "nested" `Quick test_json_nested;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "errors" `Quick test_json_errors;
          Alcotest.test_case "depth limit" `Quick test_json_depth_limit;
          Alcotest.test_case "print round-trip" `Quick
            test_json_print_roundtrip;
          QCheck_alcotest.to_alcotest prop_json_roundtrip;
          QCheck_alcotest.to_alcotest prop_json_truncation;
          QCheck_alcotest.to_alcotest prop_json_byte_flip;
        ] );
      ( "feed",
        [
          Alcotest.test_case "cpe 2.3" `Quick test_cpe23;
          Alcotest.test_case "decode" `Quick test_feed_decode;
          Alcotest.test_case "corpus round-trip" `Quick test_feed_roundtrip;
          Alcotest.test_case "bad documents" `Quick test_feed_bad_documents;
          Alcotest.test_case "cvss range" `Quick test_feed_cvss_range;
        ] );
      ( "cvss",
        [
          Alcotest.test_case "v2 known vectors" `Quick test_cvss_v2_known;
          Alcotest.test_case "v3 known vectors" `Quick test_cvss_v3_known;
          Alcotest.test_case "parse errors" `Quick test_cvss_parse_errors;
          Alcotest.test_case "version dispatch" `Quick test_cvss_dispatch;
          Alcotest.test_case "severity bands" `Quick test_cvss_severity;
          QCheck_alcotest.to_alcotest prop_cvss_v2_roundtrip;
          QCheck_alcotest.to_alcotest prop_cvss_v2_range;
          QCheck_alcotest.to_alcotest prop_cvss_v3_roundtrip;
          QCheck_alcotest.to_alcotest prop_cvss_v3_range;
          QCheck_alcotest.to_alcotest prop_cvss_v3_impact_monotone;
        ] );
      ( "weighted",
        [
          Alcotest.test_case "unit weights = jaccard" `Quick
            test_weighted_unit_is_jaccard;
          Alcotest.test_case "severity shifts similarity" `Quick
            test_weighted_severity_shifts;
          Alcotest.test_case "weighted table from NVD" `Quick
            test_weighted_of_nvd;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "matches the paper's cells" `Quick
            test_corpus_matches_paper;
          Alcotest.test_case "synthesis reproduces counts exactly" `Quick
            test_synthesis_exact;
          Alcotest.test_case "synthetic years in window" `Quick
            test_synthesis_years;
          Alcotest.test_case "find_spec" `Quick test_find_spec;
        ] );
    ]
