(* Tests for the agent-based malware-propagation engine. *)

module Engine = Netdiv_sim.Engine
module Gen = Netdiv_graph.Gen
module Graph = Netdiv_graph.Graph
module Network = Netdiv_core.Network
module Assignment = Netdiv_core.Assignment

let rng seed = Random.State.make [| seed |]

(* one-service line network with parameterizable similarity *)
let line_net ?(n = 5) ?(sim = 0.5) () =
  let services =
    [| { Network.sv_name = "os"; sv_products = [| "A"; "B" |];
         sv_similarity = [| 1.0; sim; sim; 1.0 |] } |]
  in
  Network.create ~graph:(Gen.line n) ~services
    ~hosts:
      (Array.init n (fun h ->
           { Network.h_name = Printf.sprintf "h%d" h;
             h_services = [ (0, [||]) ] }))

let mono net = Assignment.make net (fun ~host:_ ~service:_ -> 0)
let alternating net = Assignment.make net (fun ~host ~service:_ -> host mod 2)

let test_entry_is_target () =
  let net = line_net () in
  Alcotest.(check (option int)) "tick zero" (Some 0)
    (Engine.run ~rng:(rng 1) (mono net) ~entry:2 ~target:2)

let test_deterministic_under_seed () =
  let net = line_net ~n:8 () in
  let a = alternating net in
  let r1 = Engine.run ~rng:(rng 42) a ~entry:0 ~target:7 in
  let r2 = Engine.run ~rng:(rng 42) a ~entry:0 ~target:7 in
  Alcotest.(check (option int)) "same outcome" r1 r2

let test_certain_infection_speed () =
  (* attempt_scale 1, identical products: one hop per tick, no floor *)
  let net = line_net ~n:6 () in
  let r =
    Engine.run ~rng:(rng 2) ~attempt_scale:1.0 ~sim_floor:0.0 (mono net)
      ~entry:0 ~target:5
  in
  Alcotest.(check (option int)) "five hops" (Some 5) r

let test_zero_rate_blocks () =
  (* similarity 0, floor 0: the worm can never move *)
  let net = line_net ~sim:0.0 () in
  let r =
    Engine.run ~rng:(rng 3) ~attempt_scale:1.0 ~sim_floor:0.0
      (alternating net) ~entry:0 ~target:4
  in
  Alcotest.(check (option int)) "blocked" None r

let test_dead_worm_terminates_early () =
  (* with zero rates everywhere the engine must stop long before the cap;
     a pathological spin would make this test time out *)
  let net = line_net ~n:4 ~sim:0.0 () in
  let t0 = Unix.gettimeofday () in
  ignore
    (Engine.run ~rng:(rng 4) ~attempt_scale:1.0 ~sim_floor:0.0
       ~max_ticks:10_000_000 (alternating net) ~entry:0 ~target:3);
  Alcotest.(check bool) "fast" true (Unix.gettimeofday () -. t0 < 1.0)

let test_mttc_stats () =
  let net = line_net ~n:4 () in
  let stats =
    Engine.mttc ~rng:(rng 5) ~attempt_scale:1.0 ~sim_floor:0.0 ~runs:50
      (mono net) ~entry:0 ~target:3
  in
  Alcotest.(check int) "all succeed" 50 stats.Engine.successes;
  Alcotest.(check (float 1e-9)) "deterministic time" 3.0
    stats.Engine.mean_ticks

let test_mttc_diversity_slows () =
  let net = line_net ~n:5 ~sim:0.2 () in
  let fast =
    Engine.mttc ~rng:(rng 6) ~runs:300 (mono net) ~entry:0 ~target:4
  in
  let slow =
    Engine.mttc ~rng:(rng 7) ~runs:300 (alternating net) ~entry:0 ~target:4
  in
  Alcotest.(check bool) "all reach (mono)" true (fast.Engine.successes = 300);
  Alcotest.(check bool) "diversified slower" true
    (slow.Engine.mean_ticks > fast.Engine.mean_ticks)

let test_uniform_vs_best_strategy () =
  (* two services, one shared similarity 1.0 and one 0.0: the best-exploit
     attacker always finds the 1.0, the uniform one coin-flips *)
  let services =
    [|
      { Network.sv_name = "a"; sv_products = [| "P"; "Q" |];
        sv_similarity = [| 1.0; 1.0; 1.0; 1.0 |] };
      { Network.sv_name = "b"; sv_products = [| "P"; "Q" |];
        sv_similarity = [| 1.0; 0.0; 0.0; 1.0 |] };
    |]
  in
  let net =
    Network.create ~graph:(Gen.line 4) ~services
      ~hosts:
        (Array.init 4 (fun h ->
             { Network.h_name = Printf.sprintf "h%d" h;
               h_services = [ (0, [||]); (1, [||]) ] }))
  in
  let a = Assignment.make net (fun ~host ~service -> (host + service) mod 2) in
  let best =
    Engine.mttc ~rng:(rng 8) ~strategy:Engine.Best_exploit
      ~attempt_scale:1.0 ~sim_floor:0.0 ~runs:200 a ~entry:0 ~target:3
  in
  let uniform =
    Engine.mttc ~rng:(rng 9) ~strategy:Engine.Uniform_exploit
      ~attempt_scale:1.0 ~sim_floor:0.0 ~runs:200 a ~entry:0 ~target:3
  in
  Alcotest.(check (float 1e-9)) "recon attacker is optimal" 3.0
    best.Engine.mean_ticks;
  Alcotest.(check bool) "uniform attacker is slower" true
    (uniform.Engine.mean_ticks > best.Engine.mean_ticks)

let test_epidemic_curve_monotone () =
  let net = line_net ~n:10 () in
  let curve = Engine.epidemic_curve ~rng:(rng 10) (mono net) ~entry:0 in
  Alcotest.(check bool) "non-empty" true (Array.length curve > 0);
  let ok = ref (curve.(0) >= 1) in
  for i = 1 to Array.length curve - 1 do
    if curve.(i) < curve.(i - 1) then ok := false
  done;
  Alcotest.(check bool) "monotone" true !ok;
  Alcotest.(check bool) "bounded by hosts" true
    (Array.for_all (fun c -> c <= 10) curve)

let test_invalid_entry () =
  let net = line_net () in
  match Engine.run ~rng:(rng 11) (mono net) ~entry:99 ~target:0 with
  | _ -> Alcotest.fail "accepted bad entry"
  | exception Invalid_argument _ -> ()

(* ---------------------------------------------------------------- stat *)

let test_stat_basics () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Netdiv_sim.Stat.mean xs);
  Alcotest.(check (float 1e-9)) "variance" (32.0 /. 7.0)
    (Netdiv_sim.Stat.variance xs);
  Alcotest.(check (float 1e-9)) "median" 4.5
    (Netdiv_sim.Stat.percentile xs 0.5);
  Alcotest.(check (float 1e-9)) "p0" 2.0 (Netdiv_sim.Stat.percentile xs 0.0);
  Alcotest.(check (float 1e-9)) "p100" 9.0
    (Netdiv_sim.Stat.percentile xs 1.0);
  let s = Netdiv_sim.Stat.summarize xs in
  Alcotest.(check int) "n" 8 s.Netdiv_sim.Stat.n;
  let lo, hi = s.Netdiv_sim.Stat.ci95 in
  Alcotest.(check bool) "ci brackets mean" true (lo < 5.0 && 5.0 < hi);
  match Netdiv_sim.Stat.summarize [||] with
  | _ -> Alcotest.fail "accepted empty sample"
  | exception Invalid_argument _ -> ()

let test_stat_percentile_interpolation () =
  let xs = [| 10.0; 20.0 |] in
  Alcotest.(check (float 1e-9)) "quarter" 12.5
    (Netdiv_sim.Stat.percentile xs 0.25);
  match Netdiv_sim.Stat.percentile xs 1.5 with
  | _ -> Alcotest.fail "accepted p > 1"
  | exception Invalid_argument _ -> ()

(* -------------------------------------------------------- new strategies *)

let test_arsenal_weaker_than_adaptive () =
  (* three products in a rainbow corridor A-B-C-A with sim(A,B) =
     sim(B,C) = 0.5 but sim(A,C) = 0.1: the adaptive worm re-arms at
     every hop (0.5 each), the static arsenal (forged for A) hits B at
     0.5 but C at only 0.1 *)
  let products = [| "A"; "B"; "C" |] in
  let sim =
    [| 1.0; 0.5; 0.1;
       0.5; 1.0; 0.5;
       0.1; 0.5; 1.0 |]
  in
  let net =
    Network.create ~graph:(Gen.line 4)
      ~services:
        [| { Network.sv_name = "os"; sv_products = products;
             sv_similarity = sim } |]
      ~hosts:
        (Array.init 4 (fun h ->
             { Network.h_name = Printf.sprintf "h%d" h;
               h_services = [ (0, [||]) ] }))
  in
  (* A - B - C - C: the adaptive worm ends with a same-product hop, the
     arsenal is stuck with sim(A,C) = 0.1 twice *)
  let corridor = [| 0; 1; 2; 2 |] in
  let a = Assignment.make net (fun ~host ~service:_ -> corridor.(host)) in
  let best =
    Engine.mttc ~rng:(rng 32) ~strategy:Engine.Best_exploit
      ~attempt_scale:1.0 ~sim_floor:0.0 ~runs:400 a ~entry:0 ~target:3
  in
  let arsenal =
    Engine.mttc ~rng:(rng 33) ~strategy:Engine.Arsenal_exploit
      ~attempt_scale:1.0 ~sim_floor:0.0 ~runs:400 a ~entry:0 ~target:3
  in
  Alcotest.(check bool) "static worm is slower" true
    (arsenal.Engine.mean_ticks > best.Engine.mean_ticks);
  (* on a mono deployment the arsenal is as good as reconnaissance *)
  let mono_net = line_net ~n:4 () in
  let m = mono mono_net in
  let best_mono =
    Engine.mttc ~rng:(rng 34) ~strategy:Engine.Best_exploit
      ~attempt_scale:1.0 ~sim_floor:0.0 ~runs:50 m ~entry:0 ~target:3
  in
  let arsenal_mono =
    Engine.mttc ~rng:(rng 35) ~strategy:Engine.Arsenal_exploit
      ~attempt_scale:1.0 ~sim_floor:0.0 ~runs:50 m ~entry:0 ~target:3
  in
  Alcotest.(check (float 1e-9)) "equal on mono" best_mono.Engine.mean_ticks
    arsenal_mono.Engine.mean_ticks

let test_mttc_samples_and_summary () =
  let net = line_net ~n:4 () in
  let samples =
    Engine.mttc_samples ~rng:(rng 34) ~attempt_scale:1.0 ~sim_floor:0.0
      ~runs:50 (mono net) ~entry:0 ~target:3
  in
  Alcotest.(check int) "all runs" 50 (Array.length samples);
  Alcotest.(check bool) "deterministic times" true
    (Array.for_all (fun t -> t = 3) samples);
  let stats, summary =
    Engine.mttc_summary ~rng:(rng 35) ~attempt_scale:1.0 ~sim_floor:0.0
      ~runs:50 (mono net) ~entry:0 ~target:3
  in
  Alcotest.(check int) "successes" 50 stats.Engine.successes;
  match summary with
  | Some s -> Alcotest.(check (float 1e-9)) "median" 3.0 s.Netdiv_sim.Stat.median
  | None -> Alcotest.fail "expected summary"

let test_mttc_parallel_matches_domains () =
  let net = line_net ~n:6 ~sim:0.3 () in
  let a = alternating net in
  let with_domains d =
    Engine.mttc_parallel ~domains:d ~seed:9 ~runs:120 a ~entry:0 ~target:5 ()
  in
  let one = with_domains 1 in
  let four = with_domains 4 in
  Alcotest.(check int) "same successes" one.Engine.successes
    four.Engine.successes;
  Alcotest.(check (float 1e-9)) "same mean" one.Engine.mean_ticks
    four.Engine.mean_ticks

let test_mttc_parallel_uniform_exploit () =
  (* the pooled uniform-exploit path must also be domain-count-invariant *)
  let net = line_net ~n:6 ~sim:0.3 () in
  let a = alternating net in
  let with_domains d =
    Engine.mttc_parallel ~domains:d ~seed:21 ~strategy:Engine.Uniform_exploit
      ~runs:120 a ~entry:0 ~target:5 ()
  in
  let one = with_domains 1 in
  let three = with_domains 3 in
  let eight = with_domains 8 in
  Alcotest.(check int) "same successes (3 domains)" one.Engine.successes
    three.Engine.successes;
  Alcotest.(check (float 1e-9)) "same mean (3 domains)" one.Engine.mean_ticks
    three.Engine.mean_ticks;
  Alcotest.(check int) "same successes (oversubscribed)" one.Engine.successes
    eight.Engine.successes;
  Alcotest.(check (float 1e-9)) "same mean (oversubscribed)"
    one.Engine.mean_ticks eight.Engine.mean_ticks

(* -------------------------------------------------------------- defense *)

let no_defense = { Engine.detect_rate = 0.0; immunize = false }

let test_defended_zero_rate_is_undefended () =
  (* certain infection, no detection: target at distance d falls at tick d *)
  let net = line_net ~n:5 () in
  Alcotest.(check (option int)) "distance ticks" (Some 4)
    (Engine.run_defended ~rng:(rng 61) ~attempt_scale:1.0 ~sim_floor:0.0
       ~defense:no_defense (mono net) ~entry:0 ~target:4)

let test_defended_perfect_detection_contains () =
  (* detection probability 1 with immunization: the worm is wiped after
     its first tick, so a target two hops away never falls *)
  let net = line_net ~n:5 () in
  let defense = { Engine.detect_rate = 1.0; immunize = true } in
  let stats =
    Engine.mttc_defended ~rng:(rng 62) ~attempt_scale:0.8 ~sim_floor:0.0
      ~defense ~runs:200 (mono net) ~entry:0 ~target:4
  in
  Alcotest.(check int) "never compromised" 0 stats.Engine.successes

let test_defended_rate_monotone () =
  (* stronger detection -> fewer compromised runs *)
  let net = line_net ~n:5 ~sim:0.4 () in
  let a = alternating net in
  let success rate seed =
    (Engine.mttc_defended ~rng:(rng seed) ~attempt_scale:0.5 ~sim_floor:0.0
       ~defense:{ Engine.detect_rate = rate; immunize = true }
       ~runs:400 a ~entry:0 ~target:4)
      .Engine.successes
  in
  let weak = success 0.01 63 in
  let strong = success 0.2 64 in
  Alcotest.(check bool) "containment improves" true (strong < weak);
  Alcotest.(check bool) "weak defense still leaks" true (weak > 0)

let test_defended_validation () =
  let net = line_net () in
  match
    Engine.run_defended ~rng:(rng 65)
      ~defense:{ Engine.detect_rate = 1.5; immunize = false }
      (mono net) ~entry:0 ~target:1
  with
  | _ -> Alcotest.fail "accepted detect_rate > 1"
  | exception Invalid_argument _ -> ()

(* property: MTTC can never beat the BFS distance *)
let prop_mttc_at_least_distance =
  QCheck2.Test.make ~count:30 ~name:"compromise time >= hop distance"
    QCheck2.Gen.(pair (2 -- 20) (0 -- 10_000))
    (fun (n, seed) ->
      let net = line_net ~n () in
      let a = mono net in
      match
        Engine.run ~rng:(rng seed) ~attempt_scale:0.9 a ~entry:0
          ~target:(n - 1)
      with
      | None -> true
      | Some t -> t >= n - 1)

let () =
  Alcotest.run "sim"
    [
      ( "engine",
        [
          Alcotest.test_case "entry is target" `Quick test_entry_is_target;
          Alcotest.test_case "deterministic under seed" `Quick
            test_deterministic_under_seed;
          Alcotest.test_case "certain infection speed" `Quick
            test_certain_infection_speed;
          Alcotest.test_case "zero rate blocks" `Quick test_zero_rate_blocks;
          Alcotest.test_case "dead worm terminates early" `Quick
            test_dead_worm_terminates_early;
          Alcotest.test_case "mttc statistics" `Quick test_mttc_stats;
          Alcotest.test_case "diversity slows compromise" `Quick
            test_mttc_diversity_slows;
          Alcotest.test_case "uniform vs reconnaissance attacker" `Quick
            test_uniform_vs_best_strategy;
          Alcotest.test_case "epidemic curve monotone" `Quick
            test_epidemic_curve_monotone;
          Alcotest.test_case "invalid entry rejected" `Quick
            test_invalid_entry;
        ] );
      ( "stat",
        [
          Alcotest.test_case "basics" `Quick test_stat_basics;
          Alcotest.test_case "percentile interpolation" `Quick
            test_stat_percentile_interpolation;
        ] );
      ( "strategies",
        [
          Alcotest.test_case "static arsenal weaker than adaptive" `Quick
            test_arsenal_weaker_than_adaptive;
          Alcotest.test_case "samples and summary" `Quick
            test_mttc_samples_and_summary;
          Alcotest.test_case "parallel matches sequential" `Quick
            test_mttc_parallel_matches_domains;
          Alcotest.test_case "mttc parallel uniform exploit" `Quick
            test_mttc_parallel_uniform_exploit;
        ] );
      ( "defense",
        [
          Alcotest.test_case "zero detection = undefended" `Quick
            test_defended_zero_rate_is_undefended;
          Alcotest.test_case "perfect detection contains" `Quick
            test_defended_perfect_detection_contains;
          Alcotest.test_case "containment monotone in rate" `Quick
            test_defended_rate_monotone;
          Alcotest.test_case "validation" `Quick test_defended_validation;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_mttc_at_least_distance ]);
    ]
