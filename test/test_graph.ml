(* Tests for the undirected-graph substrate: construction, generators and
   traversal. *)

open Netdiv_graph

let rng () = Random.State.make [| 42 |]

(* ---------------------------------------------------------------- graph *)

let test_of_edges () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (1, 0); (2, 3); (1, 2) ] in
  Alcotest.(check int) "nodes" 4 (Graph.n_nodes g);
  Alcotest.(check int) "dedup edges" 3 (Graph.n_edges g);
  Alcotest.(check int) "degree 1" 2 (Graph.degree g 1);
  Alcotest.(check bool) "mem" true (Graph.mem_edge g 2 1);
  Alcotest.(check bool) "mem sym" true (Graph.mem_edge g 1 2);
  Alcotest.(check bool) "not mem" false (Graph.mem_edge g 0 3);
  Alcotest.(check (array int)) "neighbors sorted" [| 0; 2 |]
    (Graph.neighbors g 1)

let test_of_edges_invalid () =
  Alcotest.check_raises "self loop"
    (Invalid_argument "Graph.of_edges: self-loop at 1") (fun () ->
      ignore (Graph.of_edges ~n:3 [ (1, 1) ]));
  (match Graph.of_edges ~n:2 [ (0, 5) ] with
  | _ -> Alcotest.fail "accepted out-of-range edge"
  | exception Invalid_argument _ -> ())

let test_empty_graph () =
  let g = Graph.of_edges ~n:0 [] in
  Alcotest.(check int) "no nodes" 0 (Graph.n_nodes g);
  Alcotest.(check int) "components" 0 (Traversal.n_components g)

let test_iter_edges () =
  let g = Graph.of_edges ~n:3 [ (2, 0); (1, 2) ] in
  let seen = ref [] in
  Graph.iter_edges (fun u v -> seen := (u, v) :: !seen) g;
  Alcotest.(check (list (pair int int))) "canonical order" [ (1, 2); (0, 2) ]
    !seen

(* ------------------------------------------------------------ generators *)

let test_gnm_counts () =
  let g = Gen.gnm ~rng:(rng ()) ~n:30 ~m:100 in
  Alcotest.(check int) "edges" 100 (Graph.n_edges g);
  let dense = Gen.gnm ~rng:(rng ()) ~n:10 ~m:45 in
  Alcotest.(check int) "complete" 45 (Graph.n_edges dense)

let test_gnm_invalid () =
  match Gen.gnm ~rng:(rng ()) ~n:4 ~m:7 with
  | _ -> Alcotest.fail "accepted m > max"
  | exception Invalid_argument _ -> ()

let test_avg_degree () =
  let g = Gen.avg_degree ~rng:(rng ()) ~n:200 ~degree:10 in
  Alcotest.(check int) "m = n*deg/2" 1000 (Graph.n_edges g);
  Alcotest.(check (float 0.01)) "avg degree" 10.0 (Graph.avg_degree g)

let test_connected_gen () =
  let g = Gen.connected_avg_degree ~rng:(rng ()) ~n:300 ~degree:4 in
  Alcotest.(check bool) "connected" true (Traversal.is_connected g);
  Alcotest.(check int) "edge count" 600 (Graph.n_edges g)

let test_deterministic () =
  let a = Gen.gnm ~rng:(Random.State.make [| 7 |]) ~n:50 ~m:100 in
  let b = Gen.gnm ~rng:(Random.State.make [| 7 |]) ~n:50 ~m:100 in
  Alcotest.(check bool) "same edges" true (Graph.edges a = Graph.edges b)

let test_named_shapes () =
  Alcotest.(check int) "line edges" 9 (Graph.n_edges (Gen.line 10));
  Alcotest.(check int) "cycle edges" 10 (Graph.n_edges (Gen.cycle 10));
  Alcotest.(check int) "star edges" 9 (Graph.n_edges (Gen.star 10));
  Alcotest.(check int) "grid edges" 12 (Graph.n_edges (Gen.grid 3 3));
  Alcotest.(check int) "complete edges" 10 (Graph.n_edges (Gen.complete 5));
  Alcotest.(check int) "grid max degree" 4 (Graph.max_degree (Gen.grid 5 5))

(* ------------------------------------------------------------- traversal *)

let test_bfs () =
  let g = Gen.line 5 in
  Alcotest.(check (array int)) "line distances" [| 0; 1; 2; 3; 4 |]
    (Traversal.bfs g 0);
  let disconnected = Graph.of_edges ~n:4 [ (0, 1) ] in
  Alcotest.(check (array int)) "unreachable -1" [| 0; 1; -1; -1 |]
    (Traversal.bfs disconnected 0)

let test_shortest_path () =
  let g = Graph.of_edges ~n:5 [ (0, 1); (1, 2); (2, 4); (0, 3); (3, 4) ] in
  (match Traversal.shortest_path g 0 4 with
  | Some p -> Alcotest.(check int) "hop count" 3 (List.length p)
  | None -> Alcotest.fail "no path");
  let disconnected = Graph.of_edges ~n:3 [ (0, 1) ] in
  Alcotest.(check bool) "none" true
    (Traversal.shortest_path disconnected 0 2 = None)

let test_components () =
  let g = Graph.of_edges ~n:6 [ (0, 1); (1, 2); (4, 5) ] in
  Alcotest.(check int) "three components" 3 (Traversal.n_components g);
  Alcotest.(check bool) "not connected" false (Traversal.is_connected g);
  let comp = Traversal.components g in
  Alcotest.(check bool) "same comp" true (comp.(0) = comp.(2));
  Alcotest.(check bool) "diff comp" true (comp.(0) <> comp.(4))

let test_bfs_dag_acyclic_complete () =
  let g = Gen.complete 6 in
  let dag = Traversal.bfs_dag g 0 in
  Alcotest.(check int) "keeps all edges" (Graph.n_edges g) (List.length dag);
  (* topological position strictly increases along every edge *)
  let dist = Traversal.bfs g 0 in
  List.iter
    (fun (u, v) ->
      let ku = (dist.(u), u) and kv = (dist.(v), v) in
      if compare ku kv >= 0 then Alcotest.fail "edge not increasing")
    dag

let test_bfs_dag_drops_unreachable () =
  let g = Graph.of_edges ~n:5 [ (0, 1); (2, 3) ] in
  let dag = Traversal.bfs_dag g 0 in
  Alcotest.(check (list (pair int int))) "only reachable" [ (0, 1) ] dag

(* ------------------------------------------------------------ topologies *)

let test_barabasi_albert () =
  let g = Topologies.barabasi_albert ~rng:(rng ()) ~n:100 ~m:3 in
  Alcotest.(check int) "nodes" 100 (Graph.n_nodes g);
  (* seed clique C(4,2)=6 edges, then 96 nodes x 3 edges *)
  Alcotest.(check int) "edges" (6 + (96 * 3)) (Graph.n_edges g);
  Alcotest.(check bool) "connected" true (Traversal.is_connected g);
  (* scale-free: hubs emerge, max degree well above the mean *)
  Alcotest.(check bool) "has hubs" true
    (float_of_int (Graph.max_degree g) > 2.0 *. Graph.avg_degree g);
  match Topologies.barabasi_albert ~rng:(rng ()) ~n:3 ~m:3 with
  | _ -> Alcotest.fail "accepted m >= n"
  | exception Invalid_argument _ -> ()

let test_watts_strogatz () =
  (* beta = 0: the pristine ring lattice *)
  let lattice = Topologies.watts_strogatz ~rng:(rng ()) ~n:20 ~k:4 ~beta:0.0 in
  Alcotest.(check int) "lattice edges" 40 (Graph.n_edges lattice);
  Alcotest.(check int) "lattice regular" 4 (Graph.max_degree lattice);
  Alcotest.(check bool) "lattice clustering high" true
    (Stats.average_clustering lattice > 0.4);
  (* beta = 0.3: still n*k/2 edges (rewired, not deleted), lower clustering *)
  let small_world =
    Topologies.watts_strogatz ~rng:(rng ()) ~n:200 ~k:6 ~beta:0.3
  in
  Alcotest.(check int) "rewired keeps edges" 600 (Graph.n_edges small_world);
  (match Topologies.watts_strogatz ~rng:(rng ()) ~n:10 ~k:3 ~beta:0.1 with
  | _ -> Alcotest.fail "accepted odd k"
  | exception Invalid_argument _ -> ());
  match Topologies.watts_strogatz ~rng:(rng ()) ~n:10 ~k:4 ~beta:1.5 with
  | _ -> Alcotest.fail "accepted beta > 1"
  | exception Invalid_argument _ -> ()

let test_zoned () =
  let z =
    Topologies.zoned ~rng:(rng ()) ~zone_sizes:[| 5; 8; 12; 4 |]
      ~gateway_links:2 ()
  in
  Alcotest.(check int) "nodes" 29 (Graph.n_nodes z.Topologies.graph);
  Alcotest.(check bool) "connected" true
    (Traversal.is_connected z.Topologies.graph);
  (* zone map is consistent with sizes *)
  let counts = Array.make 4 0 in
  Array.iter (fun zn -> counts.(zn) <- counts.(zn) + 1) z.Topologies.zone_of;
  Alcotest.(check (array int)) "zone sizes" [| 5; 8; 12; 4 |] counts;
  (* all gateways cross zones; all other edges stay inside one *)
  Graph.iter_edges
    (fun u v ->
      let crosses = z.Topologies.zone_of.(u) <> z.Topologies.zone_of.(v) in
      let is_gateway =
        List.exists
          (fun (a, b) -> (a = u && b = v) || (a = v && b = u))
          z.Topologies.gateways
      in
      Alcotest.(check bool) "gateway iff cross-zone" crosses is_gateway)
    z.Topologies.graph

let test_zoned_backbone () =
  (* star backbone: zones 1..3 all uplink to zone 0 *)
  let z =
    Topologies.zoned ~rng:(rng ()) ~zone_sizes:[| 6; 6; 6; 6 |]
      ~backbone:(Some [| -1; 0; 0; 0 |]) ~gateway_links:1 ()
  in
  List.iter
    (fun (u, v) ->
      let zu = z.Topologies.zone_of.(u) and zv = z.Topologies.zone_of.(v) in
      Alcotest.(check bool) "one end in zone 0" true (zu = 0 || zv = 0))
    z.Topologies.gateways;
  match
    Topologies.zoned ~rng:(rng ()) ~zone_sizes:[| 3; 3 |]
      ~backbone:(Some [| -1; 5 |]) ()
  with
  | _ -> Alcotest.fail "accepted forward backbone parent"
  | exception Invalid_argument _ -> ()

(* ----------------------------------------------------------------- stats *)

let test_degree_histogram () =
  let g = Gen.star 5 in
  let hist = Stats.degree_histogram g in
  Alcotest.(check int) "four leaves" 4 hist.(1);
  Alcotest.(check int) "one hub" 1 hist.(4);
  Alcotest.(check int) "total" 5 (Array.fold_left ( + ) 0 hist)

let test_density_clustering () =
  let complete = Gen.complete 6 in
  Alcotest.(check (float 1e-9)) "complete density" 1.0 (Stats.density complete);
  Alcotest.(check (float 1e-9)) "complete clustering" 1.0
    (Stats.average_clustering complete);
  let tree = Gen.star 6 in
  Alcotest.(check (float 1e-9)) "tree clustering" 0.0
    (Stats.average_clustering tree);
  let triangle_plus = Graph.of_edges ~n:4 [ (0, 1); (1, 2); (0, 2); (2, 3) ] in
  Alcotest.(check (float 1e-9)) "node 2 clustering" (1.0 /. 3.0)
    (Stats.local_clustering triangle_plus 2)

let test_diameter_paths () =
  let line = Gen.line 10 in
  Alcotest.(check int) "line diameter" 9 (Stats.diameter line);
  Alcotest.(check int) "cycle diameter" 5 (Stats.diameter (Gen.cycle 10));
  Alcotest.(check (float 1e-9)) "pair path" 1.0
    (Stats.average_path_length (Gen.complete 4));
  (* sampled variant stays a valid lower bound *)
  let g = Gen.connected_avg_degree ~rng:(rng ()) ~n:300 ~degree:4 in
  let exact = Stats.diameter g in
  let sampled = Stats.diameter ~sample:20 ~rng:(rng ()) g in
  Alcotest.(check bool) "sampled <= exact" true (sampled <= exact);
  Alcotest.(check bool) "sampled positive" true (sampled > 0)

(* ------------------------------------------------------------------ cut *)

let test_max_flow_basics () =
  Alcotest.(check int) "line" 1 (Cut.max_flow (Gen.line 5) ~source:0 ~sink:4);
  Alcotest.(check int) "cycle" 2 (Cut.max_flow (Gen.cycle 6) ~source:0 ~sink:3);
  Alcotest.(check int) "complete K5" 4
    (Cut.max_flow (Gen.complete 5) ~source:0 ~sink:4);
  let disconnected = Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  Alcotest.(check int) "disconnected" 0
    (Cut.max_flow disconnected ~source:0 ~sink:3);
  match Cut.max_flow (Gen.line 3) ~source:1 ~sink:1 with
  | _ -> Alcotest.fail "accepted source = sink"
  | exception Invalid_argument _ -> ()

let test_min_cut_menger () =
  (* the cut size equals the max flow, and removing it disconnects *)
  List.iter
    (fun (g, s, t) ->
      let flow = Cut.max_flow g ~source:s ~sink:t in
      let cut = Cut.min_edge_cut g ~source:s ~sink:t in
      Alcotest.(check int) "Menger" flow (List.length cut);
      Alcotest.(check bool) "really a cut" true
        (Cut.is_cut g ~source:s ~sink:t cut))
    [ (Gen.cycle 8, 0, 4); (Gen.complete 6, 0, 5); (Gen.grid 3 4, 0, 11);
      (Gen.star 7, 1, 5) ]

let test_min_cut_random () =
  for seed = 1 to 10 do
    let g =
      Gen.connected_avg_degree
        ~rng:(Random.State.make [| seed |])
        ~n:40 ~degree:4
    in
    let flow = Cut.max_flow g ~source:0 ~sink:39 in
    let cut = Cut.min_edge_cut g ~source:0 ~sink:39 in
    Alcotest.(check int) "Menger random" flow (List.length cut);
    Alcotest.(check bool) "separates" true
      (Cut.is_cut g ~source:0 ~sink:39 cut);
    (* removing any proper subset must NOT disconnect (minimality) *)
    match cut with
    | _ :: rest when rest <> [] ->
        Alcotest.(check bool) "proper subset is no cut" false
          (Cut.is_cut g ~source:0 ~sink:39 rest)
    | _ -> ()
  done

let test_greedy_partition () =
  (* a single part covers everything with id 0 *)
  let g = Gen.line 7 in
  Alcotest.(check bool) "single part" true
    (Array.for_all (fun p -> p = 0) (Cut.greedy_partition g ~parts:1));
  (* asking for more parts than nodes clamps: every id stays in range
     and every node of the 3-node line still gets a part *)
  let tiny = Cut.greedy_partition (Gen.line 3) ~parts:10 in
  Array.iter
    (fun p ->
      Alcotest.(check bool) "clamped id in range" true (p >= 0 && p < 3))
    tiny;
  (* balance: on 10 nodes / 3 parts, sizes differ by at most one and no
     part is empty *)
  let part = Cut.greedy_partition (Gen.line 10) ~parts:3 in
  let sizes = Array.make 3 0 in
  Array.iter
    (fun p ->
      Alcotest.(check bool) "id in range" true (p >= 0 && p < 3);
      sizes.(p) <- sizes.(p) + 1)
    part;
  let lo = Array.fold_left min max_int sizes
  and hi = Array.fold_left max 0 sizes in
  Alcotest.(check bool) "no empty part" true (lo > 0);
  Alcotest.(check bool) "sizes within one" true (hi - lo <= 1);
  (* BFS growth keeps line parts contiguous: exactly parts-1 boundaries *)
  let boundaries = ref 0 in
  for i = 0 to 8 do
    if part.(i) <> part.(i + 1) then incr boundaries
  done;
  Alcotest.(check int) "line parts contiguous" 2 !boundaries;
  (* disconnected graph: every node still gets a valid id and the
     partition stays balanced even though no part can span components *)
  let disc = Graph.of_edges ~n:6 [ (0, 1); (2, 3); (4, 5) ] in
  let dp = Cut.greedy_partition disc ~parts:3 in
  let dsizes = Array.make 3 0 in
  Array.iter
    (fun p ->
      Alcotest.(check bool) "disconnected id in range" true (p >= 0 && p < 3);
      dsizes.(p) <- dsizes.(p) + 1)
    dp;
  Array.iter (Alcotest.(check int) "disconnected balance" 2) dsizes;
  (* deterministic: same graph, same partition on every call *)
  let g2 = Gen.connected_avg_degree ~rng:(rng ()) ~n:50 ~degree:4 in
  let a = Cut.greedy_partition g2 ~parts:5 in
  let b = Cut.greedy_partition g2 ~parts:5 in
  Alcotest.(check bool) "deterministic" true (a = b);
  match Cut.greedy_partition (Gen.line 4) ~parts:0 with
  | _ -> Alcotest.fail "accepted parts = 0"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ dot *)

let test_dot_output () =
  let g = Gen.star 4 in
  let dot =
    Dot.to_dot ~name:"demo"
      ~label:(fun i -> Printf.sprintf "host %d" i)
      ~color:(fun i -> if i = 0 then Some "#ff0000" else None)
      ~shape:(fun i -> if i = 0 then Some "house" else None)
      ~edge_style:(fun u v -> if u = 0 && v = 1 then Some "color=red" else None)
      g
  in
  let contains needle =
    let rec search i =
      i + String.length needle <= String.length dot
      && (String.sub dot i (String.length needle) = needle || search (i + 1))
    in
    search 0
  in
  Alcotest.(check bool) "header" true (contains "graph \"demo\"");
  Alcotest.(check bool) "label" true (contains "label=\"host 2\"");
  Alcotest.(check bool) "color" true (contains "fillcolor=\"#ff0000\"");
  Alcotest.(check bool) "shape" true (contains "shape=house");
  Alcotest.(check bool) "styled edge" true (contains "n0 -- n1 [color=red];");
  Alcotest.(check bool) "plain edge" true (contains "n0 -- n3;");
  Alcotest.(check bool) "closed" true (contains "}")

let test_dot_escaping () =
  let g = Gen.line 2 in
  (* the label is: a, quote, b, backslash, c *)
  let dot = Dot.to_dot ~label:(fun _ -> "a\"b\\c") g in
  (* escaped form: backslash-quote and double-backslash *)
  let needle = {|a\"b\\c|} in
  let rec search i =
    i + String.length needle <= String.length dot
    && (String.sub dot i (String.length needle) = needle || search (i + 1))
  in
  Alcotest.(check bool) "escaped quote and backslash" true (search 0)

(* ------------------------------------------------------------- property *)

let graph_gen =
  QCheck2.Gen.(
    let* n = 2 -- 30 in
    let* m = 0 -- (n * (n - 1) / 2) in
    let* seed = 0 -- 10_000 in
    return (Gen.gnm ~rng:(Random.State.make [| seed |]) ~n ~m))

let prop_degree_sum =
  QCheck2.Test.make ~count:100 ~name:"sum of degrees = 2m" graph_gen
    (fun g ->
      let total = ref 0 in
      for i = 0 to Graph.n_nodes g - 1 do
        total := !total + Graph.degree g i
      done;
      !total = 2 * Graph.n_edges g)

let prop_neighbors_symmetric =
  QCheck2.Test.make ~count:100 ~name:"neighbor relation is symmetric"
    graph_gen (fun g ->
      let ok = ref true in
      Graph.iter_edges
        (fun u v ->
          if not (Graph.mem_edge g u v && Graph.mem_edge g v u) then
            ok := false)
        g;
      !ok)

let prop_bfs_triangle =
  QCheck2.Test.make ~count:100
    ~name:"bfs distances obey the triangle inequality over edges" graph_gen
    (fun g ->
      let dist = Traversal.bfs g 0 in
      let ok = ref true in
      Graph.iter_edges
        (fun u v ->
          match (dist.(u), dist.(v)) with
          | -1, -1 -> ()
          | -1, _ | _, -1 -> ok := false
          | du, dv -> if abs (du - dv) > 1 then ok := false)
        g;
      !ok)

let prop_cut_bounded_by_degree =
  QCheck2.Test.make ~count:50
    ~name:"max flow bounded by endpoint degrees" graph_gen (fun g ->
      QCheck2.assume (Graph.n_nodes g >= 2);
      let s = 0 and t = Graph.n_nodes g - 1 in
      QCheck2.assume (s <> t);
      let flow = Cut.max_flow g ~source:s ~sink:t in
      flow <= min (Graph.degree g s) (Graph.degree g t))

let prop_components_partition =
  QCheck2.Test.make ~count:100
    ~name:"edges never straddle two components" graph_gen (fun g ->
      let comp = Traversal.components g in
      let ok = ref true in
      Graph.iter_edges
        (fun u v -> if comp.(u) <> comp.(v) then ok := false)
        g;
      !ok)

let () =
  Alcotest.run "graph"
    [
      ( "graph",
        [
          Alcotest.test_case "of_edges" `Quick test_of_edges;
          Alcotest.test_case "of_edges validation" `Quick
            test_of_edges_invalid;
          Alcotest.test_case "empty graph" `Quick test_empty_graph;
          Alcotest.test_case "iter_edges canonical" `Quick test_iter_edges;
        ] );
      ( "gen",
        [
          Alcotest.test_case "gnm edge counts" `Quick test_gnm_counts;
          Alcotest.test_case "gnm rejects impossible m" `Quick
            test_gnm_invalid;
          Alcotest.test_case "avg_degree" `Quick test_avg_degree;
          Alcotest.test_case "connected generator" `Quick test_connected_gen;
          Alcotest.test_case "deterministic under seed" `Quick
            test_deterministic;
          Alcotest.test_case "named shapes" `Quick test_named_shapes;
        ] );
      ( "traversal",
        [
          Alcotest.test_case "bfs" `Quick test_bfs;
          Alcotest.test_case "shortest path" `Quick test_shortest_path;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "bfs_dag on complete graph" `Quick
            test_bfs_dag_acyclic_complete;
          Alcotest.test_case "bfs_dag drops unreachable" `Quick
            test_bfs_dag_drops_unreachable;
        ] );
      ( "topologies",
        [
          Alcotest.test_case "barabasi-albert" `Quick test_barabasi_albert;
          Alcotest.test_case "watts-strogatz" `Quick test_watts_strogatz;
          Alcotest.test_case "zoned" `Quick test_zoned;
          Alcotest.test_case "zoned backbone" `Quick test_zoned_backbone;
        ] );
      ( "stats",
        [
          Alcotest.test_case "degree histogram" `Quick test_degree_histogram;
          Alcotest.test_case "density and clustering" `Quick
            test_density_clustering;
          Alcotest.test_case "diameter and paths" `Quick test_diameter_paths;
        ] );
      ( "dot",
        [
          Alcotest.test_case "rendering" `Quick test_dot_output;
          Alcotest.test_case "escaping" `Quick test_dot_escaping;
        ] );
      ( "cut",
        [
          Alcotest.test_case "max flow" `Quick test_max_flow_basics;
          Alcotest.test_case "min cut = max flow" `Quick test_min_cut_menger;
          Alcotest.test_case "random graphs" `Quick test_min_cut_random;
          Alcotest.test_case "greedy partition" `Quick test_greedy_partition;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_degree_sum;
          QCheck_alcotest.to_alcotest prop_neighbors_symmetric;
          QCheck_alcotest.to_alcotest prop_bfs_triangle;
          QCheck_alcotest.to_alcotest prop_components_partition;
          QCheck_alcotest.to_alcotest prop_cut_bounded_by_degree;
        ] );
    ]
