(* Tests for the shared domain pool: chunked parallel iteration,
   deterministic seed splitting and exception propagation. *)

module Pool = Netdiv_par.Pool

(* ------------------------------------------------------ resolve_jobs *)

let test_resolve_jobs () =
  Alcotest.(check int) "explicit" 3 (Pool.resolve_jobs ~jobs:3 ());
  Alcotest.(check bool) "auto is positive" true (Pool.resolve_jobs () >= 1);
  (* out-of-range request falls back to auto instead of failing *)
  Alcotest.(check bool) "zero means auto" true
    (Pool.resolve_jobs ~jobs:0 () >= 1)

(* -------------------------------------------------------- split_seed *)

let test_split_seed () =
  (* deterministic and index-sensitive *)
  Alcotest.(check int) "reproducible" (Pool.split_seed 42 3)
    (Pool.split_seed 42 3);
  let seen = Hashtbl.create 64 in
  for i = 0 to 63 do
    let s = Pool.split_seed 42 i in
    Alcotest.(check bool) "non-negative" true (s >= 0);
    Alcotest.(check bool)
      (Printf.sprintf "index %d fresh" i)
      false (Hashtbl.mem seen s);
    Hashtbl.replace seen s ()
  done;
  Alcotest.(check bool) "seed-sensitive" false
    (Pool.split_seed 1 0 = Pool.split_seed 2 0)

(* ------------------------------------------------------ parallel_for *)

let sum_serial lo hi f =
  let acc = ref 0 in
  for i = lo to hi - 1 do
    acc := !acc + f i
  done;
  !acc

let test_parallel_for_matches_serial () =
  let f i = (i * i) + 7 in
  List.iter
    (fun (jobs, chunks, lo, hi) ->
      let hits = Array.make (max hi 1) 0 in
      (* Pool.write so a sanitized run (NETDIV_SANITIZE=1) checks these
         stores for chunk overlap too *)
      Pool.parallel_for ~jobs ~chunks ~lo ~hi (fun i ->
          Pool.write hits i (hits.(i) + f i));
      let got = Array.fold_left ( + ) 0 hits in
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d chunks=%d [%d,%d)" jobs chunks lo hi)
        (sum_serial lo hi f) got;
      (* every index visited exactly once *)
      for i = lo to hi - 1 do
        Alcotest.(check int) "visited once" (f i) hits.(i)
      done)
    [
      (1, 1, 0, 10);
      (1, 4, 0, 10);
      (4, 8, 0, 100);
      (4, 64, 0, 100) (* oversubscribed: more chunks than elements/cores *);
      (8, 200, 0, 50);
      (3, 3, 5, 8);
    ]

let test_empty_and_singleton () =
  let count = ref 0 in
  Pool.parallel_for ~jobs:4 ~lo:3 ~hi:3 (fun _ -> incr count);
  Alcotest.(check int) "empty range" 0 !count;
  Pool.parallel_for ~jobs:4 ~lo:3 ~hi:2 (fun _ -> incr count);
  Alcotest.(check int) "inverted range" 0 !count;
  let got = Pool.map_range ~jobs:4 ~lo:7 ~hi:8 (fun i -> i * 2) in
  Alcotest.(check (array int)) "singleton" [| 14 |] got;
  Alcotest.(check (array int)) "empty map" [||]
    (Pool.map_range ~jobs:2 ~lo:0 ~hi:0 (fun i -> i))

let test_map_range_order () =
  (* results land at their index regardless of job count *)
  let expect = Array.init 97 (fun i -> i * 3) in
  List.iter
    (fun jobs ->
      let got = Pool.map_range ~jobs ~lo:0 ~hi:97 (fun i -> i * 3) in
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d" jobs)
        expect got)
    [ 1; 2; 4; 16 ]

let test_map_reduce () =
  let expect = sum_serial 0 1000 (fun i -> i) in
  List.iter
    (fun jobs ->
      let got =
        (* ?cost:None erases the trailing optional: map_reduce has no
           positional argument, so partial application would otherwise
           leave a [?cost:int -> int] closure *)
        Pool.map_reduce ~jobs ~chunks:13 ?cost:None ~lo:0 ~hi:1000
          ~map:(fun i -> i) ~reduce:( + ) ~init:0
      in
      Alcotest.(check int) (Printf.sprintf "jobs=%d" jobs) expect got)
    [ 1; 4 ];
  Alcotest.(check int) "empty is init" 99
    (Pool.map_reduce ~jobs:4 ~chunks:4 ?cost:None ~lo:0 ~hi:0
       ~map:(fun i -> i) ~reduce:( + ) ~init:99)

exception Boom of int

let test_exception_propagation () =
  (* the worker's exception reaches the caller, for any job count *)
  List.iter
    (fun jobs ->
      match
        Pool.parallel_for ~jobs ~lo:0 ~hi:100 (fun i ->
            if i = 37 then raise (Boom i))
      with
      | () -> Alcotest.fail "exception swallowed"
      | exception Boom 37 -> ()
      | exception e ->
          Alcotest.failf "unexpected exception %s" (Printexc.to_string e))
    [ 1; 4 ];
  (* with several failing chunks, the lowest chunk's exception wins *)
  match
    Pool.parallel_for ~jobs:4 ~chunks:10 ~lo:0 ~hi:100 (fun i ->
        if i mod 10 = 0 then raise (Boom i))
  with
  | () -> Alcotest.fail "exception swallowed"
  | exception Boom 0 -> ()
  | exception Boom n -> Alcotest.failf "wrong chunk won: Boom %d" n
  | exception e ->
      Alcotest.failf "unexpected exception %s" (Printexc.to_string e)

(* Run [f] with the sanitizer forced on/off, restoring the environment
   default afterwards even on failure. *)
let with_sanitize b f =
  Pool.set_sanitize (Some b);
  Fun.protect ~finally:(fun () -> Pool.set_sanitize None) f

(* ------------------------------------------------------- granularity *)

(* A region whose writes collide across chunks but are fine within one:
   every index writes slot [i mod 4] over [0,8).  Under the sanitizer it
   races iff the plan actually split the range, which makes the inline/
   chunked decision observable from the outside. *)
let mod4_region ?chunks ~jobs ~cost () =
  let out = Array.make 4 (-1) in
  Pool.parallel_for ?chunks ~jobs ~cost ~lo:0 ~hi:8 (fun i ->
      Pool.write out (i mod 4) i)

let test_cost_small_runs_inline () =
  with_sanitize true (fun () ->
      (* 8 items x 1 unit is far below the cutoff: one chunk owns the
         whole range, so the overlapping writes are chunk-internal *)
      match mod4_region ~jobs:4 ~cost:1 () with
      | () -> ()
      | exception Pool.Race msg ->
          Alcotest.failf "small hinted region was split: %s" msg)

let test_cost_large_stays_parallel () =
  with_sanitize true (fun () ->
      (* the same region with a huge per-item estimate must keep
         chunking, and the sanitizer proves it did *)
      match mod4_region ~jobs:2 ~cost:Pool.sequential_cutoff () with
      | () -> Alcotest.fail "large hinted region ran as a single chunk"
      | exception Pool.Race _ -> ())

let test_cost_explicit_chunks_override () =
  with_sanitize true (fun () ->
      (* explicit ?chunks wins over the hint even below the cutoff *)
      match mod4_region ~chunks:4 ~jobs:2 ~cost:1 () with
      | () -> Alcotest.fail "explicit chunks ignored under a small hint"
      | exception Pool.Race _ -> ())

let test_cost_jobs_invariance () =
  (* identical results on both sides of the sequential cutoff, for any
     job count, sanitized or not *)
  let expect = Array.init 64 (fun i -> (i * 31) land 255) in
  List.iter
    (fun sanitized ->
      with_sanitize sanitized (fun () ->
          List.iter
            (fun cost ->
              List.iter
                (fun jobs ->
                  let got =
                    Pool.map_range ~jobs ~cost ~lo:0 ~hi:64 (fun i ->
                        (i * 31) land 255)
                  in
                  Alcotest.(check (array int))
                    (Printf.sprintf "map_range sanitize=%b cost=%d jobs=%d"
                       sanitized cost jobs)
                    expect got;
                  let sum =
                    Pool.map_reduce ~jobs ?chunks:None ?cost:(Some cost)
                      ~lo:0 ~hi:64
                      ~map:(fun i -> (i * 31) land 255)
                      ~reduce:( + ) ~init:0
                  in
                  Alcotest.(check int)
                    (Printf.sprintf "map_reduce sanitize=%b cost=%d jobs=%d"
                       sanitized cost jobs)
                    (Array.fold_left ( + ) 0 expect)
                    sum)
                [ 1; 2; 4 ])
            [ 1; Pool.sequential_cutoff ]))
    [ false; true ]

(* --------------------------------------------------------- sanitizer *)

(* Every index writes slot [i mod 4], so with 4 chunks over [0,8) two
   distinct chunks collide on every slot — and chunks 2 and 3 write
   outside their own sub-ranges. *)
let overlapping_run () =
  let out = Array.make 8 (-1) in
  Pool.parallel_for ~jobs:2 ~chunks:4 ~lo:0 ~hi:8 (fun i ->
      Pool.write out (i mod 4) i)

let test_sanitizer_detects_overlap () =
  with_sanitize true (fun () ->
      match overlapping_run () with
      | () -> Alcotest.fail "overlapping write not detected"
      | exception Pool.Race _ -> ()
      | exception e ->
          Alcotest.failf "expected Pool.Race, got %s" (Printexc.to_string e))

let test_sanitizer_silent_when_off () =
  (* the very same buggy region runs to completion without the sanitizer:
     that silence is the blind spot the debug mode exists to close *)
  with_sanitize false (fun () ->
      match overlapping_run () with
      | () -> ()
      | exception e ->
          Alcotest.failf "sanitizer ran while disabled: %s"
            (Printexc.to_string e))

let test_sanitizer_accepts_disjoint_writes () =
  with_sanitize true (fun () ->
      (* well-formed regions are untouched: same results as unsanitized *)
      let out = Array.make 100 0 in
      Pool.parallel_for ~jobs:4 ~chunks:8 ~lo:0 ~hi:100 (fun i ->
          Pool.write out i (i * 3));
      Alcotest.(check (array int))
        "parallel_for writes" (Array.init 100 (fun i -> i * 3)) out;
      let got = Pool.map_range ~jobs:4 ~chunks:8 ~lo:5 ~hi:55 (fun i -> i * i) in
      Alcotest.(check (array int))
        "map_range tracked" (Array.init 50 (fun k -> (k + 5) * (k + 5))) got;
      (* the serial path is also dispatched and checked under sanitize *)
      let got1 = Pool.map_range ~jobs:1 ~lo:0 ~hi:9 (fun i -> -i) in
      Alcotest.(check (array int))
        "jobs=1 sanitized" (Array.init 9 (fun i -> -i)) got1)

let test_sanitizer_boundary_escape () =
  with_sanitize true (fun () ->
      (* chunk 0 owns [0,5): a write to slot 7 crosses its boundary even
         though no other chunk ever touches that slot *)
      let out = Array.make 10 0 in
      match
        Pool.parallel_for ~jobs:1 ~chunks:2 ~lo:0 ~hi:10 (fun i ->
            Pool.write out (if i = 2 then 7 else i) i)
      with
      | () -> Alcotest.fail "chunk-boundary escape not detected"
      | exception Pool.Race _ -> ())

let test_sanitizer_enabled_toggle () =
  Pool.set_sanitize (Some true);
  Alcotest.(check bool) "forced on" true (Pool.sanitize_enabled ());
  Pool.set_sanitize (Some false);
  Alcotest.(check bool) "forced off" false (Pool.sanitize_enabled ());
  Pool.set_sanitize None

(* -------------------------------------------------------------- team *)

(* Run [f] pretending the machine has [n] cores, so the team actually
   spawns workers even on a single-core CI box. *)
let with_hardware_jobs n f =
  Pool.set_hardware_jobs (Some n);
  Fun.protect ~finally:(fun () -> Pool.set_hardware_jobs None) f

let team_sum t ~chunks ~lo ~hi hits =
  Pool.Team.run t ~chunks ~lo ~hi (fun _c clo chi ->
      for i = clo to chi - 1 do
        Pool.write hits i (hits.(i) + 1)
      done)

let test_team_covers_and_reuses () =
  with_hardware_jobs 2 (fun () ->
      let t = Pool.Team.create ~jobs:2 () in
      Fun.protect
        ~finally:(fun () -> Pool.Team.stop t)
        (fun () ->
          Alcotest.(check int) "two participants" 2 (Pool.Team.size t);
          let hits = Array.make 100 0 in
          team_sum t ~chunks:7 ~lo:0 ~hi:100 hits;
          Array.iteri
            (fun i h ->
              Alcotest.(check int) (Printf.sprintf "slot %d once" i) 1 h)
            hits;
          (* the same parked workers serve every subsequent epoch *)
          team_sum t ~chunks:3 ~lo:10 ~hi:40 hits;
          team_sum t ~chunks:5 ~lo:10 ~hi:40 hits;
          Array.iteri
            (fun i h ->
              let expect = if i >= 10 && i < 40 then 3 else 1 in
              Alcotest.(check int)
                (Printf.sprintf "slot %d after reuse" i)
                expect h)
            hits))

let test_team_exception_and_recovery () =
  with_hardware_jobs 2 (fun () ->
      let t = Pool.Team.create ~jobs:2 () in
      Fun.protect
        ~finally:(fun () -> Pool.Team.stop t)
        (fun () ->
          (match
             Pool.Team.run t ~chunks:4 ~lo:0 ~hi:8 (fun c _ _ ->
                 if c >= 1 then failwith "chunk failed")
           with
          | () -> Alcotest.fail "worker exception was swallowed"
          | exception Failure _ -> ());
          (* a failed epoch must not wedge the workers *)
          let hits = Array.make 8 0 in
          team_sum t ~chunks:4 ~lo:0 ~hi:8 hits;
          Alcotest.(check int) "team survives a failure" 8
            (Array.fold_left ( + ) 0 hits)))

let test_team_run_after_stop_inline () =
  with_hardware_jobs 2 (fun () ->
      let t = Pool.Team.create ~jobs:2 () in
      Pool.Team.stop t;
      Pool.Team.stop t;
      (* idempotent *)
      let hits = Array.make 12 0 in
      team_sum t ~chunks:4 ~lo:0 ~hi:12 hits;
      Alcotest.(check int) "inline after stop" 12
        (Array.fold_left ( + ) 0 hits))

let test_team_sanitized_boundary_escape () =
  with_hardware_jobs 2 (fun () ->
      with_sanitize true (fun () ->
          let t = Pool.Team.create ~jobs:2 () in
          Fun.protect
            ~finally:(fun () -> Pool.Team.stop t)
            (fun () ->
              let out = Array.make 10 0 in
              match
                Pool.Team.run t ~chunks:2 ~lo:0 ~hi:10 (fun _c clo chi ->
                    for i = clo to chi - 1 do
                      (* slot 7 escapes chunk 0's [0,5) span *)
                      Pool.write out (if i = 2 then 7 else i) i
                    done)
              with
              | () -> Alcotest.fail "team chunk-boundary escape not detected"
              | exception Pool.Race _ -> ())))

let () =
  Alcotest.run "netdiv_par"
    [
      ( "pool",
        [
          Alcotest.test_case "resolve_jobs" `Quick test_resolve_jobs;
          Alcotest.test_case "split_seed" `Quick test_split_seed;
          Alcotest.test_case "parallel_for matches serial" `Quick
            test_parallel_for_matches_serial;
          Alcotest.test_case "empty/singleton ranges" `Quick
            test_empty_and_singleton;
          Alcotest.test_case "map_range order" `Quick test_map_range_order;
          Alcotest.test_case "map_reduce" `Quick test_map_reduce;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
        ] );
      ( "granularity",
        [
          Alcotest.test_case "small hint runs inline" `Quick
            test_cost_small_runs_inline;
          Alcotest.test_case "large hint stays parallel" `Quick
            test_cost_large_stays_parallel;
          Alcotest.test_case "explicit chunks override hint" `Quick
            test_cost_explicit_chunks_override;
          Alcotest.test_case "jobs-invariant across cutoff" `Quick
            test_cost_jobs_invariance;
        ] );
      ( "sanitizer",
        [
          Alcotest.test_case "detects overlapping writes" `Quick
            test_sanitizer_detects_overlap;
          Alcotest.test_case "silent when disabled" `Quick
            test_sanitizer_silent_when_off;
          Alcotest.test_case "accepts disjoint writes" `Quick
            test_sanitizer_accepts_disjoint_writes;
          Alcotest.test_case "detects boundary escape" `Quick
            test_sanitizer_boundary_escape;
          Alcotest.test_case "set_sanitize toggle" `Quick
            test_sanitizer_enabled_toggle;
        ] );
      ( "team",
        [
          Alcotest.test_case "covers range, reusable" `Quick
            test_team_covers_and_reuses;
          Alcotest.test_case "exception propagation and recovery" `Quick
            test_team_exception_and_recovery;
          Alcotest.test_case "run after stop is inline" `Quick
            test_team_run_after_stop_inline;
          Alcotest.test_case "sanitized boundary escape" `Quick
            test_team_sanitized_boundary_escape;
        ] );
    ]
