(* Zero-day worm propagation on the diversified ICS (paper Section VII-C2).

   Replays the paper's NetLogo experiment natively: a reconnaissance
   attacker enters at five different hosts and spreads a Stuxnet-like worm
   towards the WinCC server t5; we measure mean-time-to-compromise over
   many runs for each deployment, and print one epidemic curve.

   Run with:  dune exec examples/zero_day_sim.exe *)

module Engine = Netdiv_sim.Engine
module Topology = Netdiv_casestudy.Topology
module Products = Netdiv_casestudy.Products
module Experiments = Netdiv_casestudy.Experiments

let runs = 500

let () =
  let net = Products.network () in
  let a = Experiments.compute_assignments net in

  Format.printf
    "Table VI — mean-time-to-compromise of t5 in ticks (%d runs):@.@." runs;
  Format.printf "%-16s" "assignment";
  List.iter (Format.printf "%10s") Topology.entry_points;
  Format.printf "@.";
  List.iter
    (fun (row : Experiments.mttc_row) ->
      Format.printf "%-16s" row.label;
      List.iter
        (fun (_, (s : Engine.mttc_stats)) -> Format.printf "%10.2f" s.mean_ticks)
        row.per_entry;
      Format.printf "@.")
    (Experiments.mttc_table ~runs a);
  Format.printf "@.";

  (* epidemic curves: how fast the worm saturates each deployment *)
  let entry = Topology.host "c4" in
  List.iter
    (fun (label, assignment) ->
      let rng = Random.State.make [| 11 |] in
      let curve =
        Engine.epidemic_curve ~rng ~max_ticks:300 assignment ~entry
      in
      Format.printf "infected hosts per tick from c4 under %-14s %s@." label
        (String.concat " "
           (Array.to_list (Array.map string_of_int curve))))
    [ ("optimal:", a.Experiments.optimal); ("mono:", a.Experiments.mono) ];
  Format.printf "@.";

  (* strategy ablation: reconnaissance vs uniform attacker on the optimal
     deployment *)
  let target = Topology.host "t5" in
  List.iter
    (fun (label, strategy) ->
      let rng = Random.State.make [| 23 |] in
      let stats =
        Engine.mttc ~rng ~strategy ~runs a.Experiments.optimal ~entry ~target
      in
      Format.printf "%-24s %a@." label Engine.pp_mttc stats)
    [ ("reconnaissance attacker", Engine.Best_exploit);
      ("uniform attacker", Engine.Uniform_exploit) ]
