(* End-to-end NVD pipeline: feeds -> similarity -> optimization.

   The production workflow of the paper's Section III, replayed on the
   synthetic corpus: write an NVD JSON feed to disk, ingest it back,
   compute plain and severity-weighted similarity tables for a product
   range, build a network around them and diversify it.

   Run with:  dune exec examples/nvd_pipeline.exe *)

module Vuln = Netdiv_vuln
module Network = Netdiv_core.Network
module Assignment = Netdiv_core.Assignment
module Optimize = Netdiv_core.Optimize

let () =
  (* 1. produce a feed file, as if downloaded from nvd.nist.gov *)
  let feed_path = Filename.temp_file "nvdcve-1.1-" ".json" in
  let db = Vuln.Corpus.synthesize Vuln.Corpus.browser_spec in
  let oc = open_out_bin feed_path in
  output_string oc (Vuln.Feed.to_string ~pretty:true db);
  close_out oc;
  Format.printf "wrote %d synthetic CVE entries to %s@." (Vuln.Nvd.size db)
    feed_path;

  (* 2. ingest it back *)
  let ic = open_in_bin feed_path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let db' = Vuln.Nvd.create () in
  (match Vuln.Feed.load_into db' contents with
  | Ok (count, warnings) ->
      Format.printf "re-ingested %d entries, %d warnings@.@." count
        (List.length warnings)
  | Error msg -> failwith msg);

  (* 3. similarity tables for a product range (Definition 1), plain and
     severity-weighted *)
  let products =
    [ ("IE8", Vuln.Cpe.of_string_exn "cpe:/a:microsoft:internet_explorer:8");
      ("IE10", Vuln.Cpe.of_string_exn "cpe:/a:microsoft:internet_explorer:10");
      ("Chrome", Vuln.Cpe.of_string_exn "cpe:/a:google:chrome");
      ("Firefox", Vuln.Cpe.of_string_exn "cpe:/a:mozilla:firefox") ]
  in
  let plain = Vuln.Similarity.of_nvd db' products in
  let weighted = Vuln.Weighted.of_nvd db' products in
  Format.printf "plain similarity:@.%a@.@." Vuln.Similarity.pp plain;
  Format.printf "severity-weighted similarity:@.%a@.@." Vuln.Similarity.pp
    weighted;

  (* 4. build a little branch-office network on those browsers and
     diversify it *)
  let graph = Netdiv_graph.Gen.grid 3 4 in
  let hosts =
    Array.init 12 (fun h ->
        { Network.h_name = Printf.sprintf "ws%02d" h;
          h_services = [ (0, [||]) ] })
  in
  let net =
    Network.of_similarity_tables ~graph
      ~services:[| ("browser", plain) |]
      ~hosts
  in
  let report = Optimize.run net [] in
  Format.printf "diversified 3x4 office grid:@.%a@." Assignment.pp
    report.Optimize.assignment;
  Format.printf "energy %.4f (mono would be %.4f)@." report.Optimize.energy
    (Netdiv_core.Encode.assignment_energy
       (Netdiv_core.Encode.encode net [])
       (Assignment.mono net));
  Sys.remove feed_path
