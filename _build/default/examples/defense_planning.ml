(* A defender's planning session on the Stuxnet-inspired ICS.

   Walks the whole toolkit the way an operator would: find the risky
   hosts, find the chokepoints, buy diversity where it matters (under a
   license budget), harden the approaches to the crown jewels, and verify
   the gain with the worm simulator.

   Run with:  dune exec examples/defense_planning.exe *)

module Network = Netdiv_core.Network
module Assignment = Netdiv_core.Assignment
module Optimize = Netdiv_core.Optimize
module Cost = Netdiv_core.Cost
module Cut = Netdiv_graph.Cut
module Attack_bn = Netdiv_bayes.Attack_bn
module Engine = Netdiv_sim.Engine
module Topology = Netdiv_casestudy.Topology
module Products = Netdiv_casestudy.Products

let () =
  let net = Products.network () in
  let entry = Topology.host "c4" in
  let target = Topology.host Topology.target in

  (* step 1: where does the risk concentrate today (homogeneous estate)? *)
  let mono = Assignment.mono net in
  Format.printf "== 1. risk ranking of the current (homogeneous) estate ==@.";
  let marginals =
    Attack_bn.host_marginals ~samples:40_000
      ~rng:(Random.State.make [| 1 |])
      mono ~entry ~model:Attack_bn.Uniform_choice
  in
  Array.to_list marginals
  |> List.sort (fun (_, p) (_, q) -> compare q p)
  |> List.iteri (fun i (h, p) ->
         if i < 6 then
           Format.printf "   %-4s P(compromised) = %.4f@."
             (Network.host_name net h) p);

  (* step 2: which links are the chokepoints toward the WinCC server? *)
  Format.printf "@.== 2. chokepoints between %s and %s ==@." "c4"
    Topology.target;
  let cut =
    Cut.min_edge_cut (Network.graph net) ~source:entry ~sink:target
  in
  List.iter
    (fun (u, v) ->
      Format.printf "   watch/firewall %s - %s@." (Network.host_name net u)
        (Network.host_name net v))
    cut;

  (* step 3: diversify under a license budget *)
  Format.printf "@.== 3. diversification under a license budget ==@.";
  let license ~host:_ ~service ~product =
    match (service, product) with
    | 0, (0 | 1) -> 2.0
    | 1, (0 | 1) -> 0.5
    | 2, (0 | 1) -> 4.0
    | _ -> 0.0
  in
  (match Cost.cheapest_under ~cost:license ~budget:80.0 net [] with
  | Some plan ->
      Format.printf
        "   affordable plan: license cost %.1f, diversity energy %.3f@."
        plan.Cost.cost plan.Cost.energy
  | None -> Format.printf "   no plan fits the budget@.");

  (* step 4: spend extra diversity on the approaches to the target *)
  Format.printf "@.== 4. defense in depth around %s ==@." Topology.target;
  let dist = Netdiv_graph.Traversal.bfs (Network.graph net) target in
  let weight u v =
    if dist.(u) >= 0 && dist.(v) >= 0 && min dist.(u) dist.(v) <= 1 then 5.0
    else 1.0
  in
  let hardened = Optimize.run ~edge_weight:weight net [] in
  let baseline = Optimize.run net [] in

  (* step 5: verify with the worm simulator, with and without a SOC *)
  Format.printf "@.== 5. verification by simulation (entry c4) ==@.";
  let mttc label a =
    let stats =
      Engine.mttc_parallel ~seed:9 ~runs:600 a ~entry ~target ()
    in
    Format.printf "   %-28s MTTC %.1f ticks@." label stats.Engine.mean_ticks
  in
  mttc "homogeneous estate" mono;
  mttc "optimal diversification" baseline.Optimize.assignment;
  mttc "hardened around target" hardened.Optimize.assignment;
  let soc = { Engine.detect_rate = 0.03; immunize = true } in
  let contained label a =
    let stats =
      Engine.mttc_defended
        ~rng:(Random.State.make [| 5 |])
        ~defense:soc ~max_ticks:2000 ~runs:600 a ~entry ~target
    in
    Format.printf "   %-28s P(compromise | SOC) = %.3f@." label
      (float_of_int stats.Engine.successes /. float_of_int stats.Engine.runs)
  in
  Format.printf "@.   with a SOC detecting 3%% of infections per tick:@.";
  contained "homogeneous estate" mono;
  contained "hardened around target" hardened.Optimize.assignment
