(* The paper's motivational example (Fig. 1).

   A four-hop corridor from an entry host to a target, diversified with
   two products ("circle" and "triangle"):

   (a) if the products share no vulnerabilities, alternating them stops
       the zero-day cold: the target's breach probability is 0;
   (b) with a 0.5 vulnerability similarity the same alternation only
       attenuates each hop, and the target is breached with probability
       about 0.125 (= 0.5^3);
   (c) adding a second, homogeneous service ("square" labels) on the
       inner hosts hands a sophisticated two-exploit attacker a bridge:
       the breach probability climbs to about 0.5.

   Run with:  dune exec examples/motivational.exe *)

module Gen = Netdiv_graph.Gen
module Network = Netdiv_core.Network
module Assignment = Netdiv_core.Assignment
module Attack_bn = Netdiv_bayes.Attack_bn

(* path entry = h0 -> h1 -> h2 -> h3 = target *)
let entry = 0
let target = 3

let breach a =
  (* sophisticated attacker, no zero-day floor, perfectly reliable
     exploits: the probabilities come out exactly as in Fig. 1 *)
  Attack_bn.p_compromise ~base_rate:1.0 ~sim_floor:0.0 a ~entry ~target
    ~model:Attack_bn.Best_choice

let single_label_net similarity =
  let services =
    [| { Network.sv_name = "app";
         sv_products = [| "circle"; "triangle" |];
         sv_similarity = [| 1.0; similarity; similarity; 1.0 |] } |]
  in
  Network.create ~graph:(Gen.line 4) ~services
    ~hosts:
      (Array.init 4 (fun h ->
           { Network.h_name = Printf.sprintf "h%d" h;
             h_services = [ (0, [||]) ] }))

let alternate net = Assignment.make net (fun ~host ~service:_ -> host mod 2)

let () =
  (* (a) single-label hosts, no shared vulnerabilities *)
  let a = alternate (single_label_net 0.0) in
  Format.printf "(a) diversified, similarity 0.0:  P(target) = %.3f@."
    (breach a);

  (* (b) single-label hosts, similarity 0.5 *)
  let b = alternate (single_label_net 0.5) in
  Format.printf "(b) diversified, similarity 0.5:  P(target) = %.3f@."
    (breach b);

  (* (c) multi-label hosts: the inner hosts additionally run a "square"
     service, all with the same product, and the attacker holds a second
     zero-day for it *)
  let services =
    [|
      { Network.sv_name = "app";
        sv_products = [| "circle"; "triangle" |];
        sv_similarity = [| 1.0; 0.5; 0.5; 1.0 |] };
      { Network.sv_name = "square";
        sv_products = [| "square" |];
        sv_similarity = [| 1.0 |] };
    |]
  in
  let net =
    Network.create ~graph:(Gen.line 4) ~services
      ~hosts:
        (Array.init 4 (fun h ->
             { Network.h_name = Printf.sprintf "h%d" h;
               h_services =
                 (if h = entry then [ (0, [||]) ]
                  else [ (0, [||]); (1, [||]) ]) }))
  in
  let c =
    Assignment.make net (fun ~host ~service ->
        if service = 0 then host mod 2 else 0)
  in
  Format.printf "(c) multi-label, two exploits:    P(target) = %.3f@."
    (breach c);
  Format.printf
    "@.diversity metric d_bn of the three deployments (higher = better):@.";
  List.iter
    (fun (label, assignment) ->
      Format.printf "  %s: %.3f@." label
        (Attack_bn.diversity ~base_rate:1.0 ~sim_floor:0.0 ~p_avg:0.125
           assignment ~entry ~target))
    [ ("(b)", b); ("(c)", c) ]
