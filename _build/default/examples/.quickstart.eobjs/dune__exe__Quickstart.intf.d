examples/quickstart.mli:
