examples/nvd_pipeline.ml: Array Filename Format List Netdiv_core Netdiv_graph Netdiv_vuln Printf Sys
