examples/zero_day_sim.mli:
