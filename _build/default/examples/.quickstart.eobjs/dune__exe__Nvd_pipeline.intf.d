examples/nvd_pipeline.mli:
