examples/zero_day_sim.ml: Array Format List Netdiv_casestudy Netdiv_sim Random String
