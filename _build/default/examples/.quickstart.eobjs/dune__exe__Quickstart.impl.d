examples/quickstart.ml: Format Netdiv_core Netdiv_graph
