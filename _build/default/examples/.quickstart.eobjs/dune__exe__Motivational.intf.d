examples/motivational.mli:
