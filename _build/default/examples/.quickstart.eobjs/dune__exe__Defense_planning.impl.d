examples/defense_planning.ml: Array Format List Netdiv_bayes Netdiv_casestudy Netdiv_core Netdiv_graph Netdiv_sim Random
