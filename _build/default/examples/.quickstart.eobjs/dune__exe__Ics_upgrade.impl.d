examples/ics_upgrade.ml: Array Format List Netdiv_casestudy Netdiv_core String
