examples/motivational.ml: Array Format List Netdiv_bayes Netdiv_core Netdiv_graph Printf
