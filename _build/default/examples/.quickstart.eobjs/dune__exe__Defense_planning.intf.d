examples/defense_planning.mli:
