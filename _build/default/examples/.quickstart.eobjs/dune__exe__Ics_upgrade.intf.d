examples/ics_upgrade.mli:
