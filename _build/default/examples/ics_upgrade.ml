(* Upgrading a legacy ICS with modern IT networks (paper Section VII).

   Computes the unconstrained optimal diversification of the
   Stuxnet-inspired ICS, then re-optimizes under the C1 host policies and
   the C2 product-combination policies, and reports how much diversity
   each constraint set costs (the paper's Fig. 4 and Table V).

   Run with:  dune exec examples/ics_upgrade.exe *)

module Network = Netdiv_core.Network
module Assignment = Netdiv_core.Assignment
module Constr = Netdiv_core.Constr
module Optimize = Netdiv_core.Optimize
module Topology = Netdiv_casestudy.Topology
module Products = Netdiv_casestudy.Products
module Experiments = Netdiv_casestudy.Experiments

let print_assignment title a =
  Format.printf "=== %s ===@.%a@." title Assignment.pp a

let () =
  let net = Products.network () in
  Format.printf "case-study network: %a@." Network.pp net;
  Format.printf "zones:@.";
  List.iter
    (fun (zone, members) ->
      Format.printf "  %-10s %s@." zone (String.concat " " members))
    Topology.zones;
  Format.printf "@.";

  (* unconstrained optimum *)
  let optimal = Optimize.run net [] in
  print_assignment "optimal diversification (Fig. 4a)"
    optimal.Optimize.assignment;
  Format.printf "energy %.4f (bound %.4f)@.@." optimal.Optimize.energy
    optimal.Optimize.lower_bound;

  (* C1: host policies *)
  let c1 = Products.host_constraints net in
  Format.printf "C1 host policies:@.";
  List.iter (fun c -> Format.printf "  %a@." (Constr.pp net) c) c1;
  let constrained1 = Optimize.run net c1 in
  print_assignment "host-constrained optimum (Fig. 4b)"
    constrained1.Optimize.assignment;
  Format.printf "energy %.4f — diversity given up vs optimal: %.4f@.@."
    constrained1.Optimize.energy
    (constrained1.Optimize.energy -. optimal.Optimize.energy);

  (* C2: C1 plus undesirable product combinations *)
  let c2 = Products.product_constraints net in
  let constrained2 = Optimize.run net c2 in
  print_assignment "product-constrained optimum (Fig. 4c)"
    constrained2.Optimize.assignment;
  Format.printf "energy %.4f — diversity given up vs optimal: %.4f@.@."
    constrained2.Optimize.energy
    (constrained2.Optimize.energy -. optimal.Optimize.energy);

  (* where did C2 change the picture? *)
  Format.printf "hosts whose products change between C1 and C2:@.";
  for h = 0 to Network.n_hosts net - 1 do
    let changed =
      Array.exists
        (fun s ->
          Assignment.get constrained1.Optimize.assignment ~host:h ~service:s
          <> Assignment.get constrained2.Optimize.assignment ~host:h
               ~service:s)
        (Network.host_services net h)
    in
    if changed then begin
      Format.printf "  %-4s" (Network.host_name net h);
      Array.iter
        (fun s ->
          Format.printf " %s->%s"
            (Network.product_name net ~service:s
               (Assignment.get constrained1.Optimize.assignment ~host:h
                  ~service:s))
            (Network.product_name net ~service:s
               (Assignment.get constrained2.Optimize.assignment ~host:h
                  ~service:s)))
        (Network.host_services net h);
      Format.printf "@."
    end
  done;
  Format.printf "@.";

  (* Table V *)
  let a = Experiments.compute_assignments net in
  Format.printf "Table V — BN diversity metric (entry c4, target t5):@.";
  Format.printf "  %-16s %10s %10s %10s@." "assignment" "log10 P'" "log10 P"
    "d_bn";
  List.iter
    (fun (r : Experiments.diversity_row) ->
      Format.printf "  %-16s %10.3f %10.3f %10.5f@." r.label r.log_p_ref
        r.log_p_sim r.d_bn)
    (Experiments.diversity_table a)
