(* Quickstart: the paper's Fig. 2 example.

   Six hosts in a small network; each host runs up to two services (a web
   browser and a database server), each service offered by three diverse
   products.  We ask for the optimal product assignment and print it
   alongside the homogeneous worst case.

   Run with:  dune exec examples/quickstart.exe *)

module Graph = Netdiv_graph.Graph
module Network = Netdiv_core.Network
module Assignment = Netdiv_core.Assignment
module Optimize = Netdiv_core.Optimize
module Encode = Netdiv_core.Encode

let () =
  (* the Fig. 2 topology: h0..h5 *)
  let graph =
    Graph.of_edges ~n:6
      [ (0, 1); (0, 2); (1, 2); (1, 3); (2, 4); (3, 4); (3, 5); (4, 5) ]
  in
  (* three browsers and three databases with hand-written vulnerability
     similarities (diagonal 1, cross-vendor pairs overlap weakly) *)
  let browser_sim =
    [| 1.0; 0.3; 0.0;
       0.3; 1.0; 0.1;
       0.0; 0.1; 1.0 |]
  in
  let db_sim =
    [| 1.0; 0.2; 0.05;
       0.2; 1.0; 0.0;
       0.05; 0.0; 1.0 |]
  in
  let services =
    [|
      { Network.sv_name = "browser";
        sv_products = [| "wb1"; "wb2"; "wb3" |];
        sv_similarity = browser_sim };
      { Network.sv_name = "database";
        sv_products = [| "db1"; "db2"; "db3" |];
        sv_similarity = db_sim };
    |]
  in
  (* per-host services and candidate products, as in Fig. 2: not every
     host runs both services, and some have restricted product ranges *)
  let browser = 0 and database = 1 in
  let hosts =
    [|
      { Network.h_name = "h0"; h_services = [ (database, [||]) ] };
      { Network.h_name = "h1";
        h_services = [ (browser, [||]); (database, [||]) ] };
      { Network.h_name = "h2";
        h_services = [ (browser, [| 0; 1 |]); (database, [| 1; 2 |]) ] };
      { Network.h_name = "h3";
        h_services = [ (browser, [| 1; 2 |]); (database, [| 0; 1 |]) ] };
      { Network.h_name = "h4"; h_services = [ (browser, [| 0; 1 |]) ] };
      { Network.h_name = "h5";
        h_services = [ (browser, [||]); (database, [||]) ] };
    |]
  in
  let net = Network.create ~graph ~services ~hosts in
  Format.printf "network: %a@.@." Network.pp net;

  let report = Optimize.run net [] in
  Format.printf "optimal assignment (alpha-hat):@.%a@." Assignment.pp
    report.Optimize.assignment;
  Format.printf "energy %.4f, dual bound %.4f, solved in %.3fs@.@."
    report.Optimize.energy report.Optimize.lower_bound report.Optimize.runtime_s;

  let encoded = Encode.encode net [] in
  let mono = Assignment.mono net in
  Format.printf "homogeneous baseline (alpha-m):@.%a@." Assignment.pp mono;
  Format.printf "energy %.4f@.@." (Encode.assignment_energy encoded mono);

  Format.printf
    "total cross-edge similarity: optimal %.3f vs homogeneous %.3f@."
    (Assignment.pairwise_energy report.Optimize.assignment)
    (Assignment.pairwise_energy mono)
