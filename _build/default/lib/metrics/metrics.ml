module Graph = Netdiv_graph.Graph
module Network = Netdiv_core.Network
module Assignment = Netdiv_core.Assignment
module Attack_bn = Netdiv_bayes.Attack_bn

let product_frequencies a ~service =
  let net = Assignment.network a in
  let counts = Array.make (Network.n_products net service) 0 in
  let total = ref 0 in
  for h = 0 to Network.n_hosts net - 1 do
    if Network.runs_service net ~host:h ~service then begin
      counts.(Assignment.get a ~host:h ~service)
      <- counts.(Assignment.get a ~host:h ~service) + 1;
      incr total
    end
  done;
  if !total = 0 then Array.map (fun _ -> 0.0) counts
  else Array.map (fun c -> float_of_int c /. float_of_int !total) counts

let effective_richness a ~service =
  let freqs = product_frequencies a ~service in
  let entropy =
    Array.fold_left
      (fun acc p -> if p > 0.0 then acc -. (p *. log p) else acc)
      0.0 freqs
  in
  if Array.for_all (fun p -> p = 0.0) freqs then 0.0 else exp entropy

let deployed_instances a ~service =
  let net = Assignment.network a in
  let total = ref 0 in
  for h = 0 to Network.n_hosts net - 1 do
    if Network.runs_service net ~host:h ~service then incr total
  done;
  !total

let d1 a =
  let net = Assignment.network a in
  let richness = ref 0.0 and instances = ref 0 in
  for s = 0 to Network.n_services net - 1 do
    richness := !richness +. effective_richness a ~service:s;
    instances := !instances + deployed_instances a ~service:s
  done;
  if !instances = 0 then 0.0 else !richness /. float_of_int !instances

(* --------------------------------------------- least attacking effort *)

type exploit = { service : int; product : int }

let shared_services net u v =
  let su = Network.host_services net u in
  let sv = Network.host_services net v in
  let acc = ref [] in
  let i = ref 0 and j = ref 0 in
  while !i < Array.length su && !j < Array.length sv do
    if su.(!i) = sv.(!j) then begin
      acc := su.(!i) :: !acc;
      incr i;
      incr j
    end
    else if su.(!i) < sv.(!j) then incr i
    else incr j
  done;
  !acc

(* every (service, product) pair actually deployed somewhere *)
let deployed_exploits a =
  let net = Assignment.network a in
  let seen = Hashtbl.create 32 in
  for h = 0 to Network.n_hosts net - 1 do
    Array.iter
      (fun s ->
        Hashtbl.replace seen (s, Assignment.get a ~host:h ~service:s) ())
      (Network.host_services net h)
  done;
  Hashtbl.fold
    (fun (service, product) () acc -> { service; product } :: acc)
    seen []
  |> List.sort compare

(* hosts reachable from [entry] holding exploit set [e] (as a predicate) *)
let reaches a ~entry ~target has_exploit =
  let net = Assignment.network a in
  let g = Network.graph net in
  let n = Graph.n_nodes g in
  let infected = Array.make n false in
  infected.(entry) <- true;
  if entry = target then true
  else begin
    let queue = Queue.create () in
    Queue.add entry queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      Graph.fold_neighbors
        (fun v () ->
          if not infected.(v) then begin
            let usable =
              List.exists
                (fun s ->
                  has_exploit
                    { service = s;
                      product = Assignment.get a ~host:v ~service:s })
                (shared_services net u v)
            in
            if usable then begin
              infected.(v) <- true;
              if v = target then found := true else Queue.add v queue
            end
          end)
        g u ()
    done;
    !found
  end

let least_effort ?(limit = 6) a ~entry ~target =
  let universe = Array.of_list (deployed_exploits a) in
  let n = Array.length universe in
  let member chosen e = List.mem e chosen in
  if not (reaches a ~entry ~target (fun _ -> true)) then Error `Unreachable
  else begin
    (* subsets in increasing cardinality *)
    let result = ref None in
    let rec combos k start chosen =
      if !result <> None then ()
      else if k = 0 then begin
        if reaches a ~entry ~target (member chosen) then
          result := Some (List.rev chosen)
      end
      else
        for i = start to n - k do
          if !result = None then
            combos (k - 1) (i + 1) (universe.(i) :: chosen)
        done
    in
    let rec try_size k =
      if k > min limit n then Error `Above_limit
      else begin
        combos k 0 [];
        match !result with Some e -> Ok e | None -> try_size (k + 1)
      end
    in
    (* k = 0 handles entry = target *)
    try_size 0
  end

let least_effort_greedy a ~entry ~target =
  if not (reaches a ~entry ~target (fun _ -> true)) then None
  else begin
    let net = Assignment.network a in
    let g = Network.graph net in
    (* score a set by the hop distance from the reachable region to the
       target in the full graph (smaller is better), tie-broken by
       reachable-region size (larger is better) *)
    let dist_to_target = Netdiv_graph.Traversal.bfs g target in
    let score chosen =
      let reachable = Array.make (Graph.n_nodes g) false in
      reachable.(entry) <- true;
      let queue = Queue.create () in
      Queue.add entry queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Graph.fold_neighbors
          (fun v () ->
            if not reachable.(v) then begin
              let usable =
                List.exists
                  (fun s ->
                    List.mem
                      { service = s;
                        product = Assignment.get a ~host:v ~service:s }
                      chosen)
                  (shared_services net u v)
              in
              if usable then begin
                reachable.(v) <- true;
                Queue.add v queue
              end
            end)
          g u ()
      done;
      let best_dist = ref max_int and size = ref 0 in
      Array.iteri
        (fun h r ->
          if r then begin
            incr size;
            if dist_to_target.(h) >= 0 && dist_to_target.(h) < !best_dist
            then best_dist := dist_to_target.(h)
          end)
        reachable;
      (!best_dist, - !size)
    in
    let universe = deployed_exploits a in
    let rec grow chosen =
      if reaches a ~entry ~target (fun e -> List.mem e chosen) then
        Some (List.rev chosen)
      else begin
        let candidates =
          List.filter (fun e -> not (List.mem e chosen)) universe
        in
        match candidates with
        | [] -> None
        | first :: _ ->
            let best =
              List.fold_left
                (fun (be, bs) e ->
                  let s = score (e :: chosen) in
                  if s < bs then (e, s) else (be, bs))
                (first, score (first :: chosen))
                candidates
            in
            grow (fst best :: chosen)
      end
    in
    grow []
  end

(* hop distance entry->target using only edges traversable with the
   exploit set, or -1 *)
let restricted_distance a ~entry ~target exploits =
  let net = Assignment.network a in
  let g = Network.graph net in
  let n = Graph.n_nodes g in
  let dist = Array.make n (-1) in
  dist.(entry) <- 0;
  let queue = Queue.create () in
  Queue.add entry queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Graph.fold_neighbors
      (fun v () ->
        if dist.(v) < 0 then begin
          let usable =
            List.exists
              (fun s ->
                List.mem
                  { service = s;
                    product = Assignment.get a ~host:v ~service:s }
                  exploits)
              (shared_services net u v)
          in
          if usable then begin
            dist.(v) <- dist.(u) + 1;
            Queue.add v queue
          end
        end)
      g u ()
  done;
  dist.(target)

let d2 ?limit a ~entry ~target =
  if entry = target then 0.0
  else
    let exploits =
      match least_effort ?limit a ~entry ~target with
      | Ok exploits -> Some exploits
      | Error `Unreachable -> None
      | Error `Above_limit -> least_effort_greedy a ~entry ~target
    in
    match exploits with
    | None -> 0.0
    | Some exploits -> (
        match restricted_distance a ~entry ~target exploits with
        | -1 -> 0.0
        | steps ->
            float_of_int (List.length exploits) /. float_of_int steps)

let d3 ?base_rate ?sim_floor ?p_avg a ~entry ~target =
  Attack_bn.diversity ?base_rate ?sim_floor ?p_avg a ~entry ~target

let pp_exploit net ppf { service; product } =
  Format.fprintf ppf "%s:%s"
    (Network.service_name net service)
    (Network.product_name net ~service product)
