(** Network diversity metrics.

    The paper adapts the third of Zhang et al.'s three diversity metrics
    ("Network diversity: a security metric for evaluating the resilience
    of networks against zero-day attacks", IEEE TIFS 2016); this module
    implements all three, plus Wang et al.'s closely related k-zero-day
    safety, so diversified deployments can be scored from several angles:

    - {!d1}: {e effective richness} — how evenly distinct products are
      spread over the deployment, measured by the exponential of the
      Shannon entropy of product frequencies, normalized by the number of
      deployed instances.  1.0 means every instance runs a distinct
      product; 1/n means a mono-culture of n instances.
    - {!least_effort} / {!d2}: {e least attacking effort} — the minimum
      number of distinct zero-day exploits (one per (service, product)
      pair) an attacker must hold to reach a target host from an entry
      host.  This is also the k of k-zero-day safety.
    - {!d3}: {e average attacking effort} — the Bayesian-network metric
      [d_bn] of the paper's Definition 6 (re-exported from
      {!Netdiv_bayes.Attack_bn} for completeness). *)

val product_frequencies :
  Netdiv_core.Assignment.t -> service:int -> float array
(** Fraction of the service's deployed instances running each product
    (sums to 1 when the service is deployed at all). *)

val effective_richness : Netdiv_core.Assignment.t -> service:int -> float
(** [exp (Shannon entropy)] of the service's product distribution: the
    "effective number" of distinct products in use.  0 when the service
    is deployed nowhere. *)

val d1 : Netdiv_core.Assignment.t -> float
(** Effective richness summed over services, divided by the total number
    of deployed instances; in (0, 1] for non-empty deployments. *)

(** {1 Least attacking effort (d2, k-zero-day safety)} *)

type exploit = { service : int; product : int }
(** A zero-day exploit for one product (the attacker can compromise any
    host running that product for that service, when attacking from a
    connected host that shares the service). *)

val least_effort :
  ?limit:int ->
  Netdiv_core.Assignment.t ->
  entry:int ->
  target:int ->
  (exploit list, [ `Unreachable | `Above_limit ]) result
(** [least_effort a ~entry ~target] is a minimum-cardinality exploit set
    whose possession lets the attacker walk from [entry] (assumed already
    compromised) to [target]: an edge u→v is traversable with exploit set
    E iff some service shared by u and v has [(s, α(v, s)) ∈ E].  Exact,
    by enumeration of exploit subsets in increasing cardinality; subsets
    larger than [limit] (default 6) are not explored. *)

val least_effort_greedy :
  Netdiv_core.Assignment.t -> entry:int -> target:int -> exploit list option
(** Greedy upper bound on {!least_effort}: repeatedly adds the exploit
    that brings the frontier closest to the target.  [None] when the
    target is unreachable even with every exploit. *)

val d2 :
  ?limit:int -> Netdiv_core.Assignment.t -> entry:int -> target:int -> float
(** Least-attacking-effort diversity: [k / L], where [k] is the size of
    the minimal exploit set (greedy bound beyond [limit]) and [L] the
    number of compromise steps of the shortest attack path usable with
    that set.  1 when every step needs a fresh zero-day, [1/L] for a
    mono-culture corridor; 0 when the target is unreachable (nothing to
    attack) or equals the entry (nothing protects it). *)

val d3 :
  ?base_rate:float ->
  ?sim_floor:float ->
  ?p_avg:float ->
  Netdiv_core.Assignment.t ->
  entry:int ->
  target:int ->
  float
(** The paper's [d_bn] (Definition 6); see {!Netdiv_bayes.Attack_bn.diversity}. *)

val pp_exploit : Netdiv_core.Network.t -> Format.formatter -> exploit -> unit
