lib/metrics/metrics.mli: Format Netdiv_core
