lib/metrics/metrics.ml: Array Format Hashtbl List Netdiv_bayes Netdiv_core Netdiv_graph Queue
