(** Optimal diversification (Definition 5, Section V-C).

    Encodes a network and its constraints as an MRF and minimizes with a
    configurable solver.  The default pipeline is TRW-S followed by an ICM
    polish of the decoded labeling: TRW-S supplies the global structure and
    the dual bound, ICM removes residual single-slot defects (it can only
    lower the energy). *)

type solver =
  | Trws           (** TRW-S alone *)
  | Trws_icm       (** TRW-S + ICM polish (default, "our method") *)
  | Bp             (** loopy belief propagation baseline *)
  | Icm            (** greedy local search baseline *)
  | Sa             (** simulated annealing baseline *)
  | Exact
      (** branch-and-bound ({!Netdiv_mrf.Bnb}): proves global optimality
          when it converges; practical for small or loosely-coupled
          instances *)

type report = {
  assignment : Assignment.t;
  energy : float;              (** MRF energy of [assignment] *)
  lower_bound : float;         (** dual bound ([neg_infinity] without one) *)
  solver_result : Netdiv_mrf.Solver.result;
  constraints_ok : bool;       (** all constraints satisfied *)
  violated : Constr.t list;
  runtime_s : float;           (** encode + solve wall clock *)
}

val run :
  ?solver:solver ->
  ?prconst:float ->
  ?big_m:float ->
  ?preference:(host:int -> service:int -> product:int -> float) ->
  ?edge_weight:(int -> int -> float) ->
  ?max_iters:int ->
  Network.t ->
  Constr.t list ->
  report
(** Computes an (approximately) optimal constrained assignment; the
    optional arguments are forwarded to {!Encode.encode}. *)

val refine :
  ?prconst:float ->
  ?big_m:float ->
  ?preference:(host:int -> service:int -> product:int -> float) ->
  ?edge_weight:(int -> int -> float) ->
  previous:Assignment.t ->
  Network.t ->
  Constr.t list ->
  report
(** Incremental re-optimization after a small change (a new constraint, a
    changed candidate list): warm-starts local search from [previous]
    instead of solving from scratch.  Slots whose previous product is no
    longer selectable fall back before polishing.  Much faster than
    {!run} for small perturbations, with no dual bound. *)

val solve_encoded : ?solver:solver -> ?max_iters:int -> Encode.encoded ->
  Netdiv_mrf.Solver.result
(** Lower-level entry point on a pre-built encoding (used by the
    scalability benches, which time encode and solve separately). *)

val solver_name : solver -> string

val pp_report : Format.formatter -> report -> unit
