(** Networks of hosts, services and candidate products (Definition 2).

    A network [N = <H, L, S, P>] couples an undirected host graph with a
    service catalog.  Every service [s] is provided by a range of products
    [p(s)], each pair of which has a vulnerability similarity (Definition 1);
    every host runs a subset of the services, and for each of them carries a
    candidate list — the products that may be installed there.  Legacy hosts
    are modeled by singleton candidate lists (no flexibility to diversify,
    constraint (i) of Section VII).

    Products are identified per service: service [s]'s products are numbered
    [0 .. n_products t s - 1]. *)

type t

type service_spec = {
  sv_name : string;
  sv_products : string array;
  sv_similarity : float array;
      (** row-major [p*p] similarity matrix; symmetric, unit diagonal *)
}

type host_spec = {
  h_name : string;
  h_services : (int * int array) list;
      (** (service id, candidate products); [[||]] means "all products" *)
}

val create :
  graph:Netdiv_graph.Graph.t ->
  services:service_spec array ->
  hosts:host_spec array ->
  t
(** Validates and freezes a network.
    @raise Invalid_argument when host count differs from the graph's node
    count, a similarity matrix is not symmetric/unit-diagonal/within [0,1],
    a candidate list is empty after normalization, repeats a product, or
    mentions an unknown service or product, or a host lists a service
    twice. *)

val of_similarity_tables :
  graph:Netdiv_graph.Graph.t ->
  services:(string * Netdiv_vuln.Similarity.table) array ->
  hosts:host_spec array ->
  t
(** Builds the service specs straight from vulnerability similarity tables
    (product names and pairwise similarities). *)

val graph : t -> Netdiv_graph.Graph.t
val n_hosts : t -> int
val n_services : t -> int

val host_name : t -> int -> string
val service_name : t -> int -> string
val product_name : t -> service:int -> int -> string

val n_products : t -> int -> int
(** Products available for a service. *)

val similarity : t -> service:int -> int -> int -> float
(** [similarity t ~service p q]: vulnerability similarity of two products of
    the same service. *)

val similarity_matrix : t -> service:int -> float array
(** The service's full matrix (shared; do not mutate). *)

val host_services : t -> int -> int array
(** Sorted service ids run by a host. *)

val runs_service : t -> host:int -> service:int -> bool

val candidates : t -> host:int -> service:int -> int array
(** Candidate products of a host for a service (shared; do not mutate).
    @raise Invalid_argument if the host does not run the service. *)

val find_host : t -> string -> int option
val find_service : t -> string -> int option
val find_product : t -> service:int -> string -> int option

val slots : t -> (int * int) array
(** All (host, service) pairs, i.e. the variables of the assignment
    problem, ordered by host then service. *)

val pp : Format.formatter -> t -> unit
