(** Configuration constraints (Definition 4).

    Constraints express real-world configuration requirements that the
    optimal assignment must accommodate:

    - {!constructor-Fix}: a host is required by policy to run a specific
      product (constraint (ii) of Section VII, e.g. hosts z4/e1/r1/v1 of
      the case study).
    - {!constructor-Requires} (the paper's [cy], desirable combination):
      whenever service [sm] is assigned [pj], service [sn] on the same host
      must be assigned [pl].
    - {!constructor-Forbids} (the paper's [cx], undesirable combination):
      whenever service [sm] is assigned [pj], service [sn] on the same host
      must {e not} be assigned [pk] (e.g. "no IE10 on Ubuntu 14.04").

    Combination constraints carry a {!scope}: a single host (local
    constraint) or every host (global constraint).  Legacy hosts that
    cannot be diversified at all (constraint (i)) are modeled upstream by
    singleton candidate lists in {!Network}. *)

type scope = Host of int | All

type t =
  | Fix of { host : int; service : int; product : int }
  | Requires of {
      scope : scope;
      service_m : int;
      product_j : int;
      service_n : int;
      product_l : int;
    }
  | Forbids of {
      scope : scope;
      service_m : int;
      product_j : int;
      service_n : int;
      product_k : int;
    }

val validate : Network.t -> t -> (unit, string) result
(** Checks that hosts, services and products exist; that a [Fix]ed product
    is among the host's candidates; and that a host-scoped combination
    constraint names services the host actually runs. *)

val validate_all : Network.t -> t list -> (unit, string) result

val satisfied : Network.t -> Assignment.t -> t -> bool
(** Whether an assignment meets one constraint.  Combination constraints
    hold vacuously on hosts that do not run both services. *)

val violations : Network.t -> Assignment.t -> t list -> t list
(** Constraints the assignment breaks. *)

val apply_fixes : Network.t -> t list -> Assignment.t -> Assignment.t
(** Rewrites an assignment so that every [Fix] holds (used to build the
    baseline assignments [αm], [αr] under the case study's policies).
    Combination constraints are left untouched. *)

val pp : Network.t -> Format.formatter -> t -> unit
