module Dot = Netdiv_graph.Dot

let palette =
  [| "#a6cee3"; "#b2df8a"; "#fdbf6f"; "#cab2d6"; "#fb9a99"; "#ffff99";
     "#1f78b4"; "#33a02c" |]

let assignment_dot ?entry ?target ?(highlight_rate = 1.0) a =
  let net = Assignment.network a in
  let g = Network.graph net in
  let label h =
    let services = Network.host_services net h in
    let products =
      Array.to_list services
      |> List.map (fun s ->
             Network.product_name net ~service:s
               (Assignment.get a ~host:h ~service:s))
    in
    match products with
    | [] -> Network.host_name net h
    | _ ->
        Printf.sprintf "%s\n%s" (Network.host_name net h)
          (String.concat "\n" products)
  in
  let color h =
    let services = Network.host_services net h in
    if Array.length services = 0 then Some "#eeeeee"
    else
      let s = services.(0) in
      let p = Assignment.get a ~host:h ~service:s in
      Some palette.(p mod Array.length palette)
  in
  let shape h =
    if Some h = entry then Some "house"
    else if Some h = target then Some "doubleoctagon"
    else None
  in
  let worst_rate = Hashtbl.create 64 in
  List.iter
    (fun (pair, sims) ->
      Hashtbl.replace worst_rate pair (Array.fold_left max 0.0 sims))
    (Assignment.edge_infection_rates a);
  let edge_style u v =
    match Hashtbl.find_opt worst_rate (min u v, max u v) with
    | Some worst when worst >= highlight_rate ->
        Some "color=red, penwidth=2.5"
    | Some _ | None -> None
  in
  Dot.to_dot ~name:"assignment" ~label ~color ~shape ~edge_style g
