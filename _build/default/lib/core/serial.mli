(** JSON serialization of networks and assignments.

    A stable on-disk format so diversification problems and their
    solutions can move between the CLI, external tooling and version
    control:

    {v
    { "services": [ { "name": "os",
                      "products": ["WinXP", "Win7"],
                      "similarity": [1.0, 0.278, 0.278, 1.0] } ],
      "hosts":    [ { "name": "c1",
                      "services": [ { "service": "os",
                                      "candidates": ["Win7"] } ] } ],
      "links":    [ ["c1", "c2"] ] }
    v}

    Assignments are host-name keyed:
    [{ "assignment": [ { "host": "c1", "products": { "os": "Win7" } } ] }].
    Candidate lists may be omitted ("all products"); hosts and products
    are referenced by name, so files survive reordering. *)

val network_to_json : Network.t -> Netdiv_vuln.Json.t
val network_to_string : ?pretty:bool -> Network.t -> string

val network_of_json : Netdiv_vuln.Json.t -> (Network.t, string) result
val network_of_string : string -> (Network.t, string) result

val assignment_to_json : Assignment.t -> Netdiv_vuln.Json.t
val assignment_to_string : ?pretty:bool -> Assignment.t -> string

val assignment_of_json :
  Network.t -> Netdiv_vuln.Json.t -> (Assignment.t, string) result
val assignment_of_string :
  Network.t -> string -> (Assignment.t, string) result
