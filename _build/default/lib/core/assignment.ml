module Graph = Netdiv_graph.Graph

type t = {
  net : Network.t;
  chosen : int array array;  (* host -> slot (aligned with host_services) *)
}

let network t = t.net

let slot_of t host service =
  let services = Network.host_services t.net host in
  let rec search lo hi =
    if lo >= hi then -1
    else
      let mid = (lo + hi) / 2 in
      if services.(mid) = service then mid
      else if services.(mid) < service then search (mid + 1) hi
      else search lo mid
  in
  search 0 (Array.length services)

let get t ~host ~service =
  let k = slot_of t host service in
  if k < 0 then
    invalid_arg
      (Printf.sprintf "Assignment.get: host %s does not run %s"
         (Network.host_name t.net host)
         (Network.service_name t.net service));
  t.chosen.(host).(k)

let get_opt t ~host ~service =
  let k = slot_of t host service in
  if k < 0 then None else Some t.chosen.(host).(k)

let make net choose =
  let n = Network.n_hosts net in
  let chosen =
    Array.init n (fun h ->
        let services = Network.host_services net h in
        Array.map
          (fun s ->
            let p = choose ~host:h ~service:s in
            let cands = Network.candidates net ~host:h ~service:s in
            if not (Array.exists (fun c -> c = p) cands) then
              invalid_arg
                (Printf.sprintf
                   "Assignment.make: product %s not a candidate of %s/%s"
                   (Network.product_name net ~service:s p)
                   (Network.host_name net h)
                   (Network.service_name net s));
            p)
          services)
  in
  { net; chosen }

let first_candidate net =
  make net (fun ~host ~service ->
      (Network.candidates net ~host ~service).(0))

let mono net =
  (* per service, rank products by how many hosts accept them *)
  let n_services = Network.n_services net in
  let popular = Array.make n_services 0 in
  for s = 0 to n_services - 1 do
    let counts = Array.make (Network.n_products net s) 0 in
    for h = 0 to Network.n_hosts net - 1 do
      if Network.runs_service net ~host:h ~service:s then
        Array.iter
          (fun p -> counts.(p) <- counts.(p) + 1)
          (Network.candidates net ~host:h ~service:s)
    done;
    let best = ref 0 in
    Array.iteri (fun p c -> if c > counts.(!best) then best := p) counts;
    popular.(s) <- !best
  done;
  make net (fun ~host ~service ->
      let cands = Network.candidates net ~host ~service in
      if Array.exists (fun c -> c = popular.(service)) cands then
        popular.(service)
      else cands.(0))

let random ~rng net =
  make net (fun ~host ~service ->
      let cands = Network.candidates net ~host ~service in
      cands.(Random.State.int rng (Array.length cands)))

let shared_services t u v =
  let su = Network.host_services t.net u in
  let sv = Network.host_services t.net v in
  let acc = ref [] in
  let i = ref 0 and j = ref 0 in
  while !i < Array.length su && !j < Array.length sv do
    if su.(!i) = sv.(!j) then begin
      acc := su.(!i) :: !acc;
      incr i;
      incr j
    end
    else if su.(!i) < sv.(!j) then incr i
    else incr j
  done;
  List.rev !acc

let edge_infection_rates t =
  let acc = ref [] in
  Graph.iter_edges
    (fun u v ->
      let sims =
        List.map
          (fun s ->
            Network.similarity t.net ~service:s
              (get t ~host:u ~service:s)
              (get t ~host:v ~service:s))
          (shared_services t u v)
      in
      acc := ((u, v), Array.of_list sims) :: !acc)
    (Network.graph t.net);
  List.rev !acc

let pairwise_energy t =
  List.fold_left
    (fun acc (_, sims) -> Array.fold_left ( +. ) acc sims)
    0.0
    (edge_infection_rates t)

let distinct_products t ~service =
  let seen = Array.make (Network.n_products t.net service) false in
  for h = 0 to Network.n_hosts t.net - 1 do
    if Network.runs_service t.net ~host:h ~service then
      seen.(get t ~host:h ~service) <- true
  done;
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 seen

let equal a b =
  a.net == b.net
  && Array.for_all2 (fun xs ys -> xs = ys) a.chosen b.chosen

let pp ppf t =
  let open Format in
  fprintf ppf "@[<v>";
  for h = 0 to Network.n_hosts t.net - 1 do
    fprintf ppf "%-10s" (Network.host_name t.net h);
    Array.iter
      (fun s ->
        fprintf ppf " %s=%s"
          (Network.service_name t.net s)
          (Network.product_name t.net ~service:s (get t ~host:h ~service:s)))
      (Network.host_services t.net h);
    pp_print_cut ppf ()
  done;
  fprintf ppf "@]"
