type cost_fn = host:int -> service:int -> product:int -> float

type point = {
  lambda : float;
  assignment : Assignment.t;
  energy : float;
  cost : float;
}

let total_cost cost a =
  let net = Assignment.network a in
  let acc = ref 0.0 in
  for h = 0 to Network.n_hosts net - 1 do
    Array.iter
      (fun s ->
        acc :=
          !acc
          +. cost ~host:h ~service:s
               ~product:(Assignment.get a ~host:h ~service:s))
      (Network.host_services net h)
  done;
  !acc

let optimize ?solver ~cost ~lambda net constraints =
  if lambda < 0.0 then invalid_arg "Cost.optimize: negative lambda";
  let preference ~host ~service ~product =
    let c = cost ~host ~service ~product in
    if c < 0.0 then invalid_arg "Cost.optimize: negative cost";
    Encode.default_prconst +. (lambda *. c)
  in
  let report = Optimize.run ?solver ~preference net constraints in
  let assignment = report.Optimize.assignment in
  (* report the unscalarized objectives *)
  let plain = Encode.encode net constraints in
  {
    lambda;
    assignment;
    energy = Encode.assignment_energy plain assignment;
    cost = total_cost cost assignment;
  }

let pareto ?solver ~cost ~lambdas net constraints =
  let points =
    List.map (fun lambda -> optimize ?solver ~cost ~lambda net constraints)
      lambdas
  in
  let sorted =
    List.sort_uniq
      (fun a b -> compare (a.cost, a.energy) (b.cost, b.energy))
      points
  in
  (* drop dominated points: keep strictly decreasing energy as cost grows *)
  let rec prune best_energy = function
    | [] -> []
    | p :: rest ->
        if p.energy < best_energy -. 1e-12 then
          p :: prune p.energy rest
        else prune best_energy rest
  in
  (* the cheapest point always survives *)
  match sorted with
  | [] -> []
  | first :: rest -> first :: prune first.energy rest

let cheapest_under ?solver ?(iterations = 20) ?(lambda_max = 100.0) ~cost
    ~budget net constraints =
  (* energy is non-increasing in lambda spent on cost, cost non-increasing
     in lambda: bisect for the smallest lambda meeting the budget *)
  let best = ref None in
  let consider p =
    if p.cost <= budget then
      match !best with
      | Some q when q.energy <= p.energy -> ()
      | _ -> best := Some p
  in
  consider (optimize ?solver ~cost ~lambda:0.0 net constraints);
  if !best = None then begin
    let lo = ref 0.0 and hi = ref lambda_max in
    consider (optimize ?solver ~cost ~lambda:lambda_max net constraints);
    if !best <> None then
      for _ = 1 to iterations do
        let mid = 0.5 *. (!lo +. !hi) in
        let p = optimize ?solver ~cost ~lambda:mid net constraints in
        consider p;
        if p.cost <= budget then hi := mid else lo := mid
      done
  end;
  !best
