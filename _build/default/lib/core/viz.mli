(** Graphviz rendering of diversified deployments.

    Colors every host by its operating-system-class product (the first
    service) so diversity — or the lack of it — is visible at a glance,
    and annotates each node with its full product stack. *)

val assignment_dot :
  ?entry:int ->
  ?target:int ->
  ?highlight_rate:float ->
  Assignment.t ->
  string
(** [assignment_dot a] renders the assignment's network in DOT.  Hosts
    are labeled with their name and assigned products and filled with a
    per-product pastel color (keyed on the host's first service).  The
    [entry] host is drawn as a house, the [target] as a double octagon.
    Edges whose maximum shared-service similarity reaches
    [highlight_rate] (default 1.0, i.e. identical products) are drawn
    red and thick — the worm highways. *)
