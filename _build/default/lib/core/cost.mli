(** Cost-aware diversification (after Borbor et al., cited in the paper's
    related work: "Diversifying network services under cost constraints
    for better resilience against unknown attacks").

    Products carry deployment costs (licenses, retraining, support
    contracts); maximal diversity may be unaffordable.  This module
    scalarizes the two objectives — the MRF diversity energy and the
    total deployment cost — and exposes the trade-off:

    - {!optimize}: minimize [energy + lambda * cost] for a given price of
      money;
    - {!pareto}: sweep lambda to trace the achievable (cost, energy)
      front;
    - {!cheapest_under}: bisect lambda to meet a budget. *)

type cost_fn = host:int -> service:int -> product:int -> float
(** Deployment cost of installing a product at a slot; must be
    non-negative. *)

type point = {
  lambda : float;
  assignment : Assignment.t;
  energy : float;       (** diversity energy, {e unweighted} by lambda *)
  cost : float;         (** total deployment cost *)
}

val total_cost : cost_fn -> Assignment.t -> float

val optimize :
  ?solver:Optimize.solver ->
  cost:cost_fn ->
  lambda:float ->
  Network.t ->
  Constr.t list ->
  point
(** One scalarized solve.  [lambda = 0] recovers the plain optimum.
    @raise Invalid_argument on negative costs or [lambda < 0]. *)

val pareto :
  ?solver:Optimize.solver ->
  cost:cost_fn ->
  lambdas:float list ->
  Network.t ->
  Constr.t list ->
  point list
(** The trade-off curve, one point per lambda, sorted by cost
    (duplicates by (cost, energy) removed).  Points on the returned list
    are mutually non-dominated up to solver approximation. *)

val cheapest_under :
  ?solver:Optimize.solver ->
  ?iterations:int ->
  ?lambda_max:float ->
  cost:cost_fn ->
  budget:float ->
  Network.t ->
  Constr.t list ->
  point option
(** Bisects lambda in [0, lambda_max] (default 100, 20 iterations) for
    the most diverse assignment whose cost fits the budget; [None] when
    even the cheapest trade-off found exceeds it. *)
