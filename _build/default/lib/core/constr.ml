type scope = Host of int | All

type t =
  | Fix of { host : int; service : int; product : int }
  | Requires of {
      scope : scope;
      service_m : int;
      product_j : int;
      service_n : int;
      product_l : int;
    }
  | Forbids of {
      scope : scope;
      service_m : int;
      product_j : int;
      service_n : int;
      product_k : int;
    }

let check_service net s =
  if s < 0 || s >= Network.n_services net then
    Error (Printf.sprintf "unknown service %d" s)
  else Ok ()

let check_product net s p =
  if p < 0 || p >= Network.n_products net s then
    Error
      (Printf.sprintf "unknown product %d for service %s" p
         (Network.service_name net s))
  else Ok ()

let check_host net h =
  if h < 0 || h >= Network.n_hosts net then
    Error (Printf.sprintf "unknown host %d" h)
  else Ok ()

let ( let* ) = Result.bind

let rec validate net = function
  | Fix { host; service; product } ->
      let* () = check_host net host in
      let* () = check_service net service in
      let* () = check_product net service product in
      if not (Network.runs_service net ~host ~service) then
        Error
          (Printf.sprintf "host %s does not run service %s"
             (Network.host_name net host)
             (Network.service_name net service))
      else if
        not
          (Array.exists
             (fun c -> c = product)
             (Network.candidates net ~host ~service))
      then
        Error
          (Printf.sprintf "product %s is not a candidate of %s/%s"
             (Network.product_name net ~service product)
             (Network.host_name net host)
             (Network.service_name net service))
      else Ok ()
  | Requires { scope; service_m; product_j; service_n; product_l } ->
      let* () = check_service net service_m in
      let* () = check_service net service_n in
      let* () = check_product net service_m product_j in
      let* () = check_product net service_n product_l in
      if service_m = service_n then
        Error "combination constraint names the same service twice"
      else begin
        match scope with
        | All -> Ok ()
        | Host h ->
            let* () = check_host net h in
            if
              Network.runs_service net ~host:h ~service:service_m
              && Network.runs_service net ~host:h ~service:service_n
            then Ok ()
            else
              Error
                (Printf.sprintf "host %s does not run both services"
                   (Network.host_name net h))
      end
  | Forbids { scope; service_m; product_j; service_n; product_k } ->
      validate net
        (Requires
           {
             scope;
             service_m;
             product_j;
             service_n;
             product_l = product_k;
           })

let validate_all net cs =
  List.fold_left
    (fun acc c -> match acc with Error _ -> acc | Ok () -> validate net c)
    (Ok ()) cs

let hosts_in_scope net = function
  | Host h -> [ h ]
  | All -> List.init (Network.n_hosts net) Fun.id

let combo_holds net a h sm pj sn ~want ~pn =
  if
    Network.runs_service net ~host:h ~service:sm
    && Network.runs_service net ~host:h ~service:sn
  then
    if Assignment.get a ~host:h ~service:sm <> pj then true
    else
      let q = Assignment.get a ~host:h ~service:sn in
      if want then q = pn else q <> pn
  else true

let satisfied net a = function
  | Fix { host; service; product } ->
      Assignment.get a ~host ~service = product
  | Requires { scope; service_m; product_j; service_n; product_l } ->
      List.for_all
        (fun h ->
          combo_holds net a h service_m product_j service_n ~want:true
            ~pn:product_l)
        (hosts_in_scope net scope)
  | Forbids { scope; service_m; product_j; service_n; product_k } ->
      List.for_all
        (fun h ->
          combo_holds net a h service_m product_j service_n ~want:false
            ~pn:product_k)
        (hosts_in_scope net scope)

let violations net a cs = List.filter (fun c -> not (satisfied net a c)) cs

let apply_fixes net cs a =
  let fixes = Hashtbl.create 8 in
  List.iter
    (function
      | Fix { host; service; product } ->
          Hashtbl.replace fixes (host, service) product
      | Requires _ | Forbids _ -> ())
    cs;
  Assignment.make net (fun ~host ~service ->
      match Hashtbl.find_opt fixes (host, service) with
      | Some p -> p
      | None -> Assignment.get a ~host ~service)

let pp net ppf = function
  | Fix { host; service; product } ->
      Format.fprintf ppf "fix %s/%s = %s"
        (Network.host_name net host)
        (Network.service_name net service)
        (Network.product_name net ~service product)
  | Requires { scope; service_m; product_j; service_n; product_l } ->
      Format.fprintf ppf "%s: %s=%s requires %s=%s"
        (match scope with
        | All -> "all hosts"
        | Host h -> Network.host_name net h)
        (Network.service_name net service_m)
        (Network.product_name net ~service:service_m product_j)
        (Network.service_name net service_n)
        (Network.product_name net ~service:service_n product_l)
  | Forbids { scope; service_m; product_j; service_n; product_k } ->
      Format.fprintf ppf "%s: %s=%s forbids %s=%s"
        (match scope with
        | All -> "all hosts"
        | Host h -> Network.host_name net h)
        (Network.service_name net service_m)
        (Network.product_name net ~service:service_m product_j)
        (Network.service_name net service_n)
        (Network.product_name net ~service:service_n product_k)
