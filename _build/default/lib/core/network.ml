module Graph = Netdiv_graph.Graph

type service_spec = {
  sv_name : string;
  sv_products : string array;
  sv_similarity : float array;
}

type host_spec = {
  h_name : string;
  h_services : (int * int array) list;
}

type t = {
  graph : Graph.t;
  service_names : string array;
  product_names : string array array;   (* per service *)
  similarities : float array array;     (* per service, p*p *)
  host_names : string array;
  host_services : int array array;      (* sorted per host *)
  candidates : int array array array;   (* host -> slot (aligned) -> products *)
}

let validate_similarity name products sim =
  let p = Array.length products in
  if Array.length sim <> p * p then
    invalid_arg
      (Printf.sprintf "Network: service %s similarity matrix size mismatch"
         name);
  for i = 0 to p - 1 do
    if abs_float (sim.((i * p) + i) -. 1.0) > 1e-9 then
      invalid_arg
        (Printf.sprintf "Network: service %s similarity diagonal not 1" name);
    for j = 0 to p - 1 do
      let v = sim.((i * p) + j) in
      if not (v >= 0.0 && v <= 1.0) then
        invalid_arg
          (Printf.sprintf "Network: service %s similarity out of [0,1]" name);
      if abs_float (v -. sim.((j * p) + i)) > 1e-9 then
        invalid_arg
          (Printf.sprintf "Network: service %s similarity not symmetric" name)
    done
  done

let create ~graph ~services ~hosts =
  let n_hosts = Array.length hosts in
  if Graph.n_nodes graph <> n_hosts then
    invalid_arg
      (Printf.sprintf "Network.create: graph has %d nodes but %d hosts given"
         (Graph.n_nodes graph) n_hosts);
  Array.iter
    (fun s -> validate_similarity s.sv_name s.sv_products s.sv_similarity)
    services;
  let n_services = Array.length services in
  let host_services = Array.make n_hosts [||] in
  let candidates = Array.make n_hosts [||] in
  Array.iteri
    (fun h spec ->
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (s, _) ->
          if s < 0 || s >= n_services then
            invalid_arg
              (Printf.sprintf "Network.create: host %s has unknown service %d"
                 spec.h_name s);
          if Hashtbl.mem seen s then
            invalid_arg
              (Printf.sprintf "Network.create: host %s lists service %d twice"
                 spec.h_name s);
          Hashtbl.add seen s ())
        spec.h_services;
      let ordered =
        List.sort (fun (a, _) (b, _) -> compare a b) spec.h_services
      in
      host_services.(h) <- Array.of_list (List.map fst ordered);
      candidates.(h) <-
        Array.of_list
          (List.map
             (fun (s, cands) ->
               let p = Array.length services.(s).sv_products in
               let cands =
                 if Array.length cands = 0 then Array.init p Fun.id
                 else Array.copy cands
               in
               Array.sort compare cands;
               let distinct = Array.length cands in
               Array.iteri
                 (fun k c ->
                   if c < 0 || c >= p then
                     invalid_arg
                       (Printf.sprintf
                          "Network.create: host %s candidate %d out of range \
                           for service %s"
                          spec.h_name c services.(s).sv_name);
                   if k > 0 && cands.(k - 1) = c then
                     invalid_arg
                       (Printf.sprintf
                          "Network.create: host %s repeats candidate %d"
                          spec.h_name c))
                 cands;
               if distinct = 0 then
                 invalid_arg
                   (Printf.sprintf
                      "Network.create: host %s has no candidates for %s"
                      spec.h_name services.(s).sv_name);
               cands)
             ordered))
    hosts;
  {
    graph;
    service_names = Array.map (fun s -> s.sv_name) services;
    product_names = Array.map (fun s -> Array.copy s.sv_products) services;
    similarities = Array.map (fun s -> s.sv_similarity) services;
    host_names = Array.map (fun h -> h.h_name) hosts;
    host_services;
    candidates;
  }

let of_similarity_tables ~graph ~services ~hosts =
  let module Sim = Netdiv_vuln.Similarity in
  let specs =
    Array.map
      (fun (name, table) ->
        let p = Sim.size table in
        {
          sv_name = name;
          sv_products = Array.init p (Sim.product_name table);
          sv_similarity =
            Array.init (p * p) (fun idx -> Sim.get table (idx / p) (idx mod p));
        })
      services
  in
  create ~graph ~services:specs ~hosts

let graph t = t.graph
let n_hosts t = Array.length t.host_names
let n_services t = Array.length t.service_names
let host_name t h = t.host_names.(h)
let service_name t s = t.service_names.(s)
let product_name t ~service p = t.product_names.(service).(p)
let n_products t s = Array.length t.product_names.(s)

let similarity t ~service p q =
  let n = n_products t service in
  t.similarities.(service).((p * n) + q)

let similarity_matrix t ~service = t.similarities.(service)

let host_services t h = t.host_services.(h)

(* index of service s within host h's sorted service array, or -1 *)
let slot_index t h s =
  let arr = t.host_services.(h) in
  let rec search lo hi =
    if lo >= hi then -1
    else
      let mid = (lo + hi) / 2 in
      if arr.(mid) = s then mid
      else if arr.(mid) < s then search (mid + 1) hi
      else search lo mid
  in
  search 0 (Array.length arr)

let runs_service t ~host ~service = slot_index t host service >= 0

let candidates t ~host ~service =
  let k = slot_index t host service in
  if k < 0 then
    invalid_arg
      (Printf.sprintf "Network.candidates: host %s does not run service %s"
         t.host_names.(host) t.service_names.(service));
  t.candidates.(host).(k)

let find_index arr name =
  let n = Array.length arr in
  let rec loop i =
    if i >= n then None
    else if String.equal arr.(i) name then Some i
    else loop (i + 1)
  in
  loop 0

let find_host t name = find_index t.host_names name
let find_service t name = find_index t.service_names name
let find_product t ~service name = find_index t.product_names.(service) name

let slots t =
  let acc = ref [] in
  for h = n_hosts t - 1 downto 0 do
    let services = t.host_services.(h) in
    for k = Array.length services - 1 downto 0 do
      acc := (h, services.(k)) :: !acc
    done
  done;
  Array.of_list !acc

let pp ppf t =
  Format.fprintf ppf "network: %d hosts, %d services, %d links, %d slots"
    (n_hosts t) (n_services t)
    (Graph.n_edges t.graph)
    (Array.length (slots t))
