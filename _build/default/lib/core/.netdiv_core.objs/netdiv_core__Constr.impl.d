lib/core/constr.ml: Array Assignment Format Fun Hashtbl List Network Printf Result
