lib/core/network.mli: Format Netdiv_graph Netdiv_vuln
