lib/core/assignment.ml: Array Format List Netdiv_graph Network Printf Random
