lib/core/assignment.mli: Format Network Random
