lib/core/network.ml: Array Format Fun Hashtbl List Netdiv_graph Netdiv_vuln Printf String
