lib/core/viz.mli: Assignment
