lib/core/viz.ml: Array Assignment Hashtbl List Netdiv_graph Network Printf String
