lib/core/cost.ml: Array Assignment Encode List Network Optimize
