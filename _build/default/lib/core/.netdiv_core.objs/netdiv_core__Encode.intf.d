lib/core/encode.mli: Assignment Constr Netdiv_mrf Network
