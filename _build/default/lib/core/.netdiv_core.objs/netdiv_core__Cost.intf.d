lib/core/cost.mli: Assignment Constr Network Optimize
