lib/core/optimize.mli: Assignment Constr Encode Format Netdiv_mrf Network
