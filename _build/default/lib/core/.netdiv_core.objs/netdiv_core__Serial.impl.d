lib/core/serial.ml: Array Assignment Float Hashtbl List Netdiv_graph Netdiv_vuln Network Printf Result String
