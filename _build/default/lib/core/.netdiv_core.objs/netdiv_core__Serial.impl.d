lib/core/serial.ml: Array Assignment Hashtbl List Netdiv_graph Netdiv_vuln Network Printf Result String
