lib/core/optimize.ml: Array Assignment Constr Encode Format List Netdiv_mrf Printf
