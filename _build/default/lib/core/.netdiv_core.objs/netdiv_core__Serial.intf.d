lib/core/serial.mli: Assignment Netdiv_vuln Network
