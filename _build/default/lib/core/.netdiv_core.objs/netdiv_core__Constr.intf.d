lib/core/constr.mli: Assignment Format Network
