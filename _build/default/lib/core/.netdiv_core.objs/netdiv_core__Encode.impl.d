lib/core/encode.ml: Array Assignment Constr Fun Hashtbl List Netdiv_graph Netdiv_mrf Network Printf
