(** Product assignments (Definition 3).

    An assignment [α] picks one candidate product for every (host, service)
    slot of a network.  This module also provides the two baseline
    generators the paper evaluates against (Table V): the homogeneous
    mono-assignment [αm] and the uniformly random assignment [αr]. *)

type t

val make : Network.t -> (host:int -> service:int -> int) -> t
(** [make net choose] builds an assignment by asking [choose] for every
    slot.  The chosen product must be one of the slot's candidates.
    @raise Invalid_argument otherwise. *)

val get : t -> host:int -> service:int -> int
(** Product assigned to a slot.
    @raise Invalid_argument if the host does not run the service. *)

val get_opt : t -> host:int -> service:int -> int option

val network : t -> Network.t

val mono : Network.t -> t
(** The most homogeneous assignment: for every service, the product
    compatible with the largest number of hosts is installed everywhere it
    is a candidate; hosts that cannot run it fall back to their first
    candidate.  This is the paper's [αm]. *)

val random : rng:Random.State.t -> Network.t -> t
(** Uniform choice among each slot's candidates — the paper's [αr]. *)

val first_candidate : Network.t -> t
(** Every slot takes its first candidate (deterministic default). *)

val pairwise_energy : t -> float
(** Total similarity over connected host pairs and shared services — the
    pairwise term (3) of the optimization function. *)

val edge_infection_rates : t -> ((int * int) * float array) list
(** For each graph edge, the per-shared-service similarity of the assigned
    products (the zero-day infection rates of Section VI). *)

val distinct_products : t -> service:int -> int
(** Number of distinct products of a service actually deployed. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Host-by-host table of assigned product names. *)
