(** Sequential tree-reweighted message passing (TRW-S).

    The solver the paper uses for optimal diversification (Section V-C),
    after Kolmogorov's convergent TRW-S with monotonic-chain weights: nodes
    are processed in index order; a forward sweep updates messages toward
    higher-indexed neighbours, a backward sweep mirrors it.  Each node's
    aggregated cost is weighted by [1 / max(#lower neighbours, #higher
    neighbours)], which makes the dual bound non-decreasing.

    The reported lower bound is the reparameterization bound
    [sum_i min θ̂_i + sum_e min θ̂_e], valid for any message state and tight
    on trees.  Labelings are decoded greedily in node order, conditioning on
    already-decoded lower neighbours (Kolmogorov's scheme). *)

type config = {
  max_iters : int;       (** cap on forward+backward sweep pairs *)
  tolerance : float;     (** stop when the bound improves less than this *)
  patience : int;        (** ... for this many consecutive iterations *)
  bound_every : int;     (** compute bound/decode every k iterations *)
}

val default_config : config
(** 100 iterations, tolerance 1e-7, patience 3, bound every iteration. *)

val solve :
  ?config:config ->
  ?interrupt:(unit -> bool) ->
  ?on_progress:(iter:int -> energy:float -> bound:float -> unit) ->
  Mrf.t ->
  Solver.result
(** Runs TRW-S and returns the best decoded labeling encountered, its
    energy, and the final lower bound.

    [interrupt] is polled once per forward/backward sweep pair; when it
    returns [true] the solver stops and returns the best labeling, energy
    and bound found so far (the anytime property — an initial decode
    happens before the first sweep, so the labeling is always feasible).
    [on_progress] fires after every bound computation with the running
    best energy and dual bound. *)
