(** Exhaustive MAP solver for tiny models.

    Enumerates every labeling; used by the test suite to certify that
    TRW-S reaches the global optimum on small instances. *)

val solve :
  ?limit:int ->
  ?interrupt:(unit -> bool) ->
  ?on_progress:(iter:int -> energy:float -> bound:float -> unit) ->
  Mrf.t ->
  Solver.result
(** [solve ?limit mrf] enumerates all labelings.

    [interrupt] is polled every 1024 labelings; on [true] the best
    labeling so far is returned with [converged = false] and
    [lower_bound = neg_infinity] (an incomplete enumeration certifies
    nothing).  [on_progress] fires on the same cadence.
    @raise Invalid_argument when the search space exceeds [limit]
    (default [2_000_000]). *)

val search_space : Mrf.t -> float
(** Product of label counts, as a float to avoid overflow. *)
