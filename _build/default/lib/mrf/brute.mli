(** Exhaustive MAP solver for tiny models.

    Enumerates every labeling; used by the test suite to certify that
    TRW-S reaches the global optimum on small instances. *)

val solve : ?limit:int -> Mrf.t -> Solver.result
(** [solve ?limit mrf] enumerates all labelings.
    @raise Invalid_argument when the search space exceeds [limit]
    (default [2_000_000]). *)

val search_space : Mrf.t -> float
(** Product of label counts, as a float to avoid overflow. *)
