type config = { max_sweeps : int }

let default_config = { max_sweeps = 100 }

let greedy_unary_init mrf =
  Array.init (Mrf.n_nodes mrf) (fun i ->
      let k = Mrf.label_count mrf i in
      let best = ref 0 in
      for l = 1 to k - 1 do
        if
          Mrf.unary mrf ~node:i ~label:l
          < Mrf.unary mrf ~node:i ~label:!best
        then best := l
      done;
      !best)

(* Cost of node i taking label xi given the rest of the labeling. *)
let local_cost mrf x i xi =
  let acc = ref (Mrf.unary mrf ~node:i ~label:xi) in
  Array.iter
    (fun (e, i_is_u) ->
      let j = Mrf.opposite mrf ~edge:e i in
      let pot = Mrf.edge_cost mrf e in
      let kj = Mrf.label_count mrf j in
      let ki = Mrf.label_count mrf i in
      let c =
        if i_is_u then pot.((xi * kj) + x.(j)) else pot.((x.(j) * ki) + xi)
      in
      acc := !acc +. c)
    (Mrf.incident mrf i);
  !acc

let solve ?(config = default_config) ?(interrupt = fun () -> false)
    ?(on_progress = fun ~iter:_ ~energy:_ ~bound:_ -> ()) ?init mrf =
  let run () =
    let n = Mrf.n_nodes mrf in
    let x =
      match init with
      | Some x0 ->
          Mrf.validate_labeling mrf x0;
          Array.copy x0
      | None -> greedy_unary_init mrf
    in
    let sweeps = ref 0 in
    let converged = ref false in
    (try
       for s = 1 to config.max_sweeps do
         if interrupt () then raise Exit;
         sweeps := s;
         let changed = ref false in
         for i = 0 to n - 1 do
           let k = Mrf.label_count mrf i in
           let best = ref x.(i) in
           let best_cost = ref (local_cost mrf x i x.(i)) in
           for xi = 0 to k - 1 do
             if xi <> x.(i) then begin
               let c = local_cost mrf x i xi in
               if c < !best_cost then begin
                 best_cost := c;
                 best := xi
               end
             end
           done;
           if !best <> x.(i) then begin
             x.(i) <- !best;
             changed := true
           end
         done;
         on_progress ~iter:s ~energy:(Mrf.energy mrf x)
           ~bound:neg_infinity;
         if not !changed then begin
           converged := true;
           raise Exit
         end
       done
     with Exit -> ());
    (x, !sweeps, !converged)
  in
  let (labeling, iterations, converged), runtime_s = Solver.timed run in
  {
    Solver.labeling;
    energy = Mrf.energy mrf labeling;
    lower_bound = neg_infinity;
    iterations;
    converged;
    runtime_s;
  }
