type result = {
  labeling : int array;
  energy : float;
  lower_bound : float;
  iterations : int;
  converged : bool;
  runtime_s : float;
}

let timed f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let optimality_gap r =
  if r.lower_bound = neg_infinity then infinity
  else r.energy -. r.lower_bound

let pp_result ppf r =
  Format.fprintf ppf
    "energy %.6f, bound %.6f, %d iters, %s, %.3fs" r.energy r.lower_bound
    r.iterations
    (if r.converged then "converged" else "iteration cap")
    r.runtime_s
