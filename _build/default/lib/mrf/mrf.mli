(** Discrete pairwise Markov Random Fields (energy form).

    A model over nodes [0..n-1]; node [i] takes a label in
    [0 .. label_count i - 1].  The energy of a labeling [x] is

    {v E(x) = sum_i unary_i(x_i) + sum_{e=(u,v)} pairwise_e(x_u, x_v) v}

    which is the optimization function (1) of the paper.  MAP inference
    minimizes [E].  Models are assembled with {!Builder} and frozen; solvers
    ({!Trws}, {!Bp}, {!Icm}, {!Brute}) operate on the frozen form.

    Pairwise cost arrays are row-major by the {e first} endpoint's label:
    entry [x_u * k_v + x_v].  The arrays are {e not} copied, so a single
    matrix (e.g. one similarity table per service) can be physically shared
    across thousands of edges. *)

type t

module Builder : sig
  type b

  val create : label_counts:int array -> b
  (** One entry per node; every count must be at least 1. *)

  val add_unary : b -> node:int -> label:int -> float -> unit
  (** Adds (accumulates) a cost onto one unary entry. *)

  val set_unary : b -> node:int -> float array -> unit
  (** Replaces the whole unary vector of [node]; length must equal the
      node's label count. *)

  val add_edge : b -> int -> int -> float array -> unit
  (** [add_edge b u v cost] adds an edge with pairwise cost matrix [cost]
      of size [k_u * k_v], row-major by [u]'s label.  The matrix is shared,
      not copied.  Parallel edges are allowed (their costs add).
      @raise Invalid_argument on self-edges or size mismatch. *)

  val build : b -> t
  (** Freezes the model.  The builder must not be reused afterwards. *)
end

val n_nodes : t -> int
val n_edges : t -> int
val label_count : t -> int -> int

val max_label_count : t -> int

val unary : t -> node:int -> label:int -> float

val edge_endpoints : t -> int -> int * int
val edge_cost : t -> int -> float array
(** The shared pairwise matrix of an edge — do not mutate. *)

val energy : t -> int array -> float
(** [energy t x] evaluates E(x).
    @raise Invalid_argument if [x] has wrong length or out-of-range labels. *)

val incident : t -> int -> (int * bool) array
(** [incident t i] lists the edges touching node [i] as [(edge, i_is_u)]
    pairs, sorted by the id of the opposite endpoint.  Owned by the model;
    do not mutate. *)

val opposite : t -> edge:int -> int -> int
(** [opposite t ~edge i] is the other endpoint of [edge]. *)

val validate_labeling : t -> int array -> unit
(** @raise Invalid_argument when the labeling is malformed. *)

val pp_stats : Format.formatter -> t -> unit

(**/**)

val internal_arrays :
  t ->
  int array
  * int array
  * float array
  * int array
  * int array
  * float array array
  * int array
  * int array
(** Flat internal storage [(labels, unary_off, unary, eu, ev, epot, inc_off,
    inc)] for the solvers in this library.  [inc] encodes incidences as
    [edge*2 + (1 if the node is the edge's u endpoint)]. *)

(**/**)
