(** Iterated conditional modes (greedy local search baseline).

    Starting from a unary-greedy labeling (or a supplied one), repeatedly
    move each node to the label minimizing its local energy until a full
    sweep makes no change.  Fast, bound-free, and easily stuck in local
    minima — a natural lower baseline for the solver ablation. *)

type config = { max_sweeps : int }

val default_config : config
(** 100 sweeps. *)

val solve : ?config:config -> ?init:int array -> Mrf.t -> Solver.result
