(** Exact MAP by branch-and-bound.

    Depth-first search over variable assignments with an admissible lower
    bound (assigned cost, plus each unassigned node's best label against
    its assigned neighbours, plus each fully-unassigned edge's best pair),
    warm-started by TRW-S + ICM.  Exponential in the worst case, but on
    similarity-table instances of case-study size it proves global
    optimality in milliseconds — turning the approximate solver's answer
    into a certificate.

    Variables are explored in a connectivity-first order (each next
    variable maximizes edges into the assigned set) so the bound tightens
    early. *)

type config = {
  node_limit : int;   (** search nodes explored before giving up *)
}

val default_config : config
(** 2,000,000 nodes. *)

val solve :
  ?config:config ->
  ?interrupt:(unit -> bool) ->
  ?on_progress:(iter:int -> energy:float -> bound:float -> unit) ->
  Mrf.t ->
  Solver.result
(** [solve mrf] returns the best labeling found; [converged] is [true]
    iff the search completed, in which case the labeling is a proven
    global optimum and [lower_bound = energy].  On hitting the node
    limit, the incumbent (at least as good as TRW-S + ICM) is returned
    with the warm-start's dual bound.

    [interrupt] is threaded through the TRW-S/ICM warm start and then
    polled at every node expansion; on [true] the incumbent is returned
    with [converged = false].  [on_progress] fires every 4096 expansions
    and once at the end, with [iter] = nodes explored. *)
