(** Common result type and helpers shared by the MAP solvers. *)

type result = {
  labeling : int array;    (** best labeling found *)
  energy : float;          (** E(labeling) *)
  lower_bound : float;     (** best dual bound; [neg_infinity] if none *)
  iterations : int;        (** sweeps performed *)
  converged : bool;        (** stopping criterion met before the cap *)
  runtime_s : float;       (** wall-clock seconds *)
}

val timed : (unit -> 'a) -> 'a * float
(** Runs a thunk and measures wall-clock time. *)

val optimality_gap : result -> float
(** [energy - lower_bound]; [infinity] when no bound is available or
    either quantity is non-finite (no [nan]/[-inf] arithmetic). *)

val pp_float : Format.formatter -> float -> unit
(** [%.6f] for finite values; ["none"] for [neg_infinity], ["unbounded"]
    for [infinity], ["undefined"] for NaN. *)

val pp_result : Format.formatter -> result -> unit
(** Renders non-finite energies and bounds via {!pp_float}. *)
