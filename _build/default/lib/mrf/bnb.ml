type config = { node_limit : int }

let default_config = { node_limit = 2_000_000 }

(* variable order: greedy max-connectivity into the already-ordered set,
   seeded by the highest-degree node *)
let connectivity_order mrf =
  let n = Mrf.n_nodes mrf in
  let order = Array.make n 0 in
  let placed = Array.make n false in
  let links_to_placed = Array.make n 0 in
  let degree i = Array.length (Mrf.incident mrf i) in
  let pick k =
    let best = ref (-1) in
    for i = 0 to n - 1 do
      if not placed.(i) then
        match !best with
        | -1 -> best := i
        | b ->
            let key i = (links_to_placed.(i), degree i) in
            if key i > key b then best := i
    done;
    let i = !best in
    placed.(i) <- true;
    order.(k) <- i;
    Array.iter
      (fun (e, _) ->
        let j = Mrf.opposite mrf ~edge:e i in
        links_to_placed.(j) <- links_to_placed.(j) + 1)
      (Mrf.incident mrf i)
  in
  for k = 0 to n - 1 do
    pick k
  done;
  order

let solve ?(config = default_config) ?(interrupt = fun () -> false)
    ?(on_progress = fun ~iter:_ ~energy:_ ~bound:_ -> ()) mrf =
  let run () =
    let n = Mrf.n_nodes mrf in
    let order = connectivity_order mrf in
    let rank = Array.make n 0 in
    Array.iteri (fun k i -> rank.(i) <- k) order;
    (* incumbent from the approximate pipeline *)
    let warm = Trws.solve ~interrupt mrf in
    let polished = Icm.solve ~interrupt ~init:warm.Solver.labeling mrf in
    let best_x = Array.copy polished.Solver.labeling in
    let best = ref polished.Solver.energy in
    let warm_bound = warm.Solver.lower_bound in
    (* per-edge minimum over all label pairs (for fully-unassigned edges) *)
    let edge_min =
      Array.init (Mrf.n_edges mrf) (fun e ->
          Array.fold_left min infinity (Mrf.edge_cost mrf e))
    in
    let x = Array.make n 0 in
    let assigned = Array.make n false in
    let nodes = ref 0 in
    let complete = ref true in
    (* admissible completion bound given the current partial assignment *)
    let remainder_bound () =
      let acc = ref 0.0 in
      for i = 0 to n - 1 do
        if not assigned.(i) then begin
          (* best label of i against assigned neighbours *)
          let k = Mrf.label_count mrf i in
          let best_label = ref infinity in
          for l = 0 to k - 1 do
            let c = ref (Mrf.unary mrf ~node:i ~label:l) in
            Array.iter
              (fun (e, i_is_u) ->
                let j = Mrf.opposite mrf ~edge:e i in
                if assigned.(j) then begin
                  let pot = Mrf.edge_cost mrf e in
                  let kj = Mrf.label_count mrf j in
                  let pair =
                    if i_is_u then pot.((l * kj) + x.(j))
                    else pot.((x.(j) * k) + l)
                  in
                  c := !c +. pair
                end)
              (Mrf.incident mrf i);
            if !c < !best_label then best_label := !c
          done;
          acc := !acc +. !best_label
        end
      done;
      (* fully-unassigned edges, counted once via their u endpoint *)
      for e = 0 to Mrf.n_edges mrf - 1 do
        let u, v = Mrf.edge_endpoints mrf e in
        if (not assigned.(u)) && not assigned.(v) then
          acc := !acc +. edge_min.(e)
      done;
      !acc
    in
    let rec branch depth g =
      if !nodes >= config.node_limit then complete := false
      else begin
        incr nodes;
        if interrupt () then begin
          complete := false;
          raise Exit
        end;
        if !nodes land 4095 = 0 then
          on_progress ~iter:!nodes ~energy:!best ~bound:warm_bound;
        if depth = n then begin
          if g < !best then begin
            best := g;
            Array.blit x 0 best_x 0 n
          end
        end
        else begin
          let i = order.(depth) in
          let k = Mrf.label_count mrf i in
          (* try labels in increasing local-cost order *)
          let local l =
            let c = ref (Mrf.unary mrf ~node:i ~label:l) in
            Array.iter
              (fun (e, i_is_u) ->
                let j = Mrf.opposite mrf ~edge:e i in
                if assigned.(j) then begin
                  let pot = Mrf.edge_cost mrf e in
                  let kj = Mrf.label_count mrf j in
                  let pair =
                    if i_is_u then pot.((l * kj) + x.(j))
                    else pot.((x.(j) * k) + l)
                  in
                  c := !c +. pair
                end)
              (Mrf.incident mrf i);
            !c
          in
          let costs = Array.init k (fun l -> (local l, l)) in
          Array.sort compare costs;
          Array.iter
            (fun (cost, l) ->
              let g' = g +. cost in
              if g' < !best -. 1e-12 then begin
                x.(i) <- l;
                assigned.(i) <- true;
                let bound = g' +. remainder_bound () in
                if bound < !best -. 1e-12 then branch (depth + 1) g';
                assigned.(i) <- false
              end)
            costs
        end
      end
    in
    (try branch 0 0.0 with Exit -> ());
    on_progress ~iter:!nodes ~energy:!best ~bound:warm_bound;
    (best_x, !best, !nodes, !complete, warm_bound)
  in
  let (labeling, energy, iterations, complete, warm_bound), runtime_s =
    Solver.timed run
  in
  {
    Solver.labeling;
    energy;
    lower_bound = (if complete then energy else warm_bound);
    iterations;
    converged = complete;
    runtime_s;
  }
