lib/mrf/sa.ml: Array Domain Fun List Mrf Random Solver
