lib/mrf/trws.mli: Mrf Solver
