lib/mrf/bnb.mli: Mrf Solver
