lib/mrf/bp.mli: Mrf Solver
