lib/mrf/solver.ml: Float Format Unix
