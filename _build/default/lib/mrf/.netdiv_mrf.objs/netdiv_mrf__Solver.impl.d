lib/mrf/solver.ml: Format Unix
