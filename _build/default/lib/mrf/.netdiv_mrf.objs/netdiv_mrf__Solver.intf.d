lib/mrf/solver.mli: Format
