lib/mrf/runner.mli: Bnb Bp Format Icm Mrf Sa Solver Trws
