lib/mrf/bnb.ml: Array Icm Mrf Solver Trws
