lib/mrf/bp.ml: Array Mrf Random Solver
