lib/mrf/trws.ml: Array List Mrf Solver
