lib/mrf/runner.ml: Array Bnb Bp Brute Format Icm List Mrf Option Random Sa Solver Trws Unix
