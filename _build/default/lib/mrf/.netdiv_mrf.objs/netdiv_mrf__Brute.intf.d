lib/mrf/brute.mli: Mrf Solver
