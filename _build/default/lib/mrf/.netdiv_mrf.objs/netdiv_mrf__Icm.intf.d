lib/mrf/icm.mli: Mrf Solver
