lib/mrf/mrf.mli: Format
