lib/mrf/sa.mli: Mrf Solver
