lib/mrf/mrf.ml: Array Format List Printf
