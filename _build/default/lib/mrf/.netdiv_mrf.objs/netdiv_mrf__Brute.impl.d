lib/mrf/brute.ml: Array Mrf Solver
