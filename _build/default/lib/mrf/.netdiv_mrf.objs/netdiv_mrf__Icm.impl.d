lib/mrf/icm.ml: Array Mrf Solver
