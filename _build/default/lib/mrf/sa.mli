(** Simulated annealing (stochastic baseline).

    Metropolis dynamics over single-variable moves with geometric
    cooling and optional restarts.  Slower than TRW-S but immune to the
    message-passing failure modes on frustrated instances; used by the
    solver-ablation bench and, in the test suite, as an independent
    check that TRW-S+ICM is not leaving large energy gains behind.
    Deterministic for a fixed [seed]. *)

type config = {
  initial_temp : float;    (** starting temperature *)
  cooling : float;         (** geometric factor per stage, in (0,1) *)
  min_temp : float;        (** stop cooling here *)
  sweeps_per_temp : int;   (** full variable sweeps per stage *)
  restarts : int;          (** independent runs; best labeling wins *)
  seed : int;
  domains : int;
      (** OCaml domains to spread restarts over (default 1); the result
          is identical for any domain count because each restart owns
          its generator *)
}

val default_config : config
(** temp 2.0 → 1e-3, cooling 0.9, 4 sweeps per stage, 2 restarts,
    1 domain. *)

val solve :
  ?config:config ->
  ?interrupt:(unit -> bool) ->
  ?on_progress:(iter:int -> energy:float -> bound:float -> unit) ->
  ?init:int array ->
  Mrf.t ->
  Solver.result
(** Runs annealing from [init] (default: unary-greedy) and returns the
    best labeling seen across all restarts.  [iterations] counts full
    sweeps; no dual bound is produced.

    [interrupt] is polled once per sweep in every restart and must be
    safe to call from spawned domains (wall-clock reads are); on [true]
    each restart stops and the best labeling across restarts is still
    returned, with [converged = false].  [on_progress] fires per cooling
    stage, and only when the restarts run sequentially ([domains <= 1]
    or [restarts <= 1]) — progress handlers need not be thread-safe. *)
