let barabasi_albert ~rng ~n ~m =
  if m < 1 || m >= n then
    invalid_arg "Topologies.barabasi_albert: need 1 <= m < n";
  let edges = ref [] in
  (* endpoint multiset for preferential attachment *)
  let endpoints = ref [] in
  let n_endpoints = ref 0 in
  let add_edge u v =
    edges := (u, v) :: !edges;
    endpoints := u :: v :: !endpoints;
    n_endpoints := !n_endpoints + 2
  in
  (* seed clique on nodes 0..m *)
  for u = 0 to m do
    for v = u + 1 to m do
      add_edge u v
    done
  done;
  let endpoint_array = ref (Array.of_list !endpoints) in
  let refresh () = endpoint_array := Array.of_list !endpoints in
  for v = m + 1 to n - 1 do
    refresh ();
    let chosen = Hashtbl.create m in
    let arr = !endpoint_array in
    while Hashtbl.length chosen < m do
      let candidate = arr.(Random.State.int rng (Array.length arr)) in
      if candidate <> v then Hashtbl.replace chosen candidate ()
    done;
    Hashtbl.iter (fun u () -> add_edge u v) chosen
  done;
  Graph.of_edges ~n !edges

let watts_strogatz ~rng ~n ~k ~beta =
  if k <= 0 || k >= n || k mod 2 <> 0 then
    invalid_arg "Topologies.watts_strogatz: need even 0 < k < n";
  if not (beta >= 0.0 && beta <= 1.0) then
    invalid_arg "Topologies.watts_strogatz: beta out of [0,1]";
  let seen = Hashtbl.create (n * k) in
  let mem u v = Hashtbl.mem seen (min u v, max u v) in
  let add u v = Hashtbl.replace seen (min u v, max u v) () in
  let remove u v = Hashtbl.remove seen (min u v, max u v) in
  (* ring lattice *)
  for u = 0 to n - 1 do
    for step = 1 to k / 2 do
      add u ((u + step) mod n)
    done
  done;
  (* rewire each original lattice edge with probability beta *)
  for u = 0 to n - 1 do
    for step = 1 to k / 2 do
      let v = (u + step) mod n in
      if mem u v && Random.State.float rng 1.0 < beta then begin
        (* pick a fresh endpoint for u *)
        let attempts = ref 0 in
        let rewired = ref false in
        while (not !rewired) && !attempts < 32 do
          incr attempts;
          let w = Random.State.int rng n in
          if w <> u && w <> v && not (mem u w) then begin
            remove u v;
            add u w;
            rewired := true
          end
        done
      end
    done
  done;
  let edges = Hashtbl.fold (fun (u, v) () acc -> (u, v) :: acc) seen [] in
  Graph.of_edges ~n edges

type zoned = {
  graph : Graph.t;
  zone_of : int array;
  gateways : (int * int) list;
}

let zoned ~rng ~zone_sizes ?(intra_degree = 4) ?(gateway_links = 2)
    ?(backbone = None) () =
  let n_zones = Array.length zone_sizes in
  if n_zones = 0 then invalid_arg "Topologies.zoned: no zones";
  Array.iteri
    (fun z size ->
      if size < 1 then
        invalid_arg (Printf.sprintf "Topologies.zoned: zone %d empty" z))
    zone_sizes;
  let backbone =
    match backbone with
    | Some parents ->
        if Array.length parents <> n_zones then
          invalid_arg "Topologies.zoned: backbone length mismatch";
        Array.iteri
          (fun z p ->
            if p >= z || (p < 0 && z <> 0) then
              if p <> -1 then
                invalid_arg
                  (Printf.sprintf
                     "Topologies.zoned: zone %d has invalid parent %d" z p))
          parents;
        parents
    | None -> Array.init n_zones (fun z -> z - 1)
  in
  let offsets = Array.make (n_zones + 1) 0 in
  for z = 0 to n_zones - 1 do
    offsets.(z + 1) <- offsets.(z) + zone_sizes.(z)
  done;
  let n = offsets.(n_zones) in
  let zone_of = Array.make n 0 in
  for z = 0 to n_zones - 1 do
    for i = offsets.(z) to offsets.(z + 1) - 1 do
      zone_of.(i) <- z
    done
  done;
  let edges = ref [] in
  (* intra-zone connectivity *)
  for z = 0 to n_zones - 1 do
    let size = zone_sizes.(z) in
    let base = offsets.(z) in
    if size <= intra_degree + 1 then
      (* small zone: full mesh *)
      for i = 0 to size - 1 do
        for j = i + 1 to size - 1 do
          edges := (base + i, base + j) :: !edges
        done
      done
    else begin
      let sub = Gen.connected_avg_degree ~rng ~n:size ~degree:intra_degree in
      Graph.iter_edges (fun u v -> edges := (base + u, base + v) :: !edges) sub
    end
  done;
  (* inter-zone gateways along the backbone *)
  let gateways = ref [] in
  for z = 1 to n_zones - 1 do
    let parent = backbone.(z) in
    if parent >= 0 then begin
      let links = Hashtbl.create gateway_links in
      let tries = ref 0 in
      while
        Hashtbl.length links < gateway_links && !tries < 64 * gateway_links
      do
        incr tries;
        let u = offsets.(parent) + Random.State.int rng zone_sizes.(parent) in
        let v = offsets.(z) + Random.State.int rng zone_sizes.(z) in
        if not (Hashtbl.mem links (u, v)) then Hashtbl.replace links (u, v) ()
      done;
      Hashtbl.iter
        (fun (u, v) () ->
          edges := (u, v) :: !edges;
          gateways := (u, v) :: !gateways)
        links
    end
  done;
  { graph = Graph.of_edges ~n !edges; zone_of; gateways = !gateways }
