(** Structured topology generators.

    The scalability study uses uniform random graphs; real IT/OT networks
    are not uniform.  These generators provide the standard structured
    families — scale-free (Barabási–Albert), small-world
    (Watts–Strogatz) — plus a {e zoned} generator that scales the
    case-study's architecture (meshed zones joined by a few firewall
    links) to arbitrary sizes, used by the topology-ablation bench. *)

val barabasi_albert :
  rng:Random.State.t -> n:int -> m:int -> Graph.t
(** Preferential attachment: start from an [m+1]-clique, then each new
    node attaches to [m] distinct existing nodes chosen with probability
    proportional to degree.
    @raise Invalid_argument unless [1 <= m < n]. *)

val watts_strogatz :
  rng:Random.State.t -> n:int -> k:int -> beta:float -> Graph.t
(** Small-world: a ring lattice where every node links to its [k/2]
    nearest neighbours on each side, then each edge is rewired with
    probability [beta] to a uniform random endpoint (avoiding self-loops
    and duplicates; rewiring is skipped when no candidate exists).
    @raise Invalid_argument unless [k] is even, [0 < k < n], and
    [0 <= beta <= 1]. *)

type zoned = {
  graph : Graph.t;
  zone_of : int array;          (** zone index per node *)
  gateways : (int * int) list;  (** the inter-zone firewall links *)
}

val zoned :
  rng:Random.State.t ->
  zone_sizes:int array ->
  ?intra_degree:int ->
  ?gateway_links:int ->
  ?backbone:int array option ->
  unit ->
  zoned
(** [zoned ~rng ~zone_sizes ()] builds an ICS-like network: each zone is
    a random connected subgraph with average degree [intra_degree]
    (default 4; zones smaller than that are fully meshed), and
    consecutive zones — or the zone pairs listed by [backbone] as a
    parent array (entry [i] is the zone that zone [i] uplinks to, [-1]
    for the root) — are joined by [gateway_links] random cross links
    (default 2).
    @raise Invalid_argument on empty zones or a malformed backbone. *)
