(** Undirected simple graphs over nodes [0 .. n-1].

    The paper models host connectivity with undirected edges (Section II,
    "we use more general undirected edges to symbolize the connections").
    This module stores a frozen compressed-adjacency representation suited
    to the message-passing sweeps of the MRF solver. *)

type t

val of_edges : n:int -> (int * int) list -> t
(** [of_edges ~n edges] builds a graph with [n] nodes.  Self-loops are
    rejected; duplicate edges (in either orientation) are collapsed.
    @raise Invalid_argument on out-of-range endpoints or [n < 0]. *)

val n_nodes : t -> int
val n_edges : t -> int

val degree : t -> int -> int

val neighbors : t -> int -> int array
(** Sorted array of neighbours.  The returned array is owned by the graph;
    do not mutate it. *)

val mem_edge : t -> int -> int -> bool

val edges : t -> (int * int) array
(** All edges with [u < v], sorted lexicographically. *)

val iter_edges : (int -> int -> unit) -> t -> unit
(** Iterates each undirected edge once, with [u < v]. *)

val fold_neighbors : (int -> 'a -> 'a) -> t -> int -> 'a -> 'a

val max_degree : t -> int
val avg_degree : t -> float

val pp : Format.formatter -> t -> unit
