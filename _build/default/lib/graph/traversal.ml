let bfs g src =
  let n = Graph.n_nodes g in
  if src < 0 || src >= n then invalid_arg "Traversal.bfs: source out of range";
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Graph.fold_neighbors
      (fun v () ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
      g u ()
  done;
  dist

let shortest_path g src dst =
  let n = Graph.n_nodes g in
  if dst < 0 || dst >= n then
    invalid_arg "Traversal.shortest_path: destination out of range";
  let parent = Array.make n (-1) in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(src) <- 0;
  Queue.add src queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    Graph.fold_neighbors
      (fun v () ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          parent.(v) <- u;
          Queue.add v queue
        end)
      g u ()
  done;
  if dist.(dst) < 0 then None
  else begin
    let rec collect v acc =
      if v = src then src :: acc else collect parent.(v) (v :: acc)
    in
    Some (collect dst [])
  end

let components g =
  let n = Graph.n_nodes g in
  let comp = Array.make n (-1) in
  let next = ref 0 in
  for src = 0 to n - 1 do
    if comp.(src) < 0 then begin
      let id = !next in
      incr next;
      let queue = Queue.create () in
      comp.(src) <- id;
      Queue.add src queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Graph.fold_neighbors
          (fun v () ->
            if comp.(v) < 0 then begin
              comp.(v) <- id;
              Queue.add v queue
            end)
          g u ()
      done
    end
  done;
  comp

let n_components g =
  let comp = components g in
  Array.fold_left (fun acc c -> max acc (c + 1)) 0 comp

let is_connected g = Graph.n_nodes g <= 1 || n_components g = 1

let bfs_dag g src =
  let dist = bfs g src in
  let directed = ref [] in
  Graph.iter_edges
    (fun u v ->
      match (dist.(u), dist.(v)) with
      | -1, _ | _, -1 -> ()
      | du, dv ->
          if du < dv then directed := (u, v) :: !directed
          else if dv < du then directed := (v, u) :: !directed
          else if u < v then directed := (u, v) :: !directed
          else directed := (v, u) :: !directed)
    g;
  List.rev !directed
