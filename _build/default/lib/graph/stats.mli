(** Structural statistics of host graphs.

    Used to characterize generated workloads (degree spread, clustering,
    path lengths) when comparing uniform-random and structured topologies
    in the ablation benches. *)

val degree_histogram : Graph.t -> int array
(** [histogram.(d)] = number of nodes of degree [d]; length is
    [max_degree + 1] (empty graphs give [[|n|]] at degree 0). *)

val density : Graph.t -> float
(** Edges over possible edges; 0 for graphs with fewer than 2 nodes. *)

val local_clustering : Graph.t -> int -> float
(** Fraction of a node's neighbour pairs that are themselves connected;
    0 for nodes of degree < 2. *)

val average_clustering : Graph.t -> float
(** Mean local clustering over all nodes (0 for the empty graph). *)

val diameter : ?sample:int -> ?rng:Random.State.t -> Graph.t -> int
(** Longest shortest path within the largest connected component.  Exact
    (all-sources BFS) when the graph has at most [sample] nodes or no
    [rng] is given; otherwise a lower bound from [sample] random BFS
    sources (default sample 64). *)

val average_path_length : ?sample:int -> ?rng:Random.State.t -> Graph.t -> float
(** Mean hop distance over reachable pairs, sampled like {!diameter};
    0 when no pair is connected. *)

val pp_summary : Format.formatter -> Graph.t -> unit
(** One-line structural summary. *)
