(** Graphviz (DOT) export.

    Renders host graphs for inspection with the usual Graphviz tools
    ([dot -Tsvg ...]).  Purely textual — no external dependency. *)

val to_dot :
  ?name:string ->
  ?label:(int -> string) ->
  ?color:(int -> string option) ->
  ?shape:(int -> string option) ->
  ?edge_style:(int -> int -> string option) ->
  Graph.t ->
  string
(** [to_dot g] renders an undirected graph.  [label] supplies node
    labels (default: the node id), [color] an optional fill color per
    node, [shape] an optional node shape, [edge_style] an optional
    attribute string per edge (e.g. ["color=red,penwidth=2"]).
    Identifiers and labels are quoted and escaped. *)
