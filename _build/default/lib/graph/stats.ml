let degree_histogram g =
  let n = Graph.n_nodes g in
  if n = 0 then [||]
  else begin
    let hist = Array.make (Graph.max_degree g + 1) 0 in
    for i = 0 to n - 1 do
      let d = Graph.degree g i in
      hist.(d) <- hist.(d) + 1
    done;
    hist
  end

let density g =
  let n = Graph.n_nodes g in
  if n < 2 then 0.0
  else
    2.0 *. float_of_int (Graph.n_edges g)
    /. float_of_int (n * (n - 1))

let local_clustering g u =
  let nbrs = Graph.neighbors g u in
  let d = Array.length nbrs in
  if d < 2 then 0.0
  else begin
    let linked = ref 0 in
    for i = 0 to d - 1 do
      for j = i + 1 to d - 1 do
        if Graph.mem_edge g nbrs.(i) nbrs.(j) then incr linked
      done
    done;
    2.0 *. float_of_int !linked /. float_of_int (d * (d - 1))
  end

let average_clustering g =
  let n = Graph.n_nodes g in
  if n = 0 then 0.0
  else begin
    let total = ref 0.0 in
    for u = 0 to n - 1 do
      total := !total +. local_clustering g u
    done;
    !total /. float_of_int n
  end

let sources ?(sample = 64) ?rng g =
  let n = Graph.n_nodes g in
  match rng with
  | Some rng when n > sample ->
      List.init sample (fun _ -> Random.State.int rng n)
  | _ -> List.init n Fun.id

let diameter ?sample ?rng g =
  let best = ref 0 in
  List.iter
    (fun src ->
      let dist = Traversal.bfs g src in
      Array.iter (fun d -> if d > !best then best := d) dist)
    (sources ?sample ?rng g);
  !best

let average_path_length ?sample ?rng g =
  let total = ref 0.0 and pairs = ref 0 in
  List.iter
    (fun src ->
      let dist = Traversal.bfs g src in
      Array.iter
        (fun d ->
          if d > 0 then begin
            total := !total +. float_of_int d;
            incr pairs
          end)
        dist)
    (sources ?sample ?rng g);
  if !pairs = 0 then 0.0 else !total /. float_of_int !pairs

let pp_summary ppf g =
  Format.fprintf ppf
    "%d nodes, %d edges, avg degree %.2f, max degree %d, density %.4f, \
     clustering %.3f"
    (Graph.n_nodes g) (Graph.n_edges g) (Graph.avg_degree g)
    (Graph.max_degree g) (density g) (average_clustering g)
